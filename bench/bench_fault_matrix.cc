/**
 * @file
 * Fault matrix: how the transactional restore degrades under injected
 * failures.
 *
 * Two sweeps:
 *  1. Engine matrix — every restore-stack fault point × every fallback
 *     policy, one cold start each (the fault fires on the first attempt
 *     only), reporting the outcome and the latency the degraded path
 *     paid on top of a clean restore.
 *  2. Trace sweep — the §7.5 ShareGPT-like trace replayed against a
 *     Medusa-profiled cluster with 0%, 1% and 5% of cold-start restores
 *     failing (artifact corruption on the node), under
 *     retry-then-vanilla: p50/p99 TTFT and the failure accounting.
 *
 * --json emits one machine-readable object (scripts/bench.sh captures
 * it as BENCH_fault.json).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/fault.h"
#include "medusa/restore.h"
#include "serverless/cluster.h"

using namespace medusa;
using bench::materializeCached;
using bench::unwrap;

namespace {

struct MatrixCell
{
    std::string point;
    std::string policy;
    bool ok = false;
    bool fallback_vanilla = false;
    u64 attempts = 0;
    u64 retries = 0;
    f64 loading_sec = 0;
    f64 wasted_sec = 0;
};

const char *
policyName(core::FallbackMode mode)
{
    switch (mode) {
    case core::FallbackMode::kFail:
        return "fail";
    case core::FallbackMode::kVanillaColdStart:
        return "vanilla";
    case core::FallbackMode::kRetryThenVanilla:
        return "retry";
    }
    return "?";
}

/** One cold start with @p point firing on the first attempt only. */
MatrixCell
runCell(const llm::ModelConfig &model, const core::Artifact &artifact,
        FaultPoint point, core::FallbackMode mode)
{
    FaultPlan plan;
    plan.rule(point).fire_on_hit = 1;
    plan.rule(point).max_fires = 1;
    FaultInjector injector(plan);

    core::MedusaEngine::Options opts;
    opts.model = model;
    opts.aslr_seed = 20250805;
    opts.restore.pipeline.validate = true; // tp_lockstep has no single-GPU hook;
    opts.restore.pipeline.validate_batch_sizes = {1};
    opts.restore.pipeline.fault = &injector;
    opts.restore.fallback.mode = mode;
    opts.restore.fallback.max_attempts = 2;

    MatrixCell cell;
    cell.point = faultPointName(point);
    cell.policy = policyName(mode);
    auto engine = core::MedusaEngine::coldStart(opts, artifact);
    cell.ok = engine.isOk();
    if (engine.isOk()) {
        const core::RestoreReport &r = (*engine)->coldStartReport().restore;
        cell.fallback_vanilla = r.fallback_vanilla;
        cell.attempts = r.restore_attempts;
        cell.retries = r.retries;
        cell.loading_sec = (*engine)->coldStartReport().times.loading;
        cell.wasted_sec = r.wasted_restore_sec;
    } else if (injector.totalFires() == 0) {
        // The point never fired (not on this restore path): mark the
        // row invalid rather than report a misleading failure.
        cell.policy += " (point not on path)";
    }
    return cell;
}

struct TraceRow
{
    f64 corruption = 0;
    f64 p50_ttft = 0;
    f64 p99_ttft = 0;
    u64 completed = 0;
    u64 cold_starts = 0;
    u64 restore_failures = 0;
    u64 fallback_cold_starts = 0;
    u64 retries = 0;
    f64 wasted_restore_sec = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    bench::Reporter reporter(argc, argv);
    bool json = false;
    std::string model_name = "Qwen1.5-4B";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg.rfind("--model=", 0) == 0) {
            model_name = arg.substr(8);
        } else {
            std::fprintf(stderr, "usage: %s [--json] [--model=NAME]\n",
                         argv[0]);
            return 2;
        }
    }

    const llm::ModelConfig model =
        unwrap(llm::findModel(model_name), "model lookup");
    const core::Artifact artifact =
        unwrap(materializeCached(model), "materialization");

    // ---- engine matrix: fault point × fallback policy -------------------
    // Points that sit on the single-GPU restore path, in stack order.
    const FaultPoint points[] = {
        FaultPoint::kReplayPrefix,   FaultPoint::kReplayAlloc,
        FaultPoint::kKernelDlsym,    FaultPoint::kKernelEnumeration,
        FaultPoint::kGraphInstantiate,
    };
    const core::FallbackMode modes[] = {
        core::FallbackMode::kFail,
        core::FallbackMode::kVanillaColdStart,
        core::FallbackMode::kRetryThenVanilla,
    };

    // Clean reference restore for the overhead column.
    f64 clean_loading = 0;
    {
        core::MedusaEngine::Options opts;
        opts.model = model;
        opts.aslr_seed = 20250805;
        opts.restore.pipeline.validate = true;
        opts.restore.pipeline.validate_batch_sizes = {1};
        auto engine = core::MedusaEngine::coldStart(opts, artifact);
        bench::checkOk(engine.status(), "clean restore");
        clean_loading = (*engine)->coldStartReport().times.loading;
    }

    std::vector<MatrixCell> matrix;
    for (FaultPoint point : points) {
        for (core::FallbackMode mode : modes) {
            matrix.push_back(runCell(model, artifact, point, mode));
        }
    }

    // ---- §7.5 trace under artifact corruption ----------------------------
    serverless::ProfileOptions popts;
    popts.model = model;
    popts.strategy = llm::Strategy::kMedusa;
    popts.artifact = &artifact;
    const serverless::ServingProfile medusa_profile =
        unwrap(serverless::buildServingProfile(popts), "medusa profile");
    popts.strategy = llm::Strategy::kVllm;
    popts.artifact = nullptr;
    const serverless::ServingProfile vllm_profile =
        unwrap(serverless::buildServingProfile(popts), "vllm profile");

    workload::TraceOptions topts;
    topts.requests_per_sec = 2;
    topts.duration_sec = 600;
    topts.seed = 20250805;
    const std::vector<workload::Request> trace =
        workload::generateShareGptTrace(topts);

    // Shared per-node artifact store: the sweep's first launch loads,
    // every later one hits. Zero latency impact (miss cost 0) — it
    // exists so a traced run shows the cache.load/cache.hit events.
    core::ArtifactCache artifact_cache(4);

    std::vector<TraceRow> rows;
    u32 sweep_track = 0;
    for (f64 corruption : {0.0, 0.01, 0.05}) {
        FaultPlan plan;
        plan.seed = 4242;
        plan.rule(FaultPoint::kClusterRestore).probability = corruption;
        FaultInjector injector(plan);

        TraceRecorder run_trace; // sink; cluster events are pre-timed
        serverless::ClusterOptions copts;
        copts.pipeline.fault = corruption > 0 ? &injector : nullptr;
        copts.pipeline.trace =
            reporter.trace() != nullptr ? &run_trace : nullptr;
        copts.pipeline.metrics = reporter.metrics();
        copts.artifact_cache = &artifact_cache;
        copts.artifact_key = model.name;
        copts.artifact_loader = [&artifact]() -> StatusOr<core::Artifact> {
            return core::Artifact(artifact);
        };
        copts.fallback.mode = core::FallbackMode::kRetryThenVanilla;
        copts.fallback.max_attempts = 2;
        // A launch that degrades pays the classic cold start.
        copts.vanilla_cold_start_sec = vllm_profile.cold_start_sec;
        copts.profile = &medusa_profile;
        const serverless::TraceMetrics metrics =
            serverless::simulateCluster(copts, trace);
        if (reporter.trace() != nullptr) {
            reporter.addSpans(run_trace.events(), sweep_track);
            char label[48];
            std::snprintf(label, sizeof(label),
                          "cluster corruption=%.0f%%",
                          corruption * 100);
            reporter.setTrackName(sweep_track, label);
            reporter.setTrackName(sweep_track + 1, "requests");
            sweep_track += 2;
        }

        TraceRow row;
        row.corruption = corruption;
        row.p50_ttft = metrics.ttft_sec.p50();
        row.p99_ttft = metrics.ttft_sec.p99();
        row.completed = metrics.completed;
        row.cold_starts = metrics.cold_starts;
        row.restore_failures = metrics.restore_failures;
        row.fallback_cold_starts = metrics.fallback_cold_starts;
        row.retries = metrics.retries;
        row.wasted_restore_sec = metrics.wasted_restore_sec;
        rows.push_back(row);

        // Every request must complete no matter the corruption rate.
        if (metrics.completed != trace.size()) {
            std::fprintf(stderr,
                         "FAIL: %llu/%zu requests completed at "
                         "corruption %.2f\n",
                         static_cast<unsigned long long>(
                             metrics.completed),
                         trace.size(), corruption);
            return 1;
        }
    }

    // Traced-only showcase: the probabilistic sweep above sees so few
    // cold starts that at 1–5% corruption no fault may fire, so a
    // trace could miss the degraded path entirely. Replay the trace
    // once more with the first launch's restore deterministically
    // failing both attempts (retry, then vanilla fallback) so the
    // exported trace always covers restore.attempt_failed and
    // fallback.vanilla_cold_start. Runs only under --trace-out; the
    // printed tables are untouched.
    if (reporter.trace() != nullptr) {
        FaultPlan plan;
        plan.seed = 4242;
        plan.rule(FaultPoint::kClusterRestore).probability = 1.0;
        plan.rule(FaultPoint::kClusterRestore).max_fires = 2;
        FaultInjector injector(plan);

        TraceRecorder run_trace;
        serverless::ClusterOptions copts;
        copts.pipeline.fault = &injector;
        copts.pipeline.trace = &run_trace;
        copts.pipeline.metrics = reporter.metrics();
        copts.artifact_cache = &artifact_cache;
        copts.artifact_key = model.name;
        copts.artifact_loader = [&artifact]() -> StatusOr<core::Artifact> {
            return core::Artifact(artifact);
        };
        copts.fallback.mode = core::FallbackMode::kRetryThenVanilla;
        copts.fallback.max_attempts = 2;
        copts.vanilla_cold_start_sec = vllm_profile.cold_start_sec;
        copts.profile = &medusa_profile;
        serverless::simulateCluster(copts, trace);
        reporter.addSpans(run_trace.events(), sweep_track);
        reporter.setTrackName(sweep_track, "cluster fault showcase");
        reporter.setTrackName(sweep_track + 1, "requests");
    }

    if (json) {
        std::printf("{\n  \"model\": \"%s\",\n", model.name.c_str());
        std::printf("  \"clean_loading_sec\": %.6f,\n", clean_loading);
        std::printf("  \"engine_matrix\": [\n");
        for (std::size_t i = 0; i < matrix.size(); ++i) {
            const MatrixCell &c = matrix[i];
            std::printf(
                "    {\"point\": \"%s\", \"policy\": \"%s\", "
                "\"ok\": %s, \"fallback_vanilla\": %s, "
                "\"attempts\": %llu, \"retries\": %llu, "
                "\"loading_sec\": %.6f, \"wasted_sec\": %.6f}%s\n",
                c.point.c_str(), c.policy.c_str(),
                c.ok ? "true" : "false",
                c.fallback_vanilla ? "true" : "false",
                static_cast<unsigned long long>(c.attempts),
                static_cast<unsigned long long>(c.retries),
                c.loading_sec, c.wasted_sec,
                i + 1 < matrix.size() ? "," : "");
        }
        std::printf("  ],\n");
        std::printf("  \"trace_rps\": %.1f,\n", topts.requests_per_sec);
        std::printf("  \"trace_requests\": %zu,\n", trace.size());
        std::printf("  \"corruption_sweep\": [\n");
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const TraceRow &r = rows[i];
            std::printf(
                "    {\"corruption\": %.2f, \"p50_ttft_sec\": %.4f, "
                "\"p99_ttft_sec\": %.4f, \"completed\": %llu, "
                "\"cold_starts\": %llu, \"restore_failures\": %llu, "
                "\"fallback_cold_starts\": %llu, \"retries\": %llu, "
                "\"wasted_restore_sec\": %.4f}%s\n",
                r.corruption, r.p50_ttft, r.p99_ttft,
                static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.cold_starts),
                static_cast<unsigned long long>(r.restore_failures),
                static_cast<unsigned long long>(r.fallback_cold_starts),
                static_cast<unsigned long long>(r.retries),
                r.wasted_restore_sec, i + 1 < rows.size() ? "," : "");
        }
        std::printf("  ]\n}\n");
    } else {
        std::printf("=== fault matrix — %s ===\n\n", model.name.c_str());
        std::printf("clean Medusa loading: %.4f s\n\n", clean_loading);
        std::printf("%-14s %-9s %-6s %-9s %9s %9s %10s\n", "point",
                    "policy", "ok", "fallback", "attempts",
                    "retries", "loading(s)");
        for (const MatrixCell &c : matrix) {
            std::printf("%-14s %-9s %-6s %-9s %9llu %9llu %10.4f\n",
                        c.point.c_str(), c.policy.c_str(),
                        c.ok ? "yes" : "FAIL",
                        c.fallback_vanilla ? "vanilla" : "-",
                        static_cast<unsigned long long>(c.attempts),
                        static_cast<unsigned long long>(c.retries),
                        c.loading_sec);
        }
        std::printf("\n--- §7.5 trace (%zu requests, RPS %.0f) under "
                    "artifact corruption, retry-then-vanilla ---\n",
                    trace.size(), topts.requests_per_sec);
        std::printf("%-10s %10s %10s %8s %8s %8s %8s %10s\n",
                    "corruption", "p50 TTFT", "p99 TTFT", "colds",
                    "fails", "retries", "fallbk", "wasted(s)");
        for (const TraceRow &r : rows) {
            std::printf(
                "%9.0f%% %10.4f %10.4f %8llu %8llu %8llu %8llu "
                "%10.3f\n",
                r.corruption * 100, r.p50_ttft, r.p99_ttft,
                static_cast<unsigned long long>(r.cold_starts),
                static_cast<unsigned long long>(r.restore_failures),
                static_cast<unsigned long long>(r.retries),
                static_cast<unsigned long long>(r.fallback_cold_starts),
                r.wasted_restore_sec);
        }
    }
    reporter.finish();
    return 0;
}
