/**
 * @file
 * Chaos / SLO study (DESIGN.md §16): replay a seeded 10^5-request
 * synthetic trace (diurnal arrivals, Zipf multi-model mix, per-request
 * TTFT deadlines) through the fast engine under a SchedulerPolicy x
 * chaos-intensity matrix, and report per cell: SLO attainment and
 * goodput, shed / retry / requeue counts, crash and outage activity,
 * and the usual latency and cost columns.
 *
 * Three invariants are hard-checked on every run (non-zero exit on
 * violation, whatever the output mode):
 *
 *  1. Request conservation — completed + shed + failed == trace size
 *     in EVERY matrix cell (the terminal-state lattice).
 *  2. Determinism — the heaviest cell replayed twice produces
 *     bit-identical counters and samples.
 *  3. Identity — a disabled ChaosPlan leaves the simulation
 *     bit-identical to a run with no plan at all.
 *
 * --json emits one machine-readable object (scripts/bench.sh captures
 * it as BENCH_chaos.json; tools/trace_check --sim validates it).
 * --requests / --seed resize the study (check.sh runs a truncated
 * smoke).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "serverless/chaos.h"
#include "serverless/cluster.h"
#include "workload/synthetic.h"

using namespace medusa;

namespace {

/** The scale bench's hand-made Medusa-like profile (§7.1 ballpark). */
serverless::ServingProfile
chaosProfile()
{
    serverless::ServingProfile p;
    p.model_name = "chaos-sim";
    p.strategy = llm::Strategy::kMedusa;
    p.loading_sec = 1.4;
    p.cold_start_sec = 1.4;
    p.batch_sizes = {1, 4, 8, 16};
    p.decode_step_sec = {0.012, 0.016, 0.022, 0.035};
    p.prefill_tokens = {128, 512, 2048};
    p.prefill_sec = {0.045, 0.12, 0.42};
    return p;
}

/**
 * The study trace: lower rps than the scale bench so the default
 * 10^5 requests span ~50 s of simulated time — enough room for mtbf
 * schedules to fire repeatedly. Every request carries a TTFT deadline.
 */
workload::SyntheticTraceOptions
traceOptions(u64 seed, u64 requests)
{
    workload::SyntheticTraceOptions o;
    o.seed = seed;
    o.requests_per_sec = 2000;
    o.duration_sec = 1e9;
    o.max_requests = requests;
    o.diurnal_period_sec = 60;
    o.diurnal_amplitude = 0.6;
    o.mean_output_tokens = 64;
    o.max_output_tokens = 512;
    o.num_models = 8;
    o.slo_ttft_sec = 15.0;
    return o;
}

/** Cluster sizing shared by every cell (the scale bench's regime). */
serverless::ClusterOptions
clusterOptions()
{
    serverless::ClusterOptions o;
    o.num_gpus = 4096;
    o.max_seqs_per_instance = 4;
    o.idle_timeout_sec = 5.0;
    o.num_models = 8;
    o.gpus_per_node = 8;
    o.node_artifact_slots = 2;
    o.node_artifact_miss_sec = 8.0; // remote checkpoint fetch
    o.vanilla_cold_start_sec = 10.0;
    return o;
}

/** Deadline-aware scheduling armed identically in every cell. */
serverless::SloPolicy
sloPolicy()
{
    serverless::SloPolicy s;
    s.default_ttft_sec = 15.0;
    s.admission_control = true;
    s.shed_on_deadline = true;
    s.max_retries = 2;
    s.retry_backoff_sec = 0.05;
    s.degrade_to_vanilla = true;
    return s;
}

struct Intensity
{
    const char *name = "";
    serverless::ChaosPlan plan;
};

/** none / light / moderate / heavy — mtbf halves at each step. */
std::vector<Intensity>
intensities(u64 seed)
{
    std::vector<Intensity> out;
    out.push_back({"none", {}});
    serverless::ChaosPlan light;
    light.seed = seed;
    light.node_mtbf_sec = 40.0;
    light.node_mttr_sec = 5.0;
    light.inst_mtbf_sec = 10.0;
    light.store_mtbf_sec = 60.0;
    light.store_mttr_sec = 3.0;
    light.gray_mtbf_sec = 45.0;
    light.gray_mttr_sec = 8.0;
    light.gray_slowdown = 4.0;
    out.push_back({"light", light});
    serverless::ChaosPlan moderate = light;
    moderate.node_mtbf_sec /= 2;
    moderate.inst_mtbf_sec /= 2;
    moderate.store_mtbf_sec /= 2;
    moderate.gray_mtbf_sec /= 2;
    out.push_back({"moderate", moderate});
    serverless::ChaosPlan heavy = moderate;
    heavy.node_mtbf_sec /= 2;
    heavy.inst_mtbf_sec /= 2;
    heavy.store_mtbf_sec /= 2;
    heavy.gray_mtbf_sec /= 2;
    out.push_back({"heavy", heavy});
    return out;
}

struct Cell
{
    const char *policy = "";
    const char *intensity = "";
    serverless::TraceMetrics m;
    f64 wall_sec = 0;
};

serverless::TraceMetrics
timedRun(const serverless::ClusterOptions &opts,
         const serverless::ServingProfile &profile,
         const std::vector<workload::Request> &trace, f64 *wall_sec)
{
    serverless::ClusterOptions copts = opts;
    copts.profile = &profile;
    const auto t0 = std::chrono::steady_clock::now();
    auto m = serverless::simulateCluster(copts, trace);
    const auto t1 = std::chrono::steady_clock::now();
    *wall_sec = std::chrono::duration<f64>(t1 - t0).count();
    return m;
}

unsigned long long
ull(u64 v)
{
    return static_cast<unsigned long long>(v);
}

f64
attainment(const serverless::TraceMetrics &m)
{
    return m.completed > 0
               ? static_cast<f64>(m.deadline_met) /
                     static_cast<f64>(m.completed)
               : 0.0;
}

bool
conserved(const serverless::TraceMetrics &m, u64 trace_size)
{
    return m.completed + m.shed_admission + m.shed_deadline +
               m.failed_requests ==
           trace_size;
}

bool
sameCounters(const serverless::TraceMetrics &a,
             const serverless::TraceMetrics &b)
{
    return a.completed == b.completed &&
           a.shed_admission == b.shed_admission &&
           a.shed_deadline == b.shed_deadline &&
           a.failed_requests == b.failed_requests &&
           a.requeued_requests == b.requeued_requests &&
           a.instance_crashes == b.instance_crashes &&
           a.node_crashes == b.node_crashes &&
           a.deadline_met == b.deadline_met &&
           a.cold_starts == b.cold_starts &&
           a.sim_events == b.sim_events &&
           a.ttft_sec.samples() == b.ttft_sec.samples() &&
           a.gpu_seconds == b.gpu_seconds &&
           a.makespan_sec == b.makespan_sec;
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    u64 requests = 100000;
    u64 seed = 20250808;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg.rfind("--requests=", 0) == 0) {
            requests = std::strtoull(arg.c_str() + 11, nullptr, 10);
        } else if (arg.rfind("--seed=", 0) == 0) {
            seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--json] [--requests=N] "
                         "[--seed=N]\n",
                         argv[0]);
            return 2;
        }
    }

    const serverless::ServingProfile profile = chaosProfile();
    const auto trace =
        workload::generateSyntheticTrace(traceOptions(seed, requests));

    // ---- invariant 3: disabled plan == no plan, bit for bit --------
    const serverless::ChaosPlan disabled;
    {
        serverless::ClusterOptions plain = clusterOptions();
        f64 w;
        const auto a = timedRun(plain, profile, trace, &w);
        serverless::ClusterOptions armed = plain;
        armed.chaos = &disabled;
        const auto b = timedRun(armed, profile, trace, &w);
        if (!sameCounters(a, b)) {
            std::fprintf(
                stderr,
                "FAIL: disabled ChaosPlan perturbed the simulation\n");
            return 1;
        }
    }

    // ---- the policy x intensity matrix ------------------------------
    const char *policy_names[] = {"baseline", "keep_alive", "affinity"};
    const serverless::SchedulerPolicy policies[] = {
        serverless::SchedulerPolicy::kBaseline,
        serverless::SchedulerPolicy::kKeepAlive,
        serverless::SchedulerPolicy::kAffinity,
    };
    const auto levels = intensities(seed);

    std::vector<Cell> cells;
    for (std::size_t pi = 0; pi < 3; ++pi) {
        for (const Intensity &level : levels) {
            serverless::ClusterOptions o = clusterOptions();
            o.policy = policies[pi];
            if (o.policy == serverless::SchedulerPolicy::kKeepAlive) {
                o.keep_alive_instances = 256;
                o.keep_alive_idle_sec = 30.0;
            }
            o.slo = sloPolicy();
            if (level.plan.enabled()) {
                o.chaos = &level.plan;
            }
            Cell c;
            c.policy = policy_names[pi];
            c.intensity = level.name;
            c.m = timedRun(o, profile, trace, &c.wall_sec);
            // ---- invariant 1: conservation in EVERY cell ----------
            if (!conserved(c.m, trace.size())) {
                std::fprintf(stderr,
                             "FAIL: request conservation violated in "
                             "cell %s/%s\n",
                             c.policy, c.intensity);
                return 1;
            }
            cells.push_back(std::move(c));
        }
    }

    // ---- invariant 2: heaviest cell is deterministic ----------------
    {
        serverless::ClusterOptions o = clusterOptions();
        o.policy = serverless::SchedulerPolicy::kAffinity;
        o.slo = sloPolicy();
        o.chaos = &levels.back().plan;
        f64 w;
        const auto rerun = timedRun(o, profile, trace, &w);
        if (!sameCounters(cells.back().m, rerun)) {
            std::fprintf(stderr,
                         "FAIL: heaviest cell not deterministic "
                         "across reruns\n");
            return 1;
        }
    }

    if (json) {
        std::printf("{\n");
        std::printf("  \"schema_version\": 1,\n");
        std::printf("  \"requests\": %llu,\n", ull(requests));
        std::printf("  \"seed\": %llu,\n", ull(seed));
        std::printf("  \"empty_plan_bit_identical\": true,\n");
        std::printf("  \"rerun_deterministic\": true,\n");
        std::printf("  \"cells\": [\n");
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const Cell &c = cells[i];
            const serverless::TraceMetrics &m = c.m;
            std::printf(
                "    {\"policy\": \"%s\", \"intensity\": \"%s\", "
                "\"completed\": %llu, "
                "\"shed_admission\": %llu, \"shed_deadline\": %llu, "
                "\"failed_requests\": %llu, "
                "\"requeued_requests\": %llu, \"slo_retries\": %llu, "
                "\"instance_crashes\": %llu, \"node_crashes\": %llu, "
                "\"node_recoveries\": %llu, \"lost_residency\": %llu, "
                "\"store_outages\": %llu, \"gray_windows\": %llu, "
                "\"degraded_launches\": %llu, "
                "\"deadline_met\": %llu, \"deadline_missed\": %llu, "
                "\"slo_attainment\": %.4f, \"goodput_qps\": %.1f, "
                "\"ttft_p50_sec\": %.4f, \"ttft_p99_sec\": %.4f, "
                "\"gpu_seconds\": %.1f, \"wall_sec\": %.4f}%s\n",
                c.policy, c.intensity, ull(m.completed),
                ull(m.shed_admission), ull(m.shed_deadline),
                ull(m.failed_requests), ull(m.requeued_requests),
                ull(m.slo_retries), ull(m.instance_crashes),
                ull(m.node_crashes), ull(m.node_recoveries),
                ull(m.lost_residency), ull(m.store_outages),
                ull(m.gray_windows), ull(m.degraded_launches),
                ull(m.deadline_met), ull(m.deadline_missed),
                attainment(m), m.goodput_qps, m.ttft_sec.p50(),
                m.ttft_sec.p99(), m.gpu_seconds, c.wall_sec,
                i + 1 < cells.size() ? "," : "");
        }
        std::printf("  ]\n}\n");
    } else {
        std::printf("=== chaos / SLO study: %llu requests, 8 models, "
                    "%u GPUs ===\n\n",
                    ull(requests), clusterOptions().num_gpus);
        std::printf("invariants: empty-plan identity OK, per-cell "
                    "conservation OK, rerun determinism OK\n\n");
        std::printf("%-10s %-9s %9s %7s %7s %7s %8s %8s %7s %9s\n",
                    "policy", "chaos", "done", "shed", "fail",
                    "requeue", "crashes", "attain", "goodput",
                    "p99 ttft");
        for (const Cell &c : cells) {
            const serverless::TraceMetrics &m = c.m;
            std::printf(
                "%-10s %-9s %9llu %7llu %7llu %7llu %8llu %7.1f%% "
                "%7.0f %9.3f\n",
                c.policy, c.intensity, ull(m.completed),
                ull(m.shed_admission + m.shed_deadline),
                ull(m.failed_requests), ull(m.requeued_requests),
                ull(m.instance_crashes + m.node_crashes),
                100.0 * attainment(m), m.goodput_qps,
                m.ttft_sec.p99());
        }
    }
    return 0;
}
