/**
 * @file
 * Shared helpers for the experiment harness binaries (one per table /
 * figure of the paper; see DESIGN.md §5 and EXPERIMENTS.md).
 */

#ifndef MEDUSA_BENCH_BENCH_UTIL_H
#define MEDUSA_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <string>

#include "common/serialize.h"
#include "medusa/offline.h"

namespace medusa::bench {

/**
 * Materialize a model's artifact, caching it on disk under ./artifacts
 * so experiment binaries can share offline phases.
 * @param[out] offline_result if non-null and a fresh materialization
 *             ran, receives the full offline result (timings).
 */
inline StatusOr<core::Artifact>
materializeCached(const llm::ModelConfig &model,
                  core::OfflineResult *offline_result = nullptr)
{
    const std::string path = "artifacts/" + model.name + ".medusa";
    auto bytes = readFile(path);
    if (bytes.isOk()) {
        auto artifact = core::Artifact::deserialize(std::move(*bytes));
        if (artifact.isOk() && artifact->model_name == model.name &&
            artifact->model_seed == model.seed) {
            return artifact;
        }
        // Stale or corrupt cache: fall through and rebuild.
    }
    core::OfflineOptions opts;
    opts.model = model;
    opts.validate = true;
    opts.validate_batch_sizes = {1, 64};
    MEDUSA_ASSIGN_OR_RETURN(core::OfflineResult result,
                            core::materialize(opts));
    if (offline_result != nullptr) {
        *offline_result = result;
    }
    MEDUSA_RETURN_IF_ERROR(
        writeFile(path, result.artifact.serialize()));
    return std::move(result.artifact);
}

/** Abort the bench with a message if a status is an error. */
inline void
checkOk(const Status &status, const char *what)
{
    if (!status.isOk()) {
        std::fprintf(stderr, "%s failed: %s\n", what,
                     status.toString().c_str());
        std::exit(1);
    }
}

template <typename T>
inline T
unwrap(StatusOr<T> value, const char *what)
{
    if (!value.isOk()) {
        std::fprintf(stderr, "%s failed: %s\n", what,
                     value.status().toString().c_str());
        std::exit(1);
    }
    return std::move(value).value();
}

inline void
printRule(char c = '-', int width = 78)
{
    for (int i = 0; i < width; ++i) {
        std::putchar(c);
    }
    std::putchar('\n');
}

} // namespace medusa::bench

#endif // MEDUSA_BENCH_BENCH_UTIL_H
