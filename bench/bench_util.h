/**
 * @file
 * Shared helpers for the experiment harness binaries (one per table /
 * figure of the paper; see DESIGN.md §5 and EXPERIMENTS.md).
 */

#ifndef MEDUSA_BENCH_BENCH_UTIL_H
#define MEDUSA_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/metrics.h"
#include "common/serialize.h"
#include "common/trace.h"
#include "medusa/image.h"
#include "medusa/offline.h"

namespace medusa::bench {

/**
 * Shared `--trace-out PATH` / `--metrics-out PATH` handling for the
 * experiment binaries (DESIGN.md §12). Construct it first thing in
 * main(): it strips the flags it owns from argv so the bench's own
 * argument handling never sees them. When a flag was given, trace() /
 * metrics() return live sinks to plug into PipelineOptions (or to feed
 * via addSpans()); finish() writes the Chrome trace and the flat
 * metrics JSON. Without the flags every hook is null — the bench runs
 * untraced at zero cost.
 */
class Reporter
{
  public:
    Reporter(int &argc, char **argv)
    {
        int kept = 1;
        for (int i = 1; i < argc; ++i) {
            if (matchFlag("--trace-out", i, argc, argv, trace_path_) ||
                matchFlag("--metrics-out", i, argc, argv,
                          metrics_path_)) {
                continue;
            }
            argv[kept++] = argv[i];
        }
        argc = kept;
    }

    /** Span sink for PipelineOptions::trace; null when not requested. */
    TraceRecorder *
    trace()
    {
        return trace_path_.empty() ? nullptr : &recorder_;
    }

    /** Metrics sink for PipelineOptions::metrics; null when off. */
    MetricsRegistry *
    metrics()
    {
        return metrics_path_.empty() ? nullptr : &registry_;
    }

    /** Merge already-collected spans (e.g. a ColdStartReport's). */
    void
    addSpans(std::span<const TraceEvent> spans, u32 track_offset = 0)
    {
        if (!trace_path_.empty()) {
            recorder_.appendAll(spans, track_offset);
        }
    }

    void
    setTrackName(u32 track, std::string name)
    {
        recorder_.setTrackName(track, std::move(name));
    }

    /** Write the requested files; call once before the bench exits. */
    void
    finish()
    {
        if (!trace_path_.empty()) {
            writeText(trace_path_, recorder_.toChromeJson(),
                      "--trace-out");
            std::fprintf(stderr, "trace written to %s\n",
                         trace_path_.c_str());
        }
        if (!metrics_path_.empty()) {
            writeText(metrics_path_, registry_.toJson(),
                      "--metrics-out");
            std::fprintf(stderr, "metrics written to %s\n",
                         metrics_path_.c_str());
        }
    }

  private:
    static bool
    matchFlag(std::string_view flag, int &i, int argc, char **argv,
              std::string &out)
    {
        const std::string_view arg = argv[i];
        if (arg == flag) {
            if (i + 1 < argc) {
                out = argv[++i];
            }
            return true;
        }
        if (arg.size() > flag.size() + 1 &&
            arg.substr(0, flag.size()) == flag &&
            arg[flag.size()] == '=') {
            out = std::string(arg.substr(flag.size() + 1));
            return true;
        }
        return false;
    }

    static void
    writeText(const std::string &path, const std::string &text,
              const char *what)
    {
        const std::vector<u8> bytes(text.begin(), text.end());
        const Status status = writeFile(path, bytes);
        if (!status.isOk()) {
            std::fprintf(stderr, "%s failed: %s\n", what,
                         status.toString().c_str());
            std::exit(1);
        }
    }

    std::string trace_path_;
    std::string metrics_path_;
    /** Sink recorder: events arrive pre-timed from engine reports. */
    TraceRecorder recorder_;
    MetricsRegistry registry_;
};

/**
 * Materialize a model's artifact, caching it on disk under ./artifacts
 * so experiment binaries can share offline phases.
 * @param[out] offline_result if non-null and a fresh materialization
 *             ran, receives the full offline result (timings).
 */
inline StatusOr<core::Artifact>
materializeCached(const llm::ModelConfig &model,
                  core::OfflineResult *offline_result = nullptr)
{
    const std::string path = "artifacts/" + model.name + ".medusa";
    auto bytes = readFile(path);
    if (bytes.isOk()) {
        auto artifact = core::Artifact::deserialize(std::move(*bytes));
        if (artifact.isOk() && artifact->model_name == model.name &&
            artifact->model_seed == model.seed) {
            return artifact;
        }
        // Stale or corrupt cache: fall through and rebuild.
    }
    core::OfflineOptions opts;
    opts.model = model;
    opts.pipeline.validate = true;
    opts.pipeline.validate_batch_sizes = {1, 64};
    MEDUSA_ASSIGN_OR_RETURN(core::OfflineResult result,
                            core::materialize(opts));
    if (offline_result != nullptr) {
        *offline_result = result;
    }
    MEDUSA_RETURN_IF_ERROR(
        writeFile(path, result.artifact.serialize()));
    MEDUSA_RETURN_IF_ERROR(writeFile(
        "artifacts/" + model.name + ".image", result.image_bytes));
    return std::move(result.artifact);
}

/**
 * The serialized v6 image for a model, disk-cached under ./artifacts
 * next to the artifact. A stale or corrupt cache re-materializes both
 * files so the artifact and image always come from the same offline
 * run.
 */
inline StatusOr<std::vector<u8>>
materializeImageCached(const llm::ModelConfig &model)
{
    const std::string path = "artifacts/" + model.name + ".image";
    auto bytes = readFile(path);
    if (bytes.isOk()) {
        auto image = core::MaterializedImage::openView(
            std::span<const u8>(*bytes));
        if (image.isOk() && image->model_name == model.name &&
            image->model_seed == model.seed) {
            return std::move(*bytes);
        }
        // Stale or corrupt cache: fall through and rebuild.
    }
    core::OfflineOptions opts;
    opts.model = model;
    opts.pipeline.validate = true;
    opts.pipeline.validate_batch_sizes = {1, 64};
    MEDUSA_ASSIGN_OR_RETURN(core::OfflineResult result,
                            core::materialize(opts));
    MEDUSA_RETURN_IF_ERROR(writeFile(
        "artifacts/" + model.name + ".medusa",
        result.artifact.serialize()));
    MEDUSA_RETURN_IF_ERROR(writeFile(path, result.image_bytes));
    return std::move(result.image_bytes);
}

/** Abort the bench with a message if a status is an error. */
inline void
checkOk(const Status &status, const char *what)
{
    if (!status.isOk()) {
        std::fprintf(stderr, "%s failed: %s\n", what,
                     status.toString().c_str());
        std::exit(1);
    }
}

template <typename T>
inline T
unwrap(StatusOr<T> value, const char *what)
{
    if (!value.isOk()) {
        std::fprintf(stderr, "%s failed: %s\n", what,
                     value.status().toString().c_str());
        std::exit(1);
    }
    return std::move(value).value();
}

inline void
printRule(char c = '-', int width = 78)
{
    for (int i = 0; i < width; ++i) {
        std::putchar(c);
    }
    std::putchar('\n');
}

} // namespace medusa::bench

#endif // MEDUSA_BENCH_BENCH_UTIL_H
