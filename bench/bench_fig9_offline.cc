/**
 * @file
 * Figure 9: the overhead of Medusa's offline phase (capturing stage +
 * analysis stage) for all ten models. Paper anchors: 39.2 s average
 * total, ~9.7 s capturing, analysis dominating, everything under one
 * minute.
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "common/stats.h"

using namespace medusa;

int
main()
{
    std::printf("=== Figure 9: offline phase overhead (10 models) "
                "===\n\n");
    std::printf("%-14s %12s %12s %10s %12s\n", "model", "capturing(s)",
                "analysis(s)", "total(s)", "artifact");
    bench::printRule();

    f64 sum_capture = 0, sum_analysis = 0;
    int count = 0;
    for (const llm::ModelConfig &model : llm::modelZoo()) {
        core::OfflineOptions opts;
        opts.model = model;
        opts.pipeline.validate = false; // Figure 9 measures capture + analysis
        auto result = bench::unwrap(core::materialize(opts),
                                    model.name.c_str());
        sum_capture += result.capture_stage_sec;
        sum_analysis += result.analysis_stage_sec;
        ++count;
        std::printf("%-14s %12.1f %12.1f %10.1f %12s\n",
                    model.name.c_str(), result.capture_stage_sec,
                    result.analysis_stage_sec, result.totalOffline(),
                    formatBytes(result.artifact.serialize().size())
                        .c_str());
    }
    bench::printRule();
    std::printf("average: capturing %.1f s (paper ~9.7), analysis %.1f "
                "s, total %.1f s (paper 39.2)\n",
                sum_capture / count, sum_analysis / count,
                (sum_capture + sum_analysis) / count);
    return 0;
}
