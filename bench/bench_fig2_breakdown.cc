/**
 * @file
 * Figure 2: loading-phase breakdown across all ten models under
 * vanilla vLLM. Reports the per-stage share, the combined
 * KV-init + capturing share (paper: 18% + 32% ~= 47% on average), and
 * the async-bubble analysis (for how many models weights loading
 * cannot hide tokenizer + KV-init; paper: 6 of 10).
 *
 * Stage numbers are derived from the ColdStartReport's `cold_start.*`
 * spans — the same events `--trace-out` exports — not from a separate
 * hand-kept timing struct.
 */

#include <cstdio>

#include "bench/bench_util.h"

using namespace medusa;

int
main(int argc, char **argv)
{
    bench::Reporter reporter(argc, argv);
    std::printf("=== Figure 2: loading phase breakdown (vLLM, 10 models) "
                "===\n\n");
    std::printf("%-14s %7s %7s %7s %7s %7s %8s | %6s %6s\n", "model",
                "struct", "weight", "token", "kvinit", "captur", "total",
                "kv%", "cap%");
    bench::printRule();

    f64 kv_share_sum = 0;
    f64 cap_share_sum = 0;
    int bubble_models = 0;
    int count = 0;
    u32 track = 0;
    for (const llm::ModelConfig &model : llm::modelZoo()) {
        llm::BaselineEngine::Options opts;
        opts.model = model;
        opts.strategy = llm::Strategy::kVllm;
        auto engine = bench::unwrap(llm::BaselineEngine::coldStart(opts),
                                    model.name.c_str());
        const ColdStartReport &report = engine->coldStartReport();
        const f64 struct_init = report.spanSec("cold_start.struct_init");
        const f64 weights = report.spanSec("cold_start.weights");
        const f64 tokenizer = report.spanSec("cold_start.tokenizer");
        const f64 kv_init = report.spanSec("cold_start.kv_init");
        const f64 capture = report.spanSec("cold_start.capture");
        const f64 total =
            struct_init + weights + tokenizer + kv_init + capture;
        const f64 kv_pct = 100.0 * kv_init / total;
        const f64 cap_pct = 100.0 * capture / total;
        kv_share_sum += kv_pct;
        cap_share_sum += cap_pct;
        ++count;
        // Bubble: async weights loading cannot cover tokenizer+KV-init.
        const bool bubble = weights < tokenizer + kv_init;
        bubble_models += bubble ? 1 : 0;
        std::printf("%-14s %7.2f %7.2f %7.2f %7.2f %7.2f %8.2f | %5.1f%% "
                    "%5.1f%%%s\n",
                    model.name.c_str(), struct_init, weights, tokenizer,
                    kv_init, capture, total, kv_pct, cap_pct,
                    bubble ? "  [bubble]" : "");
        reporter.addSpans(report.spans, track);
        reporter.setTrackName(track, model.name);
        ++track;
    }
    bench::printRule();
    std::printf("avg KV-init share: %.1f%% (paper ~18%%)   "
                "avg capture share: %.1f%% (paper ~32%%)   "
                "combined: %.1f%% (paper ~47%%)\n",
                kv_share_sum / count, cap_share_sum / count,
                (kv_share_sum + cap_share_sum) / count);
    std::printf("models with async bubble (weights < tokenizer+KV-init): "
                "%d of %d (paper: 6 of 10)\n",
                bubble_models, count);
    reporter.finish();
    return 0;
}
