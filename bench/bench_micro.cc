/**
 * @file
 * Google-benchmark microbenchmarks of the substrate hot paths: these
 * measure *host* wall time of the simulator itself (not virtual time),
 * guarding against regressions that would make the experiment harness
 * slow.
 */

#include <benchmark/benchmark.h>

#include <span>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "llm/runtime.h"
#include "llm/tokenizer.h"
#include "medusa/artifact.h"
#include "medusa/offline.h"
#include "medusa/restore.h"
#include "simcuda/caching_allocator.h"
#include "simcuda/kernels/builtin.h"

namespace medusa {
namespace {

llm::ModelConfig
tinyModel()
{
    llm::ModelConfig m = llm::findModel("Qwen1.5-0.5B").value();
    m.num_layers = 2;
    return m;
}

void
BM_CachingAllocatorReuse(benchmark::State &state)
{
    SimClock clock;
    CostModel cost;
    simcuda::GpuProcessOptions popts;
    simcuda::GpuProcess process(popts, &clock, &cost);
    simcuda::CachingAllocator alloc(&process);
    for (auto _ : state) {
        auto addr = alloc.allocate(4096, 64);
        benchmark::DoNotOptimize(addr);
        (void)alloc.free(*addr);
    }
}
BENCHMARK(BM_CachingAllocatorReuse);

void
BM_GraphCaptureReplay(benchmark::State &state)
{
    llm::ModelRuntime::Options opts;
    opts.model = tinyModel();
    llm::ModelRuntime rt(opts);
    (void)rt.initStructure();
    (void)rt.loadWeights();
    auto free_bytes = rt.profileFreeMemory();
    (void)rt.initKvCache(*free_bytes);
    const u32 bs = static_cast<u32>(state.range(0));
    (void)rt.warmupDecode(bs);
    auto graph = rt.captureDecode(bs);
    (void)rt.instantiateGraph(bs, *graph);
    for (auto _ : state) {
        auto logits = rt.graphDecodeLogits(bs);
        benchmark::DoNotOptimize(logits);
    }
    state.counters["nodes"] = static_cast<double>(graph->nodeCount());
}
BENCHMARK(BM_GraphCaptureReplay)->Arg(1)->Arg(8)->Arg(64);

void
BM_EagerDecode(benchmark::State &state)
{
    llm::ModelRuntime::Options opts;
    opts.model = tinyModel();
    llm::ModelRuntime rt(opts);
    (void)rt.initStructure();
    (void)rt.loadWeights();
    auto free_bytes = rt.profileFreeMemory();
    (void)rt.initKvCache(*free_bytes);
    const u32 bs = static_cast<u32>(state.range(0));
    (void)rt.warmupDecode(bs);
    for (auto _ : state) {
        auto logits = rt.eagerDecodeLogits(bs);
        benchmark::DoNotOptimize(logits);
    }
}
BENCHMARK(BM_EagerDecode)->Arg(1)->Arg(64);

void
BM_TokenizerEncode(benchmark::State &state)
{
    const std::string corpus = llm::syntheticCorpus(7, 8192);
    const auto tokenizer = llm::BpeTokenizer::train(corpus, 512);
    const std::string text = llm::syntheticCorpus(13, 512);
    for (auto _ : state) {
        auto ids = tokenizer.encode(text);
        benchmark::DoNotOptimize(ids);
    }
    state.SetBytesProcessed(
        static_cast<i64>(state.iterations() * text.size()));
}
BENCHMARK(BM_TokenizerEncode);

void
BM_ArtifactSerializeRoundTrip(benchmark::State &state)
{
    core::OfflineOptions opts;
    opts.model = tinyModel();
    opts.pipeline.validate = false;
    auto offline = core::materialize(opts);
    const auto bytes = offline->artifact.serialize();
    for (auto _ : state) {
        auto copy = core::Artifact::deserialize(bytes);
        benchmark::DoNotOptimize(copy);
    }
    state.SetBytesProcessed(
        static_cast<i64>(state.iterations() * bytes.size()));
}
BENCHMARK(BM_ArtifactSerializeRoundTrip);

void
BM_ArtifactDeserializeView(benchmark::State &state)
{
    // The zero-copy path: parse straight out of a borrowed buffer,
    // optionally skipping the permanent-contents sections the restore
    // won't touch.
    core::OfflineOptions opts;
    opts.model = tinyModel();
    opts.pipeline.validate = false;
    auto offline = core::materialize(opts);
    const auto bytes = offline->artifact.serialize();
    core::ArtifactReadOptions ropts;
    ropts.load_permanent_contents = state.range(0) != 0;
    for (auto _ : state) {
        auto copy = core::Artifact::deserializeView(
            std::span<const u8>(bytes), ropts);
        benchmark::DoNotOptimize(copy);
    }
    state.SetBytesProcessed(
        static_cast<i64>(state.iterations() * bytes.size()));
}
BENCHMARK(BM_ArtifactDeserializeView)
    ->Arg(1)
    ->Arg(0)
    ->ArgName("contents");

void
BM_OfflineMaterialize(benchmark::State &state)
{
    for (auto _ : state) {
        core::OfflineOptions opts;
        opts.model = tinyModel();
        opts.pipeline.validate = false;
        auto offline = core::materialize(opts);
        benchmark::DoNotOptimize(offline);
    }
}
BENCHMARK(BM_OfflineMaterialize)->Unit(benchmark::kMillisecond);

/**
 * One traced offline + cold start of the tiny model. Runs only when
 * `--trace-out` / `--metrics-out` were given: the microbench binary
 * then doubles as the smoke-test trace producer for scripts/check.sh,
 * exercising the whole span pipeline end to end.
 */
void
runTracedColdStart(bench::Reporter &reporter)
{
    core::OfflineOptions oopts;
    oopts.model = tinyModel();
    oopts.pipeline.validate = false;
    oopts.pipeline.trace = reporter.trace();
    oopts.pipeline.metrics = reporter.metrics();
    auto offline = core::materialize(oopts);
    bench::checkOk(offline.status(), "materialize");

    core::MedusaEngine::Options eopts;
    eopts.model = oopts.model;
    eopts.restore.pipeline.trace = reporter.trace();
    eopts.restore.pipeline.metrics = reporter.metrics();
    auto engine = core::MedusaEngine::coldStart(eopts, offline->artifact);
    bench::checkOk(engine.status(), "cold start");
    reporter.setTrackName(0, "medusa");
}

} // namespace
} // namespace medusa

/**
 * Like BENCHMARK_MAIN(), plus a --json convenience alias for
 * --benchmark_format=json so harness scripts can request
 * machine-readable output uniformly across the bench binaries, and the
 * shared --trace-out / --metrics-out reporting flags (DESIGN.md §12).
 */
int
main(int argc, char **argv)
{
    medusa::bench::Reporter reporter(argc, argv);
    static char json_flag[] = "--benchmark_format=json";
    std::vector<char *> args(argv, argv + argc);
    for (char *&arg : args) {
        if (std::string(arg) == "--json") {
            arg = json_flag;
        }
    }
    int n = static_cast<int>(args.size());
    benchmark::Initialize(&n, args.data());
    if (benchmark::ReportUnrecognizedArguments(n, args.data())) {
        return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    if (reporter.trace() != nullptr || reporter.metrics() != nullptr) {
        medusa::runTracedColdStart(reporter);
    }
    reporter.finish();
    return 0;
}
