/**
 * @file
 * The paper's §2.4 "potential solutions and limitations" plus the §9
 * checkpoint/restore comparison, quantified:
 *
 *  1. HOT SPARES eliminate cold starts but occupy GPUs continuously —
 *     measured as GPU-seconds billed vs p99 TTFT.
 *  2. DEFERRED CAPTURE does not remove the capturing cost; it delays
 *     and disperses it into serving-time latency spikes.
 *  3. CHECKPOINT/RESTORE restores fast but its image is the whole
 *     device footprint (tens of GB) vs Medusa's few-MB artifact.
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "medusa/checkpoint.h"
#include "medusa/restore.h"
#include "serverless/cluster.h"

using namespace medusa;

int
main()
{
    auto model = bench::unwrap(llm::findModel("Qwen1.5-4B"),
                               "findModel");
    auto artifact = bench::unwrap(bench::materializeCached(model),
                                  "materialize");

    // ---- shared trace ------------------------------------------------
    workload::TraceOptions topts;
    topts.requests_per_sec = 3.0;
    topts.duration_sec = 600;
    topts.seed = 99;
    const auto trace = workload::generateShareGptTrace(topts);

    auto profileFor = [&](llm::Strategy s) {
        serverless::ProfileOptions popts;
        popts.model = model;
        popts.strategy = s;
        popts.artifact = &artifact;
        return bench::unwrap(serverless::buildServingProfile(popts),
                             "profile");
    };
    const auto vllm_profile = profileFor(llm::Strategy::kVllm);
    const auto medusa_profile = profileFor(llm::Strategy::kMedusa);
    const auto deferred_profile =
        profileFor(llm::Strategy::kDeferredCapture);

    // Low request rate: the regime where the paper calls hot spares
    // "unaffordable" — mostly-idle GPUs are billed around the clock.
    workload::TraceOptions sparse_opts;
    sparse_opts.requests_per_sec = 0.4;
    sparse_opts.duration_sec = 1800;
    sparse_opts.seed = 7;
    const auto sparse = workload::generateShareGptTrace(sparse_opts);

    std::printf("=== §2.4 (1): hot spares vs on-demand cold starts "
                "===\n");
    std::printf("(%s, RPS %.1f over %.0f s, %zu requests — a "
                "low-traffic endpoint)\n\n",
                model.name.c_str(), sparse_opts.requests_per_sec,
                sparse_opts.duration_sec, sparse.size());
    std::printf("%-26s %9s %9s %12s %7s\n", "policy", "p50 (s)",
                "p99 (s)", "GPU-seconds", "colds");
    for (u32 spares : {0u, 1u, 2u, 4u}) {
        serverless::ClusterOptions copts;
        copts.hot_spares = spares;
        copts.profile = &vllm_profile;
        auto metrics = serverless::simulateCluster(copts, sparse);
        char label[64];
        std::snprintf(label, sizeof(label), "vLLM + %u hot spare%s",
                      spares, spares == 1 ? "" : "s");
        std::printf("%-26s %9.3f %9.3f %12.0f %7llu\n", label,
                    metrics.ttft_sec.p50(), metrics.ttft_sec.p99(),
                    metrics.gpu_seconds,
                    static_cast<unsigned long long>(
                        metrics.cold_starts));
    }
    {
        serverless::ClusterOptions copts;
        copts.profile = &medusa_profile;
        auto metrics = serverless::simulateCluster(copts, sparse);
        std::printf("%-26s %9.3f %9.3f %12.0f %7llu\n",
                    "Medusa (no spares)", metrics.ttft_sec.p50(),
                    metrics.ttft_sec.p99(), metrics.gpu_seconds,
                    static_cast<unsigned long long>(
                        metrics.cold_starts));
    }
    std::printf("-> spares buy tail latency with always-on GPU cost "
                "(and must be provisioned per model type);\n   Medusa "
                "approaches their latency pay-as-you-go.\n\n");

    std::printf("=== §2.4 (2): deferring the capturing stage ===\n\n");
    std::printf("%-18s %10s | %10s %10s | %10s %10s\n", "strategy",
                "loading(s)", "TTFT p99", "TTFT mean", "E2E p99",
                "E2E mean");
    for (const auto *profile :
         {&vllm_profile, &deferred_profile, &medusa_profile}) {
        serverless::ClusterOptions copts;
        copts.profile = profile;
        auto metrics = serverless::simulateCluster(copts, trace);
        std::printf("%-18s %10.2f | %10.3f %10.3f | %10.3f %10.3f\n",
                    llm::strategyName(profile->strategy),
                    profile->loading_sec, metrics.ttft_sec.p99(),
                    metrics.ttft_sec.mean(), metrics.e2e_sec.p99(),
                    metrics.e2e_sec.mean());
    }
    f64 dispersed = 0;
    for (f64 p : deferred_profile.capture_penalty_sec) {
        dispersed += p;
    }
    std::printf("-> deferring shortens loading, but every fresh "
                "instance re-pays warm-up+capture lazily during\n"
                "   serving: up to %.2f s of capture work per instance "
                "surfaces as decode stalls — the cost is\n   \"merely "
                "delayed and dispersed\", and unlike Medusa it recurs "
                "at every cold start.\n\n",
                dispersed);

    std::printf("=== §9: checkpoint/restore vs Medusa ===\n\n");
    llm::BaselineEngine::Options bopts;
    bopts.model = model;
    bopts.strategy = llm::Strategy::kVllm;
    auto donor = bench::unwrap(llm::BaselineEngine::coldStart(bopts),
                               "donor engine");
    auto image = bench::unwrap(
        core::CheckpointEngine::checkpoint(*donor), "checkpoint");
    auto restored = bench::unwrap(
        core::CheckpointEngine::restore(image), "restore");

    core::MedusaEngine::Options mopts;
    mopts.model = model;
    auto medusa = bench::unwrap(
        core::MedusaEngine::coldStart(mopts, artifact), "medusa");

    std::printf("%-22s %12s %14s\n", "approach", "loading (s)",
                "persisted state");
    std::printf("%-22s %12.2f %14s\n", "vanilla vLLM",
                donor->coldStartReport().times.loading, "-");
    std::printf("%-22s %12.2f %14s\n", "checkpoint/restore",
                restored->times().loading,
                formatBytes(image.totalBytes()).c_str());
    std::printf("%-22s %12.2f %14s\n", "Medusa",
                medusa->coldStartReport().times.loading,
                formatBytes(artifact.serialize().size()).c_str());
    std::printf("\n-> a full checkpoint restores in one sequential "
                "read but ships the whole device footprint;\n   Medusa "
                "materializes only what cannot be cheaply rebuilt "
                "(%llux smaller state).\n",
                static_cast<unsigned long long>(
                    image.totalBytes() / artifact.serialize().size()));
    return 0;
}
