/**
 * @file
 * Figure 8: per-stage breakdown of the loading phase for vLLM,
 * vLLM+ASYNC and Medusa on Qwen1.5 4B. Paper anchors: vLLM total
 * 2.85 s (0.85 / 0.39 / 0.21 / 0.50 / 0.90); ASYNC -13.0% with the
 * weights-vs-profiling interference (+0.08 s on weights) and a 0.26 s
 * bubble; Medusa -41.4% with KV-init 0.50 -> 0.02 and capturing
 * 0.90 -> 0.57.
 *
 * Stage numbers are derived from each engine's ColdStartReport spans
 * (the `cold_start.*` events `--trace-out` exports); the composed
 * loading latency comes from the same report.
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "medusa/restore.h"

using namespace medusa;

namespace {

/** Per-stage seconds recovered from a report's cold_start.* spans. */
struct Stages
{
    f64 struct_init;
    f64 weights;
    f64 tokenizer;
    f64 kv_init;
    f64 capture;
    f64 loading;

    explicit Stages(const ColdStartReport &report)
        : struct_init(report.spanSec("cold_start.struct_init")),
          weights(report.spanSec("cold_start.weights")),
          tokenizer(report.spanSec("cold_start.tokenizer")),
          kv_init(report.spanSec("cold_start.kv_init")),
          capture(report.spanSec("cold_start.capture")),
          loading(report.loadingSec())
    {
    }
};

} // namespace

int
main(int argc, char **argv)
{
    bench::Reporter reporter(argc, argv);
    auto model =
        bench::unwrap(llm::findModel("Qwen1.5-4B"), "findModel");
    auto artifact = bench::unwrap(bench::materializeCached(model),
                                  "materialize");

    llm::BaselineEngine::Options bopts;
    bopts.model = model;
    bopts.strategy = llm::Strategy::kVllm;
    auto vllm = bench::unwrap(llm::BaselineEngine::coldStart(bopts),
                              "vLLM");
    bopts.strategy = llm::Strategy::kVllmAsync;
    auto async = bench::unwrap(llm::BaselineEngine::coldStart(bopts),
                               "vLLM+ASYNC");
    core::MedusaEngine::Options mopts;
    mopts.model = model;
    mopts.restore.pipeline.metrics = reporter.metrics();
    auto medusa = bench::unwrap(
        core::MedusaEngine::coldStart(mopts, artifact), "Medusa");

    const Stages v(vllm->coldStartReport());
    const Stages a(async->coldStartReport());
    const Stages m(medusa->coldStartReport());
    u32 track = 0;
    const std::pair<const char *, const ColdStartReport *> engines[] = {
        {"vLLM", &vllm->coldStartReport()},
        {"vLLM+ASYNC", &async->coldStartReport()},
        {"Medusa", &medusa->coldStartReport()},
    };
    for (const auto &[name, report] : engines) {
        reporter.addSpans(report->spans, track);
        reporter.setTrackName(track, name);
        ++track;
    }

    const CostModel cost;
    std::printf("=== Figure 8: strategy breakdown, Qwen1.5 4B ===\n\n");
    std::printf("%-12s %7s %8s %7s %7s %8s | %8s %9s\n", "strategy",
                "struct", "weights", "token", "kvinit", "capture",
                "loading", "vs vLLM");
    bench::printRule('-', 88);

    const f64 base = v.loading;
    auto line = [&](const char *name, const Stages &t,
                    f64 weights_shown) {
        std::printf("%-12s %7.2f %8.2f %7.2f %7.2f %8.2f | %8.2f %8.1f%%"
                    "\n",
                    name, t.struct_init, weights_shown, t.tokenizer,
                    t.kv_init, t.capture, t.loading,
                    100.0 * (1.0 - t.loading / base));
    };
    line("vLLM", v, v.weights);
    // ASYNC's weights loading runs concurrently with the profiling
    // forwarding and suffers the measured interference.
    line("vLLM+ASYNC", a,
         a.weights * cost.weights_profiling_interference);
    line("Medusa", m, m.weights);
    bench::printRule('-', 88);

    const f64 async_weights =
        a.weights * cost.weights_profiling_interference;
    const f64 bubble = std::max(
        0.0, a.tokenizer + a.kv_init - async_weights);
    std::printf("\nASYNC interference on weights: +%.2f s "
                "(paper: +0.08 s)\n",
                async_weights - a.weights);
    std::printf("ASYNC bubble (tokenizer+KV-init beyond weights): "
                "%.2f s (paper: 0.26 s)\n",
                bubble);
    std::printf("Medusa KV-init: %.2f s (paper: 0.50 -> 0.02)\n",
                m.kv_init);
    std::printf("Medusa capture/restore stage: %.2f s "
                "(paper: 0.90 -> 0.57)\n",
                m.capture);
    std::printf("Medusa loading reduction: %.1f%% vs vLLM "
                "(paper: 41.4%%), %.1f%% vs ASYNC (paper: 32.7%%)\n",
                100.0 * (1.0 - m.loading / base),
                100.0 * (1.0 - m.loading / a.loading));
    reporter.finish();
    return 0;
}
