/**
 * @file
 * Figure 8: per-stage breakdown of the loading phase for vLLM,
 * vLLM+ASYNC and Medusa on Qwen1.5 4B. Paper anchors: vLLM total
 * 2.85 s (0.85 / 0.39 / 0.21 / 0.50 / 0.90); ASYNC -13.0% with the
 * weights-vs-profiling interference (+0.08 s on weights) and a 0.26 s
 * bubble; Medusa -41.4% with KV-init 0.50 -> 0.02 and capturing
 * 0.90 -> 0.57.
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "medusa/restore.h"

using namespace medusa;

int
main()
{
    auto model =
        bench::unwrap(llm::findModel("Qwen1.5-4B"), "findModel");
    auto artifact = bench::unwrap(bench::materializeCached(model),
                                  "materialize");

    llm::BaselineEngine::Options bopts;
    bopts.model = model;
    bopts.strategy = llm::Strategy::kVllm;
    auto vllm = bench::unwrap(llm::BaselineEngine::coldStart(bopts),
                              "vLLM");
    bopts.strategy = llm::Strategy::kVllmAsync;
    auto async = bench::unwrap(llm::BaselineEngine::coldStart(bopts),
                               "vLLM+ASYNC");
    core::MedusaEngine::Options mopts;
    mopts.model = model;
    auto medusa = bench::unwrap(
        core::MedusaEngine::coldStart(mopts, artifact), "Medusa");

    const CostModel cost;
    std::printf("=== Figure 8: strategy breakdown, Qwen1.5 4B ===\n\n");
    std::printf("%-12s %7s %8s %7s %7s %8s | %8s %9s\n", "strategy",
                "struct", "weights", "token", "kvinit", "capture",
                "loading", "vs vLLM");
    bench::printRule('-', 88);

    const f64 base = vllm->times().loading;
    auto line = [&](const char *name, const llm::StageTimes &t,
                    f64 weights_shown) {
        std::printf("%-12s %7.2f %8.2f %7.2f %7.2f %8.2f | %8.2f %8.1f%%"
                    "\n",
                    name, t.struct_init, weights_shown, t.tokenizer,
                    t.kv_init, t.capture, t.loading,
                    100.0 * (1.0 - t.loading / base));
    };
    line("vLLM", vllm->times(), vllm->times().weights);
    // ASYNC's weights loading runs concurrently with the profiling
    // forwarding and suffers the measured interference.
    line("vLLM+ASYNC", async->times(),
         async->times().weights * cost.weights_profiling_interference);
    line("Medusa", medusa->times(), medusa->times().weights);
    bench::printRule('-', 88);

    const llm::StageTimes &a = async->times();
    const f64 async_weights =
        a.weights * cost.weights_profiling_interference;
    const f64 bubble = std::max(
        0.0, a.tokenizer + a.kv_init - async_weights);
    std::printf("\nASYNC interference on weights: +%.2f s "
                "(paper: +0.08 s)\n",
                async_weights - a.weights);
    std::printf("ASYNC bubble (tokenizer+KV-init beyond weights): "
                "%.2f s (paper: 0.26 s)\n",
                bubble);
    std::printf("Medusa KV-init: %.2f s (paper: 0.50 -> 0.02)\n",
                medusa->times().kv_init);
    std::printf("Medusa capture/restore stage: %.2f s "
                "(paper: 0.90 -> 0.57)\n",
                medusa->times().capture);
    std::printf("Medusa loading reduction: %.1f%% vs vLLM "
                "(paper: 41.4%%), %.1f%% vs ASYNC (paper: 32.7%%)\n",
                100.0 * (1.0 - medusa->times().loading / base),
                100.0 * (1.0 -
                         medusa->times().loading / async->times().loading));
    return 0;
}
