/**
 * @file
 * Figure 1: the cold start timeline when serving Qwen1.5 4B with
 * vanilla vLLM — runtime initialization, the five loading-phase stages
 * and the first-token generation, with the percentage split the paper
 * reports (runtime init 22%, loading 76%, first token 2%; KV-init +
 * capturing = ~50% of the loading phase).
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "serverless/profile.h"

using namespace medusa;

int
main()
{
    auto model = bench::unwrap(llm::findModel("Qwen1.5-4B"),
                               "findModel");

    // Full cold container (runtime init not absorbed by a warm pool).
    llm::BaselineEngine::Options opts;
    opts.model = model;
    opts.strategy = llm::Strategy::kVllm;
    opts.warm_container = false;
    auto engine =
        bench::unwrap(llm::BaselineEngine::coldStart(opts), "coldStart");
    const llm::StageTimes &t = engine->coldStartReport().times;

    // First-token generation: prefill of the ShareGPT-average prompt
    // (161 tokens) plus one decode step.
    const f64 prefill =
        bench::unwrap(engine->runtime().measurePrefillSec(161),
                      "measurePrefill");
    const f64 decode =
        bench::unwrap(engine->runtime().measureDecodeStepSec(1, true),
                      "measureDecode");
    const f64 first_token = prefill + decode;
    const f64 total = t.runtime_init + t.loading + first_token;

    std::printf("=== Figure 1: cold start timeline, Qwen1.5 4B (vLLM) "
                "===\n\n");
    std::printf("%-28s %8s %7s\n", "phase", "sec", "share");
    bench::printRule();
    auto line = [&](const char *name, f64 sec) {
        std::printf("%-28s %8.3f %6.1f%%\n", name, sec,
                    100.0 * sec / total);
    };
    line("initializing runtime", t.runtime_init);
    line("  model structure init", t.struct_init);
    line("  model weights loading", t.weights);
    line("  tokenizer loading", t.tokenizer);
    line("  KV cache initialization", t.kv_init);
    line("  CUDA graph capturing", t.capture);
    line("loading phase (total)", t.loading);
    line("generating first token", first_token);
    bench::printRule();
    line("cold start total", total);
    std::printf("\npaper: runtime init 22%% / loading 76%% / first token "
                "2%%\n");
    std::printf("KV-init + capturing share of loading: %.1f%% "
                "(paper: ~50%%)\n",
                100.0 * (t.kv_init + t.capture) / t.loading);
    return 0;
}
