/**
 * @file
 * Figure 3: the acceleration brought by CUDA graphs. For each model,
 * inference latency (prefill of the 161-token ShareGPT-average prompt
 * plus generation of 338 output tokens at batch size 1) with and
 * without CUDA graphs, on an already-loaded engine. The paper reports
 * accelerations up to 2.4x, larger for smaller models whose decode
 * steps are launch-overhead-bound.
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "serverless/profile.h"

using namespace medusa;

namespace {

constexpr u32 kPromptTokens = 161;
constexpr u32 kOutputTokens = 338;

f64
inferenceLatency(const serverless::ServingProfile &profile)
{
    // First token from prefill; the remaining 337 from decode steps.
    return profile.prefill(kPromptTokens) +
           static_cast<f64>(kOutputTokens - 1) * profile.decodeStep(1);
}

} // namespace

int
main()
{
    std::printf("=== Figure 3: acceleration brought by the CUDA graph "
                "===\n");
    std::printf("(prompt %u tokens, output %u tokens — ShareGPT "
                "averages)\n\n",
                kPromptTokens, kOutputTokens);
    std::printf("%-14s %14s %14s %9s\n", "model", "w/ graph (s)",
                "w/o graph (s)", "speedup");
    bench::printRule();

    f64 best = 0;
    for (const char *name :
         {"Qwen1.5-0.5B", "Qwen1.5-1.8B", "Qwen1.5-4B", "Llama2-7B"}) {
        auto model = bench::unwrap(llm::findModel(name), "findModel");

        serverless::ProfileOptions popts;
        popts.model = model;
        popts.strategy = llm::Strategy::kVllm;
        auto with_graph = bench::unwrap(
            serverless::buildServingProfile(popts), "profile w/ graph");

        popts.strategy = llm::Strategy::kNoCudaGraph;
        auto without_graph = bench::unwrap(
            serverless::buildServingProfile(popts), "profile w/o graph");

        const f64 lat_graph = inferenceLatency(with_graph);
        const f64 lat_eager = inferenceLatency(without_graph);
        const f64 speedup = lat_eager / lat_graph;
        best = std::max(best, speedup);
        std::printf("%-14s %14.3f %14.3f %8.2fx\n", name, lat_graph,
                    lat_eager, speedup);
    }
    bench::printRule();
    std::printf("max acceleration: %.2fx (paper: up to 2.4x; smaller "
                "models gain more)\n",
                best);
    return 0;
}
