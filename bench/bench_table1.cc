/**
 * @file
 * Table 1: the ten models, their parameter sizes and the total number
 * of CUDA graph nodes across the 35 captured batch sizes. Also reports
 * the §5 statistic (fraction of kernels restorable via dlsym for
 * Llama2 13B) and the §4.3 statistic (fraction of kernels using
 * permanent buffers).
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "llm/forward.h"

using namespace medusa;

int
main()
{
    std::printf("=== Table 1: models, parameter sizes, CUDA graph nodes "
                "===\n\n");
    std::printf("%-14s %12s %12s | %12s %12s\n", "model", "params(ours)",
                "nodes(ours)", "params(ppr)", "nodes(ppr)");
    bench::printRule();

    struct PaperRow
    {
        f64 gib;
        u64 nodes;
    };
    const PaperRow paper[] = {
        {13.4, 14406}, {12.6, 12518}, {24.2, 16150}, {1.2, 9118},
        {3.4, 9550},   {7.4, 16150},  {14.4, 12902}, {26.4, 16350},
        {11.3, 12902}, {16.4, 19318},
    };

    u64 total_nodes = 0;
    std::size_t row = 0;
    for (const llm::ModelConfig &model : llm::modelZoo()) {
        u64 param_bytes = 0;
        for (const auto &spec : llm::buildTensorSpecs(model)) {
            param_bytes += spec.logical_bytes;
        }
        u64 nodes = 0;
        for (u32 bs : llm::captureBatchSizes()) {
            nodes += llm::ForwardPass::decodeNodeCount(model, bs);
        }
        total_nodes += nodes;
        std::printf("%-14s %11.1fG %12llu | %11.1fG %12llu\n",
                    model.name.c_str(),
                    static_cast<f64>(param_bytes) /
                        static_cast<f64>(units::GiB),
                    static_cast<unsigned long long>(nodes),
                    paper[row].gib,
                    static_cast<unsigned long long>(paper[row].nodes));
        ++row;
    }
    bench::printRule();
    std::printf("total graph nodes: %llu (paper: 139364)\n\n",
                static_cast<unsigned long long>(total_nodes));

    // ---- §5 / §4.3 statistics from a real offline run ------------------
    auto model = bench::unwrap(llm::findModel("Llama2-13B"), "findModel");
    auto artifact = bench::unwrap(bench::materializeCached(model),
                                  "materialize Llama2-13B");
    const core::AnalysisStats &s = artifact.stats;
    const f64 visible =
        100.0 * static_cast<f64>(s.dlsym_visible_nodes) /
        static_cast<f64>(s.dlsym_visible_nodes + s.hidden_kernel_nodes);
    std::printf("Llama2-13B kernels restorable via dlsym: %.1f%% "
                "(paper: 69.2%% at bs=1)\n",
                visible);

    // Permanent-buffer statistic: nodes using split-K semaphores.
    u64 semaphore_nodes = 0;
    for (const auto &g : artifact.graphs) {
        for (const auto &n : g.nodes) {
            if (n.kernel_name.find("splitk") != std::string::npos) {
                ++semaphore_nodes;
            }
        }
    }
    std::printf("kernels requiring permanent buffers: %.1f%% "
                "(paper: 9.0%%), each 2 x 4-byte buffers\n",
                100.0 * static_cast<f64>(semaphore_nodes) /
                    static_cast<f64>(s.total_nodes));
    std::printf("materialized contents: %llu bytes across %llu "
                "permanent buffers\n",
                static_cast<unsigned long long>(
                    s.materialized_content_bytes),
                static_cast<unsigned long long>(s.permanent_buffers));
    return 0;
}
