/**
 * @file
 * Serving-path study (DESIGN.md §17): replay a seeded synthetic
 * diurnal trace through the REAL control plane — medusa_serve's
 * HTTP front end on loopback, paced against the wall clock — and
 * report achieved QPS and the virtual-time TTFT / E2E percentiles the
 * simulator reports for the same scheduling core.
 *
 * Unlike the pure simulation benches, every request here crosses the
 * full production path: JSON body → HTTP parse → OpenAI validation →
 * Scheduler::submit() under the engine mutex → per-token hooks →
 * response bytes on a socket. What stays identical is the scheduling
 * core, so the virtual metrics remain comparable with BENCH_sim.
 *
 * Hard-checked on every run (non-zero exit on violation):
 *
 *  1. Request conservation — every submitted request completes
 *     (chaos and SLO shedding are off) and the front-end counter
 *     agrees: server.completions == requests.
 *  2. Token conservation — server.tokens_streamed equals the sum of
 *     requested max_tokens over the trace.
 *
 * --json emits one machine-readable object (scripts/bench.sh captures
 * it as BENCH_serve.json); --metrics-out writes the server.* counter
 * snapshot (tools/trace_check --metrics validates the closed
 * namespace).
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "serve/http.h"
#include "serve/server.h"
#include "workload/synthetic.h"

using namespace medusa;

namespace {

/** The scale/chaos benches' hand-made Medusa-like profile (§7.1). */
serverless::ServingProfile
serveProfile()
{
    serverless::ServingProfile p;
    p.model_name = "serve-bench";
    p.strategy = llm::Strategy::kMedusa;
    p.loading_sec = 1.4;
    p.cold_start_sec = 1.4;
    p.batch_sizes = {1, 4, 8, 16};
    p.decode_step_sec = {0.012, 0.016, 0.022, 0.035};
    p.prefill_tokens = {128, 512, 2048};
    p.prefill_sec = {0.045, 0.12, 0.42};
    return p;
}

/** Blocking loopback connection issuing keep-alive POSTs. */
class Client
{
  public:
    explicit Client(u16 port)
    {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }

    ~Client()
    {
        if (fd_ >= 0) {
            ::close(fd_);
        }
    }

    bool ok() const { return fd_ >= 0; }

    /**
     * POST @p body to @p path and read one full response. Returns the
     * HTTP status code, or 0 on a transport error.
     */
    int
    post(const std::string &path, const std::string &body)
    {
        const std::string request =
            "POST " + path + " HTTP/1.1\r\nHost: bench\r\n" +
            "Content-Type: application/json\r\nContent-Length: " +
            std::to_string(body.size()) + "\r\n\r\n" + body;
        if (!serve::writeAll(fd_, request)) {
            return 0;
        }
        // HttpParser parses requests, not responses; read the status
        // line, headers and Content-Length body by hand.
        std::string buf;
        std::size_t header_end = std::string::npos;
        while ((header_end = buf.find("\r\n\r\n")) ==
               std::string::npos) {
            if (serve::readInto(fd_, buf) <= 0) {
                return 0;
            }
        }
        int status = 0;
        std::sscanf(buf.c_str(), "HTTP/1.1 %d", &status);
        const std::size_t body_start = header_end + 4;
        std::size_t content_length = 0;
        const char *cl = std::strstr(buf.c_str(), "Content-Length:");
        if (cl != nullptr) {
            content_length = static_cast<std::size_t>(
                std::strtoull(cl + 15, nullptr, 10));
        }
        while (buf.size() - body_start < content_length) {
            if (serve::readInto(fd_, buf) <= 0) {
                return 0;
            }
        }
        return status;
    }

  private:
    int fd_ = -1;
};

struct Options
{
    bool json = false;
    u64 requests = 2000;
    u32 conns = 8;
    u64 seed = 42;
    /** Virtual seconds per wall second while arrivals replay. */
    f64 time_scale = 50;
    std::string metrics_out;
};

std::string
formatF64(f64 v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", v);
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            opt.json = true;
        } else if (arg.rfind("--requests=", 0) == 0) {
            opt.requests = std::strtoull(arg.c_str() + 11, nullptr, 10);
        } else if (arg.rfind("--conns=", 0) == 0) {
            opt.conns = static_cast<u32>(
                std::strtoul(arg.c_str() + 8, nullptr, 10));
        } else if (arg.rfind("--seed=", 0) == 0) {
            opt.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
        } else if (arg.rfind("--time-scale=", 0) == 0) {
            opt.time_scale = std::strtod(arg.c_str() + 13, nullptr);
        } else if (arg.rfind("--metrics-out=", 0) == 0) {
            opt.metrics_out = arg.substr(14);
        } else {
            std::fprintf(stderr,
                         "usage: bench_serve [--json] [--requests=N] "
                         "[--conns=C] [--seed=S] [--time-scale=X] "
                         "[--metrics-out=PATH]\n");
            return 2;
        }
    }
    opt.conns = std::max<u32>(1, opt.conns);

    // The synthetic diurnal trace (same generator as BENCH_sim), sized
    // so the default run finishes in a few wall seconds. Outputs are
    // kept short — every token crosses the hook path and the counters.
    workload::SyntheticTraceOptions topt;
    topt.seed = opt.seed;
    topt.requests_per_sec = 100;
    topt.duration_sec = 1e9;
    topt.max_requests = opt.requests;
    topt.mean_output_tokens = 48;
    topt.max_output_tokens = 256;
    topt.max_prompt_tokens = 2048;
    const std::vector<workload::Request> trace =
        workload::generateSyntheticTrace(topt);

    const serverless::ServingProfile profile = serveProfile();
    serve::ServeOptions sopts;
    sopts.cluster.profile = &profile;
    sopts.cluster.num_gpus = 8;
    sopts.time_scale = opt.time_scale;
    sopts.model_names = {profile.model_name};
    sopts.drain_timeout_sec = 120;

    serve::Server server(std::move(sopts));
    const Status started = server.start();
    if (!started.isOk()) {
        std::fprintf(stderr, "bench_serve: start failed: %s\n",
                     started.toString().c_str());
        return 1;
    }
    const u16 port = server.port();

    // Round-robin the trace over opt.conns keep-alive connections;
    // each thread paces its own requests against the shared wall
    // clock (virtual arrival / time_scale).
    const auto wall0 = std::chrono::steady_clock::now();
    std::atomic<u64> completions{0};
    std::atomic<u64> transport_errors{0};
    std::vector<std::thread> workers;
    workers.reserve(opt.conns);
    for (u32 c = 0; c < opt.conns; ++c) {
        workers.emplace_back([&, c]() {
            Client client(port);
            if (!client.ok()) {
                transport_errors.fetch_add(1);
                return;
            }
            for (std::size_t i = c; i < trace.size();
                 i += opt.conns) {
                const workload::Request &r = trace[i];
                const f64 due_wall =
                    r.arrival_sec / std::max(1e-9, opt.time_scale);
                for (;;) {
                    const f64 wall =
                        std::chrono::duration<f64>(
                            std::chrono::steady_clock::now() - wall0)
                            .count();
                    if (wall >= due_wall) {
                        break;
                    }
                    std::this_thread::sleep_for(
                        std::chrono::duration<f64>(
                            std::min(0.01, due_wall - wall)));
                }
                // ~4 bytes/token keeps approxTokenCount exact.
                const std::string prompt(
                    static_cast<std::size_t>(r.prompt_tokens) * 4,
                    'p');
                const std::string body =
                    "{\"model\":\"" + profile.model_name +
                    "\",\"prompt\":\"" + prompt +
                    "\",\"max_tokens\":" +
                    std::to_string(r.output_tokens) + "}";
                const int status =
                    client.post("/v1/completions", body);
                if (status == 200) {
                    completions.fetch_add(1);
                } else {
                    transport_errors.fetch_add(1);
                }
            }
        });
    }
    for (std::thread &t : workers) {
        t.join();
    }
    const f64 wall_sec = std::chrono::duration<f64>(
                             std::chrono::steady_clock::now() - wall0)
                             .count();

    const serverless::TraceMetrics tm = server.stop();
    const MetricsSnapshot snap = server.metricsSnapshot();
    if (!opt.metrics_out.empty()) {
        std::ofstream out(opt.metrics_out);
        out << snap.toJson();
    }

    u64 want_tokens = 0;
    for (const workload::Request &r : trace) {
        want_tokens += r.output_tokens;
    }

    // Hard checks: conservation through the full HTTP path.
    bool ok = true;
    if (completions.load() != trace.size() ||
        tm.completed != trace.size() ||
        snap.counterValue("server.completions") != trace.size()) {
        std::fprintf(stderr,
                     "bench_serve: CONSERVATION VIOLATION: trace=%zu "
                     "http200=%llu completed=%llu counter=%llu\n",
                     trace.size(),
                     static_cast<unsigned long long>(
                         completions.load()),
                     static_cast<unsigned long long>(tm.completed),
                     static_cast<unsigned long long>(
                         snap.counterValue("server.completions")));
        ok = false;
    }
    if (snap.counterValue("server.tokens_streamed") != want_tokens) {
        std::fprintf(
            stderr,
            "bench_serve: TOKEN CONSERVATION VIOLATION: want=%llu "
            "got=%llu\n",
            static_cast<unsigned long long>(want_tokens),
            static_cast<unsigned long long>(
                snap.counterValue("server.tokens_streamed")));
        ok = false;
    }
    if (transport_errors.load() != 0) {
        std::fprintf(stderr, "bench_serve: %llu transport errors\n",
                     static_cast<unsigned long long>(
                         transport_errors.load()));
        ok = false;
    }

    const f64 ttft_p50 = tm.completed > 0 ? tm.ttft_sec.p50() : 0.0;
    const f64 ttft_p99 = tm.completed > 0 ? tm.ttft_sec.p99() : 0.0;
    const f64 e2e_p50 = tm.completed > 0 ? tm.e2e_sec.p50() : 0.0;
    const f64 e2e_p99 = tm.completed > 0 ? tm.e2e_sec.p99() : 0.0;

    if (opt.json) {
        std::string out = "{\"schema_version\":1,\"study\":\"serve\",";
        out += "\"requests\":" + std::to_string(trace.size()) + ",";
        out += "\"completed\":" + std::to_string(tm.completed) + ",";
        out += "\"cold_starts\":" + std::to_string(tm.cold_starts) +
               ",";
        out += "\"tokens_streamed\":" +
               std::to_string(
                   snap.counterValue("server.tokens_streamed")) +
               ",";
        out += "\"wall_sec\":" + formatF64(wall_sec) + ",";
        out += "\"qps_wall\":" +
               formatF64(static_cast<f64>(tm.completed) /
                              std::max(1e-9, wall_sec)) +
               ",";
        out += "\"achieved_qps_virtual\":" +
               formatF64(tm.achieved_qps) + ",";
        out += "\"ttft_p50_sec\":" + formatF64(ttft_p50) + ",";
        out += "\"ttft_p99_sec\":" + formatF64(ttft_p99) + ",";
        out += "\"e2e_p50_sec\":" + formatF64(e2e_p50) + ",";
        out += "\"e2e_p99_sec\":" + formatF64(e2e_p99) + ",";
        out += "\"ok\":";
        out += ok ? "true" : "false";
        out += "}";
        std::printf("%s\n", out.c_str());
    } else {
        std::printf("bench_serve: %zu requests over %u conns in "
                    "%.2fs wall (%.1f rps wall, %.1f qps virtual)\n",
                    trace.size(), opt.conns, wall_sec,
                    static_cast<f64>(tm.completed) /
                        std::max(1e-9, wall_sec),
                    tm.achieved_qps);
        std::printf("  ttft p50/p99 = %.3f / %.3f s (virtual), "
                    "e2e p50/p99 = %.3f / %.3f s, cold starts = %llu\n",
                    ttft_p50, ttft_p99, e2e_p50, e2e_p99,
                    static_cast<unsigned long long>(tm.cold_starts));
    }
    return ok ? 0 : 1;
}
