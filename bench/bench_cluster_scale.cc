/**
 * @file
 * Cluster-scale scheduling study (DESIGN.md §15): replay a seeded
 * million-request synthetic trace (diurnal arrivals, heavy-tail
 * lengths, Zipf multi-model mix) over thousands of serving instances,
 * and report:
 *
 *  1. Engine throughput — events/sec of the zero-allocation fast
 *     engine vs the legacy std::function EventLoop on the same
 *     (truncated) trace prefix. The acceptance bar is >= 25x.
 *  2. Scheduler policies — baseline autoscaler vs keep-alive warm pool
 *     vs artifact-affinity routing, each over the full trace: cold
 *     start P50/P99, cold-start count, GPU-seconds, and the policy
 *     counters (cold-pool hits, keep-alive GPU-seconds, node
 *     warm/fetch/eviction traffic).
 *
 * --json emits one machine-readable object (scripts/bench.sh captures
 * it as BENCH_sim.json; tools/trace_check --sim validates it).
 * --requests / --legacy-requests / --seed resize the study (check.sh
 * runs a truncated smoke).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "serverless/cluster.h"
#include "workload/synthetic.h"

using namespace medusa;

namespace {

/**
 * A hand-made Medusa-like serving profile: ~1.4 s loading (the §7.1
 * A100 ballpark), vLLM-shaped step latencies. Hand-made so the bench
 * needs no artifact materialization and starts instantly.
 */
serverless::ServingProfile
scaleProfile()
{
    serverless::ServingProfile p;
    p.model_name = "scale-sim";
    p.strategy = llm::Strategy::kMedusa;
    p.loading_sec = 1.4;
    p.cold_start_sec = 1.4;
    p.batch_sizes = {1, 4, 8, 16};
    p.decode_step_sec = {0.012, 0.016, 0.022, 0.035};
    p.prefill_tokens = {128, 512, 2048};
    p.prefill_sec = {0.045, 0.12, 0.42};
    return p;
}

/** The trace both studies draw from; truncation by max_requests. */
workload::SyntheticTraceOptions
traceOptions(u64 seed, u64 requests, u32 num_models)
{
    workload::SyntheticTraceOptions o;
    o.seed = seed;
    // ~10^4 rps for ~110 s reaches 10^6 requests; max_requests pins
    // the count exactly.
    o.requests_per_sec = 10000;
    o.duration_sec = 1e9;
    o.max_requests = requests;
    o.diurnal_period_sec = 60;
    o.diurnal_amplitude = 0.6;
    // Short-chat shape: enough decode steps to load instances without
    // blowing up the event count per request.
    o.mean_output_tokens = 64;
    o.max_output_tokens = 512;
    o.num_models = num_models;
    return o;
}

/** Cluster sizing shared by every run: thousands of live instances. */
serverless::ClusterOptions
clusterOptions()
{
    serverless::ClusterOptions o;
    o.num_gpus = 4096;
    // Small per-instance batch cap -> the load spreads over thousands
    // of instances (the scheduling regime this study is about).
    o.max_seqs_per_instance = 4;
    o.idle_timeout_sec = 5.0;
    return o;
}

struct RunStats
{
    serverless::TraceMetrics metrics;
    f64 wall_sec = 0;
    f64 events_per_sec = 0;
};

RunStats
timedRun(const serverless::ClusterOptions &opts,
         const serverless::ServingProfile &profile,
         const std::vector<workload::Request> &trace)
{
    RunStats r;
    serverless::ClusterOptions copts = opts;
    copts.profile = &profile;
    const auto t0 = std::chrono::steady_clock::now();
    r.metrics = serverless::simulateCluster(copts, trace);
    const auto t1 = std::chrono::steady_clock::now();
    r.wall_sec =
        std::chrono::duration<f64>(t1 - t0).count();
    r.events_per_sec =
        static_cast<f64>(r.metrics.sim_events) / r.wall_sec;
    return r;
}

struct PolicyRow
{
    const char *name = "";
    RunStats run;
};

u64
parseCount(const std::string &arg, std::size_t prefix)
{
    return std::strtoull(arg.c_str() + prefix, nullptr, 10);
}

unsigned long long
ull(u64 v)
{
    return static_cast<unsigned long long>(v);
}

} // namespace

int
main(int argc, char **argv)
{
    bool json = false;
    u64 requests = 1000000;
    u64 legacy_requests = 100000;
    u64 seed = 20250808;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg.rfind("--requests=", 0) == 0) {
            requests = parseCount(arg, 11);
        } else if (arg.rfind("--legacy-requests=", 0) == 0) {
            legacy_requests = parseCount(arg, 18);
        } else if (arg.rfind("--seed=", 0) == 0) {
            seed = parseCount(arg, 7);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--json] [--requests=N] "
                         "[--legacy-requests=N] [--seed=N]\n",
                         argv[0]);
            return 2;
        }
    }
    if (legacy_requests > requests) {
        legacy_requests = requests;
    }

    const serverless::ServingProfile profile = scaleProfile();

    // ---- 1. engine throughput: fast vs legacy on the same prefix ----
    // Single-model trace: the legacy loop predates the multi-model
    // study. The legacy run replays a truncated prefix (its
    // O(instances) dispatch scan makes the full trace minutes long);
    // the fast engine replays the same prefix so events/sec divide
    // like-for-like.
    const auto engine_trace = workload::generateSyntheticTrace(
        traceOptions(seed, legacy_requests, 1));
    serverless::ClusterOptions eopts = clusterOptions();
    eopts.engine = serverless::SimEngine::kLegacy;
    const RunStats legacy = timedRun(eopts, profile, engine_trace);
    eopts.engine = serverless::SimEngine::kFast;
    const RunStats fast_prefix = timedRun(eopts, profile, engine_trace);
    const f64 speedup =
        fast_prefix.events_per_sec / legacy.events_per_sec;
    // The equivalence the cluster_equiv_test proves, re-checked here
    // on the bench's own trace.
    if (legacy.metrics.completed != fast_prefix.metrics.completed ||
        legacy.metrics.ttft_sec.samples() !=
            fast_prefix.metrics.ttft_sec.samples()) {
        std::fprintf(stderr,
                     "FAIL: engines disagree on the prefix trace\n");
        return 1;
    }

    // ---- 2. policy study over the full multi-model trace ------------
    const u32 kNumModels = 8;
    const auto policy_trace = workload::generateSyntheticTrace(
        traceOptions(seed, requests, kNumModels));

    std::vector<PolicyRow> rows;
    {
        serverless::ClusterOptions o = clusterOptions();
        o.policy = serverless::SchedulerPolicy::kBaseline;
        o.num_models = kNumModels;
        o.gpus_per_node = 8;
        o.node_artifact_slots = 2;
        o.node_artifact_miss_sec = 8.0; // remote checkpoint fetch
        rows.push_back({"baseline", timedRun(o, profile, policy_trace)});

        o.policy = serverless::SchedulerPolicy::kKeepAlive;
        o.keep_alive_instances = 256;
        o.keep_alive_idle_sec = 30.0;
        rows.push_back(
            {"keep_alive", timedRun(o, profile, policy_trace)});

        o.policy = serverless::SchedulerPolicy::kAffinity;
        o.keep_alive_instances = 0;
        o.keep_alive_idle_sec = -1.0;
        rows.push_back({"affinity", timedRun(o, profile, policy_trace)});
    }

    if (json) {
        std::printf("{\n");
        std::printf("  \"schema_version\": 1,\n");
        std::printf("  \"requests\": %llu,\n", ull(requests));
        std::printf("  \"legacy_requests\": %llu,\n",
                    ull(legacy_requests));
        std::printf("  \"seed\": %llu,\n", ull(seed));
        std::printf("  \"engine\": {\n");
        std::printf("    \"legacy\": {\"events\": %llu, "
                    "\"wall_sec\": %.4f, \"events_per_sec\": %.0f},\n",
                    ull(legacy.metrics.sim_events), legacy.wall_sec,
                    legacy.events_per_sec);
        std::printf("    \"fast\": {\"events\": %llu, "
                    "\"wall_sec\": %.4f, \"events_per_sec\": %.0f},\n",
                    ull(fast_prefix.metrics.sim_events),
                    fast_prefix.wall_sec, fast_prefix.events_per_sec);
        std::printf("    \"events_per_sec_speedup\": %.2f\n", speedup);
        std::printf("  },\n");
        std::printf("  \"policies\": [\n");
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const PolicyRow &r = rows[i];
            const serverless::TraceMetrics &m = r.run.metrics;
            std::printf(
                "    {\"policy\": \"%s\", \"completed\": %llu, "
                "\"events\": %llu, \"wall_sec\": %.4f, "
                "\"events_per_sec\": %.0f, "
                "\"peak_live_instances\": %llu, "
                "\"cold_starts\": %llu, "
                "\"cold_start_p50_sec\": %.4f, "
                "\"cold_start_p99_sec\": %.4f, "
                "\"ttft_p50_sec\": %.4f, \"ttft_p99_sec\": %.4f, "
                "\"gpu_seconds\": %.1f, "
                "\"cold_pool_hits\": %llu, "
                "\"keep_alive_gpu_seconds\": %.1f, "
                "\"node_warm_launches\": %llu, "
                "\"node_artifact_fetches\": %llu, "
                "\"affinity_evictions\": %llu}%s\n",
                r.name, ull(m.completed), ull(m.sim_events),
                r.run.wall_sec, r.run.events_per_sec,
                ull(m.peak_live_instances), ull(m.cold_starts),
                m.launch_sec.p50(), m.launch_sec.p99(),
                m.ttft_sec.p50(), m.ttft_sec.p99(), m.gpu_seconds,
                ull(m.cold_pool_hits), m.keep_alive_gpu_seconds,
                ull(m.node_warm_launches), ull(m.node_artifact_fetches),
                ull(m.affinity_evictions),
                i + 1 < rows.size() ? "," : "");
        }
        std::printf("  ]\n}\n");
    } else {
        std::printf("=== cluster scale: %llu requests, %u models, "
                    "%u GPUs ===\n\n",
                    ull(requests), kNumModels,
                    clusterOptions().num_gpus);
        std::printf("--- engine throughput (same %llu-request prefix) "
                    "---\n",
                    ull(legacy_requests));
        std::printf("legacy: %9llu events in %7.3f s  (%11.0f ev/s)\n",
                    ull(legacy.metrics.sim_events), legacy.wall_sec,
                    legacy.events_per_sec);
        std::printf("fast:   %9llu events in %7.3f s  (%11.0f ev/s)\n",
                    ull(fast_prefix.metrics.sim_events),
                    fast_prefix.wall_sec, fast_prefix.events_per_sec);
        std::printf("speedup: %.1fx events/sec\n\n", speedup);
        std::printf("--- scheduler policies (full trace) ---\n");
        std::printf("%-10s %9s %8s %7s %10s %10s %10s %12s %9s\n",
                    "policy", "events", "wall(s)", "peak", "colds",
                    "p50 cold", "p99 cold", "gpu-sec", "p99 ttft");
        for (const PolicyRow &r : rows) {
            const serverless::TraceMetrics &m = r.run.metrics;
            std::printf("%-10s %9llu %8.3f %7llu %10llu %10.3f "
                        "%10.3f %12.0f %9.3f\n",
                        r.name, ull(m.sim_events), r.run.wall_sec,
                        ull(m.peak_live_instances), ull(m.cold_starts),
                        m.launch_sec.p50(), m.launch_sec.p99(),
                        m.gpu_seconds, m.ttft_sec.p99());
        }
        std::printf("\npolicy counters:\n");
        for (const PolicyRow &r : rows) {
            const serverless::TraceMetrics &m = r.run.metrics;
            std::printf("  %-10s pool_hits=%llu keep_alive_gpu_sec=%.0f "
                        "node_warm=%llu node_fetch=%llu evict=%llu\n",
                        r.name, ull(m.cold_pool_hits),
                        m.keep_alive_gpu_seconds,
                        ull(m.node_warm_launches),
                        ull(m.node_artifact_fetches),
                        ull(m.affinity_evictions));
        }
    }
    return 0;
}
