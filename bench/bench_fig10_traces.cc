/**
 * @file
 * Figure 10: 99th-percentile TTFT under real-world-like traces
 * (ShareGPT statistics, Poisson arrivals) at RPS 2 and RPS 10, for
 * Llama2 7B and Qwen1.5 4B, across the four strategies. Paper anchors:
 * Medusa reduces p99 TTFT by 50.5% (Llama2 7B, RPS 2) and 53.0%
 * (RPS 10) vs vLLM, and also beats w/o-CUDA-GRAPH both because its
 * cold start is shorter and because eager serving is slower.
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "serverless/cluster.h"

using namespace medusa;

int
main()
{
    std::printf("=== Figure 10: p99 TTFT under ShareGPT-like traces "
                "===\n\n");

    const llm::Strategy strategies[] = {
        llm::Strategy::kVllm,
        llm::Strategy::kVllmAsync,
        llm::Strategy::kNoCudaGraph,
        llm::Strategy::kMedusa,
    };

    for (const char *name : {"Llama2-7B", "Qwen1.5-4B"}) {
        auto model = bench::unwrap(llm::findModel(name), "findModel");
        auto artifact = bench::unwrap(bench::materializeCached(model),
                                      "materialize");

        // Build the per-strategy serving profiles once.
        std::vector<serverless::ServingProfile> profiles;
        for (llm::Strategy s : strategies) {
            serverless::ProfileOptions popts;
            popts.model = model;
            popts.strategy = s;
            popts.artifact = &artifact;
            profiles.push_back(bench::unwrap(
                serverless::buildServingProfile(popts), "profile"));
        }

        for (f64 rps : {2.0, 10.0}) {
            // Several trace seeds; TTFT samples are aggregated so the
            // tail reflects many burst/cold-start realizations.
            const int kSeeds = 5;
            std::vector<std::vector<workload::Request>> traces;
            std::size_t total_requests = 0;
            for (int seed = 0; seed < kSeeds; ++seed) {
                workload::TraceOptions topts;
                topts.requests_per_sec = rps;
                topts.duration_sec = 600;
                topts.seed = 20250330 + static_cast<u64>(seed);
                traces.push_back(workload::generateShareGptTrace(topts));
                total_requests += traces.back().size();
            }

            std::printf("--- %s, RPS %.0f (%zu requests over %d seeds, "
                        "mean prompt %.0f, mean output %.0f) ---\n",
                        name, rps, total_requests, kSeeds,
                        workload::meanPromptLength(traces[0]),
                        workload::meanOutputLength(traces[0]));
            std::printf("%-16s %10s %10s %10s %8s %6s\n", "strategy",
                        "p50 (s)", "p99 (s)", "mean (s)", "qps",
                        "colds");

            f64 vllm_p99 = 0;
            for (const auto &profile : profiles) {
                PercentileTracker ttft;
                f64 qps_sum = 0;
                u64 colds = 0;
                for (const auto &trace : traces) {
                    serverless::ClusterOptions copts;
                    copts.profile = &profile;
                    auto metrics =
                        serverless::simulateCluster(copts, trace);
                    for (f64 v : metrics.ttft_sec.samples()) {
                        ttft.add(v);
                    }
                    qps_sum += metrics.achieved_qps;
                    colds += metrics.cold_starts;
                }
                if (profile.strategy == llm::Strategy::kVllm) {
                    vllm_p99 = ttft.p99();
                }
                std::printf("%-16s %10.3f %10.3f %10.3f %8.2f %6llu",
                            llm::strategyName(profile.strategy),
                            ttft.p50(), ttft.p99(), ttft.mean(),
                            qps_sum / kSeeds,
                            static_cast<unsigned long long>(colds));
                if (profile.strategy == llm::Strategy::kMedusa &&
                    vllm_p99 > 0) {
                    std::printf("   (p99 -%.1f%% vs vLLM)",
                                100.0 * (1.0 - ttft.p99() / vllm_p99));
                }
                std::printf("\n");
            }
            std::printf("\n");
        }
    }
    std::printf("paper: Medusa p99 TTFT -50.5%% (Llama2 7B, RPS 2) and "
                "-53.0%% (RPS 10) vs vLLM\n");
    return 0;
}
