/**
 * @file
 * Figure 7: overall loading-phase latency (a) and cold-start latency
 * (b) for vLLM, vLLM+ASYNC and Medusa across the ten models. The paper
 * reports average loading reductions of 42.5% (vs vLLM) and 34.4% (vs
 * vLLM+ASYNC), an average cold-start reduction of 34.9%, the largest
 * win on Llama2 13B (42.9%) and the smallest on Qwen1.5 0.5B (21.1%).
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "medusa/restore.h"

using namespace medusa;

int
main()
{
    std::printf("=== Figure 7: loading phase and cold start, 3 strategies "
                "x 10 models ===\n\n");
    std::printf("%-14s | %8s %8s %8s | %8s %8s %8s | %7s\n", "model",
                "vLLM", "+ASYNC", "Medusa", "vLLM.cs", "ASYNC.cs",
                "Medusa.cs", "reduce");
    bench::printRule('-', 96);

    f64 sum_vllm = 0, sum_async = 0, sum_medusa = 0;
    f64 sum_cs_vllm = 0, sum_cs_medusa = 0;
    f64 best_reduction = 0, worst_reduction = 1e9;
    std::string best_model, worst_model;
    int count = 0;

    for (const llm::ModelConfig &model : llm::modelZoo()) {
        auto artifact = bench::unwrap(bench::materializeCached(model),
                                      model.name.c_str());

        llm::BaselineEngine::Options bopts;
        bopts.model = model;
        bopts.warm_container = false; // cold start includes runtime init
        bopts.strategy = llm::Strategy::kVllm;
        auto vllm = bench::unwrap(llm::BaselineEngine::coldStart(bopts),
                                  "vLLM");
        bopts.strategy = llm::Strategy::kVllmAsync;
        auto async = bench::unwrap(llm::BaselineEngine::coldStart(bopts),
                                   "vLLM+ASYNC");

        core::MedusaEngine::Options mopts;
        mopts.model = model;
        mopts.warm_container = false;
        auto medusa = bench::unwrap(
            core::MedusaEngine::coldStart(mopts, artifact), "Medusa");

        const f64 l_vllm = vllm->coldStartReport().times.loading;
        const f64 l_async = async->coldStartReport().times.loading;
        const f64 l_medusa = medusa->coldStartReport().times.loading;
        const f64 cs_vllm = vllm->coldStartReport().times.coldStart();
        const f64 cs_async = async->coldStartReport().times.coldStart();
        const f64 cs_medusa = medusa->coldStartReport().times.coldStart();
        const f64 reduction = 100.0 * (1.0 - l_medusa / l_vllm);

        sum_vllm += l_vllm;
        sum_async += l_async;
        sum_medusa += l_medusa;
        sum_cs_vllm += cs_vllm;
        sum_cs_medusa += cs_medusa;
        ++count;
        if (reduction > best_reduction) {
            best_reduction = reduction;
            best_model = model.name;
        }
        if (reduction < worst_reduction) {
            worst_reduction = reduction;
            worst_model = model.name;
        }
        std::printf("%-14s | %8.2f %8.2f %8.2f | %8.2f %8.2f %8.2f | "
                    "%6.1f%%\n",
                    model.name.c_str(), l_vllm, l_async, l_medusa,
                    cs_vllm, cs_async, cs_medusa, reduction);
    }
    bench::printRule('-', 96);
    std::printf(
        "avg loading reduction vs vLLM:   %.1f%% (paper: 42.5%%)\n",
        100.0 * (1.0 - sum_medusa / sum_vllm));
    std::printf(
        "avg loading reduction vs ASYNC:  %.1f%% (paper: 34.4%%)\n",
        100.0 * (1.0 - sum_medusa / sum_async));
    std::printf(
        "avg cold-start reduction:        %.1f%% (paper: 34.9%%)\n",
        100.0 * (1.0 - sum_cs_medusa / sum_cs_vllm));
    std::printf("largest reduction: %s %.1f%% (paper: Llama2 13B "
                "42.9%%)\n",
                best_model.c_str(), best_reduction);
    std::printf("smallest reduction: %s %.1f%% (paper: Qwen1.5 0.5B "
                "21.1%%)\n",
                worst_model.c_str(), worst_reduction);
    return 0;
}
