/**
 * @file
 * Ablations of Medusa's design choices (DESIGN.md §7):
 *
 *  A. Trace-based vs naive indirect-index matching (§4.1 / Figure 6):
 *     naive matching picks the earliest allocation whose range contains
 *     a pointer, which mis-binds pool-reused addresses; the validation
 *     dry-run must then repair (or fail), while trace-based matching
 *     validates cleanly with zero repairs.
 *  B. Copy-free vs full buffer-content materialization (§4.3): bytes
 *     materialized and restored.
 *  C. Kernel-address restoration paths (§5): dlsym-only coverage vs
 *     dlsym + triggering-kernels (hidden cuBLAS-like kernels are only
 *     reachable through module enumeration).
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "medusa/restore.h"

using namespace medusa;

int
main()
{
    auto model = bench::unwrap(llm::findModel("Qwen1.5-1.8B"),
                               "findModel");

    std::printf("=== Ablation A: indirect-index matching strategy "
                "(model %s) ===\n",
                model.name.c_str());
    {
        // Run the analysis both ways and count disagreements: every
        // disagreement is a pointer the naive strategy binds to a
        // *stale* allocation (the paper's Figure 6 false positive).
        core::OfflineOptions opts;
        opts.model = model;
        opts.pipeline.validate = false;
        opts.analyze.trace_based_matching = true;
        auto traced = bench::unwrap(core::materialize(opts),
                                    "trace-based analysis");
        opts.analyze.trace_based_matching = false;
        auto naive = bench::unwrap(core::materialize(opts),
                                   "naive analysis");

        u64 pointer_params = 0;
        u64 misbound = 0;
        for (std::size_t g = 0; g < traced.artifact.graphs.size(); ++g) {
            const auto &tg = traced.artifact.graphs[g];
            const auto &ng = naive.artifact.graphs[g];
            for (std::size_t n = 0; n < tg.nodes.size(); ++n) {
                for (std::size_t p = 0;
                     p < tg.nodes[n].params.size(); ++p) {
                    const auto &tp = tg.nodes[n].params[p];
                    const auto &np = ng.nodes[n].params[p];
                    if (tp.kind != core::ParamSpec::kIndirect) {
                        continue;
                    }
                    ++pointer_params;
                    if (np.kind != tp.kind ||
                        np.alloc_index != tp.alloc_index ||
                        np.offset != tp.offset) {
                        ++misbound;
                    }
                }
            }
        }
        std::printf("  pointer params: %llu; naive matching binds %llu "
                    "(%.1f%%) of them to a stale allocation\n",
                    static_cast<unsigned long long>(pointer_params),
                    static_cast<unsigned long long>(misbound),
                    100.0 * static_cast<f64>(misbound) /
                        static_cast<f64>(pointer_params));
        std::printf("  (each stale binding re-materializes at an "
                    "arbitrary other buffer online — the Figure 6 "
                    "corruption; see AnalyzeTest.NaiveMatching"
                    "CorruptsReusedBuffer for a functional proof)\n");
    }

    std::printf("\n=== Ablation B: copy-free buffer contents (§4.3) "
                "===\n");
    for (bool copy_free : {true, false}) {
        core::OfflineOptions opts;
        opts.model = model;
        opts.analyze.copy_free_contents = copy_free;
        opts.pipeline.validate = false;
        auto result = bench::unwrap(core::materialize(opts),
                                    "materialize");
        const auto &s = result.artifact.stats;
        std::printf("  %-10s materialized %10llu bytes in %6llu buffers "
                    "(artifact %0.2f MiB)\n",
                    copy_free ? "copy-free" : "full-dump",
                    static_cast<unsigned long long>(
                        s.materialized_content_bytes),
                    static_cast<unsigned long long>(s.permanent_buffers),
                    static_cast<f64>(result.artifact.serialize().size()) /
                        static_cast<f64>(units::MiB));
    }

    std::printf("\n=== Ablation C: kernel address restoration paths (§5) "
                "===\n");
    core::OfflineOptions oopts;
    oopts.model = model;
    oopts.pipeline.validate = false;
    auto offline = bench::unwrap(core::materialize(oopts), "materialize");

    struct Mode
    {
        const char *name;
        bool dlsym;
        bool triggering;
    };
    for (const Mode &mode :
         {Mode{"dlsym + triggering-kernels", true, true},
          Mode{"triggering-kernels only", false, true},
          Mode{"dlsym only", true, false}}) {
        core::MedusaEngine::Options mopts;
        mopts.model = model;
        mopts.aslr_seed = 4242;
        mopts.restore.use_dlsym = mode.dlsym;
        mopts.restore.use_triggering_kernels = mode.triggering;
        auto engine = core::MedusaEngine::coldStart(mopts,
                                                    offline.artifact);
        if (engine.isOk()) {
            const auto &r = (*engine)->coldStartReport().restore;
            std::printf("  %-28s OK: %llu via dlsym, %llu via module "
                        "enumeration, loading %.2f s\n",
                        mode.name,
                        static_cast<unsigned long long>(
                            r.kernels_via_dlsym),
                        static_cast<unsigned long long>(
                            r.kernels_via_enumeration),
                        (*engine)->coldStartReport().times.loading);
        } else {
            std::printf("  %-28s FAILED: %s\n", mode.name,
                        engine.status().toString().c_str());
        }
    }
    std::printf("\n(hidden cuBLAS-like GEMMs make the dlsym-only mode "
                "fail, reproducing why §5 needs triggering-kernels)\n");
    return 0;
}
