/**
 * @file
 * Host wall-clock benchmark of the parallel restore pipeline: artifact
 * parse (serial vs multi-threaded vs contents-skipping), the full
 * Medusa cold start at 1 vs N restore threads, and the process-wide
 * artifact cache (miss vs hit).
 *
 * Everything here measures *host* time — the simulator's own speed.
 * The simulated StageTimes and RestoreReport must be bit-identical
 * across thread counts; the bench verifies that and reports it, so a
 * determinism regression shows up as identical=false in the output.
 *
 * --json emits one machine-readable object (scripts/bench.sh captures
 * it as BENCH_restore.json).
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <span>
#include <string>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "llm/model_config.h"
#include "medusa/artifact_cache.h"
#include "medusa/restore.h"

namespace medusa::bench {
namespace {

using SteadyClock = std::chrono::steady_clock;

f64
msBetween(SteadyClock::time_point a, SteadyClock::time_point b)
{
    return std::chrono::duration<f64, std::milli>(b - a).count();
}

/** Best-of-reps wall time of fn(), in milliseconds. */
template <typename Fn>
f64
bestMs(int reps, Fn &&fn)
{
    f64 best = 1e300;
    for (int i = 0; i < reps; ++i) {
        const auto start = SteadyClock::now();
        fn();
        best = std::min(best, msBetween(start, SteadyClock::now()));
    }
    return best;
}

struct ColdStartSample
{
    f64 wall_ms = 0;
    llm::StageTimes times;
    core::RestoreReport report;
};

ColdStartSample
runColdStart(const llm::ModelConfig &model,
             const core::Artifact &artifact, u32 restore_threads)
{
    core::MedusaEngine::Options opts;
    opts.model = model;
    opts.restore.restore_threads = restore_threads;
    const auto start = SteadyClock::now();
    auto engine = unwrap(core::MedusaEngine::coldStart(opts, artifact),
                         "medusa cold start");
    ColdStartSample s;
    s.wall_ms = msBetween(start, SteadyClock::now());
    s.times = engine->times();
    s.report = engine->report();
    return s;
}

bool
sameTimes(const llm::StageTimes &a, const llm::StageTimes &b)
{
    return a.struct_init == b.struct_init && a.weights == b.weights &&
           a.tokenizer == b.tokenizer && a.kv_init == b.kv_init &&
           a.capture == b.capture && a.runtime_init == b.runtime_init &&
           a.loading == b.loading;
}

bool
sameReport(const core::RestoreReport &a, const core::RestoreReport &b)
{
    return a.nodes_restored == b.nodes_restored &&
           a.graphs_restored == b.graphs_restored &&
           a.kernels_via_dlsym == b.kernels_via_dlsym &&
           a.kernels_via_enumeration == b.kernels_via_enumeration &&
           a.replayed_allocs == b.replayed_allocs &&
           a.replayed_frees == b.replayed_frees &&
           a.restored_content_bytes == b.restored_content_bytes &&
           a.indirect_pointers_fixed == b.indirect_pointers_fixed;
}

int
run(int argc, char **argv)
{
    bool json = false;
    std::string model_name = "Llama2-13B";
    u32 threads = 0; // 0 = hardware concurrency
    int reps = 3;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg.rfind("--model=", 0) == 0) {
            model_name = arg.substr(8);
        } else if (arg.rfind("--threads=", 0) == 0) {
            threads = static_cast<u32>(std::stoul(arg.substr(10)));
        } else if (arg.rfind("--reps=", 0) == 0) {
            reps = std::stoi(arg.substr(7));
        } else {
            std::fprintf(stderr,
                         "usage: %s [--json] [--model=NAME] "
                         "[--threads=N] [--reps=N]\n",
                         argv[0]);
            return 2;
        }
    }
    const u32 hw = ThreadPool::hardwareThreads();
    if (threads == 0) {
        threads = hw;
    }

    const llm::ModelConfig model =
        unwrap(llm::findModel(model_name), "model lookup");
    const core::Artifact artifact =
        unwrap(materializeCached(model), "materialization");
    const std::vector<u8> bytes = artifact.serialize();

    // ---- artifact parse ---------------------------------------------------
    const std::span<const u8> view(bytes);
    const f64 parse_serial_ms = bestMs(reps, [&]() {
        core::ArtifactReadOptions o;
        auto a = core::Artifact::deserializeView(view, o);
        checkOk(a.status(), "serial parse");
    });
    const f64 parse_parallel_ms = bestMs(reps, [&]() {
        core::ArtifactReadOptions o;
        o.threads = threads;
        auto a = core::Artifact::deserializeView(view, o);
        checkOk(a.status(), "parallel parse");
    });
    const f64 parse_skip_contents_ms = bestMs(reps, [&]() {
        core::ArtifactReadOptions o;
        o.load_permanent_contents = false;
        auto a = core::Artifact::deserializeView(view, o);
        checkOk(a.status(), "skip-contents parse");
    });
    // The pre-zero-copy baseline: hand the parser an owned copy.
    const f64 parse_owning_ms = bestMs(reps, [&]() {
        auto a = core::Artifact::deserialize(bytes);
        checkOk(a.status(), "owning parse");
    });

    // ---- cold start: 1 vs N restore threads -------------------------------
    ColdStartSample serial = runColdStart(model, artifact, 1);
    ColdStartSample parallel = runColdStart(model, artifact, threads);
    for (int i = 1; i < reps; ++i) {
        serial.wall_ms = std::min(
            serial.wall_ms, runColdStart(model, artifact, 1).wall_ms);
        parallel.wall_ms = std::min(
            parallel.wall_ms,
            runColdStart(model, artifact, threads).wall_ms);
    }
    const bool identical = sameTimes(serial.times, parallel.times) &&
                           sameReport(serial.report, parallel.report);

    // ---- artifact cache: miss vs hit --------------------------------------
    core::ArtifactCache cache;
    auto loader = [&]() {
        return core::Artifact::deserializeView(view);
    };
    const auto miss_start = SteadyClock::now();
    auto first = cache.getOrLoad("bench", loader);
    const f64 cache_miss_ms = msBetween(miss_start, SteadyClock::now());
    checkOk(first.status(), "cache miss load");
    const f64 cache_hit_ms = bestMs(reps, [&]() {
        auto again = cache.getOrLoad("bench", loader);
        checkOk(again.status(), "cache hit load");
    });

    if (json) {
        std::printf(
            "{\n"
            "  \"model\": \"%s\",\n"
            "  \"artifact_bytes\": %zu,\n"
            "  \"graphs\": %zu,\n"
            "  \"nodes\": %llu,\n"
            "  \"hardware_concurrency\": %u,\n"
            "  \"threads\": %u,\n"
            "  \"parse_serial_ms\": %.3f,\n"
            "  \"parse_parallel_ms\": %.3f,\n"
            "  \"parse_speedup\": %.2f,\n"
            "  \"parse_skip_contents_ms\": %.3f,\n"
            "  \"parse_owning_ms\": %.3f,\n"
            "  \"coldstart_serial_wall_ms\": %.3f,\n"
            "  \"coldstart_parallel_wall_ms\": %.3f,\n"
            "  \"coldstart_speedup\": %.2f,\n"
            "  \"simulated_loading_sec\": %.6f,\n"
            "  \"simulated_identical\": %s,\n"
            "  \"cache_miss_ms\": %.3f,\n"
            "  \"cache_hit_ms\": %.3f\n"
            "}\n",
            model.name.c_str(), bytes.size(), artifact.graphs.size(),
            static_cast<unsigned long long>(artifact.totalNodes()), hw,
            threads, parse_serial_ms, parse_parallel_ms,
            parse_serial_ms / std::max(parse_parallel_ms, 1e-9),
            parse_skip_contents_ms, parse_owning_ms, serial.wall_ms,
            parallel.wall_ms,
            serial.wall_ms / std::max(parallel.wall_ms, 1e-9),
            parallel.times.loading, identical ? "true" : "false",
            cache_miss_ms, cache_hit_ms);
    } else {
        std::printf("parallel restore pipeline — %s (%zu graphs, "
                    "%llu nodes, %zu artifact bytes)\n",
                    model.name.c_str(), artifact.graphs.size(),
                    static_cast<unsigned long long>(
                        artifact.totalNodes()),
                    bytes.size());
        std::printf("hardware threads: %u, bench threads: %u\n", hw,
                    threads);
        printRule();
        std::printf("parse serial        %8.3f ms\n", parse_serial_ms);
        std::printf("parse %2u threads    %8.3f ms  (%.2fx)\n", threads,
                    parse_parallel_ms,
                    parse_serial_ms /
                        std::max(parse_parallel_ms, 1e-9));
        std::printf("parse skip contents %8.3f ms\n",
                    parse_skip_contents_ms);
        std::printf("parse owning copy   %8.3f ms\n", parse_owning_ms);
        printRule();
        std::printf("cold start serial      %8.3f ms wall\n",
                    serial.wall_ms);
        std::printf("cold start %2u threads  %8.3f ms wall  (%.2fx)\n",
                    threads, parallel.wall_ms,
                    serial.wall_ms / std::max(parallel.wall_ms, 1e-9));
        std::printf("simulated loading      %8.3f ms (thread-count "
                    "independent: %s)\n",
                    parallel.times.loading * 1e3,
                    identical ? "yes" : "NO — DETERMINISM BUG");
        printRule();
        std::printf("artifact cache miss  %8.3f ms\n", cache_miss_ms);
        std::printf("artifact cache hit   %8.3f ms\n", cache_hit_ms);
    }
    return identical ? 0 : 1;
}

} // namespace
} // namespace medusa::bench

int
main(int argc, char **argv)
{
    return medusa::bench::run(argc, argv);
}
