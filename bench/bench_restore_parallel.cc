/**
 * @file
 * Host wall-clock benchmark of the restore pipeline: artifact parse
 * (serial vs multi-threaded vs contents-skipping), v6 image open, the
 * two cold-start paths — v5 parse + graph rebuild vs v6 open +
 * relocation patch (DESIGN.md §13) — and the materialization caches
 * (miss vs hit, artifact and image).
 *
 * Everything here measures *host* time — the simulator's own speed.
 * Two invariants are asserted and reported:
 *   - determinism: the rebuild path's simulated StageTimes and
 *     RestoreReport are bit-identical across restore thread counts
 *     (`simulated_identical`);
 *   - fidelity: the patch path lands the engine in a state with the
 *     same process fingerprint and decode logits as the rebuild path
 *     (`fidelity_identical`). The two paths legitimately differ in
 *     simulated duration and in how kernels were resolved (per-node vs
 *     per-unique-kernel), so those are reported, not compared.
 *
 * Trials of the timed arms are interleaved with a rotating start order
 * and preceded by an untimed warmup of every arm, so no arm
 * systematically benefits from allocator / page-cache state the
 * earlier arms warmed up. Cache benchmarks reset cache state between
 * miss trials.
 *
 * --json emits one machine-readable object (scripts/bench.sh captures
 * it as BENCH_restore.json).
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "llm/model_config.h"
#include "medusa/artifact_cache.h"
#include "medusa/restore.h"

namespace medusa::bench {
namespace {

using SteadyClock = std::chrono::steady_clock;

f64
msBetween(SteadyClock::time_point a, SteadyClock::time_point b)
{
    return std::chrono::duration<f64, std::milli>(b - a).count();
}

/** Best-of-reps wall time of fn(), in milliseconds. */
template <typename Fn>
f64
bestMs(int reps, Fn &&fn)
{
    f64 best = 1e300;
    for (int i = 0; i < reps; ++i) {
        const auto start = SteadyClock::now();
        fn();
        best = std::min(best, msBetween(start, SteadyClock::now()));
    }
    return best;
}

struct ColdStartSample
{
    f64 wall_ms = 0;
    llm::StageTimes times;
    core::RestoreReport report;
    /** Post-restore process state fingerprint (fidelity witness). */
    u64 fingerprint = 0;
    /** Decode logits for bs=1 on the restored graphs (fidelity). */
    std::vector<f32> logits;
};

/**
 * One rebuild-path cold start: v5 parse + coldStart (graph rebuild).
 * The parse is inside the timed window — it is part of what a
 * serverless cold start pays. @p probe additionally snapshots the
 * fidelity witnesses (outside the timed window).
 */
ColdStartSample
runRebuildArm(const llm::ModelConfig &model,
              std::span<const u8> artifact_bytes, u32 restore_threads,
              bool probe = false, TraceRecorder *trace = nullptr,
              MetricsRegistry *metrics = nullptr)
{
    ColdStartSample s;
    const auto start = SteadyClock::now();
    core::ArtifactReadOptions ro;
    ro.threads = restore_threads;
    auto artifact = unwrap(
        core::Artifact::deserializeView(artifact_bytes, ro),
        "rebuild arm parse");
    core::MedusaEngine::Options opts;
    opts.model = model;
    opts.restore.restore_threads = restore_threads;
    opts.restore.pipeline.trace = trace;
    opts.restore.pipeline.metrics = metrics;
    auto engine = unwrap(core::MedusaEngine::coldStart(opts, artifact),
                         "rebuild cold start");
    s.wall_ms = msBetween(start, SteadyClock::now());
    s.times = engine->coldStartReport().times;
    s.report = engine->coldStartReport().restore;
    if (probe) {
        llm::ModelRuntime &rt = engine->runtime();
        // Logical fingerprint: the patch path reaches the same state
        // at an earlier simulated clock, so time-derived stream
        // readiness is excluded; the allocator digest rides along.
        s.fingerprint = rt.process().logicalStateFingerprint() ^
                        (rt.allocator().stateFingerprint() * 31);
        checkOk(rt.stageValidationState(1), "rebuild stage state");
        s.logits = unwrap(rt.graphDecodeLogits(1), "rebuild logits");
    }
    return s;
}

/**
 * One patch-path cold start: v6 open + coldStartFromImage (relocation
 * patch, no graph rebuild). Open is inside the timed window.
 */
ColdStartSample
runPatchArm(const llm::ModelConfig &model,
            std::span<const u8> image_bytes, u32 restore_threads,
            bool probe = false, TraceRecorder *trace = nullptr,
            MetricsRegistry *metrics = nullptr)
{
    ColdStartSample s;
    const auto start = SteadyClock::now();
    auto image = unwrap(core::MaterializedImage::openView(image_bytes),
                        "patch arm open");
    core::MedusaEngine::Options opts;
    opts.model = model;
    opts.restore.restore_threads = restore_threads;
    opts.restore.pipeline.trace = trace;
    opts.restore.pipeline.metrics = metrics;
    auto engine =
        unwrap(core::MedusaEngine::coldStartFromImage(opts, image),
               "patch cold start");
    s.wall_ms = msBetween(start, SteadyClock::now());
    s.times = engine->coldStartReport().times;
    s.report = engine->coldStartReport().restore;
    if (probe) {
        llm::ModelRuntime &rt = engine->runtime();
        // Logical fingerprint: the patch path reaches the same state
        // at an earlier simulated clock, so time-derived stream
        // readiness is excluded; the allocator digest rides along.
        s.fingerprint = rt.process().logicalStateFingerprint() ^
                        (rt.allocator().stateFingerprint() * 31);
        checkOk(rt.stageValidationState(1), "patch stage state");
        s.logits = unwrap(rt.graphDecodeLogits(1), "patch logits");
    }
    return s;
}

bool
sameTimes(const llm::StageTimes &a, const llm::StageTimes &b)
{
    return a.struct_init == b.struct_init && a.weights == b.weights &&
           a.tokenizer == b.tokenizer && a.kv_init == b.kv_init &&
           a.capture == b.capture && a.runtime_init == b.runtime_init &&
           a.loading == b.loading;
}

bool
sameReport(const core::RestoreReport &a, const core::RestoreReport &b)
{
    return a.nodes_restored == b.nodes_restored &&
           a.graphs_restored == b.graphs_restored &&
           a.kernels_via_dlsym == b.kernels_via_dlsym &&
           a.kernels_via_enumeration == b.kernels_via_enumeration &&
           a.replayed_allocs == b.replayed_allocs &&
           a.replayed_frees == b.replayed_frees &&
           a.restored_content_bytes == b.restored_content_bytes &&
           a.indirect_pointers_fixed == b.indirect_pointers_fixed &&
           a.relocations_applied == b.relocations_applied &&
           a.kernels_resolved == b.kernels_resolved &&
           a.graphs_patched == b.graphs_patched;
}

int
run(int argc, char **argv)
{
    Reporter reporter(argc, argv);
    bool json = false;
    std::string model_name = "Llama2-13B";
    u32 threads = 0; // 0 = hardware concurrency
    int reps = 3;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg.rfind("--model=", 0) == 0) {
            model_name = arg.substr(8);
        } else if (arg.rfind("--threads=", 0) == 0) {
            threads = static_cast<u32>(std::stoul(arg.substr(10)));
        } else if (arg.rfind("--reps=", 0) == 0) {
            reps = std::stoi(arg.substr(7));
        } else {
            std::fprintf(stderr,
                         "usage: %s [--json] [--model=NAME] "
                         "[--threads=N] [--reps=N]\n",
                         argv[0]);
            return 2;
        }
    }
    const u32 hw = ThreadPool::hardwareThreads();
    if (threads == 0) {
        threads = hw;
    }

    const llm::ModelConfig model =
        unwrap(llm::findModel(model_name), "model lookup");
    const core::Artifact artifact =
        unwrap(materializeCached(model), "materialization");
    const std::vector<u8> bytes = artifact.serialize();
    const std::vector<u8> image_bytes =
        unwrap(materializeImageCached(model), "image materialization");
    const std::span<const u8> view(bytes);
    const std::span<const u8> image_view(image_bytes);

    // ---- artifact parse / image open --------------------------------------
    const f64 parse_serial_ms = bestMs(reps, [&]() {
        core::ArtifactReadOptions o;
        auto a = core::Artifact::deserializeView(view, o);
        checkOk(a.status(), "serial parse");
    });
    const f64 parse_parallel_ms = bestMs(reps, [&]() {
        core::ArtifactReadOptions o;
        o.threads = threads;
        auto a = core::Artifact::deserializeView(view, o);
        checkOk(a.status(), "parallel parse");
    });
    const f64 parse_skip_contents_ms = bestMs(reps, [&]() {
        core::ArtifactReadOptions o;
        o.load_permanent_contents = false;
        auto a = core::Artifact::deserializeView(view, o);
        checkOk(a.status(), "skip-contents parse");
    });
    // The pre-zero-copy baseline: hand the parser an owned copy.
    const f64 parse_owning_ms = bestMs(reps, [&]() {
        auto a = core::Artifact::deserialize(bytes);
        checkOk(a.status(), "owning parse");
    });
    const f64 image_open_ms = bestMs(reps, [&]() {
        auto img = core::MaterializedImage::openView(image_view);
        checkOk(img.status(), "image open");
    });

    // ---- cold start: rebuild (1 and N threads) vs relocation patch --------
    // Untimed warmup of every arm first, then interleaved trials with a
    // rotating start order: no arm gets a systematic warm-state edge.
    runRebuildArm(model, view, 1);
    runRebuildArm(model, view, threads);
    runPatchArm(model, image_view, threads);

    ColdStartSample serial;
    ColdStartSample parallel;
    ColdStartSample patch;
    serial.wall_ms = parallel.wall_ms = patch.wall_ms = 1e300;
    bool identical = true;
    auto takeSerial = [&]() {
        ColdStartSample s = runRebuildArm(model, view, 1);
        if (serial.wall_ms > 1e299) {
            serial = std::move(s);
        } else {
            identical = identical && sameTimes(serial.times, s.times) &&
                        sameReport(serial.report, s.report);
            serial.wall_ms = std::min(serial.wall_ms, s.wall_ms);
        }
    };
    auto takeParallel = [&]() {
        ColdStartSample s = runRebuildArm(model, view, threads);
        if (parallel.wall_ms > 1e299) {
            parallel = std::move(s);
        } else {
            parallel.wall_ms = std::min(parallel.wall_ms, s.wall_ms);
        }
    };
    auto takePatch = [&]() {
        ColdStartSample s = runPatchArm(model, image_view, threads);
        if (patch.wall_ms > 1e299) {
            patch = std::move(s);
        } else {
            patch.wall_ms = std::min(patch.wall_ms, s.wall_ms);
        }
    };
    for (int i = 0; i < reps; ++i) {
        switch (i % 3) {
        case 0:
            takeSerial();
            takeParallel();
            takePatch();
            break;
        case 1:
            takeParallel();
            takePatch();
            takeSerial();
            break;
        default:
            takePatch();
            takeSerial();
            takeParallel();
            break;
        }
    }
    identical = identical && sameTimes(serial.times, parallel.times) &&
                sameReport(serial.report, parallel.report);

    // ---- fidelity: patch path must equal rebuild path -----------------
    // Asserted once, outside the timed windows (the probes decode).
    // The probes also carry the --trace-out / --metrics-out sinks, so
    // the exported trace shows one rebuild and one patch cold start.
    const ColdStartSample rebuild_probe =
        runRebuildArm(model, view, threads, /*probe=*/true,
                      reporter.trace(), reporter.metrics());
    const ColdStartSample patch_probe =
        runPatchArm(model, image_view, threads, /*probe=*/true,
                    reporter.trace(), reporter.metrics());
    const bool fidelity =
        rebuild_probe.fingerprint == patch_probe.fingerprint &&
        !rebuild_probe.logits.empty() &&
        rebuild_probe.logits == patch_probe.logits;

    // ---- materialization caches: miss vs hit ------------------------------
    // Miss trials reset the cache state first so every trial pays a
    // genuine load; hit trials run against a warm entry.
    core::ArtifactCache cache;
    auto loader = [&]() {
        return core::Artifact::deserializeView(view);
    };
    f64 cache_miss_ms = 1e300;
    for (int i = 0; i < reps; ++i) {
        cache.clear();
        const auto start = SteadyClock::now();
        auto loaded = cache.getOrLoad("bench", loader);
        cache_miss_ms =
            std::min(cache_miss_ms, msBetween(start, SteadyClock::now()));
        checkOk(loaded.status(), "cache miss load");
    }
    const f64 cache_hit_ms = bestMs(reps, [&]() {
        auto again = cache.getOrLoad("bench", loader);
        checkOk(again.status(), "cache hit load");
    });
    core::ImageCache image_cache;
    auto image_loader = [&]() {
        return core::MaterializedImage::openView(image_view);
    };
    f64 image_cache_miss_ms = 1e300;
    for (int i = 0; i < reps; ++i) {
        image_cache.clear();
        const auto start = SteadyClock::now();
        auto loaded = image_cache.getOrLoad("bench", image_loader);
        image_cache_miss_ms = std::min(
            image_cache_miss_ms, msBetween(start, SteadyClock::now()));
        checkOk(loaded.status(), "image cache miss load");
    }
    const f64 image_cache_hit_ms = bestMs(reps, [&]() {
        auto again = image_cache.getOrLoad("bench", image_loader);
        checkOk(again.status(), "image cache hit load");
    });

    const f64 coldstart_speedup =
        serial.wall_ms / std::max(patch.wall_ms, 1e-9);
    if (json) {
        std::printf(
            "{\n"
            "  \"model\": \"%s\",\n"
            "  \"artifact_bytes\": %zu,\n"
            "  \"image_bytes\": %zu,\n"
            "  \"graphs\": %zu,\n"
            "  \"nodes\": %llu,\n"
            "  \"hardware_concurrency\": %u,\n"
            "  \"threads\": %u,\n"
            "  \"parse_serial_ms\": %.3f,\n"
            "  \"parse_parallel_ms\": %.3f,\n"
            "  \"parse_speedup\": %.2f,\n"
            "  \"parse_skip_contents_ms\": %.3f,\n"
            "  \"parse_owning_ms\": %.3f,\n"
            "  \"image_open_ms\": %.3f,\n"
            "  \"coldstart_serial_wall_ms\": %.3f,\n"
            "  \"coldstart_parallel_wall_ms\": %.3f,\n"
            "  \"coldstart_thread_speedup\": %.2f,\n"
            "  \"coldstart_rebuild_wall_ms\": %.3f,\n"
            "  \"coldstart_patch_wall_ms\": %.3f,\n"
            "  \"coldstart_speedup\": %.2f,\n"
            "  \"relocations_applied\": %llu,\n"
            "  \"kernels_resolved\": %llu,\n"
            "  \"graphs_patched\": %llu,\n"
            "  \"simulated_loading_sec\": %.6f,\n"
            "  \"patch_simulated_loading_sec\": %.6f,\n"
            "  \"simulated_identical\": %s,\n"
            "  \"fidelity_identical\": %s,\n"
            "  \"cache_miss_ms\": %.3f,\n"
            "  \"cache_hit_ms\": %.3f,\n"
            "  \"image_cache_miss_ms\": %.3f,\n"
            "  \"image_cache_hit_ms\": %.3f\n"
            "}\n",
            model.name.c_str(), bytes.size(), image_bytes.size(),
            artifact.graphs.size(),
            static_cast<unsigned long long>(artifact.totalNodes()), hw,
            threads, parse_serial_ms, parse_parallel_ms,
            parse_serial_ms / std::max(parse_parallel_ms, 1e-9),
            parse_skip_contents_ms, parse_owning_ms, image_open_ms,
            serial.wall_ms, parallel.wall_ms,
            serial.wall_ms / std::max(parallel.wall_ms, 1e-9),
            serial.wall_ms, patch.wall_ms, coldstart_speedup,
            static_cast<unsigned long long>(
                patch.report.relocations_applied),
            static_cast<unsigned long long>(
                patch.report.kernels_resolved),
            static_cast<unsigned long long>(
                patch.report.graphs_patched),
            parallel.times.loading, patch.times.loading,
            identical ? "true" : "false",
            fidelity ? "true" : "false", cache_miss_ms, cache_hit_ms,
            image_cache_miss_ms, image_cache_hit_ms);
    } else {
        std::printf("restore pipeline — %s (%zu graphs, %llu nodes, "
                    "%zu artifact bytes, %zu image bytes)\n",
                    model.name.c_str(), artifact.graphs.size(),
                    static_cast<unsigned long long>(
                        artifact.totalNodes()),
                    bytes.size(), image_bytes.size());
        std::printf("hardware threads: %u, bench threads: %u\n", hw,
                    threads);
        printRule();
        std::printf("parse serial        %8.3f ms\n", parse_serial_ms);
        std::printf("parse %2u threads    %8.3f ms  (%.2fx)\n", threads,
                    parse_parallel_ms,
                    parse_serial_ms /
                        std::max(parse_parallel_ms, 1e-9));
        std::printf("parse skip contents %8.3f ms\n",
                    parse_skip_contents_ms);
        std::printf("parse owning copy   %8.3f ms\n", parse_owning_ms);
        std::printf("image open          %8.3f ms\n", image_open_ms);
        printRule();
        std::printf("cold start rebuild (1 thread)   %8.3f ms wall\n",
                    serial.wall_ms);
        std::printf("cold start rebuild (%2u threads) %8.3f ms wall  "
                    "(%.2fx)\n",
                    threads, parallel.wall_ms,
                    serial.wall_ms / std::max(parallel.wall_ms, 1e-9));
        std::printf("cold start patch                %8.3f ms wall  "
                    "(%.2fx, %llu relocations)\n",
                    patch.wall_ms, coldstart_speedup,
                    static_cast<unsigned long long>(
                        patch.report.relocations_applied));
        std::printf("simulated loading rebuild %8.3f ms (thread-count "
                    "independent: %s)\n",
                    parallel.times.loading * 1e3,
                    identical ? "yes" : "NO — DETERMINISM BUG");
        std::printf("simulated loading patch   %8.3f ms (fingerprint + "
                    "logits identical: %s)\n",
                    patch.times.loading * 1e3,
                    fidelity ? "yes" : "NO — FIDELITY BUG");
        printRule();
        std::printf("artifact cache miss  %8.3f ms\n", cache_miss_ms);
        std::printf("artifact cache hit   %8.3f ms\n", cache_hit_ms);
        std::printf("image cache miss     %8.3f ms\n",
                    image_cache_miss_ms);
        std::printf("image cache hit      %8.3f ms\n",
                    image_cache_hit_ms);
    }
    reporter.finish();
    return identical && fidelity ? 0 : 1;
}

} // namespace
} // namespace medusa::bench

int
main(int argc, char **argv)
{
    return medusa::bench::run(argc, argv);
}
