/**
 * @file
 * Figure 11: p99 TTFT as a function of the achieved system throughput,
 * sweeping the offered request rate, for Llama2 7B and Qwen1.5 4B
 * across the four strategies. Paper anchor: at ~4.5 QPS on Llama2 7B,
 * Medusa's p99 TTFT is 43.0% / 29.9% / 27.0% lower than vLLM /
 * vLLM+ASYNC / w-o-CUDA-GRAPH; beyond the capacity knee, queueing
 * dominates every strategy.
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "serverless/cluster.h"

using namespace medusa;

int
main()
{
    std::printf("=== Figure 11: p99 TTFT vs achieved throughput ===\n\n");

    const llm::Strategy strategies[] = {
        llm::Strategy::kVllm,
        llm::Strategy::kVllmAsync,
        llm::Strategy::kNoCudaGraph,
        llm::Strategy::kMedusa,
    };

    for (const char *name : {"Llama2-7B", "Qwen1.5-4B"}) {
        auto model = bench::unwrap(llm::findModel(name), "findModel");
        auto artifact = bench::unwrap(bench::materializeCached(model),
                                      "materialize");

        std::vector<serverless::ServingProfile> profiles;
        for (llm::Strategy s : strategies) {
            serverless::ProfileOptions popts;
            popts.model = model;
            popts.strategy = s;
            popts.artifact = &artifact;
            profiles.push_back(bench::unwrap(
                serverless::buildServingProfile(popts), "profile"));
        }

        std::printf("--- %s ---\n", name);
        std::printf("%-16s", "offered RPS:");
        const f64 rates[] = {1, 2, 3, 4, 5, 6, 8, 10, 12};
        for (f64 r : rates) {
            std::printf(" %11.0f", r);
        }
        std::printf("\n");

        for (const auto &profile : profiles) {
            std::printf("%-16s", llm::strategyName(profile.strategy));
            for (f64 rps : rates) {
                // Aggregate TTFT samples over several trace seeds so
                // the tail is not dominated by one burst realization.
                PercentileTracker ttft;
                f64 qps_sum = 0;
                const int kSeeds = 5;
                for (int seed = 0; seed < kSeeds; ++seed) {
                    workload::TraceOptions topts;
                    topts.requests_per_sec = rps;
                    topts.duration_sec = 400;
                    topts.seed = 20250403 + static_cast<u64>(rps) * 97 +
                                 static_cast<u64>(seed);
                    const auto trace =
                        workload::generateShareGptTrace(topts);
                    serverless::ClusterOptions copts;
                    copts.profile = &profile;
                    auto metrics =
                        serverless::simulateCluster(copts, trace);
                    for (f64 v : metrics.ttft_sec.samples()) {
                        ttft.add(v);
                    }
                    qps_sum += metrics.achieved_qps;
                }
                std::printf(" %5.2fq/%5.2fs", qps_sum / kSeeds,
                            ttft.p99());
            }
            std::printf("\n");
        }
        std::printf("\n");
    }
    std::printf("each cell: achieved-QPS / p99-TTFT-seconds. paper: at "
                "~4.5 QPS (Llama2 7B) Medusa p99 is -43.0%% vs vLLM, "
                "-29.9%% vs ASYNC, -27.0%% vs w/o-graph\n");
    return 0;
}
