/**
 * @file
 * The §8 multi-GPU extension, quantified: tensor-parallel (world=2)
 * cold start with per-rank materialization vs per-rank capture-from-
 * scratch, plus the per-rank artifact inventory (the "indirect index
 * pointer table across multiple GPU instances").
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "medusa/tp.h"

using namespace medusa;

int
main()
{
    auto model = bench::unwrap(llm::findModel("Qwen1.5-1.8B"),
                               "findModel");
    const u32 world = 2;

    std::printf("=== §8 extension: Medusa for tensor-parallel serving "
                "(%s, TP=%u) ===\n\n",
                model.name.c_str(), world);

    // ---- baseline: capture everything at cold start per rank ----------
    llm::TpCluster::Options copts;
    copts.model = model;
    copts.world = world;
    auto baseline = bench::unwrap(llm::TpCluster::create(copts),
                                  "baseline cluster");
    bench::checkOk(baseline->loadAll(), "baseline load");
    bench::checkOk(baseline->captureAll(llm::captureBatchSizes()),
                   "baseline capture");
    f64 baseline_loading = 0;
    for (u32 r = 0; r < world; ++r) {
        baseline_loading = std::max(
            baseline_loading, baseline->rank(r).clock().nowSec());
    }

    // ---- Medusa offline (once per <GPU type, model, world>) ----------
    core::TpOfflineOptions oopts;
    oopts.model = model;
    oopts.world = world;
    auto offline = bench::unwrap(core::materializeTp(oopts),
                                 "tp offline");
    u64 artifact_bytes = 0;
    u64 total_nodes = 0;
    u64 collectives = 0;
    for (const auto &artifact : offline.rank_artifacts) {
        artifact_bytes += artifact.serialize().size();
        total_nodes += artifact.totalNodes();
        for (const auto &g : artifact.graphs) {
            for (const auto &n : g.nodes) {
                if (n.kernel_name.find("all_reduce") !=
                    std::string::npos) {
                    ++collectives;
                }
            }
        }
    }

    // ---- Medusa online ----------------------------------------------
    core::TpMedusaEngine::Options mopts;
    mopts.model = model;
    mopts.world = world;
    mopts.restore.pipeline.validate = true;
    mopts.restore.pipeline.validate_batch_sizes = {1, 64};
    auto restored = bench::unwrap(
        core::TpMedusaEngine::coldStart(mopts, offline.rank_artifacts),
        "tp restore");

    std::printf("offline phase: capturing %.1f s + analysis %.1f s "
                "(once per <GPU type, model, world>)\n",
                offline.capture_stage_sec, offline.analysis_stage_sec);
    std::printf("artifacts: %u ranks, %llu nodes total (%llu all-reduce "
                "collective nodes), %.2f MiB\n\n",
                world, static_cast<unsigned long long>(total_nodes),
                static_cast<unsigned long long>(collectives),
                static_cast<f64>(artifact_bytes) /
                    static_cast<f64>(units::MiB));

    std::printf("%-34s %12s\n", "cold-start strategy", "loading (s)");
    std::printf("%-34s %12.2f\n",
                "capture-from-scratch (per rank)", baseline_loading);
    std::printf("%-34s %12.2f  (-%.1f%%)\n",
                "Medusa per-rank restoration", restored->coldStartReport().loadingSec(),
                100.0 * (1.0 - restored->coldStartReport().loadingSec() /
                                   baseline_loading));
    std::printf("\nvalidation: restored lockstep replay matches the "
                "reference cluster bit-for-bit\n");
    for (u32 r = 0; r < world; ++r) {
        const auto &rep = restored->rankRestoreReports()[r];
        std::printf("  rank %u: %llu nodes restored (%llu via dlsym, "
                    "%llu via module enumeration)\n",
                    r,
                    static_cast<unsigned long long>(rep.nodes_restored),
                    static_cast<unsigned long long>(
                        rep.kernels_via_dlsym),
                    static_cast<unsigned long long>(
                        rep.kernels_via_enumeration));
    }
    return 0;
}
