/**
 * @file
 * trace_check: validates the observability layer's JSON exports so CI
 * can gate on them (scripts/check.sh's trace smoke step).
 *
 * Modes:
 *   trace_check --chrome FILE [--expect SPAN]...
 *                                Chrome trace_event export; each
 *                                --expect names a span that must appear
 *   trace_check --metrics FILE   flat metrics export
 *   trace_check --lint FILE      medusa_lint --json report
 *   trace_check --sarif FILE     medusa_lint --sarif report
 *                                (SARIF 2.1.0 structure: version, one
 *                                run with a named driver, every result
 *                                referencing a declared rule)
 *   trace_check --sim FILE       bench_cluster_scale --json report
 *                                (BENCH_sim.json: engine fast/legacy
 *                                throughput with a positive speedup,
 *                                >= 3 policies each with completed
 *                                requests and cold-start percentiles)
 *                                or bench_chaos --json report
 *                                (BENCH_chaos.json, recognized by its
 *                                'cells' array: both invariant flags
 *                                true, and every policy x intensity
 *                                cell conserving requests — completed
 *                                + shed + failed == requests)
 *
 * Each mode parses the file with a minimal self-contained JSON parser
 * (no dependencies) and checks the schema_version plus the structural
 * invariants documented in DESIGN.md §12.
 *
 * Exit codes: 0 = valid, 1 = schema violation, 2 = usage or I/O error.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ---- minimal JSON ------------------------------------------------------

struct JsonValue
{
    enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

    Kind kind = Kind::kNull;
    bool boolean = false;
    double number = 0;
    std::string string;
    std::vector<JsonValue> array;
    /** Insertion-ordered; lookups are linear (tiny documents). */
    std::vector<std::pair<std::string, JsonValue>> object;

    const JsonValue *
    find(const std::string &key) const
    {
        for (const auto &[k, v] : object) {
            if (k == key) {
                return &v;
            }
        }
        return nullptr;
    }
};

/** Recursive-descent parser over the whole input string. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    bool
    parse(JsonValue &out)
    {
        skipSpace();
        if (!parseValue(out)) {
            return false;
        }
        skipSpace();
        return pos_ == text_.size(); // no trailing garbage
    }

    std::string error() const { return error_; }

  private:
    bool
    fail(const std::string &what)
    {
        if (error_.empty()) {
            std::ostringstream out;
            out << what << " at byte " << pos_;
            error_ = out.str();
        }
        return false;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::strlen(word);
        if (text_.compare(pos_, n, word) != 0) {
            return fail(std::string("expected '") + word + "'");
        }
        pos_ += n;
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        if (pos_ >= text_.size()) {
            return fail("unexpected end of input");
        }
        switch (text_[pos_]) {
        case '{':
            return parseObject(out);
        case '[':
            return parseArray(out);
        case '"':
            out.kind = JsonValue::Kind::kString;
            return parseString(out.string);
        case 't':
            out.kind = JsonValue::Kind::kBool;
            out.boolean = true;
            return literal("true");
        case 'f':
            out.kind = JsonValue::Kind::kBool;
            out.boolean = false;
            return literal("false");
        case 'n':
            out.kind = JsonValue::Kind::kNull;
            return literal("null");
        default:
            return parseNumber(out);
        }
    }

    bool
    parseString(std::string &out)
    {
        if (text_[pos_] != '"') {
            return fail("expected string");
        }
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_];
            if (c == '\\') {
                if (pos_ + 1 >= text_.size()) {
                    return fail("dangling escape");
                }
                ++pos_;
                switch (text_[pos_]) {
                case '"':
                    out += '"';
                    break;
                case '\\':
                    out += '\\';
                    break;
                case '/':
                    out += '/';
                    break;
                case 'n':
                    out += '\n';
                    break;
                case 't':
                    out += '\t';
                    break;
                case 'r':
                    out += '\r';
                    break;
                case 'b':
                case 'f':
                    out += ' ';
                    break;
                case 'u':
                    if (pos_ + 4 >= text_.size()) {
                        return fail("truncated \\u escape");
                    }
                    out += '?'; // preserved length-wise only
                    pos_ += 4;
                    break;
                default:
                    return fail("bad escape");
                }
                ++pos_;
            } else {
                out += c;
                ++pos_;
            }
        }
        if (pos_ >= text_.size()) {
            return fail("unterminated string");
        }
        ++pos_; // closing quote
        return true;
    }

    bool
    parseNumber(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-') {
            ++pos_;
        }
        while (pos_ < text_.size() &&
               ((text_[pos_] >= '0' && text_[pos_] <= '9') ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start) {
            return fail("expected a value");
        }
        try {
            out.number = std::stod(text_.substr(start, pos_ - start));
        } catch (...) {
            return fail("bad number");
        }
        out.kind = JsonValue::Kind::kNumber;
        return true;
    }

    bool
    parseArray(JsonValue &out)
    {
        out.kind = JsonValue::Kind::kArray;
        ++pos_; // '['
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            JsonValue item;
            skipSpace();
            if (!parseValue(item)) {
                return false;
            }
            out.array.push_back(std::move(item));
            skipSpace();
            if (pos_ >= text_.size()) {
                return fail("unterminated array");
            }
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    parseObject(JsonValue &out)
    {
        out.kind = JsonValue::Kind::kObject;
        ++pos_; // '{'
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipSpace();
            std::string key;
            if (!parseString(key)) {
                return false;
            }
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != ':') {
                return fail("expected ':'");
            }
            ++pos_;
            skipSpace();
            JsonValue value;
            if (!parseValue(value)) {
                return false;
            }
            out.object.emplace_back(std::move(key), std::move(value));
            skipSpace();
            if (pos_ >= text_.size()) {
                return fail("unterminated object");
            }
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    std::string error_;
};

// ---- validators --------------------------------------------------------

int
violation(const char *what)
{
    std::fprintf(stderr, "trace_check: %s\n", what);
    return 1;
}

bool
schemaVersionIs(const JsonValue &obj, double expected)
{
    const JsonValue *v = obj.find("schema_version");
    return v != nullptr && v->kind == JsonValue::Kind::kNumber &&
           v->number == expected;
}

int
checkChrome(const JsonValue &root,
            const std::vector<std::string> &expected_spans)
{
    if (root.kind != JsonValue::Kind::kObject) {
        return violation("chrome trace: top level must be an object");
    }
    const JsonValue *medusa = root.find("medusa");
    if (medusa == nullptr ||
        medusa->kind != JsonValue::Kind::kObject ||
        !schemaVersionIs(*medusa, 1)) {
        return violation("chrome trace: missing medusa.schema_version=1");
    }
    const JsonValue *events = root.find("traceEvents");
    if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
        return violation("chrome trace: traceEvents must be an array");
    }
    for (const JsonValue &ev : events->array) {
        if (ev.kind != JsonValue::Kind::kObject) {
            return violation("chrome trace: event is not an object");
        }
        const JsonValue *name = ev.find("name");
        const JsonValue *ph = ev.find("ph");
        if (name == nullptr ||
            name->kind != JsonValue::Kind::kString ||
            ph == nullptr || ph->kind != JsonValue::Kind::kString) {
            return violation("chrome trace: event missing name/ph");
        }
        if (ph->string == "M") {
            continue; // metadata events carry no timestamp
        }
        if (ph->string != "X" && ph->string != "i") {
            return violation("chrome trace: unknown event phase");
        }
        const JsonValue *ts = ev.find("ts");
        if (ts == nullptr || ts->kind != JsonValue::Kind::kNumber ||
            ts->number < 0) {
            return violation("chrome trace: event needs ts >= 0");
        }
        if (ph->string == "X") {
            const JsonValue *dur = ev.find("dur");
            if (dur == nullptr ||
                dur->kind != JsonValue::Kind::kNumber ||
                dur->number < 0) {
                return violation(
                    "chrome trace: complete event needs dur >= 0");
            }
        }
    }
    // --expect NAME: the named span must appear at least once. CI uses
    // this to pin the restore taxonomy (e.g. the v6 patch-pass spans) —
    // a renamed or dropped span fails the gate instead of silently
    // vanishing from dashboards.
    for (const std::string &want : expected_spans) {
        bool found = false;
        for (const JsonValue &ev : events->array) {
            const JsonValue *name = ev.find("name");
            if (name != nullptr && name->string == want) {
                found = true;
                break;
            }
        }
        if (!found) {
            std::fprintf(stderr,
                         "trace_check: expected span \"%s\" absent "
                         "from trace\n",
                         want.c_str());
            return 1;
        }
    }
    std::printf("trace_check: chrome trace OK (%zu events)\n",
                events->array.size());
    return 0;
}

int
checkMetrics(const JsonValue &root)
{
    if (root.kind != JsonValue::Kind::kObject ||
        !schemaVersionIs(root, 1)) {
        return violation("metrics: missing schema_version=1");
    }
    const JsonValue *metrics = root.find("metrics");
    if (metrics == nullptr ||
        metrics->kind != JsonValue::Kind::kObject) {
        return violation("metrics: 'metrics' must be an object");
    }
    // The chaos / SLO / serving counter namespaces are closed sets
    // (DESIGN.md §16–§17): a typo'd `cluster.chaos.*` or `server.*`
    // name would silently dodge every dashboard, so unknown names in
    // these prefixes are violations.
    static const char *const kChaosSloNames[] = {
        "cluster.chaos.node_crashes",
        "cluster.chaos.node_recoveries",
        "cluster.chaos.instance_crashes",
        "cluster.chaos.requeued_requests",
        "cluster.chaos.store_outages",
        "cluster.chaos.store_outage_delay_sec",
        "cluster.chaos.gray_windows",
        "cluster.chaos.gray_fetches",
        "cluster.chaos.lost_residency",
        "cluster.slo.shed_admission",
        "cluster.slo.shed_deadline",
        "cluster.slo.failed_requests",
        "cluster.slo.retries",
        "cluster.slo.degraded_launches",
        "cluster.slo.deadline_met",
        "cluster.slo.deadline_missed",
        "cluster.slo.goodput_qps",
    };
    // The serving front end's counter set (serve::Server, DESIGN.md
    // §17). Scheduler-side metrics stay under `cluster.*`.
    static const char *const kServerNames[] = {
        "server.requests",
        "server.completions",
        "server.chat_completions",
        "server.streams",
        "server.rejected",
        "server.shed",
        "server.failed",
        "server.tokens_streamed",
        "server.active_peak",
        "server.drain_sec",
    };
    for (const auto &[name, value] : metrics->object) {
        if (name.empty()) {
            return violation("metrics: empty metric name");
        }
        if (name.rfind("cluster.chaos.", 0) == 0 ||
            name.rfind("cluster.slo.", 0) == 0) {
            bool known = false;
            for (const char *candidate : kChaosSloNames) {
                if (name == candidate) {
                    known = true;
                    break;
                }
            }
            if (!known) {
                return violation(
                    ("metrics: unknown chaos/slo metric '" + name + "'")
                        .c_str());
            }
        }
        if (name.rfind("server.", 0) == 0) {
            bool known = false;
            for (const char *candidate : kServerNames) {
                if (name == candidate) {
                    known = true;
                    break;
                }
            }
            if (!known) {
                return violation(
                    ("metrics: unknown server metric '" + name + "'")
                        .c_str());
            }
        }
        const bool scalar = value.kind == JsonValue::Kind::kNumber ||
                            value.kind == JsonValue::Kind::kNull;
        const bool histogram =
            value.kind == JsonValue::Kind::kObject &&
            value.find("buckets") != nullptr;
        if (!scalar && !histogram) {
            return violation(
                "metrics: value must be a number or a histogram");
        }
    }
    std::printf("trace_check: metrics OK (%zu metrics)\n",
                metrics->object.size());
    return 0;
}

int
checkLint(const JsonValue &root)
{
    if (root.kind != JsonValue::Kind::kObject ||
        !schemaVersionIs(root, 1)) {
        return violation("lint: missing schema_version=1");
    }
    const JsonValue *diags = root.find("diagnostics");
    if (diags == nullptr || diags->kind != JsonValue::Kind::kArray) {
        return violation("lint: 'diagnostics' must be an array");
    }
    for (const JsonValue &d : diags->array) {
        if (d.kind != JsonValue::Kind::kObject ||
            d.find("rule") == nullptr ||
            d.find("severity") == nullptr) {
            return violation("lint: diagnostic missing rule/severity");
        }
    }
    for (const char *key : {"errors", "warnings"}) {
        const JsonValue *v = root.find(key);
        if (v == nullptr || v->kind != JsonValue::Kind::kNumber) {
            return violation("lint: missing errors/warnings counters");
        }
    }
    std::printf("trace_check: lint report OK (%zu diagnostics)\n",
                diags->array.size());
    return 0;
}

int
checkSarif(const JsonValue &root)
{
    if (root.kind != JsonValue::Kind::kObject) {
        return violation("sarif: root must be an object");
    }
    const JsonValue *version = root.find("version");
    if (version == nullptr ||
        version->kind != JsonValue::Kind::kString ||
        version->string != "2.1.0") {
        return violation("sarif: missing version=\"2.1.0\"");
    }
    const JsonValue *runs = root.find("runs");
    if (runs == nullptr || runs->kind != JsonValue::Kind::kArray ||
        runs->array.size() != 1) {
        return violation("sarif: 'runs' must be a one-element array");
    }
    const JsonValue &run = runs->array[0];
    const JsonValue *tool =
        run.kind == JsonValue::Kind::kObject ? run.find("tool") : nullptr;
    const JsonValue *driver =
        tool != nullptr && tool->kind == JsonValue::Kind::kObject
            ? tool->find("driver")
            : nullptr;
    if (driver == nullptr || driver->kind != JsonValue::Kind::kObject) {
        return violation("sarif: missing tool.driver");
    }
    const JsonValue *name = driver->find("name");
    if (name == nullptr || name->kind != JsonValue::Kind::kString ||
        name->string != "medusa-lint") {
        return violation("sarif: driver name must be \"medusa-lint\"");
    }
    // Collect the declared rule ids; every result must reference one.
    std::vector<std::string> rule_ids;
    const JsonValue *rules = driver->find("rules");
    if (rules == nullptr || rules->kind != JsonValue::Kind::kArray) {
        return violation("sarif: driver.rules must be an array");
    }
    for (const JsonValue &rule : rules->array) {
        const JsonValue *id = rule.kind == JsonValue::Kind::kObject
                                  ? rule.find("id")
                                  : nullptr;
        if (id == nullptr || id->kind != JsonValue::Kind::kString) {
            return violation("sarif: rule without a string id");
        }
        rule_ids.push_back(id->string);
    }
    const JsonValue *results = run.find("results");
    if (results == nullptr ||
        results->kind != JsonValue::Kind::kArray) {
        return violation("sarif: 'results' must be an array");
    }
    for (const JsonValue &result : results->array) {
        if (result.kind != JsonValue::Kind::kObject) {
            return violation("sarif: result must be an object");
        }
        const JsonValue *rule_id = result.find("ruleId");
        if (rule_id == nullptr ||
            rule_id->kind != JsonValue::Kind::kString) {
            return violation("sarif: result without ruleId");
        }
        bool declared = false;
        for (const std::string &id : rule_ids) {
            declared = declared || id == rule_id->string;
        }
        if (!declared) {
            const std::string what =
                "sarif: result references undeclared rule " +
                rule_id->string;
            return violation(what.c_str());
        }
        const JsonValue *level = result.find("level");
        if (level == nullptr ||
            level->kind != JsonValue::Kind::kString ||
            (level->string != "error" && level->string != "warning" &&
             level->string != "note" && level->string != "none")) {
            return violation("sarif: result with invalid level");
        }
        const JsonValue *message = result.find("message");
        if (message == nullptr ||
            message->kind != JsonValue::Kind::kObject ||
            message->find("text") == nullptr) {
            return violation("sarif: result without message.text");
        }
    }
    std::printf("trace_check: sarif OK (%zu rules, %zu results)\n",
                rule_ids.size(), results->array.size());
    return 0;
}

/** bench_chaos --json (BENCH_chaos.json): the policy x chaos matrix. */
int
checkChaosSim(const JsonValue &root)
{
    const JsonValue *requests = root.find("requests");
    if (requests == nullptr ||
        requests->kind != JsonValue::Kind::kNumber ||
        requests->number <= 0) {
        return violation("sim: 'requests' must be a positive number");
    }
    for (const char *flag :
         {"empty_plan_bit_identical", "rerun_deterministic"}) {
        const JsonValue *v = root.find(flag);
        if (v == nullptr || v->kind != JsonValue::Kind::kBool ||
            !v->boolean) {
            return violation(
                "sim: chaos report invariant flag missing or false");
        }
    }
    const JsonValue *cells = root.find("cells");
    if (cells == nullptr || cells->kind != JsonValue::Kind::kArray ||
        cells->array.size() < 4) {
        return violation(
            "sim: chaos report needs >= 4 matrix cells");
    }
    for (const JsonValue &cell : cells->array) {
        if (cell.kind != JsonValue::Kind::kObject) {
            return violation("sim: chaos cell must be an object");
        }
        for (const char *field : {"policy", "intensity"}) {
            const JsonValue *v = cell.find(field);
            if (v == nullptr || v->kind != JsonValue::Kind::kString ||
                v->string.empty()) {
                return violation(
                    "sim: chaos cell without policy/intensity");
            }
        }
        double terminal = 0;
        for (const char *field :
             {"completed", "shed_admission", "shed_deadline",
              "failed_requests"}) {
            const JsonValue *v = cell.find(field);
            if (v == nullptr || v->kind != JsonValue::Kind::kNumber ||
                v->number < 0) {
                return violation(
                    "sim: chaos cell missing a terminal-state count");
            }
            terminal += v->number;
        }
        // The invariant the whole chaos layer hangs on: every request
        // reaches exactly one terminal state.
        if (terminal != requests->number) {
            return violation(
                "sim: chaos cell violates request conservation");
        }
        const JsonValue *attain = cell.find("slo_attainment");
        if (attain == nullptr ||
            attain->kind != JsonValue::Kind::kNumber ||
            attain->number < 0 || attain->number > 1) {
            return violation(
                "sim: slo_attainment must be in [0, 1]");
        }
        for (const char *field :
             {"requeued_requests", "slo_retries", "instance_crashes",
              "node_crashes", "goodput_qps", "ttft_p99_sec",
              "gpu_seconds"}) {
            const JsonValue *v = cell.find(field);
            if (v == nullptr || v->kind != JsonValue::Kind::kNumber ||
                v->number < 0) {
                return violation(
                    "sim: chaos cell missing a numeric stat field");
            }
        }
    }
    std::printf("trace_check: chaos sim report OK (%zu cells, "
                "conservation holds)\n",
                cells->array.size());
    return 0;
}

int
checkSim(const JsonValue &root)
{
    if (root.kind != JsonValue::Kind::kObject ||
        !schemaVersionIs(root, 1)) {
        return violation("sim: missing schema_version=1");
    }
    // The chaos matrix report shares the --sim mode; its 'cells'
    // array tells the two shapes apart.
    if (root.find("cells") != nullptr) {
        return checkChaosSim(root);
    }
    const JsonValue *requests = root.find("requests");
    if (requests == nullptr ||
        requests->kind != JsonValue::Kind::kNumber ||
        requests->number <= 0) {
        return violation("sim: 'requests' must be a positive number");
    }
    const JsonValue *engine = root.find("engine");
    if (engine == nullptr || engine->kind != JsonValue::Kind::kObject) {
        return violation("sim: 'engine' must be an object");
    }
    for (const char *key : {"legacy", "fast"}) {
        const JsonValue *side = engine->find(key);
        if (side == nullptr || side->kind != JsonValue::Kind::kObject) {
            return violation("sim: engine needs legacy and fast runs");
        }
        for (const char *field :
             {"events", "wall_sec", "events_per_sec"}) {
            const JsonValue *v = side->find(field);
            if (v == nullptr || v->kind != JsonValue::Kind::kNumber ||
                v->number <= 0) {
                return violation(
                    "sim: engine run needs positive events/wall_sec/"
                    "events_per_sec");
            }
        }
    }
    const JsonValue *speedup = engine->find("events_per_sec_speedup");
    if (speedup == nullptr ||
        speedup->kind != JsonValue::Kind::kNumber ||
        speedup->number <= 1.0) {
        return violation(
            "sim: events_per_sec_speedup must be a number > 1");
    }
    const JsonValue *policies = root.find("policies");
    if (policies == nullptr ||
        policies->kind != JsonValue::Kind::kArray ||
        policies->array.size() < 3) {
        return violation("sim: need >= 3 policy rows");
    }
    for (const JsonValue &row : policies->array) {
        if (row.kind != JsonValue::Kind::kObject) {
            return violation("sim: policy row must be an object");
        }
        const JsonValue *name = row.find("policy");
        if (name == nullptr || name->kind != JsonValue::Kind::kString ||
            name->string.empty()) {
            return violation("sim: policy row without a name");
        }
        const JsonValue *completed = row.find("completed");
        if (completed == nullptr ||
            completed->kind != JsonValue::Kind::kNumber ||
            completed->number <= 0) {
            return violation(
                "sim: policy row needs completed requests > 0");
        }
        for (const char *field :
             {"cold_start_p50_sec", "cold_start_p99_sec",
              "gpu_seconds", "events_per_sec"}) {
            const JsonValue *v = row.find(field);
            if (v == nullptr || v->kind != JsonValue::Kind::kNumber ||
                v->number < 0) {
                return violation(
                    "sim: policy row missing a numeric stat field");
            }
        }
    }
    std::printf("trace_check: sim report OK (%zu policies, "
                "speedup %.1fx)\n",
                policies->array.size(), speedup->number);
    return 0;
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: trace_check "
                 "--chrome|--metrics|--lint|--sarif|--sim "
                 "FILE [--expect SPAN]...\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3) {
        return usage();
    }
    const std::string mode = argv[1];
    const char *path = argv[2];
    std::vector<std::string> expected_spans;
    for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--expect") == 0 && i + 1 < argc) {
            expected_spans.emplace_back(argv[++i]);
            continue;
        }
        return usage();
    }
    if (!expected_spans.empty() && mode != "--chrome") {
        std::fprintf(stderr,
                     "trace_check: --expect only applies to --chrome\n");
        return 2;
    }
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "trace_check: cannot open %s\n", path);
        return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    JsonValue root;
    JsonParser parser(text);
    if (!parser.parse(root)) {
        std::fprintf(stderr, "trace_check: %s: invalid JSON: %s\n",
                     path, parser.error().c_str());
        return 1;
    }
    if (mode == "--chrome") {
        return checkChrome(root, expected_spans);
    }
    if (mode == "--metrics") {
        return checkMetrics(root);
    }
    if (mode == "--lint") {
        return checkLint(root);
    }
    if (mode == "--sarif") {
        return checkSarif(root);
    }
    if (mode == "--sim") {
        return checkSim(root);
    }
    return usage();
}
