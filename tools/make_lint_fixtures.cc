/**
 * @file
 * make_lint_fixtures: (re)generates the golden corrupt-image corpus
 * under tests/data/ that lint_test's table-driven fixture test runs
 * against (DESIGN.md §14).
 *
 * A small hand-built artifact — three chained nodes over real registry
 * kernels — is flattened into a clean v6 image, and each corrupt
 * fixture is derived from it by surgical byte edits (relocation
 * retargeting, template poisoning, truncation) with the payload CRC
 * recomputed, so every fixture is invalid in EXACTLY one way and the
 * table test can assert that precisely one MDL7xx rule fires per file.
 *
 * Usage: make_lint_fixtures <output-dir>
 *
 * The corpus is committed; this tool only needs re-running when the
 * image format or the fixture recipe changes.
 */

#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "common/serialize.h"
#include "medusa/artifact.h"
#include "medusa/image.h"

using namespace medusa;
using core::AllocOp;
using core::Artifact;
using core::GraphBlueprint;
using core::MaterializedImage;
using core::NodeBlueprint;
using core::ParamSpec;

namespace {

constexpr const char *kGemm128 =
    "ampere_fp16_s16816gemm_fp16_128x128_ldg8_f2f_stages_64x3_tn";
constexpr const char *kGemm64 =
    "ampere_fp16_s16816gemm_fp16_64x64_ldg8_f2f_stages_64x5_tn";
constexpr const char *kPagedDec =
    "_ZN7simattn21paged_attention_v1_decEPKfS1_S1_PKiS3_Pfiiiiiiilf";
constexpr const char *kCublasModule = "libsimcublas.so";
constexpr const char *kAttnModule = "libsimattn.so";

/** The stream-tag prefix the decode path embeds in an i64 constant —
 * pointer-shaped but NOT a device-0 address, so the clean fixture
 * proves the MDL705 heuristic does not false-fire on tagged scalars. */
constexpr u64 kStreamTagLike = 0x7fab00000001ull;

ParamSpec
indirect(u64 alloc_index, u64 offset = 0)
{
    ParamSpec p;
    p.kind = ParamSpec::kIndirect;
    p.alloc_index = alloc_index;
    p.offset = offset;
    return p;
}

template <typename T>
ParamSpec
constant(T value)
{
    ParamSpec p;
    p.kind = ParamSpec::kConstant;
    p.constant_bytes.resize(sizeof(T));
    std::memcpy(p.constant_bytes.data(), &value, sizeof(T));
    return p;
}

NodeBlueprint
gemmNode(const char *name, u64 a, u64 w, u64 c)
{
    NodeBlueprint n;
    n.kernel_name = name;
    n.module_name = kCublasModule;
    n.params = {indirect(a), indirect(w), indirect(c),
                constant<i32>(4), constant<i32>(8), constant<i32>(4)};
    return n;
}

/**
 * The base artifact: one bs=1 chain of gemm128 -> gemm64 ->
 * paged_attention_v1_dec over ten 4 KiB allocations. The decode node
 * carries the i64 stream-tag constant whose slot the uncovered_slot
 * fixture poisons.
 */
Artifact
baseArtifact()
{
    Artifact a;
    a.model_name = "fixture-model";
    a.model_seed = 7;
    a.free_gpu_memory = MaterializedImage::kHeaderBytes; // unused here
    for (int i = 0; i < 10; ++i) {
        AllocOp op;
        op.kind = AllocOp::kAlloc;
        op.logical_size = 4096;
        op.backing_size = 256;
        a.ops.push_back(op);
    }

    GraphBlueprint g;
    g.batch_size = 1;
    g.nodes.push_back(gemmNode(kGemm128, 0, 1, 2));
    g.nodes.push_back(gemmNode(kGemm64, 2, 3, 4));

    NodeBlueprint dec;
    dec.kernel_name = kPagedDec;
    dec.module_name = kAttnModule;
    dec.params = {indirect(4),        indirect(5),
                  indirect(6),        indirect(7),
                  indirect(8),        indirect(9),
                  constant<i32>(1),   constant<i32>(2),
                  constant<i32>(4),   constant<i32>(1),
                  constant<i32>(16),  constant<i32>(1),
                  constant<i32>(0),   constant<i64>(kStreamTagLike),
                  constant<f32>(1.0f)};
    g.nodes.push_back(dec);

    g.edges = {{0, 1}, {1, 2}};
    a.graphs.push_back(std::move(g));
    return a;
}

/** Byte offset of a zero-copy span inside the serialized image. */
template <typename T>
std::size_t
spanOffset(const std::vector<u8> &bytes, std::span<const T> view)
{
    return static_cast<std::size_t>(
        reinterpret_cast<const u8 *>(view.data()) - bytes.data());
}

/** Recompute the payload CRC after surgery (header offset 16). */
void
resealImage(std::vector<u8> &bytes)
{
    const u64 payload = bytes.size() - MaterializedImage::kHeaderBytes;
    std::memcpy(bytes.data() + 8, &payload, sizeof(payload));
    const u32 crc = crc32(bytes.data() + MaterializedImage::kHeaderBytes,
                          payload);
    std::memcpy(bytes.data() + 16, &crc, sizeof(crc));
}

Status
writeFixture(const std::string &dir, const char *name,
             const std::vector<u8> &bytes)
{
    const std::string path = dir + "/" + name;
    MEDUSA_RETURN_IF_ERROR(writeFile(path, bytes));
    std::printf("wrote %s (%zu bytes)\n", path.c_str(), bytes.size());
    return Status::ok();
}

Status
generate(const std::string &dir)
{
    const Artifact base = baseArtifact();
    MEDUSA_ASSIGN_OR_RETURN(const std::vector<u8> clean,
                            buildImageBytes(base, {}));
    MEDUSA_ASSIGN_OR_RETURN(
        const MaterializedImage view,
        MaterializedImage::openView(std::span<const u8>(clean)));
    const std::size_t data_relocs_off =
        spanOffset(clean, view.data_relocs);
    const std::size_t kernel_relocs_off =
        spanOffset(clean, view.kernel_relocs);
    const std::size_t template_off =
        spanOffset(clean, view.patch_template);
    MEDUSA_CHECK(view.data_relocs.size() >= 2 &&
                     view.kernel_relocs.size() >= 2,
                 "fixture artifact produced too few relocations");

    MEDUSA_RETURN_IF_ERROR(writeFixture(dir, "clean.mdsi", clean));

    // truncated_relocs: chop the file in the middle of the relocation
    // tables. The payload no longer decodes -> MDL700.
    {
        std::vector<u8> bytes = clean;
        bytes.resize(data_relocs_off +
                     sizeof(MaterializedImage::DataReloc) / 2);
        resealImage(bytes);
        MEDUSA_RETURN_IF_ERROR(
            writeFixture(dir, "truncated_relocs.mdsi", bytes));
    }

    // overlapping_relocs: retarget data reloc 1 onto data reloc 0's
    // slot. That slot is now patched twice -> MDL704 (the orphaned
    // slot it used to cover is a null pointer param -> MDL705 warning,
    // deliberately not an error).
    {
        std::vector<u8> bytes = clean;
        MaterializedImage::DataReloc r0;
        std::memcpy(&r0, bytes.data() + data_relocs_off, sizeof(r0));
        MaterializedImage::DataReloc r1;
        std::memcpy(&r1, bytes.data() + data_relocs_off + sizeof(r1),
                    sizeof(r1));
        r1.slot = r0.slot;
        std::memcpy(bytes.data() + data_relocs_off + sizeof(r1), &r1,
                    sizeof(r1));
        resealImage(bytes);
        MEDUSA_RETURN_IF_ERROR(
            writeFixture(dir, "overlapping_relocs.mdsi", bytes));
    }

    // uncovered_slot: poison the decode node's i64 stream-tag constant
    // slot with a device-0 address. The slot has no covering
    // relocation and now holds an in-window pointer-shaped value ->
    // MDL705 (heuristic branch). No relocation is touched.
    {
        std::vector<u8> bytes = clean;
        u64 poison_slot = static_cast<u64>(-1);
        const MaterializedImage::GraphView &gv = view.graphs.at(0);
        // param 13 of node 2 (the i64 stream tag).
        const u64 param_index = gv.param_begin[2] + 13;
        poison_slot = gv.param_slot_begin + param_index;
        const u64 poison = 0x7f2000004000ull; // inside device 0's window
        std::memcpy(bytes.data() + template_off + poison_slot * 8,
                    &poison, sizeof(poison));
        resealImage(bytes);
        MEDUSA_RETURN_IF_ERROR(
            writeFixture(dir, "uncovered_slot.mdsi", bytes));
    }

    // shuffled_kernel_table: swap the kernel-table indices of the
    // first two kernel relocations. Both gemm variants share one
    // signature, so nothing else changes — but the table's entries are
    // no longer referenced in first-occurrence order -> MDL706.
    {
        std::vector<u8> bytes = clean;
        MaterializedImage::KernelReloc k0;
        MaterializedImage::KernelReloc k1;
        std::memcpy(&k0, bytes.data() + kernel_relocs_off, sizeof(k0));
        std::memcpy(&k1, bytes.data() + kernel_relocs_off + sizeof(k1),
                    sizeof(k1));
        std::swap(k0.kernel_index, k1.kernel_index);
        std::memcpy(bytes.data() + kernel_relocs_off, &k0, sizeof(k0));
        std::memcpy(bytes.data() + kernel_relocs_off + sizeof(k1), &k1,
                    sizeof(k1));
        resealImage(bytes);
        MEDUSA_RETURN_IF_ERROR(
            writeFixture(dir, "shuffled_kernel_table.mdsi", bytes));
    }

    // oob_reloc: point data reloc 0 at allocation index 999, far past
    // the 10-allocation replay table -> MDL701.
    {
        std::vector<u8> bytes = clean;
        MaterializedImage::DataReloc r0;
        std::memcpy(&r0, bytes.data() + data_relocs_off, sizeof(r0));
        r0.alloc_index = 999;
        std::memcpy(bytes.data() + data_relocs_off, &r0, sizeof(r0));
        resealImage(bytes);
        MEDUSA_RETURN_IF_ERROR(
            writeFixture(dir, "oob_reloc.mdsi", bytes));
    }

    // freed_target: a variant artifact whose first gemm input is freed
    // BEFORE another allocation the same graph references is born, so
    // the graph's launch provably postdates the free and the
    // relocation resolves against a recycled address -> MDL702.
    // Emitted (not surgically edited) because the op sequence length
    // changes; the emission-side lint gate is off by default, so the
    // defective image still builds.
    {
        Artifact variant = baseArtifact();
        AllocOp free_op;
        free_op.kind = AllocOp::kFree;
        free_op.freed_alloc_index = 0; // ops[10]: kill the gemm input
        variant.ops.push_back(free_op);
        AllocOp extra; // ops[11]: a later birth the graph references
        extra.kind = AllocOp::kAlloc;
        extra.logical_size = 4096;
        extra.backing_size = 256;
        variant.ops.push_back(extra);
        variant.graphs.at(0).nodes.at(2).params.at(5) = indirect(10);
        MEDUSA_ASSIGN_OR_RETURN(const std::vector<u8> bytes,
                                buildImageBytes(variant, {}));
        MEDUSA_RETURN_IF_ERROR(
            writeFixture(dir, "freed_target.mdsi", bytes));
    }
    return Status::ok();
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 2) {
        std::fprintf(stderr, "usage: %s <output-dir>\n", argv[0]);
        return 2;
    }
    const Status status = generate(argv[1]);
    if (!status.isOk()) {
        std::fprintf(stderr, "fixture generation failed: %s\n",
                     status.toString().c_str());
        return 1;
    }
    return 0;
}
