/**
 * @file
 * medusa_serve — the OpenAI-style serving front end over the cluster
 * scheduler (DESIGN.md §17).
 *
 * Two modes:
 *
 *  - **serve** (default): bind the configured port and serve
 *    /v1/completions, /v1/chat/completions, /v1/models, /healthz and
 *    /metrics until SIGINT (or --duration elapses), then drain
 *    gracefully and print the run's cluster metrics.
 *  - **--smoke**: bind an ephemeral port, run an in-process loopback
 *    client through the streaming, non-streaming and error paths,
 *    print a JSON verdict and exit non-zero on any failure (wired
 *    into scripts/check.sh).
 *
 * By default the serving profile is measured the honest way — one
 * real materialization + cold start of --model through the functional
 * engine. --toy-profile substitutes the hand-made Medusa-shaped
 * profile the scale benches use, skipping the (few-second) measure.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "medusa/offline.h"
#include "serve/server.h"
#include "serverless/profile.h"

using namespace medusa;

namespace {

std::atomic<bool> g_stop{false};

void
onSignal(int)
{
    g_stop.store(true);
}

/** The hand-made Medusa-like profile (same shape as the benches). */
serverless::ServingProfile
toyProfile()
{
    serverless::ServingProfile p;
    p.model_name = "toy";
    p.strategy = llm::Strategy::kMedusa;
    p.loading_sec = 1.4;
    p.cold_start_sec = 1.4;
    p.batch_sizes = {1, 4, 8, 16};
    p.decode_step_sec = {0.012, 0.016, 0.022, 0.035};
    p.prefill_tokens = {128, 512, 2048};
    p.prefill_sec = {0.045, 0.12, 0.42};
    return p;
}

/** Materialize --model and measure its Medusa serving profile. */
StatusOr<serverless::ServingProfile>
measuredProfile(const std::string &model_name)
{
    MEDUSA_ASSIGN_OR_RETURN(llm::ModelConfig model,
                            llm::findModel(model_name));
    core::OfflineOptions oopts;
    oopts.model = model;
    MEDUSA_ASSIGN_OR_RETURN(core::OfflineResult offline,
                            core::materialize(oopts));
    serverless::ProfileOptions popts;
    popts.model = model;
    popts.strategy = llm::Strategy::kMedusa;
    popts.artifact = &offline.artifact;
    return serverless::buildServingProfile(popts);
}

// ---------------------------------------------------------------------
// Loopback smoke client (raw sockets; no external curl dependency).
// ---------------------------------------------------------------------

/** Connect, send @p request, read until peer close; returns bytes. */
StatusOr<std::string>
roundTrip(u16 port, const std::string &request)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        return internalError("socket() failed");
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return internalError("connect() failed: " +
                             std::string(std::strerror(errno)));
    }
    if (!serve::writeAll(fd, request)) {
        ::close(fd);
        return internalError("send failed");
    }
    ::shutdown(fd, SHUT_WR);
    std::string out;
    for (;;) {
        const i64 n = serve::readInto(fd, out);
        if (n <= 0) {
            break;
        }
    }
    ::close(fd);
    return out;
}

std::string
postRequest(const std::string &path, const std::string &body)
{
    return "POST " + path + " HTTP/1.1\r\nHost: localhost\r\n" +
           "Content-Type: application/json\r\nContent-Length: " +
           std::to_string(body.size()) + "\r\n\r\n" + body;
}

/** Count `data: ` SSE frames, excluding the [DONE] terminator. */
u64
countSseDataFrames(const std::string &response, bool *saw_done)
{
    u64 frames = 0;
    *saw_done = false;
    std::size_t pos = 0;
    while ((pos = response.find("data: ", pos)) != std::string::npos) {
        pos += 6;
        if (response.compare(pos, 6, "[DONE]") == 0) {
            *saw_done = true;
        } else {
            ++frames;
        }
    }
    return frames;
}

struct SmokeResult
{
    bool ok = true;
    std::string failure;
    u64 stream_frames = 0;
    u64 completion_tokens = 0;
};

void
expect(SmokeResult *r, bool cond, const std::string &what)
{
    if (r->ok && !cond) {
        r->ok = false;
        r->failure = what;
    }
}

SmokeResult
runSmokeClient(u16 port)
{
    SmokeResult r;

    // 1. Streamed completion: SSE frames then [DONE].
    auto streamed = roundTrip(
        port, postRequest("/v1/completions",
                          R"({"model":"toy","prompt":"hello cold )"
                          R"(start world","max_tokens":8,)"
                          R"("stream":true})"));
    expect(&r, streamed.isOk(), "stream round-trip failed");
    if (streamed.isOk()) {
        expect(&r,
               streamed->rfind("HTTP/1.1 200", 0) == 0 &&
                   streamed->find("text/event-stream") !=
                       std::string::npos,
               "streamed response is not SSE: " + *streamed);
        bool saw_done = false;
        r.stream_frames = countSseDataFrames(*streamed, &saw_done);
        // 8 token chunks + 1 finish_reason chunk.
        expect(&r, r.stream_frames == 9,
               "expected 9 SSE frames, got " +
                   std::to_string(r.stream_frames));
        expect(&r, saw_done, "missing [DONE] terminator");
    }

    // 2. Non-streaming chat completion with usage accounting.
    auto chat = roundTrip(
        port, postRequest("/v1/chat/completions",
                          R"({"model":"toy","messages":[{"role":)"
                          R"("user","content":"say something"}],)"
                          R"("max_tokens":4})"));
    expect(&r, chat.isOk(), "chat round-trip failed");
    if (chat.isOk()) {
        expect(&r, chat->rfind("HTTP/1.1 200", 0) == 0,
               "chat completion failed: " + *chat);
        expect(&r,
               chat->find("\"completion_tokens\":4") !=
                   std::string::npos,
               "bad usage accounting: " + *chat);
        expect(&r,
               chat->find("\"role\":\"assistant\"") !=
                   std::string::npos,
               "missing assistant message: " + *chat);
        r.completion_tokens = 4;
    }

    // 3. Validation: bad body is a 400 with an OpenAI error envelope.
    auto bad = roundTrip(port, postRequest("/v1/completions",
                                           R"({"model":42})"));
    expect(&r, bad.isOk(), "bad-request round-trip failed");
    if (bad.isOk()) {
        expect(&r,
               bad->rfind("HTTP/1.1 400", 0) == 0 &&
                   bad->find("invalid_request_error") !=
                       std::string::npos,
               "expected a 400 error envelope: " + *bad);
    }

    // 4. Unknown model → 404.
    auto unknown = roundTrip(
        port, postRequest("/v1/completions",
                          R"({"model":"nope","prompt":"x"})"));
    expect(&r, unknown.isOk(), "unknown-model round-trip failed");
    if (unknown.isOk()) {
        expect(&r, unknown->rfind("HTTP/1.1 404", 0) == 0,
               "expected 404 for unknown model: " + *unknown);
    }

    // 5. Liveness + models listing.
    auto health = roundTrip(
        port, "GET /healthz HTTP/1.1\r\nHost: localhost\r\n\r\n");
    expect(&r,
           health.isOk() &&
               health->find("\"status\":\"ok\"") != std::string::npos,
           "healthz failed");
    auto models = roundTrip(
        port, "GET /v1/models HTTP/1.1\r\nHost: localhost\r\n\r\n");
    expect(&r,
           models.isOk() &&
               models->find("\"id\":\"toy\"") != std::string::npos,
           "models listing failed");
    return r;
}

int
runSmoke(const std::string &metrics_out)
{
    const serverless::ServingProfile profile = toyProfile();
    serve::ServeOptions sopts;
    sopts.cluster.profile = &profile;
    sopts.cluster.num_gpus = 2;
    sopts.time_scale = 0; // free-run: responses at compute speed
    sopts.model_names = {"toy"};

    serve::Server server(std::move(sopts));
    const Status st = server.start();
    if (!st.isOk()) {
        std::fprintf(stderr, "start failed: %s\n",
                     st.toString().c_str());
        return 1;
    }

    const SmokeResult r = runSmokeClient(server.port());
    const serverless::TraceMetrics tm = server.stop();
    const MetricsSnapshot snap = server.metricsSnapshot();

    if (!metrics_out.empty()) {
        std::ofstream out(metrics_out);
        out << snap.toJson() << "\n";
    }

    serve::Json verdict = serve::Json::object();
    verdict.set("ok", serve::Json::boolean(r.ok));
    if (!r.ok) {
        verdict.set("failure", serve::Json::string(r.failure));
    }
    verdict.set("stream_frames",
                serve::Json::number(static_cast<f64>(r.stream_frames)));
    verdict.set("completed",
                serve::Json::number(static_cast<f64>(tm.completed)));
    verdict.set(
        "tokens_streamed",
        serve::Json::number(static_cast<f64>(
            snap.counterValue("server.tokens_streamed"))));
    verdict.set("requests",
                serve::Json::number(static_cast<f64>(
                    snap.counterValue("server.requests"))));
    std::printf("%s\n", verdict.dump().c_str());
    return r.ok ? 0 : 1;
}

u64
parseCount(const std::string &arg, std::size_t prefix)
{
    return std::strtoull(arg.c_str() + prefix, nullptr, 10);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string model = "Qwen1.5-1.8B";
    std::string host = "127.0.0.1";
    std::string metrics_out;
    u16 port = 8080;
    u32 gpus = 4;
    f64 time_scale = 1.0;
    f64 duration = 0;
    bool toy = false;
    bool smoke = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--toy-profile") {
            toy = true;
        } else if (arg.rfind("--model=", 0) == 0) {
            model = arg.substr(8);
        } else if (arg.rfind("--host=", 0) == 0) {
            host = arg.substr(7);
        } else if (arg.rfind("--metrics-out=", 0) == 0) {
            metrics_out = arg.substr(14);
        } else if (arg.rfind("--port=", 0) == 0) {
            port = static_cast<u16>(parseCount(arg, 7));
        } else if (arg.rfind("--gpus=", 0) == 0) {
            gpus = static_cast<u32>(parseCount(arg, 7));
        } else if (arg.rfind("--time-scale=", 0) == 0) {
            time_scale = std::atof(arg.c_str() + 13);
        } else if (arg.rfind("--duration=", 0) == 0) {
            duration = std::atof(arg.c_str() + 11);
        } else {
            std::fprintf(
                stderr,
                "usage: %s [--smoke] [--toy-profile] [--model=NAME]\n"
                "          [--host=ADDR] [--port=P] [--gpus=N]\n"
                "          [--time-scale=X] [--duration=SEC]\n"
                "          [--metrics-out=PATH]\n",
                argv[0]);
            return 2;
        }
    }

    if (smoke) {
        return runSmoke(metrics_out);
    }

    serverless::ServingProfile profile;
    if (toy) {
        profile = toyProfile();
    } else {
        std::fprintf(stderr, "measuring serving profile for %s ...\n",
                     model.c_str());
        auto measured = measuredProfile(model);
        if (!measured.isOk()) {
            std::fprintf(stderr, "profile failed: %s\n",
                         measured.status().toString().c_str());
            return 1;
        }
        profile = std::move(measured).value();
    }

    serve::ServeOptions sopts;
    sopts.cluster.profile = &profile;
    sopts.cluster.num_gpus = gpus;
    sopts.time_scale = time_scale;
    sopts.host = host;
    sopts.port = port;
    sopts.model_names = {toy ? "toy" : model};

    serve::Server server(std::move(sopts));
    const Status st = server.start();
    if (!st.isOk()) {
        std::fprintf(stderr, "start failed: %s\n",
                     st.toString().c_str());
        return 1;
    }
    std::fprintf(stderr,
                 "serving %s on http://%s:%u (time-scale %.2g); "
                 "Ctrl-C drains\n",
                 model.c_str(), host.c_str(),
                 static_cast<unsigned>(server.port()), time_scale);

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    const auto t0 = std::chrono::steady_clock::now();
    while (!g_stop.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        if (duration > 0 &&
            std::chrono::duration<f64>(
                std::chrono::steady_clock::now() - t0)
                    .count() >= duration) {
            break;
        }
    }

    std::fprintf(stderr, "draining ...\n");
    const serverless::TraceMetrics tm = server.stop();
    const u64 shed = tm.shed_admission + tm.shed_deadline;
    std::fprintf(stderr,
                 "served %llu requests (%llu completed, %llu shed, "
                 "%llu failed), TTFT p50 %.3fs p99 %.3fs\n",
                 static_cast<unsigned long long>(
                     tm.completed + shed + tm.failed_requests),
                 static_cast<unsigned long long>(tm.completed),
                 static_cast<unsigned long long>(shed),
                 static_cast<unsigned long long>(tm.failed_requests),
                 tm.completed > 0 ? tm.ttft_sec.p50() : 0.0,
                 tm.completed > 0 ? tm.ttft_sec.p99() : 0.0);
    if (!metrics_out.empty()) {
        std::ofstream out(metrics_out);
        out << server.metricsSnapshot().toJson() << "\n";
    }
    return 0;
}
