/**
 * @file
 * medusa_lint: static artifact verification from the command line.
 *
 * Analyzes one or more serialized artifacts WITHOUT executing replay
 * and reports rule-tagged diagnostics (see src/medusa/lint/lint.h and
 * DESIGN.md §9). With several inputs the cross-rank tensor-parallel
 * rules (MDL6xx) also run, treating the files as ranks 0..N-1.
 *
 * Usage:
 *   medusa_lint [options] <artifact.medusa> [rank1.medusa ...]
 *   medusa_lint --image [options] <image.mdsi> [more.mdsi ...]
 *
 * Options:
 *   --image                inputs are v6 relocation images; run the
 *                          MDL7xx/MDL8xx image rules on each
 *   --json                 emit a JSON report instead of text
 *   --sarif                emit a SARIF 2.1.0 report instead of text
 *   --no-registry          skip kernel-registry rules (MDL301/302)
 *   --device-bytes <n>     device capacity for MDL5xx (default 40 GiB)
 *   --device-index <i>     capture device for the MDL705 pointer-window
 *                          heuristic (default 0)
 *   --collective <module>  collective module for MDL604
 *                          (default libsimnccl.so)
 *   --max-severity <s>     highest severity that still exits 0:
 *                          info (any warning fails), warning (the
 *                          default: only errors fail), or error
 *                          (never fail on diagnostics)
 *
 * Exit status: 0 when no diagnostic exceeds --max-severity, 1
 * otherwise, 2 usage or I/O failure.
 */

#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "medusa/image.h"
#include "medusa/lint/lint.h"

using namespace medusa;
using core::lint::LintOptions;
using core::lint::LintReport;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--image] [--json|--sarif] [--no-registry]\n"
        "       [--device-bytes N] [--device-index I]\n"
        "       [--collective MODULE] [--max-severity info|warning|error]\n"
        "       <artifact.medusa> [rank1 ...]\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    LintOptions options;
    bool json = false;
    bool sarif = false;
    bool image_mode = false;
    // Highest severity still acceptable for exit 0. The default keeps
    // the historical behavior: warnings pass, errors fail.
    core::lint::Severity max_severity = core::lint::Severity::kWarning;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg == "--sarif") {
            sarif = true;
        } else if (arg == "--image") {
            image_mode = true;
        } else if (arg == "--no-registry") {
            options.check_kernel_registry = false;
        } else if (arg == "--device-bytes") {
            if (++i >= argc) {
                return usage(argv[0]);
            }
            options.device_memory_bytes =
                std::strtoull(argv[i], nullptr, 0);
        } else if (arg == "--device-index") {
            if (++i >= argc) {
                return usage(argv[0]);
            }
            options.device_index = static_cast<u32>(
                std::strtoul(argv[i], nullptr, 0));
        } else if (arg == "--collective") {
            if (++i >= argc) {
                return usage(argv[0]);
            }
            options.collective_module = argv[i];
        } else if (arg == "--max-severity") {
            if (++i >= argc) {
                return usage(argv[0]);
            }
            const std::string level = argv[i];
            if (level == "info") {
                max_severity = core::lint::Severity::kInfo;
            } else if (level == "warning") {
                max_severity = core::lint::Severity::kWarning;
            } else if (level == "error") {
                max_severity = core::lint::Severity::kError;
            } else {
                std::fprintf(stderr, "unknown severity %s\n",
                             level.c_str());
                return usage(argv[0]);
            }
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            return usage(argv[0]);
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty() || (json && sarif)) {
        return usage(argv[0]);
    }

    if (image_mode) {
        LintReport report;
        for (const std::string &path : paths) {
            auto bytes = readFile(path);
            if (!bytes.isOk()) {
                std::fprintf(stderr, "%s: %s\n", path.c_str(),
                             bytes.status().toString().c_str());
                return 2;
            }
            LintReport one = core::lint::lintImageBytes(
                std::span<const u8>(*bytes), options);
            if (paths.size() > 1) {
                for (auto &diag : one.diagnostics) {
                    diag.location = path + ": " + diag.location;
                }
            }
            report.merge(std::move(one));
        }
        if (json) {
            std::printf("%s\n", report.toJson().c_str());
        } else if (sarif) {
            std::printf("%s\n", report.toSarif().c_str());
        } else {
            std::printf("%s", report.toText().c_str());
        }
        for (const auto &diag : report.diagnostics) {
            if (diag.severity > max_severity) {
                return 1;
            }
        }
        return 0;
    }

    std::vector<core::Artifact> artifacts;
    for (const std::string &path : paths) {
        auto bytes = readFile(path);
        if (!bytes.isOk()) {
            std::fprintf(stderr, "%s: %s\n", path.c_str(),
                         bytes.status().toString().c_str());
            return 2;
        }
        // Zero-copy parse straight out of the file buffer; the vector
        // only needs to outlive the call (decoded data is owned by the
        // Artifact).
        auto artifact =
            core::Artifact::deserializeView(std::span<const u8>(*bytes));
        if (!artifact.isOk()) {
            std::fprintf(stderr, "%s: %s\n", path.c_str(),
                         artifact.status().toString().c_str());
            return 2;
        }
        artifacts.push_back(std::move(*artifact));
    }

    const LintReport report =
        artifacts.size() == 1
            ? core::lint::lintArtifact(artifacts[0], options)
            : core::lint::lintTpArtifacts(artifacts, options);
    if (json) {
        std::printf("%s\n", report.toJson().c_str());
    } else if (sarif) {
        std::printf("%s\n", report.toSarif().c_str());
    } else {
        if (artifacts.size() == 1) {
            std::printf("%s: model %s, %zu graphs, %zu ops\n",
                        paths[0].c_str(),
                        artifacts[0].model_name.c_str(),
                        artifacts[0].graphs.size(),
                        artifacts[0].ops.size());
        }
        std::printf("%s", report.toText().c_str());
    }
    for (const auto &diag : report.diagnostics) {
        if (diag.severity > max_severity) {
            return 1;
        }
    }
    return 0;
}
