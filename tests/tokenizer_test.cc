/**
 * @file
 * Tests of the BPE tokenizer substrate: training, exact round-trip
 * encode/decode, determinism and compression behaviour.
 */

#include <gtest/gtest.h>

#include "llm/tokenizer.h"

namespace medusa::llm {
namespace {

TEST(TokenizerTest, UntrainedIsByteLevel)
{
    BpeTokenizer tok = BpeTokenizer::train("", 256);
    EXPECT_EQ(tok.vocabSize(), 256u);
    const auto ids = tok.encode("ab");
    EXPECT_EQ(ids, (std::vector<i32>{'a', 'b'}));
    EXPECT_EQ(tok.decode(ids), "ab");
}

TEST(TokenizerTest, TrainingGrowsVocabAndCompresses)
{
    const std::string corpus = syntheticCorpus(3, 8192);
    BpeTokenizer tok = BpeTokenizer::train(corpus, 512);
    EXPECT_GT(tok.vocabSize(), 300u);
    EXPECT_LE(tok.vocabSize(), 512u);
    const std::string text = syntheticCorpus(3, 512);
    const auto ids = tok.encode(text);
    // BPE must compress text drawn from the training distribution.
    EXPECT_LT(ids.size(), text.size() / 2);
}

TEST(TokenizerTest, RoundTripIsExact)
{
    const std::string corpus = syntheticCorpus(7, 4096);
    BpeTokenizer tok = BpeTokenizer::train(corpus, 400);
    for (u64 seed : {1ull, 2ull, 3ull}) {
        const std::string text = syntheticCorpus(seed, 300);
        EXPECT_EQ(tok.decode(tok.encode(text)), text);
    }
}

TEST(TokenizerTest, RoundTripSurvivesUnseenBytes)
{
    BpeTokenizer tok = BpeTokenizer::train(syntheticCorpus(1, 2048), 320);
    std::string weird;
    for (int b = 0; b < 256; ++b) {
        weird.push_back(static_cast<char>(b));
    }
    EXPECT_EQ(tok.decode(tok.encode(weird)), weird);
}

TEST(TokenizerTest, TrainingIsDeterministic)
{
    const std::string corpus = syntheticCorpus(5, 4096);
    BpeTokenizer a = BpeTokenizer::train(corpus, 384);
    BpeTokenizer b = BpeTokenizer::train(corpus, 384);
    EXPECT_EQ(a.vocabSize(), b.vocabSize());
    const std::string text = syntheticCorpus(9, 256);
    EXPECT_EQ(a.encode(text), b.encode(text));
}

TEST(TokenizerTest, MergedTokensExpandCorrectly)
{
    BpeTokenizer tok = BpeTokenizer::train("aaaaaaaaaa", 260);
    // "aa" must have been merged.
    ASSERT_GT(tok.vocabSize(), 256u);
    auto bytes = tok.tokenBytes(256);
    ASSERT_TRUE(bytes.isOk());
    EXPECT_EQ(*bytes, "aa");
    EXPECT_FALSE(tok.tokenBytes(-1).isOk());
    EXPECT_FALSE(
        tok.tokenBytes(static_cast<i32>(tok.vocabSize())).isOk());
}

TEST(TokenizerTest, EmptyInputYieldsEmptyOutput)
{
    BpeTokenizer tok = BpeTokenizer::train(syntheticCorpus(1, 1024), 300);
    EXPECT_TRUE(tok.encode("").empty());
    EXPECT_EQ(tok.decode({}), "");
}

TEST(TokenizerTest, SyntheticCorpusDeterministicAndSized)
{
    const std::string a = syntheticCorpus(11, 1000);
    const std::string b = syntheticCorpus(11, 1000);
    EXPECT_EQ(a, b);
    EXPECT_GE(a.size(), 1000u);
    EXPECT_LT(a.size(), 1100u);
    EXPECT_NE(a, syntheticCorpus(12, 1000));
}

} // namespace
} // namespace medusa::llm
