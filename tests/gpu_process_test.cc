/**
 * @file
 * Tests of the GpuProcess driver surface not covered elsewhere: memcpy
 * semantics and timing, memset, device-wide synchronization across
 * streams, launch statistics and error propagation.
 */

#include <gtest/gtest.h>

#include "simcuda/gpu_process.h"
#include "simcuda/kernels/builtin.h"

namespace medusa::simcuda {
namespace {

class GpuProcessTest : public ::testing::Test
{
  protected:
    GpuProcessTest() : process_(GpuProcessOptions{}, &clock_, &cost_) {}

    SimClock clock_;
    CostModel cost_;
    GpuProcess process_;
};

TEST_F(GpuProcessTest, MemcpyRoundTripAndTiming)
{
    auto buf = process_.memory().malloc(1024, 64);
    ASSERT_TRUE(buf.isOk());
    const std::vector<f32> data = {1, 2, 3, 4};
    const SimTimeNs t0 = clock_.now();
    // 24 GB logical at 24 GB/s = 1 s of PCIe time.
    ASSERT_TRUE(process_
                    .memcpyH2D(*buf, data.data(), 16,
                               24ull * 1000 * 1000 * 1000)
                    .isOk());
    EXPECT_NEAR(units::nsToSec(clock_.now() - t0), 1.0, 0.01);

    std::vector<f32> out(4);
    ASSERT_TRUE(process_.memcpyD2H(out.data(), *buf, 16, 16).isOk());
    EXPECT_EQ(out, data);
}

TEST_F(GpuProcessTest, MemcpyZeroLogicalChargesNothing)
{
    auto buf = process_.memory().malloc(64, 64);
    const u32 v = 7;
    const SimTimeNs t0 = clock_.now();
    ASSERT_TRUE(process_.memcpyH2D(*buf, &v, 4, 0).isOk());
    EXPECT_EQ(clock_.now(), t0);
}

TEST_F(GpuProcessTest, MemcpyOutOfBoundsFails)
{
    auto buf = process_.memory().malloc(1024, 8);
    std::vector<u8> big(64, 0);
    EXPECT_FALSE(
        process_.memcpyH2D(*buf, big.data(), big.size(), 0).isOk());
}

TEST_F(GpuProcessTest, MemsetFillsBacking)
{
    auto buf = process_.memory().malloc(64, 16);
    ASSERT_TRUE(process_.cudaMemset(*buf, 0xab, 16).isOk());
    std::vector<u8> out(16);
    ASSERT_TRUE(process_.memory().read(*buf, out.data(), 16).isOk());
    for (u8 b : out) {
        EXPECT_EQ(b, 0xab);
    }
}

TEST_F(GpuProcessTest, DeviceSynchronizeDrainsAllStreams)
{
    const auto &k = BuiltinKernels::get();
    auto buf = process_.memory().malloc(64, 64);
    Stream &a = process_.defaultStream();
    Stream &b = process_.createStream();
    // Warm the module on stream a.
    ParamsBuilder w;
    w.ptr(*buf).ptr(*buf).i32(1);
    ASSERT_TRUE(a.launch(k.copy_f32, w.take(), {}).isOk());
    // A long kernel on stream b.
    TimingInfo slow;
    slow.bytes = 1e9; // ~0.7 ms
    ParamsBuilder pb;
    pb.ptr(*buf).ptr(*buf).i32(1);
    ASSERT_TRUE(b.launch(k.copy_f32, pb.take(), slow).isOk());
    const SimTimeNs t0 = clock_.now();
    ASSERT_TRUE(process_.deviceSynchronize().isOk());
    EXPECT_GT(clock_.now() - t0, units::usToNs(500.0));
}

TEST_F(GpuProcessTest, LaunchCountersTrackPaths)
{
    const auto &k = BuiltinKernels::get();
    auto buf = process_.memory().malloc(64, 64);
    auto launchOnce = [&]() {
        ParamsBuilder pb;
        pb.ptr(*buf).ptr(*buf).i32(1);
        return process_.defaultStream().launch(k.copy_f32, pb.take(),
                                               {});
    };
    ASSERT_TRUE(launchOnce().isOk());
    ASSERT_TRUE(launchOnce().isOk());
    EXPECT_EQ(process_.eagerLaunchCount(), 2u);
    EXPECT_EQ(process_.capturedNodeCount(), 0u);

    ASSERT_TRUE(process_.beginCapture(process_.defaultStream()).isOk());
    ASSERT_TRUE(launchOnce().isOk());
    auto graph = process_.endCapture(process_.defaultStream());
    ASSERT_TRUE(graph.isOk());
    EXPECT_EQ(process_.capturedNodeCount(), 1u);
    EXPECT_EQ(process_.eagerLaunchCount(), 2u);

    auto exec = process_.instantiate(*graph);
    ASSERT_TRUE(exec.isOk());
    ASSERT_TRUE(
        process_.launchGraph(*exec, process_.defaultStream()).isOk());
    EXPECT_EQ(process_.graphLaunchCount(), 1u);
}

TEST_F(GpuProcessTest, KernelErrorsNameTheKernel)
{
    const auto &k = BuiltinKernels::get();
    // rmsnorm with an unmapped pointer fails and identifies itself.
    ParamsBuilder pb;
    pb.ptr(0x7f2000000000ull)
        .ptr(0x7f2000000000ull)
        .ptr(0x7f2000000000ull)
        .i32(1)
        .i32(4)
        .f32(1e-5f);
    Status st = process_.defaultStream().launch(k.rmsnorm, pb.take(),
                                                {});
    ASSERT_FALSE(st.isOk());
    EXPECT_NE(st.message().find("rmsnorm"), std::string::npos);
}

TEST_F(GpuProcessTest, UnknownKernelIdRejected)
{
    EXPECT_FALSE(process_.defaultStream()
                     .launch(static_cast<KernelId>(0xffff), {}, {})
                     .isOk());
}

TEST_F(GpuProcessTest, DeviceIndexSeparatesAddressWindows)
{
    SimClock clock2;
    GpuProcessOptions o;
    o.aslr_seed = 1; // same seed, different device
    o.device_index = 1;
    GpuProcess other(o, &clock2, &cost_);
    auto a = process_.memory().malloc(4096, 0);
    auto b = other.memory().malloc(4096, 0);
    ASSERT_TRUE(a.isOk() && b.isOk());
    EXPECT_GT(*b, *a);
    EXPECT_GE(*b - *a, 64ull * units::GiB);
    // Both stay under the pointer-heuristic bound.
    EXPECT_LT(*b, 0x800000000000ull);
}

} // namespace
} // namespace medusa::simcuda
