/**
 * @file
 * Tests of the cost model: the roofline kernel-time rule, transfer
 * times, and the stream pipeline semantics they drive (launch-bound vs
 * execution-bound eager decode — the mechanism behind Figure 3).
 */

#include <gtest/gtest.h>

#include "simcuda/gpu_process.h"
#include "simcuda/kernels/builtin.h"
#include "simtime/cost_model.h"

namespace medusa {
namespace {

TEST(CostModelTest, KernelTimeIsRoofline)
{
    CostModel cost;
    TimingInfo flops_bound;
    flops_bound.flops = 1e12;
    flops_bound.bytes = 1;
    TimingInfo mem_bound;
    mem_bound.flops = 1;
    mem_bound.bytes = 1e9;

    const f64 flop_us = 1e12 / (cost.gpu_tflops *
                                cost.steady_efficiency * 1e6);
    EXPECT_NEAR(units::nsToUs(cost.kernelExecTime(
                    flops_bound, cost.steady_efficiency)),
                cost.kernel_min_exec_us + flop_us, 0.1);

    const f64 mem_us = 1e9 / (cost.gpu_membw_gbps * 1e3);
    EXPECT_NEAR(units::nsToUs(cost.kernelExecTime(
                    mem_bound, cost.steady_efficiency)),
                cost.kernel_min_exec_us + mem_us, 0.1);

    // An empty kernel still pays the floor.
    EXPECT_NEAR(units::nsToUs(cost.kernelExecTime(
                    TimingInfo{}, cost.steady_efficiency)),
                cost.kernel_min_exec_us, 1e-9);
}

TEST(CostModelTest, TransferTimes)
{
    CostModel cost;
    // 20.5 GB at 20.5 GB/s = 1 second.
    EXPECT_NEAR(units::nsToSec(cost.ssdReadTime(20.5e9)), 1.0, 1e-9);
    EXPECT_NEAR(units::nsToSec(cost.pcieCopyTime(24.0e9)), 1.0, 1e-9);
}

class StreamTimingTest : public ::testing::Test
{
  protected:
    StreamTimingTest()
        : process_(simcuda::GpuProcessOptions{}, &clock_, &cost_)
    {
        // Pre-load the module so timing below is launch/exec only.
        buf_ = *process_.memory().malloc(64, 64);
        simcuda::ParamsBuilder pb;
        pb.ptr(buf_).ptr(buf_).i32(1);
        MEDUSA_CHECK(process_.defaultStream()
                         .launch(BuiltinKernelId(), pb.take(), {})
                         .isOk(),
                     "warm launch failed");
        MEDUSA_CHECK(process_.defaultStream().synchronize().isOk(),
                     "sync failed");
    }

    static simcuda::KernelId
    BuiltinKernelId()
    {
        return simcuda::BuiltinKernels::get().copy_f32;
    }

    Status
    launchWith(f64 exec_bytes)
    {
        simcuda::ParamsBuilder pb;
        pb.ptr(buf_).ptr(buf_).i32(1);
        TimingInfo t;
        t.bytes = exec_bytes;
        return process_.defaultStream().launch(BuiltinKernelId(),
                                               pb.take(), t);
    }

    SimClock clock_;
    CostModel cost_;
    simcuda::GpuProcess process_;
    DeviceAddr buf_ = 0;
};

TEST_F(StreamTimingTest, LaunchBoundWhenKernelsAreTiny)
{
    // 50 tiny kernels: total time ~ 50 CPU launches (the GPU starves).
    const SimTimeNs t0 = clock_.now();
    for (int i = 0; i < 50; ++i) {
        ASSERT_TRUE(launchWith(0).isOk());
    }
    ASSERT_TRUE(process_.defaultStream().synchronize().isOk());
    const f64 us = units::nsToUs(clock_.now() - t0);
    EXPECT_NEAR(us, 50 * cost_.kernel_launch_us + cost_.kernel_min_exec_us +
                        cost_.sync_us,
                cost_.kernel_launch_us);
}

TEST_F(StreamTimingTest, ExecBoundWhenKernelsAreBig)
{
    // 10 big kernels (1 ms each): launches pipeline underneath.
    const f64 big_bytes = 1e-3 * cost_.gpu_membw_gbps * 1e9; // ~1 ms
    const SimTimeNs t0 = clock_.now();
    for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(launchWith(big_bytes).isOk());
    }
    ASSERT_TRUE(process_.defaultStream().synchronize().isOk());
    const f64 ms = units::nsToMs(clock_.now() - t0);
    EXPECT_GT(ms, 9.9);
    EXPECT_LT(ms, 10.5); // launches hidden behind execution
}

TEST_F(StreamTimingTest, EventTransfersGpuTimeline)
{
    ASSERT_TRUE(launchWith(1e6).isOk()); // ~0.7 us + floor on stream A
    simcuda::Event ev;
    ASSERT_TRUE(process_.defaultStream().recordEvent(ev).isOk());
    simcuda::Stream &other = process_.createStream();
    ASSERT_TRUE(other.waitEvent(ev).isOk());
    // Synchronizing the other stream waits for the recorded work.
    const SimTimeNs before = clock_.now();
    ASSERT_TRUE(other.synchronize().isOk());
    EXPECT_GE(clock_.now(), before);
}

TEST_F(StreamTimingTest, GraphReplayChargesSingleLaunch)
{
    ASSERT_TRUE(process_.beginCapture(process_.defaultStream()).isOk());
    for (int i = 0; i < 20; ++i) {
        ASSERT_TRUE(launchWith(0).isOk());
    }
    auto graph = process_.endCapture(process_.defaultStream());
    ASSERT_TRUE(graph.isOk());
    auto exec = process_.instantiate(*graph);
    ASSERT_TRUE(exec.isOk());

    const SimTimeNs t0 = clock_.now();
    ASSERT_TRUE(
        process_.launchGraph(*exec, process_.defaultStream()).isOk());
    const f64 cpu_us = units::nsToUs(clock_.now() - t0);
    EXPECT_NEAR(cpu_us, cost_.graph_launch_us, 1e-6);
}

} // namespace
} // namespace medusa
