/**
 * @file
 * Tests of CUDA-graph construction (explicit and via stream capture),
 * topology, capture restrictions, events (fork/join DAGs), graph
 * instantiation and replay.
 */

#include <gtest/gtest.h>

#include "simcuda/caching_allocator.h"
#include "simcuda/gpu_process.h"
#include "simcuda/kernels/builtin.h"

namespace medusa::simcuda {
namespace {

/** Fixture providing a process, clock and small helpers. */
class GraphTest : public ::testing::Test
{
  protected:
    GraphTest() : process_(GpuProcessOptions{}, &clock_, &cost_) {}

    /** Launch a copy_f32 kernel src -> dst over count floats. */
    Status
    launchCopy(Stream &stream, DeviceAddr src, DeviceAddr dst, i32 count)
    {
        const auto &k = BuiltinKernels::get();
        ParamsBuilder pb;
        pb.ptr(src).ptr(dst).i32(count);
        return stream.launch(k.copy_f32, pb.take(), TimingInfo{});
    }

    /** Allocate a device buffer holding the given floats. */
    DeviceAddr
    buffer(const std::vector<f32> &values)
    {
        auto addr = process_.memory().malloc(values.size() * 4,
                                             values.size() * 4);
        MEDUSA_CHECK(addr.isOk(), "alloc failed");
        MEDUSA_CHECK(process_.memory()
                         .write(*addr, values.data(), values.size() * 4)
                         .isOk(),
                     "write failed");
        return *addr;
    }

    std::vector<f32>
    readBack(DeviceAddr addr, std::size_t count)
    {
        std::vector<f32> out(count);
        MEDUSA_CHECK(
            process_.memory().read(addr, out.data(), count * 4).isOk(),
            "read failed");
        return out;
    }

    SimClock clock_;
    CostModel cost_;
    GpuProcess process_;
};

TEST_F(GraphTest, ExplicitConstructionAndTopoOrder)
{
    CudaGraph g;
    const NodeId a = g.addKernelNode(1, {}, {}, {});
    const NodeId b = g.addKernelNode(2, {}, {}, {a});
    const NodeId c = g.addKernelNode(3, {}, {}, {a});
    const NodeId d = g.addKernelNode(4, {}, {}, {b, c});
    EXPECT_EQ(g.nodeCount(), 4u);
    EXPECT_EQ(g.edgeCount(), 4u);
    auto order = g.topoOrder();
    ASSERT_TRUE(order.isOk());
    EXPECT_EQ(order->front(), a);
    EXPECT_EQ(order->back(), d);
}

TEST_F(GraphTest, CycleDetected)
{
    CudaGraph g;
    g.addKernelNode(1, {}, {}, {});
    g.addKernelNode(2, {}, {}, {0});
    // Force a cycle through the edge list (bypassing addKernelNode's
    // ordering check is only possible with a corrupt artifact, which
    // deserialization models; emulate by self-loop via topo check).
    CudaGraph h = g;
    // addKernelNode cannot create cycles; build one via deps on a graph
    // read from a hostile artifact is covered in artifact tests. Here
    // just verify a valid graph is not misdiagnosed.
    auto order = h.topoOrder();
    EXPECT_TRUE(order.isOk());
}

TEST_F(GraphTest, SetNodeParamReplacesBytes)
{
    CudaGraph g;
    ParamsBuilder pb;
    pb.ptr(0x7f20aa000000ull).i32(5);
    g.addKernelNode(1, pb.take(), {}, {});
    std::vector<u8> fresh(8, 0xee);
    g.setNodeParam(0, 0, fresh);
    EXPECT_EQ(g.node(0).params[0], fresh);
}

TEST_F(GraphTest, StreamCaptureRecordsWithoutExecuting)
{
    const DeviceAddr src = buffer({1, 2, 3, 4});
    const DeviceAddr dst = buffer({0, 0, 0, 0});
    Stream &stream = process_.defaultStream();

    // Warm up so the module is loaded (loading during capture fails).
    ASSERT_TRUE(launchCopy(stream, src, dst, 4).isOk());
    ASSERT_TRUE(process_.memory().memset(dst, 0, 16).isOk());

    ASSERT_TRUE(process_.beginCapture(stream).isOk());
    EXPECT_TRUE(process_.captureActive());
    ASSERT_TRUE(launchCopy(stream, src, dst, 4).isOk());
    ASSERT_TRUE(launchCopy(stream, dst, dst, 4).isOk());
    auto graph = process_.endCapture(stream);
    ASSERT_TRUE(graph.isOk());
    EXPECT_FALSE(process_.captureActive());

    // Capture recorded 2 nodes with a linear dependency but did NOT
    // execute them.
    EXPECT_EQ(graph->nodeCount(), 2u);
    EXPECT_EQ(graph->edgeCount(), 1u);
    EXPECT_EQ(readBack(dst, 4), (std::vector<f32>{0, 0, 0, 0}));
}

TEST_F(GraphTest, CaptureViolations)
{
    const DeviceAddr src = buffer({1});
    Stream &stream = process_.defaultStream();
    ASSERT_TRUE(launchCopy(stream, src, src, 1).isOk());

    ASSERT_TRUE(process_.beginCapture(stream).isOk());
    // Synchronization is prohibited during capture (§2.3).
    EXPECT_EQ(stream.synchronize().code(),
              StatusCode::kCaptureViolation);
    EXPECT_EQ(process_.deviceSynchronize().code(),
              StatusCode::kCaptureViolation);
    // Driver allocation is prohibited during capture.
    EXPECT_EQ(process_.cudaMalloc(64, 64).status().code(),
              StatusCode::kCaptureViolation);
    // A second concurrent capture is prohibited (§2.2 limitation).
    Stream &other = process_.createStream();
    EXPECT_EQ(process_.beginCapture(other).code(),
              StatusCode::kCaptureViolation);
    ASSERT_TRUE(process_.endCapture(stream).isOk());
}

TEST_F(GraphTest, FirstLaunchModuleLoadDuringCaptureFails)
{
    // No warm-up: the kernel's module is not loaded yet, and loading
    // performs an implicit synchronization — capture must fail. This is
    // exactly why warm-up forwarding is required before capture.
    const DeviceAddr src = buffer({1});
    Stream &stream = process_.defaultStream();
    ASSERT_TRUE(process_.beginCapture(stream).isOk());
    Status st = launchCopy(stream, src, src, 1);
    EXPECT_EQ(st.code(), StatusCode::kCaptureViolation);
    ASSERT_TRUE(process_.endCapture(stream).isOk());
}

TEST_F(GraphTest, EventForkJoinBuildsDag)
{
    const DeviceAddr a = buffer({1, 1});
    const DeviceAddr b = buffer({0, 0});
    const DeviceAddr c = buffer({0, 0});
    Stream &main = process_.defaultStream();
    Stream &side = process_.createStream();
    ASSERT_TRUE(launchCopy(main, a, b, 2).isOk()); // warm module

    ASSERT_TRUE(process_.beginCapture(main).isOk());
    ASSERT_TRUE(launchCopy(main, a, b, 2).isOk()); // node 0
    Event fork;
    ASSERT_TRUE(main.recordEvent(fork).isOk());
    ASSERT_TRUE(side.waitEvent(fork).isOk()); // side joins the capture
    ASSERT_TRUE(launchCopy(side, a, c, 2).isOk());  // node 1 (dep: 0)
    ASSERT_TRUE(launchCopy(main, b, b, 2).isOk());  // node 2 (dep: 0)
    Event join;
    ASSERT_TRUE(side.recordEvent(join).isOk());
    ASSERT_TRUE(main.waitEvent(join).isOk());
    ASSERT_TRUE(launchCopy(main, c, b, 2).isOk()); // node 3 (deps: 1,2)
    auto graph = process_.endCapture(main);
    ASSERT_TRUE(graph.isOk());

    EXPECT_EQ(graph->nodeCount(), 4u);
    // Edges: 0->1 (fork), 0->2 (stream order), 1->3 (join), 2->3.
    EXPECT_EQ(graph->edgeCount(), 4u);
    auto order = graph->topoOrder();
    ASSERT_TRUE(order.isOk());
    EXPECT_EQ(order->front(), 0u);
    EXPECT_EQ(order->back(), 3u);
}

TEST_F(GraphTest, InstantiateRejectsUnknownKernelAddress)
{
    CudaGraph g;
    g.addKernelNode(0xdead, {}, {}, {});
    auto exec = process_.instantiate(g);
    EXPECT_FALSE(exec.isOk());
}

TEST_F(GraphTest, GraphReplayExecutesFunctionally)
{
    const DeviceAddr src = buffer({5, 6, 7});
    const DeviceAddr mid = buffer({0, 0, 0});
    const DeviceAddr dst = buffer({0, 0, 0});
    Stream &stream = process_.defaultStream();
    ASSERT_TRUE(launchCopy(stream, src, mid, 3).isOk()); // warm
    ASSERT_TRUE(process_.memory().memset(mid, 0, 12).isOk());

    ASSERT_TRUE(process_.beginCapture(stream).isOk());
    ASSERT_TRUE(launchCopy(stream, src, mid, 3).isOk());
    ASSERT_TRUE(launchCopy(stream, mid, dst, 3).isOk());
    auto graph = process_.endCapture(stream);
    ASSERT_TRUE(graph.isOk());

    auto exec = process_.instantiate(*graph);
    ASSERT_TRUE(exec.isOk());
    ASSERT_TRUE(process_.launchGraph(*exec, stream).isOk());
    ASSERT_TRUE(stream.synchronize().isOk());
    EXPECT_EQ(readBack(dst, 3), (std::vector<f32>{5, 6, 7}));
}

TEST_F(GraphTest, GraphLaunchCheaperThanEagerLaunches)
{
    // The core benefit (§2.2): one CPU launch for the whole graph.
    const DeviceAddr src = buffer({1});
    Stream &stream = process_.defaultStream();
    ASSERT_TRUE(launchCopy(stream, src, src, 1).isOk());

    ASSERT_TRUE(process_.beginCapture(stream).isOk());
    const int kNodes = 50;
    for (int i = 0; i < kNodes; ++i) {
        ASSERT_TRUE(launchCopy(stream, src, src, 1).isOk());
    }
    auto graph = process_.endCapture(stream);
    auto exec = process_.instantiate(*graph);
    ASSERT_TRUE(exec.isOk());

    const SimTimeNs t0 = clock_.now();
    for (int i = 0; i < kNodes; ++i) {
        ASSERT_TRUE(launchCopy(stream, src, src, 1).isOk());
    }
    const SimTimeNs eager_cpu = clock_.now() - t0;

    const SimTimeNs t1 = clock_.now();
    ASSERT_TRUE(process_.launchGraph(*exec, stream).isOk());
    const SimTimeNs graph_cpu = clock_.now() - t1;
    EXPECT_LT(graph_cpu * 5, eager_cpu);
}

TEST_F(GraphTest, EndCaptureOnWrongStreamRejected)
{
    Stream &main = process_.defaultStream();
    Stream &other = process_.createStream();
    ASSERT_TRUE(process_.beginCapture(main).isOk());
    EXPECT_FALSE(process_.endCapture(other).isOk());
    ASSERT_TRUE(process_.endCapture(main).isOk());
}

} // namespace
} // namespace medusa::simcuda
