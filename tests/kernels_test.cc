/**
 * @file
 * Functional correctness of the simulated kernels against small
 * hand-computed or brute-force references. These are the kernels whose
 * outputs Medusa's validation compares, so their math must be solid.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "simcuda/gpu_process.h"
#include "simcuda/kernels/builtin.h"

namespace medusa::simcuda {
namespace {

class KernelsTest : public ::testing::Test
{
  protected:
    KernelsTest() : process_(GpuProcessOptions{}, &clock_, &cost_) {}

    DeviceAddr
    floats(const std::vector<f32> &values)
    {
        auto addr =
            process_.memory().malloc(std::max<u64>(values.size(), 1) * 4,
                                     std::max<u64>(values.size(), 1) * 4);
        MEDUSA_CHECK(addr.isOk(), "alloc");
        if (!values.empty()) {
            MEDUSA_CHECK(process_.memory()
                             .write(*addr, values.data(),
                                    values.size() * 4)
                             .isOk(),
                         "write");
        }
        return *addr;
    }

    DeviceAddr
    ints(const std::vector<i32> &values)
    {
        auto addr =
            process_.memory().malloc(std::max<u64>(values.size(), 1) * 4,
                                     std::max<u64>(values.size(), 1) * 4);
        MEDUSA_CHECK(addr.isOk(), "alloc");
        if (!values.empty()) {
            MEDUSA_CHECK(process_.memory()
                             .write(*addr, values.data(),
                                    values.size() * 4)
                             .isOk(),
                         "write");
        }
        return *addr;
    }

    std::vector<f32>
    readF(DeviceAddr addr, std::size_t n)
    {
        std::vector<f32> out(n);
        MEDUSA_CHECK(
            process_.memory().read(addr, out.data(), n * 4).isOk(),
            "read");
        return out;
    }

    std::vector<i32>
    readI(DeviceAddr addr, std::size_t n)
    {
        std::vector<i32> out(n);
        MEDUSA_CHECK(
            process_.memory().read(addr, out.data(), n * 4).isOk(),
            "read");
        return out;
    }

    Status
    launch(KernelId id, RawParams params)
    {
        return process_.defaultStream().launch(id, std::move(params),
                                               TimingInfo{});
    }

    SimClock clock_;
    CostModel cost_;
    GpuProcess process_;
    const BuiltinKernels &k_ = BuiltinKernels::get();
};

TEST_F(KernelsTest, EmbeddingLookupGathersRows)
{
    // vocab=3, hidden=2
    const DeviceAddr w = floats({10, 11, 20, 21, 30, 31});
    const DeviceAddr ids = ints({2, 0});
    const DeviceAddr out = floats({0, 0, 0, 0});
    ParamsBuilder pb;
    pb.ptr(w).ptr(ids).ptr(out).i32(2).i32(2).i32(3);
    ASSERT_TRUE(launch(k_.embedding_lookup, pb.take()).isOk());
    EXPECT_EQ(readF(out, 4), (std::vector<f32>{30, 31, 10, 11}));
}

TEST_F(KernelsTest, RmsNormMatchesReference)
{
    const std::vector<f32> x = {1, 2, 3, 4};
    const DeviceAddr in = floats(x);
    const DeviceAddr w = floats({1, 1, 2, 0.5f});
    const DeviceAddr out = floats({0, 0, 0, 0});
    ParamsBuilder pb;
    pb.ptr(in).ptr(w).ptr(out).i32(1).i32(4).f32(1e-5f);
    ASSERT_TRUE(launch(k_.rmsnorm, pb.take()).isOk());
    f32 ss = 0;
    for (f32 v : x) {
        ss += v * v;
    }
    const f32 inv = 1.0f / std::sqrt(ss / 4 + 1e-5f);
    const auto got = readF(out, 4);
    EXPECT_FLOAT_EQ(got[0], 1 * inv * 1);
    EXPECT_FLOAT_EQ(got[2], 3 * inv * 2);
    EXPECT_FLOAT_EQ(got[3], 4 * inv * 0.5f);
}

TEST_F(KernelsTest, LayerNormMatchesReference)
{
    const DeviceAddr in = floats({1, 3});
    const DeviceAddr w = floats({2, 2});
    const DeviceAddr b = floats({0.5f, -0.5f});
    const DeviceAddr out = floats({0, 0});
    ParamsBuilder pb;
    pb.ptr(in).ptr(w).ptr(b).ptr(out).i32(1).i32(2).f32(0.0f);
    ASSERT_TRUE(launch(k_.layernorm, pb.take()).isOk());
    // mean 2, var 1 -> normalized {-1, 1}
    const auto got = readF(out, 2);
    EXPECT_NEAR(got[0], -2 + 0.5f, 1e-5);
    EXPECT_NEAR(got[1], 2 - 0.5f, 1e-5);
}

TEST_F(KernelsTest, GemmMatchesManual)
{
    // C[1x2] = A[1x3] * W[2x3]^T
    const DeviceAddr a = floats({1, 2, 3});
    const DeviceAddr w = floats({1, 0, 1, /*row1*/ 2, 1, 0});
    const DeviceAddr c = floats({0, 0});
    ParamsBuilder pb;
    pb.ptr(a).ptr(w).ptr(c).i32(1).i32(2).i32(3);
    ASSERT_TRUE(launch(k_.gemm_128x128, pb.take()).isOk());
    EXPECT_EQ(readF(c, 2), (std::vector<f32>{4, 4}));
}

TEST_F(KernelsTest, GemmVariantsAgree)
{
    const DeviceAddr a = floats({0.5f, -1, 2, 0.25f});
    const DeviceAddr w = floats({1, 2, 3, 4, 5, 6, 7, 8});
    const DeviceAddr c1 = floats({0, 0, 0, 0});
    const DeviceAddr c2 = floats({0, 0, 0, 0});
    ParamsBuilder p1;
    p1.ptr(a).ptr(w).ptr(c1).i32(2).i32(2).i32(2);
    ASSERT_TRUE(launch(k_.gemm_128x128, p1.take()).isOk());
    ParamsBuilder p2;
    p2.ptr(a).ptr(w).ptr(c2).i32(2).i32(2).i32(2);
    ASSERT_TRUE(launch(k_.gemm_64x64, p2.take()).isOk());
    EXPECT_EQ(readF(c1, 4), readF(c2, 4));
}

TEST_F(KernelsTest, SplitKGemmRequiresMagicSemaphores)
{
    const u32 magic = kGemmWorkspaceMagic;
    const DeviceAddr sem_good = floats({0});
    ASSERT_TRUE(process_.memory()
                    .write(sem_good, &magic, sizeof(magic))
                    .isOk());
    const DeviceAddr sem_bad = floats({0}); // zeroed: corrupt
    const DeviceAddr a = floats({1, 1});
    const DeviceAddr w = floats({1, 1});
    const DeviceAddr c = floats({0});

    ParamsBuilder ok;
    ok.ptr(sem_good).ptr(sem_good).ptr(a).ptr(w).ptr(c).i32(1).i32(1)
        .i32(2);
    EXPECT_TRUE(launch(k_.gemm_splitk, ok.take()).isOk());
    EXPECT_EQ(readF(c, 1), (std::vector<f32>{2}));

    ParamsBuilder bad;
    bad.ptr(sem_good).ptr(sem_bad).ptr(a).ptr(w).ptr(c).i32(1).i32(1)
        .i32(2);
    // A permanent buffer whose contents were not restored fails loudly
    // (this is what makes §4.3 content restoration functionally
    // necessary).
    EXPECT_FALSE(launch(k_.gemm_splitk, bad.take()).isOk());
}

TEST_F(KernelsTest, BiasAddAndResidualAdd)
{
    const DeviceAddr x = floats({1, 2, 3, 4});
    const DeviceAddr b = floats({10, 20});
    ParamsBuilder pb;
    pb.ptr(x).ptr(b).i32(2).i32(2);
    ASSERT_TRUE(launch(k_.bias_add, pb.take()).isOk());
    EXPECT_EQ(readF(x, 4), (std::vector<f32>{11, 22, 13, 24}));

    const DeviceAddr r = floats({1, 1, 1, 1});
    ParamsBuilder pr;
    pr.ptr(x).ptr(r).i32(4);
    ASSERT_TRUE(launch(k_.residual_add, pr.take()).isOk());
    EXPECT_EQ(readF(x, 4), (std::vector<f32>{12, 23, 14, 25}));
}

TEST_F(KernelsTest, SiluMulMatchesReference)
{
    // n=1, inter=2: input packs [gate0 gate1 | up0 up1]
    const DeviceAddr gu = floats({1, -1, 2, 3});
    const DeviceAddr out = floats({0, 0});
    ParamsBuilder pb;
    pb.ptr(gu).ptr(out).i32(1).i32(2);
    ASSERT_TRUE(launch(k_.silu_mul, pb.take()).isOk());
    auto silu = [](f32 v) { return v / (1 + std::exp(-v)); };
    const auto got = readF(out, 2);
    EXPECT_NEAR(got[0], silu(1) * 2, 1e-6);
    EXPECT_NEAR(got[1], silu(-1) * 3, 1e-6);
}

TEST_F(KernelsTest, GeluIsMonotoneAndMatchesTanhApprox)
{
    const DeviceAddr in = floats({-2, 0, 2});
    const DeviceAddr out = floats({0, 0, 0});
    ParamsBuilder pb;
    pb.ptr(in).ptr(out).i32(3);
    ASSERT_TRUE(launch(k_.gelu, pb.take()).isOk());
    const auto got = readF(out, 3);
    EXPECT_NEAR(got[1], 0.0f, 1e-6);
    EXPECT_LT(got[0], got[1]);
    EXPECT_LT(got[1], got[2]);
    EXPECT_NEAR(got[2], 1.9546f, 1e-3);
}

TEST_F(KernelsTest, SampleArgmaxPicksMaxPerRow)
{
    const DeviceAddr logits = floats({0.1f, 0.9f, 0.5f, /*row1*/ 7, 1, 2});
    const DeviceAddr ids = ints({0, 0});
    ParamsBuilder pb;
    pb.ptr(logits).ptr(ids).i32(2).i32(3);
    ASSERT_TRUE(launch(k_.sample_argmax, pb.take()).isOk());
    EXPECT_EQ(readI(ids, 2), (std::vector<i32>{1, 0}));
}

TEST_F(KernelsTest, RopePreservesPairNorms)
{
    // One token, one head, head_dim 4, contiguous stride.
    const DeviceAddr q = floats({1, 2, 3, 4});
    const DeviceAddr k = floats({0.5f, 0, 0, 0.5f});
    const DeviceAddr pos = ints({3});
    ParamsBuilder pb;
    pb.ptr(q).ptr(k).ptr(pos).i32(1).i32(1).i32(1).i32(4).i32(4).i32(4)
        .f32(10000.0f);
    ASSERT_TRUE(launch(k_.rope, pb.take()).isOk());
    const auto got = readF(q, 4);
    // Rotation preserves the norm of each (d, d+half) pair.
    EXPECT_NEAR(got[0] * got[0] + got[2] * got[2], 1 + 9, 1e-4);
    EXPECT_NEAR(got[1] * got[1] + got[3] * got[3], 4 + 16, 1e-4);
    // Position 0 would be identity; position 3 is not.
    EXPECT_GT(std::abs(got[0] - 1.0f), 1e-3);
}

TEST_F(KernelsTest, RopeAtPositionZeroIsIdentity)
{
    const DeviceAddr q = floats({1, 2, 3, 4});
    const DeviceAddr k = floats({5, 6, 7, 8});
    const DeviceAddr pos = ints({0});
    ParamsBuilder pb;
    pb.ptr(q).ptr(k).ptr(pos).i32(1).i32(1).i32(1).i32(4).i32(4).i32(4)
        .f32(10000.0f);
    ASSERT_TRUE(launch(k_.rope, pb.take()).isOk());
    EXPECT_EQ(readF(q, 4), (std::vector<f32>{1, 2, 3, 4}));
    EXPECT_EQ(readF(k, 4), (std::vector<f32>{5, 6, 7, 8}));
}

TEST_F(KernelsTest, KvWriteScattersToSlots)
{
    // 2 tokens, kvh=1, hd=2, fused stride 6 (e.g. q=2, k=2, v=2).
    const DeviceAddr fused = floats({/*t0*/ 0, 0, 10, 11, 20, 21,
                                     /*t1*/ 0, 0, 12, 13, 22, 23});
    const DeviceAddr kc = floats(std::vector<f32>(16, 0));
    const DeviceAddr vc = floats(std::vector<f32>(16, 0));
    const DeviceAddr slots = ints({3, 1});
    ParamsBuilder pb;
    pb.ptr(fused + 2 * 4) // k section
        .ptr(fused + 4 * 4) // v section
        .ptr(kc)
        .ptr(vc)
        .ptr(slots)
        .i32(2)
        .i32(1)
        .i32(2)
        .i32(6);
    ASSERT_TRUE(launch(k_.kv_write, pb.take()).isOk());
    const auto kcache = readF(kc, 16);
    EXPECT_FLOAT_EQ(kcache[3 * 2 + 0], 10);
    EXPECT_FLOAT_EQ(kcache[3 * 2 + 1], 11);
    EXPECT_FLOAT_EQ(kcache[1 * 2 + 0], 12);
    const auto vcache = readF(vc, 16);
    EXPECT_FLOAT_EQ(vcache[3 * 2 + 0], 20);
    EXPECT_FLOAT_EQ(vcache[1 * 2 + 1], 23);
}

TEST_F(KernelsTest, PagedAttentionDecodeMatchesBruteForce)
{
    // bs=1, qh=1, kvh=1, hd=2, block_size=2, seq len 3.
    const i32 hd = 2;
    const std::vector<f32> keys = {1, 0, 0, 1, 1, 1};
    const std::vector<f32> vals = {10, 0, 0, 10, 5, 5};
    // Cache layout [slot, kvh, hd]; seq occupies blocks 2 and 5:
    // slots 4,5 then 10.
    std::vector<f32> kcache(32, 0), vcache(32, 0);
    for (int t = 0; t < 3; ++t) {
        const int slot = t < 2 ? 4 + t : 10;
        for (int d = 0; d < hd; ++d) {
            kcache[slot * hd + d] = keys[t * hd + d];
            vcache[slot * hd + d] = vals[t * hd + d];
        }
    }
    const DeviceAddr kc = floats(kcache);
    const DeviceAddr vc = floats(vcache);
    const DeviceAddr q = floats({2, 1});
    const DeviceAddr tables = ints({2, 5, -1, -1});
    const DeviceAddr lens = ints({3});
    const DeviceAddr out = floats({0, 0});
    const f32 scale = 0.7f;
    ParamsBuilder pb;
    pb.ptr(q).ptr(kc).ptr(vc).ptr(tables).ptr(lens).ptr(out).i32(1).i32(
          1).i32(1).i32(hd).i32(2).i32(4).i32(hd)
        .i64(static_cast<i64>(0x7fabull << 32))
        .f32(scale);
    ASSERT_TRUE(launch(k_.paged_attention_decode, pb.take()).isOk());

    // Brute-force reference.
    std::vector<f32> scores(3);
    f32 max_s = -1e30f;
    for (int t = 0; t < 3; ++t) {
        f32 dot = 0;
        for (int d = 0; d < hd; ++d) {
            dot += (d == 0 ? 2.0f : 1.0f) * keys[t * hd + d];
        }
        scores[t] = dot * scale;
        max_s = std::max(max_s, scores[t]);
    }
    f32 denom = 0;
    for (auto &s : scores) {
        s = std::exp(s - max_s);
        denom += s;
    }
    std::vector<f32> expect(hd, 0);
    for (int t = 0; t < 3; ++t) {
        for (int d = 0; d < hd; ++d) {
            expect[d] += scores[t] / denom * vals[t * hd + d];
        }
    }
    const auto got = readF(out, hd);
    EXPECT_NEAR(got[0], expect[0], 1e-4);
    EXPECT_NEAR(got[1], expect[1], 1e-4);
}

TEST_F(KernelsTest, PagedAttentionZeroLengthEmitsZeros)
{
    const DeviceAddr kc = floats(std::vector<f32>(8, 1));
    const DeviceAddr vc = floats(std::vector<f32>(8, 1));
    const DeviceAddr q = floats({9, 9});
    const DeviceAddr tables = ints({0});
    const DeviceAddr lens = ints({0});
    const DeviceAddr out = floats({7, 7});
    ParamsBuilder pb;
    pb.ptr(q).ptr(kc).ptr(vc).ptr(tables).ptr(lens).ptr(out).i32(1).i32(
          1).i32(1).i32(2).i32(2).i32(1).i32(2)
        .i64(static_cast<i64>(0x7fabull << 32))
        .f32(1.0f);
    ASSERT_TRUE(launch(k_.paged_attention_decode, pb.take()).isOk());
    EXPECT_EQ(readF(out, 2), (std::vector<f32>{0, 0}));
}

TEST_F(KernelsTest, PagedAttentionRejectsCorruptStreamTag)
{
    const DeviceAddr kc = floats(std::vector<f32>(8, 1));
    const DeviceAddr q = floats({1, 1});
    const DeviceAddr tables = ints({0});
    const DeviceAddr lens = ints({1});
    const DeviceAddr out = floats({0, 0});
    ParamsBuilder pb;
    pb.ptr(q).ptr(kc).ptr(kc).ptr(tables).ptr(lens).ptr(out).i32(1).i32(
          1).i32(1).i32(2).i32(2).i32(1).i32(2)
        .i64(0x1234) // wrong prefix: a misrestored "pointer"
        .f32(1.0f);
    EXPECT_FALSE(launch(k_.paged_attention_decode, pb.take()).isOk());
}

TEST_F(KernelsTest, AttentionPrefillIsCausal)
{
    // 1 seq of 2 tokens, qh=kvh=1, hd=1, fused stride 3 [q|k|v].
    const DeviceAddr fused = floats({/*t0*/ 1, 1, 10, /*t1*/ 1, 5, 20});
    const DeviceAddr starts = ints({0, 2});
    const DeviceAddr out = floats({0, 0});
    ParamsBuilder pb;
    pb.ptr(fused)
        .ptr(fused + 4)
        .ptr(fused + 8)
        .ptr(starts)
        .ptr(out)
        .i32(1)
        .i32(1)
        .i32(1)
        .i32(1)
        .i32(3)
        .f32(1.0f);
    ASSERT_TRUE(launch(k_.attention_prefill, pb.take()).isOk());
    const auto got = readF(out, 2);
    // Token 0 attends only to itself -> exactly v0 = 10.
    EXPECT_FLOAT_EQ(got[0], 10);
    // Token 1 attends to both, with key 5 >> 1 it leans to v1 = 20.
    EXPECT_GT(got[1], 15);
    EXPECT_LT(got[1], 20);
}

TEST_F(KernelsTest, WrongParamCountRejected)
{
    ParamsBuilder pb;
    pb.i32(1);
    EXPECT_FALSE(launch(k_.rmsnorm, pb.take()).isOk());
}

TEST_F(KernelsTest, WrongParamSizeRejected)
{
    RawParams params;
    params.push_back(std::vector<u8>(3, 0)); // bogus 3-byte param
    for (int i = 0; i < 5; ++i) {
        params.push_back(std::vector<u8>(4, 0));
    }
    EXPECT_FALSE(launch(k_.rmsnorm, std::move(params)).isOk());
}

} // namespace
} // namespace medusa::simcuda
