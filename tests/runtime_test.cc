/**
 * @file
 * Tests of the ModelRuntime engine: loading-phase stage ordering, the
 * §6 free-memory invariance, graph capture across all 35 batch sizes,
 * eager-vs-graph output equivalence, generation determinism across
 * process launches, and latency measurement helpers.
 */

#include <gtest/gtest.h>

#include "llm/runtime.h"

namespace medusa::llm {
namespace {

ModelConfig
tinyModel(u32 layers = 2)
{
    ModelConfig m = findModel("Qwen1.5-0.5B").value();
    m.num_layers = layers;
    return m;
}

std::unique_ptr<ModelRuntime>
freshRuntime(const ModelConfig &m, u64 seed = 1)
{
    ModelRuntime::Options opts;
    opts.model = m;
    opts.aslr_seed = seed;
    return std::make_unique<ModelRuntime>(opts);
}

std::unique_ptr<ModelRuntime>
loadedRuntime(const ModelConfig &m, u64 seed = 1, bool graphs = false)
{
    auto rt = freshRuntime(m, seed);
    MEDUSA_CHECK(rt->initStructure().isOk(), "struct");
    MEDUSA_CHECK(rt->loadWeights().isOk(), "weights");
    MEDUSA_CHECK(rt->loadTokenizer().isOk(), "tokenizer");
    auto free_bytes = rt->profileFreeMemory();
    MEDUSA_CHECK(free_bytes.isOk(), "profile");
    MEDUSA_CHECK(rt->initKvCache(*free_bytes).isOk(), "kv");
    if (graphs) {
        MEDUSA_CHECK(rt->captureDecodeGraphs().isOk(), "capture");
    }
    return rt;
}

TEST(RuntimeTest, StageOrderingEnforced)
{
    auto rt = freshRuntime(tinyModel());
    EXPECT_FALSE(rt->loadWeights().isOk());       // needs structure
    EXPECT_FALSE(rt->profileFreeMemory().isOk()); // needs structure
    EXPECT_FALSE(rt->warmupDecode(1).isOk());     // needs KV cache
    ASSERT_TRUE(rt->initStructure().isOk());
    EXPECT_FALSE(rt->initStructure().isOk()); // no double init
}

TEST(RuntimeTest, ProfiledFreeMemoryIsInvariantAcrossLaunches)
{
    // §6: "given the same model and GPU type, the profiling forwarding
    // would result in the same available free GPU memory" — the
    // invariance that makes KV-init materializable.
    const ModelConfig m = tinyModel();
    u64 values[2];
    for (u64 seed : {0u, 1u}) {
        auto rt = freshRuntime(m, seed * 1234 + 5);
        ASSERT_TRUE(rt->initStructure().isOk());
        ASSERT_TRUE(rt->loadWeights().isOk());
        auto fm = rt->profileFreeMemory();
        ASSERT_TRUE(fm.isOk());
        values[seed] = *fm;
    }
    EXPECT_EQ(values[0], values[1]);
}

TEST(RuntimeTest, CapturesAll35BatchSizes)
{
    auto rt = loadedRuntime(tinyModel(), 1, /*graphs=*/true);
    EXPECT_EQ(rt->graphCount(), 35u);
    for (u32 bs : captureBatchSizes()) {
        EXPECT_TRUE(rt->hasGraph(bs)) << bs;
    }
    EXPECT_FALSE(rt->hasGraph(3));
    u64 expected_nodes = 0;
    for (u32 bs : captureBatchSizes()) {
        expected_nodes += ForwardPass::decodeNodeCount(rt->model(), bs);
    }
    EXPECT_EQ(rt->totalGraphNodes(), expected_nodes);
}

TEST(RuntimeTest, GraphReplayBitExactWithEager)
{
    auto rt = loadedRuntime(tinyModel(), 7, /*graphs=*/true);
    for (u32 bs : {1u, 8u, 64u}) {
        ASSERT_TRUE(rt->stageValidationState(bs).isOk());
        auto eager = rt->eagerDecodeLogits(bs);
        ASSERT_TRUE(eager.isOk());
        ASSERT_TRUE(rt->stageValidationState(bs).isOk());
        auto graph = rt->graphDecodeLogits(bs);
        ASSERT_TRUE(graph.isOk());
        EXPECT_EQ(*eager, *graph) << "bs=" << bs;
    }
}

TEST(RuntimeTest, GenerateProducesRequestedTokens)
{
    auto rt = loadedRuntime(tinyModel(), 1, /*graphs=*/true);
    auto out = rt->generate({3, 1, 4, 1, 5}, 10);
    ASSERT_TRUE(out.isOk());
    EXPECT_EQ(out->size(), 10u);
    for (i32 t : *out) {
        EXPECT_GE(t, 0);
        EXPECT_LT(t, static_cast<i32>(rt->model().func.vocab));
    }
}

TEST(RuntimeTest, GenerationIdenticalAcrossProcessLaunches)
{
    // Two cold starts with different ASLR layouts must generate the
    // same text: the model is the same "files on disk".
    const ModelConfig m = tinyModel();
    auto rt1 = loadedRuntime(m, 11, /*graphs=*/true);
    auto rt2 = loadedRuntime(m, 22, /*graphs=*/true);
    const std::vector<i32> prompt = {9, 8, 7};
    auto o1 = rt1->generate(prompt, 8);
    auto o2 = rt2->generate(prompt, 8);
    ASSERT_TRUE(o1.isOk() && o2.isOk());
    EXPECT_EQ(*o1, *o2);
}

TEST(RuntimeTest, GenerateGraphVsEagerSameTokens)
{
    const ModelConfig m = tinyModel();
    auto with_graphs = loadedRuntime(m, 1, /*graphs=*/true);
    auto without = loadedRuntime(m, 1, /*graphs=*/false);
    const std::vector<i32> prompt = {42, 17};
    auto a = with_graphs->generate(prompt, 6);
    auto b = without->generate(prompt, 6);
    ASSERT_TRUE(a.isOk() && b.isOk());
    EXPECT_EQ(*a, *b);
}

TEST(RuntimeTest, GenerateValidatesInput)
{
    auto rt = loadedRuntime(tinyModel());
    EXPECT_FALSE(rt->generate({}, 4).isOk());
    const std::vector<i32> huge(10000, 1);
    EXPECT_FALSE(rt->generate(huge, 4).isOk());
}

TEST(RuntimeTest, GenerateReleasesKvBlocks)
{
    auto rt = loadedRuntime(tinyModel());
    const u32 free_before = rt->kv().blocks.freeBlocks();
    ASSERT_TRUE(rt->generate({1, 2, 3}, 5).isOk());
    EXPECT_EQ(rt->kv().blocks.freeBlocks(), free_before);
}

TEST(RuntimeTest, TokenizerLoadedAndFunctional)
{
    auto rt = loadedRuntime(tinyModel());
    const auto ids = rt->tokenizer().encode("serverless inference");
    EXPECT_FALSE(ids.empty());
    EXPECT_EQ(rt->tokenizer().decode(ids), "serverless inference");
}

TEST(RuntimeTest, MeasureDecodeStepGraphFasterThanEager)
{
    auto rt = loadedRuntime(tinyModel(8), 1, /*graphs=*/true);
    auto graph = rt->measureDecodeStepSec(1, true);
    auto eager = rt->measureDecodeStepSec(1, false);
    ASSERT_TRUE(graph.isOk() && eager.isOk());
    EXPECT_GT(*graph, 0.0);
    EXPECT_LT(*graph, *eager);
}

TEST(RuntimeTest, MeasurePrefillMonotonicInTokens)
{
    auto rt = loadedRuntime(tinyModel(4));
    auto small = rt->measurePrefillSec(64);
    auto large = rt->measurePrefillSec(2048);
    ASSERT_TRUE(small.isOk() && large.isOk());
    EXPECT_LT(*small, *large);
}

TEST(RuntimeTest, CaptureChargesLessThanWarmupPlusCapture)
{
    // Sanity on stage accounting: capturing all graphs advances the
    // clock, and the per-size cost is dominated by warm-up + record.
    auto rt = loadedRuntime(tinyModel());
    const f64 before = rt->clock().nowSec();
    ASSERT_TRUE(rt->captureDecodeGraphs().isOk());
    EXPECT_GT(rt->clock().nowSec(), before);
}

} // namespace
} // namespace medusa::llm
