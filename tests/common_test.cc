/**
 * @file
 * Unit tests for the common library: Status/StatusOr, RNG
 * distributions, the virtual clock, binary serialization and the
 * statistics accumulators.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/clock.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "common/stats.h"
#include "common/status.h"

namespace medusa {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, OkByDefault)
{
    Status st;
    EXPECT_TRUE(st.isOk());
    EXPECT_EQ(st.code(), StatusCode::kOk);
    EXPECT_EQ(st.toString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage)
{
    Status st = notFound("missing thing");
    EXPECT_FALSE(st.isOk());
    EXPECT_EQ(st.code(), StatusCode::kNotFound);
    EXPECT_EQ(st.message(), "missing thing");
    EXPECT_EQ(st.toString(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes)
{
    EXPECT_EQ(invalidArgument("").code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(alreadyExists("").code(), StatusCode::kAlreadyExists);
    EXPECT_EQ(outOfMemory("").code(), StatusCode::kOutOfMemory);
    EXPECT_EQ(failedPrecondition("").code(),
              StatusCode::kFailedPrecondition);
    EXPECT_EQ(captureViolation("").code(), StatusCode::kCaptureViolation);
    EXPECT_EQ(validationFailure("").code(),
              StatusCode::kValidationFailure);
    EXPECT_EQ(internalError("").code(), StatusCode::kInternal);
    EXPECT_EQ(unimplemented("").code(), StatusCode::kUnimplemented);
}

TEST(StatusOrTest, HoldsValue)
{
    StatusOr<int> v(42);
    ASSERT_TRUE(v.isOk());
    EXPECT_EQ(*v, 42);
    EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError)
{
    StatusOr<int> v(invalidArgument("nope"));
    EXPECT_FALSE(v.isOk());
    EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
}

StatusOr<int>
halve(int x)
{
    if (x % 2 != 0) {
        return invalidArgument("odd");
    }
    return x / 2;
}

Status
useHalve(int x, int *out)
{
    MEDUSA_ASSIGN_OR_RETURN(*out, halve(x));
    return Status::ok();
}

TEST(StatusOrTest, AssignOrReturnPropagates)
{
    int out = 0;
    EXPECT_TRUE(useHalve(8, &out).isOk());
    EXPECT_EQ(out, 4);
    EXPECT_EQ(useHalve(7, &out).code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.nextU64(), b.nextU64());
    }
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.nextU64() == b.nextU64()) {
            ++same;
        }
    }
    EXPECT_EQ(same, 0);
}

TEST(RngTest, BoundedStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.nextBounded(17), 17u);
    }
}

TEST(RngTest, IntInRangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const i64 v = rng.nextIntIn(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ExponentialMeanApproximatesInverse)
{
    Rng rng(11);
    f64 sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        sum += rng.nextExponential(2.0);
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, LogNormalMeanMatchesFormula)
{
    Rng rng(13);
    const f64 mu = std::log(161.0) - 0.9 * 0.9 / 2.0;
    f64 sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        sum += rng.nextLogNormal(mu, 0.9);
    }
    EXPECT_NEAR(sum / n, 161.0, 8.0);
}

TEST(RngTest, ForkProducesIndependentStream)
{
    Rng a(5);
    Rng b = a.fork();
    EXPECT_NE(a.nextU64(), b.nextU64());
}

TEST(BatchRngTest, ProducesExactlyTheRngStream)
{
    // The documented contract: BatchRng(seed) is a block-buffered view
    // of Rng(seed)'s u64 stream, bit-for-bit — crossing block refills
    // (kBlock = 1024) must not perturb it.
    Rng plain(20250808);
    BatchRng batched(20250808);
    for (int i = 0; i < 5000; ++i) {
        ASSERT_EQ(batched.nextU64(), plain.nextU64()) << "draw " << i;
    }
}

TEST(BatchRngTest, DerivedDrawsMatchRng)
{
    Rng plain(42);
    BatchRng batched(42);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(batched.nextDouble(), plain.nextDouble());
    }
    Rng plain2(43);
    BatchRng batched2(43);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(batched2.nextExponential(2.0),
                  plain2.nextExponential(2.0));
        EXPECT_EQ(batched2.nextLogNormal(1.0, 0.5),
                  plain2.nextLogNormal(1.0, 0.5));
    }
}

TEST(BatchRngTest, ParetoIsHeavyTailedAndBounded)
{
    BatchRng rng(7);
    f64 max_seen = 0;
    for (int i = 0; i < 20000; ++i) {
        const f64 v = rng.nextPareto(100.0, 1.5);
        EXPECT_GE(v, 100.0); // scale is the distribution's floor
        max_seen = std::max(max_seen, v);
    }
    EXPECT_GT(max_seen, 2000.0); // the tail actually reaches far out
}

// ----------------------------------------------------------------- Clock

TEST(ClockTest, StartsAtZeroAndAdvances)
{
    SimClock clock;
    EXPECT_EQ(clock.now(), 0);
    clock.advance(units::msToNs(1.5));
    EXPECT_EQ(clock.now(), 1'500'000);
    EXPECT_DOUBLE_EQ(clock.nowSec(), 0.0015);
}

TEST(ClockTest, AdvanceToAbsolute)
{
    SimClock clock;
    clock.advanceTo(units::secToNs(2));
    EXPECT_DOUBLE_EQ(clock.nowSec(), 2.0);
    clock.reset();
    EXPECT_EQ(clock.now(), 0);
}

TEST(ClockTest, ScopedTimerAccumulates)
{
    SimClock clock;
    SimTimeNs total = 0;
    {
        ScopedTimer timer(clock, total);
        clock.advance(100);
    }
    EXPECT_EQ(total, 100);
    {
        ScopedTimer timer(clock, total);
        clock.advance(50);
        timer.stop();
        clock.advance(999); // after stop: not counted
    }
    EXPECT_EQ(total, 150);
}

// ------------------------------------------------------------- Serialize

TEST(SerializeTest, PrimitivesRoundTrip)
{
    BinaryWriter w;
    w.writeU8(7);
    w.writeU32(0xdeadbeef);
    w.writeU64(0x0123456789abcdefull);
    w.writeI64(-42);
    w.writeF64(3.25);
    w.writeF32(-1.5f);
    w.writeBool(true);
    w.writeString("medusa");
    w.writeBytes({1, 2, 3});

    BinaryReader r(w.takeBytes());
    EXPECT_EQ(*r.readU8(), 7);
    EXPECT_EQ(*r.readU32(), 0xdeadbeefu);
    EXPECT_EQ(*r.readU64(), 0x0123456789abcdefull);
    EXPECT_EQ(*r.readI64(), -42);
    EXPECT_DOUBLE_EQ(*r.readF64(), 3.25);
    EXPECT_FLOAT_EQ(*r.readF32(), -1.5f);
    EXPECT_TRUE(*r.readBool());
    EXPECT_EQ(*r.readString(), "medusa");
    EXPECT_EQ(*r.readBytes(), (std::vector<u8>{1, 2, 3}));
    EXPECT_TRUE(r.atEnd());
}

TEST(SerializeTest, VectorRoundTrip)
{
    BinaryWriter w;
    std::vector<u32> values = {1, 2, 3, 5, 8};
    w.writeVector(values,
                  [](BinaryWriter &w2, u32 v) { w2.writeU32(v); });
    BinaryReader r(w.takeBytes());
    auto out = r.readVector<u32>(
        [](BinaryReader &r2) { return r2.readU32(); });
    ASSERT_TRUE(out.isOk());
    EXPECT_EQ(*out, values);
}

TEST(SerializeTest, TruncationIsAnError)
{
    BinaryWriter w;
    w.writeU64(1);
    auto bytes = w.takeBytes();
    bytes.pop_back();
    BinaryReader r(std::move(bytes));
    EXPECT_FALSE(r.readU64().isOk());
}

TEST(SerializeTest, TruncatedStringIsAnError)
{
    BinaryWriter w;
    w.writeU64(100); // claims 100 bytes follow
    BinaryReader r(w.takeBytes());
    EXPECT_FALSE(r.readString().isOk());
}

TEST(SerializeTest, FileRoundTrip)
{
    const std::string path =
        ::testing::TempDir() + "/medusa_serialize_test.bin";
    std::vector<u8> bytes = {9, 8, 7, 6};
    ASSERT_TRUE(writeFile(path, bytes).isOk());
    auto read = readFile(path);
    ASSERT_TRUE(read.isOk());
    EXPECT_EQ(*read, bytes);
    EXPECT_FALSE(readFile(path + ".does-not-exist").isOk());
}

// ----------------------------------------------------------------- Stats

TEST(StatsTest, SummaryTracksMoments)
{
    Summary s;
    for (f64 v : {3.0, 1.0, 2.0}) {
        s.add(v);
    }
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(StatsTest, SummaryEmptyIsNaN)
{
    // 0 would masquerade as a real observation; an empty summary's
    // extrema must be unmistakably "no data".
    Summary s;
    EXPECT_TRUE(std::isnan(s.min()));
    EXPECT_TRUE(std::isnan(s.max()));
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    s.add(5.0);
    EXPECT_DOUBLE_EQ(s.min(), 5.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(StatsTest, PercentileNearestRank)
{
    PercentileTracker t;
    for (int i = 1; i <= 100; ++i) {
        t.add(i);
    }
    EXPECT_DOUBLE_EQ(t.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(t.p50(), 50.0);
    EXPECT_DOUBLE_EQ(t.p99(), 99.0);
    EXPECT_DOUBLE_EQ(t.percentile(100), 100.0);
    EXPECT_DOUBLE_EQ(t.mean(), 50.5);
}

TEST(StatsTest, PercentileSingleSample)
{
    PercentileTracker t;
    t.add(7.5);
    EXPECT_DOUBLE_EQ(t.p50(), 7.5);
    EXPECT_DOUBLE_EQ(t.p99(), 7.5);
}

TEST(StatsTest, HistogramClampsToEdges)
{
    Histogram h(0, 10, 5);
    h.add(-100);
    h.add(0.5);
    h.add(9.5);
    h.add(100);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(4), 2u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(StatsTest, FormatHelpers)
{
    EXPECT_EQ(formatBytes(512), "512B");
    EXPECT_EQ(formatBytes(2048), "2.0KiB");
    EXPECT_EQ(formatBytes(7ull * units::GiB + units::GiB / 2), "7.5GiB");
    EXPECT_EQ(formatSeconds(units::secToNs(1.5)), "1.500s");
}

} // namespace
} // namespace medusa
