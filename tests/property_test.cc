/**
 * @file
 * Property-based tests of the materialization pipeline.
 *
 * 1. RandomTracePrograms: generate random allocation/free/compute
 *    programs (arbitrary pool-reuse patterns), capture a graph over
 *    the live buffers, analyze, then restore in many fresh processes
 *    with different layouts — the restored graph must reproduce the
 *    original output bit-for-bit every time. This is the §4 invariant
 *    ("the i-th data pointer correlates with the i-th buffer
 *    allocation") checked against adversarial control flow.
 *
 * 2. CorruptArtifactNeverCrashes: random byte corruption of a
 *    serialized artifact must yield a Status error (or a benign
 *    artifact), never a crash, when deserialized and restored.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "common/rng.h"
#include "llm/engine.h"
#include "medusa/analyze.h"
#include "medusa/offline.h"
#include "medusa/restore.h"
#include "simcuda/caching_allocator.h"
#include "simcuda/kernels/builtin.h"

namespace medusa {
namespace {

using core::AllocOp;
using core::AnalyzeOptions;
using core::Artifact;
using core::ParamSpec;
using core::Recorder;
using simcuda::BuiltinKernels;
using simcuda::CachingAllocator;
using simcuda::CudaGraph;
using simcuda::GpuProcess;
using simcuda::GpuProcessOptions;
using simcuda::ParamsBuilder;

constexpr u32 kBufFloats = 16;

GpuProcessOptions
procOptions(u64 seed)
{
    GpuProcessOptions o;
    o.aslr_seed = seed;
    return o;
}

/**
 * One randomly generated trace program: a sequence of allocator ops
 * with content writes, ending in a captured graph of add/copy kernels
 * over the live buffers.
 */
struct TraceProgram
{
    explicit TraceProgram(u64 seed) : rng(seed) {}

    Rng rng;
    /** Logical size classes; several collide to force pool reuse. */
    const std::vector<u64> size_classes = {1024, 1024, 2048, 4096};

    struct Step
    {
        enum Kind { kAlloc, kFree, kWrite } kind;
        u64 size = 0;       // kAlloc
        u32 victim = 0;     // kFree/kWrite: index into live list order
        f32 value = 0;      // kWrite
    };

    std::vector<Step> steps;
    u32 graph_nodes = 0;

    static TraceProgram
    generate(u64 seed)
    {
        TraceProgram p(seed);
        const int n_ops = 10 + static_cast<int>(p.rng.nextBounded(30));
        int live = 0;
        for (int i = 0; i < n_ops; ++i) {
            const u64 roll = p.rng.nextBounded(10);
            if (live >= 2 && roll < 3) {
                Step s;
                s.kind = Step::kFree;
                s.victim = static_cast<u32>(
                    p.rng.nextBounded(static_cast<u64>(live)));
                p.steps.push_back(s);
                --live;
            } else if (live >= 1 && roll < 5) {
                Step s;
                s.kind = Step::kWrite;
                s.victim = static_cast<u32>(
                    p.rng.nextBounded(static_cast<u64>(live)));
                s.value = static_cast<f32>(p.rng.nextIntIn(-50, 50)) /
                          8.0f;
                p.steps.push_back(s);
            } else {
                Step s;
                s.kind = Step::kAlloc;
                s.size = p.size_classes[p.rng.nextBounded(
                    p.size_classes.size())];
                p.steps.push_back(s);
                ++live;
            }
        }
        // Ensure at least two live buffers for the graph.
        while (live < 2) {
            Step s;
            s.kind = Step::kAlloc;
            s.size = 1024;
            p.steps.push_back(s);
            ++live;
        }
        p.graph_nodes =
            2 + static_cast<u32>(p.rng.nextBounded(6));
        return p;
    }
};

/** The execution of a program in one process: live buffers + graph. */
struct ProgramRun
{
    std::vector<DeviceAddr> live;
    CudaGraph graph;
    DeviceAddr out = 0;
};

/** Run the program's allocator script; returns live buffers in order. */
StatusOr<std::vector<DeviceAddr>>
runScript(const TraceProgram &program, GpuProcess &process,
          CachingAllocator &alloc)
{
    std::vector<DeviceAddr> live;
    for (const auto &step : program.steps) {
        switch (step.kind) {
          case TraceProgram::Step::kAlloc: {
              MEDUSA_ASSIGN_OR_RETURN(
                  DeviceAddr a,
                  alloc.allocate(step.size, kBufFloats * 4));
              live.push_back(a);
              break;
          }
          case TraceProgram::Step::kFree: {
              const DeviceAddr a = live.at(step.victim);
              MEDUSA_RETURN_IF_ERROR(alloc.free(a));
              live.erase(live.begin() + step.victim);
              break;
          }
          case TraceProgram::Step::kWrite: {
              std::vector<f32> data(kBufFloats, step.value);
              MEDUSA_RETURN_IF_ERROR(process.memory().write(
                  live.at(step.victim), data.data(), kBufFloats * 4));
              break;
          }
        }
    }
    return live;
}

/** Capture a deterministic add-chain graph over the live buffers. */
StatusOr<CudaGraph>
captureGraph(const TraceProgram &program, GpuProcess &process,
             CachingAllocator &alloc, Recorder *recorder,
             const std::vector<DeviceAddr> &live, DeviceAddr *out_addr)
{
    const auto &k = BuiltinKernels::get();
    // Output buffer (allocated during the "capture stage").
    MEDUSA_ASSIGN_OR_RETURN(DeviceAddr out,
                            alloc.allocate(1024, kBufFloats * 4));
    *out_addr = out;
    // Warm the module.
    {
        ParamsBuilder warm;
        warm.ptr(live[0]).ptr(out).i32(0);
        MEDUSA_RETURN_IF_ERROR(process.defaultStream().launch(
            k.copy_f32, warm.take(), {}));
    }
    if (recorder != nullptr) {
        recorder->beginGraph(1);
    }
    MEDUSA_RETURN_IF_ERROR(
        process.beginCapture(process.defaultStream()));
    Status st = [&]() -> Status {
        // copy live[0] -> out, then add a rotating live buffer each
        // node: out accumulates a reuse-sensitive mix.
        ParamsBuilder first;
        first.ptr(live[0]).ptr(out).i32(static_cast<i32>(kBufFloats));
        MEDUSA_RETURN_IF_ERROR(process.defaultStream().launch(
            k.copy_f32, first.take(), {}));
        for (u32 i = 1; i < program.graph_nodes; ++i) {
            ParamsBuilder pb;
            pb.ptr(out)
                .ptr(live[i % live.size()])
                .i32(static_cast<i32>(kBufFloats));
            MEDUSA_RETURN_IF_ERROR(process.defaultStream().launch(
                k.residual_add, pb.take(), {}));
        }
        return Status::ok();
    }();
    auto graph = process.endCapture(process.defaultStream());
    if (recorder != nullptr) {
        recorder->endGraph();
    }
    if (!st.isOk()) {
        return st;
    }
    return graph;
}

class RandomTraceProperty : public ::testing::TestWithParam<u64>
{
};

TEST_P(RandomTraceProperty, RestoredGraphReproducesOutput)
{
    const TraceProgram program = TraceProgram::generate(GetParam());

    // ---- offline: run + record + capture + execute reference --------
    SimClock clock;
    CostModel cost;
    GpuProcess process(procOptions(GetParam() * 3 + 1), &clock, &cost);
    CachingAllocator alloc(&process, GetParam() * 3 + 1);
    Recorder recorder;
    alloc.setObserver(&recorder);
    process.setLaunchObserver(&recorder);
    recorder.markOrganicBoundary();
    recorder.markCaptureStageBegin();

    auto live = runScript(program, process, alloc);
    ASSERT_TRUE(live.isOk()) << live.status().toString();
    DeviceAddr out = 0;
    auto graph = captureGraph(program, process, alloc, &recorder, *live,
                              &out);
    ASSERT_TRUE(graph.isOk()) << graph.status().toString();

    // Reference output: instantiate + replay in the offline process.
    auto exec = process.instantiate(*graph);
    ASSERT_TRUE(exec.isOk());
    ASSERT_TRUE(
        process.launchGraph(*exec, process.defaultStream()).isOk());
    std::vector<f32> expected(kBufFloats);
    ASSERT_TRUE(process.memory()
                    .read(out, expected.data(), kBufFloats * 4)
                    .isOk());

    // ---- analysis ----------------------------------------------------
    AnalyzeOptions aopts;
    std::vector<std::pair<u32, CudaGraph>> graphs = {{1, *graph}};
    auto analysis = core::analyze(recorder, process, "prop", 1, graphs,
                                  units::GiB, aopts);
    ASSERT_TRUE(analysis.isOk()) << analysis.status().toString();
    const Artifact &artifact = analysis->artifact;

    // ---- online: replay + patch + run in fresh processes -------------
    for (u64 seed = 500; seed < 510; ++seed) {
        SimClock clock2;
        GpuProcess fresh(procOptions(seed), &clock2, &cost);
        CachingAllocator alloc2(&fresh, seed);
        std::vector<DeviceAddr> addr_of;
        core::Recorder observer; // reuse Recorder as address collector
        for (const AllocOp &op : artifact.ops) {
            if (op.kind == AllocOp::kAlloc) {
                auto a = alloc2.allocate(op.logical_size,
                                         op.backing_size);
                ASSERT_TRUE(a.isOk());
                addr_of.push_back(*a);
            } else {
                ASSERT_TRUE(
                    alloc2.free(addr_of[op.freed_alloc_index]).isOk());
            }
        }
        for (const auto &pb : artifact.permanent) {
            ASSERT_TRUE(fresh.memory()
                            .write(addr_of[pb.alloc_index],
                                   pb.contents.data(),
                                   pb.contents.size())
                            .isOk());
        }
        // Rebuild the graph: resolve the kernels, patch the params.
        ASSERT_TRUE(
            fresh.modules().loadModule(simcuda::kTorchModule));
        CudaGraph rebuilt;
        const auto &bp = artifact.graphs[0];
        for (u32 ni = 0; ni < bp.nodes.size(); ++ni) {
            const auto &nb = bp.nodes[ni];
            const simcuda::KernelId id =
                simcuda::KernelRegistry::instance().findByName(
                    nb.kernel_name);
            ASSERT_NE(id, simcuda::kInvalidKernel);
            auto addr = fresh.modules().addressOf(id);
            ASSERT_TRUE(addr.isOk());
            simcuda::RawParams params;
            for (const ParamSpec &spec : nb.params) {
                if (spec.kind == ParamSpec::kConstant) {
                    params.push_back(spec.constant_bytes);
                } else {
                    const u64 value =
                        addr_of[spec.alloc_index] + spec.offset;
                    std::vector<u8> bytes(8);
                    std::memcpy(bytes.data(), &value, 8);
                    params.push_back(std::move(bytes));
                }
            }
            rebuilt.addKernelNode(*addr, std::move(params), nb.timing,
                                  ni == 0 ? std::vector<simcuda::NodeId>{}
                                          : std::vector<simcuda::NodeId>{
                                                ni - 1});
        }
        auto exec2 = fresh.instantiate(rebuilt);
        ASSERT_TRUE(exec2.isOk());
        ASSERT_TRUE(
            fresh.launchGraph(*exec2, fresh.defaultStream()).isOk());
        // The out buffer's alloc index: find via the artifact tags-less
        // route — it was the LAST allocation of the trace.
        u64 out_index = 0;
        for (u64 i = 0, seen = 0; i < artifact.ops.size(); ++i) {
            if (artifact.ops[i].kind == AllocOp::kAlloc) {
                out_index = seen++;
            }
        }
        std::vector<f32> got(kBufFloats);
        ASSERT_TRUE(fresh.memory()
                        .read(addr_of[out_index], got.data(),
                              kBufFloats * 4)
                        .isOk());
        EXPECT_EQ(got, expected)
            << "program seed " << GetParam() << ", layout seed "
            << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(TwentyPrograms, RandomTraceProperty,
                         ::testing::Range<u64>(1, 21));

TEST(ArtifactRobustness, CorruptArtifactNeverCrashes)
{
    llm::ModelConfig m = llm::findModel("Qwen1.5-0.5B").value();
    m.num_layers = 2;
    core::OfflineOptions oopts;
    oopts.model = m;
    oopts.pipeline.validate = false;
    auto offline = core::materialize(oopts);
    ASSERT_TRUE(offline.isOk());
    const auto bytes = offline->artifact.serialize();

    Rng rng(0xfade);
    int parsed = 0, rejected = 0, restore_failed = 0, restored = 0;
    for (int trial = 0; trial < 60; ++trial) {
        auto corrupt = bytes;
        const int flips = 1 + static_cast<int>(rng.nextBounded(8));
        for (int i = 0; i < flips; ++i) {
            corrupt[rng.nextBounded(corrupt.size())] ^=
                static_cast<u8>(1 + rng.nextBounded(255));
        }
        auto artifact = Artifact::deserialize(corrupt);
        if (!artifact.isOk()) {
            ++rejected;
            continue;
        }
        ++parsed;
        core::MedusaEngine::Options eopts;
        eopts.model = m;
        eopts.restore.pipeline.validate = true;
        eopts.restore.pipeline.validate_batch_sizes = {1};
        auto engine = core::MedusaEngine::coldStart(eopts, *artifact);
        if (engine.isOk()) {
            ++restored; // corruption hit a don't-care byte
        } else {
            ++restore_failed;
        }
    }
    // The property under test is "no crash"; the distribution is
    // informational.
    EXPECT_EQ(parsed + rejected, 60);
    EXPECT_GT(rejected + restore_failed + restored, 0);
}

} // namespace
} // namespace medusa
