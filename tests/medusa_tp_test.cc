/**
 * @file
 * End-to-end tests of Medusa for tensor-parallel serving (§8 future
 * work): per-rank materialization, per-rank restoration in fresh
 * processes, lockstep validation against a reference cluster, and
 * equivalence with the single-GPU engine.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "medusa/tp.h"

namespace medusa::core {
namespace {

llm::ModelConfig
tpModel(const char *name = "Llama2-7B", u32 layers = 3)
{
    llm::ModelConfig m = llm::findModel(name).value();
    m.num_layers = layers;
    return m;
}

TpOfflineResult
materialized(const llm::ModelConfig &m,
             std::vector<u32> batch_sizes = {1, 8, 64})
{
    TpOfflineOptions opts;
    opts.model = m;
    opts.world = 2;
    opts.batch_sizes = std::move(batch_sizes);
    auto result = materializeTp(opts);
    MEDUSA_CHECK(result.isOk(),
                 "tp offline failed: " << result.status().toString());
    return std::move(result).value();
}

TEST(MedusaTpTest, OfflineProducesOneArtifactPerRank)
{
    const llm::ModelConfig m = tpModel();
    auto offline = materialized(m);
    ASSERT_EQ(offline.rank_artifacts.size(), 2u);
    for (const Artifact &a : offline.rank_artifacts) {
        EXPECT_EQ(a.graphs.size(), 3u);
        EXPECT_GT(a.stats.pointer_params, 0u);
        // The collectives appear as graph nodes on every rank.
        u64 collectives = 0;
        for (const auto &g : a.graphs) {
            for (const auto &n : g.nodes) {
                if (n.kernel_name.find("all_reduce") !=
                    std::string::npos) {
                    ++collectives;
                }
            }
        }
        EXPECT_EQ(collectives, 3u * 2 * m.num_layers);
    }
    // The two ranks' allocation sequences are independent tables (the
    // §8 "indirect index pointer table across multiple GPU instances").
    EXPECT_EQ(offline.rank_artifacts[0].ops.size(),
              offline.rank_artifacts[1].ops.size());
}

TEST(MedusaTpTest, RestoreValidatesAgainstReferenceCluster)
{
    const llm::ModelConfig m = tpModel();
    auto offline = materialized(m);

    TpMedusaEngine::Options opts;
    opts.model = m;
    opts.world = 2;
    opts.aslr_seed = 20250707;
    opts.restore.pipeline.validate = true;
    opts.restore.pipeline.validate_batch_sizes = {1, 64};
    auto engine = TpMedusaEngine::coldStart(opts,
                                            offline.rank_artifacts);
    ASSERT_TRUE(engine.isOk()) << engine.status().toString();
    for (u32 r = 0; r < 2; ++r) {
        EXPECT_TRUE((*engine)->rankRestoreReports()[r].validated);
        EXPECT_EQ((*engine)->rankRestoreReports()[r].graphs_restored, 3u);
        EXPECT_GT((*engine)->rankRestoreReports()[r].kernels_via_enumeration, 0u);
    }
    EXPECT_GT((*engine)->coldStartReport().loadingSec(), 0.0);
}

TEST(MedusaTpTest, RestoredClusterMatchesSingleGpuNumerics)
{
    const llm::ModelConfig m = tpModel("Yi-6B", 2);
    auto offline = materialized(m, {4});

    TpMedusaEngine::Options opts;
    opts.model = m;
    opts.world = 2;
    auto engine = TpMedusaEngine::coldStart(opts,
                                            offline.rank_artifacts);
    ASSERT_TRUE(engine.isOk()) << engine.status().toString();
    ASSERT_TRUE((*engine)->cluster().stageValidationState(4).isOk());
    auto tp_logits = (*engine)->cluster().lockstepDecodeLogits(4);
    ASSERT_TRUE(tp_logits.isOk()) << tp_logits.status().toString();

    llm::ModelRuntime::Options sopts;
    sopts.model = m;
    llm::ModelRuntime single(sopts);
    ASSERT_TRUE(single.initStructure().isOk());
    ASSERT_TRUE(single.loadWeights().isOk());
    auto free_bytes = single.profileFreeMemory();
    ASSERT_TRUE(free_bytes.isOk());
    ASSERT_TRUE(single.initKvCache(*free_bytes).isOk());
    ASSERT_TRUE(single.stageValidationState(4).isOk());
    auto ref = single.eagerDecodeLogits(4);
    ASSERT_TRUE(ref.isOk());

    f64 max_err = 0;
    for (std::size_t i = 0; i < ref->size(); ++i) {
        max_err = std::max(max_err,
                           static_cast<f64>(std::abs(
                               (*tp_logits)[i] - (*ref)[i])));
    }
    EXPECT_LT(max_err, 1e-3);
}

TEST(MedusaTpTest, WrongWorldSizeRejected)
{
    const llm::ModelConfig m = tpModel();
    auto offline = materialized(m, {1});
    TpMedusaEngine::Options opts;
    opts.model = m;
    opts.world = 4; // but only 2 artifacts
    auto engine = TpMedusaEngine::coldStart(opts,
                                            offline.rank_artifacts);
    EXPECT_FALSE(engine.isOk());
}

TEST(MedusaTpTest, ContentSkipBreaksTpRestoreToo)
{
    const llm::ModelConfig m = tpModel("Qwen1.5-0.5B", 2);
    auto offline = materialized(m, {1});
    TpMedusaEngine::Options opts;
    opts.model = m;
    opts.world = 2;
    opts.restore.restore_contents = false;
    opts.restore.pipeline.validate = true;
    opts.restore.pipeline.validate_batch_sizes = {1};
    auto engine = TpMedusaEngine::coldStart(opts,
                                            offline.rank_artifacts);
    ASSERT_FALSE(engine.isOk());
    EXPECT_EQ(engine.status().code(), StatusCode::kValidationFailure);
}

} // namespace
} // namespace medusa::core
