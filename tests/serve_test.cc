/**
 * @file
 * Serving-front-end suite (DESIGN.md §17): the JSON parser, the
 * incremental HTTP request parser, OpenAI request validation, the
 * serve-mode Scheduler drain contract, and a real loopback
 * end-to-end pass through Server — streamed SSE completion,
 * non-streaming chat completion, validation errors and graceful-drain
 * request conservation.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "serve/http.h"
#include "serve/json.h"
#include "serve/openai.h"
#include "serve/server.h"

namespace medusa::serve {
namespace {

// ---- JSON ---------------------------------------------------------------

TEST(ServeJsonTest, ParsesNestedDocument)
{
    auto v = Json::parse(R"({"a":[1,2.5,-3],"b":{"c":true,"d":null},)"
                         R"("e":"x\n\"yé"})");
    ASSERT_TRUE(v.isOk()) << v.status().toString();
    ASSERT_TRUE(v->isObject());
    const Json *a = v->find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_TRUE(a->isArray());
    ASSERT_EQ(a->items().size(), 3u);
    EXPECT_EQ(a->items()[0].asNumber(), 1.0);
    EXPECT_EQ(a->items()[1].asNumber(), 2.5);
    EXPECT_EQ(a->items()[2].asNumber(), -3.0);
    const Json *c = v->find("b")->find("c");
    ASSERT_NE(c, nullptr);
    EXPECT_TRUE(c->asBool());
    EXPECT_TRUE(v->find("b")->find("d")->isNull());
    EXPECT_EQ(v->find("e")->asString(), "x\n\"y\xc3\xa9");
}

TEST(ServeJsonTest, RejectsMalformedInput)
{
    EXPECT_FALSE(Json::parse("{").isOk());
    EXPECT_FALSE(Json::parse("{\"a\":}").isOk());
    EXPECT_FALSE(Json::parse("[1,]").isOk());
    EXPECT_FALSE(Json::parse("tru").isOk());
    EXPECT_FALSE(Json::parse("\"unterminated").isOk());
    EXPECT_FALSE(Json::parse("{} trailing").isOk());
    EXPECT_FALSE(Json::parse("").isOk());
}

TEST(ServeJsonTest, DumpRoundTrips)
{
    const std::string doc =
        R"({"s":"a\"b","n":-2,"f":1.5,"b":false,"l":[1,{"x":null}]})";
    auto v = Json::parse(doc);
    ASSERT_TRUE(v.isOk());
    // dump() preserves member order, so the compact form round-trips.
    EXPECT_EQ(v->dump(), doc);
    auto again = Json::parse(v->dump());
    ASSERT_TRUE(again.isOk());
    EXPECT_EQ(again->dump(), doc);
}

// ---- HTTP parser --------------------------------------------------------

TEST(ServeHttpTest, ParsesRequestWithBody)
{
    HttpParser p;
    ASSERT_TRUE(p.feed("POST /v1/completions HTTP/1.1\r\n"
                       "Host: x\r\nContent-Type: application/json\r\n"
                       "Content-Length: 7\r\n\r\n{\"a\":1}")
                    .isOk());
    ASSERT_TRUE(p.complete());
    EXPECT_EQ(p.request().method, "POST");
    EXPECT_EQ(p.request().target, "/v1/completions");
    EXPECT_EQ(p.request().body, "{\"a\":1}");
    ASSERT_NE(p.request().header("content-type"), nullptr);
    EXPECT_EQ(*p.request().header("content-type"), "application/json");
}

TEST(ServeHttpTest, AssemblesByteAtATime)
{
    const std::string raw = "GET /healthz HTTP/1.1\r\nHost: a\r\n\r\n";
    HttpParser p;
    for (const char c : raw) {
        ASSERT_TRUE(p.feed(std::string_view(&c, 1)).isOk());
    }
    ASSERT_TRUE(p.complete());
    EXPECT_EQ(p.request().method, "GET");
    EXPECT_EQ(p.request().target, "/healthz");
    EXPECT_TRUE(p.request().body.empty());
}

TEST(ServeHttpTest, HandlesPipelinedRequests)
{
    HttpParser p;
    ASSERT_TRUE(p.feed("POST /a HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi"
                       "GET /b HTTP/1.1\r\n\r\n")
                    .isOk());
    ASSERT_TRUE(p.complete());
    EXPECT_EQ(p.request().target, "/a");
    EXPECT_EQ(p.request().body, "hi");
    p.reset();
    ASSERT_TRUE(p.feed("").isOk());
    ASSERT_TRUE(p.complete());
    EXPECT_EQ(p.request().target, "/b");
}

TEST(ServeHttpTest, RejectsGarbage)
{
    HttpParser bad_line;
    EXPECT_FALSE(bad_line.feed("NOT-HTTP\r\n\r\n").isOk());
    HttpParser bad_len;
    EXPECT_FALSE(bad_len
                     .feed("POST / HTTP/1.1\r\n"
                           "Content-Length: banana\r\n\r\n")
                     .isOk());
    HttpParser chunked;
    EXPECT_FALSE(chunked
                     .feed("POST / HTTP/1.1\r\n"
                           "Transfer-Encoding: chunked\r\n\r\n")
                     .isOk());
}

// ---- OpenAI request validation ------------------------------------------

ApiLimits
testLimits()
{
    ApiLimits l;
    l.max_prompt_tokens = 100;
    l.max_output_tokens = 32;
    l.default_max_tokens = 16;
    return l;
}

TEST(ServeOpenAiTest, ParsesCompletionRequest)
{
    auto body = Json::parse(
        R"({"model":"m","prompt":"hello world","max_tokens":4,)"
        R"("stream":true})");
    ASSERT_TRUE(body.isOk());
    auto call = parseCompletionCall(*body, /*chat=*/false, testLimits());
    ASSERT_TRUE(call.isOk()) << call.status().toString();
    EXPECT_EQ(call->model, "m");
    EXPECT_EQ(call->prompt, "hello world");
    EXPECT_EQ(call->prompt_tokens, approxTokenCount("hello world"));
    EXPECT_EQ(call->max_tokens, 4u);
    EXPECT_TRUE(call->stream);
    EXPECT_FALSE(call->chat);
}

TEST(ServeOpenAiTest, FlattensChatMessages)
{
    auto body = Json::parse(
        R"({"model":"m","messages":[)"
        R"({"role":"system","content":"be terse"},)"
        R"({"role":"user","content":"hi"}]})");
    ASSERT_TRUE(body.isOk());
    auto call = parseCompletionCall(*body, /*chat=*/true, testLimits());
    ASSERT_TRUE(call.isOk()) << call.status().toString();
    EXPECT_TRUE(call->chat);
    EXPECT_EQ(call->prompt, "system: be terse\nuser: hi");
    EXPECT_EQ(call->max_tokens, 16u); // default_max_tokens
}

TEST(ServeOpenAiTest, RejectsInvalidRequests)
{
    const ApiLimits limits = testLimits();
    auto check = [&](const char *doc, bool chat) {
        auto body = Json::parse(doc);
        ASSERT_TRUE(body.isOk()) << doc;
        EXPECT_FALSE(parseCompletionCall(*body, chat, limits).isOk())
            << doc;
    };
    check(R"({"prompt":"x"})", false);               // missing model
    check(R"({"model":42,"prompt":"x"})", false);    // model not string
    check(R"({"model":"m"})", false);                // missing prompt
    check(R"({"model":"m","prompt":""})", false);    // empty prompt
    check(R"({"model":"m","messages":[]})", true);   // empty messages
    check(R"({"model":"m","messages":[{"role":"u"}]})", true);
    check(R"({"model":"m","prompt":"x","max_tokens":0})", false);
    check(R"({"model":"m","prompt":"x","max_tokens":33})", false);
    check(R"({"model":"m","prompt":"x","max_tokens":1.5})", false);
    check(R"({"model":"m","prompt":"x","stream":1})", false);
    check(R"({"model":"m","prompt":"x","n":2})", false);
    // Prompt over the token limit (100 tokens ≈ 400 bytes).
    const std::string long_prompt(500, 'a');
    auto body = Json::parse(R"({"model":"m","prompt":")" + long_prompt +
                            R"("})");
    ASSERT_TRUE(body.isOk());
    EXPECT_FALSE(parseCompletionCall(*body, false, limits).isOk());
}

TEST(ServeOpenAiTest, TokenTextIsDeterministic)
{
    for (u32 i = 0; i < 32; ++i) {
        EXPECT_EQ(tokenText(7, i), tokenText(7, i));
        EXPECT_FALSE(tokenText(7, i).empty());
    }
    // Later tokens carry a separating space; the first does not.
    EXPECT_EQ(tokenText(7, 1)[0], ' ');
    EXPECT_NE(tokenText(7, 0)[0], ' ');
    // Different requests draw different streams (overwhelmingly).
    int diff = 0;
    for (u32 i = 0; i < 16; ++i) {
        diff += tokenText(1, i) != tokenText(2, i) ? 1 : 0;
    }
    EXPECT_GT(diff, 0);
}

// ---- Scheduler serve-mode drain contract --------------------------------

serverless::ServingProfile
toyProfile()
{
    serverless::ServingProfile p;
    p.model_name = "toy";
    p.strategy = llm::Strategy::kVllm;
    p.loading_sec = 1.0;
    p.cold_start_sec = 1.0;
    p.batch_sizes = {1, 10};
    p.decode_step_sec = {0.01, 0.10};
    p.prefill_tokens = {100, 1000};
    p.prefill_sec = {0.1, 1.0};
    return p;
}

TEST(ServeSchedulerTest, SubmitPumpDrainConservesRequests)
{
    const serverless::ServingProfile profile = toyProfile();
    serverless::ClusterOptions opts;
    opts.profile = &profile;

    u64 dones = 0;
    RequestHooks hooks;
    hooks.on_done = [&](u32, RequestOutcome, f64) { ++dones; };
    Scheduler sched(opts, &hooks);

    for (int i = 0; i < 20; ++i) {
        sched.pumpUntil(0.05 * i);
        workload::Request r;
        r.arrival_sec = sched.now();
        r.prompt_tokens = 100;
        r.output_tokens = 5;
        const u32 id = sched.submit(r);
        EXPECT_EQ(id, static_cast<u32>(i));
    }
    EXPECT_EQ(sched.submitted(), 20u);
    EXPECT_GT(sched.inFlight(), 0u);

    sched.drain();
    EXPECT_EQ(sched.inFlight(), 0u);
    EXPECT_EQ(dones, 20u);

    const serverless::TraceMetrics tm = sched.finish();
    EXPECT_EQ(tm.completed, 20u);
    EXPECT_EQ(tm.ttft_sec.count(), 20u);
}

// ---- loopback end-to-end ------------------------------------------------

/** Connect to 127.0.0.1:@p port, send @p request, read until close. */
std::string
roundTrip(u16 port, const std::string &request)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0)
        << std::strerror(errno);
    EXPECT_TRUE(writeAll(fd, request));
    ::shutdown(fd, SHUT_WR);
    std::string out;
    while (readInto(fd, out) > 0) {
    }
    ::close(fd);
    return out;
}

std::string
postJson(const std::string &path, const std::string &body)
{
    return "POST " + path + " HTTP/1.1\r\nHost: t\r\n" +
           "Content-Type: application/json\r\nContent-Length: " +
           std::to_string(body.size()) + "\r\n\r\n" + body;
}

TEST(ServeServerTest, LoopbackEndToEnd)
{
    const serverless::ServingProfile profile = toyProfile();
    ServeOptions sopts;
    sopts.cluster.profile = &profile;
    sopts.cluster.num_gpus = 2;
    sopts.time_scale = 0; // free-run: finish at compute speed
    sopts.model_names = {"toy"};

    Server server(std::move(sopts));
    ASSERT_TRUE(server.start().isOk());
    const u16 port = server.port();
    ASSERT_NE(port, 0);

    // Streamed completion: token frames, a finish_reason frame, DONE.
    const std::string streamed = roundTrip(
        port, postJson("/v1/completions",
                       R"({"model":"toy","prompt":"the quick brown )"
                       R"(fox","max_tokens":5,"stream":true})"));
    EXPECT_EQ(streamed.rfind("HTTP/1.1 200", 0), 0u) << streamed;
    EXPECT_NE(streamed.find("text/event-stream"), std::string::npos);
    u64 frames = 0;
    bool saw_done = false;
    for (std::size_t pos = 0;
         (pos = streamed.find("data: ", pos)) != std::string::npos;) {
        pos += 6;
        if (streamed.compare(pos, 6, "[DONE]") == 0) {
            saw_done = true;
        } else {
            ++frames;
        }
    }
    EXPECT_EQ(frames, 6u); // 5 tokens + finish_reason chunk
    EXPECT_TRUE(saw_done);
    EXPECT_NE(streamed.find("\"finish_reason\":\"length\""),
              std::string::npos);

    // Non-streaming chat completion with usage accounting.
    const std::string chat = roundTrip(
        port, postJson("/v1/chat/completions",
                       R"({"model":"toy","messages":[{"role":"user",)"
                       R"("content":"hello"}],"max_tokens":3})"));
    EXPECT_EQ(chat.rfind("HTTP/1.1 200", 0), 0u) << chat;
    EXPECT_NE(chat.find("\"object\":\"chat.completion\""),
              std::string::npos);
    EXPECT_NE(chat.find("\"completion_tokens\":3"), std::string::npos);

    // Validation and routing errors.
    const std::string bad =
        roundTrip(port, postJson("/v1/completions", "{nope"));
    EXPECT_EQ(bad.rfind("HTTP/1.1 400", 0), 0u) << bad;
    const std::string missing = roundTrip(
        port, "GET /nope HTTP/1.1\r\nHost: t\r\n\r\n");
    EXPECT_EQ(missing.rfind("HTTP/1.1 404", 0), 0u) << missing;
    const std::string unknown_model = roundTrip(
        port,
        postJson("/v1/completions", R"({"model":"x","prompt":"y"})"));
    EXPECT_EQ(unknown_model.rfind("HTTP/1.1 404", 0), 0u)
        << unknown_model;

    // Graceful drain: the two accepted requests are conserved into
    // the run's TraceMetrics, and the front-end counters agree.
    const serverless::TraceMetrics tm = server.stop();
    EXPECT_EQ(tm.completed, 2u);
    const MetricsSnapshot snap = server.metricsSnapshot();
    EXPECT_EQ(snap.counterValue("server.completions"), 1u);
    EXPECT_EQ(snap.counterValue("server.chat_completions"), 1u);
    EXPECT_EQ(snap.counterValue("server.streams"), 1u);
    EXPECT_EQ(snap.counterValue("server.tokens_streamed"), 8u);
    EXPECT_EQ(snap.counterValue("server.rejected"), 3u);
    EXPECT_EQ(snap.counterValue("server.failed"), 0u);
}

TEST(ServeServerTest, RejectsSubmissionsWhileDraining)
{
    const serverless::ServingProfile profile = toyProfile();
    ServeOptions sopts;
    sopts.cluster.profile = &profile;
    sopts.time_scale = 0;
    sopts.model_names = {"toy"};

    Server server(std::move(sopts));
    ASSERT_TRUE(server.start().isOk());
    const u16 port = server.port();
    server.requestStop();

    // The listener is closed; new connections must fail outright.
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_NE(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    ::close(fd);

    const serverless::TraceMetrics tm = server.stop();
    EXPECT_EQ(tm.completed, 0u);
}

} // namespace
} // namespace medusa::serve
