/**
 * @file
 * Engine-equivalence suite for the cluster simulator (DESIGN.md §15):
 * the zero-allocation fast engine (cluster_fast.cc) must produce
 * BIT-IDENTICAL TraceMetrics, metric snapshots and Chrome trace streams
 * to the legacy std::function EventLoop (cluster.cc) on the paper's
 * fig10/§7.5 traces and on every feature the legacy loop supports —
 * hot spares, deferred capture, idle reclaim, fault injection with
 * every fallback mode, and the artifact cache. Plus: the fast engine's
 * own determinism at the million-request scale of the bench.
 *
 * sim_events is the one field deliberately excluded: the legacy loop
 * dispatches stale idle-timer tombstones that the fast engine cancels
 * outright (see TraceMetrics::sim_events).
 */

#include <gtest/gtest.h>

#include <optional>

#include "common/fault.h"
#include "medusa/artifact_cache.h"
#include "serve/scheduler.h"
#include "serverless/cluster_internal.h"
#include "workload/synthetic.h"
#include "workload/trace.h"

namespace medusa::serverless {
namespace {

/** The toy profile of serverless_test.cc (easy arithmetic). */
ServingProfile
toyProfile(f64 cold_start = 2.0)
{
    ServingProfile p;
    p.model_name = "toy";
    p.strategy = llm::Strategy::kVllm;
    p.loading_sec = cold_start;
    p.cold_start_sec = cold_start;
    p.batch_sizes = {1, 10};
    p.decode_step_sec = {0.01, 0.10};
    p.prefill_tokens = {100, 1000};
    p.prefill_sec = {0.1, 1.0};
    return p;
}

/** One engine run with its own sinks and (optional) fault stream. */
struct RunResult
{
    TraceMetrics metrics;
    std::string chrome_json;
    std::string metrics_json;
};

RunResult
runEngine(ClusterOptions opts, const ServingProfile &profile,
          const std::vector<workload::Request> &trace, SimEngine engine,
          const FaultPlan *plan = nullptr,
          core::ArtifactCache *cache = nullptr)
{
    TraceRecorder rec;
    MetricsRegistry reg;
    std::optional<FaultInjector> injector;
    if (plan != nullptr) {
        injector.emplace(*plan);
        opts.pipeline.fault = &*injector;
    }
    opts.pipeline.trace = &rec;
    opts.pipeline.metrics = &reg;
    opts.artifact_cache = cache;
    opts.engine = engine;
    opts.profile = &profile;
    RunResult r;
    r.metrics = simulateCluster(opts, trace);
    r.chrome_json = rec.toChromeJson();
    r.metrics_json = reg.toJson();
    return r;
}

/**
 * Bit-identity between the engines: exact == on every float (no
 * EXPECT_NEAR — the refactor preserves expression order, so results
 * must match to the last ulp).
 */
void
expectBitIdentical(const RunResult &legacy, const RunResult &fast)
{
    const TraceMetrics &a = legacy.metrics;
    const TraceMetrics &b = fast.metrics;
    EXPECT_EQ(a.ttft_sec.samples(), b.ttft_sec.samples());
    EXPECT_EQ(a.e2e_sec.samples(), b.e2e_sec.samples());
    EXPECT_EQ(a.launch_sec.samples(), b.launch_sec.samples());
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.cold_starts, b.cold_starts);
    EXPECT_EQ(a.achieved_qps, b.achieved_qps);
    EXPECT_EQ(a.makespan_sec, b.makespan_sec);
    EXPECT_EQ(a.gpu_seconds, b.gpu_seconds);
    EXPECT_EQ(a.artifact_loads, b.artifact_loads);
    EXPECT_EQ(a.artifact_cache_hits, b.artifact_cache_hits);
    EXPECT_EQ(a.restore_failures, b.restore_failures);
    EXPECT_EQ(a.fallback_cold_starts, b.fallback_cold_starts);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.wasted_restore_sec, b.wasted_restore_sec);
    EXPECT_EQ(a.instances_launched, b.instances_launched);
    EXPECT_EQ(a.peak_live_instances, b.peak_live_instances);
    EXPECT_EQ(legacy.metrics_json, fast.metrics_json);
    EXPECT_EQ(legacy.chrome_json, fast.chrome_json);
}

void
expectEnginesAgree(const ClusterOptions &opts,
                   const ServingProfile &profile,
                   const std::vector<workload::Request> &trace,
                   const FaultPlan *plan = nullptr,
                   bool with_cache = false)
{
    // Each run gets a fresh fault stream and artifact cache: both are
    // stateful in hit order, and the engines must consume them
    // identically.
    std::optional<core::ArtifactCache> legacy_cache;
    std::optional<core::ArtifactCache> fast_cache;
    ClusterOptions copts = opts;
    if (with_cache) {
        legacy_cache.emplace();
        fast_cache.emplace();
        copts.artifact_key = "toy";
        copts.artifact_loader = []() -> StatusOr<core::Artifact> {
            return core::Artifact{};
        };
        copts.artifact_miss_sec = 0.7;
    }
    const RunResult legacy =
        runEngine(copts, profile, trace, SimEngine::kLegacy, plan,
                  with_cache ? &*legacy_cache : nullptr);
    const RunResult fast =
        runEngine(copts, profile, trace, SimEngine::kFast, plan,
                  with_cache ? &*fast_cache : nullptr);
    expectBitIdentical(legacy, fast);
}

/** The fig10 bench's trace family (§7.5 replay statistics). */
std::vector<workload::Request>
fig10Trace(f64 rps, u64 seed, f64 duration_sec = 120)
{
    workload::TraceOptions topts;
    topts.requests_per_sec = rps;
    topts.duration_sec = duration_sec;
    topts.seed = seed;
    return workload::generateShareGptTrace(topts);
}

TEST(ClusterEquivTest, Fig10TracesBitIdentical)
{
    const ServingProfile p = toyProfile(2.0);
    for (const f64 rps : {2.0, 10.0}) {
        for (const u64 seed : {20250330ull, 20250331ull}) {
            ClusterOptions opts;
            expectEnginesAgree(opts, p, fig10Trace(rps, seed));
        }
    }
}

TEST(ClusterEquivTest, TightIdleTimeoutBitIdentical)
{
    ClusterOptions opts;
    opts.idle_timeout_sec = 0.5; // heavy reclaim/relaunch churn
    opts.num_gpus = 2;
    expectEnginesAgree(opts, toyProfile(1.0),
                       fig10Trace(6.0, 20250401ull));
}

TEST(ClusterEquivTest, HotSparesBitIdentical)
{
    ClusterOptions opts;
    opts.hot_spares = 2;
    opts.idle_timeout_sec = 2.0;
    expectEnginesAgree(opts, toyProfile(1.5),
                       fig10Trace(4.0, 20250402ull));
}

TEST(ClusterEquivTest, DeferredCaptureBitIdentical)
{
    ServingProfile p = toyProfile(1.0);
    p.deferred_capture = true;
    p.capture_penalty_sec = {0.5, 0.5};
    ClusterOptions opts;
    opts.max_seqs_per_instance = 8; // varied decode batch sizes
    expectEnginesAgree(opts, p, fig10Trace(8.0, 20250403ull));
}

TEST(ClusterEquivTest, SmallBatchBudgetBitIdentical)
{
    ClusterOptions opts;
    opts.max_batched_tokens = 200; // force multi-step prefill queues
    opts.max_seqs_per_instance = 4;
    expectEnginesAgree(opts, toyProfile(1.0),
                       fig10Trace(8.0, 20250404ull));
}

TEST(ClusterEquivTest, FaultRetryThenVanillaBitIdentical)
{
    FaultPlan plan;
    plan.seed = 99;
    plan.rule(FaultPoint::kClusterRestore).probability = 0.4;
    ClusterOptions opts;
    opts.fallback.mode = core::FallbackMode::kRetryThenVanilla;
    opts.fallback.max_attempts = 3;
    opts.fallback.backoff_sec = 0.05;
    opts.vanilla_cold_start_sec = 4.0;
    opts.idle_timeout_sec = 1.0;
    expectEnginesAgree(opts, toyProfile(2.0),
                       fig10Trace(5.0, 20250405ull), &plan);
}

TEST(ClusterEquivTest, FaultFailModeBitIdentical)
{
    FaultPlan plan;
    plan.seed = 7;
    plan.rule(FaultPoint::kClusterRestore).probability = 0.5;
    ClusterOptions opts;
    opts.fallback.mode = core::FallbackMode::kFail;
    opts.num_gpus = 2;
    expectEnginesAgree(opts, toyProfile(1.0),
                       fig10Trace(4.0, 20250406ull), &plan);
}

TEST(ClusterEquivTest, ArtifactCacheBitIdentical)
{
    ClusterOptions opts;
    opts.idle_timeout_sec = 0.5; // several cold starts share the cache
    expectEnginesAgree(opts, toyProfile(1.0),
                       fig10Trace(5.0, 20250407ull), nullptr,
                       /*with_cache=*/true);
}

TEST(ClusterEquivTest, SyntheticTraceBitIdentical)
{
    workload::SyntheticTraceOptions sopts;
    sopts.seed = 42;
    sopts.duration_sec = 60;
    sopts.requests_per_sec = 20;
    const auto trace = workload::generateSyntheticTrace(sopts);
    ASSERT_GT(trace.size(), 500u);
    ClusterOptions opts;
    opts.num_gpus = 8;
    expectEnginesAgree(opts, toyProfile(1.5), trace);
}

/**
 * The scale contract: the fast engine replays a million-request trace
 * deterministically — two runs from the same seed produce byte-equal
 * metric snapshots and identical latency sample streams.
 */
TEST(ClusterEquivTest, MillionRequestRunIsDeterministic)
{
    workload::SyntheticTraceOptions sopts;
    sopts.seed = 20250808;
    sopts.duration_sec = 400;
    sopts.requests_per_sec = 3000;
    sopts.max_requests = 1000000;
    // Short outputs keep the event count (and test wall time) bounded
    // while still exercising batching and reclaim.
    sopts.mean_output_tokens = 8;
    sopts.max_output_tokens = 64;
    const auto trace = workload::generateSyntheticTrace(sopts);
    ASSERT_EQ(trace.size(), 1000000u);

    ClusterOptions opts;
    opts.num_gpus = 2048;
    opts.idle_timeout_sec = 2.0;
    const ServingProfile p = toyProfile(1.0);

    TraceMetrics a = detail::simulateClusterFast(opts, p, trace);
    TraceMetrics b = detail::simulateClusterFast(opts, p, trace);

    EXPECT_EQ(a.completed, 1000000u);
    EXPECT_EQ(a.ttft_sec.samples(), b.ttft_sec.samples());
    EXPECT_EQ(a.e2e_sec.samples(), b.e2e_sec.samples());
    EXPECT_EQ(a.launch_sec.samples(), b.launch_sec.samples());
    EXPECT_EQ(a.gpu_seconds, b.gpu_seconds);
    EXPECT_EQ(a.sim_events, b.sim_events);
    EXPECT_EQ(a.metrics.toJson(), b.metrics.toJson());
    // A million requests on thousands of instances is well past any
    // plausible closure-loop regime. (Events stay close to the request
    // count because continuous batching amortizes step events across
    // the whole batch.)
    EXPECT_GT(a.sim_events, 1000000u);
    EXPECT_GT(a.peak_live_instances, 100u);
}

/**
 * Serve-mode parity (DESIGN.md §17): the same trace driven through the
 * serve-style Scheduler API — explicit submit() + advanceTo() with
 * live RequestHooks observing every token — must stay bit-identical to
 * simulateCluster(). Hooks are pure observations; attaching them may
 * not perturb a single float, span or metric.
 */
TEST(ClusterEquivTest, HookedSchedulerBitIdenticalToSimulateCluster)
{
    const ServingProfile p = toyProfile(2.0);
    const auto trace = fig10Trace(6.0, 20250406ull);

    ClusterOptions opts;
    const RunResult sim = runEngine(opts, p, trace, SimEngine::kFast);

    TraceRecorder rec;
    MetricsRegistry reg;
    ClusterOptions sopts;
    sopts.pipeline.trace = &rec;
    sopts.pipeline.metrics = &reg;
    sopts.profile = &p;

    u64 tokens = 0;
    u64 firsts = 0;
    u64 dones = 0;
    serve::RequestHooks hooks;
    hooks.on_first_token = [&](u32, f64) { ++firsts; };
    hooks.on_token = [&](u32, u32, f64) { ++tokens; };
    hooks.on_done = [&](u32, serve::RequestOutcome, f64) { ++dones; };

    const f64 horizon = trace.empty() ? 0 : trace.back().arrival_sec;
    serve::Scheduler sched(sopts, &hooks, horizon);
    std::size_t next = 0;
    for (;;) {
        if (next < trace.size() &&
            (sched.idle() ||
             trace[next].arrival_sec <= sched.peekTime())) {
            sched.advanceTo(trace[next].arrival_sec);
            sched.submit(trace[next]);
            ++next;
            continue;
        }
        if (sched.idle()) {
            break;
        }
        sched.step();
    }
    EXPECT_EQ(sched.submitted(), trace.size());
    EXPECT_EQ(sched.inFlight(), 0u);

    RunResult served;
    served.metrics = sched.finish();
    served.chrome_json = rec.toChromeJson();
    served.metrics_json = reg.toJson();
    expectBitIdentical(sim, served);

    // Hook-stream consistency: every request reached a terminal state,
    // every completion emitted a first token, and the token stream
    // carries at least one token per completion.
    EXPECT_EQ(dones, trace.size());
    EXPECT_EQ(firsts, served.metrics.completed);
    EXPECT_GE(tokens, served.metrics.completed);
}

// ---- chaos determinism suite (DESIGN.md §16) -----------------------------

/**
 * An empty (default-constructed) ChaosPlan and a default SloPolicy must
 * leave the fast engine BYTE-IDENTICAL to today's fault-free simulator:
 * same TraceMetrics, same metric-name set, same span stream. This is
 * the contract that lets chaos ship inside the hot path.
 */
TEST(ClusterChaosTest, EmptyPlanIsByteIdenticalToFaultFree)
{
    const ServingProfile p = toyProfile(1.5);
    const auto trace = fig10Trace(6.0, 20250801ull);
    ClusterOptions plain;
    plain.idle_timeout_sec = 1.0;
    ClusterOptions armed = plain;
    const ChaosPlan empty; // all mtbf = 0: enabled() is false
    armed.chaos = &empty;
    const RunResult a = runEngine(plain, p, trace, SimEngine::kFast);
    const RunResult b = runEngine(armed, p, trace, SimEngine::kFast);
    expectBitIdentical(a, b);
    EXPECT_EQ(a.metrics.sim_events, b.metrics.sim_events);
    // No chaos/SLO names may leak into the fault-free snapshot.
    EXPECT_EQ(b.metrics_json.find("cluster.chaos."), std::string::npos);
    EXPECT_EQ(b.metrics_json.find("cluster.slo."), std::string::npos);
}

/** Same (trace, plan, seed) ⇒ bit-identical everything, run after run. */
TEST(ClusterChaosTest, ArmedPlanIsDeterministic)
{
    const ServingProfile p = toyProfile(1.5);
    const auto trace = fig10Trace(8.0, 20250802ull);
    ChaosPlan plan;
    plan.seed = 77;
    plan.node_mtbf_sec = 20.0;
    plan.node_mttr_sec = 5.0;
    plan.inst_mtbf_sec = 10.0;
    plan.store_mtbf_sec = 30.0;
    plan.gray_mtbf_sec = 25.0;
    ClusterOptions opts;
    opts.num_gpus = 8;
    opts.gpus_per_node = 2;
    opts.node_artifact_miss_sec = 0.4;
    opts.chaos = &plan;
    opts.slo.default_ttft_sec = 15.0;
    opts.slo.admission_control = true;
    opts.slo.shed_on_deadline = true;
    const RunResult a = runEngine(opts, p, trace, SimEngine::kFast);
    const RunResult b = runEngine(opts, p, trace, SimEngine::kFast);
    EXPECT_EQ(a.metrics_json, b.metrics_json);
    EXPECT_EQ(a.chrome_json, b.chrome_json);
    EXPECT_EQ(a.metrics.ttft_sec.samples(), b.metrics.ttft_sec.samples());
    EXPECT_EQ(a.metrics.e2e_sec.samples(), b.metrics.e2e_sec.samples());
    EXPECT_EQ(a.metrics.gpu_seconds, b.metrics.gpu_seconds);
    // The plan actually fired (otherwise this suite proves nothing) and
    // every request reached exactly one terminal state.
    EXPECT_GT(a.metrics.instance_crashes + a.metrics.node_crashes, 0u);
    EXPECT_EQ(a.metrics.completed + a.metrics.shed_admission +
                  a.metrics.shed_deadline + a.metrics.failed_requests,
              trace.size());
}

/** A different chaos seed must perturb the failure schedule. */
TEST(ClusterChaosTest, SeedChangesSchedule)
{
    ChaosPlan plan;
    plan.node_mtbf_sec = 15.0;
    plan.inst_mtbf_sec = 7.0;
    const auto a = buildChaosSchedule(plan, 300.0);
    plan.seed ^= 0x1234;
    const auto b = buildChaosSchedule(plan, 300.0);
    ASSERT_FALSE(a.empty());
    ASSERT_FALSE(b.empty());
    bool differs = a.size() != b.size();
    for (std::size_t i = 0; !differs && i < a.size(); ++i) {
        differs = a[i].start_sec != b[i].start_sec;
    }
    EXPECT_TRUE(differs);
}

/** Policy runs must not disturb baseline metric names or results. */
TEST(ClusterEquivTest, BaselinePolicyMatchesLegacyMetricNames)
{
    ClusterOptions opts;
    const RunResult legacy = runEngine(opts, toyProfile(1.0),
                                       fig10Trace(3.0, 20250408ull),
                                       SimEngine::kLegacy);
    const RunResult fast = runEngine(opts, toyProfile(1.0),
                                     fig10Trace(3.0, 20250408ull),
                                     SimEngine::kFast);
    // Identical metric NAME SETS too: the baseline fast engine must not
    // leak policy counters into the snapshot.
    EXPECT_EQ(legacy.metrics_json, fast.metrics_json);
    EXPECT_EQ(fast.metrics.cold_pool_hits, 0u);
    EXPECT_EQ(fast.metrics.affinity_evictions, 0u);
}

} // namespace
} // namespace medusa::serverless
