/**
 * @file
 * Engine-equivalence suite for the cluster simulator (DESIGN.md §15):
 * the zero-allocation fast engine (cluster_fast.cc) must produce
 * BIT-IDENTICAL TraceMetrics, metric snapshots and Chrome trace streams
 * to the legacy std::function EventLoop (cluster.cc) on the paper's
 * fig10/§7.5 traces and on every feature the legacy loop supports —
 * hot spares, deferred capture, idle reclaim, fault injection with
 * every fallback mode, and the artifact cache. Plus: the fast engine's
 * own determinism at the million-request scale of the bench.
 *
 * sim_events is the one field deliberately excluded: the legacy loop
 * dispatches stale idle-timer tombstones that the fast engine cancels
 * outright (see TraceMetrics::sim_events).
 */

#include <gtest/gtest.h>

#include <optional>

#include "common/fault.h"
#include "medusa/artifact_cache.h"
#include "serverless/cluster.h"
#include "workload/synthetic.h"
#include "workload/trace.h"

namespace medusa::serverless {
namespace {

/** The toy profile of serverless_test.cc (easy arithmetic). */
ServingProfile
toyProfile(f64 cold_start = 2.0)
{
    ServingProfile p;
    p.model_name = "toy";
    p.strategy = llm::Strategy::kVllm;
    p.loading_sec = cold_start;
    p.cold_start_sec = cold_start;
    p.batch_sizes = {1, 10};
    p.decode_step_sec = {0.01, 0.10};
    p.prefill_tokens = {100, 1000};
    p.prefill_sec = {0.1, 1.0};
    return p;
}

/** One engine run with its own sinks and (optional) fault stream. */
struct RunResult
{
    TraceMetrics metrics;
    std::string chrome_json;
    std::string metrics_json;
};

RunResult
runEngine(ClusterOptions opts, const ServingProfile &profile,
          const std::vector<workload::Request> &trace, SimEngine engine,
          const FaultPlan *plan = nullptr,
          core::ArtifactCache *cache = nullptr)
{
    TraceRecorder rec;
    MetricsRegistry reg;
    std::optional<FaultInjector> injector;
    if (plan != nullptr) {
        injector.emplace(*plan);
        opts.pipeline.fault = &*injector;
    }
    opts.pipeline.trace = &rec;
    opts.pipeline.metrics = &reg;
    opts.artifact_cache = cache;
    opts.engine = engine;
    RunResult r;
    r.metrics = simulateCluster(opts, profile, trace);
    r.chrome_json = rec.toChromeJson();
    r.metrics_json = reg.toJson();
    return r;
}

/**
 * Bit-identity between the engines: exact == on every float (no
 * EXPECT_NEAR — the refactor preserves expression order, so results
 * must match to the last ulp).
 */
void
expectBitIdentical(const RunResult &legacy, const RunResult &fast)
{
    const TraceMetrics &a = legacy.metrics;
    const TraceMetrics &b = fast.metrics;
    EXPECT_EQ(a.ttft_sec.samples(), b.ttft_sec.samples());
    EXPECT_EQ(a.e2e_sec.samples(), b.e2e_sec.samples());
    EXPECT_EQ(a.launch_sec.samples(), b.launch_sec.samples());
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.cold_starts, b.cold_starts);
    EXPECT_EQ(a.achieved_qps, b.achieved_qps);
    EXPECT_EQ(a.makespan_sec, b.makespan_sec);
    EXPECT_EQ(a.gpu_seconds, b.gpu_seconds);
    EXPECT_EQ(a.artifact_loads, b.artifact_loads);
    EXPECT_EQ(a.artifact_cache_hits, b.artifact_cache_hits);
    EXPECT_EQ(a.restore_failures, b.restore_failures);
    EXPECT_EQ(a.fallback_cold_starts, b.fallback_cold_starts);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.wasted_restore_sec, b.wasted_restore_sec);
    EXPECT_EQ(a.instances_launched, b.instances_launched);
    EXPECT_EQ(a.peak_live_instances, b.peak_live_instances);
    EXPECT_EQ(legacy.metrics_json, fast.metrics_json);
    EXPECT_EQ(legacy.chrome_json, fast.chrome_json);
}

void
expectEnginesAgree(const ClusterOptions &opts,
                   const ServingProfile &profile,
                   const std::vector<workload::Request> &trace,
                   const FaultPlan *plan = nullptr,
                   bool with_cache = false)
{
    // Each run gets a fresh fault stream and artifact cache: both are
    // stateful in hit order, and the engines must consume them
    // identically.
    std::optional<core::ArtifactCache> legacy_cache;
    std::optional<core::ArtifactCache> fast_cache;
    ClusterOptions copts = opts;
    if (with_cache) {
        legacy_cache.emplace();
        fast_cache.emplace();
        copts.artifact_key = "toy";
        copts.artifact_loader = []() -> StatusOr<core::Artifact> {
            return core::Artifact{};
        };
        copts.artifact_miss_sec = 0.7;
    }
    const RunResult legacy =
        runEngine(copts, profile, trace, SimEngine::kLegacy, plan,
                  with_cache ? &*legacy_cache : nullptr);
    const RunResult fast =
        runEngine(copts, profile, trace, SimEngine::kFast, plan,
                  with_cache ? &*fast_cache : nullptr);
    expectBitIdentical(legacy, fast);
}

/** The fig10 bench's trace family (§7.5 replay statistics). */
std::vector<workload::Request>
fig10Trace(f64 rps, u64 seed, f64 duration_sec = 120)
{
    workload::TraceOptions topts;
    topts.requests_per_sec = rps;
    topts.duration_sec = duration_sec;
    topts.seed = seed;
    return workload::generateShareGptTrace(topts);
}

TEST(ClusterEquivTest, Fig10TracesBitIdentical)
{
    const ServingProfile p = toyProfile(2.0);
    for (const f64 rps : {2.0, 10.0}) {
        for (const u64 seed : {20250330ull, 20250331ull}) {
            ClusterOptions opts;
            expectEnginesAgree(opts, p, fig10Trace(rps, seed));
        }
    }
}

TEST(ClusterEquivTest, TightIdleTimeoutBitIdentical)
{
    ClusterOptions opts;
    opts.idle_timeout_sec = 0.5; // heavy reclaim/relaunch churn
    opts.num_gpus = 2;
    expectEnginesAgree(opts, toyProfile(1.0),
                       fig10Trace(6.0, 20250401ull));
}

TEST(ClusterEquivTest, HotSparesBitIdentical)
{
    ClusterOptions opts;
    opts.hot_spares = 2;
    opts.idle_timeout_sec = 2.0;
    expectEnginesAgree(opts, toyProfile(1.5),
                       fig10Trace(4.0, 20250402ull));
}

TEST(ClusterEquivTest, DeferredCaptureBitIdentical)
{
    ServingProfile p = toyProfile(1.0);
    p.deferred_capture = true;
    p.capture_penalty_sec = {0.5, 0.5};
    ClusterOptions opts;
    opts.max_seqs_per_instance = 8; // varied decode batch sizes
    expectEnginesAgree(opts, p, fig10Trace(8.0, 20250403ull));
}

TEST(ClusterEquivTest, SmallBatchBudgetBitIdentical)
{
    ClusterOptions opts;
    opts.max_batched_tokens = 200; // force multi-step prefill queues
    opts.max_seqs_per_instance = 4;
    expectEnginesAgree(opts, toyProfile(1.0),
                       fig10Trace(8.0, 20250404ull));
}

TEST(ClusterEquivTest, FaultRetryThenVanillaBitIdentical)
{
    FaultPlan plan;
    plan.seed = 99;
    plan.rule(FaultPoint::kClusterRestore).probability = 0.4;
    ClusterOptions opts;
    opts.fallback.mode = core::FallbackMode::kRetryThenVanilla;
    opts.fallback.max_attempts = 3;
    opts.fallback.backoff_sec = 0.05;
    opts.vanilla_cold_start_sec = 4.0;
    opts.idle_timeout_sec = 1.0;
    expectEnginesAgree(opts, toyProfile(2.0),
                       fig10Trace(5.0, 20250405ull), &plan);
}

TEST(ClusterEquivTest, FaultFailModeBitIdentical)
{
    FaultPlan plan;
    plan.seed = 7;
    plan.rule(FaultPoint::kClusterRestore).probability = 0.5;
    ClusterOptions opts;
    opts.fallback.mode = core::FallbackMode::kFail;
    opts.num_gpus = 2;
    expectEnginesAgree(opts, toyProfile(1.0),
                       fig10Trace(4.0, 20250406ull), &plan);
}

TEST(ClusterEquivTest, ArtifactCacheBitIdentical)
{
    ClusterOptions opts;
    opts.idle_timeout_sec = 0.5; // several cold starts share the cache
    expectEnginesAgree(opts, toyProfile(1.0),
                       fig10Trace(5.0, 20250407ull), nullptr,
                       /*with_cache=*/true);
}

TEST(ClusterEquivTest, SyntheticTraceBitIdentical)
{
    workload::SyntheticTraceOptions sopts;
    sopts.seed = 42;
    sopts.duration_sec = 60;
    sopts.requests_per_sec = 20;
    const auto trace = workload::generateSyntheticTrace(sopts);
    ASSERT_GT(trace.size(), 500u);
    ClusterOptions opts;
    opts.num_gpus = 8;
    expectEnginesAgree(opts, toyProfile(1.5), trace);
}

/**
 * The scale contract: the fast engine replays a million-request trace
 * deterministically — two runs from the same seed produce byte-equal
 * metric snapshots and identical latency sample streams.
 */
TEST(ClusterEquivTest, MillionRequestRunIsDeterministic)
{
    workload::SyntheticTraceOptions sopts;
    sopts.seed = 20250808;
    sopts.duration_sec = 400;
    sopts.requests_per_sec = 3000;
    sopts.max_requests = 1000000;
    // Short outputs keep the event count (and test wall time) bounded
    // while still exercising batching and reclaim.
    sopts.mean_output_tokens = 8;
    sopts.max_output_tokens = 64;
    const auto trace = workload::generateSyntheticTrace(sopts);
    ASSERT_EQ(trace.size(), 1000000u);

    ClusterOptions opts;
    opts.num_gpus = 2048;
    opts.idle_timeout_sec = 2.0;
    const ServingProfile p = toyProfile(1.0);

    TraceMetrics a = detail::simulateClusterFast(opts, p, trace);
    TraceMetrics b = detail::simulateClusterFast(opts, p, trace);
    EXPECT_EQ(a.completed, 1000000u);
    EXPECT_EQ(a.ttft_sec.samples(), b.ttft_sec.samples());
    EXPECT_EQ(a.e2e_sec.samples(), b.e2e_sec.samples());
    EXPECT_EQ(a.launch_sec.samples(), b.launch_sec.samples());
    EXPECT_EQ(a.gpu_seconds, b.gpu_seconds);
    EXPECT_EQ(a.sim_events, b.sim_events);
    EXPECT_EQ(a.metrics.toJson(), b.metrics.toJson());
    // A million requests on thousands of instances is well past any
    // plausible closure-loop regime. (Events stay close to the request
    // count because continuous batching amortizes step events across
    // the whole batch.)
    EXPECT_GT(a.sim_events, 1000000u);
    EXPECT_GT(a.peak_live_instances, 100u);
}

/** Policy runs must not disturb baseline metric names or results. */
TEST(ClusterEquivTest, BaselinePolicyMatchesLegacyMetricNames)
{
    ClusterOptions opts;
    const RunResult legacy = runEngine(opts, toyProfile(1.0),
                                       fig10Trace(3.0, 20250408ull),
                                       SimEngine::kLegacy);
    const RunResult fast = runEngine(opts, toyProfile(1.0),
                                     fig10Trace(3.0, 20250408ull),
                                     SimEngine::kFast);
    // Identical metric NAME SETS too: the baseline fast engine must not
    // leak policy counters into the snapshot.
    EXPECT_EQ(legacy.metrics_json, fast.metrics_json);
    EXPECT_EQ(fast.metrics.cold_pool_hits, 0u);
    EXPECT_EQ(fast.metrics.affinity_evictions, 0u);
}

} // namespace
} // namespace medusa::serverless
