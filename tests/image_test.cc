/**
 * @file
 * The v6 materialized image (DESIGN.md §13): round-trip from an
 * artifact, zero-copy open, relocation-patch restore determinism and
 * fidelity against the v5 graph-rebuild path, v5→v6 migration
 * byte-identity, and rejection of truncated, bit-flipped and
 * misaligned buffers.
 */

#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "common/fault.h"
#include "common/serialize.h"
#include "llm/engine.h"
#include "medusa/image.h"
#include "medusa/offline.h"
#include "medusa/restore.h"

namespace medusa {
namespace {

using core::Artifact;
using core::ImageReadOptions;
using core::MaterializedImage;
using core::MedusaEngine;
using core::OfflineOptions;
using core::materialize;
using llm::findModel;
using llm::ModelConfig;

ModelConfig
tinyModel()
{
    ModelConfig m = findModel("Qwen1.5-0.5B").value();
    m.num_layers = 4;
    return m;
}

struct Fixture
{
    Artifact artifact;
    std::vector<u8> image_bytes;
};

/** One shared offline run for the whole suite. */
const Fixture &
shared()
{
    static const Fixture f = []() {
        OfflineOptions opts;
        opts.model = tinyModel();
        opts.pipeline.validate = false;
        auto result = materialize(opts).value();
        return Fixture{std::move(result.artifact),
                       std::move(result.image_bytes)};
    }();
    return f;
}

StatusOr<std::unique_ptr<MedusaEngine>>
patchColdStart(const MaterializedImage &image, u64 aslr_seed = 2)
{
    MedusaEngine::Options opts;
    opts.model = tinyModel();
    opts.aslr_seed = aslr_seed;
    return MedusaEngine::coldStartFromImage(opts, image);
}

// ---- round trip ---------------------------------------------------------

TEST(ImageTest, RoundTripMatchesArtifact)
{
    const Fixture &f = shared();
    auto image =
        MaterializedImage::openView(std::span<const u8>(f.image_bytes));
    ASSERT_TRUE(image.isOk()) << image.status().toString();

    EXPECT_EQ(image->model_name, f.artifact.model_name);
    EXPECT_EQ(image->model_seed, f.artifact.model_seed);
    EXPECT_EQ(image->free_gpu_memory, f.artifact.free_gpu_memory);
    EXPECT_EQ(image->ops.size(), f.artifact.ops.size());
    EXPECT_EQ(image->graphs.size(), f.artifact.graphs.size());
    EXPECT_EQ(image->total_nodes, f.artifact.totalNodes());
    EXPECT_EQ(image->permanent.size(), f.artifact.permanent.size());
    EXPECT_EQ(image->serialized_size, f.image_bytes.size());
    EXPECT_FALSE(image->kernel_table.empty());
    EXPECT_FALSE(image->tokenizer_merges.empty());
    // A real model has pointer params in every graph: the relocation
    // table cannot be empty, and the slot template must cover every
    // node's function slot plus every param slot.
    EXPECT_GT(image->data_relocs.size(), 0u);
    EXPECT_GT(image->kernel_relocs.size(), 0u);
    u64 slots = 0;
    for (const auto &g : image->graphs) {
        slots += static_cast<u64>(g.node_count) + g.param_len.size();
        EXPECT_EQ(g.order.size(), g.node_count);
        EXPECT_EQ(g.param_begin.size(), g.node_count + 1u);
    }
    EXPECT_EQ(image->patch_template.size(), slots);
}

TEST(ImageTest, OwningOpenEqualsView)
{
    const Fixture &f = shared();
    std::vector<u8> copy = f.image_bytes;
    auto owned = MaterializedImage::open(std::move(copy));
    ASSERT_TRUE(owned.isOk()) << owned.status().toString();
    EXPECT_EQ(owned->model_name, f.artifact.model_name);
    EXPECT_EQ(owned->total_nodes, f.artifact.totalNodes());

    // Moving the image must keep its spans valid (they point into the
    // adopted buffer, whose heap allocation is move-stable).
    MaterializedImage moved = std::move(*owned);
    EXPECT_EQ(moved.total_nodes, f.artifact.totalNodes());
    EXPECT_FALSE(moved.patch_template.empty());
}

TEST(ImageTest, OpenFileMapsReadOnly)
{
    const Fixture &f = shared();
    const std::string path =
        ::testing::TempDir() + "image_test_mmap.mdsi";
    ASSERT_TRUE(writeFile(path, f.image_bytes).isOk());

    auto mapped = MaterializedImage::openFile(path);
    ASSERT_TRUE(mapped.isOk()) << mapped.status().toString();
    EXPECT_TRUE(mapped->isMapped());
    EXPECT_EQ(mapped->model_name, f.artifact.model_name);
    EXPECT_EQ(mapped->serialized_size, f.image_bytes.size());
    EXPECT_EQ(mapped->total_nodes, f.artifact.totalNodes());

    // The mapping stays valid across a move of the image.
    MaterializedImage moved = std::move(*mapped);
    EXPECT_TRUE(moved.isMapped());
    EXPECT_FALSE(moved.patch_template.empty());

    // A mapped image drives the patch restore like an in-memory one.
    auto engine = patchColdStart(moved, 41);
    ASSERT_TRUE(engine.isOk()) << engine.status().toString();

    auto missing = MaterializedImage::openFile(path + ".nope");
    EXPECT_FALSE(missing.isOk());
}

TEST(ImageTest, OpenFileReadFallbackMatchesMapped)
{
    const Fixture &f = shared();
    const std::string path =
        ::testing::TempDir() + "image_test_read.mdsi";
    ASSERT_TRUE(writeFile(path, f.image_bytes).isOk());

    ImageReadOptions ropts;
    ropts.use_mmap = false; // the fallback path, forced
    auto read = MaterializedImage::openFile(path, ropts);
    ASSERT_TRUE(read.isOk()) << read.status().toString();
    EXPECT_FALSE(read->isMapped());

    auto mapped = MaterializedImage::openFile(path);
    ASSERT_TRUE(mapped.isOk());
    EXPECT_EQ(read->model_name, mapped->model_name);
    EXPECT_EQ(read->total_nodes, mapped->total_nodes);
    EXPECT_EQ(read->data_relocs.size(), mapped->data_relocs.size());
    EXPECT_EQ(read->kernel_relocs.size(), mapped->kernel_relocs.size());
    EXPECT_EQ(read->patch_template.size(),
              mapped->patch_template.size());

    // Both paths restore to the same process state.
    auto a = patchColdStart(*read, 43);
    auto b = patchColdStart(*mapped, 43);
    ASSERT_TRUE(a.isOk()) << a.status().toString();
    ASSERT_TRUE(b.isOk()) << b.status().toString();
    EXPECT_EQ((*a)->runtime().process().stateFingerprint(),
              (*b)->runtime().process().stateFingerprint());
}

// ---- relocation-patch restore: determinism + fidelity -------------------

TEST(ImageTest, PatchRestoreIsDeterministic)
{
    const Fixture &f = shared();
    auto image =
        MaterializedImage::openView(std::span<const u8>(f.image_bytes));
    ASSERT_TRUE(image.isOk());

    auto first = patchColdStart(*image, 77);
    auto second = patchColdStart(*image, 77);
    ASSERT_TRUE(first.isOk()) << first.status().toString();
    ASSERT_TRUE(second.isOk()) << second.status().toString();

    EXPECT_EQ((*first)->runtime().process().stateFingerprint(),
              (*second)->runtime().process().stateFingerprint());
    EXPECT_EQ((*first)->runtime().allocator().stateFingerprint(),
              (*second)->runtime().allocator().stateFingerprint());
    EXPECT_EQ((*first)->coldStartReport().restore.relocations_applied,
              (*second)->coldStartReport().restore.relocations_applied);
    EXPECT_EQ((*first)->coldStartReport().restore.graphs_patched,
              (*second)->coldStartReport().restore.graphs_patched);
}

TEST(ImageTest, PatchRestoreFingerprintAndLogitsMatchRebuildPath)
{
    const Fixture &f = shared();
    auto image =
        MaterializedImage::openView(std::span<const u8>(f.image_bytes));
    ASSERT_TRUE(image.isOk());

    constexpr u64 kSeed = 99;
    MedusaEngine::Options opts;
    opts.model = tinyModel();
    opts.aslr_seed = kSeed;
    auto rebuild = MedusaEngine::coldStart(opts, f.artifact);
    auto patch = patchColdStart(*image, kSeed);
    ASSERT_TRUE(rebuild.isOk()) << rebuild.status().toString();
    ASSERT_TRUE(patch.isOk()) << patch.status().toString();

    llm::ModelRuntime &a = (*rebuild)->runtime();
    llm::ModelRuntime &b = (*patch)->runtime();
    // Identical logical state: memory, modules, allocator and launch
    // counters. The full fingerprint is excluded on purpose — it hashes
    // stream completion times, and the patch path legitimately lands at
    // an earlier simulated clock (that is the whole point).
    EXPECT_EQ(a.process().logicalStateFingerprint(),
              b.process().logicalStateFingerprint());
    EXPECT_EQ(a.process().memory().stateFingerprint(),
              b.process().memory().stateFingerprint());
    EXPECT_EQ(a.process().modules().stateFingerprint(),
              b.process().modules().stateFingerprint());
    EXPECT_EQ(a.allocator().stateFingerprint(),
              b.allocator().stateFingerprint());
    EXPECT_LT(b.clock().nowSec(), a.clock().nowSec());

    // The patch report counts per-unique-kernel resolution and
    // relocations instead of per-node rebuild work.
    const core::RestoreReport &pr = (*patch)->coldStartReport().restore;
    EXPECT_EQ(pr.graphs_patched, f.artifact.graphs.size());
    EXPECT_EQ(pr.nodes_restored, f.artifact.totalNodes());
    EXPECT_GT(pr.relocations_applied, 0u);
    EXPECT_GT(pr.kernels_resolved, 0u);

    for (u32 bs : {1u, 4u}) {
        ASSERT_TRUE(a.stageValidationState(bs).isOk());
        ASSERT_TRUE(b.stageValidationState(bs).isOk());
        auto la = a.graphDecodeLogits(bs);
        auto lb = b.graphDecodeLogits(bs);
        ASSERT_TRUE(la.isOk());
        ASSERT_TRUE(lb.isOk());
        EXPECT_EQ(*la, *lb) << "bs=" << bs; // bit-identical
    }
}

// ---- v5 -> v6 migration -------------------------------------------------

TEST(ImageTest, MigrationFromSerializedV5IsByteIdentical)
{
    const Fixture &f = shared();
    auto image =
        MaterializedImage::openView(std::span<const u8>(f.image_bytes));
    ASSERT_TRUE(image.isOk());

    // v5 round trip, then flatten the deserialized artifact: the image
    // must come out byte-identical to the one the offline phase
    // emitted from the in-memory artifact.
    const std::vector<u8> v5 = f.artifact.serialize();
    auto artifact = Artifact::deserialize(v5);
    ASSERT_TRUE(artifact.isOk()) << artifact.status().toString();
    auto migrated =
        core::buildImageBytes(*artifact, image->tokenizer_merges);
    ASSERT_TRUE(migrated.isOk()) << migrated.status().toString();
    EXPECT_EQ(*migrated, f.image_bytes);
}

// ---- corruption rejection -----------------------------------------------

TEST(ImageTest, TruncationAnywhereFails)
{
    const Fixture &f = shared();
    for (std::size_t keep :
         {std::size_t{0}, std::size_t{8}, std::size_t{23},
          std::size_t{200}, f.image_bytes.size() / 2,
          f.image_bytes.size() - 1}) {
        std::vector<u8> cut(f.image_bytes.begin(),
                            f.image_bytes.begin() +
                                static_cast<std::ptrdiff_t>(keep));
        auto image =
            MaterializedImage::openView(std::span<const u8>(cut));
        EXPECT_FALSE(image.isOk()) << "kept " << keep << " bytes";
    }
}

TEST(ImageTest, BitFlipAnywhereFailsCrc)
{
    const Fixture &f = shared();
    const std::size_t header = 24;
    for (std::size_t pos :
         {header, header + 1000, f.image_bytes.size() / 2,
          f.image_bytes.size() - 1}) {
        std::vector<u8> corrupt = f.image_bytes;
        corrupt[pos] ^= 0x40;
        auto image =
            MaterializedImage::openView(std::span<const u8>(corrupt));
        ASSERT_FALSE(image.isOk()) << "flipped byte " << pos;
        EXPECT_EQ(image.status().code(), StatusCode::kInternal)
            << image.status().toString();
        EXPECT_NE(image.status().message().find("CRC32"),
                  std::string::npos);
    }
}

TEST(ImageTest, MagicAndVersionMismatchRejected)
{
    const Fixture &f = shared();
    std::vector<u8> wrong_magic = f.image_bytes;
    wrong_magic[0] ^= 0xff;
    auto a =
        MaterializedImage::openView(std::span<const u8>(wrong_magic));
    ASSERT_FALSE(a.isOk());
    EXPECT_NE(a.status().message().find("magic"), std::string::npos);

    std::vector<u8> wrong_version = f.image_bytes;
    wrong_version[4] ^= 0x01;
    auto b =
        MaterializedImage::openView(std::span<const u8>(wrong_version));
    ASSERT_FALSE(b.isOk());
    EXPECT_NE(b.status().message().find("version"), std::string::npos);
}

TEST(ImageTest, MisalignedBufferRejected)
{
    const Fixture &f = shared();
    std::vector<u8> shifted(f.image_bytes.size() + 1);
    std::copy(f.image_bytes.begin(), f.image_bytes.end(),
              shifted.begin() + 1);
    auto image = MaterializedImage::openView(
        std::span<const u8>(shifted.data() + 1, f.image_bytes.size()));
    ASSERT_FALSE(image.isOk());
    EXPECT_EQ(image.status().code(), StatusCode::kInvalidArgument);
}

TEST(ImageTest, OpenFaultInjectable)
{
    const Fixture &f = shared();
    auto plan = FaultPlan::fromSpec("image_open");
    ASSERT_TRUE(plan.isOk());
    FaultInjector injector(*plan);
    ImageReadOptions opts;
    opts.fault = &injector;
    auto image = MaterializedImage::openView(
        std::span<const u8>(f.image_bytes), opts);
    ASSERT_FALSE(image.isOk());
    EXPECT_EQ(image.status().code(), StatusCode::kFaultInjected);
}

} // namespace
} // namespace medusa
