/**
 * @file
 * Tests of the zero-allocation EventEngine (DESIGN.md §15): (time, seq)
 * dispatch order, O(log n) cancellation and reschedule, slab recycling
 * with generation-guarded handles, and a randomized stress run checked
 * against the legacy EventLoop as the ordering oracle.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "serverless/event_engine.h"
#include "serverless/event_sim.h"

namespace medusa::serverless {
namespace {

/** The payload every test uses: an id to record dispatch order. */
struct Tag
{
    int id = 0;
};

using Engine = EventEngine<Tag>;

std::vector<int>
drain(Engine &engine)
{
    std::vector<int> order;
    engine.run([&](const Tag &t) { order.push_back(t.id); });
    return order;
}

TEST(EventEngineTest, RunsInTimeOrder)
{
    Engine engine;
    engine.schedule(3.0, Tag{3});
    engine.schedule(1.0, Tag{1});
    engine.schedule(2.0, Tag{2});
    EXPECT_EQ(drain(engine), (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(engine.now(), 3.0);
    EXPECT_EQ(engine.dispatched(), 3u);
}

TEST(EventEngineTest, SameTimeIsFifo)
{
    Engine engine;
    for (int i = 0; i < 16; ++i) {
        engine.schedule(1.0, Tag{i});
    }
    std::vector<int> expect;
    for (int i = 0; i < 16; ++i) {
        expect.push_back(i);
    }
    EXPECT_EQ(drain(engine), expect);
}

TEST(EventEngineTest, HandlersCanScheduleMore)
{
    Engine engine;
    std::vector<int> order;
    engine.schedule(1.0, Tag{1});
    engine.run([&](const Tag &t) {
        order.push_back(t.id);
        if (t.id == 1) {
            engine.scheduleAfter(0.5, Tag{2});
        }
    });
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_DOUBLE_EQ(engine.now(), 1.5);
}

TEST(EventEngineTest, CancelRemovesPendingEvent)
{
    Engine engine;
    engine.schedule(1.0, Tag{1});
    const EventHandle h = engine.schedule(2.0, Tag{2});
    engine.schedule(3.0, Tag{3});
    EXPECT_TRUE(engine.alive(h));
    EXPECT_TRUE(engine.cancel(h));
    EXPECT_FALSE(engine.alive(h));
    EXPECT_FALSE(engine.cancel(h)); // second cancel is a no-op
    EXPECT_EQ(drain(engine), (std::vector<int>{1, 3}));
}

TEST(EventEngineTest, CancelDefaultHandleIsNoop)
{
    Engine engine;
    EXPECT_FALSE(engine.cancel(EventHandle{}));
    EXPECT_FALSE(engine.alive(EventHandle{}));
}

TEST(EventEngineTest, StaleHandleAfterSlotRecycleIsNoop)
{
    Engine engine;
    const EventHandle h = engine.schedule(1.0, Tag{1});
    EXPECT_TRUE(engine.cancel(h));
    // The slot is recycled by the next schedule; the old handle's
    // generation no longer matches and must not cancel the new event.
    engine.schedule(2.0, Tag{2});
    EXPECT_FALSE(engine.cancel(h));
    EXPECT_EQ(drain(engine), (std::vector<int>{2}));
}

TEST(EventEngineTest, HandleGoesStaleAfterDispatch)
{
    Engine engine;
    const EventHandle h = engine.schedule(1.0, Tag{1});
    EXPECT_EQ(drain(engine), (std::vector<int>{1}));
    EXPECT_FALSE(engine.alive(h));
    EXPECT_FALSE(engine.cancel(h));
}

TEST(EventEngineTest, ReschedulePreservesSeqRank)
{
    Engine engine;
    // a scheduled first (lower seq), then b; moving a to b's time must
    // keep a ahead of b (FIFO by original seq, the decrease-key
    // contract).
    const EventHandle a = engine.schedule(5.0, Tag{1});
    engine.schedule(2.0, Tag{2});
    EXPECT_TRUE(engine.reschedule(a, 2.0));
    EXPECT_EQ(drain(engine), (std::vector<int>{1, 2}));
    // Rescheduling a dispatched event is a no-op.
    EXPECT_FALSE(engine.reschedule(a, 9.0));
}

TEST(EventEngineTest, SlabReusesSlots)
{
    Engine engine;
    for (int round = 0; round < 100; ++round) {
        engine.schedule(round + 1.0, Tag{round});
        engine.run([](const Tag &) {});
    }
    // One pending event at a time: the slab never grows past the
    // high-water mark of concurrently pending events.
    EXPECT_EQ(engine.slabSize(), 1u);
}

TEST(EventEngineTest, AdvanceToMovesClockWithoutDispatch)
{
    Engine engine;
    engine.advanceTo(4.0);
    EXPECT_DOUBLE_EQ(engine.now(), 4.0);
    engine.schedule(5.0, Tag{1});
    EXPECT_DOUBLE_EQ(engine.peekTime(), 5.0);
    EXPECT_EQ(engine.pending(), 1u);
    EXPECT_EQ(drain(engine), (std::vector<int>{1}));
}

/**
 * Randomized oracle test: a mixed schedule/cancel workload replayed on
 * the engine and on the legacy EventLoop (cancellation emulated by
 * tombstoning) must dispatch identical id sequences.
 */
TEST(EventEngineTest, StressMatchesLegacyEventLoop)
{
    Rng rng(20250808);
    Engine engine;
    EventLoop loop;
    std::vector<int> engine_order;
    std::vector<int> loop_order;
    std::vector<EventHandle> handles;
    std::vector<bool> cancelled(4096, false);
    int next_id = 0;

    // Seed both queues with the same (time, id) stream.
    for (int i = 0; i < 1000; ++i) {
        const f64 at = rng.nextDouble() * 100.0;
        const int id = next_id++;
        handles.push_back(engine.schedule(at, Tag{id}));
        loop.schedule(at, [&, id]() {
            if (!cancelled[static_cast<std::size_t>(id)]) {
                loop_order.push_back(id);
            }
        });
    }
    // Cancel a random subset before running.
    for (int i = 0; i < 300; ++i) {
        const u64 pick = rng.nextBounded(handles.size());
        if (engine.cancel(handles[pick])) {
            cancelled[pick] = true;
        }
    }
    engine.run([&](const Tag &t) { engine_order.push_back(t.id); });
    loop.run();
    EXPECT_EQ(engine_order, loop_order);
}

} // namespace
} // namespace medusa::serverless
