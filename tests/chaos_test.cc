/**
 * @file
 * Chaos-layer suite (DESIGN.md §16): ChaosPlan parsing in all three
 * forms (spec string, JSON, environment), the deterministic failure
 * schedule built from it, and the fast engine's behavior under every
 * failure class — instance crashes that requeue in-flight work, node
 * crashes that drop artifact residency, store outages that stall or
 * degrade launches, gray windows that slow fetches — plus the SLO
 * policy knobs (admission control, deadline shedding, bounded retry,
 * degrade-to-vanilla) and the request-conservation invariant that every
 * request ends in exactly one terminal state.
 *
 * The threaded determinism test at the bottom doubles as the TSan
 * target for the crash-requeue path (scripts/check.sh runs this binary
 * under ThreadSanitizer).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>

#include "serverless/chaos.h"
#include "serverless/cluster.h"
#include "workload/trace.h"

namespace medusa::serverless {
namespace {

/** The toy profile of serverless_test.cc (easy arithmetic). */
ServingProfile
toyProfile(f64 cold_start = 2.0)
{
    ServingProfile p;
    p.model_name = "toy";
    p.strategy = llm::Strategy::kVllm;
    p.loading_sec = cold_start;
    p.cold_start_sec = cold_start;
    p.batch_sizes = {1, 10};
    p.decode_step_sec = {0.01, 0.10};
    p.prefill_tokens = {100, 1000};
    p.prefill_sec = {0.1, 1.0};
    return p;
}

/** Sets options.profile and calls the public simulateCluster entry. */
TraceMetrics
runCluster(ClusterOptions opts, const ServingProfile &profile,
           const std::vector<workload::Request> &trace)
{
    opts.profile = &profile;
    return simulateCluster(opts, trace);
}

/** n requests, gap seconds apart, cycling over num_models model ids. */
std::vector<workload::Request>
makeTrace(u32 n, f64 gap, u16 num_models = 1, f64 deadline = 0)
{
    std::vector<workload::Request> trace;
    trace.reserve(n);
    for (u32 i = 0; i < n; ++i) {
        workload::Request r;
        r.arrival_sec = i * gap;
        r.prompt_tokens = 100;
        r.output_tokens = 20;
        r.model_id = static_cast<u16>(i % num_models);
        r.ttft_deadline_sec = deadline;
        trace.push_back(r);
    }
    return trace;
}

/** completed + shed + failed must equal the trace size. */
void
expectConserved(const TraceMetrics &m, std::size_t trace_size)
{
    EXPECT_EQ(m.completed + m.shed_admission + m.shed_deadline +
                  m.failed_requests,
              trace_size);
}

// ---- plan parsing --------------------------------------------------------

TEST(ChaosPlanTest, ParsesSpecForm)
{
    auto plan = ChaosPlan::fromSpec(
        "seed=9;node_mtbf=20;node_mttr=4;inst_mtbf=7;store_mtbf=30;"
        "store_mttr=2;gray_mtbf=40;gray_mttr=6;gray_slowdown=8;"
        "horizon=500");
    ASSERT_TRUE(plan.isOk()) << plan.status().message();
    EXPECT_EQ(plan.value().seed, 9u);
    EXPECT_DOUBLE_EQ(plan.value().node_mtbf_sec, 20.0);
    EXPECT_DOUBLE_EQ(plan.value().node_mttr_sec, 4.0);
    EXPECT_DOUBLE_EQ(plan.value().inst_mtbf_sec, 7.0);
    EXPECT_DOUBLE_EQ(plan.value().store_mtbf_sec, 30.0);
    EXPECT_DOUBLE_EQ(plan.value().store_mttr_sec, 2.0);
    EXPECT_DOUBLE_EQ(plan.value().gray_mtbf_sec, 40.0);
    EXPECT_DOUBLE_EQ(plan.value().gray_mttr_sec, 6.0);
    EXPECT_DOUBLE_EQ(plan.value().gray_slowdown, 8.0);
    EXPECT_DOUBLE_EQ(plan.value().horizon_sec, 500.0);
    EXPECT_TRUE(plan.value().enabled());
}

TEST(ChaosPlanTest, DefaultPlanIsDisabled)
{
    const ChaosPlan plan;
    EXPECT_FALSE(plan.enabled());
    // mttr/slowdown knobs alone do not arm anything.
    ChaosPlan knobs;
    knobs.node_mttr_sec = 99;
    knobs.gray_slowdown = 16;
    EXPECT_FALSE(knobs.enabled());
}

TEST(ChaosPlanTest, DuplicateKeyIsAnError)
{
    auto dup = ChaosPlan::fromSpec("node_mtbf=20;node_mtbf=30");
    ASSERT_FALSE(dup.isOk());
    EXPECT_NE(dup.status().message().find("duplicate"),
              std::string::npos);
    EXPECT_NE(dup.status().message().find("node_mtbf"),
              std::string::npos);

    auto dup_seed = ChaosPlan::fromSpec("seed=1;seed=2");
    ASSERT_FALSE(dup_seed.isOk());
    EXPECT_NE(dup_seed.status().message().find("duplicate"),
              std::string::npos);

    auto dup_json = ChaosPlan::fromJson(
        "{\"inst_mtbf_sec\": 5, \"inst_mtbf_sec\": 6}");
    ASSERT_FALSE(dup_json.isOk());
    EXPECT_NE(dup_json.status().message().find("duplicate"),
              std::string::npos);
}

TEST(ChaosPlanTest, UnknownKeyErrorListsValidKeys)
{
    auto bad = ChaosPlan::fromSpec("bogus_knob=1");
    ASSERT_FALSE(bad.isOk());
    const std::string &msg = bad.status().message();
    EXPECT_NE(msg.find("bogus_knob"), std::string::npos);
    // The error enumerates the valid key set so typos self-diagnose.
    EXPECT_NE(msg.find("seed"), std::string::npos);
    EXPECT_NE(msg.find("node_mtbf"), std::string::npos);
    EXPECT_NE(msg.find("gray_slowdown"), std::string::npos);
}

TEST(ChaosPlanTest, RejectsBadValues)
{
    EXPECT_FALSE(ChaosPlan::fromSpec("node_mtbf=-1").isOk());
    EXPECT_FALSE(ChaosPlan::fromSpec("gray_slowdown=0.5").isOk());
    EXPECT_FALSE(ChaosPlan::fromSpec("inst_mtbf=abc").isOk());
    EXPECT_FALSE(ChaosPlan::fromSpec("node_mtbf").isOk());
    EXPECT_FALSE(ChaosPlan::fromSpec("=3").isOk());
    EXPECT_FALSE(ChaosPlan::fromSpec("seed=zzz").isOk());
}

TEST(ChaosPlanTest, ParsesJsonForm)
{
    auto plan = ChaosPlan::fromJson(
        "{\"seed\": 3, \"node_mtbf_sec\": 12, \"store_mtbf_sec\": 44,"
        " \"gray_slowdown\": 2.5}");
    ASSERT_TRUE(plan.isOk()) << plan.status().message();
    EXPECT_EQ(plan.value().seed, 3u);
    EXPECT_DOUBLE_EQ(plan.value().node_mtbf_sec, 12.0);
    EXPECT_DOUBLE_EQ(plan.value().store_mtbf_sec, 44.0);
    EXPECT_DOUBLE_EQ(plan.value().gray_slowdown, 2.5);
    EXPECT_FALSE(ChaosPlan::fromJson("{\"nope\": 1}").isOk());
    EXPECT_FALSE(ChaosPlan::fromJson("[1]").isOk());
}

TEST(ChaosPlanTest, SpecRoundTrips)
{
    ChaosPlan plan;
    plan.seed = 1234;
    plan.inst_mtbf_sec = 6.5;
    plan.store_mtbf_sec = 90;
    plan.gray_slowdown = 3;
    auto back = ChaosPlan::fromSpec(plan.toSpec());
    ASSERT_TRUE(back.isOk()) << back.status().message();
    EXPECT_EQ(back.value().seed, plan.seed);
    EXPECT_DOUBLE_EQ(back.value().inst_mtbf_sec, plan.inst_mtbf_sec);
    EXPECT_DOUBLE_EQ(back.value().store_mtbf_sec, plan.store_mtbf_sec);
    EXPECT_DOUBLE_EQ(back.value().gray_slowdown, plan.gray_slowdown);
    EXPECT_DOUBLE_EQ(back.value().node_mtbf_sec, 0.0);
}

TEST(ChaosPlanTest, FromEnvReadsSpecJsonAndSeedOverride)
{
    ::unsetenv("MEDUSA_CHAOS_PLAN");
    ::unsetenv("MEDUSA_CHAOS_SEED");
    auto none = ChaosPlan::fromEnv();
    ASSERT_TRUE(none.isOk());
    EXPECT_FALSE(none.value().has_value());

    ::setenv("MEDUSA_CHAOS_PLAN", "seed=5;inst_mtbf=8", 1);
    auto spec = ChaosPlan::fromEnv();
    ASSERT_TRUE(spec.isOk());
    ASSERT_TRUE(spec.value().has_value());
    EXPECT_EQ(spec.value()->seed, 5u);
    EXPECT_DOUBLE_EQ(spec.value()->inst_mtbf_sec, 8.0);

    ::setenv("MEDUSA_CHAOS_PLAN", "{\"node_mtbf_sec\": 33}", 1);
    ::setenv("MEDUSA_CHAOS_SEED", "42", 1);
    auto json = ChaosPlan::fromEnv();
    ASSERT_TRUE(json.isOk());
    ASSERT_TRUE(json.value().has_value());
    EXPECT_DOUBLE_EQ(json.value()->node_mtbf_sec, 33.0);
    EXPECT_EQ(json.value()->seed, 42u);

    ::setenv("MEDUSA_CHAOS_PLAN", "garbage", 1);
    EXPECT_FALSE(ChaosPlan::fromEnv().isOk());

    ::unsetenv("MEDUSA_CHAOS_PLAN");
    ::unsetenv("MEDUSA_CHAOS_SEED");
}

// ---- failure schedule ----------------------------------------------------

TEST(ChaosScheduleTest, DeterministicAndSorted)
{
    ChaosPlan plan;
    plan.seed = 11;
    plan.node_mtbf_sec = 25;
    plan.inst_mtbf_sec = 9;
    plan.store_mtbf_sec = 60;
    plan.gray_mtbf_sec = 45;
    const auto a = buildChaosSchedule(plan, 600.0);
    const auto b = buildChaosSchedule(plan, 600.0);
    ASSERT_FALSE(a.empty());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_EQ(a[i].start_sec, b[i].start_sec);
        EXPECT_EQ(a[i].end_sec, b[i].end_sec);
        EXPECT_EQ(a[i].draw, b[i].draw);
        if (i > 0) {
            EXPECT_LE(a[i - 1].start_sec, a[i].start_sec);
        }
        EXPECT_LT(a[i].start_sec, 600.0);
        if (a[i].kind == ChaosEvent::Kind::kInstanceCrash) {
            EXPECT_EQ(a[i].end_sec, a[i].start_sec);
        } else {
            // Failure windows have a strictly positive duration.
            EXPECT_GT(a[i].end_sec, a[i].start_sec);
        }
    }
}

/**
 * Each failure class draws from its own seeded stream, so enabling one
 * class never perturbs another's timeline — the property that makes
 * "same plan plus node crashes" a controlled experiment.
 */
TEST(ChaosScheduleTest, FailureClassStreamsAreIndependent)
{
    ChaosPlan inst_only;
    inst_only.seed = 21;
    inst_only.inst_mtbf_sec = 10;
    ChaosPlan both = inst_only;
    both.node_mtbf_sec = 30;

    const auto a = buildChaosSchedule(inst_only, 400.0);
    auto b = buildChaosSchedule(both, 400.0);
    b.erase(std::remove_if(b.begin(), b.end(),
                           [](const ChaosEvent &e) {
                               return e.kind !=
                                      ChaosEvent::Kind::kInstanceCrash;
                           }),
            b.end());
    ASSERT_FALSE(a.empty());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].start_sec, b[i].start_sec);
        EXPECT_EQ(a[i].draw, b[i].draw);
    }
}

TEST(ChaosScheduleTest, DisabledPlanOrEmptyHorizonYieldsNothing)
{
    const ChaosPlan disabled;
    EXPECT_TRUE(buildChaosSchedule(disabled, 1000.0).empty());
    ChaosPlan armed;
    armed.inst_mtbf_sec = 5;
    EXPECT_TRUE(buildChaosSchedule(armed, 0.0).empty());
}

// ---- simulation under failure --------------------------------------------

TEST(ChaosSimTest, InstanceCrashesRequeueAndRequestsStillFinish)
{
    ChaosPlan plan;
    plan.seed = 7;
    // Crashes every ~10s against a ~2-4s service time: the cluster
    // loses work but keeps making progress. (At mtbf ~= the batched
    // service time the sim correctly collapses to zero completions —
    // every request dies with its instance before first token.)
    plan.inst_mtbf_sec = 10.0;
    plan.horizon_sec = 200.0;
    ClusterOptions opts;
    opts.num_gpus = 4;
    opts.idle_timeout_sec = 2.0;
    opts.chaos = &plan;
    const auto trace = makeTrace(400, 0.25);
    const TraceMetrics m =
        runCluster(opts, toyProfile(1.0), trace);
    EXPECT_GT(m.instance_crashes, 0u);
    EXPECT_GT(m.requeued_requests, 0u);
    EXPECT_GT(m.completed, 0u);
    expectConserved(m, trace.size());
}

TEST(ChaosSimTest, NodeCrashDropsResidencyAndRecovers)
{
    ChaosPlan plan;
    plan.seed = 3;
    plan.node_mtbf_sec = 10.0;
    plan.node_mttr_sec = 4.0;
    plan.horizon_sec = 150.0;
    ClusterOptions opts;
    opts.num_gpus = 8;
    opts.gpus_per_node = 2;
    opts.num_models = 2;
    opts.node_artifact_miss_sec = 0.5;
    opts.idle_timeout_sec = 1.0;
    opts.chaos = &plan;
    const auto trace = makeTrace(500, 0.2, /*num_models=*/2);
    const TraceMetrics m =
        runCluster(opts, toyProfile(1.0), trace);
    EXPECT_GT(m.node_crashes, 0u);
    EXPECT_GT(m.node_recoveries, 0u);
    EXPECT_GT(m.lost_residency, 0u);
    expectConserved(m, trace.size());
}

TEST(ChaosSimTest, StoreOutageChargesWaitOnFetches)
{
    ChaosPlan plan;
    plan.seed = 5;
    plan.store_mtbf_sec = 6.0;
    plan.store_mttr_sec = 4.0;
    plan.horizon_sec = 150.0;
    ClusterOptions opts;
    opts.num_gpus = 4;
    opts.gpus_per_node = 2;
    opts.num_models = 2;
    // One artifact slot per node: alternating models evict each other,
    // so nearly every cold start fetches — plenty land inside outages.
    opts.node_artifact_slots = 1;
    opts.node_artifact_miss_sec = 0.5;
    opts.idle_timeout_sec = 0.5;
    opts.chaos = &plan;
    const auto trace = makeTrace(300, 0.5, /*num_models=*/2);
    const TraceMetrics m =
        runCluster(opts, toyProfile(1.0), trace);
    EXPECT_GT(m.store_outages, 0u);
    EXPECT_GT(m.store_outage_delay_sec, 0.0);
    expectConserved(m, trace.size());
}

TEST(ChaosSimTest, GrayWindowsSlowFetches)
{
    ChaosPlan plan;
    plan.seed = 13;
    plan.gray_mtbf_sec = 4.0;
    plan.gray_mttr_sec = 6.0;
    plan.gray_slowdown = 10.0;
    plan.horizon_sec = 150.0;
    ClusterOptions opts;
    opts.num_gpus = 4;
    opts.gpus_per_node = 2;
    opts.num_models = 2;
    opts.node_artifact_slots = 1;
    opts.node_artifact_miss_sec = 0.5;
    opts.idle_timeout_sec = 0.5;
    opts.chaos = &plan;
    const auto trace = makeTrace(300, 0.5, /*num_models=*/2);
    const TraceMetrics m =
        runCluster(opts, toyProfile(1.0), trace);
    EXPECT_GT(m.gray_windows, 0u);
    EXPECT_GT(m.gray_fetches, 0u);
    expectConserved(m, trace.size());
}

TEST(ChaosSimTest, DegradeToVanillaDuringOutage)
{
    ChaosPlan plan;
    plan.seed = 5;
    plan.store_mtbf_sec = 6.0;
    plan.store_mttr_sec = 20.0; // long outages: waiting is hopeless
    plan.horizon_sec = 150.0;
    ClusterOptions opts;
    opts.num_gpus = 4;
    opts.gpus_per_node = 2;
    opts.num_models = 2;
    opts.node_artifact_slots = 1;
    opts.node_artifact_miss_sec = 0.5;
    opts.idle_timeout_sec = 0.5;
    opts.vanilla_cold_start_sec = 1.5;
    opts.chaos = &plan;
    opts.slo.degrade_to_vanilla = true;
    const auto trace = makeTrace(300, 0.5, /*num_models=*/2);
    const TraceMetrics m =
        runCluster(opts, toyProfile(1.0), trace);
    EXPECT_GT(m.degraded_launches, 0u);
    expectConserved(m, trace.size());
}

TEST(ChaosSimTest, RetryBudgetExhaustionFailsRequests)
{
    ChaosPlan plan;
    plan.seed = 17;
    plan.inst_mtbf_sec = 0.5; // crash storm
    plan.horizon_sec = 300.0;
    ClusterOptions opts;
    opts.num_gpus = 2;
    opts.idle_timeout_sec = 2.0;
    opts.chaos = &plan;
    opts.slo.max_retries = 0; // first crash is terminal
    opts.slo.shed_on_deadline = false;
    const auto trace = makeTrace(300, 0.5);
    const TraceMetrics m =
        runCluster(opts, toyProfile(1.0), trace);
    EXPECT_GT(m.failed_requests, 0u);
    EXPECT_EQ(m.slo_retries, 0u);
    expectConserved(m, trace.size());
}

TEST(ChaosSimTest, BoundedRetriesAreCounted)
{
    ChaosPlan plan;
    plan.seed = 17;
    plan.inst_mtbf_sec = 1.0;
    plan.horizon_sec = 200.0;
    ClusterOptions opts;
    opts.num_gpus = 2;
    opts.chaos = &plan;
    opts.slo.max_retries = 5;
    const auto trace = makeTrace(300, 0.5);
    const TraceMetrics m =
        runCluster(opts, toyProfile(1.0), trace);
    EXPECT_GT(m.slo_retries, 0u);
    EXPECT_GE(m.requeued_requests, m.slo_retries + m.failed_requests);
    expectConserved(m, trace.size());
}

TEST(ChaosSimTest, AdmissionControlShedsDoomedWork)
{
    ClusterOptions opts;
    opts.num_gpus = 1;
    opts.max_seqs_per_instance = 1;
    opts.slo.default_ttft_sec = 0.5; // cold start alone blows it
    opts.slo.admission_control = true;
    const auto trace = makeTrace(100, 0.05);
    const TraceMetrics m =
        runCluster(opts, toyProfile(2.0), trace);
    EXPECT_GT(m.shed_admission, 0u);
    expectConserved(m, trace.size());
}

TEST(ChaosSimTest, DeadlineSheddingDrainsTheQueue)
{
    ClusterOptions opts;
    opts.num_gpus = 1;
    opts.max_seqs_per_instance = 1;
    opts.slo.default_ttft_sec = 1.0;
    opts.slo.shed_on_deadline = true;
    // A burst far beyond one GPU's capacity: queued requests expire.
    const auto trace = makeTrace(200, 0.01);
    const TraceMetrics m =
        runCluster(opts, toyProfile(1.0), trace);
    EXPECT_GT(m.shed_deadline, 0u);
    expectConserved(m, trace.size());
}

TEST(ChaosSimTest, DeadlineAccountingAndGoodput)
{
    ClusterOptions opts;
    opts.num_gpus = 4;
    opts.slo.default_ttft_sec = 60.0; // generous: everything meets it
    const auto trace = makeTrace(50, 0.5);
    const TraceMetrics m =
        runCluster(opts, toyProfile(1.0), trace);
    EXPECT_EQ(m.completed, trace.size());
    EXPECT_EQ(m.deadline_met + m.deadline_missed, m.completed);
    EXPECT_GT(m.deadline_met, 0u);
    EXPECT_GT(m.goodput_qps, 0.0);
    expectConserved(m, trace.size());
}

/** Per-request deadlines from the trace override the policy default. */
TEST(ChaosSimTest, TraceDeadlinesOverridePolicyDefault)
{
    ClusterOptions opts;
    opts.num_gpus = 1;
    opts.max_seqs_per_instance = 1;
    opts.slo.default_ttft_sec = 600.0;
    opts.slo.shed_on_deadline = true;
    // Trace-level deadlines are tiny even though the default is huge.
    const auto trace = makeTrace(200, 0.01, 1, /*deadline=*/0.5);
    const TraceMetrics m =
        runCluster(opts, toyProfile(1.0), trace);
    EXPECT_GT(m.shed_deadline, 0u);
    expectConserved(m, trace.size());
}

/**
 * Two identical armed simulations on separate threads must agree
 * bit-for-bit. Doubles as the TSan pass over the crash-requeue path:
 * both threads share the const profile/trace/plan while exercising
 * instance crashes, requeues and sheds.
 */
TEST(ChaosSimTest, ConcurrentRunsAreBitIdentical)
{
    ChaosPlan plan;
    plan.seed = 29;
    plan.node_mtbf_sec = 15.0;
    plan.node_mttr_sec = 3.0;
    plan.inst_mtbf_sec = 4.0;
    plan.store_mtbf_sec = 20.0;
    plan.gray_mtbf_sec = 18.0;
    plan.horizon_sec = 150.0;
    ClusterOptions opts;
    opts.num_gpus = 8;
    opts.gpus_per_node = 2;
    opts.num_models = 2;
    opts.node_artifact_slots = 1;
    opts.node_artifact_miss_sec = 0.4;
    opts.idle_timeout_sec = 1.0;
    opts.chaos = &plan;
    opts.slo.default_ttft_sec = 20.0;
    opts.slo.admission_control = true;
    opts.slo.shed_on_deadline = true;
    const ServingProfile profile = toyProfile(1.0);
    const auto trace = makeTrace(600, 0.2, /*num_models=*/2);

    TraceMetrics a, b;
    std::thread ta(
        [&] { a = runCluster(opts, profile, trace); });
    std::thread tb(
        [&] { b = runCluster(opts, profile, trace); });
    ta.join();
    tb.join();

    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.instance_crashes, b.instance_crashes);
    EXPECT_EQ(a.node_crashes, b.node_crashes);
    EXPECT_EQ(a.requeued_requests, b.requeued_requests);
    EXPECT_EQ(a.shed_admission, b.shed_admission);
    EXPECT_EQ(a.shed_deadline, b.shed_deadline);
    EXPECT_EQ(a.failed_requests, b.failed_requests);
    EXPECT_EQ(a.ttft_sec.samples(), b.ttft_sec.samples());
    EXPECT_EQ(a.gpu_seconds, b.gpu_seconds);
    EXPECT_EQ(a.makespan_sec, b.makespan_sec);
    expectConserved(a, trace.size());
    expectConserved(b, trace.size());
}

} // namespace
} // namespace medusa::serverless
