/**
 * @file
 * Tests of the baseline strategy drivers and the loading-latency
 * composition arithmetic (§7's vLLM / vLLM+ASYNC / w/o-CUDA-GRAPH).
 */

#include <gtest/gtest.h>

#include "llm/engine.h"

namespace medusa::llm {
namespace {

ModelConfig
tinyModel()
{
    ModelConfig m = findModel("Qwen1.5-1.8B").value();
    m.num_layers = 3;
    return m;
}

TEST(ComposeLoadingTest, VllmIsSerialSum)
{
    StageTimes t;
    t.struct_init = 1;
    t.weights = 2;
    t.tokenizer = 0.5;
    t.kv_init = 1.5;
    t.capture = 3;
    CostModel cost;
    EXPECT_DOUBLE_EQ(composeLoading(Strategy::kVllm, t, cost), 8.0);
    EXPECT_DOUBLE_EQ(composeLoading(Strategy::kNoCudaGraph, t, cost),
                     8.0);
}

TEST(ComposeLoadingTest, AsyncOverlapsWeightsWithTokKv)
{
    CostModel cost;
    cost.weights_profiling_interference = 1.5;
    StageTimes t;
    t.struct_init = 1;
    t.weights = 2;
    t.tokenizer = 1;
    t.kv_init = 1;
    t.capture = 3;
    // weights*1.5 = 3 > tok+kv = 2 -> weights-bound window.
    EXPECT_DOUBLE_EQ(composeLoading(Strategy::kVllmAsync, t, cost),
                     1 + 3 + 3);
    // Bubble case: tok+kv exceed the slowed weights.
    t.tokenizer = 4;
    EXPECT_DOUBLE_EQ(composeLoading(Strategy::kVllmAsync, t, cost),
                     1 + 5 + 3);
}

TEST(EngineTest, ColdStartProducesServableEngine)
{
    BaselineEngine::Options opts;
    opts.model = tinyModel();
    opts.strategy = Strategy::kVllm;
    auto engine = BaselineEngine::coldStart(opts);
    ASSERT_TRUE(engine.isOk()) << engine.status().toString();
    EXPECT_EQ((*engine)->runtime().graphCount(), 35u);
    auto out = (*engine)->runtime().generate({1, 2, 3}, 4);
    ASSERT_TRUE(out.isOk());
    EXPECT_EQ(out->size(), 4u);
}

TEST(EngineTest, NoCudaGraphSkipsCapture)
{
    BaselineEngine::Options opts;
    opts.model = tinyModel();
    opts.strategy = Strategy::kNoCudaGraph;
    auto engine = BaselineEngine::coldStart(opts);
    ASSERT_TRUE(engine.isOk());
    EXPECT_EQ((*engine)->runtime().graphCount(), 0u);
    EXPECT_DOUBLE_EQ((*engine)->coldStartReport().times.capture, 0.0);
    // Serving still works, eagerly.
    auto out = (*engine)->runtime().generate({5}, 3);
    EXPECT_TRUE(out.isOk());
}

TEST(EngineTest, AsyncLoadsFasterThanVllmButNotWithoutCapture)
{
    BaselineEngine::Options opts;
    opts.model = tinyModel();
    opts.strategy = Strategy::kVllm;
    auto vllm = BaselineEngine::coldStart(opts);
    opts.strategy = Strategy::kVllmAsync;
    auto async = BaselineEngine::coldStart(opts);
    opts.strategy = Strategy::kNoCudaGraph;
    auto nograph = BaselineEngine::coldStart(opts);
    ASSERT_TRUE(vllm.isOk() && async.isOk() && nograph.isOk());

    EXPECT_LT((*async)->coldStartReport().times.loading, (*vllm)->coldStartReport().times.loading);
    EXPECT_LT((*nograph)->coldStartReport().times.loading, (*async)->coldStartReport().times.loading);
    // Raw stage durations are strategy-independent.
    EXPECT_NEAR((*async)->coldStartReport().times.struct_init,
                (*vllm)->coldStartReport().times.struct_init, 1e-9);
    EXPECT_NEAR((*async)->coldStartReport().times.kv_init, (*vllm)->coldStartReport().times.kv_init,
                0.02);
}

TEST(EngineTest, WarmContainerEliminatesRuntimeInit)
{
    BaselineEngine::Options opts;
    opts.model = tinyModel();
    opts.warm_container = true;
    auto warm = BaselineEngine::coldStart(opts);
    opts.warm_container = false;
    auto cold = BaselineEngine::coldStart(opts);
    ASSERT_TRUE(warm.isOk() && cold.isOk());
    EXPECT_DOUBLE_EQ((*warm)->coldStartReport().times.runtime_init, 0.0);
    EXPECT_GT((*cold)->coldStartReport().times.runtime_init, 0.5);
    EXPECT_NEAR((*cold)->coldStartReport().times.coldStart(),
                (*cold)->coldStartReport().times.runtime_init +
                    (*cold)->coldStartReport().times.loading,
                1e-9);
}

TEST(EngineTest, StrategyNames)
{
    EXPECT_STREQ(strategyName(Strategy::kVllm), "vLLM");
    EXPECT_STREQ(strategyName(Strategy::kVllmAsync), "vLLM+ASYNC");
    EXPECT_STREQ(strategyName(Strategy::kNoCudaGraph), "w/o CUDA GRAPH");
    EXPECT_STREQ(strategyName(Strategy::kMedusa), "Medusa");
}

} // namespace
} // namespace medusa::llm
