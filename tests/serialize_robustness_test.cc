/**
 * @file
 * Error-path tests for the binary serialization layer and artifact
 * deserialization: truncated buffers, bad magic/version, and oversized
 * length fields must come back as Status errors, never crashes — a
 * corrupted on-disk artifact is a recoverable cold-start failure.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/serialize.h"
#include "medusa/artifact.h"

namespace medusa {
namespace {

TEST(SerializeRobustness, EmptyBufferFailsEveryPrimitive)
{
    BinaryReader r(std::vector<u8>{});
    EXPECT_FALSE(r.readU8().isOk());
    EXPECT_FALSE(r.readU32().isOk());
    EXPECT_FALSE(r.readU64().isOk());
    EXPECT_FALSE(r.readI64().isOk());
    EXPECT_FALSE(r.readF32().isOk());
    EXPECT_FALSE(r.readF64().isOk());
    EXPECT_FALSE(r.readBool().isOk());
    EXPECT_FALSE(r.readString().isOk());
    EXPECT_FALSE(r.readBytes().isOk());
}

TEST(SerializeRobustness, MidValueTruncationFails)
{
    BinaryWriter w;
    w.writeU64(0x0123456789abcdefull);
    std::vector<u8> bytes = w.takeBytes();
    bytes.resize(5); // cut inside the u64
    BinaryReader r(std::move(bytes));
    auto v = r.readU64();
    ASSERT_FALSE(v.isOk());
    EXPECT_NE(v.status().message().find("truncated"),
              std::string::npos);
}

TEST(SerializeRobustness, StringLengthBeyondDataFails)
{
    BinaryWriter w;
    w.writeU64(1ull << 40); // claims a terabyte of string
    BinaryReader r(w.takeBytes());
    auto s = r.readString();
    ASSERT_FALSE(s.isOk());
    EXPECT_NE(s.status().message().find("truncated"),
              std::string::npos);
}

TEST(SerializeRobustness, BytesLengthBeyondDataFails)
{
    BinaryWriter w;
    w.writeU64(0xffffffffffffffffull); // overflow-bait length
    w.writeU32(0);
    BinaryReader r(w.takeBytes());
    EXPECT_FALSE(r.readBytes().isOk());
}

TEST(SerializeRobustness, VectorCountBeyondDataFails)
{
    BinaryWriter w;
    w.writeU64(1ull << 50); // element count far beyond the stream
    BinaryReader r(w.takeBytes());
    auto v = r.readVector<u64>(
        [](BinaryReader &rr) { return rr.readU64(); });
    ASSERT_FALSE(v.isOk());
    EXPECT_NE(v.status().message().find("count exceeds"),
              std::string::npos);
}

TEST(SerializeRobustness, VectorElementTruncationFails)
{
    BinaryWriter w;
    w.writeU64(3); // three u64 elements promised...
    w.writeU64(1);
    w.writeU64(2); // ...but the third is missing
    BinaryReader r(w.takeBytes());
    auto v = r.readVector<u64>(
        [](BinaryReader &rr) { return rr.readU64(); });
    EXPECT_FALSE(v.isOk());
}

TEST(SerializeRobustness, RoundTripSurvivesAndEndsExactly)
{
    BinaryWriter w;
    w.writeU32(7);
    w.writeString("medusa");
    w.writeBytes({1, 2, 3});
    w.writeBool(true);
    BinaryReader r(w.takeBytes());
    EXPECT_EQ(r.readU32().value(), 7u);
    EXPECT_EQ(r.readString().value(), "medusa");
    EXPECT_EQ(r.readBytes().value(), (std::vector<u8>{1, 2, 3}));
    EXPECT_TRUE(r.readBool().value());
    EXPECT_TRUE(r.atEnd());
}

/** A small but structurally complete artifact for corruption tests. */
core::Artifact
sampleArtifact()
{
    core::Artifact a;
    a.model_name = "robustness-model";
    a.model_seed = 3;
    a.free_gpu_memory = 1024;
    core::AllocOp alloc;
    alloc.kind = core::AllocOp::kAlloc;
    alloc.logical_size = 512;
    alloc.backing_size = 512;
    a.ops.push_back(alloc);
    core::GraphBlueprint g;
    g.batch_size = 1;
    core::NodeBlueprint n;
    n.kernel_name = "k";
    n.module_name = "m";
    core::ParamSpec p;
    p.kind = core::ParamSpec::kIndirect;
    a.tags["input"] = 0;
    n.params.push_back(p);
    g.nodes.push_back(n);
    a.graphs.push_back(g);
    return a;
}

TEST(SerializeRobustness, ArtifactRoundTrips)
{
    const core::Artifact a = sampleArtifact();
    auto back = core::Artifact::deserialize(a.serialize());
    ASSERT_TRUE(back.isOk()) << back.status().toString();
    EXPECT_EQ(back->model_name, a.model_name);
    EXPECT_EQ(back->ops.size(), 1u);
    EXPECT_EQ(back->graphs.size(), 1u);
    EXPECT_EQ(back->tags.at("input"), 0u);
}

TEST(SerializeRobustness, ArtifactBadMagicFails)
{
    std::vector<u8> bytes = sampleArtifact().serialize();
    bytes[0] ^= 0xff;
    auto a = core::Artifact::deserialize(std::move(bytes));
    ASSERT_FALSE(a.isOk());
    EXPECT_NE(a.status().message().find("magic"), std::string::npos);
}

TEST(SerializeRobustness, ArtifactBadVersionFails)
{
    std::vector<u8> bytes = sampleArtifact().serialize();
    const u32 wrong = core::Artifact::kVersion + 1;
    std::memcpy(bytes.data() + 4, &wrong, 4);
    auto a = core::Artifact::deserialize(std::move(bytes));
    ASSERT_FALSE(a.isOk());
    EXPECT_NE(a.status().message().find("version"), std::string::npos);
}

TEST(SerializeRobustness, TruncatedArtifactAtEveryPrefixFails)
{
    // Chopping the stream at ANY point must produce a Status error —
    // never a crash, hang or silently short artifact.
    const std::vector<u8> bytes = sampleArtifact().serialize();
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        std::vector<u8> prefix(bytes.begin(), bytes.begin() + len);
        auto a = core::Artifact::deserialize(std::move(prefix));
        EXPECT_FALSE(a.isOk()) << "prefix length " << len;
    }
}

TEST(SerializeRobustness, CorruptedInteriorLengthFieldFails)
{
    // Blow up the model-name length field (first field after the
    // 8-byte header): claims more bytes than the stream holds.
    std::vector<u8> bytes = sampleArtifact().serialize();
    const u64 huge = 1ull << 60;
    std::memcpy(bytes.data() + 8, &huge, 8);
    auto a = core::Artifact::deserialize(std::move(bytes));
    EXPECT_FALSE(a.isOk());
}

} // namespace
} // namespace medusa
