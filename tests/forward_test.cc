/**
 * @file
 * Tests of the forward-pass builder: graph node counts per
 * architecture and batch size (parameterized sweep), temp-buffer
 * lifecycle, lazy semaphore creation, and the split-attention
 * threshold.
 */

#include <gtest/gtest.h>

#include "llm/runtime.h"

namespace medusa::llm {
namespace {

ModelConfig
tinyByArch(ModelArch arch)
{
    const char *name = arch == ModelArch::kFalcon ? "Falcon-7B"
                       : arch == ModelArch::kQwen ? "Qwen1.5-0.5B"
                                                  : "Llama2-7B";
    ModelConfig m = findModel(name).value();
    m.num_layers = 3;
    return m;
}

std::unique_ptr<ModelRuntime>
loadedRuntime(const ModelConfig &m, u64 seed = 1)
{
    ModelRuntime::Options opts;
    opts.model = m;
    opts.aslr_seed = seed;
    auto rt = std::make_unique<ModelRuntime>(opts);
    MEDUSA_CHECK(rt->initStructure().isOk(), "struct");
    MEDUSA_CHECK(rt->loadWeights().isOk(), "weights");
    auto free_bytes = rt->profileFreeMemory();
    MEDUSA_CHECK(free_bytes.isOk(), "profile");
    MEDUSA_CHECK(rt->initKvCache(*free_bytes).isOk(), "kv");
    return rt;
}

// ---- parameterized node-count sweep ------------------------------------

using ArchBatch = std::tuple<int, u32>;

class NodeCountTest : public ::testing::TestWithParam<ArchBatch>
{
};

TEST_P(NodeCountTest, CaptureNodeCountMatchesFormula)
{
    const auto [arch_idx, bs] = GetParam();
    const ModelConfig m = tinyByArch(static_cast<ModelArch>(arch_idx));
    auto rt = loadedRuntime(m);
    ASSERT_TRUE(rt->warmupDecode(bs).isOk());
    auto graph = rt->captureDecode(bs);
    ASSERT_TRUE(graph.isOk());
    EXPECT_EQ(graph->nodeCount(), ForwardPass::decodeNodeCount(m, bs));
    // Capture builds a connected chain: edges >= nodes - 1.
    EXPECT_GE(graph->edgeCount(), graph->nodeCount() - 1);
}

std::string
archBatchName(const ::testing::TestParamInfo<ArchBatch> &info)
{
    static const char *const archs[] = {"Llama", "Qwen", "Falcon"};
    return std::string(archs[std::get<0>(info.param)]) + "_bs" +
           std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    ArchBatchSweep, NodeCountTest,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(1u, 2u, 8u, 63u, 64u, 256u)),
    archBatchName);

TEST(ForwardTest, SplitThresholdAt64)
{
    const ModelConfig m = tinyByArch(ModelArch::kLlama);
    EXPECT_FALSE(ForwardPass::usesAttnSplit(63));
    EXPECT_TRUE(ForwardPass::usesAttnSplit(64));
    EXPECT_EQ(ForwardPass::decodeNodeCount(m, 64),
              ForwardPass::decodeNodeCount(m, 56) + m.num_layers);
}

TEST(ForwardTest, TempBuffersReturnToPool)
{
    const ModelConfig m = tinyByArch(ModelArch::kLlama);
    auto rt = loadedRuntime(m);
    const u64 live_before = rt->allocator().liveBuffers();
    ASSERT_TRUE(rt->warmupDecode(4).isOk());
    // Temps freed; only the lazily-created semaphores stay live.
    EXPECT_EQ(rt->allocator().liveBuffers(),
              live_before + 2 * m.num_layers);
    ASSERT_TRUE(rt->warmupDecode(4).isOk());
    EXPECT_EQ(rt->allocator().liveBuffers(),
              live_before + 2 * m.num_layers);
}

TEST(ForwardTest, SemaphoresCreatedOncePerLayer)
{
    const ModelConfig m = tinyByArch(ModelArch::kQwen);
    auto rt = loadedRuntime(m);
    EXPECT_TRUE(rt->semaphoreMap().empty());
    ASSERT_TRUE(rt->warmupDecode(1).isOk());
    EXPECT_EQ(rt->semaphoreMap().size(), m.num_layers);
    const auto snapshot = rt->semaphoreMap();
    ASSERT_TRUE(rt->warmupDecode(8).isOk());
    EXPECT_EQ(rt->semaphoreMap(), snapshot); // reused, not reallocated
}

TEST(ForwardTest, DecodeProducesFiniteLogits)
{
    for (int arch : {0, 1, 2}) {
        const ModelConfig m =
            tinyByArch(static_cast<ModelArch>(arch));
        auto rt = loadedRuntime(m);
        ASSERT_TRUE(rt->stageValidationState(4).isOk());
        auto logits = rt->eagerDecodeLogits(4);
        ASSERT_TRUE(logits.isOk());
        ASSERT_EQ(logits->size(), 4u * m.func.vocab);
        for (f32 v : *logits) {
            EXPECT_TRUE(std::isfinite(v));
        }
        // Logits must not be all-zero (the pass really computed).
        f64 mag = 0;
        for (f32 v : *logits) {
            mag += std::abs(v);
        }
        EXPECT_GT(mag, 0.0);
    }
}

TEST(ForwardTest, EagerDecodeIsDeterministic)
{
    const ModelConfig m = tinyByArch(ModelArch::kLlama);
    auto rt = loadedRuntime(m);
    ASSERT_TRUE(rt->stageValidationState(2).isOk());
    auto a = rt->eagerDecodeLogits(2);
    ASSERT_TRUE(rt->stageValidationState(2).isOk());
    auto b = rt->eagerDecodeLogits(2);
    ASSERT_TRUE(a.isOk() && b.isOk());
    EXPECT_EQ(*a, *b);
}

TEST(ForwardTest, DifferentBatchRowsIndependent)
{
    // Row 0 of a bs=2 decode must equal row 0 of a bs=1 decode with the
    // same sequence state (padding rows don't contaminate).
    const ModelConfig m = tinyByArch(ModelArch::kLlama);
    auto rt = loadedRuntime(m);
    ASSERT_TRUE(rt->stageValidationState(2).isOk());
    auto two = rt->eagerDecodeLogits(2);
    ASSERT_TRUE(rt->stageValidationState(1).isOk());
    auto one = rt->eagerDecodeLogits(1);
    ASSERT_TRUE(two.isOk() && one.isOk());
    const u32 vocab = m.func.vocab;
    for (u32 v = 0; v < vocab; ++v) {
        EXPECT_FLOAT_EQ((*two)[v], (*one)[v]);
    }
}

} // namespace
} // namespace medusa::llm
