/**
 * @file
 * Tests of the tensor-parallel substrate (§8 multi-GPU): sharded
 * weight composition, per-rank graph structure, lockstep replay with
 * collective semantics, and numerical equivalence with the single-GPU
 * engine.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "llm/tensor_parallel.h"

namespace medusa::llm {
namespace {

ModelConfig
tpModel(const char *name = "Llama2-7B", u32 layers = 3)
{
    ModelConfig m = findModel(name).value();
    m.num_layers = layers;
    return m;
}

std::unique_ptr<TpCluster>
loadedCluster(const ModelConfig &m, u32 world = 2, u64 seed = 1)
{
    TpCluster::Options opts;
    opts.model = m;
    opts.world = world;
    opts.aslr_seed = seed;
    auto cluster = TpCluster::create(opts);
    MEDUSA_CHECK(cluster.isOk(), "cluster create failed");
    MEDUSA_CHECK((*cluster)->loadAll().isOk(), "cluster load failed");
    return std::move(cluster).value();
}

TEST(TensorParallelTest, CreateValidatesDivisibility)
{
    TpCluster::Options opts;
    opts.model = tpModel();
    opts.world = 1;
    EXPECT_FALSE(TpCluster::create(opts).isOk());
    opts.world = 3; // 4 functional heads do not divide by 3
    EXPECT_FALSE(TpCluster::create(opts).isOk());
    opts.world = 2;
    EXPECT_TRUE(TpCluster::create(opts).isOk());
}

TEST(TensorParallelTest, RanksOccupyDisjointAddressWindows)
{
    auto cluster = loadedCluster(tpModel());
    const DeviceAddr a0 = cluster->rank(0).weights().embed;
    const DeviceAddr a1 = cluster->rank(1).weights().embed;
    // Device windows are 224 GiB apart.
    EXPECT_GT(a1, a0);
    EXPECT_GE(a1 - a0, 96ull * units::GiB);
}

TEST(TensorParallelTest, ShardedSpecsHalveProjectionSizes)
{
    ModelConfig single = tpModel();
    ModelConfig rank0 = single;
    rank0.tp_world = 2;
    rank0.tp_rank = 0;
    const auto full = buildTensorSpecs(single);
    const auto shard = buildTensorSpecs(rank0);
    ASSERT_EQ(full.size(), shard.size());
    for (std::size_t i = 0; i < full.size(); ++i) {
        const auto &name = full[i].name;
        if (name.find("qkv_w") != std::string::npos ||
            name.find("o_proj") != std::string::npos ||
            name.find("gate_up") != std::string::npos ||
            name.find("down") != std::string::npos) {
            EXPECT_EQ(shard[i].func_elems * 2, full[i].func_elems)
                << name;
            ASSERT_TRUE(shard[i].shard.has_value()) << name;
        } else {
            EXPECT_EQ(shard[i].func_elems, full[i].func_elems) << name;
        }
    }
}

TEST(TensorParallelTest, ShardsComposeIntoFullMatrix)
{
    // Rank shards gathered side by side must reproduce the single-GPU
    // qkv weight rows for the q section.
    const ModelConfig base = tpModel("Llama2-7B", 1);
    auto cluster = loadedCluster(base);

    ModelRuntime::Options sopts;
    sopts.model = base;
    ModelRuntime single(sopts);
    ASSERT_TRUE(single.initStructure().isOk());
    ASSERT_TRUE(single.loadWeights().isOk());

    const u32 h_f = base.func.hidden;
    const u32 q_l = base.func.hidden / 2; // MHA: q rows/rank = h/2
    std::vector<f32> full(static_cast<std::size_t>(h_f) * h_f);
    ASSERT_TRUE(single.process()
                    .memory()
                    .read(single.weights().layers[0].qkv_w, full.data(),
                          full.size() * 4)
                    .isOk());
    for (u32 r = 0; r < 2; ++r) {
        std::vector<f32> shard(static_cast<std::size_t>(q_l) * h_f);
        ASSERT_TRUE(
            cluster->rank(r)
                .process()
                .memory()
                .read(cluster->rank(r).weights().layers[0].qkv_w,
                      shard.data(), shard.size() * 4)
                .isOk());
        for (std::size_t i = 0; i < shard.size(); ++i) {
            EXPECT_FLOAT_EQ(
                shard[i],
                full[static_cast<std::size_t>(r) * q_l * h_f + i])
                << "rank " << r << " elem " << i;
        }
    }
}

TEST(TensorParallelTest, GraphsGainTwoCollectivesPerLayer)
{
    const ModelConfig m = tpModel();
    auto cluster = loadedCluster(m);
    ASSERT_TRUE(cluster->captureAll({1}).isOk());
    ModelConfig tp = m;
    tp.tp_world = 2;
    auto exec = cluster->rank(0).graphExec(1);
    ASSERT_TRUE(exec.isOk());
    EXPECT_EQ((*exec)->nodeCount(),
              ForwardPass::decodeNodeCount(tp, 1));
    EXPECT_EQ((*exec)->nodeCount(),
              ForwardPass::decodeNodeCount(m, 1) + 2 * m.num_layers);
}

TEST(TensorParallelTest, LockstepDecodeMatchesSingleGpu)
{
    // Falcon-7B's 71 heads do not divide by 2; real TP deployments of
    // it use uneven sharding, which this reproduction does not model.
    for (const char *name : {"Llama2-7B", "Yi-6B", "Qwen1.5-0.5B"}) {
        const ModelConfig m = tpModel(name, 2);
        auto cluster = loadedCluster(m);
        ASSERT_TRUE(cluster->captureAll({4}).isOk());
        ASSERT_TRUE(cluster->stageValidationState(4).isOk());
        auto tp_logits = cluster->lockstepDecodeLogits(4);
        ASSERT_TRUE(tp_logits.isOk()) << name << ": "
                                      << tp_logits.status().toString();

        ModelRuntime::Options sopts;
        sopts.model = m;
        ModelRuntime single(sopts);
        ASSERT_TRUE(single.initStructure().isOk());
        ASSERT_TRUE(single.loadWeights().isOk());
        auto free_bytes = single.profileFreeMemory();
        ASSERT_TRUE(free_bytes.isOk());
        ASSERT_TRUE(single.initKvCache(*free_bytes).isOk());
        ASSERT_TRUE(single.stageValidationState(4).isOk());
        auto ref = single.eagerDecodeLogits(4);
        ASSERT_TRUE(ref.isOk());

        ASSERT_EQ(tp_logits->size(), ref->size()) << name;
        f64 max_err = 0;
        for (std::size_t i = 0; i < ref->size(); ++i) {
            max_err = std::max(
                max_err, static_cast<f64>(std::abs((*tp_logits)[i] -
                                                   (*ref)[i])));
        }
        // Equal up to fp32 summation-order differences.
        EXPECT_LT(max_err, 1e-3) << name;
        f64 mag = 0;
        for (f32 v : *ref) {
            mag += std::abs(v);
        }
        EXPECT_GT(mag, 0.0) << name;
    }
}

TEST(TensorParallelTest, LockstepRejectsAsymmetricGraphs)
{
    const ModelConfig m = tpModel();
    auto cluster = loadedCluster(m);
    ASSERT_TRUE(cluster->captureAll({1, 2}).isOk());
    auto e1 = cluster->rank(0).graphExec(1);
    auto e2 = cluster->rank(1).graphExec(2);
    ASSERT_TRUE(e1.isOk() && e2.isOk());
    // bs=1 and bs=2 graphs have equal node counts but different
    // parameters; the symmetric-kernel check passes while the
    // all-reduce world/rank params still agree — the replay succeeds
    // but the shape check guards count mismatches:
    auto mixed = cluster->lockstepDecodeLogits(
        1, {*e1, *e2});
    // Either rejected or executed; what must NEVER happen is a crash.
    (void)mixed;
    SUCCEED();
}

} // namespace
} // namespace medusa::llm
