/**
 * @file
 * Tests of the analysis stage: pointer-vs-constant classification,
 * decoy (false-positive candidate) demotion, interior-pointer offsets,
 * trace-based matching under address reuse, the §4.3 buffer-content
 * classes — and the adversarial proof that NAIVE matching corrupts
 * data across process launches (the paper's Figure 6), while
 * trace-based matching restores correctly.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "medusa/analyze.h"
#include "simcuda/caching_allocator.h"
#include "simcuda/kernels/builtin.h"

namespace medusa::core {
namespace {

using simcuda::BuiltinKernels;
using simcuda::CachingAllocator;
using simcuda::CudaGraph;
using simcuda::GpuProcess;
using simcuda::GpuProcessOptions;
using simcuda::ParamsBuilder;

/** A tiny offline "process" with interception wired up. */
struct Offline
{
    explicit Offline(u64 seed = 1)
        : process(options(seed), &clock, &cost), alloc(&process, seed)
    {
        alloc.setObserver(&recorder);
        process.setLaunchObserver(&recorder);
        recorder.markOrganicBoundary();
        recorder.markCaptureStageBegin();
    }

    static GpuProcessOptions
    options(u64 seed)
    {
        GpuProcessOptions o;
        o.aslr_seed = seed;
        return o;
    }

    /** Capture a one-node copy_f32 graph with the given params. */
    StatusOr<CudaGraph>
    captureCopy(DeviceAddr src, DeviceAddr dst, i32 count)
    {
        const auto &k = BuiltinKernels::get();
        // Warm the module outside capture.
        ParamsBuilder warm;
        warm.ptr(src).ptr(dst).i32(0);
        MEDUSA_RETURN_IF_ERROR(process.defaultStream().launch(
            k.copy_f32, warm.take(), {}));
        recorder.beginGraph(1);
        MEDUSA_RETURN_IF_ERROR(
            process.beginCapture(process.defaultStream()));
        ParamsBuilder pb;
        pb.ptr(src).ptr(dst).i32(count);
        Status st = process.defaultStream().launch(k.copy_f32,
                                                   pb.take(), {});
        auto graph = process.endCapture(process.defaultStream());
        recorder.endGraph();
        if (!st.isOk()) {
            return st;
        }
        return graph;
    }

    StatusOr<AnalysisResult>
    analyzeGraph(const CudaGraph &graph, bool trace_based)
    {
        AnalyzeOptions opts;
        opts.trace_based_matching = trace_based;
        std::vector<std::pair<u32, CudaGraph>> graphs = {{1, graph}};
        return analyze(recorder, process, "test-model", 1, graphs,
                       units::GiB, opts);
    }

    SimClock clock;
    CostModel cost;
    GpuProcess process;
    CachingAllocator alloc;
    Recorder recorder;
};

TEST(AnalyzeTest, PointerHeuristic)
{
    EXPECT_TRUE(looksLikeDevicePointer(0x7f2000001000ull));
    EXPECT_TRUE(looksLikeDevicePointer(0x7fab00000008ull)); // decoy range
    EXPECT_FALSE(looksLikeDevicePointer(64));
    EXPECT_FALSE(looksLikeDevicePointer(0x800000000000ull));
}

TEST(AnalyzeTest, ClassifiesConstantsAndPointers)
{
    Offline off;
    auto src = off.alloc.allocate(4096, 64);
    auto dst = off.alloc.allocate(4096, 64);
    auto graph = off.captureCopy(*src, *dst, 7);
    ASSERT_TRUE(graph.isOk());
    auto result = off.analyzeGraph(*graph, true);
    ASSERT_TRUE(result.isOk());

    const auto &node = result->artifact.graphs[0].nodes[0];
    ASSERT_EQ(node.params.size(), 3u);
    EXPECT_EQ(node.params[0].kind, ParamSpec::kIndirect);
    EXPECT_EQ(node.params[0].alloc_index, 0u);
    EXPECT_EQ(node.params[1].kind, ParamSpec::kIndirect);
    EXPECT_EQ(node.params[1].alloc_index, 1u);
    EXPECT_EQ(node.params[2].kind, ParamSpec::kConstant);
    EXPECT_EQ(result->artifact.stats.pointer_params, 2u);
    EXPECT_EQ(result->artifact.stats.constant_params, 1u);
    EXPECT_EQ(node.kernel_name,
              simcuda::KernelRegistry::instance()
                  .def(BuiltinKernels::get().copy_f32)
                  .mangled_name);
    EXPECT_EQ(node.module_name, simcuda::kTorchModule);
}

TEST(AnalyzeTest, InteriorPointerGetsOffset)
{
    Offline off;
    auto src = off.alloc.allocate(4096, 256);
    auto dst = off.alloc.allocate(4096, 256);
    auto graph = off.captureCopy(*src + 128, *dst, 4);
    ASSERT_TRUE(graph.isOk());
    auto result = off.analyzeGraph(*graph, true);
    ASSERT_TRUE(result.isOk());
    const auto &p = result->artifact.graphs[0].nodes[0].params[0];
    EXPECT_EQ(p.kind, ParamSpec::kIndirect);
    EXPECT_EQ(p.alloc_index, 0u);
    EXPECT_EQ(p.offset, 128u);
}

TEST(AnalyzeTest, DecoyCandidateDemotedToConstant)
{
    // An 8-byte constant in the device-address-looking range that
    // matches no allocation: the paper's rare false-positive case,
    // resolved by trace search coming up empty.
    Offline off;
    auto src = off.alloc.allocate(4096, 64);
    auto dst = off.alloc.allocate(4096, 64);
    const auto &k = BuiltinKernels::get();
    ParamsBuilder warm;
    warm.ptr(*src).ptr(*dst).i32(0);
    ASSERT_TRUE(off.process.defaultStream()
                    .launch(k.copy_f32, warm.take(), {})
                    .isOk());

    // Hand-build a one-node "graph" whose i32 param is widened to a
    // decoy i64 via a synthetic launch record: easiest is a real graph
    // plus checking the stats path through paged attention's stream
    // tag in the integration tests; here we test the matcher directly.
    off.recorder.beginGraph(1);
    ASSERT_TRUE(
        off.process.beginCapture(off.process.defaultStream()).isOk());
    ParamsBuilder pb;
    pb.ptr(*src).ptr(0x7fab00000001ull).i32(4); // dst "pointer" is decoy
    Status st = off.process.defaultStream().launch(k.copy_f32,
                                                   pb.take(), {});
    auto graph = off.process.endCapture(off.process.defaultStream());
    off.recorder.endGraph();
    ASSERT_TRUE(st.isOk());
    ASSERT_TRUE(graph.isOk());

    auto result = off.analyzeGraph(*graph, true);
    ASSERT_TRUE(result.isOk());
    const auto &node = result->artifact.graphs[0].nodes[0];
    EXPECT_EQ(node.params[1].kind, ParamSpec::kConstant);
    EXPECT_EQ(result->artifact.stats.decoy_candidates, 1u);
}

TEST(AnalyzeTest, TraceBasedMatchingPicksLiveAllocationUnderReuse)
{
    Offline off;
    // Buffer X allocated, freed; Y reuses the same address. The graph
    // uses Y: trace-based matching must bind to Y's event (index 1),
    // naive matching binds to X's (index 0) — Figure 6's setup.
    auto x = off.alloc.allocate(2048, 64);
    ASSERT_TRUE(off.alloc.free(*x).isOk());
    auto y = off.alloc.allocate(2048, 64);
    ASSERT_EQ(*x, *y);
    auto dst = off.alloc.allocate(512, 64);

    auto graph = off.captureCopy(*y, *dst, 4);
    ASSERT_TRUE(graph.isOk());

    auto traced = off.analyzeGraph(*graph, true);
    ASSERT_TRUE(traced.isOk());
    EXPECT_EQ(traced->artifact.graphs[0].nodes[0].params[0].alloc_index,
              1u);

    auto naive = off.analyzeGraph(*graph, false);
    ASSERT_TRUE(naive.isOk());
    EXPECT_EQ(naive->artifact.graphs[0].nodes[0].params[0].alloc_index,
              0u);
}

TEST(AnalyzeTest, BufferContentClasses)
{
    // A bespoke harness so we control the capture-stage marker.
    SimClock clock;
    CostModel cost;
    GpuProcess process(Offline::options(3), &clock, &cost);
    CachingAllocator alloc(&process, 3);
    Recorder recorder;
    alloc.setObserver(&recorder);
    process.setLaunchObserver(&recorder);
    recorder.markOrganicBoundary();

    auto weight = alloc.allocate(4096, 16); // before capture stage
    recorder.markCaptureStageBegin();
    auto temp = alloc.allocate(512, 16);   // freed later: temporary
    auto perm = alloc.allocate(512, 16);   // kept: permanent
    const u32 magic = 0xbeefcafe;
    ASSERT_TRUE(
        process.memory().write(*perm, &magic, sizeof(magic)).isOk());

    // Warm + capture one node touching all three buffers... copy has
    // only two pointers; capture two nodes.
    const auto &k = BuiltinKernels::get();
    ParamsBuilder warm;
    warm.ptr(*weight).ptr(*temp).i32(0);
    ASSERT_TRUE(process.defaultStream()
                    .launch(k.copy_f32, warm.take(), {})
                    .isOk());
    recorder.beginGraph(1);
    ASSERT_TRUE(process.beginCapture(process.defaultStream()).isOk());
    ParamsBuilder n1;
    n1.ptr(*weight).ptr(*temp).i32(4);
    ASSERT_TRUE(process.defaultStream()
                    .launch(k.copy_f32, n1.take(), {})
                    .isOk());
    ParamsBuilder n2;
    n2.ptr(*temp).ptr(*perm).i32(4);
    ASSERT_TRUE(process.defaultStream()
                    .launch(k.copy_f32, n2.take(), {})
                    .isOk());
    auto graph = process.endCapture(process.defaultStream());
    recorder.endGraph();
    ASSERT_TRUE(graph.isOk());
    ASSERT_TRUE(alloc.free(*temp).isOk()); // temp deallocated after

    AnalyzeOptions opts;
    std::vector<std::pair<u32, CudaGraph>> graphs = {{1, *graph}};
    auto result = analyze(recorder, process, "m", 1, graphs, 1, opts);
    ASSERT_TRUE(result.isOk());
    const auto &stats = result->artifact.stats;
    EXPECT_EQ(stats.model_param_buffers, 1u);
    EXPECT_EQ(stats.temp_buffers, 1u);
    EXPECT_EQ(stats.permanent_buffers, 1u);
    ASSERT_EQ(result->artifact.permanent.size(), 1u);
    // The permanent buffer's contents (the magic) are materialized.
    const auto &contents = result->artifact.permanent[0].contents;
    ASSERT_EQ(contents.size(), 16u);
    u32 stored = 0;
    std::memcpy(&stored, contents.data(), 4);
    EXPECT_EQ(stored, 0xbeefcafeu);
}

TEST(AnalyzeTest, NaiveMatchingCorruptsReusedBuffer)
{
    // The functional Figure 6 proof. Offline: two same-class buffers
    // T0, T1 are allocated and freed; Q then reuses ONE of them
    // (process-dependent choice) and carries real data into a captured
    // copy kernel. Naive matching binds Q's pointer to the stale T
    // event at the same address. Online (a different process), the
    // replay's reuse choice differs for some seed, so the naive
    // binding resolves to the WRONG buffer and the kernel reads stale
    // zeros, while the trace-based binding always restores the data.
    Offline off(1);
    auto t0 = off.alloc.allocate(1024, 32); // event 0
    auto t1 = off.alloc.allocate(1024, 32); // event 1
    ASSERT_TRUE(off.alloc.free(*t0).isOk());
    ASSERT_TRUE(off.alloc.free(*t1).isOk());
    auto q = off.alloc.allocate(1024, 32); // event 2: reuses t0 or t1
    auto out = off.alloc.allocate(1024, 32); // event 3
    const std::vector<f32> data = {1.5f, -2.5f, 3.5f, 4.5f};
    ASSERT_TRUE(
        off.process.memory().write(*q, data.data(), 16).isOk());

    auto graph = off.captureCopy(*q, *out, 4);
    ASSERT_TRUE(graph.isOk());

    auto traced = off.analyzeGraph(*graph, true);
    auto naive = off.analyzeGraph(*graph, false);
    ASSERT_TRUE(traced.isOk() && naive.isOk());
    ASSERT_EQ(
        traced->artifact.graphs[0].nodes[0].params[0].alloc_index, 2u);
    const u64 naive_index =
        naive->artifact.graphs[0].nodes[0].params[0].alloc_index;
    EXPECT_LT(naive_index, 2u); // bound to a stale T event

    // Mini online restore: replay the op sequence in a fresh process,
    // restore permanent contents, patch the pointer per the spec, run
    // the kernel, and read the output back.
    auto restoreAndRun = [&](const Artifact &artifact,
                             u64 seed) -> std::vector<f32> {
        SimClock clock;
        CostModel cost;
        GpuProcess process(Offline::options(seed), &clock, &off.cost);
        CachingAllocator alloc(&process, seed);
        std::vector<DeviceAddr> addr_of;
        for (const AllocOp &op : artifact.ops) {
            if (op.kind == AllocOp::kAlloc) {
                addr_of.push_back(*alloc.allocate(op.logical_size,
                                                  op.backing_size));
            } else {
                MEDUSA_CHECK(
                    alloc.free(addr_of[op.freed_alloc_index]).isOk(),
                    "replay free");
            }
        }
        for (const PermanentBuffer &pb : artifact.permanent) {
            MEDUSA_CHECK(process.memory()
                             .write(addr_of[pb.alloc_index],
                                    pb.contents.data(),
                                    pb.contents.size())
                             .isOk(),
                         "content restore");
        }
        const auto &node = artifact.graphs[0].nodes[0];
        simcuda::RawParams params;
        for (const ParamSpec &spec : node.params) {
            if (spec.kind == ParamSpec::kConstant) {
                params.push_back(spec.constant_bytes);
            } else {
                const u64 value =
                    addr_of[spec.alloc_index] + spec.offset;
                std::vector<u8> bytes(8);
                std::memcpy(bytes.data(), &value, 8);
                params.push_back(std::move(bytes));
            }
        }
        const auto &k = BuiltinKernels::get();
        MEDUSA_CHECK(process.defaultStream()
                         .launch(k.copy_f32, std::move(params), {})
                         .isOk(),
                     "restored kernel run");
        // Output is event 3.
        std::vector<f32> got(4);
        MEDUSA_CHECK(
            process.memory().read(addr_of[3], got.data(), 16).isOk(),
            "read output");
        return got;
    };

    bool naive_corrupted_somewhere = false;
    for (u64 seed = 100; seed < 130; ++seed) {
        const auto traced_out = restoreAndRun(traced->artifact, seed);
        // Trace-based restoration is correct in EVERY process layout.
        ASSERT_EQ(traced_out, data) << "seed " << seed;
        const auto naive_out = restoreAndRun(naive->artifact, seed);
        if (naive_out != data) {
            naive_corrupted_somewhere = true;
        }
    }
    EXPECT_TRUE(naive_corrupted_somewhere)
        << "naive matching never diverged across 30 process layouts";
}

} // namespace
} // namespace medusa::core
