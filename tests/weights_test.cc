/**
 * @file
 * Tests of stage ❶/❷: tensor inventory per architecture, deterministic
 * allocation order (the control-flow determinism Medusa relies on),
 * role wiring, and cross-process weight-content determinism.
 */

#include <gtest/gtest.h>

#include "llm/weights.h"

namespace medusa::llm {
namespace {

ModelConfig
tiny(ModelArch arch)
{
    ModelConfig m = findModel(arch == ModelArch::kFalcon ? "Falcon-7B"
                              : arch == ModelArch::kQwen
                                  ? "Qwen1.5-0.5B"
                                  : "Llama2-7B")
                        .value();
    m.num_layers = 3;
    return m;
}

struct Harness
{
    explicit Harness(u64 seed = 1)
        : process(opts(seed), &clock, &cost), alloc(&process, seed)
    {
    }

    static simcuda::GpuProcessOptions
    opts(u64 seed)
    {
        simcuda::GpuProcessOptions o;
        o.aslr_seed = seed;
        return o;
    }

    SimClock clock;
    CostModel cost;
    simcuda::GpuProcess process;
    simcuda::CachingAllocator alloc;
};

TEST(WeightsTest, SpecCountsPerArch)
{
    // llama: embed + 3 * 6 + final + lm_head = 21
    EXPECT_EQ(buildTensorSpecs(tiny(ModelArch::kLlama)).size(), 21u);
    // qwen adds qkv bias: embed + 3 * 7 + final + lm_head = 24
    EXPECT_EQ(buildTensorSpecs(tiny(ModelArch::kQwen)).size(), 24u);
    // falcon: embed + 3 * 6 + final(w+b) + lm_head = 22
    EXPECT_EQ(buildTensorSpecs(tiny(ModelArch::kFalcon)).size(), 22u);
}

TEST(WeightsTest, SpecsAreDeterministic)
{
    const auto a = buildTensorSpecs(tiny(ModelArch::kQwen));
    const auto b = buildTensorSpecs(tiny(ModelArch::kQwen));
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].name, b[i].name);
        EXPECT_EQ(a[i].logical_bytes, b[i].logical_bytes);
        EXPECT_EQ(a[i].func_elems, b[i].func_elems);
    }
}

TEST(WeightsTest, StructureInitWiresAllRoles)
{
    Harness h;
    const ModelConfig m = tiny(ModelArch::kLlama);
    auto weights = initModelStructure(h.alloc, m);
    ASSERT_TRUE(weights.isOk());
    EXPECT_NE(weights->embed, 0u);
    EXPECT_NE(weights->final_norm, 0u);
    EXPECT_NE(weights->lm_head, 0u);
    EXPECT_EQ(weights->final_norm_bias, 0u); // llama has no final bias
    ASSERT_EQ(weights->layers.size(), 3u);
    for (const LayerWeights &lw : weights->layers) {
        EXPECT_NE(lw.input_norm, 0u);
        EXPECT_NE(lw.qkv_w, 0u);
        EXPECT_EQ(lw.qkv_b, 0u); // llama has no qkv bias
        EXPECT_NE(lw.o_proj, 0u);
        EXPECT_NE(lw.post_norm, 0u);
        EXPECT_NE(lw.gate_up, 0u);
        EXPECT_NE(lw.down, 0u);
        EXPECT_EQ(lw.mlp_up, 0u);
    }
    EXPECT_EQ(weights->tensorCount(), 21u);
    EXPECT_GT(weights->total_logical_bytes, units::GiB / 2);
}

TEST(WeightsTest, FalconWiring)
{
    Harness h;
    auto weights = initModelStructure(h.alloc, tiny(ModelArch::kFalcon));
    ASSERT_TRUE(weights.isOk());
    EXPECT_NE(weights->final_norm_bias, 0u);
    for (const LayerWeights &lw : weights->layers) {
        EXPECT_NE(lw.input_norm_bias, 0u);
        EXPECT_NE(lw.mlp_up, 0u);
        EXPECT_NE(lw.mlp_down, 0u);
        EXPECT_EQ(lw.gate_up, 0u);
        EXPECT_EQ(lw.post_norm, 0u);
    }
}

TEST(WeightsTest, AllocationOrderDeterministicWithinProcess)
{
    // The control flow allocates each layer's tensors in order: this
    // is the determinism Medusa's indirect-index analysis exploits.
    Harness h1(1), h2(1);
    const ModelConfig m = tiny(ModelArch::kQwen);
    auto w1 = initModelStructure(h1.alloc, m);
    auto w2 = initModelStructure(h2.alloc, m);
    ASSERT_TRUE(w1.isOk() && w2.isOk());
    EXPECT_EQ(w1->addrs, w2->addrs); // same seed: identical layout
}

TEST(WeightsTest, AddressesDifferAcrossProcessLaunches)
{
    Harness h1(1), h2(2);
    const ModelConfig m = tiny(ModelArch::kQwen);
    auto w1 = initModelStructure(h1.alloc, m);
    auto w2 = initModelStructure(h2.alloc, m);
    ASSERT_TRUE(w1.isOk() && w2.isOk());
    EXPECT_NE(w1->embed, w2->embed);
    EXPECT_NE(w1->layers[0].qkv_w, w2->layers[0].qkv_w);
}

TEST(WeightsTest, ContentsDeterministicAcrossProcesses)
{
    // Weights are "files on disk": both processes must see identical
    // contents, or Medusa's output validation could never be bit-exact.
    const ModelConfig m = tiny(ModelArch::kLlama);
    Harness h1(1), h2(99);
    auto w1 = initModelStructure(h1.alloc, m);
    auto w2 = initModelStructure(h2.alloc, m);
    ASSERT_TRUE(loadModelWeights(h1.process, m, *w1).isOk());
    ASSERT_TRUE(loadModelWeights(h2.process, m, *w2).isOk());
    for (std::size_t i = 0; i < w1->specs.size(); ++i) {
        const u64 n = w1->specs[i].func_elems;
        std::vector<f32> c1(n), c2(n);
        ASSERT_TRUE(h1.process.memory()
                        .read(w1->addrs[i], c1.data(), n * 4)
                        .isOk());
        ASSERT_TRUE(h2.process.memory()
                        .read(w2->addrs[i], c2.data(), n * 4)
                        .isOk());
        EXPECT_EQ(c1, c2) << w1->specs[i].name;
    }
}

TEST(WeightsTest, NormWeightsNearOne)
{
    const ModelConfig m = tiny(ModelArch::kLlama);
    Harness h;
    auto w = initModelStructure(h.alloc, m);
    ASSERT_TRUE(loadModelWeights(h.process, m, *w).isOk());
    std::vector<f32> norm(m.func.hidden);
    ASSERT_TRUE(h.process.memory()
                    .read(w->layers[0].input_norm, norm.data(),
                          norm.size() * 4)
                    .isOk());
    for (f32 v : norm) {
        EXPECT_GT(v, 0.9f);
        EXPECT_LT(v, 1.1f);
    }
}

TEST(WeightsTest, LoadingChargesSsdTime)
{
    const ModelConfig m = tiny(ModelArch::kLlama);
    Harness h;
    auto w = initModelStructure(h.alloc, m);
    const SimTimeNs before = h.clock.now();
    ASSERT_TRUE(loadModelWeights(h.process, m, *w).isOk());
    const f64 expected_sec =
        static_cast<f64>(w->total_logical_bytes) /
        (h.cost.ssd_read_gbps * 1e9);
    EXPECT_NEAR(units::nsToSec(h.clock.now() - before), expected_sec,
                expected_sec * 0.1);
}

} // namespace
} // namespace medusa::llm
