/**
 * @file
 * MetricsRegistry tests: counter/gauge/histogram semantics, handle
 * stability under the ThreadPool, snapshot/export, and cross-registry
 * merging (DESIGN.md §12).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/types.h"

namespace medusa {
namespace {

TEST(MetricsTest, CounterAndGaugeBasics)
{
    MetricsRegistry registry;
    registry.counter("restore.nodes").add(3);
    registry.counter("restore.nodes").add(2);
    registry.gauge("restore.wasted_sec").set(1.5);
    registry.gauge("restore.wasted_sec").add(0.25);

    const MetricsSnapshot snap = registry.snapshot();
    EXPECT_EQ(snap.counterValue("restore.nodes"), 5u);
    EXPECT_DOUBLE_EQ(snap.gaugeValue("restore.wasted_sec"), 1.75);
    EXPECT_TRUE(snap.has("restore.nodes"));
    EXPECT_FALSE(snap.has("restore.absent"));
    EXPECT_EQ(snap.counterValue("restore.absent"), 0u);
}

TEST(MetricsTest, HistogramBucketsAndClamping)
{
    MetricsRegistry registry;
    HistogramMetric &h =
        registry.histogram("restore.attempt_sec", 0.0, 10.0, 5);
    h.record(1.0);   // bucket 0
    h.record(3.0);   // bucket 1
    h.record(-4.0);  // clamps into bucket 0
    h.record(99.0);  // clamps into bucket 4
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.sum(), 99.0);
    const std::vector<u64> buckets = h.bucketCounts();
    ASSERT_EQ(buckets.size(), 5u);
    EXPECT_EQ(buckets[0], 2u);
    EXPECT_EQ(buckets[1], 1u);
    EXPECT_EQ(buckets[4], 1u);
    // The first caller owns the shape; a later mismatched request gets
    // the existing histogram.
    HistogramMetric &again =
        registry.histogram("restore.attempt_sec", 0.0, 100.0, 50);
    EXPECT_EQ(&again, &h);
}

TEST(MetricsTest, HandlesAreStableAndThreadSafe)
{
    MetricsRegistry registry;
    Counter &hot = registry.counter("cache.hits");
    constexpr std::size_t kPerWorker = 10000;
    ThreadPool pool(4);
    pool.parallelFor(8, [&](std::size_t) {
        // Half the workers use the cached handle, half re-lookup: both
        // must land on the same counter.
        for (std::size_t i = 0; i < kPerWorker; ++i) {
            hot.add(1);
            registry.counter("cache.hits").add(1);
        }
    });
    EXPECT_EQ(registry.snapshot().counterValue("cache.hits"),
              8u * kPerWorker * 2u);
}

TEST(MetricsTest, SnapshotSortedAndJsonCarriesSchemaVersion)
{
    MetricsRegistry registry;
    registry.counter("b.second").add(1);
    registry.counter("a.first").add(2);
    registry.gauge("c.third_sec").set(0.5);

    const MetricsSnapshot snap = registry.snapshot();
    ASSERT_EQ(snap.entries().size(), 3u);
    EXPECT_EQ(snap.entries()[0].name, "a.first");
    EXPECT_EQ(snap.entries()[1].name, "b.second");
    EXPECT_EQ(snap.entries()[2].name, "c.third_sec");

    const std::string json = snap.toJson();
    EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
    EXPECT_NE(json.find("\"a.first\":2"), std::string::npos);
    EXPECT_NE(json.find("\"c.third_sec\":0.5"), std::string::npos);
}

TEST(MetricsTest, MergeFromAddsCountersAndGauges)
{
    MetricsRegistry inner;
    inner.counter("restore.attempts").add(2);
    inner.gauge("restore.wasted_sec").set(0.5);
    inner.histogram("restore.attempt_sec", 0.0, 10.0, 5).record(4.0);

    MetricsRegistry outer;
    outer.counter("restore.attempts").add(1);
    outer.mergeFrom(inner.snapshot());
    outer.mergeFrom(inner.snapshot());

    const MetricsSnapshot snap = outer.snapshot();
    EXPECT_EQ(snap.counterValue("restore.attempts"), 5u);
    EXPECT_DOUBLE_EQ(snap.gaugeValue("restore.wasted_sec"), 1.0);
    for (const MetricsEntry &entry : snap.entries()) {
        if (entry.name == "restore.attempt_sec") {
            EXPECT_EQ(entry.kind, MetricsEntry::Kind::kHistogram);
            EXPECT_EQ(entry.histo_count, 2u);
        }
    }
}

TEST(MetricsTest, EmptyRegistryExportsCleanly)
{
    MetricsRegistry registry;
    const MetricsSnapshot snap = registry.snapshot();
    EXPECT_TRUE(snap.empty());
    EXPECT_EQ(snap.toJson(),
              "{\"schema_version\":1,\"metrics\":{}}");
}

} // namespace
} // namespace medusa
