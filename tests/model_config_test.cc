/**
 * @file
 * Tests of the model zoo configuration (Table 1's ten models) and the
 * capture batch-size schedule.
 */

#include <gtest/gtest.h>

#include "llm/model_config.h"

namespace medusa::llm {
namespace {

TEST(ModelConfigTest, ZooHasTenModelsInPaperOrder)
{
    const auto zoo = modelZoo();
    ASSERT_EQ(zoo.size(), 10u);
    EXPECT_EQ(zoo[0].name, "Falcon-7B");
    EXPECT_EQ(zoo[2].name, "Llama2-13B");
    EXPECT_EQ(zoo[9].name, "Yi-9B");
}

TEST(ModelConfigTest, CaptureBatchSizesMatchVllm)
{
    const auto sizes = captureBatchSizes();
    ASSERT_EQ(sizes.size(), 35u); // the paper's "35 different batch sizes"
    EXPECT_EQ(sizes[0], 1u);
    EXPECT_EQ(sizes[1], 2u);
    EXPECT_EQ(sizes[2], 4u);
    EXPECT_EQ(sizes[3], 8u);
    EXPECT_EQ(sizes.back(), 256u);
    for (std::size_t i = 4; i < sizes.size(); ++i) {
        EXPECT_EQ(sizes[i] - sizes[i - 1], 8u);
    }
}

TEST(ModelConfigTest, FindModelByName)
{
    auto m = findModel("Qwen1.5-4B");
    ASSERT_TRUE(m.isOk());
    EXPECT_EQ(m->num_layers, 40u);
    EXPECT_EQ(m->arch, ModelArch::kQwen);
    EXPECT_FALSE(findModel("GPT-5").isOk());
}

TEST(ModelConfigTest, ArchitecturesAssigned)
{
    EXPECT_EQ(findModel("Falcon-7B")->arch, ModelArch::kFalcon);
    EXPECT_EQ(findModel("Llama2-7B")->arch, ModelArch::kLlama);
    EXPECT_EQ(findModel("Yi-6B")->arch, ModelArch::kLlama);
    EXPECT_EQ(findModel("Qwen1.5-0.5B")->arch, ModelArch::kQwen);
}

TEST(ModelConfigTest, GqaMqaRatiosMirrored)
{
    // Falcon is MQA, Yi is GQA, the rest are MHA; the functional dims
    // mirror the ratio class.
    auto falcon = findModel("Falcon-7B");
    EXPECT_EQ(falcon->kv_heads, 1u);
    EXPECT_EQ(falcon->func.kv_heads, 1u);
    auto yi = findModel("Yi-6B");
    EXPECT_LT(yi->kv_heads, yi->heads);
    EXPECT_LT(yi->func.kv_heads, yi->func.heads);
    auto llama = findModel("Llama2-7B");
    EXPECT_EQ(llama->kv_heads, llama->heads);
    EXPECT_EQ(llama->func.kv_heads, llama->func.heads);
}

TEST(ModelConfigTest, HeadDimsConsistent)
{
    for (const ModelConfig &m : modelZoo()) {
        EXPECT_EQ(m.head_dim * m.heads, m.hidden) << m.name;
        EXPECT_EQ(m.func.head_dim * m.func.heads, m.func.hidden)
            << m.name;
        EXPECT_GT(m.vocab, 0u) << m.name;
        EXPECT_GT(m.seed, 0u) << m.name;
    }
}

TEST(ModelConfigTest, KvBlockBytesFormula)
{
    auto m = findModel("Llama2-7B");
    // 16 tokens/block * kv_dim * (K+V) * fp16 * layers
    const u64 expected = 16ull * 4096 * 2 * 2 * 32;
    EXPECT_EQ(m->kvBlockBytes(), expected);
}

TEST(ModelConfigTest, UniqueSeedsAcrossZoo)
{
    const auto zoo = modelZoo();
    for (std::size_t i = 0; i < zoo.size(); ++i) {
        for (std::size_t j = i + 1; j < zoo.size(); ++j) {
            EXPECT_NE(zoo[i].seed, zoo[j].seed);
        }
    }
}

} // namespace
} // namespace medusa::llm
