/**
 * @file
 * Tests of the deterministic fault-injection subsystem (common/fault.h)
 * and of the transactional restore behavior it drives: plan parsing,
 * per-point determinism, MedusaEngine fallback policies, ArtifactCache
 * failure backoff and the cluster simulator's degraded launches.
 */

#include <gtest/gtest.h>

#include "common/fault.h"
#include "llm/model_config.h"
#include "medusa/artifact_cache.h"
#include "medusa/offline.h"
#include "medusa/restore.h"
#include "serverless/cluster.h"

namespace medusa {
namespace {

using core::FallbackMode;
using core::MedusaEngine;
using core::OfflineOptions;
using core::materialize;
using llm::findModel;
using llm::ModelConfig;

ModelConfig
tinyModel()
{
    ModelConfig m = findModel("Qwen1.5-0.5B").value();
    m.num_layers = 4;
    return m;
}

/** One shared tiny artifact for the engine-level tests. */
const core::Artifact &
tinyArtifact()
{
    static const core::Artifact artifact = []() {
        OfflineOptions opts;
        opts.model = tinyModel();
        opts.pipeline.validate = false;
        auto result = materialize(opts);
        EXPECT_TRUE(result.isOk()) << result.status().toString();
        return std::move(result->artifact);
    }();
    return artifact;
}

// ---- plan parsing --------------------------------------------------------

TEST(FaultPlanTest, PointNamesRoundTrip)
{
    for (std::size_t i = 0; i < kFaultPointCount; ++i) {
        const auto point = static_cast<FaultPoint>(i);
        const std::string name = faultPointName(point);
        EXPECT_FALSE(name.empty());
        auto back = faultPointFromName(name);
        ASSERT_TRUE(back.isOk()) << name;
        EXPECT_EQ(*back, point);
    }
    EXPECT_FALSE(faultPointFromName("no_such_point").isOk());
}

TEST(FaultPlanTest, ParsesSpecForms)
{
    auto plan = FaultPlan::fromSpec("dlsym@2x1;crc=0.25,seed=9");
    ASSERT_TRUE(plan.isOk()) << plan.status().toString();
    EXPECT_EQ(plan->seed, 9u);
    const FaultRule &dlsym = plan->rule(FaultPoint::kKernelDlsym);
    EXPECT_EQ(dlsym.fire_on_hit, 2u);
    EXPECT_EQ(dlsym.max_fires, 1u);
    const FaultRule &crc = plan->rule(FaultPoint::kArtifactCrc);
    EXPECT_DOUBLE_EQ(crc.probability, 0.25);
    EXPECT_TRUE(plan->enabled());

    // A bare point name always fires.
    auto bare = FaultPlan::fromSpec("instantiate");
    ASSERT_TRUE(bare.isOk());
    EXPECT_DOUBLE_EQ(
        bare->rule(FaultPoint::kGraphInstantiate).probability, 1.0);

    EXPECT_FALSE(FaultPlan::fromSpec("bogus_point@1").isOk());
    EXPECT_FALSE(FaultPlan::fromSpec("crc=notanumber").isOk());
}

TEST(FaultPlanTest, DuplicatePointIsAnError)
{
    // A second rule for the same point used to silently overwrite the
    // first; it must be rejected and name the offender.
    auto dup = FaultPlan::fromSpec("dlsym@2;crc=0.1;dlsym=0.5");
    ASSERT_FALSE(dup.isOk());
    EXPECT_NE(dup.status().message().find("duplicate"),
              std::string::npos);
    EXPECT_NE(dup.status().message().find("dlsym"), std::string::npos);

    auto json_dup = FaultPlan::fromJson(
        "{\"seed\":1,\"rules\":[{\"point\":\"crc\",\"probability\":0.1},"
        "{\"point\":\"crc\",\"fire_on_hit\":2}]}");
    ASSERT_FALSE(json_dup.isOk());
    EXPECT_NE(json_dup.status().message().find("duplicate"),
              std::string::npos);
    EXPECT_NE(json_dup.status().message().find("crc"),
              std::string::npos);
}

TEST(FaultPlanTest, UnknownPointErrorListsValidNames)
{
    auto bad = FaultPlan::fromSpec("no_such_point=0.5");
    ASSERT_FALSE(bad.isOk());
    const std::string &msg = bad.status().message();
    EXPECT_NE(msg.find("no_such_point"), std::string::npos);
    // The error enumerates every valid point name.
    for (std::size_t i = 0; i < kFaultPointCount; ++i) {
        const char *name = faultPointName(static_cast<FaultPoint>(i));
        EXPECT_NE(msg.find(name), std::string::npos) << name;
    }
}

TEST(FaultPlanTest, SpecRendersBack)
{
    auto plan = FaultPlan::fromSpec("dlsym@2x1;seed=9");
    ASSERT_TRUE(plan.isOk());
    auto again = FaultPlan::fromSpec(plan->toSpec());
    ASSERT_TRUE(again.isOk()) << plan->toSpec();
    EXPECT_EQ(again->seed, plan->seed);
    EXPECT_EQ(again->rule(FaultPoint::kKernelDlsym).fire_on_hit, 2u);
    EXPECT_EQ(again->rule(FaultPoint::kKernelDlsym).max_fires, 1u);
}

TEST(FaultPlanTest, ParsesJsonForm)
{
    auto plan = FaultPlan::fromJson(
        "{\"seed\":7,\"rules\":[{\"point\":\"replay_alloc\","
        "\"probability\":0.5,\"fire_on_hit\":3,\"max_fires\":2}]}");
    ASSERT_TRUE(plan.isOk()) << plan.status().toString();
    EXPECT_EQ(plan->seed, 7u);
    const FaultRule &rule = plan->rule(FaultPoint::kReplayAlloc);
    EXPECT_DOUBLE_EQ(rule.probability, 0.5);
    EXPECT_EQ(rule.fire_on_hit, 3u);
    EXPECT_EQ(rule.max_fires, 2u);

    EXPECT_FALSE(FaultPlan::fromJson("{not json").isOk());
}

// ---- injector semantics --------------------------------------------------

TEST(FaultInjectorTest, FiresOnExactHitOrdinal)
{
    auto plan = FaultPlan::fromSpec("dlsym@3x1");
    ASSERT_TRUE(plan.isOk());
    FaultInjector injector(*plan);
    EXPECT_TRUE(injector.check(FaultPoint::kKernelDlsym).isOk());
    EXPECT_TRUE(injector.check(FaultPoint::kKernelDlsym).isOk());
    const Status third = injector.check(FaultPoint::kKernelDlsym, "k3");
    EXPECT_EQ(third.code(), StatusCode::kFaultInjected);
    // max_fires=1: later hits pass again.
    EXPECT_TRUE(injector.check(FaultPoint::kKernelDlsym).isOk());
    EXPECT_EQ(injector.hits(FaultPoint::kKernelDlsym), 4u);
    EXPECT_EQ(injector.fires(FaultPoint::kKernelDlsym), 1u);
    EXPECT_EQ(injector.totalFires(), 1u);
}

TEST(FaultInjectorTest, SameSeedSameSchedule)
{
    auto plan = FaultPlan::fromSpec("crc=0.3;seed=1234");
    ASSERT_TRUE(plan.isOk());
    FaultInjector a(*plan);
    FaultInjector b(*plan);
    for (int i = 0; i < 200; ++i) {
        EXPECT_EQ(a.check(FaultPoint::kArtifactCrc).isOk(),
                  b.check(FaultPoint::kArtifactCrc).isOk())
            << "hit " << i;
    }
    EXPECT_EQ(a.fires(FaultPoint::kArtifactCrc),
              b.fires(FaultPoint::kArtifactCrc));
    EXPECT_GT(a.fires(FaultPoint::kArtifactCrc), 0u);
    EXPECT_LT(a.fires(FaultPoint::kArtifactCrc), 200u);

    // reset() rewinds to the identical schedule.
    const u64 before = a.fires(FaultPoint::kArtifactCrc);
    a.reset();
    for (int i = 0; i < 200; ++i) {
        a.check(FaultPoint::kArtifactCrc);
    }
    EXPECT_EQ(a.fires(FaultPoint::kArtifactCrc), before);
}

TEST(FaultInjectorTest, StreamsAreIndependentAcrossPoints)
{
    auto plan = FaultPlan::fromSpec("crc=0.3;dlsym=0.3;seed=42");
    ASSERT_TRUE(plan.isOk());
    // Interleaving hits at another point must not change crc's schedule.
    FaultInjector pure(*plan);
    FaultInjector mixed(*plan);
    std::vector<bool> pure_fires, mixed_fires;
    for (int i = 0; i < 100; ++i) {
        pure_fires.push_back(
            !pure.check(FaultPoint::kArtifactCrc).isOk());
        mixed.check(FaultPoint::kKernelDlsym);
        mixed_fires.push_back(
            !mixed.check(FaultPoint::kArtifactCrc).isOk());
    }
    EXPECT_EQ(pure_fires, mixed_fires);
}

TEST(FaultInjectorTest, DrawFractionDeterministic)
{
    auto plan = FaultPlan::fromSpec("seed=5");
    ASSERT_TRUE(plan.isOk());
    FaultInjector a(*plan);
    FaultInjector b(*plan);
    for (int i = 0; i < 16; ++i) {
        const f64 fa = a.drawFraction(FaultPoint::kClusterRestore);
        EXPECT_GE(fa, 0.0);
        EXPECT_LT(fa, 1.0);
        EXPECT_DOUBLE_EQ(fa, b.drawFraction(FaultPoint::kClusterRestore));
    }
}

// ---- MedusaEngine fallback policies -------------------------------------

TEST(FaultRestoreTest, DefaultPolicyPropagatesInjectedFailure)
{
    auto plan = FaultPlan::fromSpec("replay_prefix@1");
    ASSERT_TRUE(plan.isOk());
    FaultInjector injector(*plan);

    MedusaEngine::Options eopts;
    eopts.model = tinyModel();
    eopts.restore.pipeline.fault = &injector;
    auto engine = MedusaEngine::coldStart(eopts, tinyArtifact());
    ASSERT_FALSE(engine.isOk());
    EXPECT_EQ(engine.status().code(), StatusCode::kFaultInjected);
}

TEST(FaultRestoreTest, RetrySucceedsAndAccountsWaste)
{
    // The first restore attempt dies in the replay prefix; the retry
    // must succeed and the report must carry the full accounting.
    auto plan = FaultPlan::fromSpec("replay_prefix@1x1");
    ASSERT_TRUE(plan.isOk());
    FaultInjector injector(*plan);

    MedusaEngine::Options eopts;
    eopts.model = tinyModel();
    eopts.restore.pipeline.validate = true;
    eopts.restore.pipeline.fault = &injector;
    eopts.restore.fallback.mode = FallbackMode::kRetryThenVanilla;
    eopts.restore.fallback.max_attempts = 2;
    auto engine = MedusaEngine::coldStart(eopts, tinyArtifact());
    ASSERT_TRUE(engine.isOk()) << engine.status().toString();

    const core::RestoreReport &report = (*engine)->coldStartReport().restore;
    EXPECT_EQ(report.restore_attempts, 2u);
    EXPECT_EQ(report.restore_failures, 1u);
    EXPECT_EQ(report.retries, 1u);
    EXPECT_FALSE(report.fallback_vanilla);
    EXPECT_GT(report.wasted_restore_sec, 0.0);
    EXPECT_GT(report.backoff_sec, 0.0);
    EXPECT_NE(report.last_failure.find("FAULT_INJECTED"),
              std::string::npos)
        << report.last_failure;
    EXPECT_TRUE(report.validated);
    EXPECT_GT(report.graphs_restored, 0u);

    // The waste and the backoff are charged to the visible latency.
    MedusaEngine::Options clean = eopts;
    clean.restore.pipeline.fault = nullptr;
    auto reference = MedusaEngine::coldStart(clean, tinyArtifact());
    ASSERT_TRUE(reference.isOk());
    EXPECT_GT((*engine)->coldStartReport().times.loading,
              (*reference)->coldStartReport().times.loading);
}

TEST(FaultRestoreTest, VanillaFallbackYieldsWorkingEngine)
{
    // Every attempt dies in kernel resolution: the engine must degrade
    // to the classic profile+capture cold start and still serve.
    auto plan = FaultPlan::fromSpec("dlsym");
    ASSERT_TRUE(plan.isOk());
    FaultInjector injector(*plan);

    MedusaEngine::Options eopts;
    eopts.model = tinyModel();
    eopts.restore.pipeline.fault = &injector;
    eopts.restore.fallback.mode = FallbackMode::kVanillaColdStart;
    auto engine = MedusaEngine::coldStart(eopts, tinyArtifact());
    ASSERT_TRUE(engine.isOk()) << engine.status().toString();

    const core::RestoreReport &report = (*engine)->coldStartReport().restore;
    EXPECT_TRUE(report.fallback_vanilla);
    EXPECT_EQ(report.restore_attempts, 1u);
    EXPECT_EQ(report.restore_failures, 1u);
    EXPECT_EQ(report.retries, 0u);
    EXPECT_EQ(report.graphs_restored, 0u);
    EXPECT_GT(report.wasted_restore_sec, 0.0);

    // The degraded engine serves with captured graphs.
    auto &rt = (*engine)->runtime();
    EXPECT_GT(rt.graphCount(), 0u);
    auto tokens = rt.generate({1, 2, 3}, 4);
    ASSERT_TRUE(tokens.isOk()) << tokens.status().toString();
    EXPECT_EQ(tokens->size(), 4u);
}

TEST(FaultRestoreTest, RetriesExhaustedDegradeToVanilla)
{
    auto plan = FaultPlan::fromSpec("enumeration");
    ASSERT_TRUE(plan.isOk());
    FaultInjector injector(*plan);

    MedusaEngine::Options eopts;
    eopts.model = tinyModel();
    eopts.restore.pipeline.fault = &injector;
    eopts.restore.fallback.mode = FallbackMode::kRetryThenVanilla;
    eopts.restore.fallback.max_attempts = 3;
    auto engine = MedusaEngine::coldStart(eopts, tinyArtifact());
    ASSERT_TRUE(engine.isOk()) << engine.status().toString();

    const core::RestoreReport &report = (*engine)->coldStartReport().restore;
    EXPECT_EQ(report.restore_attempts, 3u);
    EXPECT_EQ(report.restore_failures, 3u);
    EXPECT_EQ(report.retries, 2u);
    EXPECT_TRUE(report.fallback_vanilla);
}

TEST(FaultRestoreTest, DisabledInjectionIsBitIdentical)
{
    // fault == nullptr must leave latency and report untouched: two
    // runs, one against an engine carrying a non-firing injector.
    auto plan = FaultPlan::fromSpec("seed=3"); // no active rules
    ASSERT_TRUE(plan.isOk());
    EXPECT_FALSE(plan->enabled());
    FaultInjector idle(*plan);

    MedusaEngine::Options eopts;
    eopts.model = tinyModel();
    eopts.aslr_seed = 777;
    eopts.restore.pipeline.validate = true;
    auto plain = MedusaEngine::coldStart(eopts, tinyArtifact());
    ASSERT_TRUE(plain.isOk());

    eopts.restore.pipeline.fault = &idle;
    auto hooked = MedusaEngine::coldStart(eopts, tinyArtifact());
    ASSERT_TRUE(hooked.isOk());

    EXPECT_EQ((*plain)->coldStartReport().times.loading, (*hooked)->coldStartReport().times.loading);
    EXPECT_EQ((*plain)->coldStartReport().times.coldStart(),
              (*hooked)->coldStartReport().times.coldStart());
    EXPECT_EQ((*plain)->coldStartReport().restore.graphs_restored,
              (*hooked)->coldStartReport().restore.graphs_restored);
    EXPECT_EQ((*plain)->coldStartReport().restore.nodes_restored,
              (*hooked)->coldStartReport().restore.nodes_restored);
    EXPECT_EQ((*hooked)->coldStartReport().restore.restore_attempts, 1u);
    EXPECT_EQ((*hooked)->coldStartReport().restore.restore_failures, 0u);
    EXPECT_EQ((*plain)->runtime().process().stateFingerprint(),
              (*hooked)->runtime().process().stateFingerprint());
}

// ---- ArtifactCache failure records --------------------------------------

TEST(FaultCacheTest, RecordsFailureStatusAndBacksOff)
{
    core::ArtifactCache cache(/*capacity=*/2,
                              /*initial_backoff_ms=*/1.0,
                              /*max_backoff_ms=*/4.0);
    int runs = 0;
    auto failing = [&]() -> StatusOr<core::Artifact> {
        ++runs;
        return internalError("node died");
    };
    auto first = cache.getOrLoad("k", failing);
    ASSERT_FALSE(first.isOk());
    EXPECT_EQ(runs, 1);
    EXPECT_EQ(cache.keyFailure("k").code(), StatusCode::kInternal);
    EXPECT_EQ(cache.metricsSnapshot().counterValue("artifact_cache.failed_loads"), 1u);
    EXPECT_EQ(cache.lastFailure().code(), StatusCode::kInternal);

    // An immediate retry waits out the backoff (counted), then runs
    // the loader again.
    auto second = cache.getOrLoad("k", failing);
    ASSERT_FALSE(second.isOk());
    EXPECT_EQ(runs, 2);
    EXPECT_GE(cache.metricsSnapshot().counterValue("artifact_cache.backoff_waits"), 1u);

    // Success clears the failure record.
    auto ok = cache.getOrLoad("k", [&]() -> StatusOr<core::Artifact> {
        return core::Artifact{};
    });
    ASSERT_TRUE(ok.isOk());
    EXPECT_TRUE(cache.keyFailure("k").isOk());
}

TEST(FaultCacheTest, InjectorFailsLoaderWithoutRunningIt)
{
    auto plan = FaultPlan::fromSpec("cache_loader@1x1");
    ASSERT_TRUE(plan.isOk());
    FaultInjector injector(*plan);

    core::ArtifactCache cache(2, 0.0, 0.0); // no backoff delay
    cache.setFaultInjector(&injector);
    int runs = 0;
    auto loader = [&]() -> StatusOr<core::Artifact> {
        ++runs;
        return core::Artifact{};
    };
    auto first = cache.getOrLoad("k", loader);
    ASSERT_FALSE(first.isOk());
    EXPECT_EQ(first.status().code(), StatusCode::kFaultInjected);
    EXPECT_EQ(runs, 0); // the fault preempted the fetch
    auto second = cache.getOrLoad("k", loader);
    ASSERT_TRUE(second.isOk()) << second.status().toString();
    EXPECT_EQ(runs, 1);
}

// ---- cluster simulation under launch faults ------------------------------

using serverless::ClusterOptions;
using serverless::ServingProfile;
using serverless::simulateCluster;

ServingProfile
toyProfile()
{
    ServingProfile p;
    p.model_name = "toy";
    p.strategy = llm::Strategy::kVllm;
    p.loading_sec = 2.0;
    p.cold_start_sec = 2.0;
    p.batch_sizes = {1, 10};
    p.decode_step_sec = {0.01, 0.10};
    p.prefill_tokens = {100, 1000};
    p.prefill_sec = {0.1, 1.0};
    return p;
}

/** Sets options.profile and calls the public simulateCluster entry. */
serverless::TraceMetrics
runCluster(ClusterOptions opts, const ServingProfile &profile,
           const std::vector<workload::Request> &trace)
{
    opts.profile = &profile;
    return simulateCluster(opts, trace);
}

std::vector<workload::Request>
simpleTrace(int n, f64 gap)
{
    std::vector<workload::Request> trace;
    for (int i = 0; i < n; ++i) {
        workload::Request r;
        r.arrival_sec = i * gap;
        r.prompt_tokens = 100;
        r.output_tokens = 3;
        trace.push_back(r);
    }
    return trace;
}

TEST(FaultClusterTest, AllRequestsCompleteUnderRetryThenVanilla)
{
    auto plan = FaultPlan::fromSpec("cluster_restore=0.5;seed=11");
    ASSERT_TRUE(plan.isOk());
    FaultInjector injector(*plan);

    ClusterOptions opts;
    opts.pipeline.fault = &injector;
    opts.fallback.mode = FallbackMode::kRetryThenVanilla;
    opts.fallback.max_attempts = 2;
    opts.vanilla_cold_start_sec = 8.0;
    // Spread arrivals so instances idle out and relaunch, exercising
    // many faulted cold starts.
    opts.idle_timeout_sec = 1.0;
    const auto metrics =
        runCluster(opts, toyProfile(), simpleTrace(20, 10.0));
    EXPECT_EQ(metrics.completed, 20u);
    EXPECT_GT(metrics.restore_failures, 0u);
    EXPECT_GT(metrics.wasted_restore_sec, 0.0);
    EXPECT_EQ(metrics.retries + metrics.fallback_cold_starts,
              metrics.restore_failures);
}

TEST(FaultClusterTest, FaultFreeRunMatchesNoInjector)
{
    auto plan = FaultPlan::fromSpec("seed=2"); // nothing fires
    ASSERT_TRUE(plan.isOk());
    FaultInjector idle(*plan);

    ClusterOptions plain;
    const auto a =
        runCluster(plain, toyProfile(), simpleTrace(10, 1.0));

    ClusterOptions hooked;
    hooked.pipeline.fault = &idle;
    const auto b =
        runCluster(hooked, toyProfile(), simpleTrace(10, 1.0));

    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.cold_starts, b.cold_starts);
    EXPECT_DOUBLE_EQ(a.ttft_sec.p50(), b.ttft_sec.p50());
    EXPECT_DOUBLE_EQ(a.makespan_sec, b.makespan_sec);
    EXPECT_EQ(b.restore_failures, 0u);
    EXPECT_EQ(b.fallback_cold_starts, 0u);
}

TEST(FaultClusterTest, FailPolicyStillDrainsTheTrace)
{
    // Probabilistic launch deaths under kFail: dead instances are
    // relaunched by the dispatcher until demand is met, so the trace
    // still completes (at higher latency).
    auto plan = FaultPlan::fromSpec("cluster_restore=0.4;seed=21");
    ASSERT_TRUE(plan.isOk());
    FaultInjector injector(*plan);

    ClusterOptions opts;
    opts.pipeline.fault = &injector;
    opts.fallback.mode = FallbackMode::kFail;
    const auto metrics =
        runCluster(opts, toyProfile(), simpleTrace(10, 1.0));
    EXPECT_EQ(metrics.completed, 10u);
    EXPECT_GT(metrics.restore_failures, 0u);
    EXPECT_EQ(metrics.fallback_cold_starts, 0u);
    EXPECT_EQ(metrics.retries, 0u);
}

} // namespace
} // namespace medusa
