/**
 * @file
 * Tests of the paged KV cache: block manager semantics and the
 * free-memory-driven cache reservation of stage ❹.
 */

#include <gtest/gtest.h>

#include "llm/kv_cache.h"

namespace medusa::llm {
namespace {

TEST(BlockManagerTest, DummyBlockReserved)
{
    BlockManager bm(8);
    EXPECT_EQ(bm.totalBlocks(), 8u);
    EXPECT_EQ(bm.freeBlocks(), 7u); // block 0 is the padding dummy
    for (int i = 0; i < 7; ++i) {
        auto b = bm.allocate();
        ASSERT_TRUE(b.isOk());
        EXPECT_GT(*b, 0);
    }
}

TEST(BlockManagerTest, ExhaustionAndRecycle)
{
    BlockManager bm(3);
    auto a = bm.allocate();
    auto b = bm.allocate();
    ASSERT_TRUE(a.isOk() && b.isOk());
    auto c = bm.allocate();
    EXPECT_EQ(c.status().code(), StatusCode::kOutOfMemory);
    ASSERT_TRUE(bm.free(*a).isOk());
    EXPECT_TRUE(bm.allocate().isOk());
}

TEST(BlockManagerTest, InvalidFreesRejected)
{
    BlockManager bm(4);
    EXPECT_FALSE(bm.free(0).isOk());  // dummy block
    EXPECT_FALSE(bm.free(-1).isOk());
    EXPECT_FALSE(bm.free(4).isOk());  // out of range
}

TEST(BlockManagerTest, AllocationIsDeterministic)
{
    BlockManager a(16), b(16);
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(*a.allocate(), *b.allocate());
    }
}

class KvCacheTest : public ::testing::Test
{
  protected:
    KvCacheTest()
        : process_(simcuda::GpuProcessOptions{}, &clock_, &cost_),
          alloc_(&process_)
    {
    }

    SimClock clock_;
    CostModel cost_;
    simcuda::GpuProcess process_;
    simcuda::CachingAllocator alloc_;
};

TEST_F(KvCacheTest, ReservesPerLayerTensors)
{
    ModelConfig m = findModel("Llama2-7B").value();
    m.num_layers = 4;
    const u64 free_bytes = 8ull * units::GiB;
    auto cache = allocateKvCache(alloc_, m, free_bytes);
    ASSERT_TRUE(cache.isOk());
    EXPECT_EQ(cache->k_layers.size(), 4u);
    EXPECT_EQ(cache->v_layers.size(), 4u);
    EXPECT_TRUE(cache->initialized());

    // 90% utilization of the free memory, block-quantized.
    const u64 expected_blocks =
        static_cast<u64>(free_bytes * 0.9) / m.kvBlockBytes();
    EXPECT_EQ(cache->real_num_blocks, expected_blocks);
    EXPECT_EQ(cache->logical_bytes,
              expected_blocks * m.kvBlockBytes());
    // The reservation is accounted against device memory.
    EXPECT_GE(process_.memory().usedLogicalBytes(),
              cache->logical_bytes * 9 / 10);
}

TEST_F(KvCacheTest, FailsWhenNoRoom)
{
    ModelConfig m = findModel("Llama2-7B").value();
    auto cache = allocateKvCache(alloc_, m, 1000); // less than one block
    EXPECT_EQ(cache.status().code(), StatusCode::kOutOfMemory);
}

TEST_F(KvCacheTest, SameFreeMemorySameBlockCount)
{
    // The §6 invariant: the same <GPU, model> free-memory value yields
    // the same cache geometry — what makes KV-init materializable.
    ModelConfig m = findModel("Qwen1.5-0.5B").value();
    m.num_layers = 2;
    auto c1 = allocateKvCache(alloc_, m, 4 * units::GiB);
    auto c2 = allocateKvCache(alloc_, m, 4 * units::GiB);
    ASSERT_TRUE(c1.isOk() && c2.isOk());
    EXPECT_EQ(c1->real_num_blocks, c2->real_num_blocks);
}

} // namespace
} // namespace medusa::llm
