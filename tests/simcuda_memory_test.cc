/**
 * @file
 * Unit tests for the simulated device memory: allocation accounting,
 * address non-determinism across process launches (ASLR), bounds
 * checking of functional accesses, and containment queries.
 */

#include <gtest/gtest.h>

#include "simcuda/memory.h"

namespace medusa::simcuda {
namespace {

TEST(DeviceMemoryTest, AllocateAndAccount)
{
    DeviceMemoryManager mem(1 * units::GiB, 1);
    EXPECT_EQ(mem.freeLogicalBytes(), 1 * units::GiB);
    auto a = mem.malloc(1000, 64);
    ASSERT_TRUE(a.isOk());
    EXPECT_EQ(mem.usedLogicalBytes(), 1000u);
    EXPECT_EQ(mem.liveAllocations(), 1u);
    ASSERT_TRUE(mem.free(*a).isOk());
    EXPECT_EQ(mem.usedLogicalBytes(), 0u);
    EXPECT_EQ(mem.liveAllocations(), 0u);
}

TEST(DeviceMemoryTest, ZeroSizeRejected)
{
    DeviceMemoryManager mem(units::MiB, 1);
    EXPECT_FALSE(mem.malloc(0, 0).isOk());
}

TEST(DeviceMemoryTest, OutOfMemory)
{
    DeviceMemoryManager mem(units::MiB, 1);
    auto a = mem.malloc(units::MiB, 0);
    ASSERT_TRUE(a.isOk());
    auto b = mem.malloc(1, 0);
    ASSERT_FALSE(b.isOk());
    EXPECT_EQ(b.status().code(), StatusCode::kOutOfMemory);
}

TEST(DeviceMemoryTest, DoubleFreeRejected)
{
    DeviceMemoryManager mem(units::MiB, 1);
    auto a = mem.malloc(100, 0);
    ASSERT_TRUE(mem.free(*a).isOk());
    EXPECT_FALSE(mem.free(*a).isOk());
}

TEST(DeviceMemoryTest, AddressesAreHighCanonical)
{
    DeviceMemoryManager mem(units::GiB, 99);
    auto a = mem.malloc(100, 0);
    // The pointer-classification heuristic depends on this prefix.
    EXPECT_GE(*a, DeviceMemoryManager::kAddrBase);
    EXPECT_LT(*a, 0x800000000000ull);
}

TEST(DeviceMemoryTest, AslrChangesAddressesAcrossLaunches)
{
    DeviceMemoryManager mem1(units::GiB, 1);
    DeviceMemoryManager mem2(units::GiB, 2);
    auto a1 = mem1.malloc(4096, 0);
    auto a2 = mem2.malloc(4096, 0);
    EXPECT_NE(*a1, *a2);
}

TEST(DeviceMemoryTest, SameSeedSameAddresses)
{
    DeviceMemoryManager mem1(units::GiB, 42);
    DeviceMemoryManager mem2(units::GiB, 42);
    EXPECT_EQ(*mem1.malloc(4096, 0), *mem2.malloc(4096, 0));
}

TEST(DeviceMemoryTest, AllocationsNeverOverlapLogically)
{
    DeviceMemoryManager mem(units::GiB, 3);
    DeviceAddr prev_end = 0;
    for (int i = 0; i < 100; ++i) {
        auto a = mem.malloc(1000 + i * 37, 0);
        ASSERT_TRUE(a.isOk());
        EXPECT_GE(*a, prev_end);
        prev_end = *a + 1000 + i * 37;
    }
}

TEST(DeviceMemoryTest, WriteReadRoundTrip)
{
    DeviceMemoryManager mem(units::GiB, 1);
    auto a = mem.malloc(4096, 64);
    const u32 value = 0xabad1deau;
    ASSERT_TRUE(mem.write(*a + 8, &value, sizeof(value)).isOk());
    u32 out = 0;
    ASSERT_TRUE(mem.read(*a + 8, &out, sizeof(out)).isOk());
    EXPECT_EQ(out, value);
}

TEST(DeviceMemoryTest, AccessBeyondBackingFails)
{
    DeviceMemoryManager mem(units::GiB, 1);
    // Logical 4096 but only 64 bytes of functional backing.
    auto a = mem.malloc(4096, 64);
    u8 byte = 0;
    EXPECT_TRUE(mem.read(*a + 63, &byte, 1).isOk());
    EXPECT_FALSE(mem.read(*a + 64, &byte, 1).isOk());
    EXPECT_FALSE(mem.write(*a + 60, &byte, 8).isOk());
}

TEST(DeviceMemoryTest, UnmappedAccessFails)
{
    DeviceMemoryManager mem(units::GiB, 1);
    u8 byte = 0;
    EXPECT_FALSE(mem.read(DeviceMemoryManager::kAddrBase, &byte, 1)
                     .isOk());
}

TEST(DeviceMemoryTest, FreedMemoryNoLongerAccessible)
{
    DeviceMemoryManager mem(units::GiB, 1);
    auto a = mem.malloc(128, 128);
    ASSERT_TRUE(mem.free(*a).isOk());
    u8 byte = 0;
    EXPECT_FALSE(mem.read(*a, &byte, 1).isOk());
}

TEST(DeviceMemoryTest, F32SpanIsMutable)
{
    DeviceMemoryManager mem(units::GiB, 1);
    auto a = mem.malloc(1024, 1024);
    auto span = mem.f32Span(*a, 4);
    ASSERT_TRUE(span.isOk());
    (*span)[2] = 1.5f;
    f32 out = 0;
    ASSERT_TRUE(mem.read(*a + 8, &out, 4).isOk());
    EXPECT_FLOAT_EQ(out, 1.5f);
}

TEST(DeviceMemoryTest, I32SpanWorks)
{
    DeviceMemoryManager mem(units::GiB, 1);
    auto a = mem.malloc(64, 64);
    auto span = mem.i32Span(*a, 4);
    ASSERT_TRUE(span.isOk());
    (*span)[0] = -7;
    i32 out = 0;
    ASSERT_TRUE(mem.read(*a, &out, 4).isOk());
    EXPECT_EQ(out, -7);
}

TEST(DeviceMemoryTest, FindContainingUsesLogicalExtent)
{
    DeviceMemoryManager mem(units::GiB, 1);
    // Logical 4096, backing only 16: interior logical pointers must
    // still be attributed to this allocation (trace matching relies on
    // range containment).
    auto a = mem.malloc(4096, 16);
    const AllocationRecord *rec = mem.findContaining(*a + 4000);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->base, *a);
    EXPECT_EQ(mem.findContaining(*a + 4096 + 100000), nullptr);
}

} // namespace
} // namespace medusa::simcuda
