/**
 * @file
 * Tests of the serverless layer: the event loop, serving-profile
 * interpolation, and the cluster simulation (cold starts, autoscaling,
 * idle reclaim, TTFT accounting).
 */

#include <gtest/gtest.h>

#include "serverless/cluster.h"
#include "serverless/event_sim.h"

namespace medusa::serverless {
namespace {

TEST(EventLoopTest, RunsInTimeOrder)
{
    EventLoop loop;
    std::vector<int> order;
    loop.schedule(3.0, [&]() { order.push_back(3); });
    loop.schedule(1.0, [&]() { order.push_back(1); });
    loop.schedule(2.0, [&]() { order.push_back(2); });
    loop.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(loop.now(), 3.0);
}

TEST(EventLoopTest, SameTimeIsFifo)
{
    EventLoop loop;
    std::vector<int> order;
    loop.schedule(1.0, [&]() { order.push_back(1); });
    loop.schedule(1.0, [&]() { order.push_back(2); });
    loop.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventLoopTest, HandlersCanScheduleMore)
{
    EventLoop loop;
    int fired = 0;
    loop.schedule(1.0, [&]() {
        ++fired;
        loop.scheduleAfter(0.5, [&]() { ++fired; });
    });
    loop.run();
    EXPECT_EQ(fired, 2);
    EXPECT_DOUBLE_EQ(loop.now(), 1.5);
}

/** A hand-made profile with easy arithmetic. */
ServingProfile
toyProfile(f64 cold_start = 2.0)
{
    ServingProfile p;
    p.model_name = "toy";
    p.strategy = llm::Strategy::kVllm;
    p.loading_sec = cold_start;
    p.cold_start_sec = cold_start;
    p.batch_sizes = {1, 10};
    p.decode_step_sec = {0.01, 0.10};
    p.prefill_tokens = {100, 1000};
    p.prefill_sec = {0.1, 1.0};
    return p;
}

/** Sets options.profile and calls the public simulateCluster entry. */
TraceMetrics
runCluster(ClusterOptions opts, const ServingProfile &profile,
           const std::vector<workload::Request> &trace)
{
    opts.profile = &profile;
    return simulateCluster(opts, trace);
}

TEST(ProfileTest, InterpolatesAndExtrapolates)
{
    const ServingProfile p = toyProfile();
    EXPECT_DOUBLE_EQ(p.decodeStep(1), 0.01);
    EXPECT_DOUBLE_EQ(p.decodeStep(10), 0.10);
    EXPECT_NEAR(p.decodeStep(5), 0.05, 1e-9);
    EXPECT_NEAR(p.decodeStep(20), 0.20, 1e-9); // linear extrapolation
    EXPECT_DOUBLE_EQ(p.decodeStep(0), 0.01);   // clamped low
    EXPECT_NEAR(p.prefill(550), 0.55, 1e-9);
}

std::vector<workload::Request>
simpleTrace(int n, f64 gap, u32 prompt = 100, u32 output = 3)
{
    std::vector<workload::Request> trace;
    for (int i = 0; i < n; ++i) {
        workload::Request r;
        r.arrival_sec = i * gap;
        r.prompt_tokens = prompt;
        r.output_tokens = output;
        trace.push_back(r);
    }
    return trace;
}

TEST(ClusterTest, SingleRequestPaysColdStartPlusPrefill)
{
    ClusterOptions opts;
    const ServingProfile p = toyProfile(2.0);
    const auto metrics = runCluster(opts, p, simpleTrace(1, 1.0));
    EXPECT_EQ(metrics.completed, 1u);
    EXPECT_EQ(metrics.cold_starts, 1u);
    // TTFT = cold start (2.0) + prefill(100 tokens) = 2.1.
    EXPECT_NEAR(metrics.ttft_sec.p50(), 2.1, 1e-6);
    // E2E adds (output-1) decode steps at bs=1.
    EXPECT_NEAR(metrics.e2e_sec.p50(), 2.1 + 2 * 0.01, 1e-6);
}

TEST(ClusterTest, WarmInstanceServesLaterRequestsQuickly)
{
    ClusterOptions opts;
    opts.idle_timeout_sec = 60.0; // keep the instance warm across gaps
    const ServingProfile p = toyProfile(2.0);
    // Second request arrives long after the first: instance is warm.
    auto trace = simpleTrace(2, 10.0);
    const auto metrics = runCluster(opts, p, trace);
    EXPECT_EQ(metrics.completed, 2u);
    EXPECT_EQ(metrics.cold_starts, 1u);
    EXPECT_NEAR(metrics.ttft_sec.samples()[1], 0.1, 1e-6);
}

TEST(ClusterTest, IdleInstanceReclaimedThenColdStartsAgain)
{
    ClusterOptions opts;
    opts.idle_timeout_sec = 3.0;
    const ServingProfile p = toyProfile(1.0);
    // Gap of 20 s >> idle timeout: the second request cold-starts anew.
    const auto metrics = runCluster(opts, p, simpleTrace(2, 20.0));
    EXPECT_EQ(metrics.cold_starts, 2u);
    EXPECT_NEAR(metrics.ttft_sec.samples()[1], 1.1, 1e-6);
}

TEST(ClusterTest, ScalesOutWhenInstanceFull)
{
    ClusterOptions opts;
    opts.max_seqs_per_instance = 4;
    opts.num_gpus = 4;
    const ServingProfile p = toyProfile(1.0);
    // 12 simultaneous requests need 3 instances.
    const auto metrics = runCluster(opts, p, simpleTrace(12, 0.0));
    EXPECT_EQ(metrics.completed, 12u);
    EXPECT_EQ(metrics.cold_starts, 3u);
}

TEST(ClusterTest, GpuCountCapsScaleOut)
{
    ClusterOptions opts;
    opts.max_seqs_per_instance = 2;
    opts.num_gpus = 2;
    const ServingProfile p = toyProfile(1.0);
    const auto metrics = runCluster(opts, p, simpleTrace(50, 0.0));
    EXPECT_EQ(metrics.completed, 50u);
    EXPECT_EQ(metrics.cold_starts, 2u); // no more GPUs than 2
}

TEST(ClusterTest, FasterColdStartLowersTailTtft)
{
    ClusterOptions opts;
    opts.idle_timeout_sec = 2.0;
    // Requests spaced so each one finds a dead instance.
    const auto trace = simpleTrace(20, 10.0);
    const auto slow = runCluster(opts, toyProfile(3.0), trace);
    const auto fast = runCluster(opts, toyProfile(1.0), trace);
    EXPECT_GT(slow.ttft_sec.p99(), fast.ttft_sec.p99() + 1.5);
}

TEST(ClusterTest, SlowerDecodeRaisesE2eNotTtftWhenWarm)
{
    ClusterOptions opts;
    ServingProfile fast_decode = toyProfile(1.0);
    ServingProfile slow_decode = toyProfile(1.0);
    for (auto &v : slow_decode.decode_step_sec) {
        v *= 10;
    }
    const auto trace = simpleTrace(5, 5.0, 100, 20);
    const auto a = runCluster(opts, fast_decode, trace);
    const auto b = runCluster(opts, slow_decode, trace);
    EXPECT_NEAR(a.ttft_sec.samples()[2], b.ttft_sec.samples()[2], 1e-6);
    EXPECT_GT(b.e2e_sec.p50(), a.e2e_sec.p50());
}

TEST(ClusterTest, ThroughputAccountedOverMakespan)
{
    ClusterOptions opts;
    const ServingProfile p = toyProfile(0.5);
    const auto metrics = runCluster(opts, p, simpleTrace(100, 0.1));
    EXPECT_EQ(metrics.completed, 100u);
    EXPECT_GT(metrics.achieved_qps, 1.0);
    EXPECT_GT(metrics.makespan_sec, 9.0);
}

TEST(ClusterTest, HotSparesEliminateColdStarts)
{
    ClusterOptions opts;
    opts.hot_spares = 1;
    const ServingProfile p = toyProfile(2.0);
    const auto metrics = runCluster(opts, p, simpleTrace(3, 30.0));
    EXPECT_EQ(metrics.cold_starts, 0u);
    // Every request is served warm: TTFT = prefill only.
    EXPECT_NEAR(metrics.ttft_sec.p99(), 0.1, 1e-6);
}

TEST(ClusterTest, HotSparesBilledForWholeRun)
{
    const ServingProfile p = toyProfile(1.0);
    const auto trace = simpleTrace(2, 50.0);
    ClusterOptions on_demand;
    on_demand.idle_timeout_sec = 2.0;
    const auto lean = runCluster(on_demand, p, trace);
    ClusterOptions spared;
    spared.hot_spares = 2;
    const auto fat = runCluster(spared, p, trace);
    // Spares occupy GPUs for the whole makespan; on-demand instances
    // die between the widely-spaced requests.
    EXPECT_GT(fat.gpu_seconds, lean.gpu_seconds * 5);
    EXPECT_EQ(fat.cold_starts, 0u);
    EXPECT_EQ(lean.cold_starts, 2u);
}

TEST(ClusterTest, DeferredCapturePenaltyPaidOncePerBucket)
{
    ServingProfile p = toyProfile(1.0);
    p.deferred_capture = true;
    p.capture_penalty_sec = {0.5, 0.5}; // both buckets
    ClusterOptions opts;
    opts.idle_timeout_sec = 100.0;
    // Two sequential single-seq requests on one warm instance: only
    // the first decode pays the bucket-1 capture penalty.
    auto trace = simpleTrace(2, 10.0, 100, 3);
    const auto metrics = runCluster(opts, p, trace);
    ASSERT_EQ(metrics.completed, 2u);
    const f64 e2e_first = metrics.e2e_sec.samples()[0];
    const f64 e2e_second = metrics.e2e_sec.samples()[1];
    // First: cold start 1.0 + prefill 0.1 + capture 0.5 + 2 decodes.
    EXPECT_NEAR(e2e_first, 1.0 + 0.1 + 0.5 + 2 * 0.01, 1e-6);
    // Second: warm instance, bucket already captured.
    EXPECT_NEAR(e2e_second, 0.1 + 2 * 0.01, 1e-6);
}

TEST(ClusterTest, EmptyTrace)
{
    ClusterOptions opts;
    const auto metrics = runCluster(opts, toyProfile(), {});
    EXPECT_EQ(metrics.completed, 0u);
    EXPECT_EQ(metrics.cold_starts, 0u);
}

} // namespace
} // namespace medusa::serverless
