/**
 * @file
 * Tests of the module/symbol layer: module-granular loading, hidden
 * kernels vs dlsym, per-process address randomization, and the driver
 * enumeration API that triggering-kernels-based restoration uses (§5).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "simcuda/gpu_process.h"
#include "simcuda/kernels/builtin.h"

namespace medusa::simcuda {
namespace {

class ModuleTest : public ::testing::Test
{
  protected:
    ModuleTest()
        : process_(makeOptions(1), &clock_, &cost_),
          other_(makeOptions(2), &clock_, &cost_)
    {
    }

    static GpuProcessOptions
    makeOptions(u64 seed)
    {
        GpuProcessOptions o;
        o.aslr_seed = seed;
        return o;
    }

    const KernelDef &
    def(KernelId id)
    {
        return KernelRegistry::instance().def(id);
    }

    SimClock clock_;
    CostModel cost_;
    GpuProcess process_;
    GpuProcess other_;
};

TEST_F(ModuleTest, RegistryHasAllFourModules)
{
    const auto modules = KernelRegistry::instance().moduleNames();
    EXPECT_EQ(modules.size(), 4u);
    EXPECT_NE(std::find(modules.begin(), modules.end(), kNcclModule),
              modules.end());
    EXPECT_NE(std::find(modules.begin(), modules.end(), kCublasModule),
              modules.end());
    EXPECT_NE(std::find(modules.begin(), modules.end(), kTorchModule),
              modules.end());
    EXPECT_NE(std::find(modules.begin(), modules.end(), kAttnModule),
              modules.end());
}

TEST_F(ModuleTest, DlsymFindsVisibleKernels)
{
    const auto &k = BuiltinKernels::get();
    auto sym = process_.dlsym(kTorchModule, def(k.rmsnorm).mangled_name);
    ASSERT_TRUE(sym.isOk());
    EXPECT_EQ(sym->kernel, k.rmsnorm);
}

TEST_F(ModuleTest, DlsymCannotFindHiddenKernels)
{
    // The cuBLAS-like GEMMs are hidden from the symbol table — the
    // exact situation that motivates triggering-kernels (§5).
    const auto &k = BuiltinKernels::get();
    auto sym = process_.dlsym(kCublasModule,
                              def(k.gemm_128x128).mangled_name);
    EXPECT_EQ(sym.status().code(), StatusCode::kNotFound);
}

TEST_F(ModuleTest, DlsymWrongLibraryFails)
{
    const auto &k = BuiltinKernels::get();
    EXPECT_FALSE(
        process_.dlsym(kAttnModule, def(k.rmsnorm).mangled_name).isOk());
    EXPECT_FALSE(process_.dlsym(kTorchModule, "no_such_symbol").isOk());
}

TEST_F(ModuleTest, FuncBySymbolLoadsModuleAndResolves)
{
    const auto &k = BuiltinKernels::get();
    auto sym = process_.dlsym(kTorchModule, def(k.gelu).mangled_name);
    ASSERT_TRUE(sym.isOk());
    EXPECT_FALSE(process_.modules().isModuleLoaded(kTorchModule));
    auto addr = process_.cudaGetFuncBySymbol(*sym);
    ASSERT_TRUE(addr.isOk());
    EXPECT_TRUE(process_.modules().isModuleLoaded(kTorchModule));
    EXPECT_EQ(*process_.cuFuncGetName(*addr),
              def(k.gelu).mangled_name);
}

TEST_F(ModuleTest, ModuleLoadIsModuleGranular)
{
    // Loading any kernel of a module makes EVERY kernel in it
    // resolvable — the property triggering-kernels exploits.
    const auto &k = BuiltinKernels::get();
    ASSERT_TRUE(process_.modules().loadModule(kCublasModule));
    for (KernelId id : {k.gemm_128x128, k.gemm_64x64, k.gemm_splitk,
                        k.gemm_lmhead}) {
        EXPECT_TRUE(process_.modules().addressOf(id).isOk());
    }
}

TEST_F(ModuleTest, EnumerationRequiresLoadedModule)
{
    auto funcs = process_.cuModuleEnumerateFunctions(kCublasModule);
    EXPECT_EQ(funcs.status().code(), StatusCode::kFailedPrecondition);
    ASSERT_TRUE(process_.modules().loadModule(kCublasModule));
    funcs = process_.cuModuleEnumerateFunctions(kCublasModule);
    ASSERT_TRUE(funcs.isOk());
    EXPECT_EQ(funcs->size(), 5u); // the five GEMM variants
}

TEST_F(ModuleTest, EnumerationPlusNamesRestoresHiddenKernels)
{
    // The §5 path: enumerate the module, match by name.
    const auto &k = BuiltinKernels::get();
    ASSERT_TRUE(process_.modules().loadModule(kCublasModule));
    auto funcs = process_.cuModuleEnumerateFunctions(kCublasModule);
    ASSERT_TRUE(funcs.isOk());
    bool found = false;
    for (KernelAddr addr : *funcs) {
        auto name = process_.cuFuncGetName(addr);
        ASSERT_TRUE(name.isOk());
        if (*name == def(k.gemm_splitk).mangled_name) {
            found = true;
            EXPECT_EQ(*process_.modules().kernelAt(addr), k.gemm_splitk);
        }
    }
    EXPECT_TRUE(found);
}

TEST_F(ModuleTest, KernelAddressesRandomizedAcrossProcesses)
{
    const auto &k = BuiltinKernels::get();
    ASSERT_TRUE(process_.modules().loadModule(kTorchModule));
    ASSERT_TRUE(other_.modules().loadModule(kTorchModule));
    auto a1 = process_.modules().addressOf(k.rmsnorm);
    auto a2 = other_.modules().addressOf(k.rmsnorm);
    EXPECT_NE(*a1, *a2);
}

TEST_F(ModuleTest, FuncGetModuleReportsOwningLibrary)
{
    const auto &k = BuiltinKernels::get();
    ASSERT_TRUE(process_.modules().loadModule(kCublasModule));
    auto addr = process_.modules().addressOf(k.gemm_64x64);
    auto module = process_.cuFuncGetModule(*addr);
    ASSERT_TRUE(module.isOk());
    EXPECT_EQ(*module, kCublasModule);
}

TEST_F(ModuleTest, AddressOfUnloadedKernelFails)
{
    const auto &k = BuiltinKernels::get();
    EXPECT_EQ(process_.modules().addressOf(k.rope).status().code(),
              StatusCode::kFailedPrecondition);
}

TEST_F(ModuleTest, LoadedModulesListed)
{
    EXPECT_TRUE(process_.modules().loadedModules().empty());
    ASSERT_TRUE(process_.modules().loadModule(kAttnModule));
    const auto loaded = process_.modules().loadedModules();
    ASSERT_EQ(loaded.size(), 1u);
    EXPECT_EQ(loaded[0], kAttnModule);
}

} // namespace
} // namespace medusa::simcuda
