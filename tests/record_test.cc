/**
 * @file
 * Tests of the offline recorder: (de)allocation op sequencing, launch
 * capture grouping, tag resolution, stage markers, and the
 * range-containment queries the trace analysis uses.
 */

#include <gtest/gtest.h>

#include "medusa/record.h"
#include "simcuda/caching_allocator.h"
#include "simcuda/kernels/builtin.h"

namespace medusa::core {
namespace {

class RecordTest : public ::testing::Test
{
  protected:
    RecordTest()
        : process_(simcuda::GpuProcessOptions{}, &clock_, &cost_),
          alloc_(&process_)
    {
        alloc_.setObserver(&recorder_);
        process_.setLaunchObserver(&recorder_);
    }

    SimClock clock_;
    CostModel cost_;
    simcuda::GpuProcess process_;
    simcuda::CachingAllocator alloc_;
    Recorder recorder_;
};

TEST_F(RecordTest, OpsRecordAllocAndFree)
{
    auto a = alloc_.allocate(100, 8);
    auto b = alloc_.allocate(200, 8);
    ASSERT_TRUE(alloc_.free(*a).isOk());
    (void)b;

    ASSERT_EQ(recorder_.ops().size(), 3u);
    EXPECT_EQ(recorder_.ops()[0].kind, AllocOp::kAlloc);
    EXPECT_EQ(recorder_.ops()[0].logical_size, 100u);
    EXPECT_EQ(recorder_.ops()[0].backing_size, 8u);
    EXPECT_EQ(recorder_.ops()[2].kind, AllocOp::kFree);
    EXPECT_EQ(recorder_.ops()[2].freed_alloc_index, 0u);

    ASSERT_EQ(recorder_.allocs().size(), 2u);
    EXPECT_EQ(recorder_.allocs()[0].op_pos_free, 2);
    EXPECT_EQ(recorder_.allocs()[1].op_pos_free, -1);
}

TEST_F(RecordTest, ReusedAddressGetsTwoRecords)
{
    auto a = alloc_.allocate(100, 8);
    ASSERT_TRUE(alloc_.free(*a).isOk());
    auto b = alloc_.allocate(100, 8);
    ASSERT_EQ(*a, *b); // pool reuse

    const auto matches = recorder_.recordsContaining(*a + 10);
    ASSERT_EQ(matches.size(), 2u);
    EXPECT_EQ(matches[0]->alloc_index, 0u);
    EXPECT_EQ(matches[1]->alloc_index, 1u);
}

TEST_F(RecordTest, ContainmentUsesLogicalRange)
{
    auto a = alloc_.allocate(4096, 8);
    EXPECT_EQ(recorder_.recordsContaining(*a).size(), 1u);
    EXPECT_EQ(recorder_.recordsContaining(*a + 4095).size(), 1u);
    EXPECT_TRUE(recorder_.recordsContaining(*a + 5000).empty());
    EXPECT_TRUE(recorder_.recordsContaining(*a - 1).empty());
}

TEST_F(RecordTest, MarkersSplitTheSequence)
{
    auto a = alloc_.allocate(64, 4);
    (void)a;
    recorder_.markOrganicBoundary();
    auto b = alloc_.allocate(64, 4);
    recorder_.markCaptureStageBegin();
    auto c = alloc_.allocate(64, 4);
    (void)b;
    (void)c;

    EXPECT_EQ(recorder_.organicOpCount(), 1u);
    EXPECT_EQ(recorder_.organicAllocCount(), 1u);
    EXPECT_EQ(recorder_.captureStageOpPos(), 2u);
}

TEST_F(RecordTest, TagsResolveToAllocIndexes)
{
    auto a = alloc_.allocate(64, 4);
    auto b = alloc_.allocate(64, 4);
    recorder_.onTagBuffer("token_ids", *a);
    recorder_.onTagBuffer("logits", *b);
    EXPECT_EQ(recorder_.tags().at("token_ids"), 0u);
    EXPECT_EQ(recorder_.tags().at("logits"), 1u);
}

TEST_F(RecordTest, CapturedLaunchesGroupedPerGraph)
{
    // Launch a kernel eagerly (not recorded as graph node), then
    // within a graph window.
    using namespace simcuda;
    const auto &k = BuiltinKernels::get();
    auto buf = alloc_.allocate(64, 64);
    ParamsBuilder warm;
    warm.ptr(*buf).ptr(*buf).i32(4);
    ASSERT_TRUE(process_.defaultStream()
                    .launch(k.copy_f32, warm.take(), {})
                    .isOk());
    EXPECT_TRUE(recorder_.graphLaunches().empty());

    recorder_.beginGraph(8);
    ASSERT_TRUE(process_.beginCapture(process_.defaultStream()).isOk());
    ParamsBuilder pb;
    pb.ptr(*buf).ptr(*buf).i32(4);
    ASSERT_TRUE(process_.defaultStream()
                    .launch(k.copy_f32, pb.take(), {})
                    .isOk());
    ASSERT_TRUE(process_.endCapture(process_.defaultStream()).isOk());
    recorder_.endGraph();

    ASSERT_EQ(recorder_.graphLaunches().count(8u), 1u);
    const auto &launches = recorder_.graphLaunches().at(8);
    ASSERT_EQ(launches.size(), 1u);
    EXPECT_EQ(launches[0].params.size(), 3u);
    EXPECT_EQ(launches[0].op_pos, recorder_.ops().size());
}

} // namespace
} // namespace medusa::core
