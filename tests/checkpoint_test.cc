/**
 * @file
 * Tests of the checkpoint/restore baseline (§9 comparison class):
 * image accounting, bit-faithful restoration semantics and the cost
 * structure versus Medusa.
 */

#include <gtest/gtest.h>

#include "medusa/checkpoint.h"
#include "medusa/offline.h"
#include "medusa/restore.h"

namespace medusa::core {
namespace {

llm::ModelConfig
tinyModel()
{
    llm::ModelConfig m = llm::findModel("Qwen1.5-1.8B").value();
    m.num_layers = 3;
    return m;
}

std::unique_ptr<llm::BaselineEngine>
donorEngine(const llm::ModelConfig &m, u64 seed = 5)
{
    llm::BaselineEngine::Options opts;
    opts.model = m;
    opts.strategy = llm::Strategy::kVllm;
    opts.aslr_seed = seed;
    auto engine = llm::BaselineEngine::coldStart(opts);
    MEDUSA_CHECK(engine.isOk(), "donor cold start failed");
    return std::move(engine).value();
}

TEST(CheckpointTest, ImageCapturesDeviceFootprint)
{
    const llm::ModelConfig m = tinyModel();
    auto donor = donorEngine(m);
    auto image = CheckpointEngine::checkpoint(*donor);
    ASSERT_TRUE(image.isOk());
    // The image must at least contain the weights and the KV cache.
    EXPECT_GT(image->device_bytes,
              donor->runtime().weights().total_logical_bytes);
    EXPECT_GT(image->device_bytes,
              donor->runtime().kv().logical_bytes);
    EXPECT_EQ(image->aslr_seed, 5u);
}

TEST(CheckpointTest, RestoreServesIdenticallyToDonor)
{
    const llm::ModelConfig m = tinyModel();
    auto donor = donorEngine(m);
    auto image = CheckpointEngine::checkpoint(*donor);
    ASSERT_TRUE(image.isOk());
    auto restored = CheckpointEngine::restore(*image);
    ASSERT_TRUE(restored.isOk());

    const std::vector<i32> prompt = {6, 6, 6};
    auto a = donor->runtime().generate(prompt, 7);
    auto b = (*restored)->runtime().generate(prompt, 7);
    ASSERT_TRUE(a.isOk() && b.isOk());
    EXPECT_EQ(*a, *b);
    EXPECT_EQ((*restored)->runtime().graphCount(), 35u);
}

TEST(CheckpointTest, RestoreFasterThanColdStartSlowerThanMedusa)
{
    const llm::ModelConfig m = tinyModel();
    auto donor = donorEngine(m);
    auto image = CheckpointEngine::checkpoint(*donor);
    auto restored = CheckpointEngine::restore(*image);
    ASSERT_TRUE(restored.isOk());

    OfflineOptions oopts;
    oopts.model = m;
    oopts.pipeline.validate = false;
    auto offline = materialize(oopts);
    ASSERT_TRUE(offline.isOk());
    MedusaEngine::Options mopts;
    mopts.model = m;
    auto medusa = MedusaEngine::coldStart(mopts, offline->artifact);
    ASSERT_TRUE(medusa.isOk());

    // The restore cost scales with the device footprint (which, for a
    // tiny model, is dominated by the KV reservation and can exceed
    // the cold start itself — checkpoints ship state Medusa rebuilds
    // for free). Medusa is the fastest path either way.
    EXPECT_LT((*medusa)->coldStartReport().times.loading,
              (*restored)->times().loading);
    EXPECT_LT((*medusa)->coldStartReport().times.loading, donor->coldStartReport().times.loading);
    EXPECT_NEAR((*restored)->times().loading,
                units::nsToSec(CostModel{}.ssdReadTime(
                    static_cast<f64>(image->totalBytes()))) +
                    0.12,
                0.05);
    // And Medusa's persisted state is orders of magnitude smaller.
    EXPECT_GT(image->totalBytes(),
              offline->artifact.serialize().size() * 100);
}

TEST(CheckpointTest, HalfLoadedEngineRejected)
{
    // An engine without captured graphs cannot be checkpointed as
    // "ready to serve".
    llm::ModelRuntime::Options ropts;
    ropts.model = tinyModel();
    llm::BaselineEngine::Options opts;
    opts.model = tinyModel();
    opts.strategy = llm::Strategy::kVllm;
    auto donor = llm::BaselineEngine::coldStart(opts);
    ASSERT_TRUE(donor.isOk());
    // Sanity: a NoCudaGraph engine IS checkpointable (no graphs is its
    // ready state).
    opts.strategy = llm::Strategy::kNoCudaGraph;
    auto nograph = llm::BaselineEngine::coldStart(opts);
    ASSERT_TRUE(nograph.isOk());
    EXPECT_TRUE(CheckpointEngine::checkpoint(**nograph).isOk());
}

} // namespace
} // namespace medusa::core
