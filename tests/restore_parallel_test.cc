/**
 * @file
 * The parallel restore pipeline's hard requirement: simulated results
 * are bit-identical for every thread count. Covers the phased graph
 * rebuild (restoreGraphs), the sectioned zero-copy artifact format
 * (parallel decode, content skipping, CRC rejection, legacy
 * compatibility) and concurrent whole-engine cold starts (the TSan
 * target of scripts/check.sh).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <span>
#include <thread>

#include "common/fault.h"
#include "common/thread_pool.h"
#include "llm/engine.h"
#include "medusa/offline.h"
#include "medusa/restore.h"

namespace medusa {
namespace {

using core::Artifact;
using core::ArtifactReadOptions;
using core::MedusaEngine;
using core::OfflineOptions;
using core::RestoreReport;
using core::materialize;
using llm::findModel;
using llm::ModelConfig;
using llm::StageTimes;

/** A reduced model keeps the tests fast but structurally real. */
ModelConfig
tinyModel()
{
    ModelConfig m = findModel("Qwen1.5-0.5B").value();
    m.num_layers = 4;
    return m;
}

/** One shared offline run for the whole suite. */
const Artifact &
sharedArtifact()
{
    static const Artifact artifact = []() {
        OfflineOptions opts;
        opts.model = tinyModel();
        opts.pipeline.validate = false;
        return std::move(materialize(opts).value().artifact);
    }();
    return artifact;
}

StatusOr<std::unique_ptr<MedusaEngine>>
coldStartWithThreads(u32 restore_threads, bool validate = false)
{
    MedusaEngine::Options opts;
    opts.model = tinyModel();
    opts.restore.restore_threads = restore_threads;
    opts.restore.pipeline.validate = validate;
    return MedusaEngine::coldStart(opts, sharedArtifact());
}

void
expectSameTimes(const StageTimes &a, const StageTimes &b)
{
    EXPECT_EQ(a.struct_init, b.struct_init);
    EXPECT_EQ(a.weights, b.weights);
    EXPECT_EQ(a.tokenizer, b.tokenizer);
    EXPECT_EQ(a.kv_init, b.kv_init);
    EXPECT_EQ(a.capture, b.capture);
    EXPECT_EQ(a.runtime_init, b.runtime_init);
    EXPECT_EQ(a.loading, b.loading);
}

void
expectSameReport(const RestoreReport &a, const RestoreReport &b)
{
    EXPECT_EQ(a.nodes_restored, b.nodes_restored);
    EXPECT_EQ(a.graphs_restored, b.graphs_restored);
    EXPECT_EQ(a.kernels_via_dlsym, b.kernels_via_dlsym);
    EXPECT_EQ(a.kernels_via_enumeration, b.kernels_via_enumeration);
    EXPECT_EQ(a.replayed_allocs, b.replayed_allocs);
    EXPECT_EQ(a.replayed_frees, b.replayed_frees);
    EXPECT_EQ(a.restored_content_bytes, b.restored_content_bytes);
    EXPECT_EQ(a.indirect_pointers_fixed, b.indirect_pointers_fixed);
    EXPECT_EQ(a.validated, b.validated);
}

TEST(RestoreParallel, ColdStartDeterministicAcrossThreadCounts)
{
    // validate=true makes each engine also prove restored-graph logits
    // match eager forwarding, so this covers results, not just timing.
    auto serial = coldStartWithThreads(1, /*validate=*/true);
    ASSERT_TRUE(serial.isOk()) << serial.status().toString();
    for (u32 threads : {2u, 4u, 0u}) {
        auto parallel = coldStartWithThreads(threads, /*validate=*/true);
        ASSERT_TRUE(parallel.isOk()) << parallel.status().toString();
        expectSameTimes((*serial)->coldStartReport().times, (*parallel)->coldStartReport().times);
        expectSameReport((*serial)->coldStartReport().restore, (*parallel)->coldStartReport().restore);
        EXPECT_TRUE((*parallel)->coldStartReport().restore.validated);
    }
}

TEST(RestoreParallel, ParallelDecodeMatchesSerial)
{
    const std::vector<u8> bytes = sharedArtifact().serialize();
    ArtifactReadOptions serial_opts;
    auto serial = Artifact::deserializeView(std::span<const u8>(bytes),
                                            serial_opts);
    ASSERT_TRUE(serial.isOk()) << serial.status().toString();
    ArtifactReadOptions parallel_opts;
    parallel_opts.threads = 4;
    auto parallel = Artifact::deserializeView(
        std::span<const u8>(bytes), parallel_opts);
    ASSERT_TRUE(parallel.isOk()) << parallel.status().toString();
    // Re-serialization is deterministic, so byte equality is deep
    // equality of everything the format persists.
    EXPECT_EQ(serial->serialize(), parallel->serialize());
    EXPECT_EQ(serial->serialized_size_hint, bytes.size());
    EXPECT_EQ(parallel->serialized_size_hint, bytes.size());
}

TEST(RestoreParallel, LegacyFlatFormatStillReadable)
{
    const Artifact &original = sharedArtifact();
    std::vector<u8> flat = original.serializeFlat();
    u32 version = 0;
    std::memcpy(&version, flat.data() + 4, sizeof(version));
    EXPECT_EQ(version, Artifact::kLegacyVersion);
    auto back = Artifact::deserialize(std::move(flat));
    ASSERT_TRUE(back.isOk()) << back.status().toString();
    EXPECT_EQ(back->serialize(), original.serialize());
}

TEST(RestoreParallel, SkipContentsDropsPermanentAndFixesTogether)
{
    const Artifact &original = sharedArtifact();
    ASSERT_FALSE(original.permanent.empty());
    const std::vector<u8> bytes = original.serialize();
    ArtifactReadOptions opts;
    opts.load_permanent_contents = false;
    auto skipped = Artifact::deserializeView(std::span<const u8>(bytes),
                                             opts);
    ASSERT_TRUE(skipped.isOk()) << skipped.status().toString();
    // Pointer fixes reference materialized contents (lint MDL402), so
    // the two sections skip as a unit.
    EXPECT_TRUE(skipped->permanent.empty());
    EXPECT_TRUE(skipped->pointer_fixes.empty());
    EXPECT_TRUE(skipped->contents_skipped);
    EXPECT_EQ(skipped->graphs.size(), original.graphs.size());
    EXPECT_EQ(skipped->totalNodes(), original.totalNodes());

    // A contents-off restore runs fine from the skimmed artifact.
    MedusaEngine::Options copts;
    copts.model = tinyModel();
    copts.restore.restore_contents = false;
    auto engine = MedusaEngine::coldStart(copts, *skipped);
    ASSERT_TRUE(engine.isOk()) << engine.status().toString();
    EXPECT_EQ((*engine)->coldStartReport().restore.restored_content_bytes, 0u);
}

/** Offset of the section-table entry for @p id (24-byte entries). */
std::size_t
sectionTableEntry(const std::vector<u8> &bytes, u32 id)
{
    u32 count = 0;
    std::memcpy(&count, bytes.data() + 8, sizeof(count));
    for (u32 i = 0; i < count; ++i) {
        const std::size_t at = 12 + i * 24;
        u32 entry_id = 0;
        std::memcpy(&entry_id, bytes.data() + at, sizeof(entry_id));
        if (entry_id == id) {
            return at;
        }
    }
    ADD_FAILURE() << "section " << id << " not found";
    return 0;
}

TEST(RestoreParallel, CorruptedGraphPayloadFailsItsCrc)
{
    std::vector<u8> bytes = sharedArtifact().serialize();
    const std::size_t entry = sectionTableEntry(bytes, /*GRAPHS=*/3);
    u64 offset = 0;
    u64 size = 0;
    std::memcpy(&offset, bytes.data() + entry + 8, sizeof(offset));
    std::memcpy(&size, bytes.data() + entry + 16, sizeof(size));
    // A byte in the back half of the section is inside some graph's
    // payload (past the sub-index), so only a per-graph CRC covers it.
    bytes[offset + size - size / 4] ^= 0xff;
    for (u32 threads : {1u, 4u}) {
        ArtifactReadOptions opts;
        opts.threads = threads;
        auto result = Artifact::deserializeView(
            std::span<const u8>(bytes), opts);
        ASSERT_FALSE(result.isOk());
        EXPECT_NE(result.status().toString().find("CRC"),
                  std::string::npos)
            << result.status().toString();
    }
}

TEST(RestoreParallel, CorruptedSectionIndexFailsItsCrc)
{
    std::vector<u8> bytes = sharedArtifact().serialize();
    const std::size_t entry = sectionTableEntry(bytes, /*META=*/1);
    u64 offset = 0;
    std::memcpy(&offset, bytes.data() + entry + 8, sizeof(offset));
    bytes[offset] ^= 0xff;
    auto result =
        Artifact::deserializeView(std::span<const u8>(bytes));
    ASSERT_FALSE(result.isOk());
    EXPECT_NE(result.status().toString().find("CRC"), std::string::npos)
        << result.status().toString();
}

TEST(RestoreParallel, TruncationAnywhereFails)
{
    const std::vector<u8> bytes = sharedArtifact().serialize();
    for (std::size_t cut :
         {bytes.size() - 1, bytes.size() / 2, bytes.size() / 4,
          std::size_t{30}, std::size_t{9}}) {
        const std::span<const u8> view(bytes.data(), cut);
        auto result = Artifact::deserializeView(view);
        EXPECT_FALSE(result.isOk()) << "prefix of " << cut << " bytes";
    }
}

TEST(RestoreParallel, ThreadPoolParallelForCoversEveryIndexOnce)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.size(), 3u);
    for (std::size_t n : {0u, 1u, 4u, 97u}) {
        std::vector<std::atomic<u32>> hits(n);
        pool.parallelFor(n, [&](std::size_t i) { ++hits[i]; });
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_EQ(hits[i].load(), 1u) << "index " << i;
        }
    }
}

TEST(RestoreParallel, ConcurrentColdStartsShareOneArtifact)
{
    // Several engines restoring from one const Artifact concurrently,
    // each with its own internal pool — the data-race surface TSan
    // checks via scripts/check.sh.
    constexpr int kEngines = 4;
    std::vector<std::thread> threads;
    std::vector<StatusOr<std::unique_ptr<MedusaEngine>>> results;
    for (int i = 0; i < kEngines; ++i) {
        results.emplace_back(internalError("not run"));
    }
    for (int i = 0; i < kEngines; ++i) {
        threads.emplace_back([i, &results]() {
            results[i] = coldStartWithThreads(2);
        });
    }
    for (std::thread &t : threads) {
        t.join();
    }
    ASSERT_TRUE(results[0].isOk()) << results[0].status().toString();
    for (int i = 1; i < kEngines; ++i) {
        ASSERT_TRUE(results[i].isOk())
            << results[i].status().toString();
        expectSameTimes((*results[0])->coldStartReport().times, (*results[i])->coldStartReport().times);
        expectSameReport((*results[0])->coldStartReport().restore,
                         (*results[i])->coldStartReport().restore);
    }
}

// ---- phase-2 failure propagation (the cancellation contract) ------------

TEST(RestoreParallel, GraphBuildFaultPropagatesUnderParallelPool)
{
    // A graph build failing mid-phase-2 must cancel the outstanding
    // pool tasks (they no-op after the cancel flag flips), join the
    // pool, and surface the injected error — not deadlock, not crash,
    // not report partial success. Run under MEDUSA_TSAN to check the
    // cancel flag's acquire/release pairing.
    auto plan = FaultPlan::fromSpec("graph_build@3");
    ASSERT_TRUE(plan.isOk());
    FaultInjector injector(*plan);

    MedusaEngine::Options opts;
    opts.model = tinyModel();
    opts.restore.restore_threads = 4;
    opts.restore.pipeline.fault = &injector;
    opts.restore.fallback.mode = core::FallbackMode::kFail;
    auto engine = MedusaEngine::coldStart(opts, sharedArtifact());
    ASSERT_FALSE(engine.isOk());
    EXPECT_EQ(engine.status().code(), StatusCode::kFaultInjected);
}

TEST(RestoreParallel, GraphBuildFaultRetrySucceedsDeterministically)
{
    // The fault fires exactly once (hit 3); the retry's rebuild runs
    // clean on the rolled-back process and must land bit-identical to
    // an engine that never saw the fault.
    auto plan = FaultPlan::fromSpec("graph_build@3x1");
    ASSERT_TRUE(plan.isOk());
    FaultInjector injector(*plan);

    MedusaEngine::Options opts;
    opts.model = tinyModel();
    opts.restore.restore_threads = 4;
    opts.restore.pipeline.fault = &injector;
    opts.restore.fallback.mode = core::FallbackMode::kRetryThenVanilla;
    auto retried = MedusaEngine::coldStart(opts, sharedArtifact());
    ASSERT_TRUE(retried.isOk()) << retried.status().toString();
    EXPECT_FALSE((*retried)->coldStartReport().restore.fallback_vanilla);
    EXPECT_EQ((*retried)->coldStartReport().restore.restore_failures, 1u);

    auto clean = coldStartWithThreads(4);
    ASSERT_TRUE(clean.isOk());
    // Logical fingerprint: the retried engine's clock is legitimately
    // ahead by the wasted attempt and the backoff pause.
    EXPECT_EQ(
        (*retried)->runtime().process().logicalStateFingerprint(),
        (*clean)->runtime().process().logicalStateFingerprint());
    EXPECT_EQ((*retried)->coldStartReport().restore.graphs_restored,
              (*clean)->coldStartReport().restore.graphs_restored);
    EXPECT_EQ((*retried)->coldStartReport().restore.nodes_restored,
              (*clean)->coldStartReport().restore.nodes_restored);
}

} // namespace
} // namespace medusa
