/**
 * @file
 * Unit tests of the lockstep multi-GPU replayer: collective semantics
 * (gather-sum-scatter), symmetry checks, and timing barriers.
 */

#include <gtest/gtest.h>

#include "simcuda/caching_allocator.h"
#include "simcuda/kernels/builtin.h"
#include "simcuda/lockstep.h"

namespace medusa::simcuda {
namespace {

struct Rank
{
    explicit Rank(u32 index, CostModel *cost)
        : clock(),
          process(options(index), &clock, cost)
    {
    }

    static GpuProcessOptions
    options(u32 index)
    {
        GpuProcessOptions o;
        o.aslr_seed = 11 + index;
        o.device_index = index;
        return o;
    }

    SimClock clock;
    GpuProcess process;
};

class LockstepTest : public ::testing::Test
{
  protected:
    LockstepTest() : rank0_(0, &cost_), rank1_(1, &cost_) {}

    /** Capture a [copy buf->out, all_reduce(out)] graph on a rank. */
    StatusOr<GraphExec>
    buildGraph(Rank &rank, u32 rank_index, DeviceAddr src,
               DeviceAddr out, i32 count)
    {
        const auto &k = BuiltinKernels::get();
        // Warm both modules.
        ParamsBuilder w1;
        w1.ptr(src).ptr(out).i32(0);
        MEDUSA_RETURN_IF_ERROR(rank.process.defaultStream().launch(
            k.copy_f32, w1.take(), {}));
        ParamsBuilder w2;
        w2.ptr(out).i32(count).i32(static_cast<i32>(rank_index)).i32(2);
        MEDUSA_RETURN_IF_ERROR(rank.process.defaultStream().launch(
            k.all_reduce_sum, w2.take(), {}));

        MEDUSA_RETURN_IF_ERROR(
            rank.process.beginCapture(rank.process.defaultStream()));
        ParamsBuilder pb;
        pb.ptr(src).ptr(out).i32(count);
        Status st = rank.process.defaultStream().launch(k.copy_f32,
                                                        pb.take(), {});
        ParamsBuilder ar;
        ar.ptr(out).i32(count).i32(static_cast<i32>(rank_index)).i32(2);
        if (st.isOk()) {
            st = rank.process.defaultStream().launch(k.all_reduce_sum,
                                                     ar.take(), {});
        }
        auto graph =
            rank.process.endCapture(rank.process.defaultStream());
        if (!st.isOk()) {
            return st;
        }
        return rank.process.instantiate(*graph);
    }

    DeviceAddr
    buffer(Rank &rank, const std::vector<f32> &values)
    {
        auto addr = rank.process.memory().malloc(values.size() * 4,
                                                 values.size() * 4);
        MEDUSA_CHECK(addr.isOk(), "alloc failed");
        MEDUSA_CHECK(rank.process.memory()
                         .write(*addr, values.data(), values.size() * 4)
                         .isOk(),
                     "write failed");
        return *addr;
    }

    std::vector<f32>
    read(Rank &rank, DeviceAddr addr, std::size_t n)
    {
        std::vector<f32> out(n);
        MEDUSA_CHECK(
            rank.process.memory().read(addr, out.data(), n * 4).isOk(),
            "read failed");
        return out;
    }

    CostModel cost_;
    Rank rank0_;
    Rank rank1_;
};

TEST_F(LockstepTest, AllReduceSumsAcrossRanks)
{
    const DeviceAddr src0 = buffer(rank0_, {1, 2, 3, 4});
    const DeviceAddr out0 = buffer(rank0_, {0, 0, 0, 0});
    const DeviceAddr src1 = buffer(rank1_, {10, 20, 30, 40});
    const DeviceAddr out1 = buffer(rank1_, {0, 0, 0, 0});

    auto g0 = buildGraph(rank0_, 0, src0, out0, 4);
    auto g1 = buildGraph(rank1_, 1, src1, out1, 4);
    ASSERT_TRUE(g0.isOk() && g1.isOk());

    ASSERT_TRUE(lockstepLaunch({{&rank0_.process, &*g0},
                                {&rank1_.process, &*g1}})
                    .isOk());
    // Both ranks hold the element-wise sum.
    EXPECT_EQ(read(rank0_, out0, 4),
              (std::vector<f32>{11, 22, 33, 44}));
    EXPECT_EQ(read(rank1_, out1, 4),
              (std::vector<f32>{11, 22, 33, 44}));
}

TEST_F(LockstepTest, RepeatedReplayIsStable)
{
    const DeviceAddr src0 = buffer(rank0_, {1, 1});
    const DeviceAddr out0 = buffer(rank0_, {0, 0});
    const DeviceAddr src1 = buffer(rank1_, {2, 2});
    const DeviceAddr out1 = buffer(rank1_, {0, 0});
    auto g0 = buildGraph(rank0_, 0, src0, out0, 2);
    auto g1 = buildGraph(rank1_, 1, src1, out1, 2);
    ASSERT_TRUE(g0.isOk() && g1.isOk());
    for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE(lockstepLaunch({{&rank0_.process, &*g0},
                                    {&rank1_.process, &*g1}})
                        .isOk());
        EXPECT_EQ(read(rank0_, out0, 2), (std::vector<f32>{3, 3}));
    }
}

TEST_F(LockstepTest, CollectiveAdvancesBothClocks)
{
    const DeviceAddr src0 = buffer(rank0_, {1});
    const DeviceAddr out0 = buffer(rank0_, {0});
    const DeviceAddr src1 = buffer(rank1_, {1});
    const DeviceAddr out1 = buffer(rank1_, {0});
    auto g0 = buildGraph(rank0_, 0, src0, out0, 1);
    auto g1 = buildGraph(rank1_, 1, src1, out1, 1);
    ASSERT_TRUE(g0.isOk() && g1.isOk());
    const SimTimeNs t0 = rank0_.clock.now();
    const SimTimeNs t1 = rank1_.clock.now();
    ASSERT_TRUE(lockstepLaunch({{&rank0_.process, &*g0},
                                {&rank1_.process, &*g1}})
                    .isOk());
    EXPECT_GT(rank0_.clock.now(), t0);
    EXPECT_GT(rank1_.clock.now(), t1);
}

TEST_F(LockstepTest, RejectsEmptyAndAsymmetric)
{
    EXPECT_FALSE(lockstepLaunch({}).isOk());

    const DeviceAddr src0 = buffer(rank0_, {1});
    const DeviceAddr out0 = buffer(rank0_, {0});
    auto g0 = buildGraph(rank0_, 0, src0, out0, 1);
    ASSERT_TRUE(g0.isOk());
    // One rank missing its graph.
    EXPECT_FALSE(lockstepLaunch({{&rank0_.process, &*g0},
                                 {&rank1_.process, nullptr}})
                     .isOk());
}

TEST_F(LockstepTest, WorldSizeMismatchRejected)
{
    // Graphs whose all-reduce claims world=2 replayed with 1 rank.
    const DeviceAddr src0 = buffer(rank0_, {1});
    const DeviceAddr out0 = buffer(rank0_, {0});
    auto g0 = buildGraph(rank0_, 0, src0, out0, 1);
    ASSERT_TRUE(g0.isOk());
    auto st = lockstepLaunch({{&rank0_.process, &*g0}});
    EXPECT_FALSE(st.isOk());
}

} // namespace
} // namespace medusa::simcuda
