/**
 * @file
 * Parameterized sweep: the full Medusa pipeline (offline
 * materialization, online restoration in a fresh process, output
 * validation, generation equivalence) must work for EVERY model family
 * and architecture of the paper's Table 1 zoo. Layer counts are
 * reduced to keep the sweep fast; architecture, dimensions and
 * tokenizers are the real per-model ones.
 */

#include <gtest/gtest.h>

#include "llm/engine.h"
#include "medusa/offline.h"
#include "medusa/restore.h"

namespace medusa {
namespace {

class ZooSweepTest : public ::testing::TestWithParam<std::string>
{
  protected:
    llm::ModelConfig
    model() const
    {
        llm::ModelConfig m = llm::findModel(GetParam()).value();
        m.num_layers = std::min<u32>(m.num_layers, 4);
        return m;
    }
};

TEST_P(ZooSweepTest, OfflineOnlineRoundTripValidates)
{
    const llm::ModelConfig m = model();

    core::OfflineOptions oopts;
    oopts.model = m;
    oopts.pipeline.validate = true;
    oopts.pipeline.validate_batch_sizes = {1, 64};
    auto offline = core::materialize(oopts);
    ASSERT_TRUE(offline.isOk()) << offline.status().toString();
    EXPECT_EQ(offline->artifact.graphs.size(), 35u);
    EXPECT_EQ(offline->artifact.stats.validation_repairs, 0u);
    // Copy-free restoration: only the per-layer semaphores.
    EXPECT_EQ(offline->artifact.stats.materialized_content_bytes,
              8u * m.num_layers);

    core::MedusaEngine::Options eopts;
    eopts.model = m;
    eopts.aslr_seed = 0xabcd;
    eopts.restore.pipeline.validate = true;
    eopts.restore.pipeline.validate_batch_sizes = {4, 128};
    auto engine = core::MedusaEngine::coldStart(eopts,
                                                offline->artifact);
    ASSERT_TRUE(engine.isOk()) << engine.status().toString();
    EXPECT_TRUE((*engine)->coldStartReport().restore.validated);
    EXPECT_GT((*engine)->coldStartReport().restore.kernels_via_enumeration, 0u);

    // A baseline engine and the restored engine generate identically.
    llm::BaselineEngine::Options bopts;
    bopts.model = m;
    bopts.strategy = llm::Strategy::kVllm;
    bopts.aslr_seed = 3;
    auto baseline = llm::BaselineEngine::coldStart(bopts);
    ASSERT_TRUE(baseline.isOk());
    const std::vector<i32> prompt = {2, 7, 1, 8};
    auto a = (*baseline)->runtime().generate(prompt, 8);
    auto b = (*engine)->runtime().generate(prompt, 8);
    ASSERT_TRUE(a.isOk() && b.isOk());
    EXPECT_EQ(*a, *b);

    // And Medusa loads faster.
    EXPECT_LT((*engine)->coldStartReport().times.loading,
              (*baseline)->coldStartReport().times.loading);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ZooSweepTest,
    ::testing::Values("Falcon-7B", "Llama2-7B", "Llama2-13B",
                      "Qwen1.5-0.5B", "Qwen1.5-1.8B", "Qwen1.5-4B",
                      "Qwen1.5-7B", "Qwen1.5-14B", "Yi-6B", "Yi-9B"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (c == '-' || c == '.') {
                c = '_';
            }
        }
        return name;
    });

} // namespace
} // namespace medusa
