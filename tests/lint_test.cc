/**
 * @file
 * medusa-lint corpus tests: a hand-built clean artifact lints to zero
 * diagnostics, every rule family has a corrupted-artifact specimen that
 * fires with the right rule ID (and a non-firing twin), the Figure-6
 * naive-matching artifact is flagged statically, and the offline /
 * pre-restore lint gates accept clean and reject corrupt artifacts.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <set>
#include <span>

#include "common/crc32.h"
#include "common/fault.h"
#include "common/serialize.h"
#include "medusa/analyze.h"
#include "medusa/image.h"
#include "medusa/lint/lint.h"
#include "medusa/offline.h"
#include "medusa/record.h"
#include "medusa/restore.h"
#include "medusa/tp.h"
#include "simcuda/caching_allocator.h"
#include "simcuda/kernels/builtin.h"

namespace medusa::core {
namespace {

using lint::LintOptions;
using lint::LintReport;
using lint::Severity;
using simcuda::BuiltinKernels;
using simcuda::CachingAllocator;
using simcuda::CudaGraph;
using simcuda::GpuProcess;
using simcuda::GpuProcessOptions;
using simcuda::KernelRegistry;
using simcuda::ParamsBuilder;

/** Device capacity used by the hand-built corpus. */
constexpr u64 kCap = 1ull * units::MiB;

bool
hasRule(const LintReport &report, const std::string &rule)
{
    return std::any_of(report.diagnostics.begin(),
                       report.diagnostics.end(),
                       [&rule](const lint::Diagnostic &d) {
                           return d.rule == rule;
                       });
}

LintOptions
corpusOptions()
{
    LintOptions o;
    o.device_memory_bytes = kCap;
    return o;
}

AllocOp
allocOp(u64 logical, u64 backing)
{
    AllocOp op;
    op.kind = AllocOp::kAlloc;
    op.logical_size = logical;
    op.backing_size = backing;
    return op;
}

AllocOp
freeOp(u64 index)
{
    AllocOp op;
    op.kind = AllocOp::kFree;
    op.freed_alloc_index = index;
    return op;
}

ParamSpec
indirect(u64 alloc_index, u64 offset = 0)
{
    ParamSpec p;
    p.kind = ParamSpec::kIndirect;
    p.alloc_index = alloc_index;
    p.offset = offset;
    return p;
}

ParamSpec
constant32(i32 v)
{
    ParamSpec p;
    p.kind = ParamSpec::kConstant;
    p.constant_bytes.resize(4);
    std::memcpy(p.constant_bytes.data(), &v, 4);
    return p;
}

/**
 * A minimal well-formed artifact: one organic allocation that later
 * holds permanent contents, a freed temporary, and a graph buffer; one
 * single-node graph over a real registry kernel; a free-memory figure
 * reproducible at the end of the sequence.
 */
Artifact
cleanArtifact()
{
    Artifact a;
    a.model_name = "corpus-model";
    a.model_seed = 1;
    a.ops = {
        allocOp(1024, 1024), // 0: permanent (organic prefix)
        allocOp(512, 512),   // 1: temporary
        freeOp(1),
        allocOp(2048, 64),   // 2: graph buffer
    };
    a.organic_op_count = 1;
    a.organic_alloc_count = 1;
    // Live at end: 1024 + 2048 (both already 512-multiples).
    a.free_gpu_memory = kCap - 3072;

    const KernelRegistry &reg = KernelRegistry::instance();
    const auto &def = reg.def(BuiltinKernels::get().copy_f32);
    GraphBlueprint g;
    g.batch_size = 1;
    NodeBlueprint n;
    n.kernel_name = def.mangled_name;
    n.module_name = def.module_name;
    n.params = {indirect(0), indirect(2), constant32(4)};
    g.nodes.push_back(std::move(n));
    a.graphs.push_back(std::move(g));

    PermanentBuffer pb;
    pb.alloc_index = 0;
    pb.contents.assign(16, 0);
    a.permanent.push_back(std::move(pb));
    return a;
}

TEST(LintTest, CleanArtifactLintsToZeroDiagnostics)
{
    const LintReport r = lint::lintArtifact(cleanArtifact(),
                                            corpusOptions());
    EXPECT_TRUE(r.clean()) << r.toText();
    EXPECT_TRUE(r.replaySafe());
    EXPECT_EQ(r.firstError(), "");
}

// ---- MDL1xx ------------------------------------------------------------

TEST(LintTest, DoubleFreeFiresMdl101)
{
    Artifact a = cleanArtifact();
    a.ops.push_back(freeOp(1)); // index 1 is already freed
    const LintReport r = lint::lintArtifact(a, corpusOptions());
    EXPECT_TRUE(hasRule(r, "MDL101")) << r.toText();
    EXPECT_FALSE(r.replaySafe());
    // A single free of a live index does not fire.
    EXPECT_FALSE(
        hasRule(lint::lintArtifact(cleanArtifact(), corpusOptions()),
                "MDL101"));
}

TEST(LintTest, FreeOfUnknownIndexFiresMdl102)
{
    Artifact a = cleanArtifact();
    a.ops.push_back(freeOp(9)); // only 3 allocations exist
    const LintReport r = lint::lintArtifact(a, corpusOptions());
    EXPECT_TRUE(hasRule(r, "MDL102")) << r.toText();
    EXPECT_FALSE(r.replaySafe());
}

TEST(LintTest, CrossBoundaryFreeOfOrganicAllocWarnsMdl103)
{
    Artifact a = cleanArtifact();
    a.ops.push_back(freeOp(0)); // organic index freed by the replay
    // Detach everything else from allocation 0 so only the boundary
    // violation itself is reported.
    a.permanent.clear();
    a.graphs[0].nodes[0].params[0] = indirect(2);
    const LintReport r = lint::lintArtifact(a, corpusOptions());
    EXPECT_TRUE(hasRule(r, "MDL103")) << r.toText();
    // Warning severity: suspicious, but replay does not fault.
    EXPECT_TRUE(r.replaySafe());
    EXPECT_FALSE(r.clean());
    // A replayed free of a replayed allocation does not warn (the
    // clean artifact frees index 1, allocated after the boundary).
    EXPECT_FALSE(
        hasRule(lint::lintArtifact(cleanArtifact(), corpusOptions()),
                "MDL103"));
}

TEST(LintTest, BadAllocSizesFireMdl104)
{
    Artifact zero = cleanArtifact();
    zero.ops[1].logical_size = 0;
    zero.ops[1].backing_size = 0;
    EXPECT_TRUE(hasRule(lint::lintArtifact(zero, corpusOptions()),
                        "MDL104"));

    Artifact oversized = cleanArtifact();
    oversized.ops[1].logical_size = kCap + 1;
    EXPECT_TRUE(hasRule(lint::lintArtifact(oversized, corpusOptions()),
                        "MDL104"));

    Artifact inverted = cleanArtifact();
    inverted.ops[3].backing_size = inverted.ops[3].logical_size + 1;
    EXPECT_TRUE(hasRule(lint::lintArtifact(inverted, corpusOptions()),
                        "MDL104"));

    // backing == logical is legal (full-content buffers).
    EXPECT_FALSE(hasRule(lint::lintArtifact(cleanArtifact(),
                                            corpusOptions()),
                         "MDL104"));
}

TEST(LintTest, MalformedReplayBoundaryFiresMdl105)
{
    Artifact beyond = cleanArtifact();
    beyond.organic_op_count = beyond.ops.size() + 5;
    EXPECT_TRUE(hasRule(lint::lintArtifact(beyond, corpusOptions()),
                        "MDL105"));

    Artifact miscount = cleanArtifact();
    miscount.organic_alloc_count = 2; // prefix has exactly 1 alloc
    EXPECT_TRUE(hasRule(lint::lintArtifact(miscount, corpusOptions()),
                        "MDL105"));
}

// ---- MDL2xx ------------------------------------------------------------

TEST(LintTest, IndirectIndexBeyondSequenceFiresMdl201)
{
    Artifact a = cleanArtifact();
    a.graphs[0].nodes[0].params[0] = indirect(99);
    const LintReport r = lint::lintArtifact(a, corpusOptions());
    EXPECT_TRUE(hasRule(r, "MDL201")) << r.toText();
    EXPECT_FALSE(r.replaySafe());
}

TEST(LintTest, StalePointerAtInferredLaunchPositionFiresMdl202)
{
    // The graph references allocation 1, which is freed BEFORE
    // allocation 2 — another buffer the same graph references — is
    // created. The launch therefore provably happened after the free.
    Artifact a = cleanArtifact();
    a.graphs[0].nodes[0].params[0] = indirect(1);
    const LintReport r = lint::lintArtifact(a, corpusOptions());
    EXPECT_TRUE(hasRule(r, "MDL202")) << r.toText();
    EXPECT_FALSE(r.replaySafe());

    // Non-firing twin: the same stale reference WITHOUT the later
    // co-referenced allocation is not provably stale (the launch could
    // have preceded the free), so the static rule stays silent.
    Artifact benign = cleanArtifact();
    benign.graphs[0].nodes[0].params = {indirect(1), constant32(4),
                                        constant32(4)};
    EXPECT_FALSE(hasRule(lint::lintArtifact(benign, corpusOptions()),
                         "MDL202"));
}

TEST(LintTest, IndirectOffsetOutsideAllocationFiresMdl203)
{
    Artifact a = cleanArtifact();
    a.graphs[0].nodes[0].params[0] = indirect(0, 4096); // 1024B buffer
    EXPECT_TRUE(hasRule(lint::lintArtifact(a, corpusOptions()),
                        "MDL203"));
    // An interior offset inside the buffer is fine.
    Artifact interior = cleanArtifact();
    interior.graphs[0].nodes[0].params[0] = indirect(0, 1023);
    EXPECT_FALSE(hasRule(lint::lintArtifact(interior, corpusOptions()),
                         "MDL203"));
}

// ---- MDL3xx ------------------------------------------------------------

TEST(LintTest, UnknownKernelNameFiresMdl301)
{
    Artifact a = cleanArtifact();
    a.graphs[0].nodes[0].kernel_name = "_ZN4fake6kernelEv";
    EXPECT_TRUE(hasRule(lint::lintArtifact(a, corpusOptions()),
                        "MDL301"));
    // Registry checking can be disabled for foreign kernel zoos.
    LintOptions no_reg = corpusOptions();
    no_reg.check_kernel_registry = false;
    EXPECT_FALSE(hasRule(lint::lintArtifact(a, no_reg), "MDL301"));
}

TEST(LintTest, KernelModuleMismatchFiresMdl302)
{
    Artifact a = cleanArtifact();
    a.graphs[0].nodes[0].module_name = "libwrong.so";
    EXPECT_TRUE(hasRule(lint::lintArtifact(a, corpusOptions()),
                        "MDL302"));
}

TEST(LintTest, EdgeBeyondNodeCountFiresMdl303)
{
    Artifact a = cleanArtifact();
    a.graphs[0].edges.emplace_back(0, 5); // only 1 node
    EXPECT_TRUE(hasRule(lint::lintArtifact(a, corpusOptions()),
                        "MDL303"));
}

TEST(LintTest, DuplicateBatchSizeFiresMdl304)
{
    Artifact a = cleanArtifact();
    a.graphs.push_back(a.graphs[0]);
    EXPECT_TRUE(hasRule(lint::lintArtifact(a, corpusOptions()),
                        "MDL304"));
}

// ---- MDL4xx ------------------------------------------------------------

TEST(LintTest, UncoveredPointerShapedWordWarnsMdl401)
{
    Artifact a = cleanArtifact();
    const u64 ptr = 0x7f2000001000ull; // in the device address range
    a.permanent[0].contents.resize(16);
    std::memcpy(a.permanent[0].contents.data(), &ptr, 8);
    const LintReport r = lint::lintArtifact(a, corpusOptions());
    EXPECT_TRUE(hasRule(r, "MDL401")) << r.toText();
    EXPECT_TRUE(r.replaySafe()); // warning, not error

    // Covering the word with a PointerWordFix silences the warning.
    PointerWordFix fix;
    fix.buffer_alloc_index = 0;
    fix.byte_offset = 0;
    fix.target_alloc_index = 2;
    fix.target_offset = 0;
    a.pointer_fixes.push_back(fix);
    const LintReport covered = lint::lintArtifact(a, corpusOptions());
    EXPECT_FALSE(hasRule(covered, "MDL401")) << covered.toText();
    EXPECT_TRUE(covered.clean());
}

TEST(LintTest, InvalidPointerFixFiresMdl402)
{
    // Fix inside a buffer with no materialized contents.
    Artifact nohost = cleanArtifact();
    PointerWordFix fix;
    fix.buffer_alloc_index = 2; // not a permanent buffer
    fix.byte_offset = 0;
    fix.target_alloc_index = 0;
    nohost.pointer_fixes.push_back(fix);
    EXPECT_TRUE(hasRule(lint::lintArtifact(nohost, corpusOptions()),
                        "MDL402"));

    // Fix word overrunning the materialized contents.
    Artifact overrun = cleanArtifact();
    fix.buffer_alloc_index = 0;
    fix.byte_offset = 12; // 16-byte contents; word needs [12, 20)
    overrun.pointer_fixes.push_back(fix);
    EXPECT_TRUE(hasRule(lint::lintArtifact(overrun, corpusOptions()),
                        "MDL402"));

    // Fix pointing at a freed allocation: the word would dangle.
    Artifact dangling = cleanArtifact();
    fix.byte_offset = 0;
    fix.target_alloc_index = 1; // freed temporary
    dangling.pointer_fixes.push_back(fix);
    EXPECT_TRUE(hasRule(lint::lintArtifact(dangling, corpusOptions()),
                        "MDL402"));

    // A valid fix is accepted (see the MDL401 covered case above).
}

TEST(LintTest, PermanentContentsForDeadBufferFireMdl403)
{
    Artifact freed = cleanArtifact();
    freed.permanent[0].alloc_index = 1; // the freed temporary
    freed.permanent[0].contents.assign(16, 0);
    EXPECT_TRUE(hasRule(lint::lintArtifact(freed, corpusOptions()),
                        "MDL403"));

    Artifact oversize = cleanArtifact();
    oversize.permanent[0].contents.assign(2048, 0); // 1024B backing
    EXPECT_TRUE(hasRule(lint::lintArtifact(oversize, corpusOptions()),
                        "MDL403"));

    Artifact dup = cleanArtifact();
    dup.permanent.push_back(dup.permanent[0]);
    EXPECT_TRUE(hasRule(lint::lintArtifact(dup, corpusOptions()),
                        "MDL403"));
}

// ---- MDL5xx ------------------------------------------------------------

TEST(LintTest, UnreproducibleFreeMemoryFiguresFireMdl501)
{
    Artifact a = cleanArtifact();
    a.free_gpu_memory = kCap - 100; // no prefix yields this footprint
    const LintReport r = lint::lintArtifact(a, corpusOptions());
    EXPECT_TRUE(hasRule(r, "MDL501")) << r.toText();

    // The mid-sequence footprint (both early buffers live) is also a
    // valid profiling point and must be accepted.
    Artifact mid = cleanArtifact();
    mid.free_gpu_memory = kCap - (1024 + 512);
    EXPECT_FALSE(hasRule(lint::lintArtifact(mid, corpusOptions()),
                         "MDL501"));
}

TEST(LintTest, CapacityViolationsFireMdl502)
{
    Artifact over = cleanArtifact();
    over.free_gpu_memory = kCap + 1;
    EXPECT_TRUE(hasRule(lint::lintArtifact(over, corpusOptions()),
                        "MDL502"));

    LintOptions tiny = corpusOptions();
    tiny.device_memory_bytes = 2048; // sequence peaks above this
    Artifact a = cleanArtifact();
    a.free_gpu_memory = 2048 - 1536;
    EXPECT_TRUE(hasRule(lint::lintArtifact(a, tiny), "MDL502"));
}

// ---- MDL6xx ------------------------------------------------------------

/** Per-rank corpus twins with two collective nodes each. */
std::vector<Artifact>
tpArtifacts()
{
    Artifact rank = cleanArtifact();
    NodeBlueprint reduce;
    reduce.kernel_name = "ncclAllReduce_f32";
    reduce.module_name = "libsimnccl.so";
    reduce.params = {indirect(0), constant32(4)};
    NodeBlueprint gather;
    gather.kernel_name = "ncclAllGather_f32";
    gather.module_name = "libsimnccl.so";
    gather.params = {indirect(2), constant32(4)};
    rank.graphs[0].nodes.push_back(reduce);
    rank.graphs[0].nodes.push_back(gather);
    // A capture on one stream serializes compute before the
    // collectives; the chain also keeps MDL8xx (which cannot classify
    // the out-of-registry nccl kernels) out of the MDL6xx tests.
    rank.graphs[0].edges = {{0, 1}, {1, 2}};
    return {rank, rank};
}

LintOptions
tpOptions()
{
    LintOptions o = corpusOptions();
    // The corpus collective kernels are not in the builtin registry.
    o.check_kernel_registry = false;
    return o;
}

TEST(LintTest, ConsistentRanksLintClean)
{
    const LintReport r = lint::lintTpArtifacts(tpArtifacts(),
                                               tpOptions());
    EXPECT_TRUE(r.clean()) << r.toText();
}

TEST(LintTest, RankIdentityMismatchFiresMdl601)
{
    auto ranks = tpArtifacts();
    ranks[1].model_seed = 99;
    EXPECT_TRUE(hasRule(lint::lintTpArtifacts(ranks, tpOptions()),
                        "MDL601"));
}

TEST(LintTest, BatchSetMismatchFiresMdl602)
{
    auto ranks = tpArtifacts();
    GraphBlueprint extra = ranks[1].graphs[0];
    extra.batch_size = 8;
    ranks[1].graphs.push_back(std::move(extra));
    EXPECT_TRUE(hasRule(lint::lintTpArtifacts(ranks, tpOptions()),
                        "MDL602"));
}

TEST(LintTest, TopologyMismatchFiresMdl603)
{
    auto ranks = tpArtifacts();
    ranks[1].graphs[0].nodes.pop_back();
    EXPECT_TRUE(hasRule(lint::lintTpArtifacts(ranks, tpOptions()),
                        "MDL603"));
}

TEST(LintTest, CollectiveOrderMismatchFiresMdl604)
{
    auto ranks = tpArtifacts();
    // Same node count and edges, but the collectives run in a
    // different order on rank 1 — lockstep replay would deadlock.
    std::swap(ranks[1].graphs[0].nodes[1],
              ranks[1].graphs[0].nodes[2]);
    const LintReport r = lint::lintTpArtifacts(ranks, tpOptions());
    EXPECT_TRUE(hasRule(r, "MDL604")) << r.toText();
    EXPECT_FALSE(hasRule(r, "MDL603"));
}

// ---- report rendering --------------------------------------------------

TEST(LintTest, ReportRendersTextAndJson)
{
    Artifact a = cleanArtifact();
    a.ops.push_back(freeOp(1));
    const LintReport r = lint::lintArtifact(a, corpusOptions());
    ASSERT_FALSE(r.diagnostics.empty());
    const std::string text = r.toText();
    EXPECT_NE(text.find("MDL101"), std::string::npos);
    EXPECT_NE(text.find("error"), std::string::npos);
    const std::string json = r.toJson();
    EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
    EXPECT_NE(json.find("\"rule\":\"MDL101\""), std::string::npos);
    EXPECT_NE(json.find("\"errors\":1"), std::string::npos);
}

// ---- the Figure-6 hazard, caught statically ----------------------------

/** The analyze_test micro-fixture (see there for commentary). */
struct Offline
{
    explicit Offline(u64 seed = 1)
        : process(options(seed), &clock, &cost), alloc(&process, seed)
    {
        alloc.setObserver(&recorder);
        process.setLaunchObserver(&recorder);
        recorder.markOrganicBoundary();
        recorder.markCaptureStageBegin();
    }

    static GpuProcessOptions
    options(u64 seed)
    {
        GpuProcessOptions o;
        o.aslr_seed = seed;
        return o;
    }

    StatusOr<CudaGraph>
    captureCopy(DeviceAddr src, DeviceAddr dst, i32 count)
    {
        const auto &k = BuiltinKernels::get();
        ParamsBuilder warm;
        warm.ptr(src).ptr(dst).i32(0);
        MEDUSA_RETURN_IF_ERROR(process.defaultStream().launch(
            k.copy_f32, warm.take(), {}));
        recorder.beginGraph(1);
        MEDUSA_RETURN_IF_ERROR(
            process.beginCapture(process.defaultStream()));
        ParamsBuilder pb;
        pb.ptr(src).ptr(dst).i32(count);
        Status st = process.defaultStream().launch(k.copy_f32,
                                                   pb.take(), {});
        auto graph = process.endCapture(process.defaultStream());
        recorder.endGraph();
        if (!st.isOk()) {
            return st;
        }
        return graph;
    }

    StatusOr<AnalysisResult>
    analyzeGraph(const CudaGraph &graph, bool trace_based)
    {
        AnalyzeOptions opts;
        opts.trace_based_matching = trace_based;
        std::vector<std::pair<u32, CudaGraph>> graphs = {{1, graph}};
        return analyze(recorder, process, "test-model", 1, graphs,
                       units::GiB, opts);
    }

    SimClock clock;
    CostModel cost;
    GpuProcess process;
    CachingAllocator alloc;
    Recorder recorder;
};

TEST(LintTest, NaiveMatchingArtifactIsFlaggedAsStale)
{
    // Figure 6's setup: X is allocated and freed, Y reuses its address,
    // and the captured graph copies out of Y. Naive matching binds the
    // pointer to X's stale event; the linter proves the launch happened
    // after X's free and flags MDL202 — statically, with no replay.
    Offline off;
    auto x = off.alloc.allocate(2048, 64);
    ASSERT_TRUE(off.alloc.free(*x).isOk());
    auto y = off.alloc.allocate(2048, 64);
    ASSERT_EQ(*x, *y);
    auto dst = off.alloc.allocate(512, 64);
    auto graph = off.captureCopy(*y, *dst, 4);
    ASSERT_TRUE(graph.isOk());

    auto naive = off.analyzeGraph(*graph, false);
    ASSERT_TRUE(naive.isOk());
    LintOptions opts;
    opts.device_memory_bytes = units::GiB;
    const LintReport flagged = lint::lintArtifact(naive->artifact, opts);
    EXPECT_TRUE(hasRule(flagged, "MDL202")) << flagged.toText();
    EXPECT_FALSE(flagged.replaySafe());

    // With the raw trace, the exact launch position gives the same
    // verdict (and would catch cases the inferred bound cannot).
    LintOptions traced_opts = opts;
    traced_opts.trace = &off.recorder;
    EXPECT_TRUE(hasRule(lint::lintArtifact(naive->artifact, traced_opts),
                        "MDL202"));

    // The trace-based artifact for the same capture lints clean.
    auto traced = off.analyzeGraph(*graph, true);
    ASSERT_TRUE(traced.isOk());
    const LintReport ok = lint::lintArtifact(traced->artifact,
                                             traced_opts);
    EXPECT_TRUE(ok.replaySafe()) << ok.toText();
}

// ---- MDL8xx: determinism / race analysis -------------------------------

TEST(LintTest, RacedTwoStreamCaptureFiresMdl801)
{
    // Fork stream b off the capture BEFORE stream a's launch: the two
    // copy nodes share no happens-before edge yet both write dst.
    Offline off;
    auto src = off.alloc.allocate(2048, 64);
    auto dst = off.alloc.allocate(2048, 64);
    const auto &k = BuiltinKernels::get();
    ParamsBuilder warm;
    warm.ptr(*src).ptr(*dst).i32(0);
    ASSERT_TRUE(off.process.defaultStream()
                    .launch(k.copy_f32, warm.take(), {})
                    .isOk());

    simcuda::Stream &a = off.process.defaultStream();
    simcuda::Stream &b = off.process.createStream();
    off.recorder.beginGraph(1);
    ASSERT_TRUE(off.process.beginCapture(a).isOk());
    simcuda::Event fork;
    ASSERT_TRUE(a.recordEvent(fork).isOk());
    ASSERT_TRUE(b.waitEvent(fork).isOk());
    ParamsBuilder pa;
    pa.ptr(*src).ptr(*dst).i32(4);
    ASSERT_TRUE(a.launch(k.copy_f32, pa.take(), {}).isOk());
    ParamsBuilder pb;
    pb.ptr(*src).ptr(*dst).i32(4);
    ASSERT_TRUE(b.launch(k.copy_f32, pb.take(), {}).isOk());
    auto graph = off.process.endCapture(a);
    off.recorder.endGraph();
    ASSERT_TRUE(graph.isOk());

    auto analysis = off.analyzeGraph(*graph, true);
    ASSERT_TRUE(analysis.isOk()) << analysis.status().toString();
    LintOptions opts;
    opts.device_memory_bytes = units::GiB;
    const LintReport r = lint::lintArtifact(analysis->artifact, opts);
    EXPECT_TRUE(hasRule(r, "MDL801")) << r.toText();
    EXPECT_FALSE(r.replaySafe());
}

TEST(LintTest, ForkJoinOrderedCaptureLintsClean)
{
    // Same two-stream shape, but b waits on an event recorded AFTER
    // a's launch: the edge orders the writes and MDL8xx stays silent.
    Offline off;
    auto src = off.alloc.allocate(2048, 64);
    auto dst = off.alloc.allocate(2048, 64);
    const auto &k = BuiltinKernels::get();
    ParamsBuilder warm;
    warm.ptr(*src).ptr(*dst).i32(0);
    ASSERT_TRUE(off.process.defaultStream()
                    .launch(k.copy_f32, warm.take(), {})
                    .isOk());

    simcuda::Stream &a = off.process.defaultStream();
    simcuda::Stream &b = off.process.createStream();
    off.recorder.beginGraph(1);
    ASSERT_TRUE(off.process.beginCapture(a).isOk());
    ParamsBuilder pa;
    pa.ptr(*src).ptr(*dst).i32(4);
    ASSERT_TRUE(a.launch(k.copy_f32, pa.take(), {}).isOk());
    simcuda::Event join;
    ASSERT_TRUE(a.recordEvent(join).isOk());
    ASSERT_TRUE(b.waitEvent(join).isOk());
    ParamsBuilder pb;
    pb.ptr(*src).ptr(*dst).i32(4);
    ASSERT_TRUE(b.launch(k.copy_f32, pb.take(), {}).isOk());
    auto graph = off.process.endCapture(a);
    off.recorder.endGraph();
    ASSERT_TRUE(graph.isOk());

    auto analysis = off.analyzeGraph(*graph, true);
    ASSERT_TRUE(analysis.isOk()) << analysis.status().toString();
    LintOptions opts;
    opts.device_memory_bytes = units::GiB;
    const LintReport r = lint::lintArtifact(analysis->artifact, opts);
    EXPECT_FALSE(hasRule(r, "MDL801")) << r.toText();
    EXPECT_FALSE(hasRule(r, "MDL802"));
    EXPECT_FALSE(hasRule(r, "MDL804"));
}

TEST(LintTest, UnorderedReadWriteFiresMdl802)
{
    // Node 0 copies alloc 0 -> alloc 2; the added node copies alloc 2
    // -> alloc 0 with no edge between them: both directions are
    // read-write conflicts, neither is write-write.
    const KernelRegistry &reg = KernelRegistry::instance();
    const auto &def = reg.def(BuiltinKernels::get().copy_f32);
    NodeBlueprint back;
    back.kernel_name = def.mangled_name;
    back.module_name = def.module_name;
    back.params = {indirect(2), indirect(0), constant32(4)};

    Artifact racy = cleanArtifact();
    racy.graphs[0].nodes.push_back(back);
    const LintReport r = lint::lintArtifact(racy, corpusOptions());
    EXPECT_TRUE(hasRule(r, "MDL802")) << r.toText();
    EXPECT_FALSE(hasRule(r, "MDL801"));
    EXPECT_FALSE(r.replaySafe());

    Artifact ordered = cleanArtifact();
    ordered.graphs[0].nodes.push_back(back);
    ordered.graphs[0].edges = {{0, 1}};
    const LintReport ok = lint::lintArtifact(ordered, corpusOptions());
    EXPECT_FALSE(hasRule(ok, "MDL802")) << ok.toText();
}

TEST(LintTest, UnorderedOpaqueKernelFiresMdl804)
{
    // A kernel the registry has never heard of, unordered against the
    // copy node: the analyzer cannot prove non-interference and says so
    // once (advisory, not an error).
    Artifact a = cleanArtifact();
    NodeBlueprint mystery;
    mystery.kernel_name = "moe_dispatch_topk";
    mystery.module_name = "libsimmoe.so";
    mystery.params = {indirect(2)};
    a.graphs[0].nodes.push_back(mystery);
    const LintReport r = lint::lintArtifact(a, corpusOptions());
    EXPECT_TRUE(hasRule(r, "MDL804")) << r.toText();

    // An ordering edge silences the advisory even though the kernel
    // stays opaque.
    Artifact ordered = a;
    ordered.graphs[0].edges = {{0, 1}};
    EXPECT_FALSE(hasRule(lint::lintArtifact(ordered, corpusOptions()),
                         "MDL804"));
}

TEST(LintTest, UnorderedIndirectAccessKernelFiresMdl804)
{
    // gemm_batched is registered but dereferences pointers stored
    // inside its operand buffer — its true footprint is invisible to
    // the analyzer, so an unordered peer earns the advisory.
    const KernelRegistry &reg = KernelRegistry::instance();
    const auto &def = reg.def(BuiltinKernels::get().gemm_batched);
    NodeBlueprint batched;
    batched.kernel_name = def.mangled_name;
    batched.module_name = def.module_name;
    for (const simcuda::ParamKind kind : def.params) {
        if (kind == simcuda::ParamKind::kPointer) {
            batched.params.push_back(indirect(2));
        } else {
            ParamSpec p;
            p.kind = ParamSpec::kConstant;
            p.constant_bytes.resize(simcuda::paramKindSize(kind));
            batched.params.push_back(p);
        }
    }
    Artifact a = cleanArtifact();
    a.graphs[0].nodes.push_back(std::move(batched));
    const LintReport r = lint::lintArtifact(a, corpusOptions());
    EXPECT_TRUE(hasRule(r, "MDL804")) << r.toText();
}

TEST(LintTest, CaptureWindowAllocationFiresMdl803)
{
    // Drive the recorder by hand: an allocation lands between two
    // launches of the same captured graph — conditional allocation
    // behavior that replays nondeterministically.
    Recorder trace;
    trace.beginGraph(1);
    trace.onKernelLaunch(0x1000, {}, true);
    trace.onAlloc(0, 0x7f2000000000ull, 64, 64);
    trace.onKernelLaunch(0x1000, {}, true);
    trace.endGraph();

    LintOptions opts = corpusOptions();
    opts.trace = &trace;
    const LintReport r = lint::lintArtifact(cleanArtifact(), opts);
    EXPECT_TRUE(hasRule(r, "MDL803")) << r.toText();

    // The same allocation before the capture window is fine.
    Recorder quiet;
    quiet.onAlloc(0, 0x7f2000000000ull, 64, 64);
    quiet.beginGraph(1);
    quiet.onKernelLaunch(0x1000, {}, true);
    quiet.onKernelLaunch(0x1000, {}, true);
    quiet.endGraph();
    LintOptions qopts = corpusOptions();
    qopts.trace = &quiet;
    EXPECT_FALSE(hasRule(lint::lintArtifact(cleanArtifact(), qopts),
                         "MDL803"));
}

// ---- MDL7xx image rules: the golden corrupt corpus ---------------------

std::set<std::string>
errorRules(const LintReport &r)
{
    std::set<std::string> rules;
    for (const lint::Diagnostic &d : r.diagnostics) {
        if (d.severity == Severity::kError) {
            rules.insert(d.rule);
        }
    }
    return rules;
}

TEST(LintTest, CorruptImageCorpusFiresExactRules)
{
    // Each committed fixture (tools/make_lint_fixtures) is defective in
    // exactly one way; the linter must fire exactly that rule at error
    // severity — no cascade, no miss.
    const struct
    {
        const char *file;
        const char *rule; // nullptr: must be error-free
    } kCases[] = {
        {"clean.mdsi", nullptr},
        {"truncated_relocs.mdsi", "MDL700"},
        {"oob_reloc.mdsi", "MDL701"},
        {"freed_target.mdsi", "MDL702"},
        {"overlapping_relocs.mdsi", "MDL704"},
        {"uncovered_slot.mdsi", "MDL705"},
        {"shuffled_kernel_table.mdsi", "MDL706"},
    };
    for (const auto &c : kCases) {
        const std::string path =
            std::string(MEDUSA_TEST_DATA_DIR) + "/" + c.file;
        auto bytes = readFile(path);
        ASSERT_TRUE(bytes.isOk()) << path;
        const LintReport r =
            lint::lintImageBytes(std::span<const u8>(*bytes));
        if (c.rule == nullptr) {
            EXPECT_TRUE(r.clean()) << c.file << "\n" << r.toText();
        } else {
            EXPECT_EQ(errorRules(r), std::set<std::string>{c.rule})
                << c.file << "\n"
                << r.toText();
        }
    }
}

TEST(LintTest, SarifReportValidatesAgainstCatalog)
{
    const std::string path =
        std::string(MEDUSA_TEST_DATA_DIR) + "/oob_reloc.mdsi";
    auto bytes = readFile(path);
    ASSERT_TRUE(bytes.isOk());
    const LintReport r =
        lint::lintImageBytes(std::span<const u8>(*bytes));
    const std::string sarif = r.toSarif();
    EXPECT_NE(sarif.find("sarif-2.1.0.json"), std::string::npos);
    EXPECT_NE(sarif.find("\"version\":\"2.1.0\""), std::string::npos);
    EXPECT_NE(sarif.find("\"name\":\"medusa-lint\""), std::string::npos);
    EXPECT_NE(sarif.find("\"ruleId\":\"MDL701\""), std::string::npos);
    EXPECT_NE(sarif.find("\"level\":\"error\""), std::string::npos);
}

// ---- pipeline gates ----------------------------------------------------

llm::ModelConfig
tinyModel()
{
    llm::ModelConfig m = llm::findModel("Qwen1.5-0.5B").value();
    m.num_layers = 4;
    return m;
}

TEST(LintTest, OfflineLintGateAcceptsDefaultPipeline)
{
    OfflineOptions opts;
    opts.model = tinyModel();
    opts.pipeline.validate = false; // the static gate alone
    opts.pipeline.lint = true;
    auto result = materialize(opts);
    ASSERT_TRUE(result.isOk()) << result.status().toString();
    // And the full-strength check: the shipped artifact has zero
    // diagnostics, warnings included.
    const LintReport r = lint::lintArtifact(result->artifact);
    EXPECT_TRUE(r.clean()) << r.toText();
}

TEST(LintTest, PreRestoreLintGateRejectsCorruptArtifact)
{
    OfflineOptions opts;
    opts.model = tinyModel();
    opts.pipeline.validate = false;
    auto result = materialize(opts);
    ASSERT_TRUE(result.isOk()) << result.status().toString();

    MedusaEngine::Options eopts;
    eopts.model = opts.model;
    eopts.restore.pipeline.lint = true;

    // Clean artifact: the gate lets the restore proceed.
    auto ok = MedusaEngine::coldStart(eopts, result->artifact);
    ASSERT_TRUE(ok.isOk()) << ok.status().toString();

    // Corrupt the op sequence: the gate refuses before replaying.
    Artifact corrupt = result->artifact;
    corrupt.ops.push_back(freeOp(corrupt.ops.size() + 1000));
    auto rejected = MedusaEngine::coldStart(eopts, corrupt);
    ASSERT_FALSE(rejected.isOk());
    EXPECT_EQ(rejected.status().code(), StatusCode::kValidationFailure);
    EXPECT_NE(rejected.status().message().find("MDL102"),
              std::string::npos)
        << rejected.status().message();
}

TEST(LintTest, ImageEmissionGateRejectsStalePointer)
{
    // Free the copy node's input before a later birth the graph also
    // references: the relocation provably resolves recycled memory.
    Artifact a = cleanArtifact();
    a.ops.push_back(freeOp(0));
    a.ops.push_back(allocOp(512, 512)); // index 3, born after the free
    a.graphs[0].nodes[0].params[1] = indirect(3);

    ImageBuildOptions bopts;
    bopts.lint = true;
    auto rejected = buildImageBytes(a, {}, bopts);
    ASSERT_FALSE(rejected.isOk());
    EXPECT_NE(rejected.status().message().find("MDL702"),
              std::string::npos)
        << rejected.status().toString();

    // Without the gate the bytes emit; the standalone image linter
    // reaches the same verdict on them.
    auto bytes = buildImageBytes(a, {});
    ASSERT_TRUE(bytes.isOk()) << bytes.status().toString();
    EXPECT_TRUE(hasRule(lint::lintImageBytes(std::span<const u8>(*bytes)),
                        "MDL702"));
}

TEST(LintTest, PreRestoreImageGateRejectsBeforeFirstPatch)
{
    OfflineOptions opts;
    opts.model = tinyModel();
    opts.pipeline.validate = false;
    auto result = materialize(opts);
    ASSERT_TRUE(result.isOk()) << result.status().toString();

    // Retarget the first data relocation far past the replay table and
    // reseal the payload CRC, so only the lint gate can object.
    std::vector<u8> bytes = result->image_bytes;
    {
        auto view =
            MaterializedImage::openView(std::span<const u8>(bytes));
        ASSERT_TRUE(view.isOk());
        ASSERT_FALSE(view->data_relocs.empty());
        const std::size_t off = static_cast<std::size_t>(
            reinterpret_cast<const u8 *>(view->data_relocs.data()) -
            bytes.data());
        MaterializedImage::DataReloc r0;
        std::memcpy(&r0, bytes.data() + off, sizeof(r0));
        r0.alloc_index = 1u << 20;
        std::memcpy(bytes.data() + off, &r0, sizeof(r0));
        const u64 payload =
            bytes.size() - MaterializedImage::kHeaderBytes;
        const u32 crc = crc32(
            bytes.data() + MaterializedImage::kHeaderBytes, payload);
        std::memcpy(bytes.data() + 16, &crc, sizeof(crc));
    }
    ImageReadOptions ropts;
    ropts.validate_relocations = false; // let the gate do the judging
    auto image =
        MaterializedImage::openView(std::span<const u8>(bytes), ropts);
    ASSERT_TRUE(image.isOk()) << image.status().toString();

    // Arm a fault on the first patch application: if the gate ran
    // after any patch work, the fault would surface instead of the
    // lint verdict — and its hit counter proves zero patches started.
    auto plan = FaultPlan::fromSpec("image_patch");
    ASSERT_TRUE(plan.isOk());
    FaultInjector injector(*plan);

    MedusaEngine::Options eopts;
    eopts.model = opts.model;
    eopts.restore.pipeline.lint = true;
    eopts.restore.pipeline.fault = &injector;
    auto rejected = MedusaEngine::coldStartFromImage(eopts, *image);
    ASSERT_FALSE(rejected.isOk());
    EXPECT_EQ(rejected.status().code(), StatusCode::kValidationFailure);
    EXPECT_NE(rejected.status().message().find("MDL701"),
              std::string::npos)
        << rejected.status().message();
    EXPECT_EQ(injector.hits(FaultPoint::kImagePatch), 0u);

    // The clean image sails through the gate and reaches the armed
    // patch fault: patching starts only after the verdict.
    auto clean = MaterializedImage::openView(
        std::span<const u8>(result->image_bytes));
    ASSERT_TRUE(clean.isOk());
    injector.reset();
    auto faulted = MedusaEngine::coldStartFromImage(eopts, *clean);
    ASSERT_FALSE(faulted.isOk());
    EXPECT_EQ(faulted.status().code(), StatusCode::kFaultInjected)
        << faulted.status().toString();
    EXPECT_GT(injector.hits(FaultPoint::kImagePatch), 0u);
}

TEST(LintTest, TpPreRestoreLintGateRejectsDivergentRank)
{
    TpOfflineOptions topts;
    topts.model = tinyModel();
    topts.world = 2;
    topts.batch_sizes = {1, 4};
    auto offline = materializeTp(topts);
    ASSERT_TRUE(offline.isOk()) << offline.status().toString();

    TpMedusaEngine::Options eopts;
    eopts.model = topts.model;
    eopts.world = 2;
    eopts.restore.pipeline.lint = true;

    auto ok = TpMedusaEngine::coldStart(eopts, offline->rank_artifacts);
    ASSERT_TRUE(ok.isOk()) << ok.status().toString();

    // Drop one batch size from rank 1: MDL602 must veto the restore.
    auto ranks = offline->rank_artifacts;
    ranks[1].graphs.pop_back();
    auto rejected = TpMedusaEngine::coldStart(eopts, ranks);
    ASSERT_FALSE(rejected.isOk());
    EXPECT_EQ(rejected.status().code(), StatusCode::kValidationFailure);
    EXPECT_NE(rejected.status().message().find("MDL602"),
              std::string::npos)
        << rejected.status().message();
}

} // namespace
} // namespace medusa::core
