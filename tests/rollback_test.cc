/**
 * @file
 * Rollback invariants of the transactional restore: after any injected
 * fault the simulated GPU process is indistinguishable from a freshly
 * launched one (state fingerprints), the journal tallies what a failed
 * attempt touched, a vanilla cold start on the rolled-back process
 * produces logits bit-identical to a never-restored engine, and a
 * failed graph-instantiation batch leaks no partially-registered slots
 * — on one GPU and on every tensor-parallel rank.
 */

#include <gtest/gtest.h>

#include "common/fault.h"
#include "llm/engine.h"
#include "medusa/offline.h"
#include "medusa/restore.h"
#include "medusa/tp.h"
#include "simcuda/kernels/builtin.h"

namespace medusa {
namespace {

using core::FallbackMode;
using core::MedusaEngine;
using core::OfflineOptions;
using core::materialize;
using llm::findModel;
using llm::ModelConfig;

ModelConfig
tinyModel()
{
    ModelConfig m = findModel("Qwen1.5-0.5B").value();
    m.num_layers = 4;
    return m;
}

const core::Artifact &
tinyArtifact()
{
    static const core::Artifact artifact = []() {
        OfflineOptions opts;
        opts.model = tinyModel();
        opts.pipeline.validate = false;
        auto result = materialize(opts);
        EXPECT_TRUE(result.isOk()) << result.status().toString();
        return std::move(result->artifact);
    }();
    return artifact;
}

// ---- GpuProcess-level invariants ----------------------------------------

TEST(RollbackTest, ResetProcessFingerprintsEqualFresh)
{
    SimClock clock;
    CostModel cost;
    simcuda::GpuProcessOptions popts;
    popts.aslr_seed = 99;
    simcuda::GpuProcess fresh(popts, &clock, &cost);
    simcuda::GpuProcess used(popts, &clock, &cost);
    ASSERT_EQ(fresh.stateFingerprint(), used.stateFingerprint());

    // Mutate everything the journal tracks.
    used.beginJournal();
    auto buf = used.cudaMalloc(4096, 4096);
    ASSERT_TRUE(buf.isOk());
    const std::vector<f32> data(16, 1.5f);
    ASSERT_TRUE(used.memcpyH2D(*buf, data.data(), 64, 64).isOk());
    ASSERT_TRUE(used.cudaMemset(*buf, 0, 32).isOk());
    auto buf2 = used.cudaMalloc(256, 256);
    ASSERT_TRUE(buf2.isOk());
    ASSERT_TRUE(used.cudaFree(*buf2).isOk());
    const auto &k = simcuda::BuiltinKernels::get();
    auto sym = used.dlsym(
        simcuda::kTorchModule,
        simcuda::KernelRegistry::instance().def(k.rmsnorm).mangled_name);
    ASSERT_TRUE(sym.isOk());
    ASSERT_TRUE(used.cudaGetFuncBySymbol(*sym).isOk());

    const simcuda::ProcessJournal &journal = used.journal();
    EXPECT_TRUE(journal.anyMutations());
    EXPECT_EQ(journal.driver_allocs, 2u);
    EXPECT_EQ(journal.driver_frees, 1u);
    EXPECT_EQ(journal.h2d_copies, 1u);
    EXPECT_EQ(journal.memsets, 1u);
    EXPECT_EQ(journal.module_loads, 1u);
    EXPECT_NE(fresh.stateFingerprint(), used.stateFingerprint());

    used.resetToPristine();
    EXPECT_FALSE(used.journalActive());
    EXPECT_FALSE(used.journal().anyMutations());
    EXPECT_EQ(fresh.stateFingerprint(), used.stateFingerprint());

    // The rolled-back process replays the same address layout as a
    // fresh launch: ASLR streams were rewound, not advanced.
    auto fresh_addr = fresh.cudaMalloc(4096, 4096);
    auto reset_addr = used.cudaMalloc(4096, 4096);
    ASSERT_TRUE(fresh_addr.isOk());
    ASSERT_TRUE(reset_addr.isOk());
    EXPECT_EQ(*fresh_addr, *reset_addr);
}

TEST(RollbackTest, RuntimeRollbackMatchesFreshRuntime)
{
    llm::ModelRuntime::Options opts;
    opts.model = tinyModel();
    opts.aslr_seed = 4242;

    llm::ModelRuntime used(opts);
    ASSERT_TRUE(used.initStructure().isOk());
    ASSERT_TRUE(used.loadWeights().isOk());
    ASSERT_TRUE(used.loadTokenizer().isOk());
    auto free_bytes = used.profileFreeMemory();
    ASSERT_TRUE(free_bytes.isOk());
    ASSERT_TRUE(used.initKvCache(*free_bytes).isOk());
    ASSERT_TRUE(used.warmupDecode(1).isOk());
    auto graph = used.captureDecode(1);
    ASSERT_TRUE(graph.isOk());
    ASSERT_TRUE(used.instantiateGraph(1, *graph).isOk());
    ASSERT_GT(used.graphCount(), 0u);

    used.rollbackToPristine();

    llm::ModelRuntime fresh(opts);
    EXPECT_EQ(used.graphCount(), 0u);
    EXPECT_EQ(used.process().stateFingerprint(),
              fresh.process().stateFingerprint());
    EXPECT_EQ(used.allocator().stateFingerprint(),
              fresh.allocator().stateFingerprint());
}

// ---- single-GPU fallback equivalence ------------------------------------

TEST(RollbackTest, FallbackLogitsIdenticalToNeverRestoredEngine)
{
    // Fault every restore attempt at the replay prefix; the engine
    // degrades to the vanilla cold start on the rolled-back process.
    auto plan = FaultPlan::fromSpec("replay_prefix");
    ASSERT_TRUE(plan.isOk());
    FaultInjector injector(*plan);

    constexpr u64 kSeed = 5150;
    MedusaEngine::Options eopts;
    eopts.model = tinyModel();
    eopts.aslr_seed = kSeed;
    eopts.restore.pipeline.fault = &injector;
    eopts.restore.fallback.mode = FallbackMode::kVanillaColdStart;
    auto degraded = MedusaEngine::coldStart(eopts, tinyArtifact());
    ASSERT_TRUE(degraded.isOk()) << degraded.status().toString();
    ASSERT_TRUE((*degraded)->coldStartReport().restore.fallback_vanilla);

    // The consolidated report narrates the same story: the outcome, the
    // rollback and fallback spans, and the canonical restore.* metrics.
    const ColdStartReport &cs = (*degraded)->coldStartReport();
    EXPECT_EQ(cs.outcome, ColdStartOutcome::kFellBack);
    EXPECT_EQ(cs.strategy, llm::strategyName(llm::Strategy::kVllm));
    EXPECT_TRUE(cs.hasSpan("fallback.vanilla_cold_start"));
    EXPECT_TRUE(cs.hasSpan("restore.rollback"));
    EXPECT_GE(cs.spanCount("restore.attempt_failed"), 1u);
    EXPECT_EQ(cs.metrics.counterValue("restore.failures"), 1u);
    EXPECT_EQ(cs.metrics.counterValue("restore.fallback_vanilla"), 1u);
    EXPECT_GT(cs.coldStartSec(), 0.0);

    llm::BaselineEngine::Options bopts;
    bopts.model = eopts.model;
    bopts.strategy = llm::Strategy::kVllm;
    bopts.aslr_seed = kSeed;
    auto baseline = llm::BaselineEngine::coldStart(bopts);
    ASSERT_TRUE(baseline.isOk()) << baseline.status().toString();

    // The rolled-back process relaunched with the same seed: the two
    // engines hold the same device memory and module layout, byte for
    // byte. (The full process fingerprint is excluded on purpose: it
    // hashes the stream pipeline's absolute completion time, and the
    // degraded engine's clock is legitimately ahead by the wasted
    // restore attempt.)
    EXPECT_EQ((*degraded)->runtime().process().memory().stateFingerprint(),
              (*baseline)->runtime().process().memory().stateFingerprint());
    EXPECT_EQ(
        (*degraded)->runtime().process().modules().stateFingerprint(),
        (*baseline)->runtime().process().modules().stateFingerprint());

    for (u32 bs : {1u, 4u}) {
        ASSERT_TRUE(
            (*degraded)->runtime().stageValidationState(bs).isOk());
        ASSERT_TRUE(
            (*baseline)->runtime().stageValidationState(bs).isOk());
        auto a = (*degraded)->runtime().eagerDecodeLogits(bs);
        auto b = (*baseline)->runtime().eagerDecodeLogits(bs);
        ASSERT_TRUE(a.isOk());
        ASSERT_TRUE(b.isOk());
        EXPECT_EQ(*a, *b) << "bs=" << bs; // bit-identical
    }
}

// ---- torn-patch rollback (v6 relocation path) ---------------------------

/** The tiny model's serialized v6 image (one shared offline run). */
const std::vector<u8> &
tinyImageBytes()
{
    static const std::vector<u8> bytes = []() {
        OfflineOptions opts;
        opts.model = tinyModel();
        opts.pipeline.validate = false;
        return std::move(materialize(opts).value().image_bytes);
    }();
    return bytes;
}

TEST(RollbackTest, TornPatchRollsBackAndFallsBackVanilla)
{
    // Every patch pass tears mid-relocation-batch; the transactional
    // loop must roll the process back and degrade to the vanilla cold
    // start, landing bit-identical to a never-restored engine.
    auto plan = FaultPlan::fromSpec("image_patch");
    ASSERT_TRUE(plan.isOk());
    FaultInjector injector(*plan);
    auto image = core::MaterializedImage::openView(
        std::span<const u8>(tinyImageBytes()));
    ASSERT_TRUE(image.isOk()) << image.status().toString();

    constexpr u64 kSeed = 6161;
    MedusaEngine::Options eopts;
    eopts.model = tinyModel();
    eopts.aslr_seed = kSeed;
    eopts.restore.pipeline.fault = &injector;
    eopts.restore.fallback.mode = FallbackMode::kVanillaColdStart;
    auto degraded = MedusaEngine::coldStartFromImage(eopts, *image);
    ASSERT_TRUE(degraded.isOk()) << degraded.status().toString();
    ASSERT_TRUE((*degraded)->coldStartReport().restore.fallback_vanilla);
    const ColdStartReport &cs = (*degraded)->coldStartReport();
    EXPECT_EQ(cs.outcome, ColdStartOutcome::kFellBack);
    EXPECT_TRUE(cs.hasSpan("restore.rollback"));
    EXPECT_TRUE(cs.hasSpan("fallback.vanilla_cold_start"));

    llm::BaselineEngine::Options bopts;
    bopts.model = eopts.model;
    bopts.strategy = llm::Strategy::kVllm;
    bopts.aslr_seed = kSeed;
    auto baseline = llm::BaselineEngine::coldStart(bopts);
    ASSERT_TRUE(baseline.isOk()) << baseline.status().toString();
    EXPECT_EQ(
        (*degraded)->runtime().process().memory().stateFingerprint(),
        (*baseline)->runtime().process().memory().stateFingerprint());
    EXPECT_EQ(
        (*degraded)->runtime().process().modules().stateFingerprint(),
        (*baseline)->runtime().process().modules().stateFingerprint());
    for (u32 bs : {1u, 4u}) {
        ASSERT_TRUE(
            (*degraded)->runtime().stageValidationState(bs).isOk());
        ASSERT_TRUE(
            (*baseline)->runtime().stageValidationState(bs).isOk());
        auto a = (*degraded)->runtime().eagerDecodeLogits(bs);
        auto b = (*baseline)->runtime().eagerDecodeLogits(bs);
        ASSERT_TRUE(a.isOk());
        ASSERT_TRUE(b.isOk());
        EXPECT_EQ(*a, *b) << "bs=" << bs; // bit-identical
    }
}

TEST(RollbackTest, TornPatchRetryRestoresWithFullFidelity)
{
    // The patch tears once, the attempt rolls back, and the retry's
    // clean patch pass must land on exactly the state a never-faulted
    // patch restore produces — fingerprints and decoded logits.
    auto plan = FaultPlan::fromSpec("image_patch@1x1");
    ASSERT_TRUE(plan.isOk());
    FaultInjector injector(*plan);
    auto image = core::MaterializedImage::openView(
        std::span<const u8>(tinyImageBytes()));
    ASSERT_TRUE(image.isOk());

    constexpr u64 kSeed = 6262;
    MedusaEngine::Options eopts;
    eopts.model = tinyModel();
    eopts.aslr_seed = kSeed;
    eopts.restore.pipeline.fault = &injector;
    eopts.restore.fallback.mode = FallbackMode::kRetryThenVanilla;
    auto retried = MedusaEngine::coldStartFromImage(eopts, *image);
    ASSERT_TRUE(retried.isOk()) << retried.status().toString();
    EXPECT_FALSE((*retried)->coldStartReport().restore.fallback_vanilla);
    EXPECT_EQ((*retried)->coldStartReport().restore.restore_failures, 1u);
    EXPECT_GT((*retried)->coldStartReport().restore.relocations_applied, 0u);

    MedusaEngine::Options clean_opts;
    clean_opts.model = tinyModel();
    clean_opts.aslr_seed = kSeed;
    auto clean = MedusaEngine::coldStartFromImage(clean_opts, *image);
    ASSERT_TRUE(clean.isOk());
    // Logical fingerprint: the retried clock is ahead by the wasted
    // attempt and backoff, which is not a fidelity difference.
    EXPECT_EQ(
        (*retried)->runtime().process().logicalStateFingerprint(),
        (*clean)->runtime().process().logicalStateFingerprint());
    EXPECT_EQ((*retried)->runtime().allocator().stateFingerprint(),
              (*clean)->runtime().allocator().stateFingerprint());
    ASSERT_TRUE((*retried)->runtime().stageValidationState(1).isOk());
    ASSERT_TRUE((*clean)->runtime().stageValidationState(1).isOk());
    auto a = (*retried)->runtime().graphDecodeLogits(1);
    auto b = (*clean)->runtime().graphDecodeLogits(1);
    ASSERT_TRUE(a.isOk());
    ASSERT_TRUE(b.isOk());
    EXPECT_EQ(*a, *b);
}

// ---- leaked-graph regression (failed instantiation batches) -------------

TEST(RollbackTest, FailedInstantiationBatchLeaksNoSlots)
{
    llm::ModelRuntime::Options opts;
    opts.model = tinyModel();
    opts.aslr_seed = 7;
    llm::ModelRuntime rt(opts);
    ASSERT_TRUE(rt.initStructure().isOk());
    ASSERT_TRUE(rt.loadWeights().isOk());
    ASSERT_TRUE(rt.loadTokenizer().isOk());
    auto free_bytes = rt.profileFreeMemory();
    ASSERT_TRUE(free_bytes.isOk());
    ASSERT_TRUE(rt.initKvCache(*free_bytes).isOk());
    ASSERT_TRUE(rt.warmupDecode(1).isOk());
    auto graph = rt.captureDecode(1);
    ASSERT_TRUE(graph.isOk());

    // The fault fires on the SECOND instantiation: the first slot is
    // registered, then the batch fails and must unregister it.
    auto plan = FaultPlan::fromSpec("instantiate@2");
    ASSERT_TRUE(plan.isOk());
    FaultInjector injector(*plan);
    const std::vector<std::pair<u32, const simcuda::CudaGraph *>>
        ordered = {{1, &*graph}, {2, &*graph}};
    const Status st = rt.instantiateGraphs(ordered, &injector);
    ASSERT_FALSE(st.isOk());
    EXPECT_EQ(st.code(), StatusCode::kFaultInjected);
    EXPECT_FALSE(rt.hasGraph(1));
    EXPECT_FALSE(rt.hasGraph(2));
    EXPECT_EQ(rt.graphCount(), 0u);

    // The same batch succeeds afterwards: nothing was left behind.
    ASSERT_TRUE(rt.instantiateGraphs(ordered, nullptr).isOk());
    EXPECT_TRUE(rt.hasGraph(1));
    EXPECT_TRUE(rt.hasGraph(2));
}

// ---- tensor-parallel coherence ------------------------------------------

const core::TpOfflineResult &
tpOffline()
{
    static const core::TpOfflineResult result = []() {
        llm::ModelConfig m = findModel("Llama2-7B").value();
        m.num_layers = 3;
        core::TpOfflineOptions opts;
        opts.model = m;
        opts.world = 2;
        opts.batch_sizes = {1, 8};
        auto r = core::materializeTp(opts);
        EXPECT_TRUE(r.isOk()) << r.status().toString();
        return std::move(r).value();
    }();
    return result;
}

TEST(RollbackTest, TpRetryRollsBackEveryRankCoherently)
{
    auto plan = FaultPlan::fromSpec("tp_rank@2x1");
    ASSERT_TRUE(plan.isOk());
    FaultInjector injector(*plan);

    llm::ModelConfig m = findModel("Llama2-7B").value();
    m.num_layers = 3;
    core::TpMedusaEngine::Options opts;
    opts.model = m;
    opts.world = 2;
    opts.aslr_seed = 808;
    opts.restore.pipeline.validate = true;
    opts.restore.pipeline.validate_batch_sizes = {1};
    opts.restore.pipeline.fault = &injector;
    opts.restore.fallback.mode = FallbackMode::kRetryThenVanilla;
    opts.restore.fallback.max_attempts = 2;
    auto engine = core::TpMedusaEngine::coldStart(
        opts, tpOffline().rank_artifacts);
    ASSERT_TRUE(engine.isOk()) << engine.status().toString();

    // The rank-1 fault rolled BOTH ranks back; the retry restored the
    // whole cluster, and every rank carries the same accounting.
    for (u32 r = 0; r < 2; ++r) {
        const core::RestoreReport &report = (*engine)->rankRestoreReports()[r];
        EXPECT_EQ(report.restore_attempts, 2u) << "rank " << r;
        EXPECT_EQ(report.restore_failures, 1u) << "rank " << r;
        EXPECT_EQ(report.retries, 1u) << "rank " << r;
        EXPECT_FALSE(report.fallback_vanilla) << "rank " << r;
        EXPECT_GT(report.wasted_restore_sec, 0.0) << "rank " << r;
        EXPECT_EQ(report.graphs_restored, 2u) << "rank " << r;
        EXPECT_TRUE(report.validated) << "rank " << r;
    }

    // Consolidated report: shared attempt accounting appears once,
    // per-rank counters are summed, and the outcome names the retry.
    const ColdStartReport &cs = (*engine)->coldStartReport();
    EXPECT_EQ(cs.outcome, ColdStartOutcome::kRestoredAfterRetry);
    EXPECT_EQ(cs.restore.restore_attempts, 2u);
    EXPECT_EQ(cs.restore.restore_failures, 1u);
    EXPECT_EQ(cs.restore.graphs_restored, 4u); // 2 graphs x 2 ranks
    EXPECT_EQ(cs.metrics.counterValue("tp.ranks"), 2u);
    EXPECT_TRUE(cs.hasSpan("tp.rank_restore"));
    EXPECT_DOUBLE_EQ(cs.times.loading, (*engine)->coldStartReport().loadingSec());
}

TEST(RollbackTest, TpFallbackDegradesAllRanksTogether)
{
    auto plan = FaultPlan::fromSpec("tp_lockstep");
    ASSERT_TRUE(plan.isOk());
    FaultInjector injector(*plan);

    llm::ModelConfig m = findModel("Llama2-7B").value();
    m.num_layers = 3;
    core::TpMedusaEngine::Options opts;
    opts.model = m;
    opts.world = 2;
    opts.aslr_seed = 909;
    opts.restore.pipeline.validate = true; // lockstep faults fire here
    opts.restore.pipeline.validate_batch_sizes = {1};
    opts.restore.pipeline.fault = &injector;
    opts.restore.fallback.mode = FallbackMode::kVanillaColdStart;
    auto engine = core::TpMedusaEngine::coldStart(
        opts, tpOffline().rank_artifacts);
    ASSERT_TRUE(engine.isOk()) << engine.status().toString();

    for (u32 r = 0; r < 2; ++r) {
        const core::RestoreReport &report = (*engine)->rankRestoreReports()[r];
        EXPECT_TRUE(report.fallback_vanilla) << "rank " << r;
        EXPECT_EQ(report.restore_attempts, 1u) << "rank " << r;
        EXPECT_EQ(report.restore_failures, 1u) << "rank " << r;
    }

    // The degraded cluster captured its own graphs and still decodes
    // in lockstep.
    llm::TpCluster &cluster = (*engine)->cluster();
    EXPECT_GT(cluster.rank(0).graphCount(), 0u);
    EXPECT_GT(cluster.rank(1).graphCount(), 0u);
    ASSERT_TRUE(cluster.stageValidationState(1).isOk());
    auto logits = cluster.lockstepDecodeLogits(1);
    EXPECT_TRUE(logits.isOk()) << logits.status().toString();

    const ColdStartReport &cs = (*engine)->coldStartReport();
    EXPECT_EQ(cs.outcome, ColdStartOutcome::kFellBack);
    EXPECT_TRUE(cs.restore.fallback_vanilla);
    EXPECT_TRUE(cs.hasSpan("fallback.vanilla_cold_start"));
    EXPECT_EQ(cs.metrics.counterValue("restore.fallback_vanilla"), 1u);
}

// ---- consolidated-report plumbing (clean restore) -----------------------

TEST(RollbackTest, ColdStartReportCarriesSpansAndMergesUserSinks)
{
    TraceRecorder sink;
    MetricsRegistry registry;

    MedusaEngine::Options eopts;
    eopts.model = tinyModel();
    eopts.restore.pipeline.trace = &sink;
    eopts.restore.pipeline.metrics = &registry;
    auto engine = MedusaEngine::coldStart(eopts, tinyArtifact());
    ASSERT_TRUE(engine.isOk()) << engine.status().toString();

    const ColdStartReport &cs = (*engine)->coldStartReport();
    EXPECT_EQ(cs.outcome, ColdStartOutcome::kRestored);
    EXPECT_TRUE(cs.status.isOk());
    EXPECT_EQ(cs.strategy, llm::strategyName(llm::Strategy::kMedusa));

    // The stage spans reproduce the hand-kept StageTimes (this is what
    // lets the figure benches derive their numbers from spans).
    for (const char *stage : {"cold_start.struct_init",
                              "cold_start.tokenizer",
                              "cold_start.kv_init",
                              "cold_start.weights",
                              "cold_start.capture"}) {
        EXPECT_TRUE(cs.hasSpan(stage)) << stage;
    }
    EXPECT_DOUBLE_EQ(cs.spanSec("cold_start.weights"),
                     cs.times.weights);
    EXPECT_DOUBLE_EQ(cs.spanSec("cold_start.capture"),
                     cs.times.capture);
    EXPECT_TRUE(cs.hasSpan("restore.replay_alloc_seq"));
    EXPECT_TRUE(cs.hasSpan("restore.rebind"));
    EXPECT_EQ(cs.metrics.counterValue("restore.attempts"), 1u);
    EXPECT_EQ(cs.metrics.counterValue("restore.graphs"),
              cs.restore.graphs_restored);

    // User-supplied sinks received the same spans and counters.
    EXPECT_EQ(sink.eventCount(), cs.spans.size());
    EXPECT_EQ(registry.snapshot().counterValue("restore.attempts"), 1u);

    // Deprecated views stay coherent with the consolidated report.
    EXPECT_DOUBLE_EQ((*engine)->coldStartReport().times.loading, cs.times.loading);
    EXPECT_EQ((*engine)->coldStartReport().restore.graphs_restored,
              cs.restore.graphs_restored);
}

} // namespace
} // namespace medusa
