/**
 * @file
 * End-to-end integration: offline materialization of a real zoo model,
 * online restoration in a fresh simulated process, and output
 * equivalence between restored graphs and eager forwarding.
 */

#include <gtest/gtest.h>

#include "llm/engine.h"
#include "medusa/offline.h"
#include "medusa/restore.h"

namespace medusa {
namespace {

using core::MedusaEngine;
using core::OfflineOptions;
using core::materialize;
using llm::findModel;
using llm::ModelConfig;

/** A reduced model keeps the integration fast but structurally real. */
ModelConfig
tinyModel()
{
    ModelConfig m = findModel("Qwen1.5-0.5B").value();
    m.num_layers = 4;
    return m;
}

TEST(MedusaIntegration, OfflineProducesArtifact)
{
    OfflineOptions opts;
    opts.model = tinyModel();
    opts.pipeline.validate = true;
    opts.pipeline.validate_batch_sizes = {1, 64};
    auto result = materialize(opts);
    ASSERT_TRUE(result.isOk()) << result.status().toString();

    const core::Artifact &a = result->artifact;
    EXPECT_EQ(a.model_name, opts.model.name);
    EXPECT_EQ(a.graphs.size(), 35u);
    EXPECT_GT(a.free_gpu_memory, 0u);
    EXPECT_GT(a.totalNodes(), 0u);
    // Copy-free restoration: only the per-layer GEMM semaphores (2 x 4
    // bytes x layers) are materialized.
    EXPECT_EQ(a.stats.permanent_buffers, 2u * opts.model.num_layers);
    EXPECT_EQ(a.stats.materialized_content_bytes,
              8u * opts.model.num_layers);
    // The decoy stream-tag constant is a pointer candidate that matches
    // no allocation, once per attention node.
    EXPECT_GT(a.stats.decoy_candidates, 0u);
    EXPECT_GT(a.stats.pointer_params, 0u);
    EXPECT_GT(a.stats.dlsym_visible_nodes, 0u);
    EXPECT_GT(a.stats.hidden_kernel_nodes, 0u);
}

TEST(MedusaIntegration, OnlineRestoreValidatesAgainstEager)
{
    OfflineOptions opts;
    opts.model = tinyModel();
    opts.pipeline.validate = false; // validate explicitly below
    auto offline = materialize(opts);
    ASSERT_TRUE(offline.isOk()) << offline.status().toString();

    MedusaEngine::Options eopts;
    eopts.model = opts.model;
    eopts.aslr_seed = 424242; // a very different process layout
    eopts.restore.pipeline.validate = true;
    eopts.restore.pipeline.validate_batch_sizes = {1, 8, 64};
    auto engine = MedusaEngine::coldStart(eopts, offline->artifact);
    ASSERT_TRUE(engine.isOk()) << engine.status().toString();

    const core::RestoreReport &report = (*engine)->coldStartReport().restore;
    EXPECT_TRUE(report.validated);
    EXPECT_EQ(report.graphs_restored, 35u);
    EXPECT_GT(report.kernels_via_dlsym, 0u);
    EXPECT_GT(report.kernels_via_enumeration, 0u);
    EXPECT_EQ(report.restored_content_bytes,
              8u * opts.model.num_layers);
}

TEST(MedusaIntegration, RestoredEngineGenerates)
{
    const ModelConfig model = tinyModel();
    core::OfflineOptions oopts;
    oopts.model = model;
    oopts.pipeline.validate = false;
    auto offline = materialize(oopts);
    ASSERT_TRUE(offline.isOk()) << offline.status().toString();

    // Baseline engine (vLLM) and Medusa-restored engine must generate
    // identical tokens for the same prompt.
    llm::BaselineEngine::Options bopts;
    bopts.model = model;
    bopts.strategy = llm::Strategy::kVllm;
    bopts.aslr_seed = 11;
    auto baseline = llm::BaselineEngine::coldStart(bopts);
    ASSERT_TRUE(baseline.isOk()) << baseline.status().toString();

    MedusaEngine::Options mopts;
    mopts.model = model;
    mopts.aslr_seed = 99;
    auto restored = MedusaEngine::coldStart(mopts, offline->artifact);
    ASSERT_TRUE(restored.isOk()) << restored.status().toString();

    const std::vector<i32> prompt = {5, 17, 42, 7};
    auto base_out = (*baseline)->runtime().generate(prompt, 12);
    ASSERT_TRUE(base_out.isOk()) << base_out.status().toString();
    auto medusa_out = (*restored)->runtime().generate(prompt, 12);
    ASSERT_TRUE(medusa_out.isOk()) << medusa_out.status().toString();
    EXPECT_EQ(*base_out, *medusa_out);
    EXPECT_EQ(base_out->size(), 12u);
}

TEST(MedusaIntegration, SkippingContentRestorationFailsValidation)
{
    // Without §4.3's permanent-buffer content restoration the split-K
    // GEMM semaphores come back zeroed, so replay fails — proving the
    // contents are functionally necessary, not bookkeeping.
    OfflineOptions opts;
    opts.model = tinyModel();
    opts.pipeline.validate = false;
    auto offline = materialize(opts);
    ASSERT_TRUE(offline.isOk());

    MedusaEngine::Options eopts;
    eopts.model = opts.model;
    eopts.restore.restore_contents = false;
    eopts.restore.pipeline.validate = true;
    eopts.restore.pipeline.validate_batch_sizes = {1};
    auto engine = MedusaEngine::coldStart(eopts, offline->artifact);
    ASSERT_FALSE(engine.isOk());
    EXPECT_EQ(engine.status().code(), StatusCode::kValidationFailure);
}

TEST(MedusaIntegration, ArtifactSurvivesDiskRoundTrip)
{
    OfflineOptions opts;
    opts.model = tinyModel();
    opts.pipeline.validate = false;
    auto offline = materialize(opts);
    ASSERT_TRUE(offline.isOk());

    const std::string path =
        ::testing::TempDir() + "/medusa_roundtrip.artifact";
    ASSERT_TRUE(writeFile(path, offline->artifact.serialize()).isOk());
    auto bytes = readFile(path);
    ASSERT_TRUE(bytes.isOk());
    auto artifact = core::Artifact::deserialize(std::move(*bytes));
    ASSERT_TRUE(artifact.isOk());

    MedusaEngine::Options eopts;
    eopts.model = opts.model;
    eopts.restore.pipeline.validate = true;
    eopts.restore.pipeline.validate_batch_sizes = {8};
    auto engine = MedusaEngine::coldStart(eopts, *artifact);
    ASSERT_TRUE(engine.isOk()) << engine.status().toString();
    EXPECT_TRUE((*engine)->coldStartReport().restore.validated);
}

TEST(MedusaIntegration, WrongModelArtifactRejected)
{
    OfflineOptions opts;
    opts.model = tinyModel();
    opts.pipeline.validate = false;
    auto offline = materialize(opts);
    ASSERT_TRUE(offline.isOk());

    MedusaEngine::Options eopts;
    eopts.model = findModel("Llama2-7B").value(); // different model
    auto engine = MedusaEngine::coldStart(eopts, offline->artifact);
    ASSERT_FALSE(engine.isOk());
    EXPECT_EQ(engine.status().code(), StatusCode::kValidationFailure);
}

TEST(MedusaIntegration, RestoredGraphsServeManyBatchSizes)
{
    OfflineOptions opts;
    opts.model = tinyModel();
    opts.pipeline.validate = false;
    auto offline = materialize(opts);
    ASSERT_TRUE(offline.isOk());
    MedusaEngine::Options eopts;
    eopts.model = opts.model;
    eopts.aslr_seed = 31337;
    auto engine = MedusaEngine::coldStart(eopts, offline->artifact);
    ASSERT_TRUE(engine.isOk());
    // Replay every restored batch size against eager decode.
    for (u32 bs : {1u, 2u, 4u, 16u, 64u, 128u, 256u}) {
        ASSERT_TRUE(
            (*engine)->runtime().stageValidationState(bs).isOk());
        auto eager = (*engine)->runtime().eagerDecodeLogits(bs);
        ASSERT_TRUE(eager.isOk());
        ASSERT_TRUE(
            (*engine)->runtime().stageValidationState(bs).isOk());
        auto graph = (*engine)->runtime().graphDecodeLogits(bs);
        ASSERT_TRUE(graph.isOk()) << "bs=" << bs;
        EXPECT_EQ(*eager, *graph) << "bs=" << bs;
    }
}

TEST(MedusaIntegration, MedusaLoadingFasterThanBaselines)
{
    const ModelConfig model = tinyModel();
    core::OfflineOptions oopts;
    oopts.model = model;
    oopts.pipeline.validate = false;
    auto offline = materialize(oopts);
    ASSERT_TRUE(offline.isOk());

    llm::BaselineEngine::Options bopts;
    bopts.model = model;
    bopts.strategy = llm::Strategy::kVllm;
    auto vllm = llm::BaselineEngine::coldStart(bopts);
    ASSERT_TRUE(vllm.isOk());

    bopts.strategy = llm::Strategy::kVllmAsync;
    auto async = llm::BaselineEngine::coldStart(bopts);
    ASSERT_TRUE(async.isOk());

    MedusaEngine::Options mopts;
    mopts.model = model;
    auto medusa = MedusaEngine::coldStart(mopts, offline->artifact);
    ASSERT_TRUE(medusa.isOk());

    const f64 t_vllm = (*vllm)->coldStartReport().times.loading;
    const f64 t_async = (*async)->coldStartReport().times.loading;
    const f64 t_medusa = (*medusa)->coldStartReport().times.loading;
    EXPECT_LT(t_async, t_vllm);
    EXPECT_LT(t_medusa, t_async);
    // KV-init restoration eliminates the profiling forwarding.
    EXPECT_LT((*medusa)->coldStartReport().times.kv_init, (*vllm)->coldStartReport().times.kv_init);
}

} // namespace
} // namespace medusa
