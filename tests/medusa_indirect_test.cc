/**
 * @file
 * Tests of the §8 "indirect pointers" extension: an engine variant
 * whose decode LM head is a batched GEMM taking a device array of
 * operand pointers. Base-paper Medusa copies such buffer contents
 * verbatim (stale addresses -> validation failure); the extension
 * records PointerWordFixes and rewrites them after replay.
 */

#include <gtest/gtest.h>

#include "llm/engine.h"
#include "medusa/offline.h"
#include "medusa/restore.h"

namespace medusa {
namespace {

llm::ModelConfig
indirectModel()
{
    llm::ModelConfig m = llm::findModel("Qwen1.5-0.5B").value();
    m.num_layers = 3;
    m.batched_lm_head = true;
    return m;
}

TEST(IndirectPointerTest, BatchedLmHeadMatchesPlainLmHead)
{
    // The batched variant computes the same logits as the plain GEMM.
    llm::ModelConfig plain = indirectModel();
    plain.batched_lm_head = false;
    llm::ModelConfig batched = indirectModel();

    llm::BaselineEngine::Options opts;
    opts.model = plain;
    opts.strategy = llm::Strategy::kVllm;
    auto a = llm::BaselineEngine::coldStart(opts);
    opts.model = batched;
    auto b = llm::BaselineEngine::coldStart(opts);
    ASSERT_TRUE(a.isOk() && b.isOk()) << b.status().toString();

    auto ta = (*a)->runtime().generate({4, 2}, 8);
    auto tb = (*b)->runtime().generate({4, 2}, 8);
    ASSERT_TRUE(ta.isOk() && tb.isOk());
    EXPECT_EQ(*ta, *tb);
}

TEST(IndirectPointerTest, AnalysisFindsPointerWords)
{
    core::OfflineOptions opts;
    opts.model = indirectModel();
    opts.pipeline.validate = false;
    auto offline = core::materialize(opts);
    ASSERT_TRUE(offline.isOk()) << offline.status().toString();
    // Each captured batch size has one operand array with 3 pointers.
    EXPECT_EQ(offline->artifact.stats.indirect_pointer_words, 3u * 35u);
    EXPECT_EQ(offline->artifact.pointer_fixes.size(), 3u * 35u);
}

TEST(IndirectPointerTest, ExtensionRestoresAcrossProcesses)
{
    core::OfflineOptions opts;
    opts.model = indirectModel();
    opts.pipeline.validate = true;
    opts.pipeline.validate_batch_sizes = {1, 64};
    auto offline = core::materialize(opts);
    ASSERT_TRUE(offline.isOk()) << offline.status().toString();

    core::MedusaEngine::Options eopts;
    eopts.model = opts.model;
    eopts.aslr_seed = 90210;
    eopts.restore.pipeline.validate = true;
    eopts.restore.pipeline.validate_batch_sizes = {1, 8, 64};
    auto engine = core::MedusaEngine::coldStart(eopts,
                                                offline->artifact);
    ASSERT_TRUE(engine.isOk()) << engine.status().toString();
    EXPECT_TRUE((*engine)->coldStartReport().restore.validated);
    EXPECT_EQ((*engine)->coldStartReport().restore.indirect_pointers_fixed, 3u * 35u);

    auto out = (*engine)->runtime().generate({1, 2, 3}, 6);
    ASSERT_TRUE(out.isOk());
    EXPECT_EQ(out->size(), 6u);
}

TEST(IndirectPointerTest, BasePaperBehaviourFailsValidation)
{
    // With the extension disabled (the base paper's §4.3 verbatim-copy
    // restoration), the operand array comes back holding the OFFLINE
    // process's addresses and the batched GEMM dereferences garbage —
    // exactly the limitation §8 acknowledges.
    core::OfflineOptions opts;
    opts.model = indirectModel();
    opts.pipeline.validate = false;
    opts.analyze.handle_indirect_pointers = false;
    auto offline = core::materialize(opts);
    ASSERT_TRUE(offline.isOk());
    EXPECT_EQ(offline->artifact.pointer_fixes.size(), 0u);

    core::MedusaEngine::Options eopts;
    eopts.model = opts.model;
    eopts.aslr_seed = 555;
    eopts.restore.pipeline.validate = true;
    eopts.restore.pipeline.validate_batch_sizes = {1};
    auto engine = core::MedusaEngine::coldStart(eopts,
                                                offline->artifact);
    ASSERT_FALSE(engine.isOk());
    EXPECT_EQ(engine.status().code(), StatusCode::kValidationFailure);
}

TEST(IndirectPointerTest, ZooModelsHaveNoIndirectPointers)
{
    // The §8 observation: across the unmodified models, no indirect
    // pointers occur (the paper found none in 139,364 nodes).
    llm::ModelConfig m = llm::findModel("Qwen1.5-0.5B").value();
    m.num_layers = 2;
    core::OfflineOptions opts;
    opts.model = m;
    opts.pipeline.validate = false;
    auto offline = core::materialize(opts);
    ASSERT_TRUE(offline.isOk());
    EXPECT_EQ(offline->artifact.stats.indirect_pointer_words, 0u);
}

} // namespace
} // namespace medusa
