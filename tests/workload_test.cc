/**
 * @file
 * Tests of the ShareGPT-like workload generator: length statistics
 * matching the paper's published means, Poisson-like arrivals, burst
 * modulation, bounds and determinism.
 */

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "workload/synthetic.h"
#include "workload/trace.h"

namespace medusa::workload {
namespace {

TraceOptions
longOptions(bool bursty)
{
    TraceOptions o;
    o.duration_sec = 4000;
    o.requests_per_sec = 5;
    o.seed = 77;
    o.bursty = bursty;
    return o;
}

TEST(WorkloadTest, MeanLengthsMatchShareGpt)
{
    const auto trace = generateShareGptTrace(longOptions(false));
    // Paper: average 161 prompt tokens, 338 output tokens.
    EXPECT_NEAR(meanPromptLength(trace), 161.0, 12.0);
    EXPECT_NEAR(meanOutputLength(trace), 338.0, 25.0);
}

TEST(WorkloadTest, RateApproximatesTarget)
{
    const auto trace = generateShareGptTrace(longOptions(false));
    const f64 rate = static_cast<f64>(trace.size()) / 4000.0;
    EXPECT_NEAR(rate, 5.0, 0.25);
}

TEST(WorkloadTest, BurstyRatePreservesMean)
{
    const auto trace = generateShareGptTrace(longOptions(true));
    const f64 rate = static_cast<f64>(trace.size()) / 4000.0;
    EXPECT_NEAR(rate, 5.0, 0.6);
}

TEST(WorkloadTest, BurstsActuallyFluctuate)
{
    // Count arrivals in 10-second windows; bursty traffic must show a
    // large max/median ratio (the paper cites 10-20x in 30 s windows).
    const auto trace = generateShareGptTrace(longOptions(true));
    std::vector<u32> windows(401, 0);
    for (const Request &r : trace) {
        ++windows[static_cast<std::size_t>(r.arrival_sec / 10.0)];
    }
    std::vector<u32> sorted = windows;
    std::sort(sorted.begin(), sorted.end());
    const u32 median = sorted[sorted.size() / 2];
    const u32 max = sorted.back();
    EXPECT_GE(max, median * 3);

    const auto smooth = generateShareGptTrace(longOptions(false));
    std::vector<u32> windows2(401, 0);
    for (const Request &r : smooth) {
        ++windows2[static_cast<std::size_t>(r.arrival_sec / 10.0)];
    }
    std::sort(windows2.begin(), windows2.end());
    EXPECT_LT(windows2.back(), windows2[windows2.size() / 2] * 3);
}

TEST(WorkloadTest, ArrivalsSortedAndInRange)
{
    const auto trace = generateShareGptTrace(longOptions(true));
    f64 prev = 0;
    for (const Request &r : trace) {
        EXPECT_GE(r.arrival_sec, prev);
        EXPECT_LT(r.arrival_sec, 4000.0);
        prev = r.arrival_sec;
        EXPECT_GE(r.prompt_tokens, 1u);
        EXPECT_LE(r.prompt_tokens, 2048u);
        EXPECT_GE(r.output_tokens, 1u);
        EXPECT_LE(r.output_tokens, 2048u);
    }
}

TEST(WorkloadTest, DeterministicBySeed)
{
    TraceOptions o;
    o.duration_sec = 100;
    o.seed = 5;
    const auto a = generateShareGptTrace(o);
    const auto b = generateShareGptTrace(o);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i].arrival_sec, b[i].arrival_sec);
        EXPECT_EQ(a[i].prompt_tokens, b[i].prompt_tokens);
    }
    o.seed = 6;
    const auto c = generateShareGptTrace(o);
    EXPECT_NE(a.size(), c.size());
}

TEST(WorkloadTest, InterArrivalIsExponentialLike)
{
    // For a Poisson process, the inter-arrival CV is ~1.
    TraceOptions o = longOptions(false);
    const auto trace = generateShareGptTrace(o);
    std::vector<f64> gaps;
    for (std::size_t i = 1; i < trace.size(); ++i) {
        gaps.push_back(trace[i].arrival_sec - trace[i - 1].arrival_sec);
    }
    f64 mean = 0;
    for (f64 g : gaps) {
        mean += g;
    }
    mean /= static_cast<f64>(gaps.size());
    f64 var = 0;
    for (f64 g : gaps) {
        var += (g - mean) * (g - mean);
    }
    var /= static_cast<f64>(gaps.size());
    const f64 cv = std::sqrt(var) / mean;
    EXPECT_NEAR(cv, 1.0, 0.1);
}

TEST(WorkloadTest, EmptyWhenDurationZero)
{
    TraceOptions o;
    o.duration_sec = 0;
    EXPECT_TRUE(generateShareGptTrace(o).empty());
    EXPECT_DOUBLE_EQ(meanPromptLength({}), 0.0);
    EXPECT_DOUBLE_EQ(meanOutputLength({}), 0.0);
}

// ---- synthetic generator (synthetic.h, DESIGN.md §15) -----------------

TEST(SyntheticTest, DeterministicBySeed)
{
    SyntheticTraceOptions o;
    o.seed = 7;
    o.duration_sec = 120;
    o.requests_per_sec = 50;
    const auto a = generateSyntheticTrace(o);
    const auto b = generateSyntheticTrace(o);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_FALSE(a.empty());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].arrival_sec, b[i].arrival_sec);
        EXPECT_EQ(a[i].prompt_tokens, b[i].prompt_tokens);
        EXPECT_EQ(a[i].output_tokens, b[i].output_tokens);
        EXPECT_EQ(a[i].model_id, b[i].model_id);
    }
    o.seed = 8;
    const auto c = generateSyntheticTrace(o);
    ASSERT_FALSE(c.empty());
    EXPECT_NE(a.front().arrival_sec, c.front().arrival_sec);
}

TEST(SyntheticTest, ArrivalsSortedRateNearTarget)
{
    SyntheticTraceOptions o;
    o.seed = 11;
    o.duration_sec = 2000;
    o.requests_per_sec = 20;
    const auto trace = generateSyntheticTrace(o);
    for (std::size_t i = 1; i < trace.size(); ++i) {
        EXPECT_LE(trace[i - 1].arrival_sec, trace[i].arrival_sec);
    }
    // Thinning preserves the long-run mean (the sinusoid averages out
    // over whole periods).
    const f64 rate =
        static_cast<f64>(trace.size()) / o.duration_sec;
    EXPECT_NEAR(rate, o.requests_per_sec, o.requests_per_sec * 0.1);
}

TEST(SyntheticTest, DiurnalModulationShowsInWindowRates)
{
    SyntheticTraceOptions o;
    o.seed = 3;
    o.duration_sec = 600; // one full period
    o.requests_per_sec = 200;
    o.diurnal_amplitude = 0.8;
    const auto trace = generateSyntheticTrace(o);
    // Quarter-period windows: the second quarter straddles the sine
    // peak, the last one its trough.
    std::array<u64, 4> counts{};
    for (const Request &r : trace) {
        counts[std::min<std::size_t>(
            static_cast<std::size_t>(r.arrival_sec / 150.0), 3)]++;
    }
    EXPECT_GT(counts[1], counts[3] * 2);
}

TEST(SyntheticTest, HeavyTailProducesExtremeLengths)
{
    SyntheticTraceOptions o;
    o.seed = 5;
    o.duration_sec = 500;
    o.requests_per_sec = 100;
    o.tail_prob = 0.1;
    const auto trace = generateSyntheticTrace(o);
    u64 beyond = 0;
    for (const Request &r : trace) {
        EXPECT_GE(r.prompt_tokens, 1u);
        EXPECT_LE(r.prompt_tokens, o.max_prompt_tokens);
        EXPECT_GE(r.output_tokens, 1u);
        EXPECT_LE(r.output_tokens, o.max_output_tokens);
        if (r.prompt_tokens > 10 * o.mean_prompt_tokens) {
            ++beyond;
        }
    }
    // The Pareto tail must actually reach >10x the mean now and then.
    EXPECT_GT(beyond, trace.size() / 1000);
}

TEST(SyntheticTest, MaxRequestsCapsExactly)
{
    SyntheticTraceOptions o;
    o.seed = 9;
    o.duration_sec = 1e9; // effectively unbounded
    o.requests_per_sec = 100;
    o.max_requests = 12345;
    const auto trace = generateSyntheticTrace(o);
    EXPECT_EQ(trace.size(), 12345u);
}

TEST(SyntheticTest, ZipfModelMixIsSkewedAndInRange)
{
    SyntheticTraceOptions o;
    o.seed = 13;
    o.duration_sec = 300;
    o.requests_per_sec = 100;
    o.num_models = 8;
    o.model_zipf_s = 1.2;
    const auto trace = generateSyntheticTrace(o);
    std::vector<u64> per_model(o.num_models, 0);
    for (const Request &r : trace) {
        ASSERT_LT(r.model_id, o.num_models);
        ++per_model[r.model_id];
    }
    // Zipf: rank 0 dominates, every model still appears.
    EXPECT_GT(per_model[0], per_model[7] * 3);
    for (const u64 count : per_model) {
        EXPECT_GT(count, 0u);
    }
}

} // namespace
} // namespace medusa::workload
