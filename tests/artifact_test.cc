/**
 * @file
 * Tests of the materialized-artifact serialization: full-fidelity
 * round-trips and rejection of corrupt inputs.
 */

#include <gtest/gtest.h>

#include "medusa/artifact.h"

namespace medusa::core {
namespace {

Artifact
sampleArtifact()
{
    Artifact a;
    a.model_name = "Qwen1.5-4B";
    a.model_seed = 106;
    a.free_gpu_memory = 25ull * units::GiB;
    a.organic_op_count = 2;
    a.organic_alloc_count = 2;

    AllocOp alloc1;
    alloc1.kind = AllocOp::kAlloc;
    alloc1.logical_size = 4096;
    alloc1.backing_size = 64;
    AllocOp alloc2 = alloc1;
    alloc2.logical_size = 512;
    AllocOp free1;
    free1.kind = AllocOp::kFree;
    free1.freed_alloc_index = 0;
    a.ops = {alloc1, alloc2, free1};

    GraphBlueprint g;
    g.batch_size = 8;
    NodeBlueprint n1;
    n1.kernel_name = "kernel_a";
    n1.module_name = "libsimtorch.so";
    n1.timing.flops = 123.5;
    n1.timing.bytes = 456.25;
    ParamSpec constant;
    constant.kind = ParamSpec::kConstant;
    constant.constant_bytes = {1, 2, 3, 4};
    ParamSpec indirect;
    indirect.kind = ParamSpec::kIndirect;
    indirect.alloc_index = 1;
    indirect.offset = 128;
    n1.params = {constant, indirect};
    g.nodes = {n1, n1};
    g.edges = {{0, 1}};
    a.graphs = {g};

    PermanentBuffer pb;
    pb.alloc_index = 1;
    pb.contents = {0x11, 0x2a, 0x3c, 0x5f};
    a.permanent = {pb};
    a.tags = {{"token_ids", 0}, {"logits", 1}};

    a.stats.total_nodes = 2;
    a.stats.total_params = 4;
    a.stats.pointer_params = 2;
    a.stats.constant_params = 2;
    a.stats.decoy_candidates = 1;
    a.stats.permanent_buffers = 1;
    a.stats.materialized_content_bytes = 4;
    return a;
}

TEST(ArtifactTest, RoundTripPreservesEverything)
{
    const Artifact a = sampleArtifact();
    auto bytes = a.serialize();
    auto out = Artifact::deserialize(bytes);
    ASSERT_TRUE(out.isOk()) << out.status().toString();
    const Artifact &b = *out;

    EXPECT_EQ(b.model_name, a.model_name);
    EXPECT_EQ(b.model_seed, a.model_seed);
    EXPECT_EQ(b.free_gpu_memory, a.free_gpu_memory);
    EXPECT_EQ(b.organic_op_count, a.organic_op_count);
    EXPECT_EQ(b.organic_alloc_count, a.organic_alloc_count);

    ASSERT_EQ(b.ops.size(), 3u);
    EXPECT_EQ(b.ops[0].kind, AllocOp::kAlloc);
    EXPECT_EQ(b.ops[0].logical_size, 4096u);
    EXPECT_EQ(b.ops[0].backing_size, 64u);
    EXPECT_EQ(b.ops[2].kind, AllocOp::kFree);
    EXPECT_EQ(b.ops[2].freed_alloc_index, 0u);

    ASSERT_EQ(b.graphs.size(), 1u);
    EXPECT_EQ(b.graphs[0].batch_size, 8u);
    ASSERT_EQ(b.graphs[0].nodes.size(), 2u);
    const NodeBlueprint &n = b.graphs[0].nodes[0];
    EXPECT_EQ(n.kernel_name, "kernel_a");
    EXPECT_EQ(n.module_name, "libsimtorch.so");
    EXPECT_DOUBLE_EQ(n.timing.flops, 123.5);
    ASSERT_EQ(n.params.size(), 2u);
    EXPECT_EQ(n.params[0].kind, ParamSpec::kConstant);
    EXPECT_EQ(n.params[0].constant_bytes,
              (std::vector<u8>{1, 2, 3, 4}));
    EXPECT_EQ(n.params[1].kind, ParamSpec::kIndirect);
    EXPECT_EQ(n.params[1].alloc_index, 1u);
    EXPECT_EQ(n.params[1].offset, 128u);
    EXPECT_EQ(b.graphs[0].edges,
              (std::vector<std::pair<u32, u32>>{{0, 1}}));

    ASSERT_EQ(b.permanent.size(), 1u);
    EXPECT_EQ(b.permanent[0].contents,
              (std::vector<u8>{0x11, 0x2a, 0x3c, 0x5f}));
    EXPECT_EQ(b.tags.at("token_ids"), 0u);
    EXPECT_EQ(b.tags.at("logits"), 1u);

    EXPECT_EQ(b.stats.total_nodes, 2u);
    EXPECT_EQ(b.stats.decoy_candidates, 1u);
    EXPECT_EQ(b.totalNodes(), 2u);
}

TEST(ArtifactTest, RejectsBadMagic)
{
    auto bytes = sampleArtifact().serialize();
    bytes[0] ^= 0xff;
    EXPECT_FALSE(Artifact::deserialize(bytes).isOk());
}

TEST(ArtifactTest, RejectsWrongVersion)
{
    auto bytes = sampleArtifact().serialize();
    bytes[4] += 1;
    EXPECT_FALSE(Artifact::deserialize(bytes).isOk());
}

TEST(ArtifactTest, RejectsTruncation)
{
    auto bytes = sampleArtifact().serialize();
    // Truncations anywhere must produce errors, never crashes.
    for (std::size_t cut :
         {bytes.size() - 1, bytes.size() / 2, bytes.size() / 4,
          std::size_t{9}}) {
        std::vector<u8> truncated(bytes.begin(),
                                  bytes.begin() + static_cast<long>(cut));
        EXPECT_FALSE(Artifact::deserialize(truncated).isOk())
            << "cut=" << cut;
    }
}

TEST(ArtifactTest, EmptyArtifactRoundTrips)
{
    Artifact a;
    a.model_name = "x";
    auto out = Artifact::deserialize(a.serialize());
    ASSERT_TRUE(out.isOk());
    EXPECT_EQ(out->model_name, "x");
    EXPECT_TRUE(out->graphs.empty());
    EXPECT_EQ(out->totalNodes(), 0u);
}

TEST(ArtifactTest, SerializedSizeScalesWithNodes)
{
    Artifact small = sampleArtifact();
    Artifact big = sampleArtifact();
    const GraphBlueprint extra = big.graphs[0];
    for (int i = 0; i < 10; ++i) {
        big.graphs.push_back(extra);
    }
    EXPECT_GT(big.serialize().size(), small.serialize().size() * 2);
}

} // namespace
} // namespace medusa::core
