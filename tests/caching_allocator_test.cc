/**
 * @file
 * Tests of the PyTorch-style caching allocator: pool reuse (the
 * Figure 6 address-reuse hazard), observer sequencing, capture-time
 * driver-call restrictions, and process-dependent reuse selection.
 */

#include <gtest/gtest.h>

#include <set>

#include "simcuda/caching_allocator.h"

namespace medusa::simcuda {
namespace {

class RecordingObserver final : public AllocObserver
{
  public:
    struct Event
    {
        bool is_alloc;
        u64 seq;
        DeviceAddr addr;
        u64 logical;
    };

    void
    onAlloc(u64 seq, DeviceAddr addr, u64 logical, u64 backing) override
    {
        (void)backing;
        events.push_back({true, seq, addr, logical});
    }

    void onFree(DeviceAddr addr) override
    {
        events.push_back({false, 0, addr, 0});
    }

    std::vector<Event> events;
};

class CachingAllocatorTest : public ::testing::Test
{
  protected:
    CachingAllocatorTest()
        : process_(GpuProcessOptions{}, &clock_, &cost_),
          alloc_(&process_, 5)
    {
    }

    SimClock clock_;
    CostModel cost_;
    GpuProcess process_;
    CachingAllocator alloc_;
};

TEST_F(CachingAllocatorTest, FreedBlockIsReusedAtSameAddress)
{
    auto a = alloc_.allocate(1000, 64);
    ASSERT_TRUE(a.isOk());
    ASSERT_TRUE(alloc_.free(*a).isOk());
    auto b = alloc_.allocate(1000, 64);
    ASSERT_TRUE(b.isOk());
    // One candidate block: reuse is deterministic and the address
    // repeats — Figure 6's false-positive setup.
    EXPECT_EQ(*a, *b);
}

TEST_F(CachingAllocatorTest, DifferentSizesDoNotShareBlocks)
{
    auto a = alloc_.allocate(1000, 64);
    ASSERT_TRUE(alloc_.free(*a).isOk());
    auto b = alloc_.allocate(5000, 64);
    EXPECT_NE(*a, *b);
}

TEST_F(CachingAllocatorTest, DifferentBackingDoesNotShareBlocks)
{
    auto a = alloc_.allocate(1000, 64);
    ASSERT_TRUE(alloc_.free(*a).isOk());
    auto b = alloc_.allocate(1000, 128);
    EXPECT_NE(*a, *b);
}

TEST_F(CachingAllocatorTest, PoolNeverReturnsLiveBlocks)
{
    std::set<DeviceAddr> live;
    std::vector<DeviceAddr> addrs;
    for (int i = 0; i < 50; ++i) {
        auto a = alloc_.allocate(512, 16);
        ASSERT_TRUE(a.isOk());
        EXPECT_TRUE(live.insert(*a).second) << "live buffer aliased";
        addrs.push_back(*a);
        if (i % 3 == 2) {
            ASSERT_TRUE(alloc_.free(addrs[i - 2]).isOk());
            live.erase(addrs[i - 2]);
        }
    }
}

TEST_F(CachingAllocatorTest, ObserverSeesOrderedSequence)
{
    RecordingObserver obs;
    alloc_.setObserver(&obs);
    auto a = alloc_.allocate(100, 8);
    auto b = alloc_.allocate(200, 8);
    ASSERT_TRUE(alloc_.free(*a).isOk());
    auto c = alloc_.allocate(100, 8);
    ASSERT_TRUE(c.isOk());

    ASSERT_EQ(obs.events.size(), 4u);
    EXPECT_TRUE(obs.events[0].is_alloc);
    EXPECT_EQ(obs.events[0].seq, 0u);
    EXPECT_EQ(obs.events[0].logical, 100u);
    EXPECT_EQ(obs.events[1].seq, 1u);
    EXPECT_FALSE(obs.events[2].is_alloc);
    EXPECT_EQ(obs.events[2].addr, *a);
    EXPECT_EQ(obs.events[3].seq, 2u);
    // Reused block: same address, new sequence index.
    EXPECT_EQ(obs.events[3].addr, *a);
    (void)b;
}

TEST_F(CachingAllocatorTest, FreeOfUnknownBufferRejected)
{
    EXPECT_FALSE(alloc_.free(0x7f2000000000ull).isOk());
}

TEST_F(CachingAllocatorTest, ZeroSizeRejected)
{
    EXPECT_FALSE(alloc_.allocate(0, 0).isOk());
}

TEST_F(CachingAllocatorTest, PooledBytesAndEmptyCache)
{
    auto a = alloc_.allocate(1000, 16);
    auto b = alloc_.allocate(1000, 16);
    ASSERT_TRUE(alloc_.free(*a).isOk());
    ASSERT_TRUE(alloc_.free(*b).isOk());
    EXPECT_EQ(alloc_.pooledBytes(), 2u * 1024); // rounded to 512
    const u64 used_before = process_.memory().usedLogicalBytes();
    ASSERT_TRUE(alloc_.emptyCache().isOk());
    EXPECT_EQ(alloc_.pooledBytes(), 0u);
    EXPECT_LT(process_.memory().usedLogicalBytes(), used_before);
}

TEST_F(CachingAllocatorTest, PoolMissDuringCaptureIsViolation)
{
    // Warm one block so the module-load analogy isn't needed; then
    // capture and allocate a NEW size: the driver call is illegal.
    auto warm = alloc_.allocate(256, 8);
    ASSERT_TRUE(alloc_.free(*warm).isOk());
    ASSERT_TRUE(process_.beginCapture(process_.defaultStream()).isOk());
    // Pool hit: fine.
    auto hit = alloc_.allocate(256, 8);
    EXPECT_TRUE(hit.isOk());
    // Pool miss: capture violation.
    auto miss = alloc_.allocate(999999, 8);
    EXPECT_EQ(miss.status().code(), StatusCode::kCaptureViolation);
    ASSERT_TRUE(process_.endCapture(process_.defaultStream()).isOk());
}

TEST_F(CachingAllocatorTest, ReuseSelectionIsProcessDependent)
{
    // With several freed candidates of a size class, which block a new
    // allocation reuses depends on the process seed — the cross-launch
    // non-determinism that defeats naive (address-only) matching.
    auto run = [&](u64 seed) {
        SimClock clock;
        GpuProcess process(GpuProcessOptions{}, &clock, &cost_);
        CachingAllocator alloc(&process, seed);
        std::vector<DeviceAddr> blocks;
        std::vector<u64> order;
        for (int i = 0; i < 6; ++i) {
            blocks.push_back(*alloc.allocate(4096, 16));
        }
        for (DeviceAddr a : blocks) {
            MEDUSA_CHECK(alloc.free(a).isOk(), "free failed");
        }
        for (int i = 0; i < 6; ++i) {
            const DeviceAddr got = *alloc.allocate(4096, 16);
            for (u64 j = 0; j < blocks.size(); ++j) {
                if (blocks[j] == got) {
                    order.push_back(j);
                }
            }
        }
        return order;
    };
    // Find at least two seeds with different reuse orders.
    const auto base = run(1);
    bool diverged = false;
    for (u64 seed = 2; seed < 12; ++seed) {
        if (run(seed) != base) {
            diverged = true;
            break;
        }
    }
    EXPECT_TRUE(diverged);
}

} // namespace
} // namespace medusa::simcuda
