/**
 * @file
 * Tests of buildServingProfile(): measured latency relations between
 * the strategies, the deferred-capture penalty table, and the Medusa
 * profile path.
 */

#include <gtest/gtest.h>

#include "medusa/offline.h"
#include "serverless/profile.h"

namespace medusa::serverless {
namespace {

llm::ModelConfig
tinyModel()
{
    llm::ModelConfig m = llm::findModel("Qwen1.5-0.5B").value();
    m.num_layers = 4;
    return m;
}

ServingProfile
profileFor(llm::Strategy strategy, const core::Artifact *artifact)
{
    ProfileOptions opts;
    opts.model = tinyModel();
    opts.strategy = strategy;
    opts.artifact = artifact;
    auto profile = buildServingProfile(opts);
    MEDUSA_CHECK(profile.isOk(),
                 "profile failed: " << profile.status().toString());
    return std::move(profile).value();
}

class ProfileBuildTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        core::OfflineOptions oopts;
        oopts.model = tinyModel();
        oopts.pipeline.validate = false;
        auto offline = core::materialize(oopts);
        MEDUSA_CHECK(offline.isOk(), "offline failed");
        artifact_ = new core::Artifact(std::move(offline->artifact));
    }

    static void
    TearDownTestSuite()
    {
        delete artifact_;
        artifact_ = nullptr;
    }

    static core::Artifact *artifact_;
};

core::Artifact *ProfileBuildTest::artifact_ = nullptr;

TEST_F(ProfileBuildTest, StrategyLoadingOrder)
{
    const auto vllm = profileFor(llm::Strategy::kVllm, nullptr);
    const auto nograph = profileFor(llm::Strategy::kNoCudaGraph,
                                    nullptr);
    const auto medusa = profileFor(llm::Strategy::kMedusa, artifact_);
    EXPECT_LT(medusa.loading_sec, vllm.loading_sec);
    EXPECT_LT(nograph.loading_sec, vllm.loading_sec);
}

TEST_F(ProfileBuildTest, MedusaRequiresArtifact)
{
    ProfileOptions opts;
    opts.model = tinyModel();
    opts.strategy = llm::Strategy::kMedusa;
    EXPECT_FALSE(buildServingProfile(opts).isOk());
}

TEST_F(ProfileBuildTest, DecodeStepsGrowWithBatch)
{
    const auto vllm = profileFor(llm::Strategy::kVllm, nullptr);
    EXPECT_LT(vllm.decodeStep(1), vllm.decodeStep(256));
    // Graph decode is cheaper than eager decode at small batch.
    const auto nograph = profileFor(llm::Strategy::kNoCudaGraph,
                                    nullptr);
    EXPECT_LT(vllm.decodeStep(1), nograph.decodeStep(1));
}

TEST_F(ProfileBuildTest, DeferredCaptureMeasuresPenalties)
{
    const auto deferred = profileFor(llm::Strategy::kDeferredCapture,
                                     nullptr);
    EXPECT_TRUE(deferred.deferred_capture);
    ASSERT_EQ(deferred.capture_penalty_sec.size(),
              deferred.batch_sizes.size());
    for (f64 p : deferred.capture_penalty_sec) {
        EXPECT_GT(p, 0.0);
    }
    // Non-deferred strategies report no penalty.
    const auto vllm = profileFor(llm::Strategy::kVllm, nullptr);
    EXPECT_DOUBLE_EQ(vllm.capturePenalty(8), 0.0);
    EXPECT_GT(deferred.capturePenalty(8), 0.0);
    // Bucket mapping covers the whole range.
    EXPECT_EQ(deferred.bucketIndex(1), 0u);
    EXPECT_EQ(deferred.bucketIndex(300),
              deferred.batch_sizes.size() - 1);
}

TEST_F(ProfileBuildTest, PrefillGrowsWithTokens)
{
    const auto vllm = profileFor(llm::Strategy::kVllm, nullptr);
    EXPECT_LT(vllm.prefill(32), vllm.prefill(2048));
    EXPECT_GT(vllm.prefill(1), 0.0);
}

} // namespace
} // namespace medusa::serverless
