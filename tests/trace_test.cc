/**
 * @file
 * medusa-trace recorder tests: span timing against the injected clock,
 * the zero-cost-when-disabled contract, deterministic export under the
 * ThreadPool, and the Chrome trace_event golden format (DESIGN.md §12).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "common/types.h"

namespace medusa {
namespace {

/** Global allocation counter for the zero-allocation test. */
std::atomic<u64> g_allocs{0};

} // namespace
} // namespace medusa

// The full replaceable set must be overridden together: libstdc++'s
// stable_sort temporary buffer goes through the nothrow forms, and a
// partial override would pair the library's new with our free (an
// alloc-dealloc mismatch under ASan).
//
// GCC cannot see that the replaced operator new also mallocs, so it
// flags every new/free pairing in this TU; the pairing is consistent.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void *
operator new(std::size_t size)
{
    ++medusa::g_allocs;
    void *p = std::malloc(size);
    if (p == nullptr) {
        throw std::bad_alloc();
    }
    return p;
}

void *
operator new[](std::size_t size)
{
    return operator new(size);
}

void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    ++medusa::g_allocs;
    return std::malloc(size);
}

void *
operator new[](std::size_t size, const std::nothrow_t &tag) noexcept
{
    return operator new(size, tag);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

namespace medusa {
namespace {

TEST(TraceTest, SpanRecordsSimTime)
{
    SimClock clock;
    TraceRecorder rec(&clock);
    clock.advance(units::secToNs(1.0));
    {
        Span s(&rec, "cold_start.weights", "stage");
        clock.advance(units::secToNs(2.5));
    }
    const auto events = rec.events();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].name, "cold_start.weights");
    EXPECT_EQ(events[0].category, "stage");
    EXPECT_EQ(events[0].phase, TraceEvent::Phase::kComplete);
    EXPECT_EQ(events[0].start_ns, units::secToNs(1.0));
    EXPECT_EQ(events[0].dur_ns, units::secToNs(2.5));
}

TEST(TraceTest, NestedSpansAndInstants)
{
    SimClock clock;
    TraceRecorder rec(&clock);
    {
        Span outer(&rec, "restore.attempt", "restore");
        outer.arg("attempt", "1");
        clock.advance(100);
        {
            Span inner(&rec, "restore.rebind", "restore");
            clock.advance(50);
        }
        rec.instant("restore.attempt_failed", "restore");
        clock.advance(25);
    }
    const auto events = rec.events();
    ASSERT_EQ(events.size(), 3u);
    // Canonical order: outer (starts first), inner, then the instant.
    EXPECT_EQ(events[0].name, "restore.attempt");
    EXPECT_EQ(events[0].dur_ns, 175);
    ASSERT_EQ(events[0].args.size(), 1u);
    EXPECT_EQ(events[0].args[0].first, "attempt");
    EXPECT_EQ(events[1].name, "restore.rebind");
    EXPECT_EQ(events[1].start_ns, 100);
    EXPECT_EQ(events[1].dur_ns, 50);
    EXPECT_EQ(events[2].name, "restore.attempt_failed");
    EXPECT_EQ(events[2].phase, TraceEvent::Phase::kInstant);
    EXPECT_EQ(events[2].start_ns, 150);
}

TEST(TraceTest, OpenSpansAreNeverExported)
{
    SimClock clock;
    TraceRecorder rec(&clock);
    const u64 open = rec.beginSpan("left.open", "stage");
    rec.instant("marker", "stage");
    EXPECT_EQ(rec.events().size(), 1u);
    EXPECT_EQ(rec.events()[0].name, "marker");
    rec.endSpan(open);
    EXPECT_EQ(rec.events().size(), 2u);
    rec.endSpan(open); // idempotent
    EXPECT_EQ(rec.events().size(), 2u);
}

TEST(TraceTest, DisabledRecorderZeroAllocation)
{
    // The production discipline: a null recorder must cost a pointer
    // test — no allocation, no clock read (Span holds no clock at all).
    const u64 before = g_allocs.load();
    for (int i = 0; i < 1000; ++i) {
        Span s(nullptr, "cold_start.weights", "stage");
        s.arg("ignored", "ignored");
        s.end();
    }
    EXPECT_EQ(g_allocs.load(), before);
}

TEST(TraceTest, DeterministicExportUnderThreadPool)
{
    // Pre-timed events appended from pool workers in a racy order must
    // export byte-identically to a serial append: the exporter sorts
    // into canonical (start, track, dur, name) order.
    auto make_event = [](std::size_t i) {
        TraceEvent ev;
        ev.name = "restore.graphs.build." + std::to_string(i % 7);
        ev.category = "restore";
        ev.track = static_cast<u32>(i % 3);
        ev.start_ns = static_cast<i64>((i * 37) % 11) * 1000;
        ev.dur_ns = static_cast<i64>(i % 5 + 1) * 100;
        return ev;
    };
    constexpr std::size_t kEvents = 200;

    TraceRecorder serial;
    for (std::size_t i = 0; i < kEvents; ++i) {
        serial.append(make_event(i));
    }
    const std::string golden = serial.toChromeJson();

    for (u32 threads : {2u, 5u}) {
        TraceRecorder racy;
        ThreadPool pool(threads);
        pool.parallelFor(kEvents, [&](std::size_t i) {
            racy.append(make_event(i));
        });
        EXPECT_EQ(racy.toChromeJson(), golden)
            << "trace export depends on thread count " << threads;
    }
}

TEST(TraceTest, ChromeExportGolden)
{
    TraceRecorder rec;
    rec.setTrackName(0, "main");
    rec.complete("cold_start.weights", "stage", 0, 1500, 2000000);
    TraceEvent instant;
    instant.name = "cache.hit";
    instant.category = "cache";
    instant.phase = TraceEvent::Phase::kInstant;
    instant.start_ns = 2500;
    instant.args.emplace_back("key", "llama-7b");
    rec.append(std::move(instant));

    const std::string expected =
        "{\"displayTimeUnit\":\"ms\",\"medusa\":{\"schema_version\":1},"
        "\"traceEvents\":["
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
        "\"args\":{\"name\":\"main\"}},"
        "{\"name\":\"cold_start.weights\",\"cat\":\"stage\",\"ph\":\"X\","
        "\"pid\":0,\"tid\":0,\"ts\":1.500,\"dur\":2000},"
        "{\"name\":\"cache.hit\",\"cat\":\"cache\",\"ph\":\"i\","
        "\"pid\":0,\"tid\":0,\"ts\":2.500,\"s\":\"t\","
        "\"args\":{\"key\":\"llama-7b\"}}"
        "]}";
    EXPECT_EQ(rec.toChromeJson(), expected);
}

TEST(TraceTest, EventsFromSlicesAtMark)
{
    SimClock clock;
    TraceRecorder rec(&clock);
    rec.instant("before", "stage");
    const std::size_t mark = rec.eventCount();
    clock.advance(10);
    rec.instant("after", "stage");
    const auto tail = rec.eventsFrom(mark);
    ASSERT_EQ(tail.size(), 1u);
    EXPECT_EQ(tail[0].name, "after");
}

TEST(TraceTest, AppendAllShiftsTracks)
{
    TraceRecorder rank;
    rank.complete("tp.rank_restore", "restore", 0, 0, 100);
    TraceRecorder merged;
    merged.appendAll(rank.events(), /*track_offset=*/3);
    const auto events = merged.events();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].track, 3u);
}

TEST(TraceTest, ClearDropsEventsKeepsTrackNames)
{
    TraceRecorder rec;
    rec.setTrackName(0, "main");
    rec.complete("x", "stage", 0, 0, 1);
    rec.clear();
    EXPECT_EQ(rec.eventCount(), 0u);
    EXPECT_NE(rec.toChromeJson().find("\"main\""), std::string::npos);
}

} // namespace
} // namespace medusa
