/**
 * @file
 * The process-wide artifact cache: single-flight loading, shared
 * immutable entries, LRU eviction and failed-load retry semantics.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <span>
#include <thread>

#include "llm/model_config.h"
#include "medusa/artifact_cache.h"
#include "medusa/offline.h"

namespace medusa {
namespace {

using core::Artifact;
using core::ArtifactCache;

Artifact
namedArtifact(const std::string &name)
{
    Artifact a;
    a.model_name = name;
    a.model_seed = 7;
    return a;
}

TEST(ArtifactCache, MissLoadsThenHitsShareThePointer)
{
    ArtifactCache cache;
    int loads = 0;
    auto loader = [&loads]() -> StatusOr<Artifact> {
        ++loads;
        return namedArtifact("m");
    };
    bool hit = true;
    auto first = cache.getOrLoad("k", loader, &hit);
    ASSERT_TRUE(first.isOk());
    EXPECT_FALSE(hit);
    EXPECT_EQ((*first)->model_name, "m");

    auto second = cache.getOrLoad("k", loader, &hit);
    ASSERT_TRUE(second.isOk());
    EXPECT_TRUE(hit);
    EXPECT_EQ(loads, 1);
    EXPECT_EQ(first->get(), second->get());

    const MetricsSnapshot stats = cache.metricsSnapshot();
    EXPECT_EQ(stats.counterValue("artifact_cache.misses"), 1u);
    EXPECT_EQ(stats.counterValue("artifact_cache.hits"), 1u);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(ArtifactCache, SingleFlightRunsTheLoaderOnce)
{
    ArtifactCache cache;
    std::atomic<int> loads{0};
    auto loader = [&loads]() -> StatusOr<Artifact> {
        ++loads;
        // Hold the load open so every other thread has to wait on it.
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        return namedArtifact("m");
    };

    constexpr int kThreads = 8;
    std::vector<std::thread> threads;
    std::vector<std::shared_ptr<const Artifact>> got(kThreads);
    for (int i = 0; i < kThreads; ++i) {
        threads.emplace_back([&, i]() {
            auto result = cache.getOrLoad("k", loader);
            ASSERT_TRUE(result.isOk());
            got[i] = *result;
        });
    }
    for (std::thread &t : threads) {
        t.join();
    }
    EXPECT_EQ(loads.load(), 1);
    for (int i = 1; i < kThreads; ++i) {
        EXPECT_EQ(got[0].get(), got[i].get());
    }
    const MetricsSnapshot stats = cache.metricsSnapshot();
    EXPECT_EQ(stats.counterValue("artifact_cache.misses"), 1u);
    EXPECT_EQ(stats.counterValue("artifact_cache.hits"),
              static_cast<u64>(kThreads - 1));
}

TEST(ArtifactCache, EvictsLeastRecentlyUsed)
{
    ArtifactCache cache(/*capacity=*/2);
    int b_loads = 0;
    auto loadNamed = [](const std::string &name) {
        return [name]() -> StatusOr<Artifact> {
            return namedArtifact(name);
        };
    };
    ASSERT_TRUE(cache.getOrLoad("a", loadNamed("a")).isOk());
    ASSERT_TRUE(cache
                    .getOrLoad("b",
                               [&b_loads]() -> StatusOr<Artifact> {
                                   ++b_loads;
                                   return namedArtifact("b");
                               })
                    .isOk());
    // Touch a so b becomes the LRU entry, then overflow with c.
    ASSERT_TRUE(cache.getOrLoad("a", loadNamed("a")).isOk());
    ASSERT_TRUE(cache.getOrLoad("c", loadNamed("c")).isOk());
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.metricsSnapshot().counterValue("artifact_cache.evictions"), 1u);

    // b was evicted: fetching it again re-runs its loader. An evicted
    // artifact held elsewhere stays alive via its shared_ptr.
    bool hit = true;
    ASSERT_TRUE(cache
                    .getOrLoad("b",
                               [&b_loads]() -> StatusOr<Artifact> {
                                   ++b_loads;
                                   return namedArtifact("b");
                               },
                               &hit)
                    .isOk());
    EXPECT_FALSE(hit);
    EXPECT_EQ(b_loads, 2);
}

TEST(ArtifactCache, FailedLoadPropagatesAndRetries)
{
    ArtifactCache cache;
    int attempts = 0;
    auto flaky = [&attempts]() -> StatusOr<Artifact> {
        if (++attempts == 1) {
            return internalError("transient artifact read failure");
        }
        return namedArtifact("m");
    };
    auto first = cache.getOrLoad("k", flaky);
    ASSERT_FALSE(first.isOk());
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.metricsSnapshot().counterValue("artifact_cache.failed_loads"), 1u);

    auto second = cache.getOrLoad("k", flaky);
    ASSERT_TRUE(second.isOk());
    EXPECT_EQ((*second)->model_name, "m");
    EXPECT_EQ(attempts, 2);
}

TEST(ArtifactCache, NegativeEntryExpiresAfterBackoff)
{
    // A failure record is a negative cache entry with TTL = its
    // backoff deadline. Inside the backoff keyFailure reports the
    // recorded Status; once the deadline passes it must report ok()
    // again — serving the stale Status to later single-flight waiters
    // would claim a failure state that no longer gates anything.
    ArtifactCache cache(/*capacity=*/8, /*initial_backoff_ms=*/20.0,
                        /*max_backoff_ms=*/20.0);
    auto failing = []() -> StatusOr<Artifact> {
        return internalError("persistent artifact read failure");
    };
    ASSERT_FALSE(cache.getOrLoad("k", failing).isOk());

    const Status during = cache.keyFailure("k");
    ASSERT_FALSE(during.isOk());
    EXPECT_NE(during.message().find("persistent"), std::string::npos);
    EXPECT_TRUE(cache.keyFailure("other").isOk());

    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    EXPECT_TRUE(cache.keyFailure("k").isOk())
        << "negative entry served after its backoff expired";
}

TEST(ArtifactCache, ImageCacheSharesTheTemplate)
{
    // The generalized MaterializationCache must serve v6 images with
    // the same single-flight / stats behavior (and the same
    // artifact_cache.* metric names, asserted via stats()).
    core::ImageCache cache;
    core::OfflineOptions opts;
    opts.model = llm::findModel("Qwen1.5-0.5B").value();
    opts.model.num_layers = 2;
    opts.pipeline.validate = false;
    const auto offline = core::materialize(opts);
    ASSERT_TRUE(offline.isOk()) << offline.status().toString();
    const std::vector<u8> &bytes = offline->image_bytes;

    int loads = 0;
    auto loader = [&]() {
        ++loads;
        return core::MaterializedImage::openView(
            std::span<const u8>(bytes));
    };
    bool hit = true;
    auto first = cache.getOrLoad("img", loader, &hit);
    ASSERT_TRUE(first.isOk()) << first.status().toString();
    EXPECT_FALSE(hit);
    auto second = cache.getOrLoad("img", loader, &hit);
    ASSERT_TRUE(second.isOk());
    EXPECT_TRUE(hit);
    EXPECT_EQ(loads, 1);
    EXPECT_EQ(first->get(), second->get());
    EXPECT_EQ((*first)->model_name, opts.model.name);
    EXPECT_EQ(cache.metricsSnapshot().counterValue("artifact_cache.hits"), 1u);
    EXPECT_EQ(cache.metricsSnapshot().counterValue("artifact_cache.misses"), 1u);
}

TEST(ArtifactCache, FailedLoadUnblocksWaitersWhoRetry)
{
    ArtifactCache cache;
    std::atomic<int> attempts{0};
    auto flaky = [&attempts]() -> StatusOr<Artifact> {
        const int n = ++attempts;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        if (n == 1) {
            return internalError("first load fails");
        }
        return namedArtifact("m");
    };
    constexpr int kThreads = 4;
    std::atomic<int> ok{0};
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
        threads.emplace_back([&]() {
            // Whoever ran the failing load sees the error; waiters
            // retry the load themselves, so each thread succeeds on
            // its first or second attempt.
            for (int tries = 0; tries < 2; ++tries) {
                if (cache.getOrLoad("k", flaky).isOk()) {
                    ++ok;
                    return;
                }
            }
        });
    }
    for (std::thread &t : threads) {
        t.join();
    }
    EXPECT_EQ(ok.load(), kThreads);
    EXPECT_EQ(cache.metricsSnapshot().counterValue("artifact_cache.failed_loads"), 1u);
}

TEST(ArtifactCache, ClearDropsResidentEntries)
{
    ArtifactCache cache;
    ASSERT_TRUE(cache
                    .getOrLoad("k",
                               []() -> StatusOr<Artifact> {
                                   return namedArtifact("m");
                               })
                    .isOk());
    EXPECT_EQ(cache.size(), 1u);
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
}

} // namespace
} // namespace medusa
