file(REMOVE_RECURSE
  "../bench/bench_fig7_overall"
  "../bench/bench_fig7_overall.pdb"
  "CMakeFiles/bench_fig7_overall.dir/bench_fig7_overall.cc.o"
  "CMakeFiles/bench_fig7_overall.dir/bench_fig7_overall.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
