# Empty dependencies file for bench_fig7_overall.
# This may be replaced when dependencies are built.
