file(REMOVE_RECURSE
  "../bench/bench_fig9_offline"
  "../bench/bench_fig9_offline.pdb"
  "CMakeFiles/bench_fig9_offline.dir/bench_fig9_offline.cc.o"
  "CMakeFiles/bench_fig9_offline.dir/bench_fig9_offline.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_offline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
