# Empty dependencies file for bench_fig9_offline.
# This may be replaced when dependencies are built.
