file(REMOVE_RECURSE
  "../bench/bench_fig8_strategy_breakdown"
  "../bench/bench_fig8_strategy_breakdown.pdb"
  "CMakeFiles/bench_fig8_strategy_breakdown.dir/bench_fig8_strategy_breakdown.cc.o"
  "CMakeFiles/bench_fig8_strategy_breakdown.dir/bench_fig8_strategy_breakdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_strategy_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
