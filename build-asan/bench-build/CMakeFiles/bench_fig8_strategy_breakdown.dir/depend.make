# Empty dependencies file for bench_fig8_strategy_breakdown.
# This may be replaced when dependencies are built.
