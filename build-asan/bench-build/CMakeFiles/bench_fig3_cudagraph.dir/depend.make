# Empty dependencies file for bench_fig3_cudagraph.
# This may be replaced when dependencies are built.
