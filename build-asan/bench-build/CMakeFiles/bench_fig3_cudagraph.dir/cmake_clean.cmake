file(REMOVE_RECURSE
  "../bench/bench_fig3_cudagraph"
  "../bench/bench_fig3_cudagraph.pdb"
  "CMakeFiles/bench_fig3_cudagraph.dir/bench_fig3_cudagraph.cc.o"
  "CMakeFiles/bench_fig3_cudagraph.dir/bench_fig3_cudagraph.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_cudagraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
