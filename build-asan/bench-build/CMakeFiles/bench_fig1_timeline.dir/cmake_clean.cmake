file(REMOVE_RECURSE
  "../bench/bench_fig1_timeline"
  "../bench/bench_fig1_timeline.pdb"
  "CMakeFiles/bench_fig1_timeline.dir/bench_fig1_timeline.cc.o"
  "CMakeFiles/bench_fig1_timeline.dir/bench_fig1_timeline.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
