file(REMOVE_RECURSE
  "../bench/bench_tp_extension"
  "../bench/bench_tp_extension.pdb"
  "CMakeFiles/bench_tp_extension.dir/bench_tp_extension.cc.o"
  "CMakeFiles/bench_tp_extension.dir/bench_tp_extension.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tp_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
