# Empty dependencies file for bench_tp_extension.
# This may be replaced when dependencies are built.
