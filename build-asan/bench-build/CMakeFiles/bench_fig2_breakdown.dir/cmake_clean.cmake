file(REMOVE_RECURSE
  "../bench/bench_fig2_breakdown"
  "../bench/bench_fig2_breakdown.pdb"
  "CMakeFiles/bench_fig2_breakdown.dir/bench_fig2_breakdown.cc.o"
  "CMakeFiles/bench_fig2_breakdown.dir/bench_fig2_breakdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
