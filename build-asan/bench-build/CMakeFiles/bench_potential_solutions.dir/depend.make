# Empty dependencies file for bench_potential_solutions.
# This may be replaced when dependencies are built.
