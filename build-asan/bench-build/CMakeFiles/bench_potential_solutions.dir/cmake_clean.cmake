file(REMOVE_RECURSE
  "../bench/bench_potential_solutions"
  "../bench/bench_potential_solutions.pdb"
  "CMakeFiles/bench_potential_solutions.dir/bench_potential_solutions.cc.o"
  "CMakeFiles/bench_potential_solutions.dir/bench_potential_solutions.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_potential_solutions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
