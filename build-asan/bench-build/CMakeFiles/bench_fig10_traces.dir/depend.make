# Empty dependencies file for bench_fig10_traces.
# This may be replaced when dependencies are built.
