file(REMOVE_RECURSE
  "../bench/bench_fig10_traces"
  "../bench/bench_fig10_traces.pdb"
  "CMakeFiles/bench_fig10_traces.dir/bench_fig10_traces.cc.o"
  "CMakeFiles/bench_fig10_traces.dir/bench_fig10_traces.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
