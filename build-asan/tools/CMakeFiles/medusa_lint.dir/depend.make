# Empty dependencies file for medusa_lint.
# This may be replaced when dependencies are built.
