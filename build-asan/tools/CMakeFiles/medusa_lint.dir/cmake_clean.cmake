file(REMOVE_RECURSE
  "CMakeFiles/medusa_lint.dir/medusa_lint.cc.o"
  "CMakeFiles/medusa_lint.dir/medusa_lint.cc.o.d"
  "medusa_lint"
  "medusa_lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medusa_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
