file(REMOVE_RECURSE
  "CMakeFiles/simcuda_graph_test.dir/simcuda_graph_test.cc.o"
  "CMakeFiles/simcuda_graph_test.dir/simcuda_graph_test.cc.o.d"
  "simcuda_graph_test"
  "simcuda_graph_test.pdb"
  "simcuda_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simcuda_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
