# Empty dependencies file for simcuda_graph_test.
# This may be replaced when dependencies are built.
