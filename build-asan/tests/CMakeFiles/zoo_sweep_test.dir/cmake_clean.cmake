file(REMOVE_RECURSE
  "CMakeFiles/zoo_sweep_test.dir/zoo_sweep_test.cc.o"
  "CMakeFiles/zoo_sweep_test.dir/zoo_sweep_test.cc.o.d"
  "zoo_sweep_test"
  "zoo_sweep_test.pdb"
  "zoo_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zoo_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
