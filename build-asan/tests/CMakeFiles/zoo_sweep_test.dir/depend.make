# Empty dependencies file for zoo_sweep_test.
# This may be replaced when dependencies are built.
