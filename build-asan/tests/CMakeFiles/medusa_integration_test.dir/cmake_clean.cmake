file(REMOVE_RECURSE
  "CMakeFiles/medusa_integration_test.dir/medusa_integration_test.cc.o"
  "CMakeFiles/medusa_integration_test.dir/medusa_integration_test.cc.o.d"
  "medusa_integration_test"
  "medusa_integration_test.pdb"
  "medusa_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medusa_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
