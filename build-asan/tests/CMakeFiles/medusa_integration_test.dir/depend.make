# Empty dependencies file for medusa_integration_test.
# This may be replaced when dependencies are built.
