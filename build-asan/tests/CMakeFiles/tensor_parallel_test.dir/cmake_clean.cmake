file(REMOVE_RECURSE
  "CMakeFiles/tensor_parallel_test.dir/tensor_parallel_test.cc.o"
  "CMakeFiles/tensor_parallel_test.dir/tensor_parallel_test.cc.o.d"
  "tensor_parallel_test"
  "tensor_parallel_test.pdb"
  "tensor_parallel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensor_parallel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
