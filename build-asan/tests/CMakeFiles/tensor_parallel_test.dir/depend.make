# Empty dependencies file for tensor_parallel_test.
# This may be replaced when dependencies are built.
