file(REMOVE_RECURSE
  "CMakeFiles/model_config_test.dir/model_config_test.cc.o"
  "CMakeFiles/model_config_test.dir/model_config_test.cc.o.d"
  "model_config_test"
  "model_config_test.pdb"
  "model_config_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
