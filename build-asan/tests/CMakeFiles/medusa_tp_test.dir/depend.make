# Empty dependencies file for medusa_tp_test.
# This may be replaced when dependencies are built.
