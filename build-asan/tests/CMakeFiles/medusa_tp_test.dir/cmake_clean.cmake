file(REMOVE_RECURSE
  "CMakeFiles/medusa_tp_test.dir/medusa_tp_test.cc.o"
  "CMakeFiles/medusa_tp_test.dir/medusa_tp_test.cc.o.d"
  "medusa_tp_test"
  "medusa_tp_test.pdb"
  "medusa_tp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medusa_tp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
