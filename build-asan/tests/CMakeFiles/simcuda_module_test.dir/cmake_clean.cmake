file(REMOVE_RECURSE
  "CMakeFiles/simcuda_module_test.dir/simcuda_module_test.cc.o"
  "CMakeFiles/simcuda_module_test.dir/simcuda_module_test.cc.o.d"
  "simcuda_module_test"
  "simcuda_module_test.pdb"
  "simcuda_module_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simcuda_module_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
