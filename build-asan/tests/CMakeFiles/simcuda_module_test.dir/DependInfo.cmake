
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/simcuda_module_test.cc" "tests/CMakeFiles/simcuda_module_test.dir/simcuda_module_test.cc.o" "gcc" "tests/CMakeFiles/simcuda_module_test.dir/simcuda_module_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/serverless/CMakeFiles/medusa_serverless.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/medusa/CMakeFiles/medusa_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/workload/CMakeFiles/medusa_workload.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/llm/CMakeFiles/medusa_llm.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/simcuda/CMakeFiles/medusa_simcuda.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/medusa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
