# Empty dependencies file for simcuda_module_test.
# This may be replaced when dependencies are built.
