# Empty dependencies file for caching_allocator_test.
# This may be replaced when dependencies are built.
