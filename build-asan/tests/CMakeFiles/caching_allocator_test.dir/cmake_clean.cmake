file(REMOVE_RECURSE
  "CMakeFiles/caching_allocator_test.dir/caching_allocator_test.cc.o"
  "CMakeFiles/caching_allocator_test.dir/caching_allocator_test.cc.o.d"
  "caching_allocator_test"
  "caching_allocator_test.pdb"
  "caching_allocator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/caching_allocator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
