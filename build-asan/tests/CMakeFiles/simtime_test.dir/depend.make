# Empty dependencies file for simtime_test.
# This may be replaced when dependencies are built.
