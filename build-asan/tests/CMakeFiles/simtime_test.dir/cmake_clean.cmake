file(REMOVE_RECURSE
  "CMakeFiles/simtime_test.dir/simtime_test.cc.o"
  "CMakeFiles/simtime_test.dir/simtime_test.cc.o.d"
  "simtime_test"
  "simtime_test.pdb"
  "simtime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
