# Empty dependencies file for simcuda_memory_test.
# This may be replaced when dependencies are built.
