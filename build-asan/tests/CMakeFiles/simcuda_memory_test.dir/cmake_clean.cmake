file(REMOVE_RECURSE
  "CMakeFiles/simcuda_memory_test.dir/simcuda_memory_test.cc.o"
  "CMakeFiles/simcuda_memory_test.dir/simcuda_memory_test.cc.o.d"
  "simcuda_memory_test"
  "simcuda_memory_test.pdb"
  "simcuda_memory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simcuda_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
