# Empty dependencies file for medusa_indirect_test.
# This may be replaced when dependencies are built.
