file(REMOVE_RECURSE
  "CMakeFiles/medusa_indirect_test.dir/medusa_indirect_test.cc.o"
  "CMakeFiles/medusa_indirect_test.dir/medusa_indirect_test.cc.o.d"
  "medusa_indirect_test"
  "medusa_indirect_test.pdb"
  "medusa_indirect_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medusa_indirect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
