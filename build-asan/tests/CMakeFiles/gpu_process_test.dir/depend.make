# Empty dependencies file for gpu_process_test.
# This may be replaced when dependencies are built.
