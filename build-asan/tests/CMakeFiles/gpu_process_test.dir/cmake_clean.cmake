file(REMOVE_RECURSE
  "CMakeFiles/gpu_process_test.dir/gpu_process_test.cc.o"
  "CMakeFiles/gpu_process_test.dir/gpu_process_test.cc.o.d"
  "gpu_process_test"
  "gpu_process_test.pdb"
  "gpu_process_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_process_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
