# Empty dependencies file for serverless_serving.
# This may be replaced when dependencies are built.
