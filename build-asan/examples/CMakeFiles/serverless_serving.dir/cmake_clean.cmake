file(REMOVE_RECURSE
  "CMakeFiles/serverless_serving.dir/serverless_serving.cpp.o"
  "CMakeFiles/serverless_serving.dir/serverless_serving.cpp.o.d"
  "serverless_serving"
  "serverless_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serverless_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
