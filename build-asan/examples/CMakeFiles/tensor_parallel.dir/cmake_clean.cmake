file(REMOVE_RECURSE
  "CMakeFiles/tensor_parallel.dir/tensor_parallel.cpp.o"
  "CMakeFiles/tensor_parallel.dir/tensor_parallel.cpp.o.d"
  "tensor_parallel"
  "tensor_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensor_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
