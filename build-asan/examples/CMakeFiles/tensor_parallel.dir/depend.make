# Empty dependencies file for tensor_parallel.
# This may be replaced when dependencies are built.
