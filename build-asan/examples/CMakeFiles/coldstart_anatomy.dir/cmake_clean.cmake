file(REMOVE_RECURSE
  "CMakeFiles/coldstart_anatomy.dir/coldstart_anatomy.cpp.o"
  "CMakeFiles/coldstart_anatomy.dir/coldstart_anatomy.cpp.o.d"
  "coldstart_anatomy"
  "coldstart_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coldstart_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
