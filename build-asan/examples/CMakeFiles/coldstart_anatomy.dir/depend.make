# Empty dependencies file for coldstart_anatomy.
# This may be replaced when dependencies are built.
