# Empty dependencies file for offline_materialize.
# This may be replaced when dependencies are built.
