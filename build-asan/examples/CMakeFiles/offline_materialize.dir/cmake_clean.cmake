file(REMOVE_RECURSE
  "CMakeFiles/offline_materialize.dir/offline_materialize.cpp.o"
  "CMakeFiles/offline_materialize.dir/offline_materialize.cpp.o.d"
  "offline_materialize"
  "offline_materialize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_materialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
