file(REMOVE_RECURSE
  "libmedusa_workload.a"
)
