# Empty dependencies file for medusa_workload.
# This may be replaced when dependencies are built.
