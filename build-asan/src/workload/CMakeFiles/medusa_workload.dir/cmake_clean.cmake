file(REMOVE_RECURSE
  "CMakeFiles/medusa_workload.dir/trace.cc.o"
  "CMakeFiles/medusa_workload.dir/trace.cc.o.d"
  "libmedusa_workload.a"
  "libmedusa_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medusa_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
