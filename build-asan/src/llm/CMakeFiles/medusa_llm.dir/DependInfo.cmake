
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/llm/engine.cc" "src/llm/CMakeFiles/medusa_llm.dir/engine.cc.o" "gcc" "src/llm/CMakeFiles/medusa_llm.dir/engine.cc.o.d"
  "/root/repo/src/llm/forward.cc" "src/llm/CMakeFiles/medusa_llm.dir/forward.cc.o" "gcc" "src/llm/CMakeFiles/medusa_llm.dir/forward.cc.o.d"
  "/root/repo/src/llm/kv_cache.cc" "src/llm/CMakeFiles/medusa_llm.dir/kv_cache.cc.o" "gcc" "src/llm/CMakeFiles/medusa_llm.dir/kv_cache.cc.o.d"
  "/root/repo/src/llm/model_config.cc" "src/llm/CMakeFiles/medusa_llm.dir/model_config.cc.o" "gcc" "src/llm/CMakeFiles/medusa_llm.dir/model_config.cc.o.d"
  "/root/repo/src/llm/runtime.cc" "src/llm/CMakeFiles/medusa_llm.dir/runtime.cc.o" "gcc" "src/llm/CMakeFiles/medusa_llm.dir/runtime.cc.o.d"
  "/root/repo/src/llm/tensor_parallel.cc" "src/llm/CMakeFiles/medusa_llm.dir/tensor_parallel.cc.o" "gcc" "src/llm/CMakeFiles/medusa_llm.dir/tensor_parallel.cc.o.d"
  "/root/repo/src/llm/tokenizer.cc" "src/llm/CMakeFiles/medusa_llm.dir/tokenizer.cc.o" "gcc" "src/llm/CMakeFiles/medusa_llm.dir/tokenizer.cc.o.d"
  "/root/repo/src/llm/weights.cc" "src/llm/CMakeFiles/medusa_llm.dir/weights.cc.o" "gcc" "src/llm/CMakeFiles/medusa_llm.dir/weights.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/simcuda/CMakeFiles/medusa_simcuda.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/medusa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
