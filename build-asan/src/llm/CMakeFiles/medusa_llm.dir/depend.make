# Empty dependencies file for medusa_llm.
# This may be replaced when dependencies are built.
