file(REMOVE_RECURSE
  "CMakeFiles/medusa_llm.dir/engine.cc.o"
  "CMakeFiles/medusa_llm.dir/engine.cc.o.d"
  "CMakeFiles/medusa_llm.dir/forward.cc.o"
  "CMakeFiles/medusa_llm.dir/forward.cc.o.d"
  "CMakeFiles/medusa_llm.dir/kv_cache.cc.o"
  "CMakeFiles/medusa_llm.dir/kv_cache.cc.o.d"
  "CMakeFiles/medusa_llm.dir/model_config.cc.o"
  "CMakeFiles/medusa_llm.dir/model_config.cc.o.d"
  "CMakeFiles/medusa_llm.dir/runtime.cc.o"
  "CMakeFiles/medusa_llm.dir/runtime.cc.o.d"
  "CMakeFiles/medusa_llm.dir/tensor_parallel.cc.o"
  "CMakeFiles/medusa_llm.dir/tensor_parallel.cc.o.d"
  "CMakeFiles/medusa_llm.dir/tokenizer.cc.o"
  "CMakeFiles/medusa_llm.dir/tokenizer.cc.o.d"
  "CMakeFiles/medusa_llm.dir/weights.cc.o"
  "CMakeFiles/medusa_llm.dir/weights.cc.o.d"
  "libmedusa_llm.a"
  "libmedusa_llm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medusa_llm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
