file(REMOVE_RECURSE
  "libmedusa_llm.a"
)
