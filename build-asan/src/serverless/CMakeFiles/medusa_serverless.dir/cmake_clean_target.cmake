file(REMOVE_RECURSE
  "libmedusa_serverless.a"
)
