# Empty dependencies file for medusa_serverless.
# This may be replaced when dependencies are built.
