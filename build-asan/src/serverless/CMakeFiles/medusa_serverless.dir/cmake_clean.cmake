file(REMOVE_RECURSE
  "CMakeFiles/medusa_serverless.dir/cluster.cc.o"
  "CMakeFiles/medusa_serverless.dir/cluster.cc.o.d"
  "CMakeFiles/medusa_serverless.dir/profile.cc.o"
  "CMakeFiles/medusa_serverless.dir/profile.cc.o.d"
  "libmedusa_serverless.a"
  "libmedusa_serverless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medusa_serverless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
