file(REMOVE_RECURSE
  "libmedusa_core.a"
)
