
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/medusa/analyze.cc" "src/medusa/CMakeFiles/medusa_core.dir/analyze.cc.o" "gcc" "src/medusa/CMakeFiles/medusa_core.dir/analyze.cc.o.d"
  "/root/repo/src/medusa/artifact.cc" "src/medusa/CMakeFiles/medusa_core.dir/artifact.cc.o" "gcc" "src/medusa/CMakeFiles/medusa_core.dir/artifact.cc.o.d"
  "/root/repo/src/medusa/checkpoint.cc" "src/medusa/CMakeFiles/medusa_core.dir/checkpoint.cc.o" "gcc" "src/medusa/CMakeFiles/medusa_core.dir/checkpoint.cc.o.d"
  "/root/repo/src/medusa/lint/lint.cc" "src/medusa/CMakeFiles/medusa_core.dir/lint/lint.cc.o" "gcc" "src/medusa/CMakeFiles/medusa_core.dir/lint/lint.cc.o.d"
  "/root/repo/src/medusa/lint/rules.cc" "src/medusa/CMakeFiles/medusa_core.dir/lint/rules.cc.o" "gcc" "src/medusa/CMakeFiles/medusa_core.dir/lint/rules.cc.o.d"
  "/root/repo/src/medusa/offline.cc" "src/medusa/CMakeFiles/medusa_core.dir/offline.cc.o" "gcc" "src/medusa/CMakeFiles/medusa_core.dir/offline.cc.o.d"
  "/root/repo/src/medusa/record.cc" "src/medusa/CMakeFiles/medusa_core.dir/record.cc.o" "gcc" "src/medusa/CMakeFiles/medusa_core.dir/record.cc.o.d"
  "/root/repo/src/medusa/replay.cc" "src/medusa/CMakeFiles/medusa_core.dir/replay.cc.o" "gcc" "src/medusa/CMakeFiles/medusa_core.dir/replay.cc.o.d"
  "/root/repo/src/medusa/restore.cc" "src/medusa/CMakeFiles/medusa_core.dir/restore.cc.o" "gcc" "src/medusa/CMakeFiles/medusa_core.dir/restore.cc.o.d"
  "/root/repo/src/medusa/tp.cc" "src/medusa/CMakeFiles/medusa_core.dir/tp.cc.o" "gcc" "src/medusa/CMakeFiles/medusa_core.dir/tp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/llm/CMakeFiles/medusa_llm.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/simcuda/CMakeFiles/medusa_simcuda.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/medusa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
