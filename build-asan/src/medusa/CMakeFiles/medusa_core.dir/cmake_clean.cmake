file(REMOVE_RECURSE
  "CMakeFiles/medusa_core.dir/analyze.cc.o"
  "CMakeFiles/medusa_core.dir/analyze.cc.o.d"
  "CMakeFiles/medusa_core.dir/artifact.cc.o"
  "CMakeFiles/medusa_core.dir/artifact.cc.o.d"
  "CMakeFiles/medusa_core.dir/checkpoint.cc.o"
  "CMakeFiles/medusa_core.dir/checkpoint.cc.o.d"
  "CMakeFiles/medusa_core.dir/lint/lint.cc.o"
  "CMakeFiles/medusa_core.dir/lint/lint.cc.o.d"
  "CMakeFiles/medusa_core.dir/lint/rules.cc.o"
  "CMakeFiles/medusa_core.dir/lint/rules.cc.o.d"
  "CMakeFiles/medusa_core.dir/offline.cc.o"
  "CMakeFiles/medusa_core.dir/offline.cc.o.d"
  "CMakeFiles/medusa_core.dir/record.cc.o"
  "CMakeFiles/medusa_core.dir/record.cc.o.d"
  "CMakeFiles/medusa_core.dir/replay.cc.o"
  "CMakeFiles/medusa_core.dir/replay.cc.o.d"
  "CMakeFiles/medusa_core.dir/restore.cc.o"
  "CMakeFiles/medusa_core.dir/restore.cc.o.d"
  "CMakeFiles/medusa_core.dir/tp.cc.o"
  "CMakeFiles/medusa_core.dir/tp.cc.o.d"
  "libmedusa_core.a"
  "libmedusa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medusa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
