# Empty dependencies file for medusa_core.
# This may be replaced when dependencies are built.
