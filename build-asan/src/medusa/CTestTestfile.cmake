# CMake generated Testfile for 
# Source directory: /root/repo/src/medusa
# Build directory: /root/repo/build-asan/src/medusa
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
