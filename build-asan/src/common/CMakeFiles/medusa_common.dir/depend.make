# Empty dependencies file for medusa_common.
# This may be replaced when dependencies are built.
