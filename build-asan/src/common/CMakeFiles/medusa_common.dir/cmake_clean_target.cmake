file(REMOVE_RECURSE
  "libmedusa_common.a"
)
