file(REMOVE_RECURSE
  "CMakeFiles/medusa_common.dir/logging.cc.o"
  "CMakeFiles/medusa_common.dir/logging.cc.o.d"
  "CMakeFiles/medusa_common.dir/serialize.cc.o"
  "CMakeFiles/medusa_common.dir/serialize.cc.o.d"
  "CMakeFiles/medusa_common.dir/stats.cc.o"
  "CMakeFiles/medusa_common.dir/stats.cc.o.d"
  "CMakeFiles/medusa_common.dir/status.cc.o"
  "CMakeFiles/medusa_common.dir/status.cc.o.d"
  "libmedusa_common.a"
  "libmedusa_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medusa_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
