
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simcuda/caching_allocator.cc" "src/simcuda/CMakeFiles/medusa_simcuda.dir/caching_allocator.cc.o" "gcc" "src/simcuda/CMakeFiles/medusa_simcuda.dir/caching_allocator.cc.o.d"
  "/root/repo/src/simcuda/gpu_process.cc" "src/simcuda/CMakeFiles/medusa_simcuda.dir/gpu_process.cc.o" "gcc" "src/simcuda/CMakeFiles/medusa_simcuda.dir/gpu_process.cc.o.d"
  "/root/repo/src/simcuda/graph.cc" "src/simcuda/CMakeFiles/medusa_simcuda.dir/graph.cc.o" "gcc" "src/simcuda/CMakeFiles/medusa_simcuda.dir/graph.cc.o.d"
  "/root/repo/src/simcuda/kernel.cc" "src/simcuda/CMakeFiles/medusa_simcuda.dir/kernel.cc.o" "gcc" "src/simcuda/CMakeFiles/medusa_simcuda.dir/kernel.cc.o.d"
  "/root/repo/src/simcuda/kernels/builtin.cc" "src/simcuda/CMakeFiles/medusa_simcuda.dir/kernels/builtin.cc.o" "gcc" "src/simcuda/CMakeFiles/medusa_simcuda.dir/kernels/builtin.cc.o.d"
  "/root/repo/src/simcuda/lockstep.cc" "src/simcuda/CMakeFiles/medusa_simcuda.dir/lockstep.cc.o" "gcc" "src/simcuda/CMakeFiles/medusa_simcuda.dir/lockstep.cc.o.d"
  "/root/repo/src/simcuda/memory.cc" "src/simcuda/CMakeFiles/medusa_simcuda.dir/memory.cc.o" "gcc" "src/simcuda/CMakeFiles/medusa_simcuda.dir/memory.cc.o.d"
  "/root/repo/src/simcuda/module.cc" "src/simcuda/CMakeFiles/medusa_simcuda.dir/module.cc.o" "gcc" "src/simcuda/CMakeFiles/medusa_simcuda.dir/module.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/medusa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
