file(REMOVE_RECURSE
  "libmedusa_simcuda.a"
)
