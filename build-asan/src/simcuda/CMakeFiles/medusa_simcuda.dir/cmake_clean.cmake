file(REMOVE_RECURSE
  "CMakeFiles/medusa_simcuda.dir/caching_allocator.cc.o"
  "CMakeFiles/medusa_simcuda.dir/caching_allocator.cc.o.d"
  "CMakeFiles/medusa_simcuda.dir/gpu_process.cc.o"
  "CMakeFiles/medusa_simcuda.dir/gpu_process.cc.o.d"
  "CMakeFiles/medusa_simcuda.dir/graph.cc.o"
  "CMakeFiles/medusa_simcuda.dir/graph.cc.o.d"
  "CMakeFiles/medusa_simcuda.dir/kernel.cc.o"
  "CMakeFiles/medusa_simcuda.dir/kernel.cc.o.d"
  "CMakeFiles/medusa_simcuda.dir/kernels/builtin.cc.o"
  "CMakeFiles/medusa_simcuda.dir/kernels/builtin.cc.o.d"
  "CMakeFiles/medusa_simcuda.dir/lockstep.cc.o"
  "CMakeFiles/medusa_simcuda.dir/lockstep.cc.o.d"
  "CMakeFiles/medusa_simcuda.dir/memory.cc.o"
  "CMakeFiles/medusa_simcuda.dir/memory.cc.o.d"
  "CMakeFiles/medusa_simcuda.dir/module.cc.o"
  "CMakeFiles/medusa_simcuda.dir/module.cc.o.d"
  "libmedusa_simcuda.a"
  "libmedusa_simcuda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medusa_simcuda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
