# Empty dependencies file for medusa_simcuda.
# This may be replaced when dependencies are built.
