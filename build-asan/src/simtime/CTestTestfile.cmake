# CMake generated Testfile for 
# Source directory: /root/repo/src/simtime
# Build directory: /root/repo/build-asan/src/simtime
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
