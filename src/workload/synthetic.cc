#include "workload/synthetic.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace medusa::workload {

namespace {

constexpr f64 kTwoPi = 2.0 * 3.14159265358979323846;

/** Draw one token length: log-normal body with a Pareto tail mix. */
u32
drawLength(BatchRng &rng, f64 mu, f64 sigma, f64 tail_prob,
           f64 tail_alpha, f64 mean, u32 max_tokens)
{
    f64 v;
    if (tail_prob > 0 && rng.nextDouble() < tail_prob) {
        v = rng.nextPareto(mean, tail_alpha);
    } else {
        v = rng.nextLogNormal(mu, sigma);
    }
    return static_cast<u32>(
        std::clamp(v, 1.0, static_cast<f64>(max_tokens)));
}

} // namespace

std::vector<Request>
generateSyntheticTrace(const SyntheticTraceOptions &options)
{
    MEDUSA_CHECK(options.diurnal_amplitude >= 0.0 &&
                     options.diurnal_amplitude < 1.0,
                 "diurnal_amplitude must be in [0, 1)");
    MEDUSA_CHECK(options.num_models >= 1, "need at least one model");
    BatchRng rng(options.seed);

    // Log-normal parameterization: mean = exp(mu + sigma^2/2).
    const f64 sigma = options.length_sigma;
    const f64 prompt_mu =
        std::log(options.mean_prompt_tokens) - sigma * sigma / 2.0;
    const f64 output_mu =
        std::log(options.mean_output_tokens) - sigma * sigma / 2.0;

    // Zipf CDF over model ids (popularity ranks). Tiny table, computed
    // once; draws binary-search it.
    std::vector<f64> model_cdf;
    if (options.num_models > 1) {
        model_cdf.reserve(options.num_models);
        f64 total = 0;
        for (u32 m = 0; m < options.num_models; ++m) {
            total += 1.0 / std::pow(static_cast<f64>(m + 1),
                                    options.model_zipf_s);
            model_cdf.push_back(total);
        }
        for (f64 &c : model_cdf) {
            c /= total;
        }
    }

    // Lewis-Shedler thinning: draw candidate arrivals from a
    // homogeneous Poisson process at the peak rate, accept each with
    // probability rate(t) / peak. Exactly reproduces the seeded draw
    // sequence regardless of acceptance pattern.
    const f64 peak_rate =
        options.requests_per_sec * (1.0 + options.diurnal_amplitude);
    MEDUSA_CHECK(peak_rate > 0, "requests_per_sec must be positive");

    std::vector<Request> trace;
    if (options.max_requests > 0) {
        trace.reserve(options.max_requests);
    }
    f64 now = 0;
    while (true) {
        now += rng.nextExponential(peak_rate);
        if (now >= options.duration_sec) {
            break;
        }
        const f64 rate =
            options.requests_per_sec *
            (1.0 + options.diurnal_amplitude *
                       std::sin(kTwoPi * now /
                                options.diurnal_period_sec));
        if (rng.nextDouble() * peak_rate >= rate) {
            continue; // thinned out
        }
        Request r;
        r.arrival_sec = now;
        r.ttft_deadline_sec = options.slo_ttft_sec;
        r.prompt_tokens = drawLength(
            rng, prompt_mu, sigma, options.tail_prob, options.tail_alpha,
            options.mean_prompt_tokens, options.max_prompt_tokens);
        r.output_tokens = drawLength(
            rng, output_mu, sigma, options.tail_prob, options.tail_alpha,
            options.mean_output_tokens, options.max_output_tokens);
        if (options.num_models > 1) {
            const f64 u = rng.nextDouble();
            const auto it = std::lower_bound(model_cdf.begin(),
                                             model_cdf.end(), u);
            r.model_id = static_cast<u16>(
                std::min<std::size_t>(it - model_cdf.begin(),
                                      options.num_models - 1));
        }
        trace.push_back(r);
        if (options.max_requests > 0 &&
            trace.size() >= options.max_requests) {
            break;
        }
    }
    return trace;
}

} // namespace medusa::workload
