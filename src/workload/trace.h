/**
 * @file
 * Workload generation for the application-trace experiments (§7.5).
 *
 * The paper replays ShareGPT conversations with Poisson arrivals. The
 * dataset itself is not redistributable here, so the generator produces
 * a synthetic trace with the same published statistics: mean prompt
 * length 161 tokens, mean output length 338 tokens (the averages the
 * paper quotes), log-normal length spread, and exponential inter-arrival
 * gaps at a configurable requests-per-second rate.
 */

#ifndef MEDUSA_WORKLOAD_TRACE_H
#define MEDUSA_WORKLOAD_TRACE_H

#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace medusa::workload {

/** One inference request of a trace. */
struct Request
{
    /** Arrival time since trace start (seconds). */
    f64 arrival_sec = 0;
    /** Real prompt length in tokens. */
    u32 prompt_tokens = 0;
    /** Real output length in tokens. */
    u32 output_tokens = 0;
    /**
     * The model this request targets (an index into the cluster's model
     * set). Single-model traces — everything the ShareGPT generator
     * produces — leave it 0; the synthetic generator (synthetic.h) draws
     * it from a Zipf mix for the multi-model scheduling studies.
     */
    u16 model_id = 0;
    /**
     * Time-to-first-token SLO deadline, relative to arrival (seconds);
     * 0 means no deadline. Consumed by the cluster simulator's
     * SloPolicy (serverless/cluster.h) for admission control, deadline
     * shedding and goodput accounting.
     */
    f64 ttft_deadline_sec = 0;
};

/** Generator configuration. */
struct TraceOptions
{
    f64 duration_sec = 300;
    /** Mean arrival rate (Poisson). */
    f64 requests_per_sec = 2;
    u64 seed = 1;
    /** ShareGPT statistics (paper §2.2). */
    f64 mean_prompt_tokens = 161;
    f64 mean_output_tokens = 338;
    /** Log-normal shape parameter of the length distributions. */
    f64 length_sigma = 0.9;
    u32 max_prompt_tokens = 2048;
    u32 max_output_tokens = 2048;

    /**
     * Burst modulation. LLM inference traffic is highly bursty — the
     * paper cites rate swings of 10-20x within 30-second windows — so
     * the Poisson rate alternates between a quiet and a burst phase
     * whose multipliers average out to requests_per_sec.
     */
    bool bursty = true;
    f64 quiet_rate_multiplier = 0.2;
    f64 burst_rate_multiplier = 4.0;
    /** Mean duration of each phase (exponentially distributed). */
    f64 quiet_phase_mean_sec = 24.0;
    f64 burst_phase_mean_sec = 8.0;
};

/** Generate a ShareGPT-like trace. */
std::vector<Request> generateShareGptTrace(const TraceOptions &options);

/** Empirical mean of prompt lengths over a trace. */
f64 meanPromptLength(const std::vector<Request> &trace);

/** Empirical mean of output lengths over a trace. */
f64 meanOutputLength(const std::vector<Request> &trace);

} // namespace medusa::workload

#endif // MEDUSA_WORKLOAD_TRACE_H
