#include "workload/trace.h"

#include <algorithm>
#include <cmath>

namespace medusa::workload {

std::vector<Request>
generateShareGptTrace(const TraceOptions &options)
{
    Rng rng(options.seed);
    std::vector<Request> trace;
    // Log-normal parameterization: mean = exp(mu + sigma^2/2).
    const f64 sigma = options.length_sigma;
    const f64 prompt_mu =
        std::log(options.mean_prompt_tokens) - sigma * sigma / 2.0;
    const f64 output_mu =
        std::log(options.mean_output_tokens) - sigma * sigma / 2.0;

    // Burst phases: a piecewise-constant rate multiplier, normalized so
    // the long-run mean stays requests_per_sec.
    const f64 quiet_w = options.quiet_phase_mean_sec;
    const f64 burst_w = options.burst_phase_mean_sec;
    const f64 mean_mult =
        (options.quiet_rate_multiplier * quiet_w +
         options.burst_rate_multiplier * burst_w) /
        (quiet_w + burst_w);
    bool in_burst = false;
    f64 phase_end = options.bursty ? rng.nextExponential(1.0 / quiet_w)
                                   : options.duration_sec;

    f64 now = 0;
    while (true) {
        f64 rate = options.requests_per_sec;
        if (options.bursty) {
            const f64 mult = in_burst ? options.burst_rate_multiplier
                                      : options.quiet_rate_multiplier;
            rate *= mult / mean_mult;
        }
        const f64 gap = rng.nextExponential(rate);
        if (options.bursty && now + gap >= phase_end) {
            // Cross into the next phase and redraw from there (a
            // slight thinning approximation at the boundary).
            now = phase_end;
            in_burst = !in_burst;
            phase_end =
                now + rng.nextExponential(
                          1.0 / (in_burst ? burst_w : quiet_w));
            if (now >= options.duration_sec) {
                break;
            }
            continue;
        }
        now += gap;
        if (now >= options.duration_sec) {
            break;
        }
        Request r;
        r.arrival_sec = now;
        r.prompt_tokens = static_cast<u32>(std::clamp(
            rng.nextLogNormal(prompt_mu, sigma), 1.0,
            static_cast<f64>(options.max_prompt_tokens)));
        r.output_tokens = static_cast<u32>(std::clamp(
            rng.nextLogNormal(output_mu, sigma), 1.0,
            static_cast<f64>(options.max_output_tokens)));
        trace.push_back(r);
    }
    return trace;
}

f64
meanPromptLength(const std::vector<Request> &trace)
{
    if (trace.empty()) {
        return 0;
    }
    f64 sum = 0;
    for (const Request &r : trace) {
        sum += r.prompt_tokens;
    }
    return sum / static_cast<f64>(trace.size());
}

f64
meanOutputLength(const std::vector<Request> &trace)
{
    if (trace.empty()) {
        return 0;
    }
    f64 sum = 0;
    for (const Request &r : trace) {
        sum += r.output_tokens;
    }
    return sum / static_cast<f64>(trace.size());
}

} // namespace medusa::workload
