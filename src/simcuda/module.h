/**
 * @file
 * Per-process module and symbol management.
 *
 * Mirrors the CUDA driver's behaviour that Medusa (§5) exploits:
 *
 *  - Kernels are loaded at *module* granularity: the first launch of any
 *    kernel in a module loads the whole module, assigning addresses to
 *    every kernel it contains.
 *  - Kernel addresses are randomized per process launch (ASLR).
 *  - A DSO's symbol table exposes only kernels with
 *    KernelDef::in_symbol_table (closed-source cuBLAS-like kernels are
 *    hidden), so dlsym() fails for them and the only way to find their
 *    address is to force the module to load (triggering-kernels) and
 *    enumerate it via cuModuleEnumerateFunctions()/cuFuncGetName().
 */

#ifndef MEDUSA_SIMCUDA_MODULE_H
#define MEDUSA_SIMCUDA_MODULE_H

#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "simcuda/kernel.h"

namespace medusa::simcuda {

/** Opaque host-side function handle returned by dlsym(). */
struct DsoSymbol
{
    KernelId kernel = kInvalidKernel;
};

/**
 * Tracks which modules are loaded in one simulated process, and the
 * randomized address of every loaded kernel.
 */
class ModuleTable
{
  public:
    /** @param aslr_seed per-process seed for address randomization. */
    explicit ModuleTable(u64 aslr_seed);

    /** True if the module that contains @p id has been loaded. */
    bool isLoaded(KernelId id) const;

    /** True if the named module has been loaded. */
    bool isModuleLoaded(const std::string &module_name) const;

    /**
     * Load the module containing @p id (no-op if already loaded).
     * @return true if a load actually happened (so callers can charge
     *         the module-load latency and the implicit synchronization).
     */
    bool ensureLoaded(KernelId id);

    /** Load a module by name. @return true if a load happened. */
    bool loadModule(const std::string &module_name);

    /** Address of a loaded kernel; error if its module is not loaded. */
    StatusOr<KernelAddr> addressOf(KernelId id) const;

    /** Reverse-resolve an address to a kernel id; error if unknown. */
    StatusOr<KernelId> kernelAt(KernelAddr addr) const;

    /**
     * dlsym() simulation: look up @p mangled_name in the symbol table of
     * DSO @p dso_name. Hidden kernels and wrong DSOs yield kNotFound.
     * Does NOT load the module (a host-side symbol lookup only).
     */
    StatusOr<DsoSymbol> dlsym(const std::string &dso_name,
                              const std::string &mangled_name) const;

    /**
     * cudaGetFuncBySymbol() simulation: resolve a dlsym handle to the
     * kernel's device address, loading its module if needed.
     * @param[out] did_load set true if a module load happened.
     */
    StatusOr<KernelAddr> funcBySymbol(const DsoSymbol &symbol,
                                      bool *did_load);

    /**
     * cuModuleEnumerateFunctions() simulation: all kernel addresses in a
     * *loaded* module. Error if the module is not loaded.
     */
    StatusOr<std::vector<KernelAddr>>
    enumerateFunctions(const std::string &module_name) const;

    /** cuFuncGetName() simulation: mangled name at a kernel address. */
    StatusOr<std::string> funcGetName(KernelAddr addr) const;

    /** Names of currently loaded modules. */
    std::vector<std::string> loadedModules() const;

    std::size_t loadedModuleCount() const { return loaded_modules_.size(); }

    /**
     * Order-insensitive digest of the module registry (loaded modules,
     * kernel address assignments) plus the ASLR RNG stream. Equal
     * fingerprints mean identical future address assignments — see
     * DeviceMemoryManager::stateFingerprint.
     */
    u64 stateFingerprint() const;

  private:
    Rng rng_;
    /** module name -> loaded? */
    std::unordered_map<std::string, bool> loaded_modules_;
    /** kernel id -> randomized address (only for loaded modules). */
    std::unordered_map<KernelId, KernelAddr> addr_of_;
    /** randomized address -> kernel id. */
    std::unordered_map<KernelAddr, KernelId> kernel_at_;
};

} // namespace medusa::simcuda

#endif // MEDUSA_SIMCUDA_MODULE_H
