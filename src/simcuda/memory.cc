#include "simcuda/memory.h"

#include <cstring>

namespace medusa::simcuda {

DeviceMemoryManager::DeviceMemoryManager(u64 total_logical_bytes,
                                         u64 aslr_seed, u32 device_index)
    : total_logical_(total_logical_bytes), rng_(aslr_seed)
{
    MEDUSA_CHECK(device_index < 4, "device index out of range");
    // Randomize the mapping base within a 128 GiB window, 2 MiB
    // aligned — a fresh process launch never sees the same addresses.
    const u64 slide = (rng_.nextU64() % (128 * units::GiB)) &
                      ~(2 * units::MiB - 1);
    next_addr_ = kAddrBase + device_index * kDeviceSlotBytes + slide;
}

StatusOr<DeviceAddr>
DeviceMemoryManager::malloc(u64 logical_size, u64 backing_size)
{
    if (logical_size == 0) {
        return invalidArgument("cudaMalloc of zero bytes");
    }
    // Functional backing is the scaled-down storage and is always far
    // smaller than these bounds; reject absurd requests (e.g. from a
    // corrupted artifact replay) before touching host memory.
    if (backing_size > logical_size ||
        backing_size > 256 * units::MiB) {
        return invalidArgument("implausible functional backing size");
    }
    if (logical_size > freeLogicalBytes()) {
        return outOfMemory("device OOM: requested " +
                           std::to_string(logical_size) + " bytes, free " +
                           std::to_string(freeLogicalBytes()));
    }
    // Small random gap between allocations keeps offsets non-constant
    // across launches even within one process.
    const u64 gap = 256 * (rng_.nextU64() % 4);
    const DeviceAddr base = (next_addr_ + gap + 255) & ~255ull;
    // Advance by the *logical* footprint so logical extents never overlap
    // (findContaining relies on this).
    next_addr_ = base + ((logical_size + 255) & ~255ull);

    AllocationRecord rec;
    rec.base = base;
    rec.logical_size = logical_size;
    rec.backing.assign(backing_size, 0);
    allocs_.emplace(base, std::move(rec));
    used_logical_ += logical_size;
    return base;
}

Status
DeviceMemoryManager::free(DeviceAddr base)
{
    auto it = allocs_.find(base);
    if (it == allocs_.end()) {
        return invalidArgument("cudaFree of unmapped address");
    }
    used_logical_ -= it->second.logical_size;
    allocs_.erase(it);
    return Status::ok();
}

StatusOr<std::pair<AllocationRecord *, u64>>
DeviceMemoryManager::resolve(DeviceAddr addr, u64 bytes)
{
    auto it = allocs_.upper_bound(addr);
    if (it == allocs_.begin()) {
        return invalidArgument("illegal device access: unmapped address");
    }
    --it;
    AllocationRecord &rec = it->second;
    const u64 offset = addr - rec.base;
    if (offset + bytes > rec.backing.size()) {
        return invalidArgument(
            "illegal device access: out of backing bounds (offset " +
            std::to_string(offset) + " + " + std::to_string(bytes) +
            " > " + std::to_string(rec.backing.size()) + ")");
    }
    return std::pair<AllocationRecord *, u64>{&rec, offset};
}

Status
DeviceMemoryManager::write(DeviceAddr addr, const void *src, u64 n)
{
    MEDUSA_ASSIGN_OR_RETURN(auto loc, resolve(addr, n));
    std::memcpy(loc.first->backing.data() + loc.second, src, n);
    return Status::ok();
}

Status
DeviceMemoryManager::read(DeviceAddr addr, void *dst, u64 n) const
{
    auto *self = const_cast<DeviceMemoryManager *>(this);
    MEDUSA_ASSIGN_OR_RETURN(auto loc, self->resolve(addr, n));
    if (!loc.first->backing.materialized()) {
        // Untouched backing reads as zeros without materializing.
        std::memset(dst, 0, n);
        return Status::ok();
    }
    std::memcpy(dst, loc.first->backing.rawData() + loc.second, n);
    return Status::ok();
}

Status
DeviceMemoryManager::memset(DeviceAddr addr, u8 value, u64 n)
{
    MEDUSA_ASSIGN_OR_RETURN(auto loc, resolve(addr, n));
    if (value == 0 && !loc.first->backing.materialized()) {
        return Status::ok(); // already all-zero
    }
    std::memset(loc.first->backing.data() + loc.second, value, n);
    return Status::ok();
}

StatusOr<f32 *>
DeviceMemoryManager::f32Span(DeviceAddr addr, u64 count)
{
    MEDUSA_ASSIGN_OR_RETURN(auto loc, resolve(addr, count * sizeof(f32)));
    return reinterpret_cast<f32 *>(loc.first->backing.data() + loc.second);
}

StatusOr<i32 *>
DeviceMemoryManager::i32Span(DeviceAddr addr, u64 count)
{
    MEDUSA_ASSIGN_OR_RETURN(auto loc, resolve(addr, count * sizeof(i32)));
    return reinterpret_cast<i32 *>(loc.first->backing.data() + loc.second);
}

const AllocationRecord *
DeviceMemoryManager::findContaining(DeviceAddr addr) const
{
    auto it = allocs_.upper_bound(addr);
    if (it == allocs_.begin()) {
        return nullptr;
    }
    --it;
    const AllocationRecord &rec = it->second;
    if (addr < rec.base + rec.logical_size) {
        return &rec;
    }
    return nullptr;
}

u64
DeviceMemoryManager::stateFingerprint() const
{
    auto mix = [](u64 h, u64 v) {
        return (h ^ (v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2))) *
               0x100000001b3ull;
    };
    u64 h = 0xcbf29ce484222325ull;
    h = mix(h, total_logical_);
    h = mix(h, used_logical_);
    h = mix(h, next_addr_);
    h = mix(h, rng_.stateHash());
    for (const auto &[base, rec] : allocs_) {
        h = mix(h, base);
        h = mix(h, rec.logical_size);
        h = mix(h, rec.backing.size());
        // An unmaterialized store is all zeros by construction; hash the
        // implicit zeros so the digest is independent of laziness.
        if (rec.backing.materialized()) {
            const u8 *bytes = rec.backing.rawData();
            for (u64 i = 0; i < rec.backing.size(); ++i) {
                h = mix(h, bytes[i]);
            }
        } else {
            for (u64 i = 0; i < rec.backing.size(); ++i) {
                h = mix(h, 0);
            }
        }
    }
    return h;
}

} // namespace medusa::simcuda
