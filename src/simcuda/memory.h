/**
 * @file
 * Simulated GPU device memory.
 *
 * The manager hands out 64-bit device virtual addresses from an
 * ASLR-randomized base, so addresses differ between GpuProcess launches —
 * the non-determinism at the heart of Medusa's Challenge I. Allocations
 * carry two sizes:
 *
 *  - a *logical* size: the bytes the real model would occupy; used for
 *    free-memory accounting (KV-cache profiling) and address spacing, and
 *  - a *backing* size: the bytes actually stored and touched by the
 *    functional kernels (the simulation runs models with scaled-down
 *    hidden dimensions; see DESIGN.md §2).
 *
 * Reads and writes are bounds-checked against the backing store, so a
 * stale or wrongly-restored pointer faults or corrupts output just like
 * on real hardware.
 */

#ifndef MEDUSA_SIMCUDA_MEMORY_H
#define MEDUSA_SIMCUDA_MEMORY_H

#include <cstdlib>
#include <cstring>
#include <map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"

namespace medusa::simcuda {

/**
 * Backing byte store for one allocation. Semantically a zero-initialized
 * u8 array, but the host buffer is only materialized on first access:
 * a restore replays hundreds of MB of backing that kernels mostly never
 * touch, and eagerly allocating + clearing it (865 buffers per attempt)
 * dominated cold-start wall time — mostly as mmap/munmap system time.
 * Untouched stores report their size and hash as all-zero without ever
 * allocating.
 */
class ZeroBytes
{
  public:
    ZeroBytes() = default;
    ~ZeroBytes() { std::free(data_); }

    ZeroBytes(const ZeroBytes &other) { copyFrom(other); }

    ZeroBytes &
    operator=(const ZeroBytes &other)
    {
        if (this != &other) {
            std::free(data_);
            data_ = nullptr;
            size_ = 0;
            copyFrom(other);
        }
        return *this;
    }

    ZeroBytes(ZeroBytes &&other) noexcept
        : data_(std::exchange(other.data_, nullptr)),
          size_(std::exchange(other.size_, 0))
    {
    }

    ZeroBytes &
    operator=(ZeroBytes &&other) noexcept
    {
        std::swap(data_, other.data_);
        std::swap(size_, other.size_);
        return *this;
    }

    /** Discard any contents and become @p n zero bytes (lazily). */
    void
    assign(u64 n, u8 value)
    {
        MEDUSA_CHECK(value == 0, "ZeroBytes only supports zero fill");
        std::free(data_);
        data_ = nullptr;
        size_ = n;
    }

    /** Materializes the buffer on first call. */
    u8 *
    data()
    {
        if (data_ == nullptr && size_ > 0) {
            data_ = static_cast<u8 *>(std::calloc(size_, 1));
            MEDUSA_CHECK(data_ != nullptr, "host OOM in ZeroBytes");
        }
        return data_;
    }

    u64 size() const { return size_; }

    /** True once a caller has obtained a writable pointer. */
    bool materialized() const { return data_ != nullptr; }

    /** Read-only view; null for an untouched (all-zero) store. */
    const u8 *rawData() const { return data_; }

  private:
    void
    copyFrom(const ZeroBytes &other)
    {
        size_ = other.size_;
        if (other.data_ == nullptr || other.size_ == 0) {
            return;
        }
        data_ = static_cast<u8 *>(std::malloc(other.size_));
        MEDUSA_CHECK(data_ != nullptr, "host OOM in ZeroBytes");
        std::memcpy(data_, other.data_, other.size_);
    }

    u8 *data_ = nullptr;
    u64 size_ = 0;
};

/** One live device allocation. */
struct AllocationRecord
{
    DeviceAddr base = 0;
    u64 logical_size = 0;
    /** Functional backing bytes; indexed by (addr - base). */
    ZeroBytes backing;
};

/**
 * The raw, driver-level allocator (cudaMalloc / cudaFree semantics).
 *
 * Addresses are assigned by a monotonic bump pointer starting at an
 * ASLR-randomized base with small random gaps, so no two process launches
 * see the same addresses. Address *reuse* — the false-positive hazard of
 * the paper's Figure 6 — is produced one level up by CachingAllocator,
 * which returns previously freed blocks.
 */
class DeviceMemoryManager
{
  public:
    /** Canonical low bound of the simulated device address range. */
    static constexpr DeviceAddr kAddrBase = 0x7f2000000000ull;

    /**
     * Width of one device's VA window. Device i hands out addresses in
     * [kAddrBase + i*kDeviceSlotBytes, kAddrBase + (i+1)*kDeviceSlotBytes):
     * 224 GiB fits the 128 GiB ASLR slide plus a 40 GiB device with
     * headroom, and four slots stay below the 0x8000'00000000
     * pointer-heuristic bound. Exposed so offline tooling (medusa-lint's
     * MDL705 coverage heuristic) can classify pointer-shaped values
     * per device without a process.
     */
    static constexpr u64 kDeviceSlotBytes = 224ull * units::GiB;

    /**
     * Default device capacity (the simulated A100-40GB). Exposed as a
     * memory-model query so offline tooling (medusa-lint's MDL5xx
     * free-memory rule) can reason about capacity without a process.
     */
    static constexpr u64 kDefaultDeviceBytes = 40ull * units::GiB;

    /**
     * @param total_logical_bytes device capacity for accounting
     *        (e.g. 40 GiB for the simulated A100-40GB).
     * @param aslr_seed seed for the per-process address randomization.
     * @param device_index shifts the address window so multi-GPU
     *        ranks occupy disjoint ranges (must be < 4).
     */
    DeviceMemoryManager(u64 total_logical_bytes, u64 aslr_seed,
                        u32 device_index = 0);

    /**
     * Allocate device memory.
     * @param logical_size accounted (real-model) byte size; must be > 0.
     * @param backing_size functional byte size actually stored; may be 0
     *        for buffers no kernel will touch (pure reservations).
     */
    StatusOr<DeviceAddr> malloc(u64 logical_size, u64 backing_size);

    /** Release an allocation by its base address. */
    Status free(DeviceAddr base);

    u64 totalLogicalBytes() const { return total_logical_; }
    u64 usedLogicalBytes() const { return used_logical_; }
    u64 freeLogicalBytes() const { return total_logical_ - used_logical_; }
    u64 liveAllocations() const { return allocs_.size(); }

    /** Copy @p n bytes into device memory at @p addr (bounds-checked). */
    Status write(DeviceAddr addr, const void *src, u64 n);

    /** Copy @p n bytes out of device memory at @p addr (bounds-checked). */
    Status read(DeviceAddr addr, void *dst, u64 n) const;

    /** Fill @p n bytes at @p addr with @p value. */
    Status memset(DeviceAddr addr, u8 value, u64 n);

    /**
     * A mutable float view of [addr, addr + count*4) for kernel
     * execution. Fails if the range is unmapped or exceeds backing.
     */
    StatusOr<f32 *> f32Span(DeviceAddr addr, u64 count);

    /** A mutable i32 view, for index buffers (token ids, block tables). */
    StatusOr<i32 *> i32Span(DeviceAddr addr, u64 count);

    /**
     * The allocation containing @p addr, or nullptr. Containment is
     * judged by *logical* extent, matching how the paper's trace analysis
     * matches pointers that land inside an allocated buffer.
     */
    const AllocationRecord *findContaining(DeviceAddr addr) const;

    /**
     * Order-sensitive digest of the complete manager state: bump
     * pointer, RNG stream, accounting and every live allocation
     * (addresses, sizes, backing contents). Two managers with equal
     * fingerprints are behaviorally indistinguishable — used by the
     * rollback-invariant tests to prove a reset process matches a
     * fresh one byte for byte.
     */
    u64 stateFingerprint() const;

  private:
    /** Resolve addr to (record, byte offset), checked against backing. */
    StatusOr<std::pair<AllocationRecord *, u64>>
    resolve(DeviceAddr addr, u64 bytes);

    u64 total_logical_;
    u64 used_logical_ = 0;
    DeviceAddr next_addr_;
    Rng rng_;
    std::map<DeviceAddr, AllocationRecord> allocs_;
};

} // namespace medusa::simcuda

#endif // MEDUSA_SIMCUDA_MEMORY_H
