/**
 * @file
 * Simulated GPU device memory.
 *
 * The manager hands out 64-bit device virtual addresses from an
 * ASLR-randomized base, so addresses differ between GpuProcess launches —
 * the non-determinism at the heart of Medusa's Challenge I. Allocations
 * carry two sizes:
 *
 *  - a *logical* size: the bytes the real model would occupy; used for
 *    free-memory accounting (KV-cache profiling) and address spacing, and
 *  - a *backing* size: the bytes actually stored and touched by the
 *    functional kernels (the simulation runs models with scaled-down
 *    hidden dimensions; see DESIGN.md §2).
 *
 * Reads and writes are bounds-checked against the backing store, so a
 * stale or wrongly-restored pointer faults or corrupts output just like
 * on real hardware.
 */

#ifndef MEDUSA_SIMCUDA_MEMORY_H
#define MEDUSA_SIMCUDA_MEMORY_H

#include <map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"

namespace medusa::simcuda {

/** One live device allocation. */
struct AllocationRecord
{
    DeviceAddr base = 0;
    u64 logical_size = 0;
    /** Functional backing bytes; indexed by (addr - base). */
    std::vector<u8> backing;
};

/**
 * The raw, driver-level allocator (cudaMalloc / cudaFree semantics).
 *
 * Addresses are assigned by a monotonic bump pointer starting at an
 * ASLR-randomized base with small random gaps, so no two process launches
 * see the same addresses. Address *reuse* — the false-positive hazard of
 * the paper's Figure 6 — is produced one level up by CachingAllocator,
 * which returns previously freed blocks.
 */
class DeviceMemoryManager
{
  public:
    /** Canonical low bound of the simulated device address range. */
    static constexpr DeviceAddr kAddrBase = 0x7f2000000000ull;

    /**
     * Default device capacity (the simulated A100-40GB). Exposed as a
     * memory-model query so offline tooling (medusa-lint's MDL5xx
     * free-memory rule) can reason about capacity without a process.
     */
    static constexpr u64 kDefaultDeviceBytes = 40ull * units::GiB;

    /**
     * @param total_logical_bytes device capacity for accounting
     *        (e.g. 40 GiB for the simulated A100-40GB).
     * @param aslr_seed seed for the per-process address randomization.
     * @param device_index shifts the address window so multi-GPU
     *        ranks occupy disjoint ranges (must be < 4).
     */
    DeviceMemoryManager(u64 total_logical_bytes, u64 aslr_seed,
                        u32 device_index = 0);

    /**
     * Allocate device memory.
     * @param logical_size accounted (real-model) byte size; must be > 0.
     * @param backing_size functional byte size actually stored; may be 0
     *        for buffers no kernel will touch (pure reservations).
     */
    StatusOr<DeviceAddr> malloc(u64 logical_size, u64 backing_size);

    /** Release an allocation by its base address. */
    Status free(DeviceAddr base);

    u64 totalLogicalBytes() const { return total_logical_; }
    u64 usedLogicalBytes() const { return used_logical_; }
    u64 freeLogicalBytes() const { return total_logical_ - used_logical_; }
    u64 liveAllocations() const { return allocs_.size(); }

    /** Copy @p n bytes into device memory at @p addr (bounds-checked). */
    Status write(DeviceAddr addr, const void *src, u64 n);

    /** Copy @p n bytes out of device memory at @p addr (bounds-checked). */
    Status read(DeviceAddr addr, void *dst, u64 n) const;

    /** Fill @p n bytes at @p addr with @p value. */
    Status memset(DeviceAddr addr, u8 value, u64 n);

    /**
     * A mutable float view of [addr, addr + count*4) for kernel
     * execution. Fails if the range is unmapped or exceeds backing.
     */
    StatusOr<f32 *> f32Span(DeviceAddr addr, u64 count);

    /** A mutable i32 view, for index buffers (token ids, block tables). */
    StatusOr<i32 *> i32Span(DeviceAddr addr, u64 count);

    /**
     * The allocation containing @p addr, or nullptr. Containment is
     * judged by *logical* extent, matching how the paper's trace analysis
     * matches pointers that land inside an allocated buffer.
     */
    const AllocationRecord *findContaining(DeviceAddr addr) const;

    /**
     * Order-sensitive digest of the complete manager state: bump
     * pointer, RNG stream, accounting and every live allocation
     * (addresses, sizes, backing contents). Two managers with equal
     * fingerprints are behaviorally indistinguishable — used by the
     * rollback-invariant tests to prove a reset process matches a
     * fresh one byte for byte.
     */
    u64 stateFingerprint() const;

  private:
    /** Resolve addr to (record, byte offset), checked against backing. */
    StatusOr<std::pair<AllocationRecord *, u64>>
    resolve(DeviceAddr addr, u64 bytes);

    u64 total_logical_;
    u64 used_logical_ = 0;
    DeviceAddr next_addr_;
    Rng rng_;
    std::map<DeviceAddr, AllocationRecord> allocs_;
};

} // namespace medusa::simcuda

#endif // MEDUSA_SIMCUDA_MEMORY_H
