/**
 * @file
 * One simulated process launch on the simulated GPU.
 *
 * A GpuProcess models everything that changes between cold starts of a
 * serving instance: the device memory addresses returned by cudaMalloc
 * (ASLR + jitter), the kernel function addresses (module slide), and the
 * set of loaded modules. Medusa's offline and online phases run in
 * *different* GpuProcess instances, exactly like two process launches on
 * real hardware.
 *
 * The process exposes:
 *  - driver memory ops (cudaMalloc/cudaFree/memcpy/memset),
 *  - streams with eager launch, events, and stream capture,
 *  - graph instantiation and replay,
 *  - the module/symbol API used by kernel-address restoration
 *    (dlsym, cudaGetFuncBySymbol, cuModuleEnumerateFunctions,
 *    cuFuncGetName),
 *  - observer hooks for Medusa's interception of launches.
 *
 * All operations advance the shared SimClock per the CostModel.
 */

#ifndef MEDUSA_SIMCUDA_GPU_PROCESS_H
#define MEDUSA_SIMCUDA_GPU_PROCESS_H

#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "simcuda/graph.h"
#include "simcuda/kernel.h"
#include "simcuda/memory.h"
#include "simcuda/module.h"
#include "simtime/cost_model.h"

namespace medusa::simcuda {

class GpuProcess;
class Stream;

/** Observes every kernel launch (eager or captured); used by Medusa. */
class LaunchObserver
{
  public:
    virtual ~LaunchObserver() = default;

    /**
     * Called after the launch is resolved to a per-process address.
     * @param capturing true if the launch was recorded into a graph
     *        rather than executed.
     */
    virtual void onKernelLaunch(KernelAddr fn, const RawParams &params,
                                bool capturing) = 0;
};

/** A CUDA-event simulation, usable for capture forks and GPU timing. */
class Event
{
  public:
    Event() = default;

  private:
    friend class Stream;
    friend class GpuProcess;

    bool recorded_ = false;
    /** When recorded during capture: the dependency frontier. */
    bool captured_ = false;
    std::vector<NodeId> capture_deps_;
    /** When recorded eagerly: the stream's GPU completion time. */
    SimTimeNs gpu_time_ = 0;
};

/** Identifies a capture in progress. */
struct CaptureSession
{
    CudaGraph graph;
    Stream *origin = nullptr;
    /** Number of nodes recorded (== graph.nodeCount()). */
    u64 recorded_nodes = 0;
};

/**
 * A simulated CUDA stream. Launches execute eagerly (with an async GPU
 * pipeline model) unless the stream participates in a capture, in which
 * case they are recorded as graph nodes and NOT executed — matching real
 * stream-capture semantics.
 */
class Stream
{
  public:
    /** Launch a kernel by registry id; see GpuProcess::launch docs. */
    Status launch(KernelId kernel, RawParams params,
                  const TimingInfo &timing);

    /** Record an event on this stream. */
    Status recordEvent(Event &event);

    /**
     * Make this stream wait for an event. If the event was recorded
     * during an active capture, this stream joins the capture (the
     * fork/join idiom used to build DAG-shaped graphs).
     */
    Status waitEvent(Event &event);

    /** Block the host until the stream drains; illegal during capture. */
    Status synchronize();

    bool capturing() const { return session_ != nullptr; }

  private:
    friend class GpuProcess;

    explicit Stream(GpuProcess *process) : process_(process) {}

    GpuProcess *process_;
    /** GPU-side completion time of the last work on this stream. */
    SimTimeNs gpu_ready_ns_ = 0;
    /** Non-null while this stream participates in a capture. */
    CaptureSession *session_ = nullptr;
    /** Dependencies for the next node recorded on this stream. */
    std::vector<NodeId> capture_frontier_;
};

/**
 * An instantiated, ready-to-launch graph (cudaGraphExec_t).
 *
 * Stored as a structure of flat arrays — kernel ids, a shared ParamBlob
 * pool with per-node prefix offsets, timings and the execution order —
 * rather than per-node objects with heap-allocated byte vectors. The
 * flat form is what the v6 materialized image can produce directly with
 * a relocation patch pass, with no per-node reconstruction.
 */
class GraphExec
{
  public:
    std::size_t nodeCount() const { return kernels_.size(); }

    /** The kernel of the i-th node in execution (topological) order. */
    KernelId
    kernelAtStep(std::size_t step) const
    {
        return kernels_.at(order_.at(step));
    }

    /** The flattened params of the i-th node in execution order. */
    ParamView
    paramsAtStep(std::size_t step) const
    {
        const NodeId node = order_.at(step);
        const u32 begin = param_begin_.at(node);
        return ParamView(blobs_.data() + begin,
                         param_begin_.at(node + 1) - begin);
    }

    /** The timing metadata of the i-th node in execution order. */
    const TimingInfo &
    timingAtStep(std::size_t step) const
    {
        return timings_.at(order_.at(step));
    }

  private:
    friend class GpuProcess;

    std::vector<KernelId> kernels_;
    /** nodeCount()+1 prefix offsets into blobs_, node-id order. */
    std::vector<u32> param_begin_;
    std::vector<ParamBlob> blobs_;
    std::vector<TimingInfo> timings_;
    /** Execution order (topological). */
    std::vector<NodeId> order_;
};

/** Creation options for a GpuProcess. */
struct GpuProcessOptions
{
    /** Device capacity for logical accounting (A100-40GB default). */
    u64 device_memory_bytes = DeviceMemoryManager::kDefaultDeviceBytes;
    /** Seed for all per-process address randomization. */
    u64 aslr_seed = 1;
    /**
     * Which GPU of the node this process drives (multi-GPU tensor
     * parallelism). Each device's virtual-address window is disjoint,
     * as peer-mapped memory would be. Must be < 4.
     */
    u32 device_index = 0;
};

/**
 * Running tally of device-state mutations since beginJournal() — the
 * write-ahead record a transactional restore keeps so tests and
 * reports can tell whether a failed attempt left anything behind.
 */
struct ProcessJournal
{
    u64 driver_allocs = 0;
    u64 driver_frees = 0;
    u64 h2d_copies = 0;
    u64 memsets = 0;
    u64 module_loads = 0;
    u64 graphs_instantiated = 0;

    bool
    anyMutations() const
    {
        return driver_allocs + driver_frees + h2d_copies + memsets +
                   module_loads + graphs_instantiated >
               0;
    }
};

/**
 * The simulated process; see file comment.
 */
class GpuProcess
{
  public:
    GpuProcess(const GpuProcessOptions &opts, SimClock *clock,
               const CostModel *cost);

    // Not copyable or movable: streams hold back-pointers.
    GpuProcess(const GpuProcess &) = delete;
    GpuProcess &operator=(const GpuProcess &) = delete;

    DeviceMemoryManager &memory() { return memory_; }
    const DeviceMemoryManager &memory() const { return memory_; }
    ModuleTable &modules() { return modules_; }
    SimClock &clock() { return *clock_; }
    const CostModel &cost() const { return *cost_; }

    /** The default stream (created with the process). */
    Stream &defaultStream() { return *streams_.front(); }

    /** Create an additional stream (for capture forks). */
    Stream &createStream();

    // ---- driver memory API -------------------------------------------

    /**
     * Raw driver allocation. Illegal while any capture is active (the
     * driver would synchronize), which is why the caching allocator's
     * pool must be warmed up before capturing.
     */
    StatusOr<DeviceAddr> cudaMalloc(u64 logical_size, u64 backing_size);

    /** Raw driver free. Also illegal during capture. */
    Status cudaFree(DeviceAddr addr);

    /**
     * Synchronous host-to-device copy of functional bytes; the clock
     * advances by the PCIe time of @p logical_bytes.
     */
    Status memcpyH2D(DeviceAddr dst, const void *src, u64 functional_bytes,
                     u64 logical_bytes);

    /** Synchronous device-to-host copy (drains the default stream). */
    Status memcpyD2H(void *dst, DeviceAddr src, u64 functional_bytes,
                     u64 logical_bytes);

    /** cudaMemset on functional bytes. */
    Status cudaMemset(DeviceAddr addr, u8 value, u64 functional_bytes);

    /** Device-wide synchronize; illegal during capture. */
    Status deviceSynchronize();

    // ---- module / symbol API (paper §5 surface) ------------------------

    StatusOr<DsoSymbol> dlsym(const std::string &dso,
                              const std::string &mangled_name);
    StatusOr<KernelAddr> cudaGetFuncBySymbol(const DsoSymbol &symbol);
    StatusOr<std::vector<KernelAddr>>
    cuModuleEnumerateFunctions(const std::string &module_name);
    StatusOr<std::string> cuFuncGetName(KernelAddr addr);

    /**
     * dladdr() analogue: the module (shared library) that owns the
     * kernel at @p addr. Used offline to build the name -> library
     * mapping the paper's §5 materializes.
     */
    StatusOr<std::string> cuFuncGetModule(KernelAddr addr);

    // ---- capture -------------------------------------------------------

    /** Begin stream capture on @p stream. One capture at a time. */
    Status beginCapture(Stream &stream);

    /** End capture on the origin stream; returns the built graph. */
    StatusOr<CudaGraph> endCapture(Stream &stream);

    bool captureActive() const { return capture_ != nullptr; }

    // ---- graphs ----------------------------------------------------------

    /**
     * cudaGraphInstantiate: validates that every node's function address
     * resolves to a loaded kernel and that the topology is acyclic.
     */
    StatusOr<GraphExec> instantiate(const CudaGraph &graph);

    /**
     * One graph of a relocation-patched materialized image: flat node
     * arrays whose pointer and kernel-address slots have already been
     * patched in place. Spans borrow the caller's (patched) buffers;
     * instantiatePatched copies what it keeps.
     */
    struct PatchedGraphDesc
    {
        /** Patched per-node kernel function addresses, node-id order. */
        std::span<const KernelAddr> node_fn;
        /** nodeCount()+1 prefix offsets into param_bits/param_len. */
        std::span<const u32> param_begin;
        /** Patched 8-byte parameter value slots. */
        std::span<const u64> param_bits;
        /** Byte width of each parameter. */
        std::span<const u8> param_len;
        /** Per-node timing metadata, node-id order. */
        std::span<const TimingInfo> timing;
        /** Precomputed execution (topological) order. */
        std::span<const NodeId> order;
        /** Dependency edges (src < dst), for order validation. */
        std::span<const GraphEdge> edges;
    };

    /**
     * cudaGraphInstantiate from a patched image graph: the same
     * validation and accounting as instantiate(), but the executable is
     * assembled by copying flat arrays — no CudaGraph object, no
     * per-node parameter vectors, no topological sort (the offline
     * phase precomputed the order; it is re-verified here in O(n+e)).
     */
    StatusOr<GraphExec> instantiatePatched(const PatchedGraphDesc &desc);

    /**
     * cudaGraphLaunch: one CPU-side launch, then the whole node set
     * executes on the GPU pipeline of @p stream.
     */
    Status launchGraph(const GraphExec &exec, Stream &stream);

    /**
     * Execute a single kernel functionally against this process's
     * memory without launch-path accounting. Used by the lockstep
     * multi-GPU replayer (lockstep.h), which does its own timing and
     * provides collective semantics.
     */
    Status executeKernel(KernelId kernel, const RawParams &params);

    /** As above, over a graph's flattened parameter view. */
    Status executeKernel(KernelId kernel, ParamView params);

    // ---- observers & stats -----------------------------------------------

    void setLaunchObserver(LaunchObserver *observer)
    {
        launch_observer_ = observer;
    }

    u64 eagerLaunchCount() const { return eager_launches_; }
    u64 capturedNodeCount() const { return captured_nodes_; }
    u64 graphLaunchCount() const { return graph_launches_; }

    // ---- transactional restore support -------------------------------

    /** Start journaling device-state mutations (resets the tally). */
    void beginJournal();

    /** Stop journaling; the tally stays readable until the next begin. */
    void endJournal();

    bool journalActive() const { return journal_active_; }
    const ProcessJournal &journal() const { return journal_; }

    /**
     * Roll the process back to its just-constructed state: all device
     * allocations are released, all modules unloaded, extra streams
     * destroyed, any capture aborted and the ASLR/jitter RNG streams
     * rewound — as if the process had been killed and relaunched with
     * the same creation options. The simulated clock is NOT rewound:
     * time spent before the rollback really elapsed. References to the
     * default stream stay valid.
     */
    void resetToPristine();

    /**
     * Digest of all process-lifetime state (memory, modules, streams,
     * counters, capture). Two processes with equal fingerprints behave
     * identically from here on; a reset process must fingerprint equal
     * to a fresh one built with the same options.
     */
    u64 stateFingerprint() const;

    /**
     * stateFingerprint() minus simulated-time-derived values (stream
     * GPU-ready timestamps). Two processes with equal logical
     * fingerprints hold identical memory, module, stream-topology and
     * counter state but may have reached it on different simulated
     * clocks — the equality contract for restore paths that produce
     * the same state faster (the v6 relocation patch vs the graph
     * rebuild, DESIGN.md §13).
     */
    u64 logicalStateFingerprint() const;

  private:
    friend class Stream;

    /** Shared implementation behind Stream::launch. */
    Status launchOnStream(Stream &stream, KernelId kernel,
                          RawParams params, const TimingInfo &timing);

    /** Execute a kernel functionally against device memory. */
    Status execute(KernelId kernel, const RawParams &params);
    Status execute(KernelId kernel, ParamView params);

    /** Shared validation + decode behind both execute overloads. */
    template <typename Params>
    Status executeImpl(KernelId kernel, const Params &params);

    SimClock *clock_;
    const CostModel *cost_;
    /** Creation options, kept so resetToPristine can reconstruct. */
    GpuProcessOptions opts_;
    DeviceMemoryManager memory_;
    ModuleTable modules_;
    std::vector<std::unique_ptr<Stream>> streams_;
    std::unique_ptr<CaptureSession> capture_;
    LaunchObserver *launch_observer_ = nullptr;

    u64 eager_launches_ = 0;
    u64 captured_nodes_ = 0;
    u64 graph_launches_ = 0;

    bool journal_active_ = false;
    ProcessJournal journal_;
};

} // namespace medusa::simcuda

#endif // MEDUSA_SIMCUDA_GPU_PROCESS_H
