#include "simcuda/lockstep.h"

#include <cstring>

#include "simcuda/kernels/builtin.h"

namespace medusa::simcuda {

Status
lockstepLaunch(const std::vector<LockstepRank> &ranks,
               const InterconnectModel &interconnect)
{
    if (ranks.empty()) {
        return invalidArgument("lockstep launch with no ranks");
    }
    const std::size_t steps = ranks[0].exec->nodeCount();
    for (const LockstepRank &rank : ranks) {
        if (rank.process == nullptr || rank.exec == nullptr) {
            return invalidArgument("lockstep rank missing process/graph");
        }
        if (rank.exec->nodeCount() != steps) {
            return invalidArgument(
                "tensor-parallel graphs are not symmetric");
        }
    }
    const KernelId all_reduce = BuiltinKernels::get().all_reduce_sum;
    const auto &reg = KernelRegistry::instance();

    // One CPU launch per rank's graph.
    std::vector<SimTimeNs> gpu_time(ranks.size(), 0);
    for (const LockstepRank &rank : ranks) {
        rank.process->clock().advance(
            units::usToNs(rank.process->cost().graph_launch_us));
    }

    std::vector<f32> reduced;
    std::vector<std::vector<f32>> contributions(ranks.size());
    for (std::size_t step = 0; step < steps; ++step) {
        // Symmetry check: every rank runs the same kernel at a step.
        const KernelId kernel = ranks[0].exec->kernelAtStep(step);
        for (const LockstepRank &rank : ranks) {
            if (rank.exec->kernelAtStep(step) != kernel) {
                return invalidArgument(
                    "rank graphs diverge at step " +
                    std::to_string(step) + " (" +
                    reg.def(kernel).mangled_name + " vs " +
                    reg.def(rank.exec->kernelAtStep(step)).mangled_name +
                    ")");
            }
        }

        if (kernel == all_reduce) {
            // Play NCCL: gather every rank's buffer, sum, scatter back.
            const auto &kinds = reg.def(kernel).params;
            i32 count = 0;
            for (std::size_t r = 0; r < ranks.size(); ++r) {
                const ParamView params =
                    ranks[r].exec->paramsAtStep(step);
                KernelArgs args(params, kinds);
                if (r == 0) {
                    count = args.i32At(1);
                } else if (args.i32At(1) != count) {
                    // A collective must move the same element count on
                    // every rank; divergent graphs would otherwise
                    // read past the shorter contributions below.
                    return invalidArgument(
                        "all-reduce element count mismatch at step " +
                        std::to_string(step));
                }
                if (args.i32At(3) != static_cast<i32>(ranks.size())) {
                    return invalidArgument(
                        "all-reduce world size mismatch");
                }
                contributions[r].resize(static_cast<std::size_t>(count));
                MEDUSA_RETURN_IF_ERROR(
                    ranks[r].process->memory().read(
                        args.ptrAt(0), contributions[r].data(),
                        static_cast<u64>(count) * 4));
            }
            reduced.assign(static_cast<std::size_t>(count), 0.0f);
            for (const auto &c : contributions) {
                for (std::size_t i = 0; i < reduced.size(); ++i) {
                    reduced[i] += c[i];
                }
            }
            for (std::size_t r = 0; r < ranks.size(); ++r) {
                const ParamView params =
                    ranks[r].exec->paramsAtStep(step);
                KernelArgs args(params, kinds);
                MEDUSA_RETURN_IF_ERROR(
                    ranks[r].process->memory().write(
                        args.ptrAt(0), reduced.data(),
                        static_cast<u64>(count) * 4));
            }
            // Collective cost: ring all-reduce moves 2(N-1)/N of the
            // logical payload per link; charge every rank equally and
            // synchronize their GPU timelines (a collective is a
            // barrier).
            const TimingInfo &t = ranks[0].exec->timingAtStep(step);
            const f64 payload =
                t.bytes * 2.0 *
                (static_cast<f64>(ranks.size()) - 1.0) /
                static_cast<f64>(ranks.size());
            const SimTimeNs comm = units::usToNs(
                interconnect.collective_latency_us +
                payload / (interconnect.link_gbps * 1e3));
            SimTimeNs frontier = 0;
            for (SimTimeNs gt : gpu_time) {
                frontier = std::max(frontier, gt);
            }
            frontier += comm;
            for (auto &gt : gpu_time) {
                gt = frontier;
            }
            continue;
        }

        for (std::size_t r = 0; r < ranks.size(); ++r) {
            MEDUSA_RETURN_IF_ERROR(ranks[r].process->executeKernel(
                kernel, ranks[r].exec->paramsAtStep(step)));
            gpu_time[r] +=
                ranks[r].process->cost().kernelExecTime(
                    ranks[r].exec->timingAtStep(step),
                    ranks[r].process->cost().steady_efficiency) +
                units::usToNs(
                    ranks[r].process->cost().graph_node_dispatch_us);
        }
    }

    // Advance every rank's clock to its completion time (the engines
    // share one virtual timeline via their own clocks).
    for (std::size_t r = 0; r < ranks.size(); ++r) {
        ranks[r].process->clock().advance(gpu_time[r]);
    }
    return Status::ok();
}

} // namespace medusa::simcuda
