/**
 * @file
 * A PyTorch-style caching device allocator.
 *
 * Frees do not return memory to the driver; freed blocks go to per-size
 * free lists and are handed back to later allocations of the same
 * rounded size. Two properties matter for Medusa:
 *
 *  1. *Address reuse*: a later allocation can return an address that an
 *     earlier, freed allocation also had — creating the false-positive
 *     hazard of the paper's Figure 6 that trace-based indirect-index
 *     analysis must resolve. When several freed blocks of a size class
 *     are available, WHICH one a request reuses is process-dependent
 *     (in PyTorch it falls out of raw address order, stream history
 *     and fragmentation), so a buffer identified only by its offline
 *     address re-materializes at a different address online — exactly
 *     why naive pointer matching corrupts data and Medusa must bind
 *     pointers to allocation-sequence *events*.
 *  2. *Pool warm-up*: during stream capture the driver may not be
 *     called, so an allocation that misses the cache during capture is a
 *     capture violation. Warm-up forwarding fills the pool first.
 *
 * All framework ("tensor") allocations go through this allocator, and it
 * is the level at which Medusa intercepts the buffer (de)allocation
 * sequence.
 */

#ifndef MEDUSA_SIMCUDA_CACHING_ALLOCATOR_H
#define MEDUSA_SIMCUDA_CACHING_ALLOCATOR_H

#include <map>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "simcuda/gpu_process.h"

namespace medusa::simcuda {

/** Observes the framework-level buffer (de)allocation sequence. */
class AllocObserver
{
  public:
    virtual ~AllocObserver() = default;

    /**
     * One buffer allocation.
     * @param seq_index 0-based index in the allocation sequence (counts
     *        allocations only, not frees) — the index space of the
     *        paper's indirect index pointers.
     * @param logical_size accounted size; the size Medusa materializes.
     */
    virtual void onAlloc(u64 seq_index, DeviceAddr addr, u64 logical_size,
                         u64 backing_size) = 0;

    /** One buffer free. @param addr the freed buffer's base. */
    virtual void onFree(DeviceAddr addr) = 0;
};

/**
 * The caching allocator; see file comment.
 */
class CachingAllocator
{
  public:
    /** Free-list size-class rounding (PyTorch's small-block granule). */
    static constexpr u64 kRoundBytes = 512;

    /**
     * The size-class a request of @p size lands in — the granule at
     * which the driver is charged. Exposed as a memory-model query so
     * offline tooling (medusa-lint's MDL5xx free-memory rule) can
     * reproduce free-memory accounting from recorded logical sizes.
     */
    static constexpr u64
    roundSize(u64 size)
    {
        return (size + kRoundBytes - 1) & ~(kRoundBytes - 1);
    }

    /**
     * @param reuse_seed seeds the process-dependent free-block
     *        selection; derive it from the process launch (ASLR) seed.
     */
    explicit CachingAllocator(GpuProcess *process, u64 reuse_seed = 17)
        : process_(process), rng_(reuse_seed * 0x2545f4914f6cdd1dull + 3)
    {
    }

    /**
     * Allocate a buffer. Sizes are rounded to 512 bytes for free-list
     * bucketing (matching PyTorch's small-block rounding).
     */
    StatusOr<DeviceAddr> allocate(u64 logical_size, u64 backing_size);

    /** Return a buffer to the pool (never to the driver). */
    Status free(DeviceAddr addr);

    /** Release all pooled blocks back to the driver. */
    Status emptyCache();

    /** Total allocations served so far (the sequence length). */
    u64 allocationCount() const { return alloc_seq_; }

    /** Bytes currently held in the pool's free lists (logical). */
    u64 pooledBytes() const;

    /** Live (not freed) buffers currently held by callers. */
    u64 liveBuffers() const { return live_.size(); }

    void setObserver(AllocObserver *observer) { observer_ = observer; }

    /**
     * Digest of the pool state: sequence counter, reuse RNG stream,
     * free lists and live blocks. Equal fingerprints mean identical
     * future allocation behavior (addresses and reuse picks).
     */
    u64 stateFingerprint() const;

  private:
    struct Block
    {
        DeviceAddr addr = 0;
        u64 rounded_size = 0;
        u64 backing_size = 0;
    };

    GpuProcess *process_;
    AllocObserver *observer_ = nullptr;
    u64 alloc_seq_ = 0;
    Rng rng_;
    /** (rounded logical, backing) -> reusable blocks by address. */
    std::map<std::pair<u64, u64>, std::map<DeviceAddr, Block>>
        free_lists_;
    /** live buffer base -> block. */
    std::unordered_map<DeviceAddr, Block> live_;
};

} // namespace medusa::simcuda

#endif // MEDUSA_SIMCUDA_CACHING_ALLOCATOR_H
