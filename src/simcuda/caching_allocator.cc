#include "simcuda/caching_allocator.h"

namespace medusa::simcuda {

StatusOr<DeviceAddr>
CachingAllocator::allocate(u64 logical_size, u64 backing_size)
{
    if (logical_size == 0) {
        return invalidArgument("allocation of zero bytes");
    }
    const u64 rounded = roundSize(logical_size);
    const auto key = std::make_pair(rounded, backing_size);
    Block block;
    auto it = free_lists_.find(key);
    if (it != free_lists_.end() && !it->second.empty()) {
        // Pool hit: reuse a freed block of this size class. The
        // returned address may equal an address handed out (and freed)
        // earlier — the false-positive hazard of the paper's Figure 6 —
        // and WHICH free block wins is process-dependent (see class
        // comment). Contents are stale, exactly like PyTorch's pool.
        auto pick = it->second.begin();
        std::advance(pick, static_cast<long>(rng_.nextBounded(
                               it->second.size())));
        block = pick->second;
        it->second.erase(pick);
        if (it->second.empty()) {
            free_lists_.erase(it);
        }
        process_->clock().advance(
            units::usToNs(process_->cost().cached_alloc_us));
    } else {
        // Pool miss: fall through to the driver. Illegal during capture
        // (GpuProcess::cudaMalloc enforces it).
        MEDUSA_ASSIGN_OR_RETURN(block.addr, process_->cudaMalloc(
                                                rounded, backing_size));
        block.rounded_size = rounded;
        block.backing_size = backing_size;
    }
    live_[block.addr] = block;
    const u64 seq = alloc_seq_++;
    if (observer_ != nullptr) {
        observer_->onAlloc(seq, block.addr, logical_size,
                           block.backing_size);
    }
    return block.addr;
}

Status
CachingAllocator::free(DeviceAddr addr)
{
    auto it = live_.find(addr);
    if (it == live_.end()) {
        return invalidArgument("free of unknown buffer");
    }
    const Block block = it->second;
    live_.erase(it);
    free_lists_[{block.rounded_size, block.backing_size}].emplace(
        block.addr, block);
    if (observer_ != nullptr) {
        observer_->onFree(addr);
    }
    return Status::ok();
}

Status
CachingAllocator::emptyCache()
{
    for (auto &[key, blocks] : free_lists_) {
        for (const auto &[addr, block] : blocks) {
            MEDUSA_RETURN_IF_ERROR(process_->cudaFree(addr));
        }
    }
    free_lists_.clear();
    return Status::ok();
}

u64
CachingAllocator::pooledBytes() const
{
    u64 total = 0;
    for (const auto &[key, blocks] : free_lists_) {
        total += key.first * blocks.size();
    }
    return total;
}

u64
CachingAllocator::stateFingerprint() const
{
    auto mix = [](u64 h, u64 v) {
        return (h ^ (v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2))) *
               0x100000001b3ull;
    };
    u64 h = 0xcbf29ce484222325ull;
    h = mix(h, alloc_seq_);
    h = mix(h, rng_.stateHash());
    for (const auto &[key, blocks] : free_lists_) {
        h = mix(h, key.first);
        h = mix(h, key.second);
        for (const auto &[addr, block] : blocks) {
            h = mix(h, addr);
        }
    }
    // live_ is unordered; XOR-combine its entries.
    u64 live = 0;
    for (const auto &[addr, block] : live_) {
        u64 e = 0xcbf29ce484222325ull;
        e = mix(e, addr);
        e = mix(e, block.rounded_size);
        e = mix(e, block.backing_size);
        live ^= e;
    }
    return mix(h, live);
}

} // namespace medusa::simcuda
