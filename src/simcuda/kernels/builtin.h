/**
 * @file
 * The built-in kernel set of the simulated GPU stack.
 *
 * Kernels are grouped into three modules, mirroring the composition of a
 * real vLLM process:
 *
 *  - "libsimcublas.so": GEMM variants with cuBLAS-style mangled names.
 *    These are HIDDEN from the DSO symbol table (in_symbol_table=false),
 *    reproducing the closed-source-kernel problem of the paper's §5: the
 *    only way to learn their addresses is to force the module to load
 *    and enumerate it.
 *  - "libsimtorch.so": elementwise / normalization / sampling kernels,
 *    visible via dlsym.
 *  - "libsimattn.so": rotary embedding, KV-cache write and paged
 *    attention (the vLLM custom ops), visible via dlsym.
 *
 * The split-K GEMM additionally takes two pointers to 4-byte semaphore
 * workspaces that must contain kGemmWorkspaceMagic; these are the
 * "permanent buffers" of the paper's §4.3 whose contents Medusa must
 * materialize and restore (only ~9% of kernels use them).
 */

#ifndef MEDUSA_SIMCUDA_KERNELS_BUILTIN_H
#define MEDUSA_SIMCUDA_KERNELS_BUILTIN_H

#include "simcuda/kernel.h"

namespace medusa::simcuda {

/** Magic value required in split-K GEMM semaphore workspaces. */
constexpr u32 kGemmWorkspaceMagic = 0x5f3c2a11u;

/** Module (DSO) names. */
inline constexpr const char *kCublasModule = "libsimcublas.so";
inline constexpr const char *kTorchModule = "libsimtorch.so";
inline constexpr const char *kAttnModule = "libsimattn.so";
inline constexpr const char *kNcclModule = "libsimnccl.so";

/**
 * Dense ids of every built-in kernel, resolved once against the global
 * registry.
 */
struct BuiltinKernels
{
    // libsimtorch.so (visible)
    KernelId embedding_lookup;
    KernelId rmsnorm;
    KernelId layernorm;
    KernelId bias_add;
    KernelId silu_mul;
    KernelId gelu;
    KernelId residual_add;
    KernelId sample_argmax;
    KernelId copy_f32;

    // libsimattn.so (visible)
    KernelId rope;
    KernelId kv_write;
    KernelId attention_prefill;
    KernelId paged_attention_decode;
    KernelId paged_attention_reduce;

    // libsimcublas.so (hidden from the symbol table)
    KernelId gemm_128x128;
    KernelId gemm_64x64;
    KernelId gemm_splitk;
    KernelId gemm_lmhead;
    /**
     * Batched GEMM taking a device array of pointers [A, W, C] — the
     * *indirect pointer* case of the paper's §8 discussion, used by the
     * optional batched-LM-head engine path.
     */
    KernelId gemm_batched;

    // libsimnccl.so (visible)
    /**
     * In-place sum all-reduce across tensor-parallel ranks (§8
     * multi-GPU). Collective semantics are executed by the lockstep
     * replayer (lockstep.h), which plays the role of the NCCL runtime;
     * launched eagerly (warm-up), the kernel is a rank-local no-op
     * whose results are discarded, as warm-up outputs are.
     */
    KernelId all_reduce_sum;

    /** The singleton, resolved against KernelRegistry::instance(). */
    static const BuiltinKernels &get();
};

} // namespace medusa::simcuda

#endif // MEDUSA_SIMCUDA_KERNELS_BUILTIN_H
