#include "simcuda/kernels/builtin.h"

#include <cmath>
#include <limits>
#include <vector>

#include "simcuda/memory.h"

namespace medusa::simcuda {

namespace {

using PK = ParamKind;

/** Shorthand to fetch a mutable float span or propagate the error. */
#define SPAN_F32(var, addr, count)                                           \
    MEDUSA_ASSIGN_OR_RETURN(f32 *var, mem.f32Span((addr), (count)))

#define SPAN_I32(var, addr, count)                                           \
    MEDUSA_ASSIGN_OR_RETURN(i32 *var, mem.i32Span((addr), (count)))

// ---------------------------------------------------------------- torch

/**
 * out[t, :] = weight[ids[t] % vocab, :]
 * params: weight*, ids*, out*, n_tokens, hidden, vocab
 */
Status
embeddingLookup(DeviceMemoryManager &mem, const KernelArgs &args)
{
    const i32 n = args.i32At(3);
    const i32 h = args.i32At(4);
    const i32 vocab = args.i32At(5);
    if (n <= 0 || h <= 0 || vocab <= 0) {
        return invalidArgument("bad embedding dims");
    }
    SPAN_F32(weight, args.ptrAt(0), static_cast<u64>(vocab) * h);
    SPAN_I32(ids, args.ptrAt(1), static_cast<u64>(n));
    SPAN_F32(out, args.ptrAt(2), static_cast<u64>(n) * h);
    for (i32 t = 0; t < n; ++t) {
        const i32 id = ((ids[t] % vocab) + vocab) % vocab;
        for (i32 d = 0; d < h; ++d) {
            out[t * h + d] = weight[id * h + d];
        }
    }
    return Status::ok();
}

/**
 * RMS normalization. params: in*, weight*, out*, n, h, eps
 */
Status
rmsNorm(DeviceMemoryManager &mem, const KernelArgs &args)
{
    const i32 n = args.i32At(3);
    const i32 h = args.i32At(4);
    const f32 eps = args.f32At(5);
    SPAN_F32(in, args.ptrAt(0), static_cast<u64>(n) * h);
    SPAN_F32(weight, args.ptrAt(1), static_cast<u64>(h));
    SPAN_F32(out, args.ptrAt(2), static_cast<u64>(n) * h);
    for (i32 t = 0; t < n; ++t) {
        f32 ss = 0;
        for (i32 d = 0; d < h; ++d) {
            ss += in[t * h + d] * in[t * h + d];
        }
        const f32 inv = 1.0f / std::sqrt(ss / static_cast<f32>(h) + eps);
        for (i32 d = 0; d < h; ++d) {
            out[t * h + d] = in[t * h + d] * inv * weight[d];
        }
    }
    return Status::ok();
}

/**
 * LayerNorm with bias (Falcon). params: in*, weight*, bias*, out*, n, h,
 * eps
 */
Status
layerNorm(DeviceMemoryManager &mem, const KernelArgs &args)
{
    const i32 n = args.i32At(4);
    const i32 h = args.i32At(5);
    const f32 eps = args.f32At(6);
    SPAN_F32(in, args.ptrAt(0), static_cast<u64>(n) * h);
    SPAN_F32(weight, args.ptrAt(1), static_cast<u64>(h));
    SPAN_F32(bias, args.ptrAt(2), static_cast<u64>(h));
    SPAN_F32(out, args.ptrAt(3), static_cast<u64>(n) * h);
    for (i32 t = 0; t < n; ++t) {
        f32 mean = 0;
        for (i32 d = 0; d < h; ++d) {
            mean += in[t * h + d];
        }
        mean /= static_cast<f32>(h);
        f32 var = 0;
        for (i32 d = 0; d < h; ++d) {
            const f32 c = in[t * h + d] - mean;
            var += c * c;
        }
        var /= static_cast<f32>(h);
        const f32 inv = 1.0f / std::sqrt(var + eps);
        for (i32 d = 0; d < h; ++d) {
            out[t * h + d] = (in[t * h + d] - mean) * inv * weight[d] +
                             bias[d];
        }
    }
    return Status::ok();
}

/** params: inout*, bias*, n, dim */
Status
biasAdd(DeviceMemoryManager &mem, const KernelArgs &args)
{
    const i32 n = args.i32At(2);
    const i32 dim = args.i32At(3);
    SPAN_F32(inout, args.ptrAt(0), static_cast<u64>(n) * dim);
    SPAN_F32(bias, args.ptrAt(1), static_cast<u64>(dim));
    for (i32 t = 0; t < n; ++t) {
        for (i32 d = 0; d < dim; ++d) {
            inout[t * dim + d] += bias[d];
        }
    }
    return Status::ok();
}

/**
 * SwiGLU activation: out = silu(gate) * up where the input packs
 * [gate | up] along the feature dim. params: gate_up*, out*, n, inter
 */
Status
siluMul(DeviceMemoryManager &mem, const KernelArgs &args)
{
    const i32 n = args.i32At(2);
    const i32 inter = args.i32At(3);
    SPAN_F32(gu, args.ptrAt(0), static_cast<u64>(n) * inter * 2);
    SPAN_F32(out, args.ptrAt(1), static_cast<u64>(n) * inter);
    for (i32 t = 0; t < n; ++t) {
        for (i32 d = 0; d < inter; ++d) {
            const f32 g = gu[t * inter * 2 + d];
            const f32 u = gu[t * inter * 2 + inter + d];
            const f32 silu = g / (1.0f + std::exp(-g));
            out[t * inter + d] = silu * u;
        }
    }
    return Status::ok();
}

/** params: in*, out*, count (tanh-approx GELU) */
Status
gelu(DeviceMemoryManager &mem, const KernelArgs &args)
{
    const i32 count = args.i32At(2);
    SPAN_F32(in, args.ptrAt(0), static_cast<u64>(count));
    SPAN_F32(out, args.ptrAt(1), static_cast<u64>(count));
    for (i32 i = 0; i < count; ++i) {
        const f32 x = in[i];
        const f32 c = 0.7978845608f * (x + 0.044715f * x * x * x);
        out[i] = 0.5f * x * (1.0f + std::tanh(c));
    }
    return Status::ok();
}

/** params: inout*, residual*, count */
Status
residualAdd(DeviceMemoryManager &mem, const KernelArgs &args)
{
    const i32 count = args.i32At(2);
    SPAN_F32(inout, args.ptrAt(0), static_cast<u64>(count));
    SPAN_F32(res, args.ptrAt(1), static_cast<u64>(count));
    for (i32 i = 0; i < count; ++i) {
        inout[i] += res[i];
    }
    return Status::ok();
}

/** params: logits*, out_ids*, bs, vocab (greedy sampling) */
Status
sampleArgmax(DeviceMemoryManager &mem, const KernelArgs &args)
{
    const i32 bs = args.i32At(2);
    const i32 vocab = args.i32At(3);
    SPAN_F32(logits, args.ptrAt(0), static_cast<u64>(bs) * vocab);
    SPAN_I32(out, args.ptrAt(1), static_cast<u64>(bs));
    for (i32 b = 0; b < bs; ++b) {
        i32 best = 0;
        f32 best_v = -std::numeric_limits<f32>::infinity();
        for (i32 v = 0; v < vocab; ++v) {
            const f32 x = logits[b * vocab + v];
            if (x > best_v) {
                best_v = x;
                best = v;
            }
        }
        out[b] = best;
    }
    return Status::ok();
}

/** params: src*, dst*, count */
Status
copyF32(DeviceMemoryManager &mem, const KernelArgs &args)
{
    const i32 count = args.i32At(2);
    SPAN_F32(src, args.ptrAt(0), static_cast<u64>(count));
    SPAN_F32(dst, args.ptrAt(1), static_cast<u64>(count));
    for (i32 i = 0; i < count; ++i) {
        dst[i] = src[i];
    }
    return Status::ok();
}

// ----------------------------------------------------------------- attn

/**
 * Rotary position embedding applied in-place to q and k. The q/k
 * pointers may point *into* a fused QKV buffer; @p q_stride/@p k_stride
 * give the row stride in floats.
 * params: q*, k*, pos*, n, q_heads, kv_heads, head_dim, q_stride,
 *         k_stride, theta
 */
Status
rope(DeviceMemoryManager &mem, const KernelArgs &args)
{
    const i32 n = args.i32At(3);
    const i32 qh = args.i32At(4);
    const i32 kvh = args.i32At(5);
    const i32 hd = args.i32At(6);
    const i32 q_stride = args.i32At(7);
    const i32 k_stride = args.i32At(8);
    const f32 theta = args.f32At(9);
    SPAN_I32(pos, args.ptrAt(2), static_cast<u64>(n));
    const i32 half = hd / 2;
    auto rotate = [&](DeviceAddr base, i32 heads,
                      i32 stride) -> Status {
        for (i32 t = 0; t < n; ++t) {
            SPAN_F32(row,
                     base + static_cast<u64>(t) * stride * sizeof(f32),
                     static_cast<u64>(heads) * hd);
            for (i32 head = 0; head < heads; ++head) {
                f32 *v = row + static_cast<u64>(head) * hd;
                for (i32 d = 0; d < half; ++d) {
                    const f32 freq = std::pow(
                        theta, -2.0f * static_cast<f32>(d) /
                                   static_cast<f32>(hd));
                    const f32 angle = static_cast<f32>(pos[t]) * freq;
                    const f32 c = std::cos(angle);
                    const f32 s = std::sin(angle);
                    const f32 x = v[d];
                    const f32 y = v[half + d];
                    v[d] = x * c - y * s;
                    v[half + d] = x * s + y * c;
                }
            }
        }
        return Status::ok();
    };
    MEDUSA_RETURN_IF_ERROR(rotate(args.ptrAt(0), qh, q_stride));
    return rotate(args.ptrAt(1), kvh, k_stride);
}

/**
 * Scatter new K/V vectors into the paged cache. k/v point into a fused
 * QKV buffer with @p kv_stride floats between token rows.
 * Cache layout: [slot, kv_heads, head_dim] where
 * slot = block_id * block_size + in-block offset.
 * params: k*, v*, k_cache*, v_cache*, slots*, n, kv_heads, head_dim,
 *         kv_stride
 */
Status
kvWrite(DeviceMemoryManager &mem, const KernelArgs &args)
{
    const i32 n = args.i32At(5);
    const i32 kvh = args.i32At(6);
    const i32 hd = args.i32At(7);
    const i32 stride = args.i32At(8);
    SPAN_I32(slots, args.ptrAt(4), static_cast<u64>(n));
    for (i32 t = 0; t < n; ++t) {
        const i32 slot = slots[t];
        if (slot < 0) {
            return invalidArgument("negative KV slot");
        }
        SPAN_F32(k, args.ptrAt(0) +
                        static_cast<u64>(t) * stride * sizeof(f32),
                 static_cast<u64>(kvh) * hd);
        SPAN_F32(v, args.ptrAt(1) +
                        static_cast<u64>(t) * stride * sizeof(f32),
                 static_cast<u64>(kvh) * hd);
        const u64 row = static_cast<u64>(slot) * kvh * hd;
        SPAN_F32(kc, args.ptrAt(2) + row * sizeof(f32),
                 static_cast<u64>(kvh) * hd);
        SPAN_F32(vc, args.ptrAt(3) + row * sizeof(f32),
                 static_cast<u64>(kvh) * hd);
        for (i32 i = 0; i < kvh * hd; ++i) {
            kc[i] = k[i];
            vc[i] = v[i];
        }
    }
    return Status::ok();
}

/**
 * Varlen causal attention over fresh q/k/v rows living in a fused QKV
 * buffer with a shared row stride (in floats).
 * params: q*, k*, v*, seq_starts*, out*, bs, q_heads, kv_heads,
 *         head_dim, stride, scale
 */
Status
attentionPrefill(DeviceMemoryManager &mem, const KernelArgs &args)
{
    const i32 bs = args.i32At(5);
    const i32 qh = args.i32At(6);
    const i32 kvh = args.i32At(7);
    const i32 hd = args.i32At(8);
    const i32 stride = args.i32At(9);
    const f32 scale = args.f32At(10);
    SPAN_I32(starts, args.ptrAt(3), static_cast<u64>(bs) + 1);
    const i32 total = starts[bs];
    SPAN_F32(out, args.ptrAt(4), static_cast<u64>(total) * qh * hd);
    auto qRow = [&](i32 t) {
        return mem.f32Span(args.ptrAt(0) +
                               static_cast<u64>(t) * stride * sizeof(f32),
                           static_cast<u64>(qh) * hd);
    };
    auto kRow = [&](i32 t) {
        return mem.f32Span(args.ptrAt(1) +
                               static_cast<u64>(t) * stride * sizeof(f32),
                           static_cast<u64>(kvh) * hd);
    };
    auto vRow = [&](i32 t) {
        return mem.f32Span(args.ptrAt(2) +
                               static_cast<u64>(t) * stride * sizeof(f32),
                           static_cast<u64>(kvh) * hd);
    };
    std::vector<f32> scores;
    for (i32 b = 0; b < bs; ++b) {
        const i32 s0 = starts[b];
        const i32 s1 = starts[b + 1];
        for (i32 t = s0; t < s1; ++t) {
            MEDUSA_ASSIGN_OR_RETURN(f32 *qv_row, qRow(t));
            for (i32 head = 0; head < qh; ++head) {
                const i32 kv_head = head * kvh / qh;
                const f32 *qv = qv_row + static_cast<u64>(head) * hd;
                const i32 ctx = t - s0 + 1;
                scores.assign(ctx, 0.0f);
                f32 max_s = -std::numeric_limits<f32>::infinity();
                for (i32 j = 0; j < ctx; ++j) {
                    MEDUSA_ASSIGN_OR_RETURN(f32 *kv_row, kRow(s0 + j));
                    const f32 *kv =
                        kv_row + static_cast<u64>(kv_head) * hd;
                    f32 dot = 0;
                    for (i32 d = 0; d < hd; ++d) {
                        dot += qv[d] * kv[d];
                    }
                    scores[j] = dot * scale;
                    max_s = std::max(max_s, scores[j]);
                }
                f32 denom = 0;
                for (i32 j = 0; j < ctx; ++j) {
                    scores[j] = std::exp(scores[j] - max_s);
                    denom += scores[j];
                }
                f32 *ov = out + (static_cast<u64>(t) * qh + head) * hd;
                for (i32 d = 0; d < hd; ++d) {
                    ov[d] = 0;
                }
                for (i32 j = 0; j < ctx; ++j) {
                    const f32 w = scores[j] / denom;
                    MEDUSA_ASSIGN_OR_RETURN(f32 *vv_row, vRow(s0 + j));
                    const f32 *vv =
                        vv_row + static_cast<u64>(kv_head) * hd;
                    for (i32 d = 0; d < hd; ++d) {
                        ov[d] += w * vv[d];
                    }
                }
            }
        }
    }
    return Status::ok();
}

/**
 * Single-token decode attention over the paged KV cache.
 * params: q*, k_cache*, v_cache*, block_tables*, seq_lens*, out*,
 *         bs, q_heads, kv_heads, head_dim, block_size, max_blocks,
 *         stream_tag (i64), scale
 *
 * stream_tag is an 8-byte *constant* whose value begins with a
 * high-address-like prefix — a deliberate pointer-classification decoy
 * (the "false positive candidates" of the paper's §4). The kernel
 * validates its prefix, so a wrong restoration is caught functionally.
 */
Status
pagedAttentionDecode(DeviceMemoryManager &mem, const KernelArgs &args)
{
    const i32 bs = args.i32At(6);
    const i32 qh = args.i32At(7);
    const i32 kvh = args.i32At(8);
    const i32 hd = args.i32At(9);
    const i32 block_size = args.i32At(10);
    const i32 max_blocks = args.i32At(11);
    const i32 q_stride = args.i32At(12);
    const i64 stream_tag = args.i64At(13);
    const f32 scale = args.f32At(14);
    if ((static_cast<u64>(stream_tag) >> 32) != 0x7fabu) {
        return invalidArgument("paged_attention: corrupted stream tag");
    }
    SPAN_I32(tables, args.ptrAt(3),
             static_cast<u64>(bs) * max_blocks);
    SPAN_I32(lens, args.ptrAt(4), static_cast<u64>(bs));
    SPAN_F32(out, args.ptrAt(5), static_cast<u64>(bs) * qh * hd);
    std::vector<f32> scores;
    for (i32 b = 0; b < bs; ++b) {
        const i32 len = lens[b];
        if (len <= 0) {
            // Padding slot in a fixed-batch graph replay: emit zeros.
            for (i32 i = 0; i < qh * hd; ++i) {
                out[b * qh * hd + i] = 0;
            }
            continue;
        }
        if ((len + block_size - 1) / block_size > max_blocks) {
            return invalidArgument("sequence overflows block table");
        }
        SPAN_F32(q_row,
                 args.ptrAt(0) +
                     static_cast<u64>(b) * q_stride * sizeof(f32),
                 static_cast<u64>(qh) * hd);
        for (i32 head = 0; head < qh; ++head) {
            const i32 kv_head = head * kvh / qh;
            const f32 *qv = q_row + static_cast<u64>(head) * hd;
            scores.assign(static_cast<std::size_t>(len), 0.0f);
            f32 max_s = -std::numeric_limits<f32>::infinity();
            for (i32 t = 0; t < len; ++t) {
                const i32 block = tables[b * max_blocks + t / block_size];
                if (block < 0) {
                    return invalidArgument("unmapped block in table");
                }
                const u64 slot = static_cast<u64>(block) * block_size +
                                 static_cast<u64>(t % block_size);
                SPAN_F32(kc,
                         args.ptrAt(1) +
                             (slot * kvh + kv_head) * hd * sizeof(f32),
                         static_cast<u64>(hd));
                f32 dot = 0;
                for (i32 d = 0; d < hd; ++d) {
                    dot += qv[d] * kc[d];
                }
                scores[t] = dot * scale;
                max_s = std::max(max_s, scores[t]);
            }
            f32 denom = 0;
            for (i32 t = 0; t < len; ++t) {
                scores[t] = std::exp(scores[t] - max_s);
                denom += scores[t];
            }
            f32 *ov = out + (static_cast<u64>(b) * qh + head) * hd;
            for (i32 d = 0; d < hd; ++d) {
                ov[d] = 0;
            }
            for (i32 t = 0; t < len; ++t) {
                const i32 block = tables[b * max_blocks + t / block_size];
                const u64 slot = static_cast<u64>(block) * block_size +
                                 static_cast<u64>(t % block_size);
                SPAN_F32(vc,
                         args.ptrAt(2) +
                             (slot * kvh + kv_head) * hd * sizeof(f32),
                         static_cast<u64>(hd));
                const f32 w = scores[t] / denom;
                for (i32 d = 0; d < hd; ++d) {
                    ov[d] += w * vc[d];
                }
            }
        }
    }
    return Status::ok();
}

/**
 * Split-K reduction stage of large-batch decode attention (models the
 * two-kernel split vLLM uses for big batches).
 * params: partial*, out*, count
 */
Status
pagedAttentionReduce(DeviceMemoryManager &mem, const KernelArgs &args)
{
    return copyF32(mem, args);
}

// --------------------------------------------------------------- cublas

/**
 * C[n, out] = A[n, k] x W[out, k]^T — the shared GEMM body.
 * params: A*, W*, C*, n, out, k  (+ sem0*, sem1* for split-K)
 */
Status
gemmBody(DeviceMemoryManager &mem, const KernelArgs &args, bool splitk)
{
    const std::size_t base = splitk ? 2 : 0;
    const i32 n = args.i32At(base + 3);
    const i32 out_dim = args.i32At(base + 4);
    const i32 k = args.i32At(base + 5);
    if (splitk) {
        // Verify the persistent semaphore workspaces hold the magic —
        // this is what makes permanent-buffer content restoration
        // functionally necessary (paper §4.3).
        for (std::size_t s = 0; s < 2; ++s) {
            u32 magic = 0;
            MEDUSA_RETURN_IF_ERROR(
                mem.read(args.ptrAt(s), &magic, sizeof(magic)));
            if (magic != kGemmWorkspaceMagic) {
                return invalidArgument(
                    "split-K GEMM: corrupted semaphore workspace");
            }
        }
    }
    SPAN_F32(a, args.ptrAt(base + 0), static_cast<u64>(n) * k);
    SPAN_F32(w, args.ptrAt(base + 1), static_cast<u64>(out_dim) * k);
    SPAN_F32(c, args.ptrAt(base + 2), static_cast<u64>(n) * out_dim);
    for (i32 t = 0; t < n; ++t) {
        for (i32 o = 0; o < out_dim; ++o) {
            f32 acc = 0;
            const f32 *wr = w + static_cast<u64>(o) * k;
            const f32 *ar = a + static_cast<u64>(t) * k;
            for (i32 d = 0; d < k; ++d) {
                acc += ar[d] * wr[d];
            }
            c[t * out_dim + o] = acc;
        }
    }
    return Status::ok();
}

Status
gemmPlain(DeviceMemoryManager &mem, const KernelArgs &args)
{
    return gemmBody(mem, args, false);
}

Status
gemmSplitK(DeviceMemoryManager &mem, const KernelArgs &args)
{
    return gemmBody(mem, args, true);
}

/**
 * Batched GEMM: the first param points to a device array holding the
 * three operand pointers [A, W, C] (cublasGemmBatchedEx-style). The
 * indirection means restoring the *param* is not enough — the pointer
 * words INSIDE the array buffer must be restored too (paper §8).
 * params: ptr_array*, n, out, k
 */
Status
gemmBatched(DeviceMemoryManager &mem, const KernelArgs &args)
{
    const i32 n = args.i32At(1);
    const i32 out_dim = args.i32At(2);
    const i32 k = args.i32At(3);
    u64 operands[3];
    MEDUSA_RETURN_IF_ERROR(
        mem.read(args.ptrAt(0), operands, sizeof(operands)));
    SPAN_F32(a, operands[0], static_cast<u64>(n) * k);
    SPAN_F32(w, operands[1], static_cast<u64>(out_dim) * k);
    SPAN_F32(c, operands[2], static_cast<u64>(n) * out_dim);
    for (i32 t = 0; t < n; ++t) {
        for (i32 o = 0; o < out_dim; ++o) {
            f32 acc = 0;
            const f32 *wr = w + static_cast<u64>(o) * k;
            const f32 *ar = a + static_cast<u64>(t) * k;
            for (i32 d = 0; d < k; ++d) {
                acc += ar[d] * wr[d];
            }
            c[t * out_dim + o] = acc;
        }
    }
    return Status::ok();
}

#undef SPAN_F32
#undef SPAN_I32

} // namespace

void
registerBuiltinKernels(KernelRegistry &reg)
{
    // PA entries mirror the mangled signature's const-ness: PKf -> kRead,
    // Pf -> kWrite or kReadWrite (in-place ops), scalar -> kNone.
    using PA = ParamAccess;
    constexpr PA kNA = PA::kNone;
    constexpr PA kR = PA::kRead;
    constexpr PA kW = PA::kWrite;
    constexpr PA kRW = PA::kReadWrite;
    auto add = [&reg](const char *name, const char *module, bool visible,
                      std::vector<PK> params, std::vector<PA> access,
                      KernelFn fn, bool indirect = false) {
        KernelDef def;
        def.mangled_name = name;
        def.module_name = module;
        def.in_symbol_table = visible;
        def.params = std::move(params);
        def.access = std::move(access);
        def.indirect_access = indirect;
        def.fn = std::move(fn);
        reg.registerKernel(std::move(def));
    };

    // libsimtorch.so — visible elementwise / norm / sampling kernels.
    add("_ZN8simtorch16embedding_lookupEPKfPKiPfiii", kTorchModule, true,
        {PK::kPointer, PK::kPointer, PK::kPointer, PK::kI32, PK::kI32,
         PK::kI32},
        {kR, kR, kW, kNA, kNA, kNA}, embeddingLookup);
    add("_ZN8simtorch7rmsnormEPKfS1_Pfiif", kTorchModule, true,
        {PK::kPointer, PK::kPointer, PK::kPointer, PK::kI32, PK::kI32,
         PK::kF32},
        {kR, kR, kW, kNA, kNA, kNA}, rmsNorm);
    add("_ZN8simtorch9layernormEPKfS1_S1_Pfiif", kTorchModule, true,
        {PK::kPointer, PK::kPointer, PK::kPointer, PK::kPointer, PK::kI32,
         PK::kI32, PK::kF32},
        {kR, kR, kR, kW, kNA, kNA, kNA}, layerNorm);
    add("_ZN8simtorch8bias_addEPfPKfii", kTorchModule, true,
        {PK::kPointer, PK::kPointer, PK::kI32, PK::kI32},
        {kRW, kR, kNA, kNA}, biasAdd);
    add("_ZN8simtorch8silu_mulEPKfPfii", kTorchModule, true,
        {PK::kPointer, PK::kPointer, PK::kI32, PK::kI32},
        {kR, kW, kNA, kNA}, siluMul);
    add("_ZN8simtorch4geluEPKfPfi", kTorchModule, true,
        {PK::kPointer, PK::kPointer, PK::kI32}, {kR, kW, kNA}, gelu);
    add("_ZN8simtorch12residual_addEPfPKfi", kTorchModule, true,
        {PK::kPointer, PK::kPointer, PK::kI32}, {kRW, kR, kNA},
        residualAdd);
    add("_ZN8simtorch13sample_argmaxEPKfPiii", kTorchModule, true,
        {PK::kPointer, PK::kPointer, PK::kI32, PK::kI32},
        {kR, kW, kNA, kNA}, sampleArgmax);
    add("_ZN8simtorch8copy_f32EPKfPfi", kTorchModule, true,
        {PK::kPointer, PK::kPointer, PK::kI32}, {kR, kW, kNA}, copyF32);

    // libsimattn.so — visible custom attention ops.
    add("_ZN7simattn4ropeEPfS0_PKiiiiiiif", kAttnModule, true,
        {PK::kPointer, PK::kPointer, PK::kPointer, PK::kI32, PK::kI32,
         PK::kI32, PK::kI32, PK::kI32, PK::kI32, PK::kF32},
        {kRW, kRW, kR, kNA, kNA, kNA, kNA, kNA, kNA, kNA}, rope);
    add("_ZN7simattn8kv_writeEPKfS1_PfS2_PKiiiii", kAttnModule, true,
        {PK::kPointer, PK::kPointer, PK::kPointer, PK::kPointer,
         PK::kPointer, PK::kI32, PK::kI32, PK::kI32, PK::kI32},
        {kR, kR, kW, kW, kR, kNA, kNA, kNA, kNA}, kvWrite);
    add("_ZN7simattn16attention_prefilEPKfS1_S1_PKiPfiiiiif", kAttnModule,
        true,
        {PK::kPointer, PK::kPointer, PK::kPointer, PK::kPointer,
         PK::kPointer, PK::kI32, PK::kI32, PK::kI32, PK::kI32, PK::kI32,
         PK::kF32},
        {kR, kR, kR, kR, kW, kNA, kNA, kNA, kNA, kNA, kNA},
        attentionPrefill);
    add("_ZN7simattn21paged_attention_v1_decEPKfS1_S1_PKiS3_Pfiiiiiiilf",
        kAttnModule, true,
        {PK::kPointer, PK::kPointer, PK::kPointer, PK::kPointer,
         PK::kPointer, PK::kPointer, PK::kI32, PK::kI32, PK::kI32,
         PK::kI32, PK::kI32, PK::kI32, PK::kI32, PK::kI64, PK::kF32},
        {kR, kR, kR, kR, kR, kW, kNA, kNA, kNA, kNA, kNA, kNA, kNA, kNA,
         kNA},
        pagedAttentionDecode);
    add("_ZN7simattn22paged_attention_reduceEPKfPfi", kAttnModule, true,
        {PK::kPointer, PK::kPointer, PK::kI32}, {kR, kW, kNA},
        pagedAttentionReduce);

    // libsimcublas.so — HIDDEN GEMM kernels (cuBLAS-style names).
    add("ampere_fp16_s16816gemm_fp16_128x128_ldg8_f2f_stages_64x3_tn",
        kCublasModule, false,
        {PK::kPointer, PK::kPointer, PK::kPointer, PK::kI32, PK::kI32,
         PK::kI32},
        {kR, kR, kW, kNA, kNA, kNA}, gemmPlain);
    add("ampere_fp16_s16816gemm_fp16_64x64_ldg8_f2f_stages_64x5_tn",
        kCublasModule, false,
        {PK::kPointer, PK::kPointer, PK::kPointer, PK::kI32, PK::kI32,
         PK::kI32},
        {kR, kR, kW, kNA, kNA, kNA}, gemmPlain);
    add("ampere_fp16_s16816gemm_fp16_64x64_sliced1x2_ldg8_f2f_stages_"
        "64x5_splitk_tn",
        kCublasModule, false,
        {PK::kPointer, PK::kPointer, PK::kPointer, PK::kPointer,
         PK::kPointer, PK::kI32, PK::kI32, PK::kI32},
        {kRW, kRW, kR, kR, kW, kNA, kNA, kNA}, gemmSplitK);
    add("ampere_fp16_s16816gemm_fp16_256x64_ldg8_f2f_stages_64x1_nn",
        kCublasModule, false,
        {PK::kPointer, PK::kPointer, PK::kPointer, PK::kI32, PK::kI32,
         PK::kI32},
        {kR, kR, kW, kNA, kNA, kNA}, gemmPlain);
    add("ampere_fp16_s16816gemm_fp16_batched_64x64_ldg8_f2f_nn",
        kCublasModule, false,
        {PK::kPointer, PK::kI32, PK::kI32, PK::kI32},
        {kR, kNA, kNA, kNA}, gemmBatched, /*indirect=*/true);

    // libsimnccl.so — the collective used by tensor parallelism.
    // params: inout*, count, rank, world. Rank-local execution only
    // validates the buffer; the lockstep replayer provides the
    // cross-rank semantics.
    add("_ZN7simnccl14all_reduce_sumEPfiii", kNcclModule, true,
        {PK::kPointer, PK::kI32, PK::kI32, PK::kI32},
        {kRW, kNA, kNA, kNA},
        [](DeviceMemoryManager &mem, const KernelArgs &args) -> Status {
            const i32 count = args.i32At(1);
            const i32 rank = args.i32At(2);
            const i32 world = args.i32At(3);
            if (rank < 0 || world <= 0 || rank >= world) {
                return invalidArgument("bad all-reduce rank/world");
            }
            MEDUSA_ASSIGN_OR_RETURN(
                f32 *buf, mem.f32Span(args.ptrAt(0),
                                      static_cast<u64>(count)));
            (void)buf;
            return Status::ok();
        });
}

const BuiltinKernels &
BuiltinKernels::get()
{
    static const BuiltinKernels kernels = [] {
        const auto &reg = KernelRegistry::instance();
        auto find = [&reg](const char *name) {
            const KernelId id = reg.findByName(name);
            MEDUSA_CHECK(id != kInvalidKernel,
                         "builtin kernel missing: " << name);
            return id;
        };
        BuiltinKernels k;
        k.embedding_lookup =
            find("_ZN8simtorch16embedding_lookupEPKfPKiPfiii");
        k.rmsnorm = find("_ZN8simtorch7rmsnormEPKfS1_Pfiif");
        k.layernorm = find("_ZN8simtorch9layernormEPKfS1_S1_Pfiif");
        k.bias_add = find("_ZN8simtorch8bias_addEPfPKfii");
        k.silu_mul = find("_ZN8simtorch8silu_mulEPKfPfii");
        k.gelu = find("_ZN8simtorch4geluEPKfPfi");
        k.residual_add = find("_ZN8simtorch12residual_addEPfPKfi");
        k.sample_argmax = find("_ZN8simtorch13sample_argmaxEPKfPiii");
        k.copy_f32 = find("_ZN8simtorch8copy_f32EPKfPfi");
        k.rope = find("_ZN7simattn4ropeEPfS0_PKiiiiiiif");
        k.kv_write = find("_ZN7simattn8kv_writeEPKfS1_PfS2_PKiiiii");
        k.attention_prefill =
            find("_ZN7simattn16attention_prefilEPKfS1_S1_PKiPfiiiiif");
        k.paged_attention_decode = find(
            "_ZN7simattn21paged_attention_v1_decEPKfS1_S1_PKiS3_Pfiiiiiii"
            "lf");
        k.paged_attention_reduce =
            find("_ZN7simattn22paged_attention_reduceEPKfPfi");
        k.gemm_128x128 = find(
            "ampere_fp16_s16816gemm_fp16_128x128_ldg8_f2f_stages_64x3_tn");
        k.gemm_64x64 = find(
            "ampere_fp16_s16816gemm_fp16_64x64_ldg8_f2f_stages_64x5_tn");
        k.gemm_splitk =
            find("ampere_fp16_s16816gemm_fp16_64x64_sliced1x2_ldg8_f2f_"
                 "stages_64x5_splitk_tn");
        k.gemm_lmhead = find(
            "ampere_fp16_s16816gemm_fp16_256x64_ldg8_f2f_stages_64x1_nn");
        k.gemm_batched =
            find("ampere_fp16_s16816gemm_fp16_batched_64x64_ldg8_f2f_nn");
        k.all_reduce_sum = find("_ZN7simnccl14all_reduce_sumEPfiii");
        return k;
    }();
    return kernels;
}

} // namespace medusa::simcuda
