#include "simcuda/graph.h"

#include <functional>
#include <queue>

namespace medusa::simcuda {

StatusOr<std::vector<NodeId>>
CudaGraph::topoOrder() const
{
    return topoOrderOf(nodes_.size(), edges_);
}

StatusOr<std::vector<NodeId>>
topoOrderOf(std::size_t node_count, const std::vector<GraphEdge> &edges)
{
    const std::size_t n = node_count;
    std::vector<u32> indegree(n, 0);
    std::vector<std::vector<NodeId>> succ(n);
    for (const GraphEdge &e : edges) {
        if (e.src >= n || e.dst >= n) {
            return invalidArgument("graph edge references unknown node");
        }
        ++indegree[e.dst];
        succ[e.src].push_back(e.dst);
    }
    // Kahn's algorithm, preferring node-id order so replays are
    // deterministic.
    std::priority_queue<NodeId, std::vector<NodeId>, std::greater<>> ready;
    for (NodeId i = 0; i < n; ++i) {
        if (indegree[i] == 0) {
            ready.push(i);
        }
    }
    std::vector<NodeId> order;
    order.reserve(n);
    while (!ready.empty()) {
        const NodeId u = ready.top();
        ready.pop();
        order.push_back(u);
        for (NodeId v : succ[u]) {
            if (--indegree[v] == 0) {
                ready.push(v);
            }
        }
    }
    if (order.size() != n) {
        return invalidArgument("graph contains a dependency cycle");
    }
    return order;
}

} // namespace medusa::simcuda
