/**
 * @file
 * Lockstep multi-GPU graph replay (the §8 multi-GPU extension).
 *
 * Tensor-parallel ranks capture structurally identical graphs (one per
 * GPU process). Replaying them in lockstep — step i of every rank
 * before step i+1 of any — reproduces the synchronization collectives
 * impose on real hardware, and lets the replayer play the NCCL
 * runtime: when the current step is an all_reduce_sum node, it gathers
 * each rank's buffer, sums element-wise, and scatters the result back,
 * charging NVLink transfer time.
 */

#ifndef MEDUSA_SIMCUDA_LOCKSTEP_H
#define MEDUSA_SIMCUDA_LOCKSTEP_H

#include <vector>

#include "common/status.h"
#include "simcuda/gpu_process.h"

namespace medusa::simcuda {

/** One participating rank: its process and its instantiated graph. */
struct LockstepRank
{
    GpuProcess *process = nullptr;
    const GraphExec *exec = nullptr;
};

/** NVLink-ish interconnect model for the collective cost. */
struct InterconnectModel
{
    f64 link_gbps = 200.0;
    f64 collective_latency_us = 8.0;
};

/**
 * Replay all ranks' graphs in lockstep; see file comment. All graphs
 * must have the same node count and matching kernels at every step
 * (symmetric tensor parallelism). Advances every rank's clock by the
 * graph execution cost plus collective time.
 */
Status lockstepLaunch(const std::vector<LockstepRank> &ranks,
                      const InterconnectModel &interconnect = {});

} // namespace medusa::simcuda

#endif // MEDUSA_SIMCUDA_LOCKSTEP_H
