#include "simcuda/module.h"

namespace medusa::simcuda {

namespace {

/** Simulated code-segment base for kernel entry points. */
constexpr KernelAddr kTextBase = 0x7fd000000000ull;

} // namespace

ModuleTable::ModuleTable(u64 aslr_seed) : rng_(aslr_seed) {}

bool
ModuleTable::isLoaded(KernelId id) const
{
    return addr_of_.count(id) != 0;
}

bool
ModuleTable::isModuleLoaded(const std::string &module_name) const
{
    auto it = loaded_modules_.find(module_name);
    return it != loaded_modules_.end() && it->second;
}

bool
ModuleTable::ensureLoaded(KernelId id)
{
    const auto &reg = KernelRegistry::instance();
    return loadModule(reg.def(id).module_name);
}

bool
ModuleTable::loadModule(const std::string &module_name)
{
    if (isModuleLoaded(module_name)) {
        return false;
    }
    const auto &reg = KernelRegistry::instance();
    const auto kernels = reg.kernelsInModule(module_name);
    MEDUSA_CHECK(!kernels.empty(),
                 "loading unknown module " << module_name);
    // Randomized module slide; kernels get distinct entry points within
    // the module's simulated text segment.
    const KernelAddr slide =
        kTextBase + ((rng_.nextU64() % (64 * units::GiB)) & ~0xfffull);
    u64 offset = 0x40;
    for (KernelId id : kernels) {
        const KernelAddr addr = slide + offset;
        offset += 0x100 + (rng_.nextU64() % 8) * 0x10;
        addr_of_[id] = addr;
        kernel_at_[addr] = id;
    }
    loaded_modules_[module_name] = true;
    return true;
}

StatusOr<KernelAddr>
ModuleTable::addressOf(KernelId id) const
{
    auto it = addr_of_.find(id);
    if (it == addr_of_.end()) {
        return failedPrecondition(
            "kernel's module not loaded: " +
            KernelRegistry::instance().def(id).mangled_name);
    }
    return it->second;
}

StatusOr<KernelId>
ModuleTable::kernelAt(KernelAddr addr) const
{
    auto it = kernel_at_.find(addr);
    if (it == kernel_at_.end()) {
        return invalidArgument("no kernel at address " +
                               std::to_string(addr));
    }
    return it->second;
}

StatusOr<DsoSymbol>
ModuleTable::dlsym(const std::string &dso_name,
                   const std::string &mangled_name) const
{
    const auto &reg = KernelRegistry::instance();
    const KernelId id = reg.findByName(mangled_name);
    if (id == kInvalidKernel) {
        return notFound("dlsym: no symbol " + mangled_name);
    }
    const KernelDef &def = reg.def(id);
    if (def.module_name != dso_name) {
        return notFound("dlsym: symbol " + mangled_name + " not in " +
                        dso_name);
    }
    if (!def.in_symbol_table) {
        // The closed-source case of the paper: the kernel exists in the
        // library but is hidden from the symbol table.
        return notFound("dlsym: symbol " + mangled_name +
                        " hidden in " + dso_name);
    }
    return DsoSymbol{id};
}

StatusOr<KernelAddr>
ModuleTable::funcBySymbol(const DsoSymbol &symbol, bool *did_load)
{
    if (symbol.kernel == kInvalidKernel) {
        return invalidArgument("cudaGetFuncBySymbol: invalid handle");
    }
    const bool loaded = ensureLoaded(symbol.kernel);
    if (did_load != nullptr) {
        *did_load = loaded;
    }
    return addressOf(symbol.kernel);
}

StatusOr<std::vector<KernelAddr>>
ModuleTable::enumerateFunctions(const std::string &module_name) const
{
    if (!isModuleLoaded(module_name)) {
        return failedPrecondition("cuModuleEnumerateFunctions: module " +
                                  module_name + " not loaded");
    }
    const auto &reg = KernelRegistry::instance();
    std::vector<KernelAddr> out;
    for (KernelId id : reg.kernelsInModule(module_name)) {
        auto addr = addressOf(id);
        MEDUSA_CHECK(addr.isOk(), "loaded module missing kernel address");
        out.push_back(*addr);
    }
    return out;
}

StatusOr<std::string>
ModuleTable::funcGetName(KernelAddr addr) const
{
    MEDUSA_ASSIGN_OR_RETURN(KernelId id, kernelAt(addr));
    return KernelRegistry::instance().def(id).mangled_name;
}

std::vector<std::string>
ModuleTable::loadedModules() const
{
    std::vector<std::string> out;
    for (const auto &[name, loaded] : loaded_modules_) {
        if (loaded) {
            out.push_back(name);
        }
    }
    return out;
}

u64
ModuleTable::stateFingerprint() const
{
    // XOR-combined per-entry hashes keep the digest independent of
    // unordered_map iteration order.
    u64 h = rng_.stateHash() * 0x100000001b3ull;
    for (const auto &[name, loaded] : loaded_modules_) {
        u64 e = loaded ? 0x9e3779b97f4a7c15ull : 0x2545f4914f6cdd1dull;
        for (char c : name) {
            e = (e ^ static_cast<u8>(c)) * 0x100000001b3ull;
        }
        h ^= e;
    }
    for (const auto &[id, addr] : addr_of_) {
        u64 e = 0xcbf29ce484222325ull;
        e = (e ^ id) * 0x100000001b3ull;
        e = (e ^ addr) * 0x100000001b3ull;
        h ^= e;
    }
    return h;
}

} // namespace medusa::simcuda
