#include "simcuda/kernel.h"

#include <set>

namespace medusa::simcuda {

// Defined in kernels/builtin.cc; registers all built-in kernels into the
// mutable registry exactly once.
void registerBuiltinKernels(KernelRegistry &registry);

const char *
accessName(ParamAccess a)
{
    switch (a) {
      case ParamAccess::kNone: return "none";
      case ParamAccess::kRead: return "read";
      case ParamAccess::kWrite: return "write";
      case ParamAccess::kReadWrite: return "read-write";
    }
    return "unknown";
}

KernelRegistry &
mutableRegistry()
{
    static KernelRegistry registry;
    return registry;
}

const KernelRegistry &
KernelRegistry::instance()
{
    static const bool inited = [] {
        registerBuiltinKernels(mutableRegistry());
        return true;
    }();
    (void)inited;
    return mutableRegistry();
}

KernelId
KernelRegistry::registerKernel(KernelDef def)
{
    MEDUSA_CHECK(findByName(def.mangled_name) == kInvalidKernel,
                 "duplicate kernel name " << def.mangled_name);
    MEDUSA_CHECK(def.access.empty() ||
                     def.access.size() == def.params.size(),
                 "kernel " << def.mangled_name
                           << " access set does not match its params");
    for (std::size_t i = 0; i < def.access.size(); ++i) {
        const bool is_ptr = def.params[i] == ParamKind::kPointer;
        MEDUSA_CHECK(is_ptr == (def.access[i] != ParamAccess::kNone),
                     "kernel " << def.mangled_name << " param " << i
                               << " access/kind mismatch");
    }
    defs_.push_back(std::move(def));
    return static_cast<KernelId>(defs_.size() - 1);
}

KernelId
KernelRegistry::findByName(const std::string &mangled_name) const
{
    for (std::size_t i = 0; i < defs_.size(); ++i) {
        if (defs_[i].mangled_name == mangled_name) {
            return static_cast<KernelId>(i);
        }
    }
    return kInvalidKernel;
}

std::vector<KernelId>
KernelRegistry::kernelsInModule(const std::string &module) const
{
    std::vector<KernelId> out;
    for (std::size_t i = 0; i < defs_.size(); ++i) {
        if (defs_[i].module_name == module) {
            out.push_back(static_cast<KernelId>(i));
        }
    }
    return out;
}

bool
KernelRegistry::hasModule(const std::string &module) const
{
    for (const auto &d : defs_) {
        if (d.module_name == module) {
            return true;
        }
    }
    return false;
}

std::vector<std::string>
KernelRegistry::symbolsInModule(const std::string &module,
                                bool include_hidden) const
{
    std::vector<std::string> out;
    for (const auto &d : defs_) {
        if (d.module_name == module &&
            (include_hidden || d.in_symbol_table)) {
            out.push_back(d.mangled_name);
        }
    }
    return out;
}

std::vector<std::string>
KernelRegistry::moduleNames() const
{
    std::set<std::string> names;
    for (const auto &d : defs_) {
        names.insert(d.module_name);
    }
    return {names.begin(), names.end()};
}

} // namespace medusa::simcuda
