/**
 * @file
 * Simulated CUDA graphs.
 *
 * A CudaGraph is a DAG of kernel nodes. Each node records exactly what a
 * real cudaGraphKernelNodeParams exposes: the kernel's (per-process,
 * randomized) function address, and the raw bytes of every launch
 * parameter. Graphs are built either by stream capture (gpu_process.h)
 * or explicitly via addKernelNode() — the path Medusa's online
 * restoration uses to reconstruct a materialized graph.
 */

#ifndef MEDUSA_SIMCUDA_GRAPH_H
#define MEDUSA_SIMCUDA_GRAPH_H

#include <vector>

#include "common/status.h"
#include "simcuda/kernel.h"
#include "simtime/cost_model.h"

namespace medusa::simcuda {

/** Node index within one graph. */
using NodeId = u32;

/**
 * One kernel node: function address + opaque parameter bytes, plus the
 * logical-work metadata the timing model consumes (an intrinsic property
 * of the kernel invocation, not a launch parameter — Medusa never
 * inspects it).
 */
struct GraphNode
{
    KernelAddr fn = 0;
    RawParams params;
    TimingInfo timing;
};

/** A directed dependency edge: dst may only run after src. */
struct GraphEdge
{
    NodeId src = 0;
    NodeId dst = 0;
};

/**
 * The graph under construction / inspection. Mirrors the mutation and
 * inspection API of the CUDA graph (cudaGraphAddKernelNode,
 * cudaGraphKernelNodeGetParams/SetParams, cudaGraphGetEdges).
 */
class CudaGraph
{
  public:
    CudaGraph() = default;

    /**
     * Add a kernel node.
     * @param deps nodes this one depends on (must already exist).
     */
    NodeId
    addKernelNode(KernelAddr fn, RawParams params, TimingInfo timing,
                  const std::vector<NodeId> &deps)
    {
        const NodeId id = static_cast<NodeId>(nodes_.size());
        nodes_.push_back(GraphNode{fn, std::move(params), timing});
        for (NodeId d : deps) {
            MEDUSA_CHECK(d < id, "graph dependency on future node " << d);
            edges_.push_back(GraphEdge{d, id});
        }
        return id;
    }

    std::size_t nodeCount() const { return nodes_.size(); }
    std::size_t edgeCount() const { return edges_.size(); }

    const GraphNode &node(NodeId id) const { return nodes_.at(id); }
    const std::vector<GraphNode> &nodes() const { return nodes_; }
    const std::vector<GraphEdge> &edges() const { return edges_; }

    /** Replace one parameter's bytes (cudaGraphKernelNodeSetParams). */
    void
    setNodeParam(NodeId id, std::size_t param_index, std::vector<u8> bytes)
    {
        auto &params = nodes_.at(id).params;
        MEDUSA_CHECK(param_index < params.size(),
                     "param index out of range");
        params[param_index] = std::move(bytes);
    }

    /** Replace a node's function address (for address restoration). */
    void
    setNodeKernel(NodeId id, KernelAddr fn)
    {
        nodes_.at(id).fn = fn;
    }

    /**
     * Topological order of the nodes; error if the graph has a cycle
     * (cannot happen via capture, can happen via a corrupt artifact).
     */
    StatusOr<std::vector<NodeId>> topoOrder() const;

  private:
    std::vector<GraphNode> nodes_;
    std::vector<GraphEdge> edges_;
};

/**
 * Deterministic topological order (Kahn's algorithm, preferring node-id
 * order) over an explicit edge list. Shared by CudaGraph::topoOrder and
 * the offline image builder, which precomputes execution orders so the
 * online patch pass never sorts.
 */
StatusOr<std::vector<NodeId>> topoOrderOf(std::size_t node_count,
                                          const std::vector<GraphEdge> &edges);

} // namespace medusa::simcuda

#endif // MEDUSA_SIMCUDA_GRAPH_H
