#include "simcuda/gpu_process.h"

#include <algorithm>

namespace medusa::simcuda {

// ---------------------------------------------------------------- Stream

Status
Stream::launch(KernelId kernel, RawParams params, const TimingInfo &timing)
{
    return process_->launchOnStream(*this, kernel, std::move(params),
                                    timing);
}

Status
Stream::recordEvent(Event &event)
{
    event.recorded_ = true;
    if (capturing()) {
        event.captured_ = true;
        event.capture_deps_ = capture_frontier_;
    } else {
        event.captured_ = false;
        event.gpu_time_ = gpu_ready_ns_;
    }
    return Status::ok();
}

Status
Stream::waitEvent(Event &event)
{
    if (!event.recorded_) {
        return failedPrecondition("wait on unrecorded event");
    }
    if (event.captured_) {
        // Joining a capture (fork): this stream's subsequent launches
        // are recorded, depending on the event's frontier.
        if (!process_->captureActive()) {
            return failedPrecondition(
                "wait on captured event outside capture");
        }
        session_ = process_->capture_.get();
        for (NodeId d : event.capture_deps_) {
            if (std::find(capture_frontier_.begin(),
                          capture_frontier_.end(),
                          d) == capture_frontier_.end()) {
                capture_frontier_.push_back(d);
            }
        }
        return Status::ok();
    }
    if (capturing()) {
        return captureViolation(
            "wait on eagerly-recorded event during capture");
    }
    gpu_ready_ns_ = std::max(gpu_ready_ns_, event.gpu_time_);
    return Status::ok();
}

Status
Stream::synchronize()
{
    if (capturing()) {
        return captureViolation(
            "stream synchronization is prohibited during capture");
    }
    SimClock &clock = process_->clock();
    clock.advanceTo(std::max(clock.now(), gpu_ready_ns_));
    clock.advance(units::usToNs(process_->cost().sync_us));
    return Status::ok();
}

// ------------------------------------------------------------ GpuProcess

namespace {

// Seed derivations shared by construction and resetToPristine, so a
// reset process replays the exact randomization of a fresh launch.
u64
memorySeed(const GpuProcessOptions &opts)
{
    return opts.aslr_seed * 0x9e3779b9u + 1 + opts.device_index;
}

u64
moduleSeed(const GpuProcessOptions &opts)
{
    return opts.aslr_seed * 0xc2b2ae35u + 7 + opts.device_index;
}

} // namespace

GpuProcess::GpuProcess(const GpuProcessOptions &opts, SimClock *clock,
                       const CostModel *cost)
    : clock_(clock),
      cost_(cost),
      opts_(opts),
      memory_(opts.device_memory_bytes, memorySeed(opts),
              opts.device_index),
      modules_(moduleSeed(opts))
{
    MEDUSA_CHECK(clock_ != nullptr && cost_ != nullptr,
                 "GpuProcess requires a clock and a cost model");
    streams_.emplace_back(new Stream(this));
}

void
GpuProcess::beginJournal()
{
    journal_active_ = true;
    journal_ = ProcessJournal{};
}

void
GpuProcess::endJournal()
{
    journal_active_ = false;
}

void
GpuProcess::resetToPristine()
{
    // Abort any capture first so stream teardown is unconditional.
    capture_.reset();
    // Keep the default Stream object alive (runtimes hold references)
    // but rewind its state; additional capture-fork streams die with
    // the process.
    streams_.resize(1);
    Stream &def = *streams_.front();
    def.gpu_ready_ns_ = 0;
    def.session_ = nullptr;
    def.capture_frontier_.clear();
    // Reconstruct the randomized subsystems from the creation options:
    // a relaunched process draws the same ASLR/jitter streams as the
    // original launch did, which is what makes rollback byte-identical
    // to a fresh process.
    memory_ = DeviceMemoryManager(opts_.device_memory_bytes,
                                  memorySeed(opts_), opts_.device_index);
    modules_ = ModuleTable(moduleSeed(opts_));
    eager_launches_ = 0;
    captured_nodes_ = 0;
    graph_launches_ = 0;
    journal_active_ = false;
    journal_ = ProcessJournal{};
}

u64
GpuProcess::stateFingerprint() const
{
    auto mix = [](u64 h, u64 v) {
        return (h ^ (v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2))) *
               0x100000001b3ull;
    };
    u64 h = 0xcbf29ce484222325ull;
    h = mix(h, memory_.stateFingerprint());
    h = mix(h, modules_.stateFingerprint());
    h = mix(h, streams_.size());
    for (const auto &s : streams_) {
        h = mix(h, static_cast<u64>(s->gpu_ready_ns_));
        h = mix(h, s->session_ != nullptr ? 1 : 0);
    }
    h = mix(h, capture_ != nullptr ? 1 : 0);
    h = mix(h, eager_launches_);
    h = mix(h, captured_nodes_);
    h = mix(h, graph_launches_);
    return h;
}

u64
GpuProcess::logicalStateFingerprint() const
{
    auto mix = [](u64 h, u64 v) {
        return (h ^ (v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2))) *
               0x100000001b3ull;
    };
    u64 h = 0xcbf29ce484222325ull;
    h = mix(h, memory_.stateFingerprint());
    h = mix(h, modules_.stateFingerprint());
    h = mix(h, streams_.size());
    for (const auto &s : streams_) {
        // gpu_ready_ns_ deliberately excluded: it tracks the simulated
        // clock, which a faster restore path reaches earlier.
        h = mix(h, s->session_ != nullptr ? 1 : 0);
    }
    h = mix(h, capture_ != nullptr ? 1 : 0);
    h = mix(h, eager_launches_);
    h = mix(h, captured_nodes_);
    h = mix(h, graph_launches_);
    return h;
}

Stream &
GpuProcess::createStream()
{
    streams_.emplace_back(new Stream(this));
    return *streams_.back();
}

StatusOr<DeviceAddr>
GpuProcess::cudaMalloc(u64 logical_size, u64 backing_size)
{
    if (captureActive()) {
        return captureViolation("cudaMalloc during stream capture");
    }
    clock_->advance(units::usToNs(cost_->cuda_malloc_us));
    auto addr = memory_.malloc(logical_size, backing_size);
    if (journal_active_ && addr.isOk()) {
        ++journal_.driver_allocs;
    }
    return addr;
}

Status
GpuProcess::cudaFree(DeviceAddr addr)
{
    if (captureActive()) {
        return captureViolation("cudaFree during stream capture");
    }
    clock_->advance(units::usToNs(cost_->cuda_free_us));
    Status st = memory_.free(addr);
    if (journal_active_ && st.isOk()) {
        ++journal_.driver_frees;
    }
    return st;
}

Status
GpuProcess::memcpyH2D(DeviceAddr dst, const void *src, u64 functional_bytes,
                      u64 logical_bytes)
{
    if (captureActive()) {
        return captureViolation("synchronous memcpy during capture");
    }
    clock_->advance(cost_->pcieCopyTime(static_cast<f64>(logical_bytes)));
    if (journal_active_) {
        ++journal_.h2d_copies;
    }
    if (functional_bytes == 0) {
        return Status::ok();
    }
    return memory_.write(dst, src, functional_bytes);
}

Status
GpuProcess::memcpyD2H(void *dst, DeviceAddr src, u64 functional_bytes,
                      u64 logical_bytes)
{
    if (captureActive()) {
        return captureViolation("synchronous memcpy during capture");
    }
    // A D2H copy drains the producing stream first.
    MEDUSA_RETURN_IF_ERROR(defaultStream().synchronize());
    clock_->advance(cost_->pcieCopyTime(static_cast<f64>(logical_bytes)));
    if (functional_bytes == 0) {
        return Status::ok();
    }
    return memory_.read(src, dst, functional_bytes);
}

Status
GpuProcess::cudaMemset(DeviceAddr addr, u8 value, u64 functional_bytes)
{
    if (captureActive()) {
        return captureViolation("cudaMemset during stream capture");
    }
    clock_->advance(units::usToNs(1.0));
    if (journal_active_) {
        ++journal_.memsets;
    }
    return memory_.memset(addr, value, functional_bytes);
}

Status
GpuProcess::deviceSynchronize()
{
    if (captureActive()) {
        return captureViolation(
            "device synchronization is prohibited during capture");
    }
    SimTimeNs ready = clock_->now();
    for (const auto &s : streams_) {
        ready = std::max(ready, s->gpu_ready_ns_);
    }
    clock_->advanceTo(ready);
    clock_->advance(units::usToNs(cost_->sync_us));
    return Status::ok();
}

StatusOr<DsoSymbol>
GpuProcess::dlsym(const std::string &dso, const std::string &mangled_name)
{
    clock_->advance(units::usToNs(0.5));
    return modules_.dlsym(dso, mangled_name);
}

StatusOr<KernelAddr>
GpuProcess::cudaGetFuncBySymbol(const DsoSymbol &symbol)
{
    if (captureActive()) {
        return captureViolation("cudaGetFuncBySymbol during capture");
    }
    bool did_load = false;
    auto addr = modules_.funcBySymbol(symbol, &did_load);
    if (did_load) {
        clock_->advance(units::msToNs(cost_->module_load_ms));
        if (journal_active_) {
            ++journal_.module_loads;
        }
    }
    return addr;
}

StatusOr<std::vector<KernelAddr>>
GpuProcess::cuModuleEnumerateFunctions(const std::string &module_name)
{
    clock_->advance(units::usToNs(1.0));
    return modules_.enumerateFunctions(module_name);
}

StatusOr<std::string>
GpuProcess::cuFuncGetName(KernelAddr addr)
{
    clock_->advance(units::usToNs(cost_->kernel_name_match_us));
    return modules_.funcGetName(addr);
}

StatusOr<std::string>
GpuProcess::cuFuncGetModule(KernelAddr addr)
{
    clock_->advance(units::usToNs(0.5));
    MEDUSA_ASSIGN_OR_RETURN(KernelId id, modules_.kernelAt(addr));
    return KernelRegistry::instance().def(id).module_name;
}

Status
GpuProcess::beginCapture(Stream &stream)
{
    if (captureActive()) {
        // The limitation called out in §2.2: one capture at a time.
        return captureViolation(
            "a capture is already in progress in this process");
    }
    if (stream.capturing()) {
        return failedPrecondition("stream is already capturing");
    }
    capture_ = std::make_unique<CaptureSession>();
    capture_->origin = &stream;
    stream.session_ = capture_.get();
    stream.capture_frontier_.clear();
    return Status::ok();
}

StatusOr<CudaGraph>
GpuProcess::endCapture(Stream &stream)
{
    if (!captureActive()) {
        return failedPrecondition("no capture in progress");
    }
    if (capture_->origin != &stream) {
        return invalidArgument("endCapture on non-origin stream");
    }
    CudaGraph graph = std::move(capture_->graph);
    for (const auto &s : streams_) {
        s->session_ = nullptr;
        s->capture_frontier_.clear();
    }
    capture_.reset();
    return graph;
}

StatusOr<GraphExec>
GpuProcess::instantiate(const CudaGraph &graph)
{
    if (captureActive()) {
        return captureViolation("cudaGraphInstantiate during capture");
    }
    GraphExec exec;
    exec.kernels_.reserve(graph.nodeCount());
    exec.timings_.reserve(graph.nodeCount());
    exec.param_begin_.reserve(graph.nodeCount() + 1);
    exec.param_begin_.push_back(0);
    for (const GraphNode &node : graph.nodes()) {
        auto kernel = modules_.kernelAt(node.fn);
        if (!kernel.isOk()) {
            return invalidArgument(
                "cudaGraphInstantiate: node references unknown kernel "
                "address " +
                std::to_string(node.fn));
        }
        exec.kernels_.push_back(*kernel);
        exec.timings_.push_back(node.timing);
        for (const std::vector<u8> &bytes : node.params) {
            exec.blobs_.push_back(makeParamBlob(bytes));
        }
        exec.param_begin_.push_back(static_cast<u32>(exec.blobs_.size()));
    }
    MEDUSA_ASSIGN_OR_RETURN(exec.order_, graph.topoOrder());
    clock_->advance(units::usToNs(cost_->graph_instantiate_per_node_us *
                                  static_cast<f64>(graph.nodeCount())));
    if (journal_active_) {
        ++journal_.graphs_instantiated;
    }
    return exec;
}

StatusOr<GraphExec>
GpuProcess::instantiatePatched(const PatchedGraphDesc &desc)
{
    if (captureActive()) {
        return captureViolation("cudaGraphInstantiate during capture");
    }
    const std::size_t n = desc.node_fn.size();
    if (desc.param_begin.size() != n + 1 || desc.timing.size() != n ||
        desc.order.size() != n ||
        desc.param_bits.size() != desc.param_len.size() ||
        desc.param_begin.front() != 0 ||
        desc.param_begin.back() != desc.param_bits.size()) {
        return invalidArgument(
            "cudaGraphInstantiate: inconsistent patched graph arrays");
    }
    for (std::size_t i = 0; i < n; ++i) {
        if (desc.param_begin[i + 1] < desc.param_begin[i]) {
            return invalidArgument(
                "cudaGraphInstantiate: inconsistent patched graph arrays");
        }
    }
    GraphExec exec;
    exec.kernels_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        auto kernel = modules_.kernelAt(desc.node_fn[i]);
        if (!kernel.isOk()) {
            return invalidArgument(
                "cudaGraphInstantiate: node references unknown kernel "
                "address " +
                std::to_string(desc.node_fn[i]));
        }
        exec.kernels_.push_back(*kernel);
    }
    // Re-verify the precomputed execution order instead of re-sorting:
    // it must be a permutation of the node set that respects every edge.
    constexpr u32 kUnseen = 0xffffffffu;
    std::vector<u32> position(n, kUnseen);
    for (std::size_t step = 0; step < n; ++step) {
        const NodeId id = desc.order[step];
        if (id >= n || position[id] != kUnseen) {
            return invalidArgument(
                "cudaGraphInstantiate: corrupt execution order");
        }
        position[id] = static_cast<u32>(step);
    }
    for (const GraphEdge &edge : desc.edges) {
        if (edge.src >= n || edge.dst >= n ||
            position[edge.src] >= position[edge.dst]) {
            return invalidArgument("cudaGraphInstantiate: execution order "
                                   "violates graph dependencies");
        }
    }
    exec.param_begin_.assign(desc.param_begin.begin(),
                             desc.param_begin.end());
    exec.blobs_.resize(desc.param_bits.size());
    for (std::size_t j = 0; j < desc.param_bits.size(); ++j) {
        exec.blobs_[j].bits = desc.param_bits[j];
        exec.blobs_[j].len = desc.param_len[j];
    }
    exec.timings_.assign(desc.timing.begin(), desc.timing.end());
    exec.order_.assign(desc.order.begin(), desc.order.end());
    clock_->advance(units::usToNs(cost_->graph_instantiate_per_node_us *
                                  static_cast<f64>(n)));
    if (journal_active_) {
        ++journal_.graphs_instantiated;
    }
    return exec;
}

Status
GpuProcess::launchGraph(const GraphExec &exec, Stream &stream)
{
    if (captureActive()) {
        return captureViolation("cudaGraphLaunch during capture");
    }
    // One CPU-side launch for the whole graph — the core benefit of
    // CUDA graphs (§2.2).
    clock_->advance(units::usToNs(cost_->graph_launch_us));
    ++graph_launches_;
    SimTimeNs gpu_time = 0;
    for (NodeId id : exec.order_) {
        const u32 begin = exec.param_begin_.at(id);
        const ParamView params(exec.blobs_.data() + begin,
                               exec.param_begin_.at(id + 1) - begin);
        MEDUSA_RETURN_IF_ERROR(execute(exec.kernels_.at(id), params));
        gpu_time += cost_->kernelExecTime(exec.timings_.at(id),
                                          cost_->steady_efficiency) +
                    units::usToNs(cost_->graph_node_dispatch_us);
    }
    const SimTimeNs start = std::max(clock_->now(), stream.gpu_ready_ns_);
    stream.gpu_ready_ns_ = start + gpu_time;
    return Status::ok();
}

Status
GpuProcess::launchOnStream(Stream &stream, KernelId kernel,
                           RawParams params, const TimingInfo &timing)
{
    const auto &reg = KernelRegistry::instance();
    if (kernel >= reg.kernelCount()) {
        return invalidArgument("launch of unknown kernel id");
    }
    if (stream.capturing()) {
        if (!modules_.isLoaded(kernel)) {
            // Loading a module performs an implicit synchronization,
            // which is prohibited during capture. This is exactly why
            // frameworks must warm up before capturing (§2.3).
            return captureViolation(
                "first-launch module load during capture for kernel " +
                reg.def(kernel).mangled_name);
        }
        MEDUSA_ASSIGN_OR_RETURN(KernelAddr addr,
                                modules_.addressOf(kernel));
        clock_->advance(units::usToNs(cost_->capture_record_us));
        const NodeId id = capture_->graph.addKernelNode(
            addr, params, timing, stream.capture_frontier_);
        stream.capture_frontier_.assign(1, id);
        ++capture_->recorded_nodes;
        ++captured_nodes_;
        if (launch_observer_ != nullptr) {
            launch_observer_->onKernelLaunch(
                addr, capture_->graph.node(id).params, true);
        }
        return Status::ok();
    }

    // Eager path: load the module on first use, then launch.
    if (modules_.ensureLoaded(kernel)) {
        clock_->advance(units::msToNs(cost_->module_load_ms));
        if (journal_active_) {
            ++journal_.module_loads;
        }
        // Module loading synchronizes the device.
        MEDUSA_RETURN_IF_ERROR(deviceSynchronize());
    }
    MEDUSA_ASSIGN_OR_RETURN(KernelAddr addr, modules_.addressOf(kernel));
    clock_->advance(units::usToNs(cost_->kernel_launch_us));
    ++eager_launches_;
    // Async pipeline model: the GPU starts this kernel when both the CPU
    // has issued it and the stream's previous work has drained.
    const SimTimeNs exec =
        cost_->kernelExecTime(timing, cost_->steady_efficiency);
    const SimTimeNs start = std::max(clock_->now(), stream.gpu_ready_ns_);
    stream.gpu_ready_ns_ = start + exec;
    if (launch_observer_ != nullptr) {
        launch_observer_->onKernelLaunch(addr, params, false);
    }
    return execute(kernel, params);
}

Status
GpuProcess::executeKernel(KernelId kernel, const RawParams &params)
{
    return execute(kernel, params);
}

Status
GpuProcess::executeKernel(KernelId kernel, ParamView params)
{
    return execute(kernel, params);
}

namespace {

inline std::size_t
paramWidthAt(const RawParams &params, std::size_t i)
{
    return params[i].size();
}

inline std::size_t
paramWidthAt(ParamView params, std::size_t i)
{
    return params.sizeAt(i);
}

} // namespace

template <typename Params>
Status
GpuProcess::executeImpl(KernelId kernel, const Params &params)
{
    const KernelDef &def = KernelRegistry::instance().def(kernel);
    if (params.size() != def.params.size()) {
        return invalidArgument("kernel " + def.mangled_name + " expects " +
                               std::to_string(def.params.size()) +
                               " params, got " +
                               std::to_string(params.size()));
    }
    for (std::size_t i = 0; i < params.size(); ++i) {
        if (paramWidthAt(params, i) != paramKindSize(def.params[i])) {
            return invalidArgument("kernel " + def.mangled_name +
                                   ": param " + std::to_string(i) +
                                   " has wrong size");
        }
    }
    KernelArgs args(params, def.params);
    Status st = def.fn(memory_, args);
    if (!st.isOk()) {
        return Status(st.code(), "kernel " + def.mangled_name +
                                     " failed: " + st.message());
    }
    return Status::ok();
}

Status
GpuProcess::execute(KernelId kernel, const RawParams &params)
{
    return executeImpl(kernel, params);
}

Status
GpuProcess::execute(KernelId kernel, ParamView params)
{
    return executeImpl(kernel, params);
}

} // namespace medusa::simcuda
