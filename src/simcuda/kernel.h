/**
 * @file
 * Simulated GPU kernels.
 *
 * A kernel is identified by a mangled name and grouped into a *module*
 * (see module.h). Its launch parameters are carried as opaque raw bytes —
 * exactly what a real cudaGraphKernelNodeParams exposes — so Medusa's
 * analysis must classify pointers vs constants from the byte patterns,
 * as in the paper (§4). The typed signature is only used by the
 * functional executor to decode the bytes back into arguments.
 */

#ifndef MEDUSA_SIMCUDA_KERNEL_H
#define MEDUSA_SIMCUDA_KERNEL_H

#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "simtime/cost_model.h"

namespace medusa::simcuda {

class DeviceMemoryManager;

/** Dense, process-independent identity of a kernel definition. */
using KernelId = u32;

constexpr KernelId kInvalidKernel = 0xffffffffu;

/** The wire type of one kernel parameter. */
enum class ParamKind : u8 {
    kPointer = 0, ///< 8-byte device pointer
    kI32 = 1,     ///< 4-byte integer constant
    kI64 = 2,     ///< 8-byte integer constant
    kF32 = 3,     ///< 4-byte float constant
};

/** Byte width of a parameter of the given kind. */
constexpr u64
paramKindSize(ParamKind kind)
{
    switch (kind) {
      case ParamKind::kPointer: return 8;
      case ParamKind::kI32: return 4;
      case ParamKind::kI64: return 8;
      case ParamKind::kF32: return 4;
    }
    return 0;
}

/**
 * How a kernel's functional body touches the buffer behind one pointer
 * parameter. Non-pointer parameters are kNone. The sets are declared by
 * the kernel author (builtin.cc) as ground truth for static analysis:
 * medusa-lint's happens-before race rules (MDL8xx) compare the access
 * sets of concurrently-capturable nodes, the way real kernels declare
 * const-ness through their signatures (PKf vs Pf).
 */
enum class ParamAccess : u8 {
    kNone = 0,      ///< not a memory access (scalar constant)
    kRead = 1,      ///< the buffer is only read
    kWrite = 2,     ///< the buffer is only written
    kReadWrite = 3, ///< read-modify-write (accumulators, semaphores)
};

const char *accessName(ParamAccess a);

constexpr bool
accessReads(ParamAccess a)
{
    return a == ParamAccess::kRead || a == ParamAccess::kReadWrite;
}

constexpr bool
accessWrites(ParamAccess a)
{
    return a == ParamAccess::kWrite || a == ParamAccess::kReadWrite;
}

/**
 * Raw launch parameters: one byte blob per argument, mirroring the
 * void** kernelParams array of CUDA.
 */
using RawParams = std::vector<std::vector<u8>>;

/**
 * One flattened launch parameter: every kernel argument is at most 8
 * bytes (paramKindSize), so an instantiated graph stores the value
 * inline instead of as a heap-allocated byte vector. `bits` holds the
 * little-endian value bytes; only the low `len` bytes are meaningful.
 */
struct ParamBlob
{
    u64 bits = 0;
    u8 len = 0;
};

/** Flatten one raw byte blob (must be <= 8 bytes). */
inline ParamBlob
makeParamBlob(const std::vector<u8> &bytes)
{
    MEDUSA_CHECK(bytes.size() <= sizeof(u64),
                 "launch parameter wider than 8 bytes");
    ParamBlob blob;
    blob.len = static_cast<u8>(bytes.size());
    std::memcpy(&blob.bits, bytes.data(), bytes.size());
    return blob;
}

/**
 * Borrowed view of one node's flattened parameters — the contiguous
 * slice of a GraphExec's (or patched image's) ParamBlob array. Cheap to
 * copy; valid only while the backing storage lives.
 */
class ParamView
{
  public:
    ParamView() = default;
    ParamView(const ParamBlob *blobs, std::size_t count)
        : blobs_(blobs), count_(count)
    {
    }

    std::size_t size() const { return count_; }

    const ParamBlob &
    at(std::size_t i) const
    {
        MEDUSA_CHECK(i < count_, "param index " << i << " out of range");
        return blobs_[i];
    }

    /** Byte width of the i-th parameter. */
    std::size_t sizeAt(std::size_t i) const { return at(i).len; }

    /** Copy the i-th parameter back out as an owned byte vector. */
    std::vector<u8>
    bytesAt(std::size_t i) const
    {
        const ParamBlob &blob = at(i);
        std::vector<u8> bytes(blob.len);
        std::memcpy(bytes.data(), &blob.bits, blob.len);
        return bytes;
    }

  private:
    const ParamBlob *blobs_ = nullptr;
    std::size_t count_ = 0;
};

/**
 * Builds a RawParams blob in call order. The helper is used by the
 * forward-pass builder ("host code"); Medusa never sees the types.
 */
class ParamsBuilder
{
  public:
    ParamsBuilder &
    ptr(DeviceAddr addr)
    {
        append(&addr, sizeof(addr));
        return *this;
    }

    ParamsBuilder &
    i32(i32 v)
    {
        append(&v, sizeof(v));
        return *this;
    }

    ParamsBuilder &
    i64(i64 v)
    {
        append(&v, sizeof(v));
        return *this;
    }

    ParamsBuilder &
    f32(f32 v)
    {
        append(&v, sizeof(v));
        return *this;
    }

    RawParams take() { return std::move(params_); }

  private:
    void
    append(const void *data, u64 n)
    {
        std::vector<u8> bytes(n);
        std::memcpy(bytes.data(), data, n);
        params_.push_back(std::move(bytes));
    }

    RawParams params_;
};

/**
 * Typed view over launch parameters, decoded according to a kernel's
 * signature. Works over either representation: owned byte vectors
 * (RawParams, the eager-launch path) or flattened inline blobs
 * (ParamView, the instantiated-graph path).
 */
class KernelArgs
{
  public:
    KernelArgs(const RawParams &raw, const std::vector<ParamKind> &kinds)
        : raw_(&raw), kinds_(kinds)
    {
    }

    KernelArgs(ParamView view, const std::vector<ParamKind> &kinds)
        : view_(view), kinds_(kinds)
    {
    }

    std::size_t size() const { return raw_ ? raw_->size() : view_.size(); }

    DeviceAddr
    ptrAt(std::size_t i) const
    {
        return readAs<DeviceAddr>(i, ParamKind::kPointer);
    }

    i32 i32At(std::size_t i) const { return readAs<i32>(i, ParamKind::kI32); }
    i64 i64At(std::size_t i) const { return readAs<i64>(i, ParamKind::kI64); }
    f32 f32At(std::size_t i) const { return readAs<f32>(i, ParamKind::kF32); }

  private:
    template <typename T>
    T
    readAs(std::size_t i, ParamKind kind) const
    {
        MEDUSA_CHECK(i < size(), "param index " << i << " out of range");
        MEDUSA_CHECK(kinds_.at(i) == kind,
                     "param " << i << " decoded with wrong kind");
        const std::size_t width = raw_ ? (*raw_)[i].size() : view_.sizeAt(i);
        MEDUSA_CHECK(width == sizeof(T),
                     "param " << i << " has " << width << " bytes, expected "
                              << sizeof(T));
        T v;
        if (raw_) {
            std::memcpy(&v, (*raw_)[i].data(), sizeof(T));
        } else {
            const u64 bits = view_.at(i).bits;
            std::memcpy(&v, &bits, sizeof(T));
        }
        return v;
    }

    const RawParams *raw_ = nullptr;
    ParamView view_;
    const std::vector<ParamKind> &kinds_;
};

/** Functional body of a kernel: computes over simulated device memory. */
using KernelFn =
    std::function<Status(DeviceMemoryManager &, const KernelArgs &)>;

/**
 * Static definition of a kernel: identity, module membership, symbol
 * visibility, signature and functional body.
 */
struct KernelDef
{
    /** Mangled name, e.g. "_ZN7simmath6rmsnormEv" or a cuBLAS-ish name. */
    std::string mangled_name;
    /** Module (and DSO) this kernel lives in, e.g. "libsimcublas.so". */
    std::string module_name;
    /**
     * Whether dlsym() can find this kernel in the DSO's symbol table.
     * Closed-source cuBLAS-like kernels are hidden (paper §5).
     */
    bool in_symbol_table = true;
    std::vector<ParamKind> params;
    /**
     * Per-parameter buffer access sets, parallel to @c params (kNone
     * for non-pointer parameters). Empty means unknown — a foreign
     * kernel the race analyzer must treat conservatively.
     */
    std::vector<ParamAccess> access;
    /**
     * True when the kernel dereferences pointer words stored INSIDE a
     * buffer (cublasGemmBatchedEx-style operand arrays): its effective
     * access set is not derivable from the parameters alone.
     */
    bool indirect_access = false;
    KernelFn fn;
};

/**
 * The global, process-independent table of kernel definitions. Real
 * kernels live in .so files on disk; their definitions do not change
 * between process launches — only their *addresses* do (module.h).
 */
class KernelRegistry
{
  public:
    /** The singleton registry with all built-in kernels registered. */
    static const KernelRegistry &instance();

    /** Register a kernel; returns its dense id. Name must be unique. */
    KernelId registerKernel(KernelDef def);

    const KernelDef &def(KernelId id) const { return defs_.at(id); }
    std::size_t kernelCount() const { return defs_.size(); }

    /** Lookup by mangled name; returns kInvalidKernel if absent. */
    KernelId findByName(const std::string &mangled_name) const;

    /** All kernel ids belonging to the given module. */
    std::vector<KernelId> kernelsInModule(const std::string &module) const;

    /** All distinct module names. */
    std::vector<std::string> moduleNames() const;

    /** True if any kernel is registered under this module name. */
    bool hasModule(const std::string &module) const;

    /**
     * The full symbol set of a module: every mangled name it defines,
     * optionally including dlsym-hidden kernels (reachable online only
     * via triggering-kernels + cuModuleEnumerateFunctions). Used by
     * medusa-lint's kernel-name-table completeness rules (MDL3xx).
     */
    std::vector<std::string>
    symbolsInModule(const std::string &module,
                    bool include_hidden = true) const;

    KernelRegistry() = default;

  private:
    std::vector<KernelDef> defs_;
};

/** Mutable accessor used only by builtin kernel registration. */
KernelRegistry &mutableRegistry();

} // namespace medusa::simcuda

#endif // MEDUSA_SIMCUDA_KERNEL_H
