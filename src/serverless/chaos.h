/**
 * @file
 * Deterministic cluster-level chaos for the serverless simulator
 * (DESIGN.md §16).
 *
 * Where common/fault.h injects failures into the *restore stack* (a
 * single cold start's operations), a ChaosPlan injects failures into
 * the *cluster*: whole nodes crash and recover, serving instances die
 * mid-request, the shared artifact store goes dark or gray-slow. The
 * plan is a schedule, not a hook set — from one seed it pre-generates
 * every crash time, victim draw and outage window before the
 * simulation starts, so a given (trace, plan, seed) replays
 * bit-identically run after run (cluster_equiv_test's chaos suite).
 *
 * Event semantics inside the fast engine (cluster_fast.cc):
 *
 *  - node crash: every instance on the node dies instantly; their
 *    in-flight requests are requeued (bounded by SloPolicy retries);
 *    the node's artifact residency is wiped, so affinity routing must
 *    re-fetch after recovery; the node's GPUs are unavailable until
 *    the recovery event.
 *  - instance crash: one live instance (seeded draw over the live
 *    set) dies mid-serving; same requeue rules.
 *  - store outage: artifact fetches started inside the window hang
 *    until the store recovers (the full remaining window is charged
 *    on top of the fetch).
 *  - gray failure: fetches inside the window complete but run
 *    `gray_slowdown` times slower — the partial-failure mode that
 *    health checks miss.
 *
 * Plans come from code, a compact spec, JSON, or the environment
 * (mirroring MEDUSA_FAULT_PLAN; shared machinery in
 * common/plan_spec.h):
 *
 *   MEDUSA_CHAOS_PLAN='node_mtbf=120;node_mttr=20;inst_mtbf=30'
 *   MEDUSA_CHAOS_PLAN='{"seed":7,"node_mtbf_sec":120,...}'
 *   MEDUSA_CHAOS_SEED=7
 *
 * Spec keys are the field names below without the `_sec` suffix:
 * `seed`, `node_mtbf`, `node_mttr`, `inst_mtbf`, `store_mtbf`,
 * `store_mttr`, `gray_mtbf`, `gray_mttr`, `gray_slowdown`, `horizon`.
 * A key may appear only once; unknown keys are errors listing the
 * valid set.
 */

#ifndef MEDUSA_SERVERLESS_CHAOS_H
#define MEDUSA_SERVERLESS_CHAOS_H

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace medusa::serverless {

/**
 * A deterministic cluster-failure schedule. All rates are mean times
 * between events across the whole cluster (exponentially distributed
 * gaps); 0 disables that failure class. Durations are exponential
 * with the given mean, floored at 1 ms.
 */
struct ChaosPlan
{
    u64 seed = 0xc4a05;

    /** Mean time between node crashes (whole cluster); 0 = off. */
    f64 node_mtbf_sec = 0;
    /** Mean node down time before recovery. */
    f64 node_mttr_sec = 10.0;

    /** Mean time between single-instance crashes; 0 = off. */
    f64 inst_mtbf_sec = 0;

    /** Mean time between artifact-store outages; 0 = off. */
    f64 store_mtbf_sec = 0;
    /** Mean outage duration. */
    f64 store_mttr_sec = 5.0;

    /** Mean time between gray-failure windows; 0 = off. */
    f64 gray_mtbf_sec = 0;
    /** Mean gray-window duration. */
    f64 gray_mttr_sec = 15.0;
    /** Fetch slowdown inside a gray window (>= 1). */
    f64 gray_slowdown = 4.0;

    /**
     * Schedule horizon: failures are generated on [0, horizon). 0
     * means "up to the trace's last arrival" — the simulator
     * substitutes the bound once it sees the trace.
     */
    f64 horizon_sec = 0;

    /** True if any failure class can ever fire. */
    bool enabled() const;

    /** Parse the compact spec form (see file comment). */
    static StatusOr<ChaosPlan> fromSpec(const std::string &spec);

    /** Parse the flat JSON-object form (field names as keys). */
    static StatusOr<ChaosPlan> fromJson(const std::string &json);

    /**
     * Build a plan from MEDUSA_CHAOS_PLAN (spec or JSON, picked by a
     * leading '{') with MEDUSA_CHAOS_SEED overriding the seed.
     * Returns nullopt when the variable is unset or empty.
     */
    static StatusOr<std::optional<ChaosPlan>> fromEnv();

    /** Render back to the compact spec form (logs and reports). */
    std::string toSpec() const;
};

/**
 * The process-wide plan from MEDUSA_CHAOS_PLAN, or null when unset,
 * empty, disabled, or malformed (the envFaultInjector() contract).
 * simulateCluster consults it when ClusterOptions::chaos is null, so
 * an exported plan chaos-hardens any simulation in the process — the
 * legacy engine excepted: it has no chaos support, so it ignores the
 * environment rather than aborting unrelated runs.
 */
const ChaosPlan *envChaosPlan();

/**
 * One scheduled failure. `end_sec` closes the affected window (node
 * recovery / store restoration); instance crashes are instantaneous
 * and leave it equal to `start_sec`. `draw` is a raw 64-bit value
 * fixed at schedule-build time; the simulator reduces it against
 * run-time state (e.g. victim = draw % live_instances) so the
 * schedule stays independent of how the cluster evolves.
 */
struct ChaosEvent
{
    enum class Kind : u8
    {
        kNodeCrash = 0,
        kInstanceCrash,
        kStoreOutage,
        kGrayWindow,
    };

    Kind kind = Kind::kNodeCrash;
    f64 start_sec = 0;
    f64 end_sec = 0;
    u64 draw = 0;
};

/**
 * Expand @p plan into the concrete, time-sorted failure schedule over
 * [0, horizon). Each failure class draws from its own SplitMix64-split
 * stream, so enabling one class never perturbs another's timeline.
 */
std::vector<ChaosEvent> buildChaosSchedule(const ChaosPlan &plan,
                                           f64 horizon_sec);

} // namespace medusa::serverless

#endif // MEDUSA_SERVERLESS_CHAOS_H
