#include "serverless/cluster_internal.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <set>
#include <string_view>

#include "serverless/event_sim.h"

namespace medusa::serverless {

namespace {

/** One in-flight request inside the simulation. */
struct SimRequest
{
    f64 arrival = 0;
    u32 prompt_tokens = 0;
    u32 output_tokens = 0;
    u32 generated = 0;
    f64 first_token_at = -1;
    f64 finished_at = -1;
};

/** One serving instance bound to a GPU. */
struct Instance
{
    enum class State { kColdStarting, kLive, kDead };

    State state = State::kColdStarting;
    /** Requests waiting for their prefill step on this instance. */
    std::deque<SimRequest *> prefill_queue;
    /** Requests in the decode phase. */
    std::vector<SimRequest *> running;
    bool stepping = false;
    /** Guards stale idle-timeout events. */
    u64 idle_epoch = 0;
    /** Hot spares never idle out (§2.4). */
    bool hot_spare = false;
    /** For GPU-seconds accounting. */
    f64 launched_at = 0;
    f64 died_at = -1;
    /** Deferred capture: batch-size buckets already captured. */
    std::set<std::size_t> warmed_buckets;

    u32
    load() const
    {
        return static_cast<u32>(prefill_queue.size() + running.size());
    }
};

/** The whole simulation state. */
class ClusterSim
{
  public:
    ClusterSim(const ClusterOptions &options,
               const ServingProfile &profile)
        : options_(options), profile_(profile),
          rec_([this]() { return units::secToNs(loop_.now()); }),
          trace_(options_.pipeline.trace != nullptr ? &rec_ : nullptr)
    {
    }

    TraceMetrics
    run(const std::vector<workload::Request> &trace)
    {
        // Stream cache events (cache.hit / cache.load) into the run's
        // timeline while we own the loop clock; detached at the end.
        const bool hooked_cache =
            trace_ != nullptr && options_.artifact_cache != nullptr;
        if (hooked_cache) {
            options_.artifact_cache->setTraceRecorder(trace_);
        }
        if (trace_ != nullptr) {
            rec_.setTrackName(0, "cluster");
            rec_.setTrackName(1, "requests");
        }
        // Pre-provisioned hot spares (§2.4): live from t=0, never
        // reclaimed, no cold start charged to requests.
        for (u32 i = 0;
             i < std::min(options_.hot_spares, options_.num_gpus); ++i) {
            auto inst = std::make_unique<Instance>();
            inst->state = Instance::State::kLive;
            inst->hot_spare = true;
            inst->launched_at = 0;
            instances_.push_back(std::move(inst));
            ++live_count_;
            peak_live_ = std::max(peak_live_, live_count_);
        }
        requests_.reserve(trace.size());
        for (const workload::Request &r : trace) {
            auto req = std::make_unique<SimRequest>();
            req->arrival = r.arrival_sec;
            req->prompt_tokens = r.prompt_tokens;
            req->output_tokens = std::max<u32>(r.output_tokens, 1);
            SimRequest *ptr = req.get();
            requests_.push_back(std::move(req));
            loop_.schedule(r.arrival_sec, [this, ptr]() {
                waiting_.push_back(ptr);
                dispatch();
            });
        }
        const f64 end = loop_.run();
        if (hooked_cache) {
            options_.artifact_cache->setTraceRecorder(nullptr);
        }

        TraceMetrics m;
        f64 first_arrival = trace.empty() ? 0 : trace.front().arrival_sec;
        f64 last_finish = first_arrival;
        for (const auto &req : requests_) {
            if (req->finished_at < 0) {
                continue; // should not happen; guards divide-by-zero
            }
            ++m.completed;
            m.ttft_sec.add(req->first_token_at - req->arrival);
            m.e2e_sec.add(req->finished_at - req->arrival);
            last_finish = std::max(last_finish, req->finished_at);
            if (trace_ != nullptr) {
                TraceEvent ev;
                ev.name = "request";
                ev.category = "request";
                ev.track = 1;
                ev.start_ns = units::secToNs(req->arrival);
                ev.dur_ns =
                    units::secToNs(req->finished_at - req->arrival);
                ev.args.emplace_back(
                    "ttft_sec",
                    std::to_string(req->first_token_at - req->arrival));
                trace_->append(std::move(ev));
            }
        }
        m.makespan_sec = std::max(last_finish - first_arrival, 1e-9);
        m.achieved_qps = static_cast<f64>(m.completed) / m.makespan_sec;
        for (const auto &inst : instances_) {
            const f64 death = inst->died_at >= 0 ? inst->died_at : end;
            m.gpu_seconds += std::max(0.0, death - inst->launched_at);
        }
        m.launch_sec = std::move(launch_sec_);
        m.instances_launched = instances_.size();
        m.peak_live_instances = peak_live_;
        m.sim_events = loop_.dispatched();
        metrics_.counter("cluster.completed").add(m.completed);
        metrics_.gauge("cluster.makespan_sec").set(m.makespan_sec);
        metrics_.gauge("cluster.achieved_qps").set(m.achieved_qps);
        metrics_.gauge("cluster.gpu_seconds").set(m.gpu_seconds);
        m.metrics = metrics_.snapshot();
        m.cold_starts = m.metrics.counterValue("cluster.cold_starts");
        m.artifact_loads =
            m.metrics.counterValue("cluster.artifact_loads");
        m.artifact_cache_hits =
            m.metrics.counterValue("cluster.artifact_cache_hits");
        m.restore_failures =
            m.metrics.counterValue("cluster.restore_failures");
        m.fallback_cold_starts =
            m.metrics.counterValue("cluster.fallback_cold_starts");
        m.retries = m.metrics.counterValue("cluster.retries");
        m.wasted_restore_sec =
            m.metrics.gaugeValue("cluster.wasted_restore_sec");
        if (options_.pipeline.trace != nullptr) {
            options_.pipeline.trace->appendAll(rec_.events());
            options_.pipeline.trace->setTrackName(0, "cluster");
            options_.pipeline.trace->setTrackName(1, "requests");
        }
        if (options_.pipeline.metrics != nullptr) {
            options_.pipeline.metrics->mergeFrom(m.metrics);
        }
        return m;
    }

  private:
    /** Assign waiting requests; scale up if demand exceeds capacity. */
    void
    dispatch()
    {
        // Feed live instances, packing onto the most-loaded one that
        // still has capacity (bin-packing lets lightly-used instances
        // drain and scale down during quiet phases).
        while (!waiting_.empty()) {
            Instance *best = nullptr;
            for (auto &inst : instances_) {
                if (inst->state != Instance::State::kLive ||
                    inst->load() >= options_.max_seqs_per_instance) {
                    continue;
                }
                if (best == nullptr || inst->load() > best->load()) {
                    best = inst.get();
                }
            }
            if (best == nullptr) {
                break;
            }
            SimRequest *req = waiting_.front();
            waiting_.pop_front();
            best->prefill_queue.push_back(req);
            ++best->idle_epoch; // cancels any pending idle reclaim
            if (!best->stepping) {
                startStep(best);
            }
        }

        // Autoscale: cold-start new instances for unserved demand that
        // pending cold starts will not absorb.
        u64 pending_capacity = 0;
        u32 busy_gpus = 0;
        for (const auto &inst : instances_) {
            if (inst->state == Instance::State::kColdStarting) {
                pending_capacity += options_.max_seqs_per_instance;
                ++busy_gpus;
            } else if (inst->state == Instance::State::kLive) {
                ++busy_gpus;
            }
        }
        while (waiting_.size() > pending_capacity &&
               busy_gpus < options_.num_gpus) {
            launchInstance();
            pending_capacity += options_.max_seqs_per_instance;
            ++busy_gpus;
        }
    }

    /** Pre-timed complete span at @p start_sec on the cluster track. */
    void
    traceLaunchSpan(std::string_view name, std::string_view category,
                    f64 start_sec, f64 dur_sec)
    {
        if (trace_ != nullptr) {
            trace_->complete(name, category, 0,
                             units::secToNs(start_sec),
                             units::secToNs(dur_sec));
        }
    }

    void
    launchInstance()
    {
        metrics_.counter("cluster.cold_starts").add(1);
        auto inst = std::make_unique<Instance>();
        inst->launched_at = loop_.now();
        Instance *ptr = inst.get();
        instances_.push_back(std::move(inst));
        const f64 t0 = loop_.now();
        // Artifact fetch: the first cold start on the node loads the
        // <GPU type, model> artifact; every later one shares the
        // resident copy and skips the fetch latency.
        f64 fetch_sec = 0;
        if (options_.artifact_cache != nullptr &&
            options_.artifact_loader) {
            bool hit = false;
            auto artifact = options_.artifact_cache->getOrLoad(
                options_.artifact_key, options_.artifact_loader, &hit);
            metrics_.counter("cluster.artifact_loads").add(1);
            if (artifact.isOk() && hit) {
                metrics_.counter("cluster.artifact_cache_hits").add(1);
            } else {
                fetch_sec = options_.artifact_miss_sec;
            }
        }
        // With a warm container pool, instance launch time equals the
        // loading phase (§7.5). Under fault injection the restore may
        // fail mid-flight: the time it burned before rolling back is
        // still charged, then the fallback policy decides between a
        // backoff+retry, the vanilla cold start, or instance death.
        f64 launch_delay = fetch_sec;
        bool comes_alive = true;
        FaultInjector *fault = options_.pipeline.fault;
        if (fault == nullptr) {
            traceLaunchSpan("restore.attempt", "restore",
                            t0 + launch_delay, profile_.cold_start_sec);
            launch_delay += profile_.cold_start_sec;
        } else {
            const core::FallbackPolicy &fb = options_.fallback;
            const u32 max_attempts =
                fb.mode == core::FallbackMode::kRetryThenVanilla
                    ? std::max<u32>(1, fb.max_attempts)
                    : 1;
            f64 backoff = fb.backoff_sec;
            bool restored = false;
            for (u32 attempt = 1; attempt <= max_attempts; ++attempt) {
                if (fault
                        ->check(FaultPoint::kClusterRestore,
                                "instance launch")
                        .isOk()) {
                    traceLaunchSpan("restore.attempt", "restore",
                                    t0 + launch_delay,
                                    profile_.cold_start_sec);
                    launch_delay += profile_.cold_start_sec;
                    restored = true;
                    break;
                }
                // The fault hit partway through the restore; the work
                // done so far is wasted and rolled back.
                const f64 wasted =
                    fault->drawFraction(FaultPoint::kClusterRestore) *
                    profile_.cold_start_sec;
                traceLaunchSpan("restore.attempt", "restore",
                                t0 + launch_delay, wasted);
                if (trace_ != nullptr) {
                    TraceEvent ev;
                    ev.name = "restore.attempt_failed";
                    ev.category = "restore";
                    ev.phase = TraceEvent::Phase::kInstant;
                    ev.start_ns =
                        units::secToNs(t0 + launch_delay + wasted);
                    trace_->append(std::move(ev));
                }
                launch_delay += wasted;
                metrics_.gauge("cluster.wasted_restore_sec").add(wasted);
                metrics_.counter("cluster.restore_failures").add(1);
                if (fb.mode == core::FallbackMode::kFail) {
                    comes_alive = false;
                    break;
                }
                if (attempt < max_attempts) {
                    metrics_.counter("cluster.retries").add(1);
                    launch_delay += backoff;
                    backoff *= fb.backoff_multiplier;
                }
            }
            if (!restored && comes_alive) {
                // Degrade to the classic profile+capture cold start on
                // the rolled-back (clean) process.
                metrics_.counter("cluster.fallback_cold_starts").add(1);
                const f64 vanilla =
                    options_.vanilla_cold_start_sec > 0
                        ? options_.vanilla_cold_start_sec
                        : profile_.cold_start_sec;
                traceLaunchSpan("fallback.vanilla_cold_start",
                                "fallback", t0 + launch_delay, vanilla);
                launch_delay += vanilla;
            }
        }
        launch_sec_.add(launch_delay);
        traceLaunchSpan("instance.launch", "cluster", t0, launch_delay);
        if (!comes_alive) {
            // kFail: the instance dies after the wasted restore time;
            // dispatch() sees the freed GPU and relaunches for any
            // still-unserved demand.
            loop_.scheduleAfter(launch_delay, [this, ptr]() {
                ptr->state = Instance::State::kDead;
                ptr->died_at = loop_.now();
                dispatch();
            });
            return;
        }
        loop_.scheduleAfter(launch_delay, [this, ptr]() {
            ptr->state = Instance::State::kLive;
            ++live_count_;
            peak_live_ = std::max(peak_live_, live_count_);
            dispatch();
            if (ptr->load() == 0) {
                armIdleTimeout(ptr);
            }
        });
    }

    void
    startStep(Instance *inst)
    {
        MEDUSA_CHECK(!inst->stepping, "instance already stepping");
        if (!inst->prefill_queue.empty()) {
            // Prefill step: batch admitted prompts up to the token
            // budget. Their first token is emitted at step completion.
            std::vector<SimRequest *> batch;
            u32 tokens = 0;
            while (!inst->prefill_queue.empty()) {
                SimRequest *req = inst->prefill_queue.front();
                if (!batch.empty() &&
                    tokens + req->prompt_tokens >
                        options_.max_batched_tokens) {
                    break;
                }
                tokens += req->prompt_tokens;
                batch.push_back(req);
                inst->prefill_queue.pop_front();
            }
            inst->stepping = true;
            const f64 step = profile_.prefill(tokens);
            loop_.scheduleAfter(step, [this, inst, batch]() {
                const f64 now = loop_.now();
                for (SimRequest *req : batch) {
                    req->first_token_at = now;
                    req->generated = 1;
                    if (req->generated >= req->output_tokens) {
                        req->finished_at = now;
                    } else {
                        inst->running.push_back(req);
                    }
                }
                finishStep(inst);
            });
            return;
        }
        if (!inst->running.empty()) {
            // Decode step over all running sequences.
            inst->stepping = true;
            const u32 bs = static_cast<u32>(inst->running.size());
            f64 step = profile_.decodeStep(bs);
            if (profile_.deferred_capture) {
                // §2.4: the first step at a new batch-size bucket pays
                // the lazy warm-up + capture.
                const std::size_t bucket = profile_.bucketIndex(bs);
                if (inst->warmed_buckets.insert(bucket).second) {
                    step += profile_.capturePenalty(bs);
                }
            }
            loop_.scheduleAfter(step, [this, inst]() {
                const f64 now = loop_.now();
                auto &running = inst->running;
                for (auto it = running.begin(); it != running.end();) {
                    SimRequest *req = *it;
                    ++req->generated;
                    if (req->generated >= req->output_tokens) {
                        req->finished_at = now;
                        it = running.erase(it);
                    } else {
                        ++it;
                    }
                }
                finishStep(inst);
            });
            return;
        }
        armIdleTimeout(inst);
    }

    void
    finishStep(Instance *inst)
    {
        inst->stepping = false;
        // Pull any globally waiting work before the next step. Note
        // that dispatch() may itself restart this instance's step loop
        // when it assigns new work.
        dispatch();
        if (inst->state != Instance::State::kLive || inst->stepping) {
            return;
        }
        if (inst->load() > 0) {
            startStep(inst);
        } else {
            armIdleTimeout(inst);
        }
    }

    void
    armIdleTimeout(Instance *inst)
    {
        if (inst->hot_spare) {
            return; // spares are provisioned for the whole run
        }
        const u64 epoch = ++inst->idle_epoch;
        loop_.scheduleAfter(options_.idle_timeout_sec,
                            [this, inst, epoch]() {
                                if (inst->state ==
                                        Instance::State::kLive &&
                                    inst->idle_epoch == epoch &&
                                    inst->load() == 0 &&
                                    !inst->stepping) {
                                    inst->state = Instance::State::kDead;
                                    inst->died_at = loop_.now();
                                    --live_count_;
                                }
                            });
    }

    ClusterOptions options_;
    const ServingProfile &profile_;
    EventLoop loop_;
    /** Run-local recorder on the event-loop clock (exported at end). */
    TraceRecorder rec_;
    /** &rec_ when the caller asked for tracing, else null (zero cost). */
    TraceRecorder *trace_ = nullptr;
    /** Canonical `cluster.*` counters; TraceMetrics is a view of it. */
    MetricsRegistry metrics_;
    std::vector<std::unique_ptr<SimRequest>> requests_;
    std::vector<std::unique_ptr<Instance>> instances_;
    std::deque<SimRequest *> waiting_;
    PercentileTracker launch_sec_;
    u64 live_count_ = 0;
    u64 peak_live_ = 0;
};

} // namespace

namespace detail {

TraceMetrics
simulateClusterLegacy(const ClusterOptions &options,
                      const ServingProfile &profile,
                      const std::vector<workload::Request> &trace)
{
    ClusterSim sim(options, profile);
    return sim.run(trace);
}

} // namespace detail

} // namespace medusa::serverless
