/**
 * @file
 * The serverless cluster simulator (§7.5's application-trace setup):
 * a pool of GPUs, serving instances with vLLM-style continuous
 * batching, an autoscaler that cold-starts new instances when demand
 * exceeds capacity, and idle scale-down.
 *
 * Instances run a step loop — prefill admitted requests (emitting their
 * first token: the TTFT event), otherwise decode all running sequences
 * — using the measured ServingProfile latencies. Cold starts take the
 * strategy's loading latency (runtime init is absorbed by the warm
 * container pool, as in the paper).
 */

#ifndef MEDUSA_SERVERLESS_CLUSTER_H
#define MEDUSA_SERVERLESS_CLUSTER_H

#include <string>
#include <vector>

#include "common/fault.h"
#include "common/pipeline_options.h"
#include "common/stats.h"
#include "medusa/artifact_cache.h"
#include "medusa/restore_options.h"
#include "serverless/chaos.h"
#include "serverless/profile.h"
#include "workload/trace.h"

namespace medusa::serverless {

/**
 * Which discrete-event core runs the simulation (DESIGN.md §15).
 * kFast is the zero-allocation EventEngine with struct-of-arrays
 * instance state — bit-identical results, orders of magnitude faster.
 * kLegacy is the original std::function EventLoop, kept for one
 * release as the equivalence oracle (cluster_equiv_test); it does not
 * support scheduler policies or multi-model traces.
 */
enum class SimEngine : u8
{
    kFast = 0,
    kLegacy,
};

/**
 * Scheduler policy for the cluster-scale placement study (fast engine
 * only). kBaseline is the paper's §7.5 autoscaler: scale up on demand,
 * reclaim after idle_timeout_sec. kKeepAlive adds a warm pool: a floor
 * of live instances is never reclaimed and idle instances linger
 * longer, trading GPU-seconds for fewer cold starts (the §2.4
 * trade-off, now measurable per policy). kAffinity routes instance
 * launches to nodes whose artifact store already holds the model —
 * ServerlessLLM-style startup-time-optimized placement / Tangram-style
 * memory-reuse affinity (PAPERS.md) — so a launch pays the artifact
 * fetch only on a true node miss.
 */
enum class SchedulerPolicy : u8
{
    kBaseline = 0,
    kKeepAlive,
    kAffinity,
};

/**
 * Service-level-objective policy (fast engine only; DESIGN.md §16).
 * Requests carry a TTFT deadline (workload::Request::ttft_deadline_sec,
 * with default_ttft_sec as the fallback); the scheduler treats the
 * deadline as a first-class dimension: it sheds work it cannot serve in
 * time instead of queueing it forever, bounds how often a crashed
 * request is retried, and prefers a degraded-but-on-time launch over a
 * fast-path launch that would blow the deadline.
 *
 * Every request still reaches exactly one terminal state — completed,
 * shed, or failed-after-retries — whatever mix of knobs is armed
 * (the request-conservation invariant, MEDUSA_CHECKed at end of run).
 */
struct SloPolicy
{
    /** TTFT deadline for requests without their own; 0 = none. */
    f64 default_ttft_sec = 0;
    /**
     * Shed a request at arrival when the projected queue delay (live
     * capacity, pending launches, store outages) already exceeds its
     * deadline — admission control instead of queueing doomed work.
     */
    bool admission_control = false;
    /** Shed a queued request the moment its deadline passes. */
    bool shed_on_deadline = false;
    /**
     * Crash-requeue budget: a request whose instance died is retried
     * at most this many times before it fails terminally.
     */
    u32 max_retries = 2;
    /** Delay before a requeued request re-enters (doubles per retry). */
    f64 retry_backoff_sec = 0.05;
    /**
     * During an artifact-store outage, launch via the vanilla cold
     * start when that is faster than waiting out the outage — trading
     * materialization's speedup for deadline attainment.
     */
    bool degrade_to_vanilla = false;

    /** True if any SLO behavior beyond crash-retry bounding is armed. */
    bool
    enabled() const
    {
        return default_ttft_sec > 0 || admission_control ||
               shed_on_deadline || degrade_to_vanilla;
    }
};

/**
 * Cluster and autoscaler configuration — the single request-path
 * options surface shared by the discrete-event simulator
 * (simulateCluster) and the serving control plane
 * (serve::ServeOptions embeds one of these verbatim). Knobs here are
 * never duplicated into serve-side structs; serve adds only
 * front-end concerns (socket, pacing, limits) on top.
 */
struct ClusterOptions
{
    /**
     * Measured engine latencies driving the step model (cold start,
     * prefill, decode, capture penalties). Required by
     * simulateCluster and serve::Server; must outlive the run.
     */
    const ServingProfile *profile = nullptr;
    /** GPUs available (the paper's trace platform has 4 A100s). */
    u32 num_gpus = 4;
    /** Max concurrently running sequences per instance. */
    u32 max_seqs_per_instance = 64;
    /** Max real tokens per prefill step (vLLM's batched-token budget). */
    u32 max_batched_tokens = 2048;
    /** Idle duration before an instance is reclaimed. */
    f64 idle_timeout_sec = 5.0;
    /**
     * §2.4 hot spares: instances pre-provisioned at t=0, always kept
     * alive. They eliminate their cold starts but occupy GPUs for the
     * whole run — the resource wastage the paper argues against.
     */
    u32 hot_spares = 0;
    /**
     * Process-wide artifact store consulted at every cold start. When
     * set (with artifact_key + artifact_loader), the first cold start
     * on the node loads the artifact — charging artifact_miss_sec on
     * top of the profile's cold start — and later ones share the
     * resident copy for free. Null leaves cold starts untouched.
     */
    core::ArtifactCache *artifact_cache = nullptr;
    /** Cache key for this cluster's <GPU type, model> artifact. */
    std::string artifact_key;
    /** Loads the artifact on a cache miss. */
    core::ArtifactCache::Loader artifact_loader;
    /** Extra cold-start latency charged on an artifact-cache miss. */
    f64 artifact_miss_sec = 0.0;
    /**
     * Shared pipeline knobs (DESIGN.md §12). The simulator consumes:
     *  - pipeline.fault: deterministic fault injection for instance
     *    launches (FaultPoint::kClusterRestore). When a launch's
     *    restore attempt fails, the fraction of the restore that ran
     *    before the fault is charged as wasted latency, the process
     *    rolls back, and the fallback policy decides what happens next.
     *    Null disables. Cluster-level failures (node/instance crashes,
     *    store outages, gray fetches) are NOT fault points — they come
     *    from the ChaosPlan below, which schedules them ahead of time
     *    instead of hooking individual operations.
     *  - pipeline.trace: receives the whole run's span stream —
     *    instance.launch / restore.attempt / fallback.vanilla_cold_start
     *    completes, cache.hit and restore.attempt_failed instants, one
     *    `request` complete per finished request, and — with chaos/SLO
     *    armed — chaos.* completes for failure windows plus slo.shed /
     *    slo.requeue instants.
     *  - pipeline.metrics: the run's `cluster.*` counters are merged
     *    in, including `cluster.chaos.*` / `cluster.slo.*` when armed.
     * The lint/validate knobs are inert here (nothing to lint in the
     * discrete-event model).
     */
    PipelineOptions pipeline;
    /** Degrade policy for failed restores (mirrors RestoreOptions). */
    core::FallbackPolicy fallback;
    /**
     * Loading latency of the classic profile+capture cold start,
     * charged when a launch degrades to vanilla. 0 means "as slow as
     * the profiled cold start" (the fallback buys no speedup).
     */
    f64 vanilla_cold_start_sec = 0.0;

    // ---- cluster-scale scheduling study (DESIGN.md §15) ----

    /** Event core; see SimEngine. */
    SimEngine engine = SimEngine::kFast;
    /** Placement / keep-alive policy; see SchedulerPolicy. */
    SchedulerPolicy policy = SchedulerPolicy::kBaseline;
    /**
     * kKeepAlive: never reclaim below this many live instances (the
     * warm pool floor), and use keep_alive_idle_sec (when >= 0) as the
     * idle timeout instead of idle_timeout_sec.
     */
    u32 keep_alive_instances = 0;
    f64 keep_alive_idle_sec = -1.0;
    /**
     * Distinct models served by the cluster (requests carry
     * workload::Request::model_id < num_models). An instance serves
     * exactly one model. num_models > 1 (or policy == kAffinity)
     * activates node-level artifact residency modeling below.
     */
    u32 num_models = 1;
    /** GPUs per node; nodes share an artifact store. */
    u32 gpus_per_node = 1;
    /**
     * Model artifacts resident per node before LRU eviction
     * (cluster.affinity_evictions counts evictions).
     */
    u32 node_artifact_slots = 1;
    /**
     * Extra launch latency when the node must fetch the model's
     * artifact (not resident). Warm-node launches skip it — the
     * latency gap the affinity policy exists to exploit.
     */
    f64 node_artifact_miss_sec = 0.0;

    // ---- chaos + SLO study (DESIGN.md §16, fast engine only) ----

    /**
     * Deterministic cluster-failure schedule; null or a disabled plan
     * leaves the simulation byte-identical to the fault-free run
     * (cluster_equiv_test pins this). Node crashes force node-level
     * modeling on (as if num_models > 1).
     */
    const ChaosPlan *chaos = nullptr;
    /** Deadline-aware scheduling; see SloPolicy. */
    SloPolicy slo;
};

/**
 * Simulation output. The scalar counters are a back-compat view: they
 * are materialized from the `cluster.*` names in @ref metrics, which is
 * the canonical record (and what ClusterOptions::pipeline.metrics
 * receives).
 */
struct TraceMetrics
{
    PercentileTracker ttft_sec;
    PercentileTracker e2e_sec;
    u64 completed = 0;
    u64 cold_starts = 0;
    /** Completed requests per second over the busy makespan. */
    f64 achieved_qps = 0;
    f64 makespan_sec = 0;
    /**
     * GPU occupancy cost: instance-lifetime seconds summed over all
     * instances (cold-start time included) — the pay-as-you-go bill.
     */
    f64 gpu_seconds = 0;
    /** Artifact fetches attempted by cold starts (0 without a cache). */
    u64 artifact_loads = 0;
    /** Fetches served from the resident artifact cache. */
    u64 artifact_cache_hits = 0;
    /** Restore attempts that failed and rolled back (fault injection). */
    u64 restore_failures = 0;
    /** Launches that degraded to the vanilla cold start. */
    u64 fallback_cold_starts = 0;
    /** Failed restore attempts that were retried with backoff. */
    u64 retries = 0;
    /** Latency burned in failed restore attempts (pre-rollback). */
    f64 wasted_restore_sec = 0;

    /**
     * Per-launch cold-start latency (fetch + restore + fallback) —
     * the distribution the scheduling study reports P50/P99 of.
     */
    PercentileTracker launch_sec;
    /** Instances ever created (autoscaled launches + hot spares). */
    u64 instances_launched = 0;
    /** High-water mark of concurrently live instances. */
    u64 peak_live_instances = 0;
    /**
     * Events the engine dispatched (arrivals included). NOT mirrored
     * into the metrics registry: the legacy loop fires stale idle
     * timers that the fast engine cancels outright, so the counts
     * legitimately differ between engines while every other output is
     * bit-identical. Benches divide by wall time for events/sec.
     */
    u64 sim_events = 0;

    // Policy counters (0 under kBaseline / the legacy engine):
    /** Assignments absorbed by instances a baseline would have killed. */
    u64 cold_pool_hits = 0;
    /** Instance-seconds spent idle beyond the baseline timeout. */
    f64 keep_alive_gpu_seconds = 0;
    /** Node artifact-store LRU evictions (affinity pressure). */
    u64 affinity_evictions = 0;
    /** Launches on a node with the model's artifact already resident. */
    u64 node_warm_launches = 0;
    /** Launches that had to fetch the artifact onto the node. */
    u64 node_artifact_fetches = 0;

    // Chaos counters (0 without an armed ChaosPlan); canonical names
    // are `cluster.chaos.*` in @ref metrics:
    /** Whole-node crash events that fired. */
    u64 node_crashes = 0;
    /** Node recoveries (crashes whose window closed inside the run). */
    u64 node_recoveries = 0;
    /** Instances killed (node-level and instance-level crashes). */
    u64 instance_crashes = 0;
    /** In-flight requests thrown back into the queue by a crash. */
    u64 requeued_requests = 0;
    /** Artifact-store outage windows that fired. */
    u64 store_outages = 0;
    /** Launch latency spent waiting out store outages. */
    f64 store_outage_delay_sec = 0;
    /** Gray-failure windows that fired. */
    u64 gray_windows = 0;
    /** Artifact fetches slowed by a gray window. */
    u64 gray_fetches = 0;
    /** Node-resident artifacts lost to node crashes. */
    u64 lost_residency = 0;

    // SLO counters (0 without an SloPolicy); canonical names are
    // `cluster.slo.*`. Request conservation: completed + shed_admission
    // + shed_deadline + failed_requests == trace size.
    /** Requests shed at arrival by admission control. */
    u64 shed_admission = 0;
    /** Queued requests shed when their deadline passed. */
    u64 shed_deadline = 0;
    /** Requests that exhausted their crash-retry budget. */
    u64 failed_requests = 0;
    /** Crash-requeue retries granted (distinct from restore retries). */
    u64 slo_retries = 0;
    /** Launches degraded to vanilla to dodge a store outage. */
    u64 degraded_launches = 0;
    /** Completed requests whose TTFT met their deadline. */
    u64 deadline_met = 0;
    /** Completed requests whose TTFT missed their deadline. */
    u64 deadline_missed = 0;
    /** Deadline-met completions per second over the busy makespan. */
    f64 goodput_qps = 0;

    /** The run's counters under their canonical `cluster.*` names. */
    MetricsSnapshot metrics;
};

/**
 * Replay a trace against a cluster running the profiled engine. The
 * one public entry point: options.engine selects the event core
 * (kFast is serve::Scheduler driven in sim mode; kLegacy the
 * equivalence oracle), options.profile must be set. Implemented in
 * src/serve/sim.cc on top of the extracted Scheduler.
 */
TraceMetrics simulateCluster(const ClusterOptions &options,
                             const std::vector<workload::Request> &trace);

} // namespace medusa::serverless

#endif // MEDUSA_SERVERLESS_CLUSTER_H
