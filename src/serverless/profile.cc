#include "serverless/profile.h"

#include <algorithm>

#include "medusa/restore.h"

namespace medusa::serverless {

namespace {

/** Piecewise-linear interpolation over sorted (x, y) samples. */
f64
interpolate(const std::vector<u32> &xs, const std::vector<f64> &ys, u32 x)
{
    MEDUSA_CHECK(!xs.empty() && xs.size() == ys.size(),
                 "empty interpolation table");
    if (x <= xs.front()) {
        return ys.front();
    }
    if (x >= xs.back()) {
        // Extrapolate linearly from the last segment.
        const std::size_t n = xs.size();
        if (n == 1) {
            return ys.back();
        }
        const f64 slope = (ys[n - 1] - ys[n - 2]) /
                          static_cast<f64>(xs[n - 1] - xs[n - 2]);
        return ys[n - 1] + slope * static_cast<f64>(x - xs[n - 1]);
    }
    for (std::size_t i = 1; i < xs.size(); ++i) {
        if (x <= xs[i]) {
            const f64 w = static_cast<f64>(x - xs[i - 1]) /
                          static_cast<f64>(xs[i] - xs[i - 1]);
            return ys[i - 1] + w * (ys[i] - ys[i - 1]);
        }
    }
    return ys.back();
}

} // namespace

f64
ServingProfile::decodeStep(u32 bs) const
{
    return interpolate(batch_sizes, decode_step_sec, std::max<u32>(bs, 1));
}

f64
ServingProfile::prefill(u32 n_tokens) const
{
    return interpolate(prefill_tokens, prefill_sec,
                       std::max<u32>(n_tokens, 1));
}

std::size_t
ServingProfile::bucketIndex(u32 bs) const
{
    for (std::size_t i = 0; i < batch_sizes.size(); ++i) {
        if (bs <= batch_sizes[i]) {
            return i;
        }
    }
    return batch_sizes.empty() ? 0 : batch_sizes.size() - 1;
}

f64
ServingProfile::capturePenalty(u32 bs) const
{
    if (!deferred_capture || capture_penalty_sec.empty()) {
        return 0;
    }
    return capture_penalty_sec.at(bucketIndex(bs));
}

StatusOr<ServingProfile>
buildServingProfile(const ProfileOptions &opts)
{
    ServingProfile profile;
    profile.model_name = opts.model.name;
    profile.strategy = opts.strategy;

    // ---- one real cold start under the strategy -------------------------
    std::unique_ptr<llm::BaselineEngine> baseline;
    std::unique_ptr<core::MedusaEngine> medusa;
    llm::ModelRuntime *rt = nullptr;
    if (opts.strategy == llm::Strategy::kMedusa) {
        if (opts.artifact == nullptr) {
            return invalidArgument(
                "Medusa profile requires a materialized artifact");
        }
        core::MedusaEngine::Options mopts;
        mopts.model = opts.model;
        mopts.aslr_seed = opts.aslr_seed;
        mopts.cost = opts.cost;
        mopts.warm_container = opts.warm_container;
        MEDUSA_ASSIGN_OR_RETURN(
            medusa, core::MedusaEngine::coldStart(mopts, *opts.artifact));
        profile.loading_sec = medusa->coldStartReport().times.loading;
        profile.cold_start_sec = medusa->coldStartReport().times.coldStart();
        rt = &medusa->runtime();
    } else {
        llm::BaselineEngine::Options bopts;
        bopts.model = opts.model;
        bopts.strategy = opts.strategy;
        bopts.aslr_seed = opts.aslr_seed;
        bopts.cost = opts.cost;
        bopts.warm_container = opts.warm_container;
        MEDUSA_ASSIGN_OR_RETURN(baseline,
                                llm::BaselineEngine::coldStart(bopts));
        profile.loading_sec = baseline->coldStartReport().times.loading;
        profile.cold_start_sec = baseline->coldStartReport().times.coldStart();
        rt = &baseline->runtime();
    }

    // ---- measure decode steps ----------------------------------------
    const bool graphs = opts.strategy != llm::Strategy::kNoCudaGraph;
    const bool deferred =
        opts.strategy == llm::Strategy::kDeferredCapture;
    profile.deferred_capture = deferred;
    for (u32 bs : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 192u, 256u}) {
        if (deferred) {
            // The lazily-paid warm-up + capture + instantiate of this
            // batch size (charged to the first serving step that needs
            // it — §2.4's "merely delays and disperses" cost).
            const f64 before = rt->clock().nowSec();
            MEDUSA_RETURN_IF_ERROR(rt->warmupDecode(bs));
            MEDUSA_ASSIGN_OR_RETURN(auto graph, rt->captureDecode(bs));
            MEDUSA_RETURN_IF_ERROR(rt->instantiateGraph(bs, graph));
            profile.capture_penalty_sec.push_back(rt->clock().nowSec() -
                                                  before);
        }
        MEDUSA_ASSIGN_OR_RETURN(f64 sec,
                                rt->measureDecodeStepSec(bs, graphs));
        profile.batch_sizes.push_back(bs);
        profile.decode_step_sec.push_back(sec);
    }

    // ---- measure prefill -------------------------------------------------
    for (u32 n : {32u, 161u, 512u, 1024u, 2048u}) {
        MEDUSA_ASSIGN_OR_RETURN(f64 sec, rt->measurePrefillSec(n));
        profile.prefill_tokens.push_back(n);
        profile.prefill_sec.push_back(sec);
    }
    return profile;
}

} // namespace medusa::serverless
