/**
 * @file
 * Serving profiles: the per-(model, strategy) latency numbers the
 * cluster simulator consumes.
 *
 * Rather than hand-writing analytic formulas, the profile is *measured*
 * from the functional engine on the virtual clock: one real cold start
 * under the strategy (Medusa restores from a materialized artifact),
 * then decode-step and prefill latencies sampled at several batch
 * sizes/token counts and interpolated.
 */

#ifndef MEDUSA_SERVERLESS_PROFILE_H
#define MEDUSA_SERVERLESS_PROFILE_H

#include <string>
#include <vector>

#include "llm/engine.h"
#include "medusa/artifact.h"

namespace medusa::serverless {

/** Measured serving latencies of one (model, strategy) pair. */
struct ServingProfile
{
    std::string model_name;
    llm::Strategy strategy = llm::Strategy::kVllm;

    /** Visible loading-phase latency (virtual seconds). */
    f64 loading_sec = 0;
    /** Full cold start (runtime init + loading). */
    f64 cold_start_sec = 0;

    /** Measured decode-step latencies at batch_sizes[i]. */
    std::vector<u32> batch_sizes;
    std::vector<f64> decode_step_sec;

    /** Measured prefill latencies at prefill_tokens[i] real tokens. */
    std::vector<u32> prefill_tokens;
    std::vector<f64> prefill_sec;

    /**
     * §2.4 deferred capture: the first decode step at each batch-size
     * bucket additionally pays warm-up + capture + instantiate.
     */
    bool deferred_capture = false;
    /** Per-bucket lazy-capture penalty (parallel to batch_sizes). */
    std::vector<f64> capture_penalty_sec;

    /** One decode step over bs running sequences (interpolated). */
    f64 decodeStep(u32 bs) const;

    /** The lazy-capture penalty for the bucket covering bs. */
    f64 capturePenalty(u32 bs) const;

    /** The batch-size bucket index covering bs (for warm tracking). */
    std::size_t bucketIndex(u32 bs) const;

    /** One prefill of n real tokens (interpolated). */
    f64 prefill(u32 n_tokens) const;
};

/** Profile construction options. */
struct ProfileOptions
{
    llm::ModelConfig model;
    llm::Strategy strategy = llm::Strategy::kVllm;
    const CostModel *cost = nullptr;
    /** Required when strategy == kMedusa. */
    const core::Artifact *artifact = nullptr;
    u64 aslr_seed = 21;
    /** Warm container pool (eliminates runtime init), as in §7.5. */
    bool warm_container = true;
};

/** Cold-start once and measure the serving latencies. */
StatusOr<ServingProfile> buildServingProfile(const ProfileOptions &opts);

} // namespace medusa::serverless

#endif // MEDUSA_SERVERLESS_PROFILE_H
