/**
 * @file
 * Engine-variant entry points behind the public simulateCluster()
 * facade. Internal: the only intended callers are the dispatcher in
 * src/serve/sim.cc and cluster_equiv_test, which pins the two
 * implementations bit-identical against each other.
 */

#ifndef MEDUSA_SERVERLESS_CLUSTER_INTERNAL_H
#define MEDUSA_SERVERLESS_CLUSTER_INTERNAL_H

#include "serverless/cluster.h"

namespace medusa::serverless::detail {

/** The std::function EventLoop implementation (cluster.cc). */
TraceMetrics
simulateClusterLegacy(const ClusterOptions &options,
                      const ServingProfile &profile,
                      const std::vector<workload::Request> &trace);

/**
 * The zero-allocation EventEngine implementation: serve::Scheduler
 * driven by the external-arrival-cursor sim loop (src/serve/sim.cc).
 */
TraceMetrics
simulateClusterFast(const ClusterOptions &options,
                    const ServingProfile &profile,
                    const std::vector<workload::Request> &trace);

} // namespace medusa::serverless::detail

#endif // MEDUSA_SERVERLESS_CLUSTER_INTERNAL_H
