/**
 * @file
 * The zero-allocation discrete-event engine behind the scaled cluster
 * simulator (DESIGN.md §15).
 *
 * The legacy EventLoop (event_sim.h) stores a std::function per event
 * inside a std::priority_queue: every schedule() may heap-allocate a
 * closure, every dispatch copies/moves a 48-byte element through the
 * sift, and cancellation is only possible by tombstoning (stale events
 * fire and no-op). At 10^7 events that overhead dominates the run.
 *
 * EventEngine replaces all of that with plain data:
 *
 *  - events are a POD payload (a typed tag + a few words, dispatched
 *    by `switch` in the caller's handler) stored in a slab with a
 *    LIFO free-list — steady-state scheduling allocates nothing;
 *  - the ready queue is an *indexed* 4-ary min-heap keyed by
 *    (time, seq): 4-ary halves the sift depth vs binary and keeps the
 *    hot path inside one cache line per level, and the slab's
 *    heap-position back-pointers give O(log n) cancel() and
 *    reschedule() (decrease-key) instead of tombstone closures;
 *  - handles carry a generation counter, so cancelling an event whose
 *    slot was already recycled is a safe no-op.
 *
 * Determinism contract: events fire in strictly non-decreasing time,
 * FIFO among equal times (seq order), exactly like the legacy loop —
 * the cluster equivalence suite (cluster_equiv_test) relies on it.
 */

#ifndef MEDUSA_SERVERLESS_EVENT_ENGINE_H
#define MEDUSA_SERVERLESS_EVENT_ENGINE_H

#include <vector>

#include "common/logging.h"
#include "common/types.h"

namespace medusa::serverless {

/**
 * A scheduled-event handle: slab slot + generation. Default-constructed
 * handles are invalid; handles of fired or cancelled events go stale
 * (their slot's generation moved on) and cancel() on them is a no-op.
 */
struct EventHandle
{
    static constexpr u32 kInvalidSlot = 0xffffffffu;

    u32 slot = kInvalidSlot;
    u32 gen = 0;

    bool valid() const { return slot != kInvalidSlot; }
};

/**
 * The engine, templated over the caller's POD payload (the typed event
 * tag + its arguments). See file comment.
 */
template <typename Payload>
class EventEngine
{
  public:
    /** Schedule @p payload at absolute virtual time @p at_sec (>= now). */
    EventHandle
    schedule(f64 at_sec, const Payload &payload)
    {
        MEDUSA_CHECK(at_sec >= now_ - 1e-12,
                     "event scheduled in the past");
        u32 slot;
        if (!free_.empty()) {
            slot = free_.back();
            free_.pop_back();
        } else {
            slot = static_cast<u32>(slots_.size());
            slots_.emplace_back();
        }
        Slot &s = slots_[slot];
        s.time = at_sec;
        s.seq = next_seq_++;
        s.payload = payload;
        s.heap_pos = static_cast<u32>(heap_.size());
        heap_.push_back(slot);
        siftUp(s.heap_pos);
        return EventHandle{slot, s.gen};
    }

    /** Schedule after a non-negative delay. */
    EventHandle
    scheduleAfter(f64 delay_sec, const Payload &payload)
    {
        return schedule(now_ + delay_sec, payload);
    }

    /**
     * Remove a pending event in O(log n). Returns false (and does
     * nothing) when the handle is stale — the event already fired, was
     * cancelled, or its slot was recycled.
     */
    bool
    cancel(EventHandle h)
    {
        if (!alive(h)) {
            return false;
        }
        removeAt(slots_[h.slot].heap_pos);
        release(h.slot);
        return true;
    }

    /**
     * Move a pending event to a new absolute time in O(log n),
     * preserving its seq (and hence its FIFO rank among equal times).
     * Returns false when the handle is stale.
     */
    bool
    reschedule(EventHandle h, f64 at_sec)
    {
        if (!alive(h)) {
            return false;
        }
        MEDUSA_CHECK(at_sec >= now_ - 1e-12,
                     "event rescheduled into the past");
        Slot &s = slots_[h.slot];
        const f64 old = s.time;
        s.time = at_sec;
        if (at_sec < old) {
            siftUp(s.heap_pos);
        } else {
            siftDown(s.heap_pos);
        }
        return true;
    }

    /** True when @p h names a still-pending event. */
    bool
    alive(EventHandle h) const
    {
        return h.slot < slots_.size() && slots_[h.slot].gen == h.gen &&
               slots_[h.slot].heap_pos != kNotQueued;
    }

    /**
     * Drain the queue: pop the minimum (time, seq) event, advance the
     * clock, recycle the slot, and hand the payload to @p fn — which may
     * schedule or cancel freely. Returns the final time.
     */
    template <typename Fn>
    f64
    run(Fn &&fn)
    {
        while (!heap_.empty()) {
            const u32 slot = heap_[0];
            Slot &s = slots_[slot];
            now_ = s.time;
            const Payload payload = s.payload;
            removeAt(0);
            release(slot);
            ++dispatched_;
            fn(payload);
        }
        return now_;
    }

    /**
     * Pop-and-dispatch a single event (callers that merge an external
     * sorted event source — e.g. a trace's arrival stream — into the
     * loop). Precondition: !empty().
     */
    template <typename Fn>
    void
    step(Fn &&fn)
    {
        MEDUSA_CHECK(!heap_.empty(), "step() on an empty engine");
        const u32 slot = heap_[0];
        Slot &s = slots_[slot];
        now_ = s.time;
        const Payload payload = s.payload;
        removeAt(0);
        release(slot);
        ++dispatched_;
        fn(payload);
    }

    /** Advance the clock without dispatching (external event sources). */
    void
    advanceTo(f64 at_sec)
    {
        MEDUSA_CHECK(at_sec >= now_ - 1e-12, "clock moved backwards");
        now_ = at_sec;
    }

    f64 now() const { return now_; }
    bool empty() const { return heap_.empty(); }
    std::size_t pending() const { return heap_.size(); }
    /** (time, seq) of the earliest pending event; empty() must be false. */
    f64 peekTime() const { return slots_[heap_[0]].time; }
    u64 peekSeq() const { return slots_[heap_[0]].seq; }
    /** Events dispatched so far (for events/sec accounting). */
    u64 dispatched() const { return dispatched_; }
    /** Slab capacity (high-water mark of concurrently pending events). */
    std::size_t slabSize() const { return slots_.size(); }

  private:
    static constexpr u32 kNotQueued = 0xffffffffu;

    struct Slot
    {
        f64 time = 0;
        u64 seq = 0;
        u32 gen = 0;
        u32 heap_pos = kNotQueued;
        Payload payload{};
    };

    /** Strict (time, seq) ordering between two queued slots. */
    bool
    before(u32 a, u32 b) const
    {
        const Slot &sa = slots_[a];
        const Slot &sb = slots_[b];
        if (sa.time != sb.time) {
            return sa.time < sb.time;
        }
        return sa.seq < sb.seq;
    }

    void
    place(u32 pos, u32 slot)
    {
        heap_[pos] = slot;
        slots_[slot].heap_pos = pos;
    }

    void
    siftUp(u32 pos)
    {
        const u32 slot = heap_[pos];
        while (pos > 0) {
            const u32 parent = (pos - 1) / 4;
            if (!before(slot, heap_[parent])) {
                break;
            }
            place(pos, heap_[parent]);
            pos = parent;
        }
        place(pos, slot);
    }

    void
    siftDown(u32 pos)
    {
        const u32 slot = heap_[pos];
        const u32 n = static_cast<u32>(heap_.size());
        for (;;) {
            const u32 first = pos * 4 + 1;
            if (first >= n) {
                break;
            }
            u32 best = first;
            const u32 last = first + 4 < n ? first + 4 : n;
            for (u32 c = first + 1; c < last; ++c) {
                if (before(heap_[c], heap_[best])) {
                    best = c;
                }
            }
            if (!before(heap_[best], slot)) {
                break;
            }
            place(pos, heap_[best]);
            pos = best;
        }
        place(pos, slot);
    }

    /** Detach the heap entry at @p pos (the slot stays allocated). */
    void
    removeAt(u32 pos)
    {
        const u32 slot = heap_[pos];
        const u32 last = heap_.back();
        heap_.pop_back();
        slots_[slot].heap_pos = kNotQueued;
        if (slot == last) {
            return;
        }
        place(pos, last);
        // The displaced element may need to travel either direction.
        siftUp(pos);
        siftDown(slots_[last].heap_pos);
    }

    /** Return a slot to the free list, invalidating outstanding handles. */
    void
    release(u32 slot)
    {
        ++slots_[slot].gen;
        free_.push_back(slot);
    }

    std::vector<Slot> slots_;
    std::vector<u32> heap_;
    std::vector<u32> free_;
    f64 now_ = 0;
    u64 next_seq_ = 0;
    u64 dispatched_ = 0;
};

} // namespace medusa::serverless

#endif // MEDUSA_SERVERLESS_EVENT_ENGINE_H
