#include "serverless/chaos.h"

#include <algorithm>
#include <array>
#include <cstdlib>

#include "common/plan_spec.h"
#include "common/rng.h"

namespace medusa::serverless {

namespace {

/** Spec/JSON key table; `spec_key` drops the `_sec` suffix. */
struct ChaosKey
{
    const char *spec_key;
    const char *json_key;
    f64 ChaosPlan::*field;
};

constexpr ChaosKey kChaosKeys[] = {
    {"node_mtbf", "node_mtbf_sec", &ChaosPlan::node_mtbf_sec},
    {"node_mttr", "node_mttr_sec", &ChaosPlan::node_mttr_sec},
    {"inst_mtbf", "inst_mtbf_sec", &ChaosPlan::inst_mtbf_sec},
    {"store_mtbf", "store_mtbf_sec", &ChaosPlan::store_mtbf_sec},
    {"store_mttr", "store_mttr_sec", &ChaosPlan::store_mttr_sec},
    {"gray_mtbf", "gray_mtbf_sec", &ChaosPlan::gray_mtbf_sec},
    {"gray_mttr", "gray_mttr_sec", &ChaosPlan::gray_mttr_sec},
    {"gray_slowdown", "gray_slowdown", &ChaosPlan::gray_slowdown},
    {"horizon", "horizon_sec", &ChaosPlan::horizon_sec},
};

constexpr std::size_t kChaosKeyCount =
    sizeof(kChaosKeys) / sizeof(kChaosKeys[0]);

std::string
validChaosKeys()
{
    std::string out = "seed";
    for (const ChaosKey &k : kChaosKeys) {
        out += ", ";
        out += k.spec_key;
    }
    return out;
}

Status
validatePlan(const ChaosPlan &plan)
{
    for (const ChaosKey &k : kChaosKeys) {
        if (plan.*(k.field) < 0) {
            return invalidArgument(std::string("chaos plan: ") +
                                   k.spec_key + " must be >= 0");
        }
    }
    if (plan.gray_slowdown < 1.0) {
        return invalidArgument("chaos plan: gray_slowdown must be >= 1");
    }
    return Status::ok();
}

} // namespace

bool
ChaosPlan::enabled() const
{
    return node_mtbf_sec > 0 || inst_mtbf_sec > 0 ||
           store_mtbf_sec > 0 || gray_mtbf_sec > 0;
}

StatusOr<ChaosPlan>
ChaosPlan::fromSpec(const std::string &spec)
{
    ChaosPlan plan;
    std::array<bool, kChaosKeyCount> seen{};
    bool seed_seen = false;
    for (const std::string &entry : splitSpecEntries(spec)) {
        const std::size_t eq = entry.find('=');
        if (eq == std::string::npos || eq == 0) {
            return invalidArgument("chaos spec: entry \"" + entry +
                                   "\" is not key=value");
        }
        const std::string key = entry.substr(0, eq);
        const char *begin = entry.c_str() + eq + 1;
        char *after = nullptr;
        if (key == "seed") {
            if (seed_seen) {
                return invalidArgument(
                    "chaos spec: duplicate key \"seed\"");
            }
            seed_seen = true;
            plan.seed = std::strtoull(begin, &after, 0);
            if (after == begin || *after != '\0') {
                return invalidArgument("chaos spec: bad seed in \"" +
                                       entry + "\"");
            }
            continue;
        }
        bool matched = false;
        for (std::size_t i = 0; i < kChaosKeyCount; ++i) {
            if (key != kChaosKeys[i].spec_key) {
                continue;
            }
            if (seen[i]) {
                return invalidArgument(
                    "chaos spec: duplicate key \"" + key + "\"");
            }
            seen[i] = true;
            plan.*(kChaosKeys[i].field) = std::strtod(begin, &after);
            if (after == begin || *after != '\0') {
                return invalidArgument("chaos spec: bad value in \"" +
                                       entry + "\"");
            }
            matched = true;
            break;
        }
        if (!matched) {
            return invalidArgument("chaos spec: unknown key \"" + key +
                                   "\" (valid: " + validChaosKeys() +
                                   ")");
        }
    }
    MEDUSA_RETURN_IF_ERROR(validatePlan(plan));
    return plan;
}

StatusOr<ChaosPlan>
ChaosPlan::fromJson(const std::string &json)
{
    ChaosPlan plan;
    std::array<bool, kChaosKeyCount> seen{};
    bool seed_seen = false;
    JsonScanner s(json);
    if (!s.consume('{')) {
        return invalidArgument("chaos json: expected top-level object");
    }
    bool first = true;
    while (!s.consume('}')) {
        if (!first && !s.consume(',')) {
            return invalidArgument("chaos json: expected , or }");
        }
        first = false;
        MEDUSA_ASSIGN_OR_RETURN(std::string key, s.string());
        if (!s.consume(':')) {
            return invalidArgument("chaos json: expected :");
        }
        MEDUSA_ASSIGN_OR_RETURN(f64 v, s.number());
        if (key == "seed") {
            if (seed_seen) {
                return invalidArgument(
                    "chaos json: duplicate key \"seed\"");
            }
            seed_seen = true;
            plan.seed = static_cast<u64>(v);
            continue;
        }
        bool matched = false;
        for (std::size_t i = 0; i < kChaosKeyCount; ++i) {
            if (key != kChaosKeys[i].json_key) {
                continue;
            }
            if (seen[i]) {
                return invalidArgument(
                    "chaos json: duplicate key \"" + key + "\"");
            }
            seen[i] = true;
            plan.*(kChaosKeys[i].field) = v;
            matched = true;
            break;
        }
        if (!matched) {
            return invalidArgument("chaos json: unknown key \"" + key +
                                   "\"");
        }
    }
    MEDUSA_RETURN_IF_ERROR(validatePlan(plan));
    return plan;
}

StatusOr<std::optional<ChaosPlan>>
ChaosPlan::fromEnv()
{
    const char *spec = std::getenv("MEDUSA_CHAOS_PLAN");
    if (spec == nullptr || spec[0] == '\0') {
        return std::optional<ChaosPlan>{};
    }
    const std::string text = spec;
    auto parsed = text.front() == '{' ? fromJson(text) : fromSpec(text);
    if (!parsed.isOk()) {
        return parsed.status();
    }
    ChaosPlan plan = std::move(parsed).value();
    if (const char *seed = std::getenv("MEDUSA_CHAOS_SEED");
        seed != nullptr && seed[0] != '\0') {
        plan.seed = std::strtoull(seed, nullptr, 0);
    }
    return std::optional<ChaosPlan>(plan);
}

std::string
ChaosPlan::toSpec() const
{
    std::string out = "seed=" + std::to_string(seed);
    const ChaosPlan defaults;
    for (const ChaosKey &k : kChaosKeys) {
        if (this->*(k.field) == defaults.*(k.field)) {
            continue;
        }
        out += ";";
        out += k.spec_key;
        out += "=" + std::to_string(this->*(k.field));
    }
    return out;
}

const ChaosPlan *
envChaosPlan()
{
    static const ChaosPlan *plan = []() -> const ChaosPlan * {
        auto parsed = ChaosPlan::fromEnv();
        if (!parsed.isOk() || !parsed->has_value() ||
            !(**parsed).enabled()) {
            return nullptr;
        }
        static const ChaosPlan instance = **parsed;
        return &instance;
    }();
    return plan;
}

std::vector<ChaosEvent>
buildChaosSchedule(const ChaosPlan &plan, f64 horizon_sec)
{
    // Floor on any failure window: a zero-length window would make
    // "now < window end" checks degenerate.
    constexpr f64 kMinWindowSec = 1e-3;

    std::vector<ChaosEvent> schedule;
    if (!plan.enabled() || horizon_sec <= 0) {
        return schedule;
    }

    // One independent stream per failure class, split from the plan
    // seed in kind order — the same scheme FaultInjector uses for its
    // per-point streams.
    SplitMix64 sm(plan.seed);
    Rng node_rng(sm.next());
    Rng inst_rng(sm.next());
    Rng store_rng(sm.next());
    Rng gray_rng(sm.next());

    const auto window_class =
        [&](ChaosEvent::Kind kind, Rng &rng, f64 mtbf, f64 mttr,
            bool with_draw) {
            if (mtbf <= 0) {
                return;
            }
            f64 t = 0;
            for (;;) {
                t += rng.nextExponential(1.0 / mtbf);
                if (t >= horizon_sec) {
                    break;
                }
                ChaosEvent ev;
                ev.kind = kind;
                ev.start_sec = t;
                ev.end_sec =
                    kind == ChaosEvent::Kind::kInstanceCrash
                        ? t
                        : t + std::max(rng.nextExponential(1.0 / mttr),
                                       kMinWindowSec);
                ev.draw = with_draw ? rng.nextU64() : 0;
                schedule.push_back(ev);
            }
        };

    window_class(ChaosEvent::Kind::kNodeCrash, node_rng,
                 plan.node_mtbf_sec,
                 std::max(plan.node_mttr_sec, kMinWindowSec),
                 /*with_draw=*/true);
    window_class(ChaosEvent::Kind::kInstanceCrash, inst_rng,
                 plan.inst_mtbf_sec, 0, /*with_draw=*/true);
    window_class(ChaosEvent::Kind::kStoreOutage, store_rng,
                 plan.store_mtbf_sec,
                 std::max(plan.store_mttr_sec, kMinWindowSec),
                 /*with_draw=*/false);
    window_class(ChaosEvent::Kind::kGrayWindow, gray_rng,
                 plan.gray_mtbf_sec,
                 std::max(plan.gray_mttr_sec, kMinWindowSec),
                 /*with_draw=*/false);

    // Merge the per-class timelines; ties resolve by kind order so the
    // schedule is a pure function of (plan, horizon).
    std::stable_sort(schedule.begin(), schedule.end(),
                     [](const ChaosEvent &a, const ChaosEvent &b) {
                         if (a.start_sec != b.start_sec) {
                             return a.start_sec < b.start_sec;
                         }
                         return static_cast<u8>(a.kind) <
                                static_cast<u8>(b.kind);
                     });
    return schedule;
}

} // namespace medusa::serverless
