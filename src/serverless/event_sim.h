/**
 * @file
 * A minimal discrete-event simulation loop for the serverless cluster.
 */

#ifndef MEDUSA_SERVERLESS_EVENT_SIM_H
#define MEDUSA_SERVERLESS_EVENT_SIM_H

#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/types.h"

namespace medusa::serverless {

/**
 * Priority-queue event loop over virtual seconds. Events scheduled at
 * the same time fire in scheduling order (stable).
 */
class EventLoop
{
  public:
    using Handler = std::function<void()>;

    /** Schedule @p fn at absolute virtual time @p at_sec (>= now). */
    void
    schedule(f64 at_sec, Handler fn)
    {
        MEDUSA_CHECK(at_sec >= now_ - 1e-12,
                     "event scheduled in the past");
        queue_.push(Event{at_sec, next_seq_++, std::move(fn)});
    }

    /** Schedule @p fn after a non-negative delay. */
    void
    scheduleAfter(f64 delay_sec, Handler fn)
    {
        schedule(now_ + delay_sec, std::move(fn));
    }

    /** Run until the queue drains. Returns the final time. */
    f64
    run()
    {
        while (!queue_.empty()) {
            // Move the handler out of the queue: top() is const, but the
            // element is about to be popped, so stealing its closure
            // (instead of copying the std::function and its captures on
            // every dispatch) is safe.
            Event ev = std::move(const_cast<Event &>(queue_.top()));
            queue_.pop();
            now_ = ev.time;
            ++dispatched_;
            ev.fn();
        }
        return now_;
    }

    f64 now() const { return now_; }
    bool empty() const { return queue_.empty(); }
    /** Events dispatched so far (for events/sec accounting). */
    u64 dispatched() const { return dispatched_; }

  private:
    struct Event
    {
        f64 time;
        u64 seq;
        Handler fn;

        bool
        operator>(const Event &other) const
        {
            if (time != other.time) {
                return time > other.time;
            }
            return seq > other.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>>
        queue_;
    f64 now_ = 0;
    u64 next_seq_ = 0;
    u64 dispatched_ = 0;
};

} // namespace medusa::serverless

#endif // MEDUSA_SERVERLESS_EVENT_SIM_H
