/**
 * @file
 * The virtual-time cost model for the simulated GPU stack.
 *
 * Every operation in the simulator (kernel launches, kernel execution,
 * memory transfers, module loading, graph capture/instantiate/replay,
 * Medusa restoration steps) advances the SimClock by a cost computed
 * here. Constants are calibrated against the per-stage seconds the paper
 * publishes for Qwen1.5 4B in Figure 8 (see
 * EXPERIMENTS.md); the *structure* of the model — per-kernel CPU launch
 * overhead vs a single graph launch, bandwidth-bound decode, flops-bound
 * prefill — is what reproduces the paper's latency shapes.
 */

#ifndef MEDUSA_SIMTIME_COST_MODEL_H
#define MEDUSA_SIMTIME_COST_MODEL_H

#include "common/types.h"

namespace medusa {

/**
 * Logical work metadata attached to a kernel launch. Functional buffers
 * in the simulator are scaled down; timing is computed from the *logical*
 * (real-model) work volume recorded here.
 */
struct TimingInfo
{
    /** Floating-point operations the kernel would perform on the GPU. */
    f64 flops = 0;
    /** Bytes the kernel would move to/from HBM. */
    f64 bytes = 0;
};

/**
 * Tunable constants of the simulated platform (A100-40GB-like device,
 * Optane-SSD-array-like storage). See DESIGN.md §2 for the substitution
 * rationale.
 */
struct CostModel
{
    // ---- CPU-side launch path -------------------------------------
    /** CPU cost to launch one kernel eagerly (microseconds): the
     *  framework-level (PyTorch dispatcher + Python) per-op overhead
     *  that CUDA graphs eliminate (§2.2). */
    f64 kernel_launch_us = 20.0;
    /** CPU cost to record one node during stream capture. */
    f64 capture_record_us = 6.0;
    /** Per-node cost of cudaGraphInstantiate(). */
    f64 graph_instantiate_per_node_us = 4.0;
    /** CPU cost to launch one whole graph. */
    f64 graph_launch_us = 25.0;
    /** GPU-side per-node dispatch inside a graph replay. */
    f64 graph_node_dispatch_us = 0.5;

    // ---- GPU execution ---------------------------------------------
    /** Peak dense fp16 throughput (TFLOP/s). */
    f64 gpu_tflops = 280.0;
    /** Efficiency factor for graph / steady-state execution. */
    f64 steady_efficiency = 0.55;
    /**
     * The KV-init *profiling* forwarding is slower than a steady-state
     * prefill: a large fixed part (device syncs, mem_get_info, dummy
     * cache setup, framework bookkeeping) plus a mild multiplicative
     * slowdown on the forwarding itself (cold kernels at the maximum
     * batch). Calibrated against Figure 8's 0.50 s KV-init stage for
     * Qwen1.5 4B; the affine shape also reproduces Figure 2's finding
     * that only ~6 of 10 models have an async bubble.
     */
    f64 kv_profile_fixed_ms = 310.0;
    f64 kv_profile_slowdown = 1.45;
    /** HBM bandwidth (GB/s). */
    f64 gpu_membw_gbps = 1400.0;
    /** Fixed floor per kernel execution (microseconds). */
    f64 kernel_min_exec_us = 5.0;

    // ---- Transfers ---------------------------------------------------
    /** Aggregate SSD read bandwidth (GB/s). */
    f64 ssd_read_gbps = 20.5;
    /** Host-to-device copy bandwidth (GB/s). */
    f64 pcie_gbps = 24.0;
    /**
     * Slowdown multiplier applied to weight copies while a profiling
     * forwarding runs concurrently (the mutual interference the paper
     * measures with Nsight in §7.3).
     */
    f64 weights_profiling_interference = 1.21;

    // ---- Driver operations -------------------------------------------
    /** cudaMalloc() driver cost (microseconds). */
    f64 cuda_malloc_us = 10.0;
    /** cudaFree() driver cost (microseconds). */
    f64 cuda_free_us = 6.0;
    /** Caching-allocator hit (no driver call). */
    f64 cached_alloc_us = 1.2;
    /** First-time module load (milliseconds). */
    f64 module_load_ms = 2.5;
    /** CUDA context creation (milliseconds); part of structure init. */
    f64 cuda_context_init_ms = 280.0;
    /** Stream/device synchronize overhead (microseconds). */
    f64 sync_us = 12.0;

    // ---- Loading-phase stages -----------------------------------------
    /** Host-side structure setup per weight tensor (microseconds). */
    f64 struct_init_per_tensor_us = 2000.0;
    /** Tokenizer load cost per vocabulary entry (nanoseconds). */
    f64 tokenizer_per_entry_ns = 1380.0;
    /** Fixed tokenizer load cost (milliseconds). */
    f64 tokenizer_fixed_ms = 2.0;
    /** KV cache block-pool carving cost per GiB reserved (ms). */
    f64 kv_block_alloc_per_gib_ms = 0.55;
    /** Fixed KV-init bookkeeping cost (milliseconds). */
    f64 kv_init_fixed_ms = 6.0;

    // ---- Medusa restoration ------------------------------------------
    /** Artifact deserialization bandwidth (GB/s, from page cache/SSD). */
    f64 artifact_read_gbps = 8.0;
    /** Per-node cost to patch parameters + add node to graph (us). */
    f64 restore_per_node_us = 24.0;
    /** Per-allocation cost when replaying the allocation sequence (us). */
    f64 restore_replay_alloc_us = 1.6;
    /**
     * Per-relocation cost of the v6 in-place patch pass (us): one table
     * lookup + one 8-byte store on the mapped image. Orders of magnitude
     * below restore_per_node_us — the point of patching over rebuilding.
     */
    f64 restore_reloc_us = 0.04;
    /** Per-kernel cost to match a name during module enumeration (us). */
    f64 kernel_name_match_us = 0.8;
    /** Offline analysis cost per (node, trace-window) unit (us). */
    f64 analysis_per_node_us = 1500.0;
    /** Offline per-node cost of saving captured graph state (us). */
    f64 offline_save_per_node_us = 450.0;
    /**
     * Fraction of the online capture/restore stage that can overlap the
     * weights loading: the artifact prefetch and first-layer warm-up
     * proceed while weight copies saturate the PCIe link, but graph
     * patching and instantiation contend with the loader thread.
     * Matches the partial overlap visible in Figure 8(c).
     */
    f64 restore_overlap_fraction = 0.25;

    // ---- Serverless platform -----------------------------------------
    /** Runtime-initialization phase with a cold container (ms). */
    f64 runtime_init_cold_ms = 820.0;
    /** Runtime-initialization with a warm container pool (ms). */
    f64 runtime_init_warm_ms = 0.0;

    /** Kernel execution time given logical work; see class comment. */
    SimTimeNs
    kernelExecTime(const TimingInfo &t, f64 efficiency) const
    {
        const f64 flop_us = t.flops / (gpu_tflops * efficiency * 1e6);
        const f64 mem_us = t.bytes / (gpu_membw_gbps * 1e3);
        const f64 us = kernel_min_exec_us + (flop_us > mem_us ? flop_us
                                                              : mem_us);
        return units::usToNs(us);
    }

    /** Time to read @p bytes from the simulated SSD array. */
    SimTimeNs
    ssdReadTime(f64 bytes) const
    {
        return units::usToNs(bytes / (ssd_read_gbps * 1e3));
    }

    /** Time to copy @p bytes host-to-device. */
    SimTimeNs
    pcieCopyTime(f64 bytes) const
    {
        return units::usToNs(bytes / (pcie_gbps * 1e3));
    }
};

} // namespace medusa

#endif // MEDUSA_SIMTIME_COST_MODEL_H
