#include "medusa/offline.h"

#include <algorithm>

#include "medusa/lint/lint.h"
#include "medusa/record.h"
#include "medusa/restore.h"

namespace medusa::core {

using llm::ModelRuntime;
using simcuda::CudaGraph;

StatusOr<OfflineResult>
materialize(const OfflineOptions &opts)
{
    OfflineResult result;

    // ---- capturing stage -----------------------------------------------
    Recorder recorder;
    ModelRuntime::Options ropts;
    ropts.model = opts.model;
    ropts.aslr_seed = opts.aslr_seed;
    ropts.cost = opts.cost;
    ropts.observer = &recorder;
    ropts.alloc_observer = &recorder;
    ropts.launch_observer = &recorder;
    ModelRuntime rt(ropts);
    const CostModel &cost = rt.process().cost();
    SimClock &clock = rt.clock();
    llm::StageTimes &t = result.capture_cold_start;

    TraceRecorder rec(&clock);
    f64 mark = clock.nowSec();
    auto lap = [&clock, &mark]() {
        const f64 now = clock.nowSec();
        const f64 d = now - mark;
        mark = now;
        return d;
    };

    Span capture_span(&rec, "offline.capture_stage", "offline");
    {
        Span s(&rec, "cold_start.struct_init", "stage");
        MEDUSA_RETURN_IF_ERROR(rt.initStructure());
    }
    recorder.markOrganicBoundary();
    t.struct_init = lap();

    {
        Span s(&rec, "cold_start.weights", "stage");
        MEDUSA_RETURN_IF_ERROR(rt.loadWeights());
    }
    t.weights = lap();

    {
        Span s(&rec, "cold_start.tokenizer", "stage");
        MEDUSA_RETURN_IF_ERROR(rt.loadTokenizer());
    }
    t.tokenizer = lap();

    Span kv_span(&rec, "cold_start.kv_init", "stage");
    MEDUSA_ASSIGN_OR_RETURN(u64 free_bytes, rt.profileFreeMemory());
    MEDUSA_RETURN_IF_ERROR(rt.initKvCache(free_bytes));
    kv_span.end();
    t.kv_init = lap();

    Span cap_span(&rec, "cold_start.capture", "stage");
    recorder.markCaptureStageBegin();
    std::vector<std::pair<u32, CudaGraph>> graphs;
    auto sizes = llm::captureBatchSizes();
    std::sort(sizes.begin(), sizes.end(), std::greater<>());
    u64 total_nodes = 0;
    for (u32 bs : sizes) {
        MEDUSA_RETURN_IF_ERROR(rt.warmupDecode(bs));
        recorder.beginGraph(bs);
        auto graph = rt.captureDecode(bs);
        recorder.endGraph();
        if (!graph.isOk()) {
            return graph.status();
        }
        total_nodes += graph->nodeCount();
        graphs.emplace_back(bs, std::move(graph).value());
    }
    cap_span.end();
    t.capture = lap();
    t.loading = t.serialSum();
    // Saving the captured graph state is part of the capturing stage.
    {
        Span s(&rec, "offline.save", "offline");
        clock.advance(units::usToNs(cost.offline_save_per_node_us *
                                    static_cast<f64>(total_nodes)));
    }
    mark = clock.nowSec();
    capture_span.end();
    result.capture_stage_sec = clock.nowSec();

    // ---- analysis stage -----------------------------------------------
    Span analysis_span(&rec, "offline.analysis_stage", "offline");
    MEDUSA_ASSIGN_OR_RETURN(
        AnalysisResult analysis,
        analyze(recorder, rt.process(), opts.model.name,
                opts.model.seed, graphs, free_bytes, opts.analyze));
    analysis_span.end();
    result.analysis_stage_sec = clock.nowSec() - result.capture_stage_sec;
    result.artifact = std::move(analysis.artifact);

    // ---- validation dry-run + repair loop -------------------------------
    if (opts.pipeline.validate) {
        MedusaEngine::Options vopts;
        vopts.model = opts.model;
        vopts.aslr_seed = opts.aslr_seed + 7777;
        vopts.cost = opts.cost;
        vopts.restore.pipeline.validate = true;
        vopts.restore.pipeline.validate_batch_sizes =
            opts.pipeline.validate_batch_sizes;

        std::size_t next_repair = 0;
        for (u32 attempt = 0;; ++attempt) {
            auto engine = MedusaEngine::coldStart(vopts, result.artifact);
            if (engine.isOk()) {
                result.validation_sec +=
                    (*engine)->runtime().clock().nowSec();
                break;
            }
            if (attempt >= opts.max_repair_attempts ||
                next_repair >= analysis.risky_params.size()) {
                return Status(engine.status().code(),
                              "offline validation failed beyond repair: " +
                                  engine.status().message());
            }
            // Demote the next risky pointer classification to a
            // constant, restoring the original captured bytes.
            const ParamRef ref = analysis.risky_params[next_repair++];
            const CudaGraph *graph = nullptr;
            for (const auto &[bs, g] : graphs) {
                if (bs == ref.batch_size) {
                    graph = &g;
                    break;
                }
            }
            MEDUSA_CHECK(graph != nullptr, "risky param in unknown graph");
            GraphBlueprint *bp = nullptr;
            for (auto &g : result.artifact.graphs) {
                if (g.batch_size == ref.batch_size) {
                    bp = &g;
                    break;
                }
            }
            MEDUSA_CHECK(bp != nullptr, "blueprint missing for repair");
            ParamSpec &spec = bp->nodes.at(ref.node).params.at(ref.param);
            spec.kind = ParamSpec::kConstant;
            spec.constant_bytes =
                graph->node(ref.node).params.at(ref.param);
            ++result.artifact.stats.validation_repairs;
        }
        // The dry-run executes on a fresh process with its own clock;
        // charge it as a pre-timed span at the materializer's clock.
        rec.complete("offline.validation", "offline", 0, clock.now(),
                     units::secToNs(result.validation_sec));
    }

    // ---- static lint gate -----------------------------------------------
    // Unlike the dry-run above this executes nothing: it proves
    // replay-safety properties of the (possibly repaired) artifact
    // directly, using the raw trace for exact per-launch liveness.
    if (opts.pipeline.lint) {
        lint::LintOptions lopts;
        lopts.trace = &recorder;
        const lint::LintReport report =
            lint::lintArtifact(result.artifact, lopts);
        if (!report.replaySafe()) {
            return validationFailure("artifact failed lint: " +
                                     report.firstError());
        }
    }

    // ---- v6 image emission ----------------------------------------------
    // Flatten the (repaired, linted) artifact into the
    // relocation-patchable image, embedding the merges the capture
    // stage's tokenizer learned — the online patch path rebuilds the
    // tokenizer from them instead of re-training.
    {
        Span s(&rec, "offline.emit_image", "offline");
        // With pipeline.lint on, emission re-verifies its own output:
        // the freshly emitted bytes are decoded and run through the
        // MDL7xx/MDL8xx image rules (with the raw trace for MDL803)
        // before the image can be cached or shipped.
        ImageBuildOptions image_options;
        image_options.lint = opts.pipeline.lint;
        image_options.trace = &recorder;
        MEDUSA_ASSIGN_OR_RETURN(
            result.image_bytes,
            buildImageBytes(result.artifact, rt.tokenizer().merges(),
                            image_options));
        s.arg("bytes", std::to_string(result.image_bytes.size()));
    }

    result.spans = rec.events();
    if (opts.pipeline.trace != nullptr) {
        opts.pipeline.trace->appendAll(result.spans);
    }
    if (opts.pipeline.metrics != nullptr) {
        result.artifact.stats.publishTo(*opts.pipeline.metrics);
    }
    return result;
}

} // namespace medusa::core
