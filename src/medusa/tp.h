/**
 * @file
 * Medusa for tensor-parallel serving — the paper's §8 future work:
 * "constructing the indirect index pointer table across multiple GPU
 * instances".
 *
 * Offline, each rank runs its own recorder through the capturing-stage
 * cold start (per-rank allocation sequences, per-rank graphs with
 * all-reduce collective nodes) and the analysis produces one artifact
 * per rank. Online, every rank replays its own allocation sequence,
 * patches its own graphs and restores kernel addresses in its own
 * process; the restored graphs are validated by lockstep replay against
 * a reference capture.
 */

#ifndef MEDUSA_MEDUSA_TP_H
#define MEDUSA_MEDUSA_TP_H

#include <memory>
#include <vector>

#include "llm/tensor_parallel.h"
#include "medusa/artifact.h"
#include "medusa/replay.h"
#include "medusa/restore_options.h"

namespace medusa::core {

/** Offline-phase options for a tensor-parallel deployment. */
struct TpOfflineOptions
{
    llm::ModelConfig model;
    u32 world = 2;
    /** Batch sizes to capture (the full 35 by default). */
    std::vector<u32> batch_sizes;
    u64 aslr_seed = 1;
    const CostModel *cost = nullptr;
};

/** One artifact per rank plus offline-phase timings. */
struct TpOfflineResult
{
    std::vector<Artifact> rank_artifacts;
    /**
     * One serialized v6 image per rank (DESIGN.md §13): each rank's
     * artifact flattened for the relocation-patch restore path, with
     * that rank's tokenizer merges embedded.
     */
    std::vector<std::vector<u8>> rank_images;
    f64 capture_stage_sec = 0;
    f64 analysis_stage_sec = 0;

    f64 totalOffline() const
    {
        return capture_stage_sec + analysis_stage_sec;
    }
};

/** Run the tensor-parallel offline phase. */
StatusOr<TpOfflineResult> materializeTp(const TpOfflineOptions &opts);

/**
 * A tensor-parallel serving cluster cold-started through Medusa's
 * online phase on every rank.
 */
class TpMedusaEngine
{
  public:
    struct Options
    {
        llm::ModelConfig model;
        u32 world = 2;
        u64 aslr_seed = 7;
        const CostModel *cost = nullptr;
        RestoreOptions restore;
    };

    /** Restore every rank from its artifact. */
    static StatusOr<std::unique_ptr<TpMedusaEngine>>
    coldStart(const Options &opts,
              const std::vector<Artifact> &rank_artifacts);

    llm::TpCluster &cluster() { return *cluster_; }

    /**
     * The consolidated whole-cluster report: shared attempt accounting,
     * counters summed over ranks, per-rank spans on track = rank, and
     * times.loading = the slowest rank's visible loading latency
     * (DESIGN.md §12).
     */
    const ColdStartReport &coldStartReport() const { return report_; }

    /**
     * Genuinely per-rank restore detail (index = rank); whole-cluster
     * counters and the visible loading latency live in
     * coldStartReport().
     */
    const std::vector<RestoreReport> &
    rankRestoreReports() const
    {
        return reports_;
    }

  private:
    TpMedusaEngine() = default;

    /** Declared before the cluster so they outlive the allocators. */
    std::vector<std::unique_ptr<ReplayTable>> tables_;
    std::unique_ptr<llm::TpCluster> cluster_;
    std::vector<RestoreReport> reports_;
    ColdStartReport report_;
};

} // namespace medusa::core

#endif // MEDUSA_MEDUSA_TP_H
