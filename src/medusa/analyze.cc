#include "medusa/analyze.h"

#include <cstring>
#include <set>

namespace medusa::core {

using simcuda::CudaGraph;

bool
looksLikeDevicePointer(u64 value)
{
    // The device address range plus generous slack: a "high address
    // prefix" test, deliberately broad so that constants can produce
    // false-positive candidates (as the paper observes).
    return value >= 0x7f0000000000ull && value < 0x800000000000ull;
}

namespace {

/** Backward trace-based match (§4.1); see analyze.h. */
const AllocRecord *
matchTraceBased(const std::vector<const AllocRecord *> &candidates,
                u64 launch_op_pos, bool *ambiguous)
{
    const AllocRecord *live_match = nullptr;
    const AllocRecord *latest_before = nullptr;
    u32 before_count = 0;
    for (const AllocRecord *rec : candidates) {
        if (rec->op_pos_alloc >= launch_op_pos) {
            continue; // allocated after the launch
        }
        ++before_count;
        if (latest_before == nullptr ||
            rec->op_pos_alloc > latest_before->op_pos_alloc) {
            latest_before = rec;
        }
        const bool live = rec->op_pos_free < 0 ||
                          static_cast<u64>(rec->op_pos_free) >
                              launch_op_pos;
        if (live && (live_match == nullptr ||
                     rec->op_pos_alloc > live_match->op_pos_alloc)) {
            live_match = rec;
        }
    }
    // Kernels always use buffers that are still allocated at launch
    // time, so the live match is authoritative. Falling back to the
    // latest earlier allocation (a freed one) is possible but risky.
    if (live_match != nullptr) {
        *ambiguous = before_count > 1 && live_match != latest_before;
        return live_match;
    }
    *ambiguous = latest_before != nullptr;
    return latest_before;
}

/** Naive match: earliest containing allocation (the Fig. 6 hazard). */
const AllocRecord *
matchNaive(const std::vector<const AllocRecord *> &candidates,
           u64 launch_op_pos, bool *ambiguous)
{
    const AllocRecord *first = nullptr;
    u32 count = 0;
    for (const AllocRecord *rec : candidates) {
        if (rec->op_pos_alloc >= launch_op_pos) {
            continue;
        }
        ++count;
        if (first == nullptr ||
            rec->op_pos_alloc < first->op_pos_alloc) {
            first = rec;
        }
    }
    *ambiguous = count > 1;
    return first;
}

} // namespace

StatusOr<AnalysisResult>
analyze(const Recorder &recorder, simcuda::GpuProcess &process,
        const std::string &model_name, u64 model_seed,
        const std::vector<std::pair<u32, CudaGraph>> &graphs,
        u64 free_gpu_memory, const AnalyzeOptions &options)
{
    AnalysisResult result;
    Artifact &artifact = result.artifact;
    AnalysisStats &stats = artifact.stats;

    artifact.model_name = model_name;
    artifact.model_seed = model_seed;
    artifact.free_gpu_memory = free_gpu_memory;
    artifact.ops = recorder.ops();
    artifact.organic_op_count = recorder.organicOpCount();
    artifact.organic_alloc_count = recorder.organicAllocCount();
    artifact.tags = recorder.tags();

    /** Allocation indexes referenced by at least one node pointer. */
    std::set<u64> referenced;

    for (const auto &[batch_size, graph] : graphs) {
        auto launches_it = recorder.graphLaunches().find(batch_size);
        if (launches_it == recorder.graphLaunches().end()) {
            return internalError("no recorded launches for graph bs=" +
                                 std::to_string(batch_size));
        }
        const auto &launches = launches_it->second;
        if (launches.size() != graph.nodeCount()) {
            return internalError(
                "captured launch count does not match graph nodes");
        }

        GraphBlueprint bp;
        bp.batch_size = batch_size;
        bp.nodes.reserve(graph.nodeCount());
        for (const auto &edge : graph.edges()) {
            bp.edges.emplace_back(edge.src, edge.dst);
        }

        for (u32 node_idx = 0; node_idx < graph.nodeCount(); ++node_idx) {
            const simcuda::GraphNode &node =
                graph.node(static_cast<simcuda::NodeId>(node_idx));
            const CapturedLaunch &launch = launches[node_idx];

            NodeBlueprint nb;
            nb.timing = node.timing;
            // Kernel name + library (the kernel name table of §5).
            MEDUSA_ASSIGN_OR_RETURN(nb.kernel_name,
                                    process.cuFuncGetName(node.fn));
            MEDUSA_ASSIGN_OR_RETURN(nb.module_name,
                                    process.cuFuncGetModule(node.fn));
            if (process.dlsym(nb.module_name, nb.kernel_name).isOk()) {
                ++stats.dlsym_visible_nodes;
            } else {
                ++stats.hidden_kernel_nodes;
            }

            nb.params.reserve(node.params.size());
            for (u32 pi = 0; pi < node.params.size(); ++pi) {
                const std::vector<u8> &bytes = node.params[pi];
                ++stats.total_params;
                ParamSpec spec;
                bool is_pointer = false;
                if (bytes.size() == 8) {
                    u64 value = 0;
                    std::memcpy(&value, bytes.data(), 8);
                    if (looksLikeDevicePointer(value)) {
                        const auto candidates =
                            recorder.recordsContaining(value);
                        bool ambiguous = false;
                        const AllocRecord *match =
                            options.trace_based_matching
                                ? matchTraceBased(candidates,
                                                  launch.op_pos,
                                                  &ambiguous)
                                : matchNaive(candidates, launch.op_pos,
                                             &ambiguous);
                        if (match != nullptr) {
                            spec.kind = ParamSpec::kIndirect;
                            spec.alloc_index = match->alloc_index;
                            spec.offset = value - match->addr;
                            is_pointer = true;
                            referenced.insert(match->alloc_index);
                            if (ambiguous) {
                                result.risky_params.push_back(
                                    {batch_size, node_idx, pi});
                            }
                        } else {
                            // A high-prefix constant that matched no
                            // allocation: the decoy/false-positive case.
                            ++stats.decoy_candidates;
                        }
                    }
                }
                if (!is_pointer) {
                    spec.kind = ParamSpec::kConstant;
                    spec.constant_bytes = bytes;
                    ++stats.constant_params;
                } else {
                    ++stats.pointer_params;
                }
                nb.params.push_back(std::move(spec));
            }
            bp.nodes.push_back(std::move(nb));
            ++stats.total_nodes;
        }
        artifact.graphs.push_back(std::move(bp));
    }

    // ---- §4.3 buffer-content classification ----------------------------
    const u64 capture_op = recorder.captureStageOpPos();
    for (const AllocRecord &rec : recorder.allocs()) {
        if (referenced.count(rec.alloc_index) == 0) {
            continue;
        }
        const bool freed = rec.op_pos_free >= 0;
        const bool before_capture = rec.op_pos_alloc < capture_op;
        if (!freed) {
            stats.full_dump_bytes += rec.backing_size;
        }
        if (freed) {
            // Temporary: contents are produced by earlier graph nodes
            // on every replay.
            ++stats.temp_buffers;
            continue;
        }
        if (before_capture && options.copy_free_contents) {
            // Model parameters / engine I/O: restored by the weights
            // loader or rewritten by the engine before each replay.
            ++stats.model_param_buffers;
            continue;
        }
        // Permanent buffer: materialize its contents.
        PermanentBuffer pb;
        pb.alloc_index = rec.alloc_index;
        pb.contents.resize(rec.backing_size);
        if (rec.backing_size > 0) {
            MEDUSA_RETURN_IF_ERROR(process.memory().read(
                rec.addr, pb.contents.data(), rec.backing_size));
        }
        if (options.handle_indirect_pointers) {
            // §8 extension: 8-byte-aligned words inside the contents
            // that hold live device addresses are indirect pointers
            // (e.g. a batched-GEMM operand array). Record a rewrite
            // for each so the online phase points them at the
            // replayed buffers instead of stale offline addresses.
            for (u64 off = 0; off + 8 <= pb.contents.size(); off += 8) {
                u64 word = 0;
                std::memcpy(&word, pb.contents.data() + off, 8);
                if (!looksLikeDevicePointer(word)) {
                    continue;
                }
                const auto candidates =
                    recorder.recordsContaining(word);
                // Liveness at end-of-capture: the pointed-to buffer
                // must still exist when the contents were dumped.
                const AllocRecord *live = nullptr;
                for (const AllocRecord *cand : candidates) {
                    if (cand->op_pos_free < 0 &&
                        (live == nullptr ||
                         cand->op_pos_alloc > live->op_pos_alloc)) {
                        live = cand;
                    }
                }
                if (live == nullptr) {
                    continue; // dangling or coincidental: copy as-is
                }
                PointerWordFix fix;
                fix.buffer_alloc_index = rec.alloc_index;
                fix.byte_offset = off;
                fix.target_alloc_index = live->alloc_index;
                fix.target_offset = word - live->addr;
                artifact.pointer_fixes.push_back(fix);
                ++stats.indirect_pointer_words;
            }
        }
        stats.materialized_content_bytes += pb.contents.size();
        ++stats.permanent_buffers;
        artifact.permanent.push_back(std::move(pb));
    }

    // Charge the analysis-stage cost (host-side trace synthesis).
    process.clock().advance(
        units::usToNs(process.cost().analysis_per_node_us *
                      static_cast<f64>(stats.total_nodes)));
    return result;
}

} // namespace medusa::core
