#include "medusa/image.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>

#include "common/crc32.h"
#include "medusa/lint/lint.h"

namespace medusa::core {

namespace {

static_assert(sizeof(MaterializedImage::DataReloc) == 24 &&
                  std::is_trivially_copyable_v<MaterializedImage::DataReloc>,
              "DataReloc must be a packed POD (it is viewed in place)");
static_assert(sizeof(MaterializedImage::KernelReloc) == 16 &&
                  std::is_trivially_copyable_v<
                      MaterializedImage::KernelReloc>,
              "KernelReloc must be a packed POD (it is viewed in place)");
static_assert(sizeof(simcuda::GraphEdge) == 8 &&
                  std::is_trivially_copyable_v<simcuda::GraphEdge>,
              "GraphEdge must be a packed POD (it is viewed in place)");
static_assert(sizeof(TimingInfo) == 16 &&
                  std::is_trivially_copyable_v<TimingInfo>,
              "TimingInfo must be a packed POD (it is viewed in place)");

/** Pad the payload writer so the next array starts 8-byte aligned. */
void
alignTo8(BinaryWriter &w)
{
    while (w.size() % 8 != 0) {
        w.writeU8(0);
    }
}

/** Skip the padding alignTo8 wrote. */
Status
skipAlign8(BinaryReader &r)
{
    const std::size_t pad = (8 - r.position() % 8) % 8;
    return r.skipBytes(pad);
}

/** Append a POD array as raw bytes, 8-aligned. */
template <typename T>
void
writePodArray(BinaryWriter &w, const std::vector<T> &items)
{
    alignTo8(w);
    w.writeBytesRaw(items.data(), items.size() * sizeof(T));
}

/** View @p count packed PODs in place at the (aligned) cursor. */
template <typename T>
StatusOr<std::span<const T>>
viewPodArray(BinaryReader &r, u64 count)
{
    MEDUSA_RETURN_IF_ERROR(skipAlign8(r));
    if (count > r.remaining() / sizeof(T)) {
        return internalError("image array count exceeds data");
    }
    MEDUSA_ASSIGN_OR_RETURN(
        auto raw, r.viewBytes(static_cast<std::size_t>(count) * sizeof(T)));
    return std::span<const T>(reinterpret_cast<const T *>(raw.data()),
                              static_cast<std::size_t>(count));
}

void
writeAllocOp(BinaryWriter &w, const AllocOp &op)
{
    w.writeU8(static_cast<u8>(op.kind));
    w.writeU64(op.logical_size);
    w.writeU64(op.backing_size);
    w.writeU64(op.freed_alloc_index);
}

StatusOr<AllocOp>
readAllocOp(BinaryReader &r)
{
    AllocOp op;
    MEDUSA_ASSIGN_OR_RETURN(u8 kind, r.readU8());
    if (kind > AllocOp::kFree) {
        return internalError("bad AllocOp kind");
    }
    op.kind = static_cast<AllocOp::Kind>(kind);
    MEDUSA_ASSIGN_OR_RETURN(op.logical_size, r.readU64());
    MEDUSA_ASSIGN_OR_RETURN(op.backing_size, r.readU64());
    MEDUSA_ASSIGN_OR_RETURN(op.freed_alloc_index, r.readU64());
    return op;
}

/** Per-graph wire metadata; the big columns live in the POD arrays. */
struct GraphMeta
{
    u32 batch_size = 0;
    u32 node_count = 0;
    u32 edge_count = 0;
    u32 param_count = 0;
    u64 fn_slot_begin = 0;
    u64 param_slot_begin = 0;
};

} // namespace

StatusOr<std::vector<u8>>
buildImageBytes(const Artifact &artifact,
                const std::vector<std::pair<i32, i32>> &tokenizer_merges,
                const ImageBuildOptions &options)
{
    // ---- flatten the blueprints into SoA columns + patch template ----
    std::vector<MaterializedImage::KernelEntry> kernel_table;
    std::map<std::pair<std::string, std::string>, u64> kernel_index;
    std::vector<GraphMeta> graph_meta;
    std::vector<u32> param_begin;
    std::vector<u32> order;
    std::vector<simcuda::GraphEdge> edges;
    std::vector<TimingInfo> timings;
    std::vector<u8> param_len;
    std::vector<u64> slots;
    std::vector<MaterializedImage::DataReloc> data_relocs;
    std::vector<MaterializedImage::KernelReloc> kernel_relocs;
    u64 total_nodes = 0;

    for (std::size_t gi = 0; gi < artifact.graphs.size(); ++gi) {
        const GraphBlueprint &g = artifact.graphs[gi];
        const std::size_t n = g.nodes.size();
        total_nodes += n;
        GraphMeta meta;
        meta.batch_size = g.batch_size;
        meta.node_count = static_cast<u32>(n);
        meta.edge_count = static_cast<u32>(g.edges.size());

        // Kernel slots first, then param slots — one contiguous range
        // per graph so the patched template carves directly into a
        // PatchedGraphDesc.
        meta.fn_slot_begin = slots.size();
        for (std::size_t ni = 0; ni < n; ++ni) {
            const NodeBlueprint &node = g.nodes[ni];
            const std::pair<std::string, std::string> key{
                node.kernel_name, node.module_name};
            auto [it, inserted] =
                kernel_index.try_emplace(key, kernel_table.size());
            if (inserted) {
                kernel_table.push_back({node.kernel_name,
                                        node.module_name});
            }
            kernel_relocs.push_back({slots.size(), it->second});
            slots.push_back(0);
        }

        meta.param_slot_begin = slots.size();
        u32 params_in_graph = 0;
        param_begin.push_back(0);
        for (const NodeBlueprint &node : g.nodes) {
            for (const ParamSpec &p : node.params) {
                if (p.kind == ParamSpec::kConstant) {
                    if (p.constant_bytes.size() > sizeof(u64)) {
                        return invalidArgument(
                            "constant param wider than 8 bytes in graph "
                            "bs=" +
                            std::to_string(g.batch_size));
                    }
                    u64 bits = 0;
                    std::memcpy(&bits, p.constant_bytes.data(),
                                p.constant_bytes.size());
                    slots.push_back(bits);
                    param_len.push_back(
                        static_cast<u8>(p.constant_bytes.size()));
                } else {
                    data_relocs.push_back(
                        {slots.size(), p.alloc_index, p.offset});
                    slots.push_back(0);
                    param_len.push_back(sizeof(u64));
                }
                ++params_in_graph;
            }
            param_begin.push_back(params_in_graph);
        }
        meta.param_count = params_in_graph;

        // Validate + precompute the execution order offline, so the
        // online phase never walks the graph.
        std::vector<simcuda::GraphEdge> graph_edges;
        graph_edges.reserve(g.edges.size());
        for (const auto &[src, dst] : g.edges) {
            if (dst >= n || src >= dst) {
                return internalError("corrupt edge in artifact");
            }
            graph_edges.push_back({src, dst});
        }
        auto topo = simcuda::topoOrderOf(n, graph_edges);
        if (!topo.isOk()) {
            return topo.status();
        }
        order.insert(order.end(), topo.value().begin(),
                     topo.value().end());
        edges.insert(edges.end(), graph_edges.begin(), graph_edges.end());
        for (const NodeBlueprint &node : g.nodes) {
            timings.push_back(node.timing);
        }
        graph_meta.push_back(meta);
    }

    u64 contents_total = 0;
    for (const PermanentBuffer &p : artifact.permanent) {
        contents_total += p.contents.size();
    }

    // ---- serialize: decoded metadata first, POD columns after --------
    BinaryWriter w;
    w.writeString(artifact.model_name);
    w.writeU64(artifact.model_seed);
    w.writeU64(artifact.free_gpu_memory);
    w.writeU64(artifact.organic_op_count);
    w.writeU64(artifact.organic_alloc_count);
    w.writeU64(total_nodes);
    w.writeVector(artifact.ops, writeAllocOp);
    w.writeU64(artifact.tags.size());
    for (const auto &[tag, index] : artifact.tags) {
        w.writeString(tag);
        w.writeU64(index);
    }
    w.writeU64(kernel_table.size());
    for (const MaterializedImage::KernelEntry &e : kernel_table) {
        w.writeString(e.name);
        w.writeString(e.module);
    }
    w.writeU64(tokenizer_merges.size());
    for (const auto &[left, right] : tokenizer_merges) {
        w.writeU32(static_cast<u32>(left));
        w.writeU32(static_cast<u32>(right));
    }
    w.writeU64(artifact.permanent.size());
    for (const PermanentBuffer &p : artifact.permanent) {
        w.writeU64(p.alloc_index);
        w.writeU64(p.contents.size());
    }
    w.writeU64(artifact.pointer_fixes.size());
    w.writeU64(graph_meta.size());
    for (const GraphMeta &m : graph_meta) {
        w.writeU32(m.batch_size);
        w.writeU32(m.node_count);
        w.writeU32(m.edge_count);
        w.writeU32(m.param_count);
        w.writeU64(m.fn_slot_begin);
        w.writeU64(m.param_slot_begin);
    }
    w.writeU64(slots.size());
    w.writeU64(data_relocs.size());
    w.writeU64(kernel_relocs.size());
    w.writeU64(contents_total);

    writePodArray(w, param_begin);
    writePodArray(w, order);
    writePodArray(w, edges);
    writePodArray(w, timings);
    writePodArray(w, param_len);
    writePodArray(w, slots);
    writePodArray(w, data_relocs);
    writePodArray(w, kernel_relocs);
    {
        std::vector<PointerWordFix> fixes = artifact.pointer_fixes;
        writePodArray(w, fixes);
    }
    alignTo8(w);
    for (const PermanentBuffer &p : artifact.permanent) {
        w.writeBytesRaw(p.contents.data(), p.contents.size());
    }

    const std::vector<u8> &payload = w.bytes();
    BinaryWriter header;
    header.writeU32(MaterializedImage::kMagic);
    header.writeU32(MaterializedImage::kVersion);
    header.writeU64(payload.size());
    header.writeU32(crc32(payload.data(), payload.size()));
    header.writeU32(0); // pad: keeps the payload 8-byte aligned
    MEDUSA_CHECK(header.size() == MaterializedImage::kHeaderBytes,
                 "image header drifted from kHeaderBytes");

    std::vector<u8> out;
    out.reserve(MaterializedImage::kHeaderBytes + payload.size());
    out.insert(out.end(), header.bytes().begin(), header.bytes().end());
    out.insert(out.end(), payload.begin(), payload.end());

    // Post-emission gate: prove the bytes we are about to ship verify
    // clean before anyone can cache or restore them.
    if (options.lint) {
        lint::LintOptions lopts;
        lopts.trace = options.trace;
        const lint::LintReport report =
            lint::lintImageBytes(std::span<const u8>(out), lopts);
        if (!report.replaySafe()) {
            return validationFailure("emitted image failed lint: " +
                                     report.firstError());
        }
    }
    return out;
}

StatusOr<MaterializedImage>
MaterializedImage::openView(std::span<const u8> bytes,
                            const ImageReadOptions &options)
{
    Span span(options.trace, "image.open", "image");
    span.arg("bytes", std::to_string(bytes.size()));
    MEDUSA_FAULT_POINT(options.fault, FaultPoint::kImageOpen,
                       "open of " + std::to_string(bytes.size()) +
                           " bytes");
    if (reinterpret_cast<std::uintptr_t>(bytes.data()) % 8 != 0) {
        return invalidArgument("image buffer must be 8-byte aligned");
    }
    BinaryReader hr(bytes);
    MEDUSA_ASSIGN_OR_RETURN(u32 magic, hr.readU32());
    if (magic != kMagic) {
        return internalError("image magic mismatch");
    }
    MEDUSA_ASSIGN_OR_RETURN(u32 version, hr.readU32());
    if (version != kVersion) {
        return internalError("image version mismatch");
    }
    MEDUSA_ASSIGN_OR_RETURN(u64 payload_size, hr.readU64());
    MEDUSA_ASSIGN_OR_RETURN(u32 crc, hr.readU32());
    MEDUSA_RETURN_IF_ERROR(hr.skipBytes(4)); // pad
    if (payload_size != bytes.size() - kHeaderBytes) {
        return internalError("image truncated");
    }
    const std::span<const u8> payload = bytes.subspan(kHeaderBytes);
    if (options.verify_crc &&
        crc32(payload.data(), payload.size()) != crc) {
        return internalError("image failed its CRC32 check");
    }

    MaterializedImage img;
    img.serialized_size = bytes.size();
    BinaryReader r(payload);
    MEDUSA_ASSIGN_OR_RETURN(img.model_name, r.readString());
    MEDUSA_ASSIGN_OR_RETURN(img.model_seed, r.readU64());
    MEDUSA_ASSIGN_OR_RETURN(img.free_gpu_memory, r.readU64());
    MEDUSA_ASSIGN_OR_RETURN(img.organic_op_count, r.readU64());
    MEDUSA_ASSIGN_OR_RETURN(img.organic_alloc_count, r.readU64());
    MEDUSA_ASSIGN_OR_RETURN(img.total_nodes, r.readU64());
    {
        auto ops = r.readVector<AllocOp>(readAllocOp);
        if (!ops.isOk()) {
            return ops.status();
        }
        img.ops = std::move(ops).value();
    }
    {
        MEDUSA_ASSIGN_OR_RETURN(u64 tag_count, r.readU64());
        for (u64 i = 0; i < tag_count; ++i) {
            MEDUSA_ASSIGN_OR_RETURN(std::string tag, r.readString());
            MEDUSA_ASSIGN_OR_RETURN(u64 index, r.readU64());
            img.tags[tag] = index;
        }
    }
    {
        MEDUSA_ASSIGN_OR_RETURN(u64 kernel_count, r.readU64());
        if (kernel_count > r.remaining()) {
            return internalError("image kernel-table count exceeds data");
        }
        img.kernel_table.reserve(static_cast<std::size_t>(kernel_count));
        for (u64 i = 0; i < kernel_count; ++i) {
            KernelEntry e;
            MEDUSA_ASSIGN_OR_RETURN(e.name, r.readString());
            MEDUSA_ASSIGN_OR_RETURN(e.module, r.readString());
            img.kernel_table.push_back(std::move(e));
        }
    }
    {
        MEDUSA_ASSIGN_OR_RETURN(u64 merge_count, r.readU64());
        if (merge_count > r.remaining() / 8) {
            return internalError("image merge count exceeds data");
        }
        img.tokenizer_merges.reserve(
            static_cast<std::size_t>(merge_count));
        for (u64 i = 0; i < merge_count; ++i) {
            MEDUSA_ASSIGN_OR_RETURN(u32 left, r.readU32());
            MEDUSA_ASSIGN_OR_RETURN(u32 right, r.readU32());
            img.tokenizer_merges.emplace_back(static_cast<i32>(left),
                                              static_cast<i32>(right));
        }
    }
    std::vector<u64> permanent_sizes;
    {
        MEDUSA_ASSIGN_OR_RETURN(u64 perm_count, r.readU64());
        if (perm_count > r.remaining() / 16) {
            return internalError("image permanent count exceeds data");
        }
        img.permanent.resize(static_cast<std::size_t>(perm_count));
        permanent_sizes.resize(static_cast<std::size_t>(perm_count));
        for (u64 i = 0; i < perm_count; ++i) {
            MEDUSA_ASSIGN_OR_RETURN(img.permanent[i].alloc_index,
                                    r.readU64());
            MEDUSA_ASSIGN_OR_RETURN(permanent_sizes[i], r.readU64());
        }
    }
    MEDUSA_ASSIGN_OR_RETURN(u64 fix_count, r.readU64());
    std::vector<GraphMeta> graph_meta;
    u64 sum_pb = 0;
    u64 sum_nodes = 0;
    u64 sum_edges = 0;
    u64 sum_params = 0;
    {
        MEDUSA_ASSIGN_OR_RETURN(u64 graph_count, r.readU64());
        if (graph_count > r.remaining() / 32) {
            return internalError("image graph count exceeds data");
        }
        graph_meta.resize(static_cast<std::size_t>(graph_count));
        for (GraphMeta &m : graph_meta) {
            MEDUSA_ASSIGN_OR_RETURN(m.batch_size, r.readU32());
            MEDUSA_ASSIGN_OR_RETURN(m.node_count, r.readU32());
            MEDUSA_ASSIGN_OR_RETURN(m.edge_count, r.readU32());
            MEDUSA_ASSIGN_OR_RETURN(m.param_count, r.readU32());
            MEDUSA_ASSIGN_OR_RETURN(m.fn_slot_begin, r.readU64());
            MEDUSA_ASSIGN_OR_RETURN(m.param_slot_begin, r.readU64());
            sum_pb += m.node_count + 1;
            sum_nodes += m.node_count;
            sum_edges += m.edge_count;
            sum_params += m.param_count;
        }
    }
    MEDUSA_ASSIGN_OR_RETURN(u64 slot_count, r.readU64());
    MEDUSA_ASSIGN_OR_RETURN(u64 data_reloc_count, r.readU64());
    MEDUSA_ASSIGN_OR_RETURN(u64 kernel_reloc_count, r.readU64());
    MEDUSA_ASSIGN_OR_RETURN(u64 contents_total, r.readU64());
    if (sum_nodes != img.total_nodes) {
        return internalError("image node totals disagree");
    }

    MEDUSA_ASSIGN_OR_RETURN(auto all_param_begin,
                            viewPodArray<u32>(r, sum_pb));
    MEDUSA_ASSIGN_OR_RETURN(auto all_order,
                            viewPodArray<u32>(r, sum_nodes));
    MEDUSA_ASSIGN_OR_RETURN(auto all_edges,
                            viewPodArray<simcuda::GraphEdge>(r, sum_edges));
    MEDUSA_ASSIGN_OR_RETURN(auto all_timings,
                            viewPodArray<TimingInfo>(r, sum_nodes));
    MEDUSA_ASSIGN_OR_RETURN(auto all_param_len,
                            viewPodArray<u8>(r, sum_params));
    MEDUSA_ASSIGN_OR_RETURN(img.patch_template,
                            viewPodArray<u64>(r, slot_count));
    MEDUSA_ASSIGN_OR_RETURN(img.data_relocs,
                            viewPodArray<DataReloc>(r, data_reloc_count));
    MEDUSA_ASSIGN_OR_RETURN(
        img.kernel_relocs,
        viewPodArray<KernelReloc>(r, kernel_reloc_count));
    MEDUSA_ASSIGN_OR_RETURN(img.pointer_fixes,
                            viewPodArray<PointerWordFix>(r, fix_count));
    {
        MEDUSA_RETURN_IF_ERROR(skipAlign8(r));
        MEDUSA_ASSIGN_OR_RETURN(
            auto blob, r.viewBytes(static_cast<std::size_t>(contents_total)));
        std::size_t off = 0;
        for (std::size_t i = 0; i < img.permanent.size(); ++i) {
            const auto sz =
                static_cast<std::size_t>(permanent_sizes[i]);
            if (sz > blob.size() - off) {
                return internalError(
                    "image permanent contents exceed their blob");
            }
            img.permanent[i].contents = blob.subspan(off, sz);
            off += sz;
        }
    }

    // ---- carve per-graph views + validate the slot layout ------------
    u64 pb_off = 0;
    u64 node_off = 0;
    u64 edge_off = 0;
    u64 param_off = 0;
    u64 slot_cursor = 0;
    img.graphs.reserve(graph_meta.size());
    for (const GraphMeta &m : graph_meta) {
        if (m.fn_slot_begin != slot_cursor ||
            m.param_slot_begin != slot_cursor + m.node_count) {
            return internalError("image slot layout is inconsistent");
        }
        slot_cursor = m.param_slot_begin + m.param_count;
        GraphView gv;
        gv.batch_size = m.batch_size;
        gv.node_count = m.node_count;
        gv.fn_slot_begin = m.fn_slot_begin;
        gv.param_slot_begin = m.param_slot_begin;
        gv.param_begin = all_param_begin.subspan(
            static_cast<std::size_t>(pb_off), m.node_count + 1u);
        gv.order = all_order.subspan(static_cast<std::size_t>(node_off),
                                     m.node_count);
        gv.timings = all_timings.subspan(
            static_cast<std::size_t>(node_off), m.node_count);
        gv.edges = all_edges.subspan(static_cast<std::size_t>(edge_off),
                                     m.edge_count);
        gv.param_len = all_param_len.subspan(
            static_cast<std::size_t>(param_off), m.param_count);
        pb_off += m.node_count + 1u;
        node_off += m.node_count;
        edge_off += m.edge_count;
        param_off += m.param_count;
        img.graphs.push_back(gv);
    }
    if (slot_cursor != slot_count) {
        return internalError("image slot layout is inconsistent");
    }
    img.payload_decoded_bytes = r.position();

    // Relocations are applied with unchecked indexing on the hot path;
    // reject out-of-bounds records once, here. medusa-lint disables
    // this to diagnose a corrupt table record-by-record instead.
    if (options.validate_relocations) {
        u64 alloc_count = 0;
        for (const AllocOp &op : img.ops) {
            if (op.kind == AllocOp::kAlloc) {
                ++alloc_count;
            }
        }
        for (const DataReloc &rel : img.data_relocs) {
            if (rel.slot >= slot_count || rel.alloc_index >= alloc_count) {
                return internalError("image data relocation out of bounds");
            }
        }
        for (const KernelReloc &rel : img.kernel_relocs) {
            if (rel.slot >= slot_count ||
                rel.kernel_index >= img.kernel_table.size()) {
                return internalError(
                    "image kernel relocation out of bounds");
            }
        }
    }
    return img;
}

StatusOr<MaterializedImage>
MaterializedImage::open(std::vector<u8> bytes,
                        const ImageReadOptions &options)
{
    // Decode as a view first, then adopt the buffer: the vector's heap
    // storage (and thus every span) survives the move below.
    std::vector<u8> adopted = std::move(bytes);
    auto img = openView(std::span<const u8>(adopted), options);
    if (!img.isOk()) {
        return img.status();
    }
    MaterializedImage out = std::move(img).value();
    out.owned_ = std::move(adopted);
    return out;
}

StatusOr<MaterializedImage>
MaterializedImage::openFile(const std::string &path,
                            const ImageReadOptions &options)
{
    if (options.use_mmap) {
        const int fd = ::open(path.c_str(), O_RDONLY);
        if (fd >= 0) {
            struct stat st = {};
            if (::fstat(fd, &st) == 0 && st.st_size > 0) {
                const auto size = static_cast<std::size_t>(st.st_size);
                void *map =
                    ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
                // The descriptor is not needed once mapped (POSIX keeps
                // the mapping alive independently).
                ::close(fd);
                if (map != MAP_FAILED) {
                    std::shared_ptr<const void> holder(
                        map, [size](const void *p) {
                            ::munmap(const_cast<void *>(p), size);
                        });
                    auto img = openView(
                        std::span<const u8>(
                            static_cast<const u8 *>(map), size),
                        options);
                    if (!img.isOk()) {
                        return img.status();
                    }
                    MaterializedImage out = std::move(img).value();
                    out.mapping_ = std::move(holder);
                    return out;
                }
            } else {
                ::close(fd);
            }
        }
        // Fall through to the read-based path: a filesystem without
        // mmap support (or an unreadable stat) should not change the
        // caller-visible contract, only the backing.
    }
    MEDUSA_ASSIGN_OR_RETURN(std::vector<u8> bytes, readFile(path));
    return open(std::move(bytes), options);
}

} // namespace medusa::core
