/**
 * @file
 * Reusable building blocks of the online phase, shared by the
 * single-GPU MedusaEngine (restore.h) and the tensor-parallel driver
 * (tp.h): the allocation-replay interceptor, the sequence replayer,
 * engine-buffer rebinding, content/pointer-fix restoration, kernel
 * name-table construction and graph rebuilding.
 */

#ifndef MEDUSA_MEDUSA_REPLAY_H
#define MEDUSA_MEDUSA_REPLAY_H

#include <map>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "llm/runtime.h"
#include "medusa/artifact.h"
#include "medusa/image.h"
#include "medusa/restore_options.h"

namespace medusa::core {

/**
 * The online interceptor: records the address returned for every
 * allocation index and verifies that the organic prefix (structure
 * init) reproduces the artifact's recorded sizes.
 */
class ReplayTable final : public simcuda::AllocObserver
{
  public:
    explicit ReplayTable(const Artifact *artifact);

    /**
     * Image-path form: observe against @p ops directly (the caller —
     * typically a MaterializedImage — keeps the op storage alive).
     */
    ReplayTable(std::span<const AllocOp> ops, u64 organic_alloc_count);

    void onAlloc(u64 seq_index, DeviceAddr addr, u64 logical_size,
                 u64 backing_size) override;
    void onFree(DeviceAddr addr) override { (void)addr; }

    /** The replayed address of an allocation index. */
    StatusOr<DeviceAddr> addrOf(u64 alloc_index) const;

    /** OK iff the organic prefix matched the artifact. */
    Status organicStatus() const;

    u64 allocCount() const { return addr_of_.size(); }

  private:
    u64 organic_alloc_count_ = 0;
    std::vector<const AllocOp *> alloc_ops_;
    std::vector<DeviceAddr> addr_of_;
    std::string mismatch_;
};

/**
 * Replay ops[organic_op_count..] through the runtime's allocator.
 * @p fault, when set, injects FaultPoint::kReplayPrefix at the organic
 * handoff and kReplayAlloc before each replayed allocation.
 */
Status replayAllocSequence(const Artifact &artifact,
                           llm::ModelRuntime &rt,
                           const ReplayTable &table,
                           RestoreReport &report,
                           FaultInjector *fault = nullptr);

/** Op-sequence form shared by the artifact and image restore paths. */
Status replayAllocSequence(std::span<const AllocOp> ops,
                           u64 organic_op_count, llm::ModelRuntime &rt,
                           const ReplayTable &table,
                           RestoreReport &report,
                           FaultInjector *fault = nullptr);

/** Re-bind the engine's tagged I/O and KV-cache buffers post-replay. */
Status rebindEngineBuffers(const Artifact &artifact,
                           const llm::ModelConfig &model,
                           const ReplayTable &table,
                           llm::ModelRuntime &rt);

/** Tag-map form shared by the artifact and image restore paths. */
Status rebindEngineBuffers(const std::map<std::string, u64> &tags,
                           u64 free_gpu_memory,
                           const llm::ModelConfig &model,
                           const ReplayTable &table,
                           llm::ModelRuntime &rt);

/**
 * Restore permanent-buffer contents and rewrite indirect pointer words
 * (§4.3 + the §8 extension).
 */
Status restoreContents(const Artifact &artifact, llm::ModelRuntime &rt,
                       const ReplayTable &table, RestoreReport &report);

/**
 * Run the first-layer triggering-kernels capture and enumerate every
 * loaded module into a kernel name -> address table (§5). @p fault,
 * when set, injects FaultPoint::kKernelEnumeration per module.
 */
StatusOr<std::unordered_map<std::string, KernelAddr>>
buildKernelNameTable(llm::ModelRuntime &rt,
                     FaultInjector *fault = nullptr);

/**
 * Rebuild one materialized graph: restore kernel addresses (dlsym or
 * the name table) and patch parameters via the indirect index pointer
 * table, then return the ready-to-instantiate graph.
 */
StatusOr<simcuda::CudaGraph>
rebuildGraph(const GraphBlueprint &bp, const ReplayTable &table,
             llm::ModelRuntime &rt,
             const std::unordered_map<std::string, KernelAddr>
                 &name_table,
             const RestoreOptions &options, RestoreReport &report);

/**
 * Rebuild and instantiate every graph in @p artifact — the parallel
 * form of the per-graph rebuildGraph + instantiateGraph loop. Three
 * phases keep the result bit-identical for every thread count:
 *
 *  1. serial kernel resolution: every dlsym / module-load / per-node
 *     clock charge and every RestoreReport counter lands on the calling
 *     thread, in exact artifact order;
 *  2. parallel graph build: parameter patching through the (const)
 *     indirect index pointer table and CudaGraph construction are pure,
 *     each task writing one pre-sized slot;
 *  3. serial instantiation in artifact order via
 *     ModelRuntime::instantiateGraphs.
 *
 * Phase-2 error contract: the first failing task flips a shared cancel
 * flag, so outstanding tasks finish immediately as no-ops; the
 * parallelFor join then guarantees worker quiescence BEFORE any error
 * propagates to the caller — a rollback triggered by a phase-2 failure
 * can never race a still-running build task. The error returned is the
 * first REAL failure in artifact order (cancelled tasks are not
 * failures), independent of thread count. FaultPoint::kGraphBuild
 * injects per-task failures for testing this path.
 *
 * @p pool may be null (phase 2 runs inline); only host wall-clock
 * changes with it.
 */
Status restoreGraphs(const Artifact &artifact, const ReplayTable &table,
                     llm::ModelRuntime &rt,
                     const std::unordered_map<std::string, KernelAddr>
                         &name_table,
                     const RestoreOptions &options,
                     RestoreReport &report, ThreadPool *pool = nullptr);

// ---- v6 image (relocation-patch) restore path -------------------------

/**
 * Restore permanent-buffer contents and indirect pointer words from the
 * image's zero-copy views — the image-path twin of restoreContents.
 */
Status restoreImageContents(const MaterializedImage &image,
                            llm::ModelRuntime &rt,
                            const ReplayTable &table,
                            RestoreReport &report);

/**
 * Resolve the image's first-occurrence kernel name table to addresses,
 * in table order (§5 once per UNIQUE kernel, not once per node). The
 * table order reproduces the module-load order of the rebuild path, so
 * ASLR draws — and restore fingerprints — stay bit-identical across
 * the two paths. Charges restore_per_node_us per table entry and
 * counts each entry in RestoreReport::kernels_resolved.
 */
StatusOr<std::vector<KernelAddr>>
resolveImageKernels(const MaterializedImage &image, llm::ModelRuntime &rt,
                    const std::unordered_map<std::string, KernelAddr>
                        &name_table,
                    const RestoreOptions &options, RestoreReport &report);

/**
 * The patch pass (DESIGN.md §13): copy the image's patch template and
 * apply every relocation in one linear sweep — data relocations
 * resolve through the replay table, kernel relocations through
 * @p kernel_addrs (resolveImageKernels output). Emits the
 * "restore.patch_pass" span, charges restore_reloc_us per relocation
 * and injects FaultPoint::kImagePatch before each relocation batch
 * (the torn-patch fault of the rollback tests).
 */
StatusOr<std::vector<u64>>
applyImageRelocations(const MaterializedImage &image,
                      const ReplayTable &table,
                      const std::vector<KernelAddr> &kernel_addrs,
                      llm::ModelRuntime &rt,
                      const RestoreOptions &options,
                      RestoreReport &report);

/**
 * Instantiate every graph directly from the patched slots — the
 * image-path replacement for restoreGraphs. No CudaGraph objects are
 * built: each graph's PatchedGraphDesc carves spans out of
 * @p patched_slots and the image's SoA columns, and
 * ModelRuntime::instantiatePatchedGraphs registers them serially in
 * image order (same rollback contract as the rebuild path).
 * @p patched_slots must outlive the call.
 */
Status patchRestoreGraphs(const MaterializedImage &image,
                          const std::vector<u64> &patched_slots,
                          llm::ModelRuntime &rt,
                          const RestoreOptions &options,
                          RestoreReport &report);

/**
 * The pool implied by RestoreOptions::restore_threads: null for a
 * serial restore (<= 1 effective thread), else a pool whose worker
 * count makes parallelFor use exactly that many participants.
 */
std::unique_ptr<ThreadPool>
makeRestorePool(const RestoreOptions &options);

} // namespace medusa::core

#endif // MEDUSA_MEDUSA_REPLAY_H
