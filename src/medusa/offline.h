/**
 * @file
 * The offline phase driver (paper §3 left half): capturing stage +
 * analysis stage, followed by a validation dry-run of the online phase
 * in a fresh simulated process (the paper's §4 output comparison), with
 * an iterative repair loop that demotes false-positive pointer
 * classifications to constants.
 *
 * Run once per <GPU type, model>; the output Artifact is what every
 * online cold start restores from.
 */

#ifndef MEDUSA_MEDUSA_OFFLINE_H
#define MEDUSA_MEDUSA_OFFLINE_H

#include "common/pipeline_options.h"
#include "llm/engine.h"
#include "medusa/analyze.h"
#include "medusa/artifact.h"

namespace medusa::core {

/** Offline-phase configuration. */
struct OfflineOptions
{
    llm::ModelConfig model;
    u64 aslr_seed = 1;
    const CostModel *cost = nullptr;
    AnalyzeOptions analyze;
    /**
     * Cross-cutting pipeline knobs (shared shape with RestoreOptions
     * and ClusterOptions). `pipeline.validate` runs the online dry-run
     * validation (and repair) after analysis — on by default here;
     * `pipeline.lint` runs medusa-lint over the final artifact with
     * the raw recorder trace, so indirect-index liveness is checked at
     * each launch's exact trace position, and fails materialization on
     * any error-severity diagnostic.
     */
    PipelineOptions pipeline = {.validate = true};
    /** Bound on validation/repair iterations. */
    u32 max_repair_attempts = 16;
};

/** The offline phase's output. */
struct OfflineResult
{
    Artifact artifact;
    /**
     * The serialized v6 materialized image (DESIGN.md §13): the
     * artifact flattened into a relocation-patchable structure of
     * arrays, with the tokenizer's learned merges embedded. Open with
     * MaterializedImage::open and restore with
     * MedusaEngine::coldStartFromImage.
     */
    std::vector<u8> image_bytes;
    /** Capturing-stage virtual seconds (cold start + graph saving). */
    f64 capture_stage_sec = 0;
    /** Analysis-stage virtual seconds. */
    f64 analysis_stage_sec = 0;
    /** Validation dry-run virtual seconds (not part of Figure 9). */
    f64 validation_sec = 0;
    /** The recorded cold start's per-stage times (vLLM-shaped). */
    llm::StageTimes capture_cold_start;
    /** Offline-phase spans (offline.* taxonomy), simulated time. */
    std::vector<TraceEvent> spans;

    f64 totalOffline() const
    {
        return capture_stage_sec + analysis_stage_sec;
    }
};

/** Execute the offline phase for one model. */
StatusOr<OfflineResult> materialize(const OfflineOptions &opts);

} // namespace medusa::core

#endif // MEDUSA_MEDUSA_OFFLINE_H
