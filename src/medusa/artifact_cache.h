/**
 * @file
 * A process-wide cache of deserialized materialization outputs.
 *
 * Serverless platforms run many instances of the same <GPU type, model>
 * pair per node, and every Medusa cold start begins by loading that
 * pair's artifact or image (§3). The cache makes the load pay once per
 * node: entries are shared immutably (shared_ptr<const T>), a miss is
 * single-flight — concurrent requests for one key run the loader
 * exactly once while the rest block for the result — and capacity is
 * bounded with least-recently-used eviction (an evicted entry stays
 * alive for engines still holding it).
 *
 * A failed load is not cached as a value, but it is *recorded*: the
 * per-key failure keeps the full Status (not just a counter) and an
 * exponential-backoff deadline. Blocked single-flight callers do not
 * hot-loop the loader — the next caller to retry waits out the backoff
 * first, and each consecutive failure doubles it (up to a cap). A
 * successful load clears the key's failure record, and the record is a
 * negative cache entry with TTL = its backoff deadline: once the
 * deadline passes, keyFailure() reports ok() again instead of serving
 * the stale Status to later callers.
 *
 * MaterializationCache<T> is the generic engine; ArtifactCache (v5
 * artifacts) and ImageCache (v6 materialized images) are its two
 * instantiations. Both publish under the `artifact_cache.*` metric
 * names (DESIGN.md §12) so dashboards survived the generalization.
 */

#ifndef MEDUSA_MEDUSA_ARTIFACT_CACHE_H
#define MEDUSA_MEDUSA_ARTIFACT_CACHE_H

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/fault.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "medusa/artifact.h"
#include "medusa/image.h"

namespace medusa::core {

/** Thread-safe, single-flight, LRU-bounded materialization store. */
template <typename T>
class MaterializationCache
{
  public:
    /** Produces the value on a miss (runs outside the cache lock). */
    using Loader = std::function<StatusOr<T>()>;

    /**
     * @param capacity max resident entries (floored at 1).
     * @param initial_backoff_ms pause before retrying a failed key;
     *        doubles per consecutive failure up to @p max_backoff_ms.
     */
    explicit MaterializationCache(std::size_t capacity = 8,
                                  f64 initial_backoff_ms = 1.0,
                                  f64 max_backoff_ms = 100.0)
        : capacity_(std::max<std::size_t>(1, capacity)),
          initial_backoff_ms_(std::max(0.0, initial_backoff_ms)),
          max_backoff_ms_(std::max(initial_backoff_ms, max_backoff_ms))
    {
    }

    /**
     * Inject deterministic loader faults (FaultPoint::kCacheLoader —
     * checked before each loader run). Null disables.
     */
    void
    setFaultInjector(FaultInjector *fault)
    {
        std::unique_lock<std::mutex> lock(mu_);
        fault_ = fault;
    }

    /**
     * Stream cache events into @p trace: a `cache.load` span around
     * each loader run, `cache.hit` / `cache.evict` instants. Null
     * disables, at zero cost.
     */
    void
    setTraceRecorder(TraceRecorder *trace)
    {
        std::unique_lock<std::mutex> lock(mu_);
        trace_ = trace;
    }

    /**
     * The recorded failure Status for @p key: the last loader error
     * while the key is still inside its failure backoff, ok()
     * otherwise. An expired record no longer gates anything — the next
     * getOrLoad may run the loader immediately — so reporting its stale
     * Status would claim a failure state that no longer exists.
     */
    Status
    keyFailure(const std::string &key) const
    {
        std::unique_lock<std::mutex> lock(mu_);
        auto it = failures_.find(key);
        if (it == failures_.end()) {
            return Status::ok();
        }
        if (std::chrono::steady_clock::now() >= it->second.not_before) {
            return Status::ok();
        }
        return it->second.last;
    }

    /**
     * The value for @p key, loading it via @p loader on a miss.
     * Concurrent callers with the same key share one loader run.
     * @param[out] was_hit if non-null, set to whether the value was
     *             already resident (waiting on an in-flight load counts
     *             as a hit).
     */
    StatusOr<std::shared_ptr<const T>>
    getOrLoad(const std::string &key, const Loader &loader,
              bool *was_hit = nullptr)
    {
        std::unique_lock<std::mutex> lock(mu_);
        for (;;) {
            auto it = slots_.find(key);
            if (it != slots_.end()) {
                if (it->second.loading) {
                    // Single-flight: block until the in-flight load
                    // resolves. A failed load erases the slot, so the
                    // loop re-enters the loader path and retries.
                    cv_.wait(lock);
                    continue;
                }
                it->second.last_used = ++tick_;
                metrics_.counter("artifact_cache.hits").add(1);
                if (trace_ != nullptr) {
                    trace_->instant("cache.hit", "cache");
                }
                if (was_hit != nullptr) {
                    *was_hit = true;
                }
                return it->second.value;
            }
            // Failure backoff: do not hot-loop a key whose loader just
            // failed — wait out the exponential-backoff deadline first
            // (a concurrent success wakes us early via notify_all).
            auto fit = failures_.find(key);
            if (fit != failures_.end() &&
                std::chrono::steady_clock::now() <
                    fit->second.not_before) {
                metrics_.counter("artifact_cache.backoff_waits").add(1);
                cv_.wait_until(lock, fit->second.not_before);
                continue;
            }
            break; // this caller becomes the loader
        }

        slots_.emplace(key, Slot{});
        metrics_.counter("artifact_cache.misses").add(1);
        FaultInjector *fault = fault_;
        TraceRecorder *trace = trace_;
        lock.unlock();
        Span load_span(trace, "cache.load", "cache");
        load_span.arg("key", key);
        StatusOr<T> loaded = [&]() -> StatusOr<T> {
            if (fault != nullptr) {
                const Status injected =
                    fault->check(FaultPoint::kCacheLoader, key);
                if (!injected.isOk()) {
                    return injected;
                }
            }
            return loader();
        }();
        load_span.end();
        lock.lock();
        if (!loaded.isOk()) {
            slots_.erase(key);
            metrics_.counter("artifact_cache.failed_loads").add(1);
            last_failure_ = loaded.status();
            Failure &failure = failures_[key];
            failure.last = loaded.status();
            ++failure.consecutive;
            const f64 delay_ms = std::min(
                max_backoff_ms_,
                initial_backoff_ms_ *
                    std::pow(2.0, static_cast<f64>(
                                      failure.consecutive - 1)));
            failure.not_before =
                std::chrono::steady_clock::now() +
                std::chrono::microseconds(
                    static_cast<long>(delay_ms * 1e3));
            cv_.notify_all();
            return loaded.status();
        }
        Slot &slot = slots_[key];
        slot.loading = false;
        slot.value = std::make_shared<const T>(std::move(loaded).value());
        slot.last_used = ++tick_;
        std::shared_ptr<const T> value = slot.value;
        failures_.erase(key);
        evictOverCapacity();
        cv_.notify_all();
        if (was_hit != nullptr) {
            *was_hit = false;
        }
        return value;
    }

    /** The cache's counters as a registry snapshot (DESIGN.md §12):
     *  `artifact_cache.{hits,misses,evictions,failed_loads,
     *  backoff_waits}`. */
    MetricsSnapshot metricsSnapshot() const { return metrics_.snapshot(); }

    /** The most recent loader failure (ok() when none ever). */
    Status
    lastFailure() const
    {
        std::unique_lock<std::mutex> lock(mu_);
        return last_failure_;
    }

    /** Resident (fully loaded) entries. */
    std::size_t
    size() const
    {
        std::unique_lock<std::mutex> lock(mu_);
        std::size_t n = 0;
        for (const auto &[key, slot] : slots_) {
            n += slot.loading ? 0 : 1;
        }
        return n;
    }

    /** Drop every resident entry (in-flight loads are unaffected). */
    void
    clear()
    {
        std::unique_lock<std::mutex> lock(mu_);
        for (auto it = slots_.begin(); it != slots_.end();) {
            it = it->second.loading ? std::next(it) : slots_.erase(it);
        }
    }

  private:
    struct Slot
    {
        /** True while the loading caller is off running the loader. */
        bool loading = true;
        std::shared_ptr<const T> value;
        u64 last_used = 0;
    };

    /** Per-key failure record (erased by the next successful load). */
    struct Failure
    {
        Status last = Status::ok();
        u64 consecutive = 0;
        /** No retry before this deadline (exponential backoff). */
        std::chrono::steady_clock::time_point not_before;
    };

    /** Evict LRU resident slots down to capacity. Caller holds mu_. */
    void
    evictOverCapacity()
    {
        auto resident = [this]() {
            std::size_t n = 0;
            for (const auto &[key, slot] : slots_) {
                n += slot.loading ? 0 : 1;
            }
            return n;
        };
        while (resident() > capacity_) {
            auto victim = slots_.end();
            for (auto it = slots_.begin(); it != slots_.end(); ++it) {
                if (it->second.loading) {
                    continue;
                }
                if (victim == slots_.end() ||
                    it->second.last_used < victim->second.last_used) {
                    victim = it;
                }
            }
            slots_.erase(victim);
            metrics_.counter("artifact_cache.evictions").add(1);
            if (trace_ != nullptr) {
                trace_->instant("cache.evict", "cache");
            }
        }
    }

    const std::size_t capacity_;
    const f64 initial_backoff_ms_;
    const f64 max_backoff_ms_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::unordered_map<std::string, Slot> slots_;
    std::unordered_map<std::string, Failure> failures_;
    FaultInjector *fault_ = nullptr;
    TraceRecorder *trace_ = nullptr;
    u64 tick_ = 0;
    /** Counters (artifact_cache.*); its own lock, safe under mu_. */
    MetricsRegistry metrics_;
    /** Guarded by mu_ (Status is not atomic, unlike the counters). */
    Status last_failure_ = Status::ok();
};

/** The v5-artifact instantiation (the original ArtifactCache API). */
using ArtifactCache = MaterializationCache<Artifact>;
/** The v6-image instantiation used by the patch restore path. */
using ImageCache = MaterializationCache<MaterializedImage>;

// The template is fully defined above; artifact_cache.cc pins explicit
// instantiations so both caches compile once.
extern template class MaterializationCache<Artifact>;
extern template class MaterializationCache<MaterializedImage>;

} // namespace medusa::core

#endif // MEDUSA_MEDUSA_ARTIFACT_CACHE_H
