/**
 * @file
 * A process-wide cache of deserialized artifacts.
 *
 * Serverless platforms run many instances of the same <GPU type, model>
 * pair per node, and every Medusa cold start begins by loading that
 * pair's artifact (§3). The cache makes the load pay once per node:
 * entries are shared immutably (shared_ptr<const Artifact>), a miss is
 * single-flight — concurrent requests for one key run the loader
 * exactly once while the rest block for the result — and capacity is
 * bounded with least-recently-used eviction (an evicted artifact stays
 * alive for engines still holding it).
 *
 * A failed load is not cached as a value, but it is *recorded*: the
 * per-key failure keeps the full Status (not just a counter) and an
 * exponential-backoff deadline. Blocked single-flight callers do not
 * hot-loop the loader — the next caller to retry waits out the backoff
 * first, and each consecutive failure doubles it (up to a cap). A
 * successful load clears the key's failure record.
 */

#ifndef MEDUSA_MEDUSA_ARTIFACT_CACHE_H
#define MEDUSA_MEDUSA_ARTIFACT_CACHE_H

#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/fault.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "medusa/artifact.h"

namespace medusa::core {

/** Thread-safe, single-flight, LRU-bounded artifact store. */
class ArtifactCache
{
  public:
    /** Produces the artifact on a miss (runs outside the cache lock). */
    using Loader = std::function<StatusOr<Artifact>()>;

    /**
     * Counter view kept for back-compat. The counters live in a
     * MetricsRegistry under the `artifact_cache.*` names (DESIGN.md
     * §12); stats() materializes this struct from a snapshot.
     */
    struct Stats
    {
        u64 hits = 0;
        u64 misses = 0;
        u64 evictions = 0;
        u64 failed_loads = 0;
        /** Times a caller waited out a failure backoff before loading. */
        u64 backoff_waits = 0;
        /** The most recent loader failure (ok() when none ever). */
        Status last_failure = Status::ok();
    };

    /**
     * @param capacity max resident artifacts (floored at 1).
     * @param initial_backoff_ms pause before retrying a failed key;
     *        doubles per consecutive failure up to @p max_backoff_ms.
     */
    explicit ArtifactCache(std::size_t capacity = 8,
                           f64 initial_backoff_ms = 1.0,
                           f64 max_backoff_ms = 100.0);

    /**
     * Inject deterministic loader faults (FaultPoint::kCacheLoader —
     * checked before each loader run). Null disables.
     */
    void setFaultInjector(FaultInjector *fault);

    /**
     * Stream cache events into @p trace: a `cache.load` span around
     * each loader run, `cache.hit` / `cache.evict` instants. Null
     * disables, at zero cost.
     */
    void setTraceRecorder(TraceRecorder *trace);

    /**
     * The recorded failure Status for @p key: the last loader error if
     * the key is in failure backoff, ok() otherwise.
     */
    Status keyFailure(const std::string &key) const;

    /**
     * The artifact for @p key, loading it via @p loader on a miss.
     * Concurrent callers with the same key share one loader run.
     * @param[out] was_hit if non-null, set to whether the artifact was
     *             already resident (waiting on an in-flight load counts
     *             as a hit).
     */
    StatusOr<std::shared_ptr<const Artifact>>
    getOrLoad(const std::string &key, const Loader &loader,
              bool *was_hit = nullptr);

    /**
     * @deprecated Back-compat view materialized from metricsSnapshot();
     * new code should consume the `artifact_cache.*` metric names.
     */
    Stats stats() const;
    /** The cache's counters as a registry snapshot. */
    MetricsSnapshot metricsSnapshot() const { return metrics_.snapshot(); }
    /** Resident (fully loaded) artifacts. */
    std::size_t size() const;
    /** Drop every resident entry (in-flight loads are unaffected). */
    void clear();

  private:
    struct Slot
    {
        /** True while the loading caller is off running the loader. */
        bool loading = true;
        std::shared_ptr<const Artifact> value;
        u64 last_used = 0;
    };

    /** Per-key failure record (erased by the next successful load). */
    struct Failure
    {
        Status last = Status::ok();
        u64 consecutive = 0;
        /** No retry before this deadline (exponential backoff). */
        std::chrono::steady_clock::time_point not_before;
    };

    /** Evict LRU resident slots down to capacity. Caller holds mu_. */
    void evictOverCapacity();

    const std::size_t capacity_;
    const f64 initial_backoff_ms_;
    const f64 max_backoff_ms_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::unordered_map<std::string, Slot> slots_;
    std::unordered_map<std::string, Failure> failures_;
    FaultInjector *fault_ = nullptr;
    TraceRecorder *trace_ = nullptr;
    u64 tick_ = 0;
    /** Counters (artifact_cache.*); its own lock, safe under mu_. */
    MetricsRegistry metrics_;
    /** Guarded by mu_ (Status is not atomic, unlike the counters). */
    Status last_failure_ = Status::ok();
};

} // namespace medusa::core

#endif // MEDUSA_MEDUSA_ARTIFACT_CACHE_H
