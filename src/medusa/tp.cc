#include "medusa/tp.h"

#include <algorithm>

#include "llm/engine.h"
#include "medusa/analyze.h"
#include "medusa/lint/lint.h"
#include "medusa/record.h"

namespace medusa::core {

using llm::ModelRuntime;
using llm::TpCluster;
using simcuda::CudaGraph;

StatusOr<TpOfflineResult>
materializeTp(const TpOfflineOptions &opts)
{
    TpOfflineResult result;
    std::vector<u32> batch_sizes = opts.batch_sizes;
    if (batch_sizes.empty()) {
        batch_sizes = llm::captureBatchSizes();
        std::sort(batch_sizes.begin(), batch_sizes.end(),
                  std::greater<>());
    }

    // One recorder per rank, wired into the cluster at creation.
    std::vector<std::unique_ptr<Recorder>> recorders;
    TpCluster::Options copts;
    copts.model = opts.model;
    copts.world = opts.world;
    copts.aslr_seed = opts.aslr_seed;
    copts.cost = opts.cost;
    for (u32 r = 0; r < opts.world; ++r) {
        recorders.push_back(std::make_unique<Recorder>());
        copts.alloc_observers.push_back(recorders.back().get());
        copts.launch_observers.push_back(recorders.back().get());
        copts.engine_observers.push_back(recorders.back().get());
    }
    MEDUSA_ASSIGN_OR_RETURN(auto cluster, TpCluster::create(copts));

    // ---- capturing stage, rank-interleaved per stage -----------------
    std::vector<u64> free_bytes(opts.world, 0);
    for (u32 r = 0; r < opts.world; ++r) {
        MEDUSA_RETURN_IF_ERROR(cluster->rank(r).initStructure());
        recorders[r]->markOrganicBoundary();
    }
    for (u32 r = 0; r < opts.world; ++r) {
        MEDUSA_RETURN_IF_ERROR(cluster->rank(r).loadWeights());
        MEDUSA_RETURN_IF_ERROR(cluster->rank(r).loadTokenizer());
    }
    for (u32 r = 0; r < opts.world; ++r) {
        MEDUSA_ASSIGN_OR_RETURN(free_bytes[r],
                                cluster->rank(r).profileFreeMemory());
        MEDUSA_RETURN_IF_ERROR(
            cluster->rank(r).initKvCache(free_bytes[r]));
        recorders[r]->markCaptureStageBegin();
    }

    std::vector<std::vector<std::pair<u32, CudaGraph>>> graphs(
        opts.world);
    u64 total_nodes = 0;
    for (u32 bs : batch_sizes) {
        for (u32 r = 0; r < opts.world; ++r) {
            ModelRuntime &rank = cluster->rank(r);
            MEDUSA_RETURN_IF_ERROR(rank.warmupDecode(bs));
            recorders[r]->beginGraph(bs);
            auto graph = rank.captureDecode(bs);
            recorders[r]->endGraph();
            if (!graph.isOk()) {
                return graph.status();
            }
            total_nodes += graph->nodeCount();
            graphs[r].emplace_back(bs, std::move(graph).value());
        }
    }
    for (u32 r = 0; r < opts.world; ++r) {
        const CostModel &cost = cluster->rank(r).process().cost();
        cluster->rank(r).clock().advance(units::usToNs(
            cost.offline_save_per_node_us *
            static_cast<f64>(total_nodes) / opts.world));
    }
    // The capturing stage's wall time is the slowest rank's clock.
    for (u32 r = 0; r < opts.world; ++r) {
        result.capture_stage_sec = std::max(
            result.capture_stage_sec,
            cluster->rank(r).clock().nowSec());
    }

    // ---- analysis stage, per rank -----------------------------------
    for (u32 r = 0; r < opts.world; ++r) {
        const f64 before = cluster->rank(r).clock().nowSec();
        AnalyzeOptions aopts;
        MEDUSA_ASSIGN_OR_RETURN(
            AnalysisResult analysis,
            analyze(*recorders[r], cluster->rank(r).process(),
                    opts.model.name, opts.model.seed, graphs[r],
                    free_bytes[r], aopts));
        result.analysis_stage_sec = std::max(
            result.analysis_stage_sec,
            cluster->rank(r).clock().nowSec() - before);
        result.rank_artifacts.push_back(std::move(analysis.artifact));
    }

    // ---- per-rank v6 image emission ----------------------------------
    for (u32 r = 0; r < opts.world; ++r) {
        MEDUSA_ASSIGN_OR_RETURN(
            auto image_bytes,
            buildImageBytes(result.rank_artifacts[r],
                            cluster->rank(r).tokenizer().merges()));
        result.rank_images.push_back(std::move(image_bytes));
    }
    return result;
}

StatusOr<std::unique_ptr<TpMedusaEngine>>
TpMedusaEngine::coldStart(const Options &caller_opts,
                          const std::vector<Artifact> &rank_artifacts)
{
    // As in MedusaEngine::coldStart: the environment's fault plan
    // applies when no injector was wired explicitly.
    Options opts = caller_opts;
    if (opts.restore.pipeline.fault == nullptr) {
        opts.restore.pipeline.fault = envFaultInjector();
    }
    TraceRecorder *user_trace = opts.restore.pipeline.trace;

    if (rank_artifacts.size() != opts.world) {
        return invalidArgument("one artifact per rank required");
    }
    for (const Artifact &a : rank_artifacts) {
        if (a.model_name != opts.model.name ||
            a.model_seed != opts.model.seed) {
            return validationFailure(
                "rank artifact was materialized for model " +
                a.model_name);
        }
    }

    // Optional static pre-restore check: per-rank rules plus the
    // cross-rank MDL6xx family (topology, batch sets, collective
    // ordering) — a divergent rank would deadlock lockstep replay.
    if (opts.restore.pipeline.lint) {
        const lint::LintReport lint_report =
            lint::lintTpArtifacts(rank_artifacts);
        if (!lint_report.replaySafe()) {
            return validationFailure(
                "rank artifacts failed pre-restore lint: " +
                lint_report.firstError());
        }
    }

    std::unique_ptr<TpMedusaEngine> engine(new TpMedusaEngine());
    TpCluster::Options copts;
    copts.model = opts.model;
    copts.world = opts.world;
    copts.aslr_seed = opts.aslr_seed;
    copts.cost = opts.cost;
    MEDUSA_ASSIGN_OR_RETURN(engine->cluster_,
                            TpCluster::create(copts));
    TpCluster &cluster = *engine->cluster_;
    engine->reports_.resize(opts.world);

    // One pool serves every rank's graph-rebuild stage in turn.
    std::unique_ptr<ThreadPool> pool = makeRestorePool(opts.restore);

    // Per-rank recorders bound to each rank's clock; merged into the
    // consolidated report on track = rank at the end.
    std::vector<std::unique_ptr<TraceRecorder>> recs;
    for (u32 r = 0; r < opts.world; ++r) {
        recs.push_back(
            std::make_unique<TraceRecorder>(&cluster.rank(r).clock()));
    }

    FaultInjector *fault = opts.restore.pipeline.fault;
    const FallbackPolicy &fb = opts.restore.fallback;
    const u32 max_attempts =
        fb.mode == FallbackMode::kRetryThenVanilla
            ? std::max<u32>(1, fb.max_attempts)
            : 1;
    f64 backoff = fb.backoff_sec;

    // Attempt-level accounting. Shared by every rank: the ranks degrade
    // coherently — one failure rolls back and falls back ALL of them.
    u64 attempts = 0;
    u64 failures = 0;
    u64 retries = 0;
    f64 wasted_sec = 0;
    f64 backoff_total = 0;
    std::string last_failure;

    auto maxClockSec = [&cluster, &opts]() {
        f64 m = 0;
        for (u32 r = 0; r < opts.world; ++r) {
            m = std::max(m, cluster.rank(r).clock().nowSec());
        }
        return m;
    };

    // Loading latency of the successful attempt, measured before the
    // validation pass (validation advances the rank clocks but is not
    // part of the visible loading phase).
    f64 restored_loading = 0;

    // One restore attempt across all ranks (stage-interleaved), ending
    // with the optional lockstep validation — a validation mismatch is
    // an attempt failure like any other.
    auto runAttempt = [&]() -> Status {
        for (u32 r = 0; r < opts.world; ++r) {
            MEDUSA_RETURN_IF_ERROR(cluster.rank(r).initStructure());
            MEDUSA_RETURN_IF_ERROR(engine->tables_[r]->organicStatus());
        }
        for (u32 r = 0; r < opts.world; ++r) {
            TraceRecorder *rec = recs[r].get();
            Span rank_span(rec, "tp.rank_restore", "restore");
            rank_span.arg("rank", std::to_string(r));
            MEDUSA_FAULT_POINT(fault, FaultPoint::kTpRankRestore,
                               "rank " + std::to_string(r));
            {
                Span s(rec, "cold_start.tokenizer", "stage");
                MEDUSA_RETURN_IF_ERROR(cluster.rank(r).loadTokenizer());
            }
            {
                Span s(rec, "restore.replay_alloc_seq", "restore");
                MEDUSA_RETURN_IF_ERROR(replayAllocSequence(
                    rank_artifacts[r], cluster.rank(r),
                    *engine->tables_[r], engine->reports_[r], fault));
            }
            llm::ModelConfig rank_model = opts.model;
            rank_model.tp_world = opts.world;
            rank_model.tp_rank = r;
            MEDUSA_RETURN_IF_ERROR(
                rebindEngineBuffers(rank_artifacts[r], rank_model,
                                    *engine->tables_[r],
                                    cluster.rank(r)));
            {
                Span s(rec, "cold_start.weights", "stage");
                MEDUSA_RETURN_IF_ERROR(cluster.rank(r).loadWeights());
            }
            if (opts.restore.restore_contents) {
                Span s(rec, "restore.contents", "restore");
                MEDUSA_RETURN_IF_ERROR(restoreContents(
                    rank_artifacts[r], cluster.rank(r),
                    *engine->tables_[r], engine->reports_[r]));
            }
            std::unordered_map<std::string, KernelAddr> name_table;
            if (opts.restore.use_triggering_kernels) {
                Span s(rec, "restore.kernel_table", "restore");
                MEDUSA_ASSIGN_OR_RETURN(
                    name_table,
                    buildKernelNameTable(cluster.rank(r), fault));
            }
            RestoreOptions rank_restore = opts.restore;
            rank_restore.pipeline.trace = rec;
            MEDUSA_RETURN_IF_ERROR(restoreGraphs(
                rank_artifacts[r], *engine->tables_[r],
                cluster.rank(r), name_table, rank_restore,
                engine->reports_[r], pool.get()));
        }
        restored_loading = maxClockSec();

        // Optional validation: restored lockstep replay must match a
        // reference (vanilla-captured) cluster bit for bit.
        if (opts.restore.pipeline.validate) {
            TpCluster::Options vopts;
            vopts.model = opts.model;
            vopts.world = opts.world;
            vopts.aslr_seed = opts.aslr_seed + 9999;
            vopts.cost = opts.cost;
            MEDUSA_ASSIGN_OR_RETURN(auto reference,
                                    TpCluster::create(vopts));
            MEDUSA_RETURN_IF_ERROR(reference->loadAll());
            for (u32 bs : opts.restore.pipeline.validate_batch_sizes) {
                if (!cluster.rank(0).hasGraph(bs)) {
                    continue;
                }
                MEDUSA_FAULT_POINT(fault, FaultPoint::kTpLockstep,
                                   "lockstep bs=" + std::to_string(bs));
                MEDUSA_RETURN_IF_ERROR(reference->captureAll({bs}));
                MEDUSA_RETURN_IF_ERROR(
                    reference->stageValidationState(bs));
                MEDUSA_ASSIGN_OR_RETURN(
                    auto expected, reference->lockstepDecodeLogits(bs));
                MEDUSA_RETURN_IF_ERROR(cluster.stageValidationState(bs));
                auto got = cluster.lockstepDecodeLogits(bs);
                if (!got.isOk()) {
                    return validationFailure(
                        "restored TP graphs bs=" + std::to_string(bs) +
                        " failed to replay: " + got.status().toString());
                }
                if (*got != expected) {
                    return validationFailure(
                        "restored TP graphs bs=" + std::to_string(bs) +
                        " mismatch the reference cluster");
                }
                for (auto &report : engine->reports_) {
                    report.validated = true;
                }
            }
        }
        return Status::ok();
    };

    bool restored = false;
    for (u32 attempt = 1; attempt <= max_attempts; ++attempt) {
        ++attempts;
        // Fresh interceptors per attempt: sequence numbering restarts
        // with each rank's reconstructed allocator.
        engine->tables_.clear();
        for (u32 r = 0; r < opts.world; ++r) {
            engine->tables_.push_back(
                std::make_unique<ReplayTable>(&rank_artifacts[r]));
            cluster.rank(r).allocator().setObserver(
                engine->tables_[r].get());
            cluster.rank(r).process().beginJournal();
        }
        std::fill(engine->reports_.begin(), engine->reports_.end(),
                  RestoreReport{});

        const f64 start = maxClockSec();
        const Status st = runAttempt();
        if (st.isOk()) {
            for (u32 r = 0; r < opts.world; ++r) {
                cluster.rank(r).process().endJournal();
            }
            restored = true;
            break;
        }

        // Coherent degrade: every rank rolls back to pristine, even
        // the ones whose own restore succeeded.
        ++failures;
        wasted_sec += maxClockSec() - start;
        last_failure = st.toString();
        for (u32 r = 0; r < opts.world; ++r) {
            recs[r]->instant("restore.attempt_failed", "restore");
            Span s(recs[r].get(), "restore.rollback", "restore");
            cluster.rank(r).rollbackToPristine();
            s.end();
            cluster.rank(r).process().endJournal();
        }
        std::fill(engine->reports_.begin(), engine->reports_.end(),
                  RestoreReport{});
        if (fb.mode == FallbackMode::kFail) {
            return st;
        }
        if (attempt < max_attempts) {
            ++retries;
            for (u32 r = 0; r < opts.world; ++r) {
                Span s(recs[r].get(), "restore.backoff", "restore");
                cluster.rank(r).clock().advance(units::secToNs(backoff));
            }
            backoff_total += backoff;
            backoff *= fb.backoff_multiplier;
        }
    }

    bool fallback_vanilla = false;
    if (!restored) {
        // Degraded mode: the classic profile+capture TP cold start on
        // the clean processes (all ranks together).
        fallback_vanilla = true;
        engine->tables_.clear();
        std::vector<Span> fb_spans;
        fb_spans.reserve(opts.world);
        for (u32 r = 0; r < opts.world; ++r) {
            fb_spans.emplace_back(recs[r].get(),
                                  "fallback.vanilla_cold_start",
                                  "fallback");
        }
        MEDUSA_RETURN_IF_ERROR(cluster.loadAll());
        std::vector<u32> sizes = llm::captureBatchSizes();
        std::sort(sizes.begin(), sizes.end(), std::greater<>());
        MEDUSA_RETURN_IF_ERROR(cluster.captureAll(sizes));
        for (Span &s : fb_spans) {
            s.end();
        }
    }

    // The slowest rank gates readiness; its clock already includes the
    // wasted attempts and the backoff pauses. Validation time (when it
    // ran) is excluded, as before.
    const f64 loading = restored ? restored_loading : maxClockSec();
    for (auto &report : engine->reports_) {
        report.restore_attempts = attempts;
        report.restore_failures = failures;
        report.retries = retries;
        report.fallback_vanilla = fallback_vanilla;
        report.wasted_restore_sec = wasted_sec;
        report.backoff_sec = backoff_total;
        report.last_failure = last_failure;
    }

    // ---- consolidated whole-cluster report ---------------------------
    ColdStartReport &cs = engine->report_;
    cs.strategy = llm::strategyName(fallback_vanilla
                                        ? llm::Strategy::kVllm
                                        : llm::Strategy::kMedusa);
    if (fallback_vanilla) {
        cs.outcome = ColdStartOutcome::kFellBack;
    } else {
        cs.outcome = retries > 0 ? ColdStartOutcome::kRestoredAfterRetry
                                 : ColdStartOutcome::kRestored;
    }
    cs.times.loading = loading;
    // Counters summed over ranks; shared attempt accounting kept
    // per-cluster (not multiplied by world size).
    for (const RestoreReport &r : engine->reports_) {
        cs.restore.nodes_restored += r.nodes_restored;
        cs.restore.graphs_restored += r.graphs_restored;
        cs.restore.kernels_via_dlsym += r.kernels_via_dlsym;
        cs.restore.kernels_via_enumeration += r.kernels_via_enumeration;
        cs.restore.replayed_allocs += r.replayed_allocs;
        cs.restore.replayed_frees += r.replayed_frees;
        cs.restore.restored_content_bytes += r.restored_content_bytes;
        cs.restore.indirect_pointers_fixed += r.indirect_pointers_fixed;
        cs.restore.relocations_applied += r.relocations_applied;
        cs.restore.kernels_resolved += r.kernels_resolved;
        cs.restore.graphs_patched += r.graphs_patched;
        cs.restore.validated = cs.restore.validated || r.validated;
    }
    cs.restore.restore_attempts = attempts;
    cs.restore.restore_failures = failures;
    cs.restore.retries = retries;
    cs.restore.fallback_vanilla = fallback_vanilla;
    cs.restore.wasted_restore_sec = wasted_sec;
    cs.restore.backoff_sec = backoff_total;
    cs.restore.last_failure = last_failure;

    TraceRecorder merged;
    for (u32 r = 0; r < opts.world; ++r) {
        merged.appendAll(recs[r]->events(), /*track_offset=*/r);
    }
    cs.spans = merged.events();
    if (user_trace != nullptr) {
        user_trace->appendAll(cs.spans);
    }

    MetricsRegistry registry;
    publishRestoreMetrics(cs.restore, registry);
    registry.counter("tp.ranks").add(opts.world);
    cs.metrics = registry.snapshot();
    if (caller_opts.restore.pipeline.metrics != nullptr) {
        caller_opts.restore.pipeline.metrics->mergeFrom(cs.metrics);
    }
    return engine;
}

} // namespace medusa::core
