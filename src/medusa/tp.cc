#include "medusa/tp.h"

#include <algorithm>

#include "medusa/analyze.h"
#include "medusa/lint/lint.h"
#include "medusa/record.h"

namespace medusa::core {

using llm::ModelRuntime;
using llm::TpCluster;
using simcuda::CudaGraph;

StatusOr<TpOfflineResult>
materializeTp(const TpOfflineOptions &opts)
{
    TpOfflineResult result;
    std::vector<u32> batch_sizes = opts.batch_sizes;
    if (batch_sizes.empty()) {
        batch_sizes = llm::captureBatchSizes();
        std::sort(batch_sizes.begin(), batch_sizes.end(),
                  std::greater<>());
    }

    // One recorder per rank, wired into the cluster at creation.
    std::vector<std::unique_ptr<Recorder>> recorders;
    TpCluster::Options copts;
    copts.model = opts.model;
    copts.world = opts.world;
    copts.aslr_seed = opts.aslr_seed;
    copts.cost = opts.cost;
    for (u32 r = 0; r < opts.world; ++r) {
        recorders.push_back(std::make_unique<Recorder>());
        copts.alloc_observers.push_back(recorders.back().get());
        copts.launch_observers.push_back(recorders.back().get());
        copts.engine_observers.push_back(recorders.back().get());
    }
    MEDUSA_ASSIGN_OR_RETURN(auto cluster, TpCluster::create(copts));

    // ---- capturing stage, rank-interleaved per stage -----------------
    std::vector<u64> free_bytes(opts.world, 0);
    for (u32 r = 0; r < opts.world; ++r) {
        MEDUSA_RETURN_IF_ERROR(cluster->rank(r).initStructure());
        recorders[r]->markOrganicBoundary();
    }
    for (u32 r = 0; r < opts.world; ++r) {
        MEDUSA_RETURN_IF_ERROR(cluster->rank(r).loadWeights());
        MEDUSA_RETURN_IF_ERROR(cluster->rank(r).loadTokenizer());
    }
    for (u32 r = 0; r < opts.world; ++r) {
        MEDUSA_ASSIGN_OR_RETURN(free_bytes[r],
                                cluster->rank(r).profileFreeMemory());
        MEDUSA_RETURN_IF_ERROR(
            cluster->rank(r).initKvCache(free_bytes[r]));
        recorders[r]->markCaptureStageBegin();
    }

    std::vector<std::vector<std::pair<u32, CudaGraph>>> graphs(
        opts.world);
    u64 total_nodes = 0;
    for (u32 bs : batch_sizes) {
        for (u32 r = 0; r < opts.world; ++r) {
            ModelRuntime &rank = cluster->rank(r);
            MEDUSA_RETURN_IF_ERROR(rank.warmupDecode(bs));
            recorders[r]->beginGraph(bs);
            auto graph = rank.captureDecode(bs);
            recorders[r]->endGraph();
            if (!graph.isOk()) {
                return graph.status();
            }
            total_nodes += graph->nodeCount();
            graphs[r].emplace_back(bs, std::move(graph).value());
        }
    }
    for (u32 r = 0; r < opts.world; ++r) {
        const CostModel &cost = cluster->rank(r).process().cost();
        cluster->rank(r).clock().advance(units::usToNs(
            cost.offline_save_per_node_us *
            static_cast<f64>(total_nodes) / opts.world));
    }
    // The capturing stage's wall time is the slowest rank's clock.
    for (u32 r = 0; r < opts.world; ++r) {
        result.capture_stage_sec = std::max(
            result.capture_stage_sec,
            cluster->rank(r).clock().nowSec());
    }

    // ---- analysis stage, per rank -----------------------------------
    for (u32 r = 0; r < opts.world; ++r) {
        const f64 before = cluster->rank(r).clock().nowSec();
        AnalyzeOptions aopts;
        MEDUSA_ASSIGN_OR_RETURN(
            AnalysisResult analysis,
            analyze(*recorders[r], cluster->rank(r).process(),
                    opts.model.name, opts.model.seed, graphs[r],
                    free_bytes[r], aopts));
        result.analysis_stage_sec = std::max(
            result.analysis_stage_sec,
            cluster->rank(r).clock().nowSec() - before);
        result.rank_artifacts.push_back(std::move(analysis.artifact));
    }
    return result;
}

StatusOr<std::unique_ptr<TpMedusaEngine>>
TpMedusaEngine::coldStart(const Options &opts,
                          const std::vector<Artifact> &rank_artifacts)
{
    if (rank_artifacts.size() != opts.world) {
        return invalidArgument("one artifact per rank required");
    }
    for (const Artifact &a : rank_artifacts) {
        if (a.model_name != opts.model.name ||
            a.model_seed != opts.model.seed) {
            return validationFailure(
                "rank artifact was materialized for model " +
                a.model_name);
        }
    }

    // Optional static pre-restore check: per-rank rules plus the
    // cross-rank MDL6xx family (topology, batch sets, collective
    // ordering) — a divergent rank would deadlock lockstep replay.
    if (opts.restore.lint) {
        const lint::LintReport lint_report =
            lint::lintTpArtifacts(rank_artifacts);
        if (!lint_report.replaySafe()) {
            return validationFailure(
                "rank artifacts failed pre-restore lint: " +
                lint_report.firstError());
        }
    }

    std::unique_ptr<TpMedusaEngine> engine(new TpMedusaEngine());
    TpCluster::Options copts;
    copts.model = opts.model;
    copts.world = opts.world;
    copts.aslr_seed = opts.aslr_seed;
    copts.cost = opts.cost;
    for (u32 r = 0; r < opts.world; ++r) {
        engine->tables_.push_back(
            std::make_unique<ReplayTable>(&rank_artifacts[r]));
        copts.alloc_observers.push_back(engine->tables_.back().get());
    }
    MEDUSA_ASSIGN_OR_RETURN(engine->cluster_,
                            TpCluster::create(copts));
    TpCluster &cluster = *engine->cluster_;
    engine->reports_.resize(opts.world);

    // One pool serves every rank's graph-rebuild stage in turn.
    std::unique_ptr<ThreadPool> pool = makeRestorePool(opts.restore);

    // The online phase, per rank (stage-interleaved).
    for (u32 r = 0; r < opts.world; ++r) {
        MEDUSA_RETURN_IF_ERROR(cluster.rank(r).initStructure());
        MEDUSA_RETURN_IF_ERROR(engine->tables_[r]->organicStatus());
    }
    for (u32 r = 0; r < opts.world; ++r) {
        MEDUSA_RETURN_IF_ERROR(cluster.rank(r).loadTokenizer());
        MEDUSA_RETURN_IF_ERROR(replayAllocSequence(
            rank_artifacts[r], cluster.rank(r), *engine->tables_[r],
            engine->reports_[r]));
        llm::ModelConfig rank_model = opts.model;
        rank_model.tp_world = opts.world;
        rank_model.tp_rank = r;
        MEDUSA_RETURN_IF_ERROR(
            rebindEngineBuffers(rank_artifacts[r], rank_model,
                                *engine->tables_[r], cluster.rank(r)));
        MEDUSA_RETURN_IF_ERROR(cluster.rank(r).loadWeights());
        if (opts.restore.restore_contents) {
            MEDUSA_RETURN_IF_ERROR(restoreContents(
                rank_artifacts[r], cluster.rank(r),
                *engine->tables_[r], engine->reports_[r]));
        }
        std::unordered_map<std::string, KernelAddr> name_table;
        if (opts.restore.use_triggering_kernels) {
            MEDUSA_ASSIGN_OR_RETURN(name_table,
                                    buildKernelNameTable(cluster.rank(r)));
        }
        MEDUSA_RETURN_IF_ERROR(restoreGraphs(
            rank_artifacts[r], *engine->tables_[r], cluster.rank(r),
            name_table, opts.restore, engine->reports_[r],
            pool.get()));
        engine->loading_sec_ = std::max(
            engine->loading_sec_, cluster.rank(r).clock().nowSec());
    }

    // Optional validation: restored lockstep replay must match a
    // reference (vanilla-captured) cluster bit for bit.
    if (opts.restore.validate) {
        TpCluster::Options vopts;
        vopts.model = opts.model;
        vopts.world = opts.world;
        vopts.aslr_seed = opts.aslr_seed + 9999;
        vopts.cost = opts.cost;
        MEDUSA_ASSIGN_OR_RETURN(auto reference,
                                TpCluster::create(vopts));
        MEDUSA_RETURN_IF_ERROR(reference->loadAll());
        for (u32 bs : opts.restore.validate_batch_sizes) {
            if (!cluster.rank(0).hasGraph(bs)) {
                continue;
            }
            MEDUSA_RETURN_IF_ERROR(reference->captureAll({bs}));
            MEDUSA_RETURN_IF_ERROR(reference->stageValidationState(bs));
            MEDUSA_ASSIGN_OR_RETURN(auto expected,
                                    reference->lockstepDecodeLogits(bs));
            MEDUSA_RETURN_IF_ERROR(cluster.stageValidationState(bs));
            auto got = cluster.lockstepDecodeLogits(bs);
            if (!got.isOk()) {
                return validationFailure(
                    "restored TP graphs bs=" + std::to_string(bs) +
                    " failed to replay: " + got.status().toString());
            }
            if (*got != expected) {
                return validationFailure(
                    "restored TP graphs bs=" + std::to_string(bs) +
                    " mismatch the reference cluster");
            }
            for (auto &report : engine->reports_) {
                report.validated = true;
            }
        }
    }
    return engine;
}

} // namespace medusa::core
