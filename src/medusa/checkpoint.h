/**
 * @file
 * A checkpoint/restore baseline (the related-work §9 class of systems:
 * FaaSnap, Catalyzer, REAP, gVisor C/R): persist the COMPLETE state of
 * a ready serving instance and restore it bit-for-bit on the next cold
 * start.
 *
 * Restoring bits works because CRIU-style restoration recreates the
 * identical address space — modelled here by re-launching the process
 * with the checkpointed ASLR seed. The cost structure is the paper's
 * argument: restoration is fast (one sequential read) but the image is
 * the whole device footprint (weights + KV reservation + pools), tens
 * of GB, versus Medusa's few-MB artifact that recomputes nothing it
 * can cheaply rebind.
 */

#ifndef MEDUSA_MEDUSA_CHECKPOINT_H
#define MEDUSA_MEDUSA_CHECKPOINT_H

#include <memory>

#include "llm/engine.h"

namespace medusa::core {

/** The (conceptual) checkpoint image of a ready instance. */
struct CheckpointImage
{
    llm::ModelConfig model;
    /** Process layout the image was taken from (restore recreates it). */
    u64 aslr_seed = 0;
    /** Device bytes captured (logical footprint of the ready state). */
    u64 device_bytes = 0;
    /** Host-side state captured (runtime, allocator metadata, graphs). */
    u64 host_bytes = 0;

    u64 totalBytes() const { return device_bytes + host_bytes; }
};

/** A serving engine brought up by restoring a checkpoint. */
class CheckpointEngine
{
  public:
    /**
     * Take a checkpoint of a fully-loaded baseline engine. Charges the
     * image write to the engine's clock and returns the image
     * descriptor.
     */
    static StatusOr<CheckpointImage>
    checkpoint(llm::BaselineEngine &engine);

    /**
     * Restore a ready instance from the image: one sequential read of
     * the full footprint plus fixed process-fixup work.
     */
    static StatusOr<std::unique_ptr<CheckpointEngine>>
    restore(const CheckpointImage &image, const CostModel *cost = nullptr,
            bool warm_container = true);

    llm::ModelRuntime &runtime() { return engine_->runtime(); }
    const llm::StageTimes &times() const { return times_; }

  private:
    explicit CheckpointEngine(std::unique_ptr<llm::BaselineEngine> e)
        : engine_(std::move(e))
    {
    }

    std::unique_ptr<llm::BaselineEngine> engine_;
    llm::StageTimes times_;
};

} // namespace medusa::core

#endif // MEDUSA_MEDUSA_CHECKPOINT_H
