/**
 * @file
 * medusa-lint: static analysis of materialized artifacts.
 *
 * A materialized Artifact is a long-lived cross-process contract: the
 * online phase instantiates graphs from it *without* re-deriving any of
 * the recorded state, so a corrupt (or wrongly analyzed) artifact
 * silently corrupts a replay — the paper's Figure 6 failure mode. The
 * linter proves replay-safety properties of an artifact WITHOUT
 * executing the online phase, and reports violations as rule-tagged
 * diagnostics.
 *
 * Rule families (see DESIGN.md §9 for the paper mapping):
 *  - MDL1xx  allocation-sequence well-formedness (double-free, free of
 *            an unknown index, replay-boundary violations, impossible
 *            sizes),
 *  - MDL2xx  indirect-index coverage: every pointer-classified kernel
 *            parameter must resolve to an allocation that is live at
 *            the launch's (inferred or exact) trace position — the
 *            static detector for Figure 6's naive-matching hazard,
 *  - MDL3xx  kernel-name-table completeness against the module
 *            registry's symbol set (incl. hidden symbols reachable
 *            only via triggering-kernels) and graph topology sanity,
 *  - MDL4xx  permanent-buffer content safety: pointer-shaped words not
 *            covered by a PointerWordFix, and fix-table validity,
 *  - MDL5xx  free-memory-number consistency: the materialized KV-init
 *            figure must be reproducible from the allocation sequence
 *            within the device memory model,
 *  - MDL6xx  cross-rank tensor-parallel consistency (topology, batch
 *            sets, collective-kernel ordering),
 *  - MDL7xx  v6 relocation-image verification (DESIGN.md §14):
 *            relocation bounds/liveness against the replayed allocation
 *            table and kernel name table, duplicate patch targets,
 *            first-occurrence kernel-table ordering, and the coverage
 *            proof — every run-specific address slot of the patch
 *            template must be covered by exactly one relocation
 *            (Figure 6's failure mode at the image layer: an uncovered
 *            slot replays a capture-time address verbatim),
 *  - MDL8xx  determinism / race analysis over captured graphs: the
 *            capture's stream/event edges form the happens-before
 *            relation; unordered node pairs touching one buffer with a
 *            write are capture-order-dependent (write-write MDL801,
 *            read-write MDL802), and alloc/free ops interleaving a
 *            capture window make the replayed allocation order
 *            data-dependent (MDL803, the MoE conditional-kernel
 *            hazard).
 *
 * Severity: kError rules make instantiation unsafe (replay would fault
 * or corrupt); kWarning rules flag suspicious-but-possibly-benign
 * state; kInfo is advisory. An artifact produced by the default
 * offline pipeline lints clean (zero diagnostics).
 */

#ifndef MEDUSA_MEDUSA_LINT_LINT_H
#define MEDUSA_MEDUSA_LINT_LINT_H

#include <span>
#include <string>
#include <vector>

#include "medusa/artifact.h"
#include "simcuda/caching_allocator.h"
#include "simcuda/memory.h"

namespace medusa::core {

class Recorder;          // record.h; only needed for trace-exact liveness
class MaterializedImage; // image.h; subject of the MDL7xx rules

namespace lint {

/** Schema version stamped into LintReport::toJson() output. */
inline constexpr u32 kLintJsonSchemaVersion = 1;

/** How bad a finding is for replay safety. */
enum class Severity : u8 {
    kInfo = 0,
    kWarning = 1,
    kError = 2,
};

const char *severityName(Severity s);

/** One rule violation. */
struct Diagnostic
{
    /** Rule tag, e.g. "MDL202". */
    std::string rule;
    Severity severity = Severity::kError;
    /** Artifact coordinates, e.g. "graph[bs=4].node[3].param[1]". */
    std::string location;
    /** What is wrong. */
    std::string message;
    /** How to repair the artifact (or the pipeline that produced it). */
    std::string fix_hint;
};

/** Linter configuration. */
struct LintOptions
{
    /**
     * Device capacity of the memory model the artifact was recorded
     * against (rule MDL5xx). Artifacts do not record it; defaults to
     * the simulator's device size.
     */
    u64 device_memory_bytes =
        simcuda::DeviceMemoryManager::kDefaultDeviceBytes;
    /**
     * Free-list size-class rounding of the caching allocator, used to
     * reproduce the free-memory figure from logical sizes.
     */
    u64 alloc_round_bytes = simcuda::CachingAllocator::kRoundBytes;
    /**
     * Check kernel names against the in-process KernelRegistry
     * (MDL3xx). Disable when linting an artifact for a foreign kernel
     * zoo.
     */
    bool check_kernel_registry = true;
    /** Module whose kernels are collectives (MDL604 ordering). */
    std::string collective_module = "libsimnccl.so";
    /**
     * Device the image was captured on. The MDL705 coverage heuristic
     * classifies an 8-byte prefilled constant as a leaked capture-time
     * pointer only when its value falls inside THIS device's VA window
     * — tagged constants that merely look pointer-shaped (e.g. stream
     * tags in another window) stay silent.
     */
    u32 device_index = 0;
    /**
     * Optional raw offline recorder trace. When present, MDL202 uses
     * each captured launch's exact trace position instead of the
     * per-graph inferred lower bound, and MDL4xx can verify pointer
     * words against the real allocation map.
     */
    const Recorder *trace = nullptr;
};

/** The linter's output. */
struct LintReport
{
    std::vector<Diagnostic> diagnostics;

    u64 errorCount() const;
    u64 warningCount() const;
    /** True iff no error-severity diagnostics (warnings allowed). */
    bool replaySafe() const { return errorCount() == 0; }
    /** True iff there are no diagnostics at all. */
    bool clean() const { return diagnostics.empty(); }

    /** Render one line per diagnostic, "severity rule location: ...". */
    std::string toText() const;
    /** Render as a JSON object for tooling. */
    std::string toJson() const;
    /**
     * Render as a SARIF 2.1.0 log (one run, driver "medusa-lint") for
     * code-scanning ingestion. Diagnostic locations map to SARIF
     * logical locations; rule metadata comes from the rule catalog.
     */
    std::string toSarif() const;
    /** The first error's "rule location: message", or "". */
    std::string firstError() const;

    void merge(LintReport other);
};

/** Run every single-artifact rule family (MDL1xx-MDL5xx). */
LintReport lintArtifact(const Artifact &artifact,
                        const LintOptions &options = {});

/**
 * Run the cross-rank tensor-parallel rules (MDL6xx) over per-rank
 * artifacts, PLUS the single-artifact rules on each rank (locations
 * prefixed with "rank[i].").
 */
LintReport lintTpArtifacts(const std::vector<Artifact> &rank_artifacts,
                           const LintOptions &options = {});

/**
 * Run the image rule families (MDL7xx structural + coverage proof,
 * MDL8xx determinism) over a decoded v6 image. When options.trace is
 * set, MDL803 additionally checks the raw capture trace for
 * allocation-order nondeterminism.
 */
LintReport lintImage(const MaterializedImage &image,
                     const LintOptions &options = {});

/**
 * Decode serialized v6 image bytes (CRC-checked, relocation bounds
 * checks deferred to the rules so corruption is diagnosed precisely)
 * and run lintImage. A failure to decode at all is itself reported as
 * rule MDL700.
 */
LintReport lintImageBytes(std::span<const u8> bytes,
                          const LintOptions &options = {});

/** One-line summary of a rule tag for report metadata ("" if unknown). */
const char *ruleSummary(const std::string &rule);

} // namespace lint
} // namespace medusa::core

#endif // MEDUSA_MEDUSA_LINT_LINT_H
