#include "medusa/lint/analysis.h"

#include <algorithm>

namespace medusa::core::lint::detail {

std::vector<AllocLife>
reconstructLifetimes(std::span<const AllocOp> ops)
{
    std::vector<AllocLife> lives;
    for (u64 pos = 0; pos < ops.size(); ++pos) {
        const AllocOp &op = ops[pos];
        if (op.kind == AllocOp::kAlloc) {
            AllocLife life;
            life.logical = op.logical_size;
            life.backing = op.backing_size;
            life.op_alloc = pos;
            lives.push_back(life);
        } else if (op.freed_alloc_index < lives.size() &&
                   lives[op.freed_alloc_index].op_free < 0) {
            lives[op.freed_alloc_index].op_free = static_cast<i64>(pos);
        }
    }
    return lives;
}

HappensBefore::HappensBefore(std::size_t node_count,
                             std::span<const simcuda::GraphEdge> edges)
    : n_(node_count), words_((node_count + 63) / 64)
{
    bits_.assign(n_ * words_, 0);
    // Group each node's forward edges; capture emits src < dst, so a
    // reverse sweep sees every successor's closure already complete:
    // reach(u) = U over edges (u,v) of ({v} U reach(v)).
    std::vector<std::vector<u32>> succ(n_);
    std::vector<bool> chain_edge(n_ > 0 ? n_ - 1 : 0, false);
    for (const simcuda::GraphEdge &e : edges) {
        if (e.src < n_ && e.dst < n_ && e.src < e.dst) {
            succ[e.src].push_back(e.dst);
            if (e.dst == e.src + 1) {
                chain_edge[e.src] = true;
            }
        }
    }
    total_order_ = std::all_of(chain_edge.begin(), chain_edge.end(),
                               [](bool b) { return b; });
    for (std::size_t u = n_; u-- > 0;) {
        u64 *row = bits_.data() + u * words_;
        for (u32 v : succ[u]) {
            row[v / 64] |= 1ull << (v % 64);
            const u64 *vrow = bits_.data() +
                              static_cast<std::size_t>(v) * words_;
            for (std::size_t w = 0; w < words_; ++w) {
                row[w] |= vrow[w];
            }
        }
    }
}

} // namespace medusa::core::lint::detail
