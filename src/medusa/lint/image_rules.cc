/**
 * @file
 * MDL7xx: structural verification of the v6 relocation image, plus the
 * patch-coverage proof (lint.h family overview; DESIGN.md §14).
 *
 * The image restore path trusts its relocation tables completely: the
 * patch pass copies the template and writes replayed addresses through
 * the relocation records with no per-record checks (that is what makes
 * it fast). These rules re-derive everything the patch pass assumes —
 * replaying the allocation trace symbolically to rebuild the alloc
 * table the online phase will build — and prove, offline, that
 *
 *  (a) every relocation lands inside the template, inside a live
 *      allocation, and inside the kernel table (MDL701-703),
 *  (b) no two relocations patch the same slot (MDL704),
 *  (c) every run-specific slot IS patched: a kernel-address slot or a
 *      pointer-typed parameter slot with no covering relocation would
 *      replay a capture-time address verbatim — the paper's Figure 6
 *      silent corruption, surfacing at the image layer (MDL705),
 *  (d) the kernel name table is in first-occurrence order, which is
 *      what keeps module-load order — and therefore ASLR draws and
 *      restore fingerprints — identical to the rebuild path (MDL706).
 *
 * The MDL8xx determinism rules run over the image's graphs as well,
 * deriving per-node access sets from the data relocations plus the
 * kernel registry's declared parameter access sets.
 */

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "medusa/image.h"
#include "medusa/lint/analysis.h"
#include "medusa/lint/lint.h"
#include "medusa/record.h"
#include "simcuda/kernel.h"
#include "simcuda/memory.h"

namespace medusa::core::lint {

namespace {

std::string
hexValue(u64 v)
{
    std::ostringstream out;
    out << "0x" << std::hex << v;
    return out.str();
}

/** Runs the image rule families over one decoded image. */
class ImageLinter
{
  public:
    ImageLinter(const MaterializedImage &img, const LintOptions &options)
        : img_(img), opt_(options)
    {
    }

    LintReport
    run()
    {
        lives_ = detail::reconstructLifetimes(
            std::span<const AllocOp>(img_.ops.data(), img_.ops.size()));
        mapSlots();
        checkKernelRelocs();
        resolveNodeKernels();
        checkDataRelocs();
        checkDuplicateCoverage();
        checkCoverage();
        checkKernelTableOrder();
        checkTrailingPayload();
        checkRaces();
        if (opt_.trace != nullptr) {
            detail::checkCaptureWindowAllocs(*opt_.trace, report_);
        }
        return std::move(report_);
    }

  private:
    /** What one patch-template slot is, per the graph slot layout. */
    struct SlotInfo
    {
        enum Kind : u8 {
            kUnmapped = 0, ///< belongs to no graph (cannot happen for
                           ///< images that pass openView's layout check)
            kFn,           ///< a node's kernel-address slot
            kParam,        ///< a node's parameter-value slot
        };
        Kind kind = kUnmapped;
        u32 graph = 0;
        u32 node = 0;
        u32 param = 0; ///< local parameter index within the node
        u8 len = 0;    ///< parameter byte width (kParam only)
    };

    void
    emit(const char *rule, Severity severity, std::string location,
         std::string message, std::string fix_hint)
    {
        report_.diagnostics.push_back(
            {rule, severity, std::move(location), std::move(message),
             std::move(fix_hint)});
    }

    std::string
    graphLoc(u32 gi) const
    {
        return "graph[bs=" +
               std::to_string(img_.graphs[gi].batch_size) + "]";
    }

    std::string
    slotLoc(u64 slot) const
    {
        if (slot >= slots_.size() ||
            slots_[slot].kind == SlotInfo::kUnmapped) {
            return "template.slot[" + std::to_string(slot) + "]";
        }
        const SlotInfo &s = slots_[slot];
        std::string loc = graphLoc(s.graph) + ".node[" +
                          std::to_string(s.node) + "]";
        if (s.kind == SlotInfo::kParam) {
            loc += ".param[" + std::to_string(s.param) + "]";
        }
        return loc;
    }

    /**
     * Classify every template slot as a kernel-address or parameter
     * slot of some (graph, node) per the per-graph slot layout.
     */
    void
    mapSlots()
    {
        slots_.resize(img_.patch_template.size());
        node_kernel_.resize(img_.graphs.size());
        node_def_.resize(img_.graphs.size());
        for (u32 gi = 0; gi < img_.graphs.size(); ++gi) {
            const MaterializedImage::GraphView &gv = img_.graphs[gi];
            node_kernel_[gi].assign(gv.node_count,
                                    simcuda::kInvalidKernel);
            node_def_[gi].assign(gv.node_count, -1);
            for (u32 ni = 0; ni < gv.node_count; ++ni) {
                const u64 slot = gv.fn_slot_begin + ni;
                if (slot < slots_.size()) {
                    slots_[slot] = {SlotInfo::kFn, gi, ni, 0, 0};
                }
            }
            // The param index prefix must be a monotone ramp ending at
            // the param array's length, or the per-node slices are
            // meaningless (instantiatePatched would mis-slice params).
            bool consistent = gv.param_begin.size() == gv.node_count + 1 &&
                              gv.param_begin[0] == 0 &&
                              gv.param_begin[gv.node_count] ==
                                  gv.param_len.size();
            for (u32 ni = 0; consistent && ni < gv.node_count; ++ni) {
                consistent = gv.param_begin[ni] <= gv.param_begin[ni + 1];
            }
            if (!consistent) {
                emit("MDL707", Severity::kError, graphLoc(gi),
                     "per-node parameter index prefix is not a monotone "
                     "ramp over the parameter array",
                     "the image is corrupt; re-emit it from the "
                     "artifact");
                continue;
            }
            for (u32 ni = 0; ni < gv.node_count; ++ni) {
                for (u32 pi = gv.param_begin[ni];
                     pi < gv.param_begin[ni + 1]; ++pi) {
                    const u64 slot = gv.param_slot_begin + pi;
                    if (slot < slots_.size()) {
                        slots_[slot] = {SlotInfo::kParam, gi, ni,
                                        pi - gv.param_begin[ni],
                                        gv.param_len[pi]};
                    }
                }
            }
        }
        cover_.assign(slots_.size(), 0);
    }

    // ---- MDL703 + kernel-slot domain checks ---------------------------

    void
    checkKernelRelocs()
    {
        for (u64 ri = 0; ri < img_.kernel_relocs.size(); ++ri) {
            const MaterializedImage::KernelReloc &kr =
                img_.kernel_relocs[ri];
            const std::string loc =
                "kernel_relocs[" + std::to_string(ri) + "]";
            if (kr.slot >= slots_.size()) {
                emit("MDL703", Severity::kError, loc,
                     "slot " + std::to_string(kr.slot) +
                         " is beyond the " +
                         std::to_string(slots_.size()) +
                         "-slot patch template",
                     "the patch pass would write out of bounds; "
                     "re-emit the image");
                continue;
            }
            ++cover_[kr.slot];
            if (kr.kernel_index >= img_.kernel_table.size()) {
                emit("MDL703", Severity::kError, loc,
                     "kernel index " + std::to_string(kr.kernel_index) +
                         " is beyond the " +
                         std::to_string(img_.kernel_table.size()) +
                         "-entry kernel table",
                     "the patch pass would read past the resolved "
                     "address table; re-emit the image");
                continue;
            }
            const SlotInfo &s = slots_[kr.slot];
            if (s.kind != SlotInfo::kFn) {
                emit("MDL707", Severity::kError, loc,
                     "kernel relocation patches " + slotLoc(kr.slot) +
                         " which is not a kernel-address slot",
                     "a kernel address written into a parameter slot "
                     "leaks a function pointer into kernel arguments; "
                     "re-emit the image");
                continue;
            }
            auto &cell = node_kernel_[s.graph][s.node];
            if (cell == simcuda::kInvalidKernel) {
                cell = static_cast<simcuda::KernelId>(kr.kernel_index);
            }
        }
    }

    /**
     * Resolve each node's kernel-table entry against the registry so
     * the coverage proof (MDL705) and the race rules know parameter
     * types and access sets. node_def_[g][n] stays -1 when unresolved.
     */
    void
    resolveNodeKernels()
    {
        if (!opt_.check_kernel_registry) {
            return;
        }
        const simcuda::KernelRegistry &registry =
            simcuda::KernelRegistry::instance();
        for (u32 gi = 0; gi < img_.graphs.size(); ++gi) {
            const MaterializedImage::GraphView &gv = img_.graphs[gi];
            for (u32 ni = 0; ni < gv.node_count; ++ni) {
                const simcuda::KernelId table_index =
                    node_kernel_[gi][ni];
                if (table_index == simcuda::kInvalidKernel ||
                    table_index >= img_.kernel_table.size()) {
                    continue;
                }
                const MaterializedImage::KernelEntry &entry =
                    img_.kernel_table[table_index];
                const std::string loc = graphLoc(gi) + ".node[" +
                                        std::to_string(ni) + "]";
                const simcuda::KernelId id =
                    registry.findByName(entry.name);
                if (id == simcuda::kInvalidKernel) {
                    emit("MDL301", Severity::kError, loc,
                         "kernel name \"" + entry.name +
                             "\" is not in the module registry's "
                             "symbol set",
                         "the online resolver could not restore its "
                         "address; the kernel table is corrupt");
                    continue;
                }
                const simcuda::KernelDef &def = registry.def(id);
                if (def.module_name != entry.module) {
                    emit("MDL302", Severity::kError, loc,
                         "kernel \"" + entry.name +
                             "\" is recorded in module \"" +
                             entry.module +
                             "\" but the registry defines it in \"" +
                             def.module_name + "\"",
                         "dlsym against the recorded library would "
                         "fail; fix the name -> library mapping");
                    continue;
                }
                const u32 param_count =
                    gv.param_begin.size() == gv.node_count + 1
                        ? gv.param_begin[ni + 1] - gv.param_begin[ni]
                        : 0;
                if (def.params.size() != param_count) {
                    emit("MDL707", Severity::kError, loc,
                         "node has " + std::to_string(param_count) +
                             " parameter slots but kernel \"" +
                             entry.name + "\" takes " +
                             std::to_string(def.params.size()),
                         "instantiation would decode the wrong "
                         "argument layout; re-emit the image");
                    continue;
                }
                node_def_[gi][ni] = static_cast<i64>(id);
            }
        }
    }

    // ---- MDL701/702/709 + data-slot domain checks ---------------------

    void
    checkDataRelocs()
    {
        const simcuda::KernelRegistry &registry =
            simcuda::KernelRegistry::instance();
        // Per-graph launch lower bound, mirroring the artifact rule
        // MDL202: every buffer a graph references existed before the
        // capture position of the launch that referenced it, so the
        // latest referenced-allocation birth bounds every launch from
        // below. A target freed AFTER that point was live at capture
        // and replays to the same deterministic address; only a free
        // BEFORE it proves the relocation resolves recycled memory.
        std::vector<u64> launch_lb(img_.graphs.size(), 0);
        for (const MaterializedImage::DataReloc &dr : img_.data_relocs) {
            if (dr.slot >= slots_.size() ||
                dr.alloc_index >= lives_.size()) {
                continue;
            }
            const SlotInfo &s = slots_[dr.slot];
            if (s.kind == SlotInfo::kParam) {
                launch_lb[s.graph] =
                    std::max(launch_lb[s.graph],
                             lives_[dr.alloc_index].op_alloc);
            }
        }
        for (u64 ri = 0; ri < img_.data_relocs.size(); ++ri) {
            const MaterializedImage::DataReloc &dr = img_.data_relocs[ri];
            const std::string loc =
                "data_relocs[" + std::to_string(ri) + "]";
            if (dr.slot >= slots_.size()) {
                emit("MDL701", Severity::kError, loc,
                     "slot " + std::to_string(dr.slot) +
                         " is beyond the " +
                         std::to_string(slots_.size()) +
                         "-slot patch template",
                     "the patch pass would write out of bounds; "
                     "re-emit the image");
                continue;
            }
            ++cover_[dr.slot];
            const SlotInfo &s = slots_[dr.slot];
            if (s.kind == SlotInfo::kFn) {
                emit("MDL707", Severity::kError, loc,
                     "data relocation patches " + slotLoc(dr.slot) +
                         " which is a kernel-address slot",
                     "a buffer address in a kernel-address slot makes "
                     "instantiation jump into data; re-emit the "
                     "image");
            } else if (s.kind == SlotInfo::kParam && s.len != 8) {
                emit("MDL707", Severity::kError, loc,
                     "data relocation patches " + slotLoc(dr.slot) +
                         " which is a " + std::to_string(s.len) +
                         "-byte parameter, not an 8-byte pointer",
                     "the patched pointer would be truncated at "
                     "instantiation; re-emit the image");
            } else if (s.kind == SlotInfo::kParam &&
                       node_def_[s.graph][s.node] >= 0) {
                const simcuda::KernelDef &def = registry.def(
                    static_cast<simcuda::KernelId>(
                        node_def_[s.graph][s.node]));
                if (s.param < def.params.size() &&
                    def.params[s.param] !=
                        simcuda::ParamKind::kPointer) {
                    emit("MDL707", Severity::kError, loc,
                         "data relocation patches " + slotLoc(dr.slot) +
                             " but the kernel declares that parameter "
                             "as a non-pointer constant",
                         "a replayed address where the kernel expects "
                         "a scalar corrupts the launch; re-run the "
                         "pointer classification");
                }
            }
            if (dr.alloc_index >= lives_.size()) {
                emit("MDL701", Severity::kError, loc,
                     "allocation index " + std::to_string(dr.alloc_index) +
                         " is beyond the " +
                         std::to_string(lives_.size()) +
                         "-allocation replay table",
                     "the patch pass would read past the replayed "
                     "address table; re-emit the image");
                continue;
            }
            const detail::AllocLife &life = lives_[dr.alloc_index];
            const bool stale =
                life.op_free >= 0 && s.kind == SlotInfo::kParam &&
                static_cast<u64>(life.op_free) < launch_lb[s.graph];
            if (stale) {
                emit("MDL702", Severity::kError, loc,
                     "relocation resolves against allocation " +
                         std::to_string(dr.alloc_index) +
                         " which the replay frees at ops[" +
                         std::to_string(life.op_free) +
                         "], before the graph's capture position "
                         "(at least ops[" +
                         std::to_string(launch_lb[s.graph]) +
                         "]); at patch time its address belongs to "
                         "whichever buffer recycled it (Figure 6 "
                         "data corruption)",
                     "re-run the analysis with "
                     "trace_based_matching=true and re-emit the "
                     "image");
            } else if (dr.addend >= life.logical) {
                emit("MDL701", Severity::kError, loc,
                     "addend " + std::to_string(dr.addend) +
                         " is outside allocation " +
                         std::to_string(dr.alloc_index) + "'s " +
                         std::to_string(life.logical) +
                         " logical bytes",
                     "an interior pointer must land inside its "
                     "buffer; the classification is wrong");
            } else if (dr.addend % 4 != 0) {
                emit("MDL709", Severity::kWarning, loc,
                     "addend " + std::to_string(dr.addend) +
                         " is not 4-byte aligned; no captured tensor "
                         "pointer is misaligned, so this relocation "
                         "is suspect",
                     "check the pointer classification that produced "
                     "the interior offset");
            }
        }
    }

    // ---- MDL704: duplicate / overlapping patch targets ----------------

    void
    checkDuplicateCoverage()
    {
        for (u64 slot = 0; slot < cover_.size(); ++slot) {
            if (cover_[slot] > 1) {
                emit("MDL704", Severity::kError, slotLoc(slot),
                     std::to_string(cover_[slot]) +
                         " relocations patch this slot; the last "
                         "writer wins and the others are silently "
                         "discarded",
                     "every run-specific slot must have exactly one "
                     "relocation; re-emit the image");
            }
        }
    }

    // ---- MDL705: the patch-coverage proof -----------------------------

    void
    checkCoverage()
    {
        const simcuda::KernelRegistry &registry =
            simcuda::KernelRegistry::instance();
        const u64 window_begin =
            simcuda::DeviceMemoryManager::kAddrBase +
            static_cast<u64>(opt_.device_index) *
                simcuda::DeviceMemoryManager::kDeviceSlotBytes;
        const u64 window_end =
            window_begin +
            simcuda::DeviceMemoryManager::kDeviceSlotBytes;
        for (u64 slot = 0; slot < slots_.size(); ++slot) {
            if (cover_[slot] != 0) {
                continue;
            }
            const SlotInfo &s = slots_[slot];
            const u64 value = img_.patch_template[slot];
            if (s.kind == SlotInfo::kFn) {
                emit("MDL705", Severity::kError, slotLoc(slot),
                     "kernel-address slot is not covered by any "
                     "kernel relocation; instantiation would jump to "
                     "the capture-time address " + hexValue(value),
                     "every node needs exactly one kernel "
                     "relocation; re-emit the image");
                continue;
            }
            if (s.kind != SlotInfo::kParam) {
                continue;
            }
            // Branch (a): the registry types this parameter. A pointer
            // parameter with no covering relocation replays whatever
            // the template holds.
            const i64 def_id = node_def_[s.graph][s.node];
            if (def_id >= 0) {
                const simcuda::KernelDef &def =
                    registry.def(static_cast<simcuda::KernelId>(def_id));
                if (s.param < def.params.size() &&
                    def.params[s.param] ==
                        simcuda::ParamKind::kPointer) {
                    if (value == 0) {
                        emit("MDL705", Severity::kWarning,
                             slotLoc(slot),
                             "pointer parameter is not covered by a "
                             "data relocation; the prefilled null "
                             "would fault loudly rather than corrupt "
                             "silently, but the classification "
                             "dropped a pointer",
                             "re-run the pointer classification and "
                             "re-emit the image");
                    } else {
                        emit("MDL705", Severity::kError, slotLoc(slot),
                             "pointer parameter is not covered by a "
                             "data relocation; replay would "
                             "dereference the capture-time address " +
                                 hexValue(value) +
                                 " verbatim (Figure 6 silent "
                                 "corruption)",
                             "re-run the pointer classification and "
                             "re-emit the image");
                    }
                    continue;
                }
                // Typed constant: check the declared width while we
                // are here — a mismatched width corrupts argument
                // decoding at instantiation.
                if (s.param < def.params.size() &&
                    s.len != simcuda::paramKindSize(
                                 def.params[s.param])) {
                    emit("MDL707", Severity::kError, slotLoc(slot),
                         "prefilled constant is " +
                             std::to_string(s.len) +
                             " bytes but the kernel declares a " +
                             std::to_string(simcuda::paramKindSize(
                                 def.params[s.param])) +
                             "-byte parameter",
                         "instantiation would decode the wrong "
                         "width; re-emit the image");
                    continue;
                }
                // A declared 8-byte scalar whose prefilled value lands
                // inside the device window is a misclassified pointer:
                // real tagged scalars (stream tags) live outside it.
                if (s.len == 8 && value >= window_begin &&
                    value < window_end) {
                    emit("MDL705", Severity::kError, slotLoc(slot),
                         "8-byte scalar constant " + hexValue(value) +
                             " falls inside device " +
                             std::to_string(opt_.device_index) +
                             "'s address window [" +
                             hexValue(window_begin) + ", " +
                             hexValue(window_end) +
                             "); a capture-time pointer was frozen "
                             "into the template as a constant "
                             "(Figure 6 silent corruption)",
                         "re-run the pointer classification and "
                         "re-emit the image");
                }
                continue;
            }
            // Branch (b): untyped slot. An 8-byte prefilled value that
            // lands inside the capture device's VA window is a leaked
            // capture-time address with overwhelming probability —
            // tagged constants (stream tags) live outside the window.
            if (s.len == 8 && value >= window_begin &&
                value < window_end) {
                emit("MDL705", Severity::kError, slotLoc(slot),
                     "uncovered 8-byte constant " + hexValue(value) +
                         " falls inside device " +
                         std::to_string(opt_.device_index) +
                         "'s address window [" + hexValue(window_begin) +
                         ", " + hexValue(window_end) +
                         "); a capture-time pointer escaped the "
                         "relocation table (Figure 6 silent "
                         "corruption)",
                     "re-run the pointer classification and re-emit "
                     "the image");
            }
        }
    }

    // ---- MDL706: first-occurrence kernel-table ordering ---------------

    void
    checkKernelTableOrder()
    {
        // Walk references in graph order, node order — the order the
        // emitter assigns table entries. Each NEW index must be the
        // next unseen one; anything else changes module-load order at
        // restore and desynchronizes ASLR draws from the rebuild path.
        std::set<u64> seen;
        u64 next_new = 0;
        bool order_ok = true;
        for (u32 gi = 0; gi < img_.graphs.size(); ++gi) {
            const MaterializedImage::GraphView &gv = img_.graphs[gi];
            for (u32 ni = 0; ni < gv.node_count; ++ni) {
                const simcuda::KernelId ki = node_kernel_[gi][ni];
                if (ki == simcuda::kInvalidKernel ||
                    ki >= img_.kernel_table.size() ||
                    !seen.insert(ki).second) {
                    continue;
                }
                if (order_ok && ki != next_new) {
                    order_ok = false;
                    emit("MDL706", Severity::kError,
                         graphLoc(gi) + ".node[" + std::to_string(ni) +
                             "]",
                         "first reference to kernel-table entry " +
                             std::to_string(ki) + " (\"" +
                             img_.kernel_table[ki].name +
                             "\") arrives when entry " +
                             std::to_string(next_new) +
                             " is still unreferenced; the table is "
                             "not in first-occurrence order, so "
                             "restore would load modules in a "
                             "different order than the rebuild path "
                             "and desynchronize ASLR draws",
                         "re-emit the image; the kernel table was "
                         "reordered after emission");
                }
                ++next_new;
            }
        }
        for (u64 ki = 0; ki < img_.kernel_table.size(); ++ki) {
            if (seen.count(ki) == 0) {
                emit("MDL706", Severity::kWarning,
                     "kernel_table[" + std::to_string(ki) + "]",
                     "entry \"" + img_.kernel_table[ki].name +
                         "\" is referenced by no kernel relocation; "
                         "restore resolves (and possibly loads a "
                         "module for) a kernel nothing uses",
                     "re-emit the image to drop the dead entry");
            }
        }
    }

    // ---- MDL708: CRC-covered but semantically dead bytes --------------

    void
    checkTrailingPayload()
    {
        const u64 payload = img_.serialized_size >
                                    MaterializedImage::kHeaderBytes
                                ? img_.serialized_size -
                                      MaterializedImage::kHeaderBytes
                                : 0;
        if (img_.payload_decoded_bytes < payload) {
            emit("MDL708", Severity::kWarning, "image",
                 std::to_string(payload - img_.payload_decoded_bytes) +
                     " trailing payload bytes are CRC-covered but "
                     "never decoded; they hide data from every "
                     "structural check in this report",
                 "re-emit the image; trailing bytes usually mean a "
                 "truncated or version-skewed writer");
        }
    }

    // ---- MDL8xx over the image's graphs -------------------------------

    void
    checkRaces()
    {
        const simcuda::KernelRegistry &registry =
            simcuda::KernelRegistry::instance();
        // Per-slot data-reloc targets, for access-set extraction.
        std::map<u64, u64> alloc_by_slot;
        for (const MaterializedImage::DataReloc &dr : img_.data_relocs) {
            alloc_by_slot.emplace(dr.slot, dr.alloc_index);
        }
        for (u32 gi = 0; gi < img_.graphs.size(); ++gi) {
            const MaterializedImage::GraphView &gv = img_.graphs[gi];
            detail::RaceGraph rg;
            rg.batch_size = gv.batch_size;
            rg.node_count = gv.node_count;
            rg.edges.assign(gv.edges.begin(), gv.edges.end());
            rg.nodes.resize(gv.node_count);
            const bool ramp_ok =
                gv.param_begin.size() == gv.node_count + 1;
            for (u32 ni = 0; ni < gv.node_count; ++ni) {
                detail::NodeAccess &node = rg.nodes[ni];
                const simcuda::KernelId table_index =
                    node_kernel_[gi][ni];
                node.kernel_name =
                    table_index < img_.kernel_table.size()
                        ? img_.kernel_table[table_index].name
                        : "<unresolved>";
                const i64 def_id = node_def_[gi][ni];
                if (def_id < 0 || !ramp_ok) {
                    continue; // unknown effects -> MDL804 territory
                }
                const simcuda::KernelDef &def =
                    registry.def(static_cast<simcuda::KernelId>(def_id));
                node.known = !def.access.empty();
                node.indirect = def.indirect_access;
                for (u32 pi = gv.param_begin[ni];
                     pi < gv.param_begin[ni + 1]; ++pi) {
                    auto it = alloc_by_slot.find(gv.param_slot_begin + pi);
                    if (it == alloc_by_slot.end()) {
                        continue;
                    }
                    const u32 local = pi - gv.param_begin[ni];
                    if (local < def.access.size() &&
                        def.access[local] !=
                            simcuda::ParamAccess::kNone) {
                        node.buffers.push_back(
                            {it->second, def.access[local], local});
                    }
                }
            }
            detail::checkGraphRaces(rg, graphLoc(gi), report_);
        }
    }

    const MaterializedImage &img_;
    const LintOptions &opt_;
    std::vector<detail::AllocLife> lives_;
    std::vector<SlotInfo> slots_;
    /** Relocations covering each slot (the coverage-proof counter). */
    std::vector<u32> cover_;
    /** Per (graph, node): kernel-TABLE index from its kernel reloc. */
    std::vector<std::vector<simcuda::KernelId>> node_kernel_;
    /** Per (graph, node): resolved registry KernelId, or -1. */
    std::vector<std::vector<i64>> node_def_;
    LintReport report_;
};

} // namespace

LintReport
lintImage(const MaterializedImage &image, const LintOptions &options)
{
    return ImageLinter(image, options).run();
}

LintReport
lintImageBytes(std::span<const u8> bytes, const LintOptions &options)
{
    ImageReadOptions read_options;
    read_options.verify_crc = true;
    // Let corrupt relocation tables decode so MDL701/MDL703 can point
    // at the exact record instead of a generic open failure.
    read_options.validate_relocations = false;
    StatusOr<MaterializedImage> image =
        MaterializedImage::openView(bytes, read_options);
    if (!image.isOk()) {
        LintReport report;
        report.diagnostics.push_back(
            {"MDL700", Severity::kError, "image",
             "image bytes fail to decode: " +
                 image.status().toString(),
             "the file is truncated, corrupt, or from an "
             "incompatible version; re-emit it"});
        return report;
    }
    return lintImage(*image, options);
}

} // namespace medusa::core::lint
