/**
 * @file
 * Internal analyses shared by the medusa-lint rule families: allocation
 * lifetime reconstruction (used by the artifact rules MDL1xx-MDL5xx and
 * the image rules MDL7xx), the happens-before relation of a captured
 * graph, and the per-node buffer access sets the determinism rules
 * (MDL8xx) compare. Not part of the public lint API.
 */

#ifndef MEDUSA_MEDUSA_LINT_ANALYSIS_H
#define MEDUSA_MEDUSA_LINT_ANALYSIS_H

#include <span>
#include <string>
#include <vector>

#include "medusa/artifact.h"
#include "simcuda/graph.h"
#include "simcuda/kernel.h"

namespace medusa::core {
class Recorder; // record.h
namespace lint {
struct LintReport;
struct LintOptions;

namespace detail {

/** One allocation's reconstructed lifetime in op positions. */
struct AllocLife
{
    u64 logical = 0;
    u64 backing = 0;
    /** Position of the kAlloc op in the sequence. */
    u64 op_alloc = 0;
    /** Position of the (first) kFree op, or -1 if never freed. */
    i64 op_free = -1;
};

/**
 * Rebuild every allocation's [alloc, free) lifetime from the op
 * sequence. Tolerant of malformed sequences (the well-formedness rules
 * report those); the first free wins, unknown indexes are ignored.
 */
std::vector<AllocLife> reconstructLifetimes(std::span<const AllocOp> ops);

/**
 * The happens-before relation of one captured graph. The capture
 * machinery materializes every stream/event ordering as a dependency
 * edge (program order on a stream chains through the capture frontier;
 * recordEvent/waitEvent fork and join frontiers), so graph reachability
 * IS the happens-before partial order of the capture. Edges must point
 * forward (src < dst) — capture always emits them that way; malformed
 * edges are ignored here and reported by the structural rules.
 */
class HappensBefore
{
  public:
    HappensBefore(std::size_t node_count,
                  std::span<const simcuda::GraphEdge> edges);

    /** True iff @p a is ordered strictly before @p b. */
    bool
    before(u32 a, u32 b) const
    {
        return a < n_ && b < n_ &&
               (bits_[static_cast<std::size_t>(a) * words_ + b / 64] >>
                (b % 64)) &
                   1u;
    }

    /** True iff the pair is ordered either way (never racing). */
    bool
    ordered(u32 a, u32 b) const
    {
        return before(a, b) || before(b, a);
    }

    /**
     * True when the graph is a total order (a single-stream capture
     * chain) — the common case, letting race checks exit early.
     */
    bool totalOrder() const { return total_order_; }

  private:
    std::size_t n_ = 0;
    std::size_t words_ = 0;
    /** n_ x words_ bitmap; row a holds the set of nodes after a. */
    std::vector<u64> bits_;
    bool total_order_ = true;
};

/** One statically-derived buffer access of a node. */
struct BufferAccess
{
    u64 alloc_index = 0;
    simcuda::ParamAccess access = simcuda::ParamAccess::kNone;
    /** Parameter position the access came from (for diagnostics). */
    u64 param = 0;
};

/** One node of a graph under race analysis. */
struct NodeAccess
{
    std::string kernel_name;
    /**
     * False when the kernel could not be resolved against the registry
     * (or carries no access metadata): its effects are unknown and any
     * unordered pair involving it is flagged as unprovable (MDL804).
     */
    bool known = false;
    /** Kernel dereferences pointer words stored inside buffers. */
    bool indirect = false;
    std::vector<BufferAccess> buffers;
};

/** One captured graph in the shape the race rules consume. */
struct RaceGraph
{
    u32 batch_size = 0;
    std::size_t node_count = 0;
    std::vector<simcuda::GraphEdge> edges;
    std::vector<NodeAccess> nodes;
};

/**
 * MDL801/MDL802/MDL804: vector-clock-style race detection over one
 * captured graph. Diagnostic locations are prefixed with
 * @p location_prefix (e.g. "graph[bs=4]").
 */
void checkGraphRaces(const RaceGraph &graph,
                     const std::string &location_prefix,
                     LintReport &report);

/**
 * MDL803: allocation-order determinism of the captured trace — flag
 * alloc/free ops that interleave a graph's capture window, the
 * MoE-style conditional-kernel hazard (a data-dependent allocation
 * inside a capture makes the replayed op order diverge from the
 * captured one).
 */
void checkCaptureWindowAllocs(const Recorder &trace, LintReport &report);

} // namespace detail
} // namespace lint
} // namespace medusa::core

#endif // MEDUSA_MEDUSA_LINT_ANALYSIS_H
